package negotiator_test

import (
	"fmt"

	negotiator "negotiator"
)

// ExampleSpec_Build runs a small NegotiaToR fabric for one millisecond of
// simulated time and prints deterministic headline facts.
func ExampleSpec_Build() {
	spec := negotiator.SmallSpec() // 16 ToRs x 4 ports
	fab, err := spec.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 42))
	fab.Run(1 * negotiator.Millisecond)

	s := fab.Summary()
	fmt.Println("topology:", spec.Topology)
	fmt.Println("epoch:", s.EpochLen)
	fmt.Println("completed any flows:", s.Flows > 0)
	fmt.Println("all bytes accounted:", s.Delivered <= s.Injected)
	// Output:
	// topology: parallel
	// epoch: 2.94µs
	// completed any flows: true
	// all bytes accounted: true
}

// ExampleIncastWorkload shows the scheduling-delay bypass: an incast of
// 1 KB flows finishes within a few epochs regardless of its degree.
func ExampleIncastWorkload() {
	spec := negotiator.SmallSpec()
	wl, err := negotiator.IncastWorkload(spec, 3, 10, 1000, negotiator.Time(10*negotiator.Microsecond), 1, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fab, _ := spec.Build()
	fab.SetWorkload(wl)
	fab.Run(200 * negotiator.Microsecond)

	ev := fab.Events()[1]
	fmt.Println("flows done:", ev.Done, "of", ev.Flows)
	fmt.Println("finished within 4 epochs:", ev.FinishTime() < 4*fab.Summary().EpochLen)
	// Output:
	// flows done: 10 of 10
	// finished within 4 epochs: true
}

// ExampleSpec_Build_oblivious builds the traffic-oblivious baseline for
// the same spec: the relay detour makes even a single small flow take two
// propagation delays.
func ExampleSpec_Build_oblivious() {
	spec := negotiator.SmallSpec()
	spec.Oblivious = true
	fab, _ := spec.Build()
	fab.SetWorkload(negotiator.SinglePairWorkload(0, 9, 20<<10, 0))
	fab.Run(200 * negotiator.Microsecond)

	s := fab.Summary()
	fmt.Println("delivered all:", s.Delivered == s.Injected)
	fmt.Println("two-hop latency:", s.All99p >= 2*spec.PropDelay)
	// Output:
	// delivered all: true
	// two-hop latency: true
}

// ExampleTrace_MeanFlowBytes orders the paper's workloads by weight.
func ExampleTrace_MeanFlowBytes() {
	heavier := negotiator.WebSearch.MeanFlowBytes() > negotiator.Hadoop.MeanFlowBytes()
	lighter := negotiator.Google.MeanFlowBytes() < negotiator.Hadoop.MeanFlowBytes()
	fmt.Println("websearch heavier than hadoop:", heavier)
	fmt.Println("google lighter than hadoop:", lighter)
	// Output:
	// websearch heavier than hadoop: true
	// google lighter than hadoop: true
}
