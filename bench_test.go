// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark executes the corresponding experiment from internal/exp at a
// reduced scale (64 ToRs, short duration, trimmed sweeps) so the whole
// suite regenerates every result's shape in minutes; the negotiator-exp
// CLI runs the same experiments at paper scale.
//
//	go test -bench=. -benchmem
//	go run ./cmd/negotiator-exp -exp all            # paper scale
package negotiator_test

import (
	"io"
	"testing"

	"negotiator/internal/exp"
	"negotiator/internal/sim"
)

// benchOptions are the reduced-scale settings shared by all experiment
// benchmarks.
func benchOptions() exp.Options {
	return exp.Options{
		Duration: 1500 * sim.Microsecond,
		ToRs:     64,
		Quick:    true,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i)
		if err := e.Run(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") } // PB/PQ ablation
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }   // mice FCT CDF
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }  // incast finish time
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }  // all-to-all goodput
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }   // reconfiguration delays
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }   // main result
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }  // fault tolerance
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }  // no speedup
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") } // predefined slot sweep
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") } // scheduled phase sweep
func BenchmarkFig13a(b *testing.B) { benchExperiment(b, "fig13a") } // Hadoop + incasts
func BenchmarkFig13b(b *testing.B) { benchExperiment(b, "fig13b") } // web search
func BenchmarkFig13c(b *testing.B) { benchExperiment(b, "fig13c") } // Google
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }  // match ratio
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }  // iterative matching
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") } // selective relay
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") } // informative requests
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") } // stateful scheduling
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") } // ProjecToR-style
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }  // incast receiver bw
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }  // all-to-all receiver bw
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }  // failure micro-observation

func BenchmarkExtArbiters(b *testing.B)  { benchExperiment(b, "ext-arbiters") }  // extension: arbiter study
func BenchmarkExtThreshold(b *testing.B) { benchExperiment(b, "ext-threshold") } // extension: request threshold

func BenchmarkExtBuffers(b *testing.B) { benchExperiment(b, "ext-buffers") } // extension: receiver buffering

func BenchmarkExtSync(b *testing.B) { benchExperiment(b, "ext-sync") } // extension: clock sync margins
