package negotiator_test

import (
	"testing"
)

// The event-skip and incremental-matching cross-checks: both
// optimizations are on by default and claim semantic invisibility, so
// every golden combination must produce byte-identical Summary and
// MiceCDF output with them forced off. These tests pin the claim directly
// (fingerprint equality within one process), complementing the golden
// corpus, which locks the default (optimized) output across commits.

// TestEventSkipEquivalence: skip-on == skip-off across the full golden
// matrix. Each combination runs twice — once with the event-skip run loop
// (the default) and once ticking every round — and the fingerprints must
// match exactly: same FCT histograms, same ledger, same match ratio, same
// mice CDF.
func TestEventSkipEquivalence(t *testing.T) {
	for _, c := range fingerprintCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			on := c.spec
			on.DisableEventSkip = false
			off := c.spec
			off.DisableEventSkip = true
			if got, want := fingerprint(t, on), fingerprint(t, off); got != want {
				t.Errorf("event-skip changes results\nskip: %.400s\ntick: %.400s", got, want)
			}
		})
	}
}

// TestIncrementalMatchEquivalence: cached-request replay == from-scratch
// request sweeps across the golden matrix. The incremental side also runs
// with CheckInvariants, so every replayed emission is additionally
// compared element-wise against a shadow fresh sweep inside the engine
// (the per-epoch incremental == scratch assertion). CI runs this under
// -race with -cpu 1,2,4.
func TestIncrementalMatchEquivalence(t *testing.T) {
	for _, c := range fingerprintCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inc := c.spec
			inc.DisableIncremental = false
			inc.CheckInvariants = true
			scratch := c.spec
			scratch.DisableIncremental = true
			if got, want := fingerprint(t, inc), fingerprint(t, scratch); got != want {
				t.Errorf("incremental matching changes results\nincremental: %.400s\nscratch:     %.400s", got, want)
			}
		})
	}
}
