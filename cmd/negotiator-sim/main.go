// Command negotiator-sim runs one fabric simulation with explicit
// parameters and prints its summary — the general-purpose entry point for
// exploring configurations outside the paper's experiment matrix.
//
// Examples:
//
//	negotiator-sim -list                        # engines, schedulers, topologies, traces
//	negotiator-sim -topology thin-clos -load 0.75 -duration 10ms
//	negotiator-sim -engine oblivious -trace websearch -load 0.5
//	negotiator-sim -engine hybrid -load 1.0     # mice on round-robin, elephants negotiated
//	negotiator-sim -scheduler stateful -tors 64 -no-pq
//	negotiator-sim -fail-frac 0.05 -fail-detect 3us   # 5% links down forever
//	negotiator-sim -engine hybrid -fail-scenario tor-down -fail-tor 3 -fail-at 100us -fail-recover 400us
//	negotiator-sim -runs 8 -parallel 4   # 8 seed replicates, 4 at a time
//	negotiator-sim -tors 512 -workers 0  # one big run, sharded over all cores
//	negotiator-sim -duration 30ms -checkpoint-every 500 -checkpoint-dir ck   # rolling checkpoint
//	negotiator-sim -duration 30ms -restore ck/checkpoint.negosnap            # resume after a crash
//
// A checkpoint is a resume token, not an archive: -restore must be given
// the same binary, the same configuration flags, and the same workload
// parameters as the run that wrote it, and then reproduces the
// uninterrupted run's output byte for byte.
//
// With -runs N the same configuration is executed for seeds seed..seed+N-1
// as independent cells on a bounded worker pool (see -parallel); the
// per-seed summaries print in seed order regardless of completion order.
// With -workers P each run additionally splits its ToRs into P shards that
// execute every epoch concurrently; results are identical at any P.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	negotiator "negotiator"
	"negotiator/internal/exp"
	"negotiator/internal/sim"
)

// schedulerNames maps CLI names to facade schedulers, in listing order.
var schedulerNames = []struct {
	name string
	s    negotiator.Scheduler
}{
	{"matching", negotiator.Matching},
	{"iterative1", negotiator.Iterative1},
	{"iterative3", negotiator.Iterative3},
	{"iterative5", negotiator.Iterative5},
	{"data-size", negotiator.DataSizePriority},
	{"hol-delay", negotiator.HoLDelayPriority},
	{"stateful", negotiator.Stateful},
	{"projector", negotiator.ProjecToRStyle},
	{"pim", negotiator.PIMStyle},
	{"islip", negotiator.ISLIPStyle},
}

var traceNames = []struct {
	name string
	t    negotiator.Trace
}{
	{"hadoop", negotiator.Hadoop},
	{"websearch", negotiator.WebSearch},
	{"google", negotiator.Google},
}

func main() {
	var (
		tors        = flag.Int("tors", 128, "number of ToRs")
		ports       = flag.Int("ports", 8, "uplink ports per ToR")
		awgr        = flag.Int("awgr", 16, "thin-clos AWGR port count W (ToRs must equal ports*W)")
		topology    = flag.String("topology", "parallel", "parallel | thin-clos")
		engine      = flag.String("engine", "negotiator", "control plane: negotiator | oblivious | hybrid (see -list)")
		oblivious   = flag.Bool("oblivious", false, "deprecated alias for -engine oblivious")
		scheduler   = flag.String("scheduler", "matching", "NegotiaToR scheduling policy (see -list)")
		trace       = flag.String("trace", "hadoop", "hadoop | websearch | google")
		load        = flag.Float64("load", 0.5, "network load L = F/(R*N*tau)")
		duration    = flag.Duration("duration", 6*time.Millisecond, "simulated duration")
		linkGbps    = flag.Int64("link-gbps", 100, "per-port line rate (Gbps)")
		hostGbps    = flag.Int64("host-gbps", 400, "per-ToR host aggregate (Gbps)")
		reconfig    = flag.Duration("reconfig", 10*time.Nanosecond, "reconfiguration delay / guardband")
		schedLen    = flag.Int("sched-slots", 30, "scheduled phase length in timeslots")
		noPB        = flag.Bool("no-pb", false, "disable data piggybacking")
		noPQ        = flag.Bool("no-pq", false, "disable priority queues")
		relay       = flag.Bool("relay", false, "enable traffic-aware selective relay (thin-clos)")
		failScen    = flag.String("fail-scenario", "", "failure scenario: random | flapping | port-group | tor-down (empty = no failures unless -fail-frac is set)")
		failFrac    = flag.Float64("fail-frac", 0, "fraction of directed port-links to fail (random, flapping)")
		failAt      = flag.Duration("fail-at", 0, "when links go down (flapping: first cycle start)")
		failRec     = flag.Duration("fail-recover", 0, "when links come back (<= -fail-at means never)")
		failDetect  = flag.Duration("fail-detect", 0, "failure detection lag (0 = three epochs at default timing)")
		failPeriod  = flag.Duration("fail-period", 0, "flapping cycle period (required for -fail-scenario flapping)")
		failDown    = flag.Duration("fail-down", 0, "flapping downtime per cycle (0 = half the period)")
		failCycles  = flag.Int("fail-cycles", 0, "flapping cycle count (0 = 8)")
		failPort    = flag.Int("fail-port", 0, "AWGR port index to kill on every ToR (port-group)")
		failToR     = flag.Int("fail-tor", 0, "ToR index to power down (tor-down)")
		flowGroup   = flag.Int("flow-group", 1, "flow-group factor k: each arrival stands for k identical host flows behind one record (trace-driven arrivals never coalesce, so only 1 is valid here)")
		seed        = flag.Int64("seed", 1, "random seed")
		ckptEvery   = flag.Int("checkpoint-every", 0, "write a checkpoint every N epochs (requires -checkpoint-dir; 0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for the rolling checkpoint file (atomically replaced after every interval)")
		restoreCkpt = flag.String("restore", "", "resume from a checkpoint file; the remaining flags must rebuild the checkpointed configuration")
		runs        = flag.Int("runs", 1, "number of seed replicates (seeds seed..seed+runs-1)")
		parallel    = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS, 1 = sequential)")
		workers     = flag.Int("workers", 1, "ToR shards per run (intra-run parallelism; 0 = GOMAXPROCS, 1 = sequential). Results are identical at any value")
		list        = flag.Bool("list", false, "list engines, schedulers, topologies and traces, then exit")
	)
	flag.Parse()

	if *list {
		printLists(os.Stdout)
		return
	}

	if *ckptEvery < 0 {
		fatalUsagef("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		fatalUsagef("-checkpoint-every requires -checkpoint-dir (nowhere to write checkpoints)")
	}
	if *ckptDir != "" && *ckptEvery <= 0 {
		fatalUsagef("-checkpoint-dir requires -checkpoint-every > 0 (nothing would be written)")
	}
	if (*ckptEvery > 0 || *restoreCkpt != "") && *runs > 1 {
		fatalUsagef("-runs %d cannot be combined with -checkpoint-every/-restore: a checkpoint captures a single run", *runs)
	}
	if *flowGroup < 1 {
		fatalUsagef("-flow-group must be >= 1, got %d", *flowGroup)
	}
	if *flowGroup > 1 {
		fatalUsagef("-flow-group %d needs a coalescible workload: this command's trace-driven Poisson arrivals are pairwise distinct, so grouping would multiply the offered load instead of aggregating identical flows; use the library's GroupWorkload with a permutation, hotspot or diurnal generator", *flowGroup)
	}

	spec := negotiator.DefaultSpec()
	spec.ToRs, spec.Ports, spec.AWGRPorts = *tors, *ports, *awgr
	spec.LinkRate = negotiator.Gbps(*linkGbps)
	spec.HostRate = negotiator.Gbps(*hostGbps)
	spec.ReconfigDelay = sim.Duration(reconfig.Nanoseconds())
	spec.ScheduledSlots = *schedLen
	spec.Piggyback = !*noPB
	spec.PriorityQueues = !*noPQ
	spec.SelectiveRelay = *relay
	spec.Seed = *seed
	if *workers > *tors {
		fatalUsagef("-workers %d exceeds -tors %d: each worker shards a non-empty contiguous ToR range; lower -workers or use 0 for auto", *workers, *tors)
	}
	spec.Workers = exp.EffectiveParallelism(*workers)
	if spec.Workers > *tors {
		spec.Workers = *tors // auto (-workers 0) on a small fabric: one shard per ToR
	}

	engineSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			engineSet = true
		}
	})
	engName := strings.ToLower(*engine)
	if *oblivious {
		// The deprecated alias may not silently override an explicit,
		// conflicting -engine choice.
		if engineSet && engName != "oblivious" {
			fatalListf("-oblivious (deprecated) conflicts with -engine %s; drop one", engName)
		}
		engName = "oblivious"
	}
	plane, ok := negotiator.ControlPlaneByName(engName)
	if !ok {
		fatalListf("unknown engine %q; available engines:\n%s", *engine, engineList())
	}
	spec.ControlPlane = plane

	switch strings.ToLower(*topology) {
	case "parallel":
		spec.Topology = negotiator.ParallelNetwork
	case "thin-clos", "thinclos", "tc":
		spec.Topology = negotiator.ThinClos
	default:
		fatalListf("unknown topology %q; available topologies:\n  parallel\n  thin-clos", *topology)
	}

	schedOK := false
	for _, sn := range schedulerNames {
		if strings.ToLower(*scheduler) == sn.name || (*scheduler == "" && sn.name == "matching") {
			spec.Scheduler = sn.s
			schedOK = true
			break
		}
	}
	if !schedOK {
		fatalListf("unknown scheduler %q; available schedulers:\n%s", *scheduler, schedulerList())
	}

	var tr negotiator.Trace
	traceOK := false
	for _, tn := range traceNames {
		if strings.ToLower(*trace) == tn.name {
			tr = tn.t
			traceOK = true
			break
		}
	}
	if !traceOK {
		fatalListf("unknown trace %q; available traces:\n%s", *trace, traceList())
	}

	failFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "fail-") {
			failFlagSet = true
		}
	})
	if failFlagSet {
		scen := negotiator.RandomLinks
		if *failScen != "" {
			var ok bool
			scen, ok = negotiator.FailureScenarioByName(strings.ToLower(*failScen))
			if !ok {
				fatalListf("unknown failure scenario %q; available scenarios:\n%s", *failScen, scenarioList())
			}
		}
		switch scen {
		case negotiator.RandomLinks, negotiator.FlappingLinks:
			if *failFrac <= 0 || *failFrac > 1 {
				fatalListf("-fail-scenario %s needs -fail-frac in (0, 1], got %v", scen, *failFrac)
			}
			if scen == negotiator.FlappingLinks && *failPeriod <= 0 {
				fatalListf("-fail-scenario flapping needs -fail-period > 0")
			}
		case negotiator.PortGroupFailure:
			if *failPort < 0 || *failPort >= *ports {
				fatalListf("-fail-port %d out of range [0, %d)", *failPort, *ports)
			}
		case negotiator.ToRFailure:
			if *failToR < 0 || *failToR >= *tors {
				fatalListf("-fail-tor %d out of range [0, %d)", *failToR, *tors)
			}
		}
		spec.Failures = &negotiator.FailurePlan{
			Scenario:    scen,
			Fraction:    *failFrac,
			FailAt:      negotiator.Time((*failAt).Nanoseconds()),
			RecoverAt:   negotiator.Time((*failRec).Nanoseconds()),
			DetectDelay: negotiator.Duration((*failDetect).Nanoseconds()),
			Period:      negotiator.Duration((*failPeriod).Nanoseconds()),
			DownFor:     negotiator.Duration((*failDown).Nanoseconds()),
			Cycles:      *failCycles,
			Port:        *failPort,
			ToR:         *failToR,
			Seed:        *seed,
		}
	}

	runOne := func(runSeed int64, w io.Writer) error {
		sp := spec
		sp.Seed = runSeed
		fab, err := sp.Build()
		if err != nil {
			return err
		}
		// k == 1 is a strict no-op on the arrival stream; the wrapper still
		// runs so the grouped code path is exercised on every invocation.
		work, err := negotiator.GroupWorkload(negotiator.PoissonWorkload(sp, tr, *load, runSeed+6), *flowGroup)
		if err != nil {
			return err
		}
		fab.SetWorkload(work)
		start := time.Now()
		if *restoreCkpt != "" {
			if err := restoreCheckpoint(fab, *restoreCkpt); err != nil {
				return err
			}
		}
		total := sim.Duration(duration.Nanoseconds())
		if *ckptEvery > 0 {
			if err := runCheckpointed(fab, total, *ckptEvery, *ckptDir); err != nil {
				return err
			}
		} else {
			fab.Run(total)
		}
		sum := fab.Summary()

		fmt.Fprintf(w, "%s on %s: %d ToRs x %d ports, trace=%s load=%.0f%%, %v simulated (%v wall)\n",
			plane, sp.Topology, sp.ToRs, sp.Ports, tr, *load*100, sum.Duration, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(w, "  flows completed:   %d (%d mice)\n", sum.Flows, sum.MiceFlows)
		fmt.Fprintf(w, "  mice FCT 99p/mean: %v / %v\n", sum.Mice99p, sum.MiceMean)
		fmt.Fprintf(w, "  all-flow FCT 99p:  %v\n", sum.All99p)
		fmt.Fprintf(w, "  goodput:           %.3f (normalized to %d Gbps hosts)\n", sum.GoodputNormalized, *hostGbps)
		if plane == negotiator.ObliviousPlane {
			fmt.Fprintf(w, "  round-robin cycle: %v\n", sum.EpochLen)
		} else {
			fmt.Fprintf(w, "  match ratio:       %.3f\n", sum.MatchRatio)
			fmt.Fprintf(w, "  epoch length:      %v\n", sum.EpochLen)
		}
		fmt.Fprintf(w, "  bytes delivered:   %d of %d injected\n", sum.Delivered, sum.Injected)
		if sp.Failures != nil {
			fmt.Fprintf(w, "  bytes lost:        %d (destroyed by failed links, pre-requeue)\n", sum.LostBytes)
		}
		return nil
	}

	if *runs <= 1 {
		if err := runOne(*seed, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	// Seed replicates as independent cells: run on the worker pool, print
	// in seed order.
	r := exp.NewRunner(*parallel)
	total := time.Now()
	for k := 0; k < *runs; k++ {
		runSeed := *seed + int64(k)
		r.Textf("-- seed %d --\n", runSeed)
		r.Cell(func(w io.Writer) error { return runOne(runSeed, w) })
	}
	if err := r.Flush(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("-- %d runs in %s wall time (parallel=%d) --\n",
		*runs, time.Since(total).Round(time.Millisecond), r.Parallelism())
}

// restoreCheckpoint applies a checkpoint file to a freshly built fabric
// (workload already attached). Core.Restore validates the file end to end
// before touching any state, so a bad file fails here without side effects.
func restoreCheckpoint(fab negotiator.Fabric, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fab.Restore(f); err != nil {
		return fmt.Errorf("restoring %s: %w", path, err)
	}
	return nil
}

// runCheckpointed advances the fabric to the target duration in
// epoch-count intervals, atomically replacing the rolling checkpoint file
// after each. A restored run resumes mid-schedule: the loop only ever runs
// the epochs still missing, so the final state matches an uninterrupted
// run exactly.
func runCheckpointed(fab negotiator.Fabric, total sim.Duration, every int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "checkpoint.negosnap")
	for {
		s := fab.Summary()
		remaining := total - s.Duration
		if remaining <= 0 {
			return nil
		}
		epochs := int((remaining + s.EpochLen - 1) / s.EpochLen)
		if epochs > every {
			epochs = every
		}
		fab.RunEpochs(epochs)
		if err := writeCheckpoint(fab, path); err != nil {
			return err
		}
	}
}

// writeCheckpoint snapshots the fabric into path via temp + rename, so the
// rolling file always holds a complete checkpoint even if the process dies
// mid-write.
func writeCheckpoint(fab negotiator.Fabric, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fab.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func engineList() string {
	var b strings.Builder
	desc := map[negotiator.ControlPlaneKind]string{
		negotiator.NegotiaToRPlane: "on-demand negotiation (the paper's design)",
		negotiator.ObliviousPlane:  "traffic-oblivious round-robin + VLB relay (Sirius-like baseline)",
		negotiator.HybridPlane:     "mice on the round-robin schedule, elephants negotiated",
	}
	for _, k := range negotiator.ControlPlanes() {
		fmt.Fprintf(&b, "  %-12s %s\n", k, desc[k])
	}
	return strings.TrimRight(b.String(), "\n")
}

func schedulerList() string {
	var b strings.Builder
	for _, sn := range schedulerNames {
		fmt.Fprintf(&b, "  %s\n", sn.name)
	}
	return strings.TrimRight(b.String(), "\n")
}

func traceList() string {
	var b strings.Builder
	for _, tn := range traceNames {
		fmt.Fprintf(&b, "  %s\n", tn.name)
	}
	return strings.TrimRight(b.String(), "\n")
}

func scenarioList() string {
	var b strings.Builder
	desc := map[negotiator.FailureScenario]string{
		negotiator.RandomLinks:      "random directed links down over [-fail-at, -fail-recover)",
		negotiator.FlappingLinks:    "links cycle down/up every -fail-period",
		negotiator.PortGroupFailure: "one AWGR dies: -fail-port on every ToR",
		negotiator.ToRFailure:       "-fail-tor powers down entirely",
	}
	for _, sc := range negotiator.FailureScenarios() {
		fmt.Fprintf(&b, "  %-12s %s\n", sc, desc[sc])
	}
	return strings.TrimRight(b.String(), "\n")
}

func printLists(w io.Writer) {
	fmt.Fprintf(w, "engines (-engine):\n%s\n", engineList())
	fmt.Fprintf(w, "schedulers (-scheduler, NegotiaToR engine only):\n%s\n", schedulerList())
	fmt.Fprintf(w, "topologies (-topology):\n  parallel\n  thin-clos\n")
	fmt.Fprintf(w, "traces (-trace):\n%s\n", traceList())
	fmt.Fprintf(w, "failure scenarios (-fail-scenario):\n%s\n", scenarioList())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "negotiator-sim: "+format+"\n", args...)
	os.Exit(1)
}

// fatalListf rejects an unknown name: the error plus the valid list, and
// a non-zero exit so scripts cannot silently run the wrong thing.
func fatalListf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "negotiator-sim: "+format+"\n", args...)
	os.Exit(2)
}

// fatalUsagef rejects an invalid flag combination with the conventional
// usage-error status 2, so scripts can tell a bad invocation from a run
// that failed.
func fatalUsagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "negotiator-sim: "+format+"\n", args...)
	os.Exit(2)
}
