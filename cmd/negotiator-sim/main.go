// Command negotiator-sim runs one fabric simulation with explicit
// parameters and prints its summary — the general-purpose entry point for
// exploring configurations outside the paper's experiment matrix.
//
// Examples:
//
//	negotiator-sim -topology thin-clos -load 0.75 -duration 10ms
//	negotiator-sim -oblivious -trace websearch -load 0.5
//	negotiator-sim -scheduler stateful -tors 64 -no-pq
//	negotiator-sim -runs 8 -parallel 4   # 8 seed replicates, 4 at a time
//	negotiator-sim -tors 512 -workers 0  # one big run, sharded over all cores
//
// With -runs N the same configuration is executed for seeds seed..seed+N-1
// as independent cells on a bounded worker pool (see -parallel); the
// per-seed summaries print in seed order regardless of completion order.
// With -workers P each run additionally splits its ToRs into P shards that
// execute every epoch concurrently; results are identical at any P.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	negotiator "negotiator"
	"negotiator/internal/exp"
	"negotiator/internal/sim"
)

func main() {
	var (
		tors      = flag.Int("tors", 128, "number of ToRs")
		ports     = flag.Int("ports", 8, "uplink ports per ToR")
		awgr      = flag.Int("awgr", 16, "thin-clos AWGR port count W (ToRs must equal ports*W)")
		topology  = flag.String("topology", "parallel", "parallel | thin-clos")
		oblivious = flag.Bool("oblivious", false, "run the traffic-oblivious baseline instead of NegotiaToR")
		scheduler = flag.String("scheduler", "matching", "matching | iterative1 | iterative3 | iterative5 | data-size | hol-delay | stateful | projector")
		trace     = flag.String("trace", "hadoop", "hadoop | websearch | google")
		load      = flag.Float64("load", 0.5, "network load L = F/(R*N*tau)")
		duration  = flag.Duration("duration", 6*time.Millisecond, "simulated duration")
		linkGbps  = flag.Int64("link-gbps", 100, "per-port line rate (Gbps)")
		hostGbps  = flag.Int64("host-gbps", 400, "per-ToR host aggregate (Gbps)")
		reconfig  = flag.Duration("reconfig", 10*time.Nanosecond, "reconfiguration delay / guardband")
		schedLen  = flag.Int("sched-slots", 30, "scheduled phase length in timeslots")
		noPB      = flag.Bool("no-pb", false, "disable data piggybacking")
		noPQ      = flag.Bool("no-pq", false, "disable priority queues")
		relay     = flag.Bool("relay", false, "enable traffic-aware selective relay (thin-clos)")
		seed      = flag.Int64("seed", 1, "random seed")
		runs      = flag.Int("runs", 1, "number of seed replicates (seeds seed..seed+runs-1)")
		parallel  = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS, 1 = sequential)")
		workers   = flag.Int("workers", 1, "ToR shards per run (intra-run parallelism; 0 = GOMAXPROCS, 1 = sequential). Results are identical at any value")
	)
	flag.Parse()

	spec := negotiator.DefaultSpec()
	spec.ToRs, spec.Ports, spec.AWGRPorts = *tors, *ports, *awgr
	spec.Oblivious = *oblivious
	spec.LinkRate = negotiator.Gbps(*linkGbps)
	spec.HostRate = negotiator.Gbps(*hostGbps)
	spec.ReconfigDelay = sim.Duration(reconfig.Nanoseconds())
	spec.ScheduledSlots = *schedLen
	spec.Piggyback = !*noPB
	spec.PriorityQueues = !*noPQ
	spec.SelectiveRelay = *relay
	spec.Seed = *seed
	spec.Workers = exp.EffectiveParallelism(*workers)

	switch strings.ToLower(*topology) {
	case "parallel":
		spec.Topology = negotiator.ParallelNetwork
	case "thin-clos", "thinclos", "tc":
		spec.Topology = negotiator.ThinClos
	default:
		fatalf("unknown topology %q", *topology)
	}

	switch strings.ToLower(*scheduler) {
	case "matching", "":
		spec.Scheduler = negotiator.Matching
	case "iterative1":
		spec.Scheduler = negotiator.Iterative1
	case "iterative3":
		spec.Scheduler = negotiator.Iterative3
	case "iterative5":
		spec.Scheduler = negotiator.Iterative5
	case "data-size":
		spec.Scheduler = negotiator.DataSizePriority
	case "hol-delay":
		spec.Scheduler = negotiator.HoLDelayPriority
	case "stateful":
		spec.Scheduler = negotiator.Stateful
	case "projector":
		spec.Scheduler = negotiator.ProjecToRStyle
	default:
		fatalf("unknown scheduler %q", *scheduler)
	}

	var tr negotiator.Trace
	switch strings.ToLower(*trace) {
	case "hadoop":
		tr = negotiator.Hadoop
	case "websearch":
		tr = negotiator.WebSearch
	case "google":
		tr = negotiator.Google
	default:
		fatalf("unknown trace %q", *trace)
	}

	runOne := func(runSeed int64, w io.Writer) error {
		sp := spec
		sp.Seed = runSeed
		fab, err := sp.Build()
		if err != nil {
			return err
		}
		fab.SetWorkload(negotiator.PoissonWorkload(sp, tr, *load, runSeed+6))
		start := time.Now()
		fab.Run(sim.Duration(duration.Nanoseconds()))
		sum := fab.Summary()

		sys := "NegotiaToR"
		if *oblivious {
			sys = "traffic-oblivious"
		}
		fmt.Fprintf(w, "%s on %s: %d ToRs x %d ports, trace=%s load=%.0f%%, %v simulated (%v wall)\n",
			sys, sp.Topology, sp.ToRs, sp.Ports, tr, *load*100, sum.Duration, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(w, "  flows completed:   %d (%d mice)\n", sum.Flows, sum.MiceFlows)
		fmt.Fprintf(w, "  mice FCT 99p/mean: %v / %v\n", sum.Mice99p, sum.MiceMean)
		fmt.Fprintf(w, "  all-flow FCT 99p:  %v\n", sum.All99p)
		fmt.Fprintf(w, "  goodput:           %.3f (normalized to %d Gbps hosts)\n", sum.GoodputNormalized, *hostGbps)
		if !*oblivious {
			fmt.Fprintf(w, "  match ratio:       %.3f\n", sum.MatchRatio)
			fmt.Fprintf(w, "  epoch length:      %v\n", sum.EpochLen)
		} else {
			fmt.Fprintf(w, "  round-robin cycle: %v\n", sum.EpochLen)
		}
		fmt.Fprintf(w, "  bytes delivered:   %d of %d injected\n", sum.Delivered, sum.Injected)
		return nil
	}

	if *runs <= 1 {
		if err := runOne(*seed, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	// Seed replicates as independent cells: run on the worker pool, print
	// in seed order.
	r := exp.NewRunner(*parallel)
	total := time.Now()
	for k := 0; k < *runs; k++ {
		runSeed := *seed + int64(k)
		r.Textf("-- seed %d --\n", runSeed)
		r.Cell(func(w io.Writer) error { return runOne(runSeed, w) })
	}
	if err := r.Flush(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("-- %d runs in %s wall time (parallel=%d) --\n",
		*runs, time.Since(total).Round(time.Millisecond), r.Parallelism())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "negotiator-sim: "+format+"\n", args...)
	os.Exit(1)
}
