// Command negotiator-sim runs one fabric simulation with explicit
// parameters and prints its summary — the general-purpose entry point for
// exploring configurations outside the paper's experiment matrix.
//
// Examples:
//
//	negotiator-sim -topology thin-clos -load 0.75 -duration 10ms
//	negotiator-sim -oblivious -trace websearch -load 0.5
//	negotiator-sim -scheduler stateful -tors 64 -no-pq
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	negotiator "negotiator"
	"negotiator/internal/sim"
)

func main() {
	var (
		tors      = flag.Int("tors", 128, "number of ToRs")
		ports     = flag.Int("ports", 8, "uplink ports per ToR")
		awgr      = flag.Int("awgr", 16, "thin-clos AWGR port count W (ToRs must equal ports*W)")
		topology  = flag.String("topology", "parallel", "parallel | thin-clos")
		oblivious = flag.Bool("oblivious", false, "run the traffic-oblivious baseline instead of NegotiaToR")
		scheduler = flag.String("scheduler", "matching", "matching | iterative1 | iterative3 | iterative5 | data-size | hol-delay | stateful | projector")
		trace     = flag.String("trace", "hadoop", "hadoop | websearch | google")
		load      = flag.Float64("load", 0.5, "network load L = F/(R*N*tau)")
		duration  = flag.Duration("duration", 6*time.Millisecond, "simulated duration")
		linkGbps  = flag.Int64("link-gbps", 100, "per-port line rate (Gbps)")
		hostGbps  = flag.Int64("host-gbps", 400, "per-ToR host aggregate (Gbps)")
		reconfig  = flag.Duration("reconfig", 10*time.Nanosecond, "reconfiguration delay / guardband")
		schedLen  = flag.Int("sched-slots", 30, "scheduled phase length in timeslots")
		noPB      = flag.Bool("no-pb", false, "disable data piggybacking")
		noPQ      = flag.Bool("no-pq", false, "disable priority queues")
		relay     = flag.Bool("relay", false, "enable traffic-aware selective relay (thin-clos)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	spec := negotiator.DefaultSpec()
	spec.ToRs, spec.Ports, spec.AWGRPorts = *tors, *ports, *awgr
	spec.Oblivious = *oblivious
	spec.LinkRate = negotiator.Gbps(*linkGbps)
	spec.HostRate = negotiator.Gbps(*hostGbps)
	spec.ReconfigDelay = sim.Duration(reconfig.Nanoseconds())
	spec.ScheduledSlots = *schedLen
	spec.Piggyback = !*noPB
	spec.PriorityQueues = !*noPQ
	spec.SelectiveRelay = *relay
	spec.Seed = *seed

	switch strings.ToLower(*topology) {
	case "parallel":
		spec.Topology = negotiator.ParallelNetwork
	case "thin-clos", "thinclos", "tc":
		spec.Topology = negotiator.ThinClos
	default:
		fatalf("unknown topology %q", *topology)
	}

	switch strings.ToLower(*scheduler) {
	case "matching", "":
		spec.Scheduler = negotiator.Matching
	case "iterative1":
		spec.Scheduler = negotiator.Iterative1
	case "iterative3":
		spec.Scheduler = negotiator.Iterative3
	case "iterative5":
		spec.Scheduler = negotiator.Iterative5
	case "data-size":
		spec.Scheduler = negotiator.DataSizePriority
	case "hol-delay":
		spec.Scheduler = negotiator.HoLDelayPriority
	case "stateful":
		spec.Scheduler = negotiator.Stateful
	case "projector":
		spec.Scheduler = negotiator.ProjecToRStyle
	default:
		fatalf("unknown scheduler %q", *scheduler)
	}

	var tr negotiator.Trace
	switch strings.ToLower(*trace) {
	case "hadoop":
		tr = negotiator.Hadoop
	case "websearch":
		tr = negotiator.WebSearch
	case "google":
		tr = negotiator.Google
	default:
		fatalf("unknown trace %q", *trace)
	}

	fab, err := spec.Build()
	if err != nil {
		fatalf("%v", err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, tr, *load, *seed+6))
	start := time.Now()
	fab.Run(sim.Duration(duration.Nanoseconds()))
	sum := fab.Summary()

	sys := "NegotiaToR"
	if *oblivious {
		sys = "traffic-oblivious"
	}
	fmt.Printf("%s on %s: %d ToRs x %d ports, trace=%s load=%.0f%%, %v simulated (%v wall)\n",
		sys, spec.Topology, spec.ToRs, spec.Ports, tr, *load*100, sum.Duration, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  flows completed:   %d (%d mice)\n", sum.Flows, sum.MiceFlows)
	fmt.Printf("  mice FCT 99p/mean: %v / %v\n", sum.Mice99p, sum.MiceMean)
	fmt.Printf("  all-flow FCT 99p:  %v\n", sum.All99p)
	fmt.Printf("  goodput:           %.3f (normalized to %d Gbps hosts)\n", sum.GoodputNormalized, *hostGbps)
	if !*oblivious {
		fmt.Printf("  match ratio:       %.3f\n", sum.MatchRatio)
		fmt.Printf("  epoch length:      %v\n", sum.EpochLen)
	} else {
		fmt.Printf("  round-robin cycle: %v\n", sum.EpochLen)
	}
	fmt.Printf("  bytes delivered:   %d of %d injected\n", sum.Delivered, sum.Injected)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "negotiator-sim: "+format+"\n", args...)
	os.Exit(1)
}
