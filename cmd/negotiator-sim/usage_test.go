package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlowGroupUsage pins the -flow-group validation contract through the
// real binary: a factor below 1 is always malformed, and a factor above 1
// is rejected here because this command's only workload is trace-driven
// (pairwise-distinct arrivals cannot coalesce into groups). Both are usage
// errors and must exit 2 with a diagnostic, matching the fatalUsagef
// convention; a factor of exactly 1 must be accepted.
func TestFlowGroupUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	bin := filepath.Join(t.TempDir(), "negotiator-sim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building negotiator-sim: %v\n%s", err, out)
	}

	for _, tc := range []struct {
		name string
		args []string
		want string // stderr substring; exit code must be 2
	}{
		{"below-one", []string{"-flow-group", "0"}, "-flow-group must be >= 1"},
		{"trace-driven", []string{"-flow-group", "4"}, "coalescible"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}

	// The identity factor must run: a 4-ToR, short simulation.
	out, err := exec.Command(bin, "-flow-group", "1", "-tors", "4", "-ports", "2",
		"-duration", "100us").CombinedOutput()
	if err != nil {
		t.Fatalf("-flow-group 1 should be accepted: %v\n%s", err, out)
	}
}
