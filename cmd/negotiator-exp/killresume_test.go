package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestKillAndResume is the crash-safety acceptance test, end to end
// through the real binary: a durable sweep is SIGKILLed mid-flight (no
// deferred cleanup runs, exactly like an OOM kill or a preempted node),
// then rerun with -resume. The resumed invocation must salvage the
// completed cells and emit output byte-identical to an uninterrupted
// sweep, modulo the wall-time lines that are wall-clock by design.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "negotiator-exp")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building negotiator-exp: %v\n%s", err, out)
	}

	// 25ms simulated keeps each of table2's 8 cells slow enough (~200ms
	// wall) that the kill lands mid-sweep, and the whole test under ~10s.
	args := []string{"-exp", "table2", "-tors", "32", "-duration", "25ms", "-parallel", "1", "-seed", "3"}
	ref, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	state := filepath.Join(dir, "state")
	killed := exec.Command(bin, append(args, "-state-dir", state)...)
	if err := killed.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the manifest records two completed cells (signature
	// line + 2), so the sweep is provably mid-flight with salvage on disk.
	manifest := filepath.Join(state, "table2", "manifest")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(manifest); err == nil && bytes.Count(raw, []byte("\n")) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			killed.Process.Kill()
			killed.Wait()
			t.Fatal("no cells completed within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := killed.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := killed.Wait(); err == nil {
		t.Fatal("sweep finished before it could be killed; increase -duration")
	}

	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest unreadable after SIGKILL: %v", err)
	}
	salvaged := bytes.Count(raw, []byte("\n")) - 1
	if salvaged < 1 {
		t.Fatalf("no cells salvaged (manifest:\n%s)", raw)
	}
	t.Logf("killed with %d of 8 cells salvaged", salvaged)

	resumed, err := exec.Command(bin, append(args, "-state-dir", state, "-resume")...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, want := stripWallTime(resumed), stripWallTime(ref); got != want {
		t.Errorf("resumed output differs from uninterrupted run\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
}

// stripWallTime drops the lines that report wall-clock measurements; all
// remaining bytes are deterministic.
func stripWallTime(out []byte) string {
	var keep []string
	for _, ln := range strings.Split(string(out), "\n") {
		if strings.Contains(ln, "wall time") {
			continue
		}
		keep = append(keep, ln)
	}
	return strings.Join(keep, "\n")
}
