// Command negotiator-exp regenerates the tables and figures of the
// NegotiaToR paper's evaluation (SIGCOMM 2024, §4 and appendices).
//
// Usage:
//
//	negotiator-exp -list
//	negotiator-exp -exp fig9
//	negotiator-exp -exp all -quick
//	negotiator-exp -exp table2 -duration 30ms   # the paper's full duration
//	negotiator-exp -exp all -parallel 8         # 8 simulation cells at once
//	negotiator-exp -exp scale-sweep -workers 8  # 8 ToR shards inside each run
//	negotiator-exp -exp all -state-dir sweep.state          # durable: cells persist as they finish
//	negotiator-exp -exp all -state-dir sweep.state -resume  # after a crash: only unfinished cells run
//	negotiator-exp -exp all -cell-timeout 10m   # quarantine runaway cells instead of hanging
//
// With -state-dir each completed cell's output is persisted (with a
// manifest recording its hash) the moment it finishes; killing the process
// at any point loses at most the cells in flight. -resume verifies the
// state dir belongs to the same sweep (experiment, duration, size, seed),
// salvages the finished cells, runs the rest, and emits a byte-identical
// stream to an uninterrupted run. Quarantined cells (panics or -cell-timeout
// overruns) are marked in the output and summarized at exit (status 1)
// instead of aborting the sweep; -resume retries exactly those.
//
// Two levels of parallelism compose: each experiment decomposes into
// independent (system, load, seed) cells executed by a bounded worker
// pool (-parallel; default GOMAXPROCS), and each simulation can split its
// ToRs into intra-run shards (-workers). Output is byte-identical at any
// setting of either knob.
//
// Absolute numbers differ from the paper (purpose-built simulator, shorter
// default duration); EXPERIMENTS.md records the shape claims each
// experiment reproduces and the measured values.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"negotiator/internal/exp"
	"negotiator/internal/sim"
)

func main() {
	var (
		id        = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments")
		quick     = flag.Bool("quick", false, "trim sweep points and duration for a smoke run")
		duration  = flag.Duration("duration", 0, "simulated duration per run (e.g. 30ms; default 6ms, paper uses 30ms)")
		tors      = flag.Int("tors", 0, "override network size (default 128 ToRs)")
		seed      = flag.Int64("seed", 0, "seed offset")
		parallel  = flag.Int("parallel", 0, "max concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		workers   = flag.Int("workers", 0, "ToR shards per simulation (intra-run parallelism; 0 = auto: sequential for paper experiments, GOMAXPROCS for scale-sweep). Results are identical at any value")
		stateDir  = flag.String("state-dir", "", "persist completed cells here so a crashed sweep can be resumed with -resume")
		resume    = flag.Bool("resume", false, "skip cells already completed by a previous -state-dir run; output stays byte-identical to an uninterrupted run")
		cellTime  = flag.Duration("cell-timeout", 0, "wall-clock budget per simulation cell; a cell exceeding it is retried once, then quarantined (0 = no limit)")
		flowGroup = flag.Int("flow-group", 1, "flow-group factor k (paper experiments replay trace-driven arrivals, which never coalesce, so only 1 is valid here)")
	)
	flag.Parse()

	if *resume && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "negotiator-exp: -resume requires -state-dir (there is nothing to resume from)")
		os.Exit(2)
	}
	if *flowGroup < 1 {
		fmt.Fprintf(os.Stderr, "negotiator-exp: -flow-group must be >= 1, got %d\n", *flowGroup)
		os.Exit(2)
	}
	if *flowGroup > 1 {
		fmt.Fprintf(os.Stderr, "negotiator-exp: -flow-group %d needs a coalescible workload: every experiment cell replays trace-driven arrivals, which are pairwise distinct, so grouping would multiply the offered load instead of aggregating identical flows\n", *flowGroup)
		os.Exit(2)
	}
	if *cellTime < 0 {
		fmt.Fprintf(os.Stderr, "negotiator-exp: -cell-timeout must be >= 0, got %v\n", *cellTime)
		os.Exit(2)
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "negotiator-exp: pass -exp <id> or -list")
		os.Exit(2)
	}

	o := exp.Options{
		Duration:    sim.Duration(duration.Nanoseconds()),
		ToRs:        *tors,
		Quick:       *quick,
		Seed:        *seed,
		Parallel:    *parallel,
		Workers:     *workers,
		StateDir:    *stateDir,
		Resume:      *resume,
		CellTimeout: *cellTime,
	}
	if *quick && o.Duration == 0 {
		o.Duration = 2 * sim.Millisecond
		if o.ToRs == 0 {
			o.ToRs = 64
		}
	}

	var todo []exp.Experiment
	if strings.EqualFold(*id, "all") {
		todo = exp.All()
	} else {
		for _, one := range strings.Split(*id, ",") {
			e, ok := exp.ByID(strings.TrimSpace(one))
			if !ok {
				// Unknown names exit non-zero with the full list, so a typo
				// cannot silently run nothing.
				fmt.Fprintf(os.Stderr, "negotiator-exp: unknown experiment %q; available experiments:\n", one)
				for _, e := range exp.All() {
					fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.ID, e.Title)
				}
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}
	total := time.Now()
	var casualties []string
	for _, e := range todo {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		eo := o
		eo.StateID = e.ID // keep each experiment's cells apart in the state dir
		err := e.Run(eo, os.Stdout)
		var cas *exp.CasualtyError
		switch {
		case errors.As(err, &cas):
			// Quarantined cells (panics, timeouts): the rest of the sweep
			// completed and is on disk/stdout, so keep going and report the
			// casualties at the end. A -resume run retries exactly these.
			for _, c := range cas.Cells {
				casualties = append(casualties, fmt.Sprintf("%s cell %d: %v", e.ID, c.Key, firstLine(c.Err)))
			}
		case err != nil:
			fmt.Fprintf(os.Stderr, "negotiator-exp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if len(todo) > 1 {
		fmt.Printf("== total: %d experiments in %s wall time (parallel=%d) ==\n",
			len(todo), time.Since(total).Round(time.Millisecond), exp.EffectiveParallelism(*parallel))
	}
	if len(casualties) > 0 {
		fmt.Fprintf(os.Stderr, "negotiator-exp: %d cell(s) quarantined:\n", len(casualties))
		for _, c := range casualties {
			fmt.Fprintf(os.Stderr, "  %s\n", c)
		}
		if *stateDir != "" {
			fmt.Fprintln(os.Stderr, "rerun with -resume to retry only the failed cells")
		}
		os.Exit(1)
	}
}

// firstLine trims a multi-line error (panic stacks) for the summary list.
func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}
