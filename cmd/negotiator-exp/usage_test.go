package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlowGroupUsage pins the -flow-group validation contract: every
// experiment cell replays trace-driven arrivals, so any factor above 1 is a
// usage error (grouping pairwise-distinct arrivals would multiply offered
// load, not aggregate identical flows), as is any factor below 1. Both exit
// 2 with a diagnostic; the identity factor is accepted.
func TestFlowGroupUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	bin := filepath.Join(t.TempDir(), "negotiator-exp")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building negotiator-exp: %v\n%s", err, out)
	}

	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"below-one", []string{"-flow-group", "0", "-exp", "table2"}, "-flow-group must be >= 1"},
		{"trace-driven", []string{"-flow-group", "2", "-exp", "table2"}, "coalescible"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}

	if out, err := exec.Command(bin, "-flow-group", "1", "-list").CombinedOutput(); err != nil {
		t.Fatalf("-flow-group 1 should be accepted: %v\n%s", err, out)
	}
}
