package queue

import (
	"testing"
	"testing/quick"

	"negotiator/internal/flows"
	"negotiator/internal/sim"
)

func newFlow(id int64, size int64) *flows.Flow {
	return &flows.Flow{ID: id, Src: 0, Dst: 1, Size: size}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO
	f1, f2 := newFlow(1, 100), newFlow(2, 200)
	q.Push(Segment{Flow: f1, Bytes: 100})
	q.Push(Segment{Flow: f2, Bytes: 200})
	if q.Bytes() != 300 || q.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 300/2", q.Bytes(), q.Len())
	}
	var order []int64
	q.Take(150, func(f *flows.Flow, n int64) { order = append(order, f.ID, n) })
	want := []int64{1, 100, 2, 50}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("take order = %v, want %v", order, want)
		}
	}
	if q.Bytes() != 150 {
		t.Errorf("remaining bytes = %d, want 150", q.Bytes())
	}
}

func TestFIFOZeroSegmentDropped(t *testing.T) {
	var q FIFO
	q.Push(Segment{Flow: newFlow(1, 10), Bytes: 0})
	if !q.Empty() || q.Len() != 0 {
		t.Error("zero-byte segment should be dropped")
	}
}

func TestFIFOHeadPanicsWhenEmpty(t *testing.T) {
	var q FIFO
	defer func() {
		if recover() == nil {
			t.Error("Head of empty FIFO should panic")
		}
	}()
	q.Head()
}

func TestFIFOCompaction(t *testing.T) {
	var q FIFO
	f := newFlow(1, 1<<20)
	for i := 0; i < 1000; i++ {
		q.Push(Segment{Flow: f, Bytes: 10})
		q.Take(10, func(*flows.Flow, int64) {})
	}
	if cap(q.segs) > 4096 {
		t.Errorf("FIFO failed to compact: cap=%d after 1000 push/pop cycles", cap(q.segs))
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestPIASSegmentation(t *testing.T) {
	d := NewDestQueue(true)
	f := newFlow(1, 25<<10) // 25 KB: 1K prio0, 9K prio1, 15K prio2
	d.Push(f, 0)
	if got := d.prios[0].Bytes(); got != 1<<10 {
		t.Errorf("prio0 = %d, want 1024", got)
	}
	if got := d.prios[1].Bytes(); got != 9<<10 {
		t.Errorf("prio1 = %d, want 9216", got)
	}
	if got := d.prios[2].Bytes(); got != 15<<10 {
		t.Errorf("prio2 = %d, want 15360", got)
	}
	if d.Bytes() != 25<<10 {
		t.Errorf("total = %d, want 25600", d.Bytes())
	}
}

func TestPIASSmallFlowStaysHighPriority(t *testing.T) {
	d := NewDestQueue(true)
	d.Push(newFlow(1, 600), 0)
	if d.prios[0].Bytes() != 600 || d.prios[1].Bytes() != 0 || d.prios[2].Bytes() != 0 {
		t.Errorf("600B flow should be entirely prio0: %d/%d/%d",
			d.prios[0].Bytes(), d.prios[1].Bytes(), d.prios[2].Bytes())
	}
}

func TestPIASOffsetPreserved(t *testing.T) {
	// Requeued bytes keep the priority of their position in the flow.
	d := NewDestQueue(true)
	f := newFlow(1, 100<<10)
	d.PushBytes(f, 500, 50<<10, 0) // bytes at offset 50K are elephant-class
	if d.prios[2].Bytes() != 500 || d.prios[0].Bytes() != 0 {
		t.Errorf("offset bytes misprioritised: %d/%d/%d",
			d.prios[0].Bytes(), d.prios[1].Bytes(), d.prios[2].Bytes())
	}
	d.PushBytes(f, 2048, 0, 0) // first 2K: 1K prio0, 1K prio1
	if d.prios[0].Bytes() != 1024 || d.prios[1].Bytes() != 1024 {
		t.Errorf("offset-0 bytes misprioritised: %d/%d",
			d.prios[0].Bytes(), d.prios[1].Bytes())
	}
}

func TestMicePreemptElephants(t *testing.T) {
	// An elephant is queued first; a mouse arriving later is served first.
	d := NewDestQueue(true)
	elephant := newFlow(1, 1<<20)
	mouse := newFlow(2, 512)
	d.Push(elephant, 0)
	d.Push(mouse, 100)
	var first *flows.Flow
	d.Take(512, func(f *flows.Flow, n int64) {
		if first == nil {
			first = f
		}
	})
	if first == nil || first.ID != 1 {
		// First KB of the elephant is also prio0 and FIFO-older.
		t.Fatalf("first taken = %v, want elephant's prio0 head", first)
	}
	// After the elephant's 1KB prio0 share drains, the mouse overtakes the
	// elephant's remaining megabyte: all mouse bytes must be taken before
	// any elephant byte beyond the first 1KB.
	type run struct {
		id int64
		n  int64
	}
	var order []run
	d.Take(4096, func(f *flows.Flow, n int64) { order = append(order, run{f.ID, n}) })
	var elephantBytes int64 = 512 // taken in the first Take above
	mouseDone := false
	for _, r := range order {
		switch r.id {
		case 1:
			elephantBytes += r.n
			if elephantBytes > 1024 && !mouseDone {
				t.Fatalf("elephant bulk served before mouse finished: order %v", order)
			}
		case 2:
			mouseDone = true
		}
	}
	if !mouseDone {
		t.Fatalf("mouse never served: order %v", order)
	}
}

func TestNoPriorityIsPureFIFO(t *testing.T) {
	d := NewDestQueue(false)
	elephant := newFlow(1, 1<<20)
	mouse := newFlow(2, 512)
	d.Push(elephant, 0)
	d.Push(mouse, 100)
	var ids []int64
	d.Take(2048, func(f *flows.Flow, n int64) { ids = append(ids, f.ID) })
	for _, id := range ids {
		if id != 1 {
			t.Fatalf("without PQ, all taken bytes must be elephant's: got flow %d", id)
		}
	}
}

func TestTakeLowestOnly(t *testing.T) {
	d := NewDestQueue(true)
	d.Push(newFlow(1, 25<<10), 0)
	n := d.TakeLowestOnly(1<<20, func(*flows.Flow, int64) {})
	if n != 15<<10 {
		t.Errorf("TakeLowestOnly took %d, want 15360 (only prio2)", n)
	}
	if d.prios[0].Bytes() != 1<<10 || d.prios[1].Bytes() != 9<<10 {
		t.Error("TakeLowestOnly must not touch higher priorities")
	}
	if got := d.LowestPriorityBytes(); got != 0 {
		t.Errorf("LowestPriorityBytes = %d, want 0", got)
	}
}

func TestHoLWait(t *testing.T) {
	d := NewDestQueue(true)
	d.Push(newFlow(1, 25<<10), 1000)
	w := d.HoLWait(5000)
	for p := 0; p < NumPriorities; p++ {
		if w[p] != 4000 {
			t.Errorf("HoL prio%d = %d, want 4000", p, w[p])
		}
	}
	// Drain prio0; its HoL becomes 0.
	d.Take(1<<10, func(*flows.Flow, int64) {})
	w = d.HoLWait(5000)
	if w[0] != 0 || w[1] != 4000 {
		t.Errorf("after drain: HoL = %v", w)
	}
}

func TestWeightedHoL(t *testing.T) {
	d := NewDestQueue(true)
	d.Push(newFlow(1, 25<<10), 0)
	got := d.WeightedHoL(1000, 0.001)
	want := 0.999*1000 + 0.001*1000
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("WeightedHoL = %v, want %v", got, want)
	}
	// Elephant-only backlog registers weakly but non-zero.
	e := NewDestQueue(true)
	e.PushBytes(newFlow(2, 1<<20), 1000, 500<<10, 0)
	if g := e.WeightedHoL(1000, 0.001); g != 1.0 {
		t.Errorf("elephant-only WeightedHoL = %v, want 1.0 (α·HoL₂)", g)
	}
}

func TestConservationProperty(t *testing.T) {
	// Pushed bytes == taken bytes + remaining bytes, for random mixes.
	f := func(sizes []uint16, takes []uint16, priority bool) bool {
		d := NewDestQueue(priority)
		var pushed int64
		for i, s := range sizes {
			if s == 0 {
				continue
			}
			d.Push(newFlow(int64(i), int64(s)), 0)
			pushed += int64(s)
		}
		var taken int64
		for _, tk := range takes {
			taken += d.Take(int64(tk), func(*flows.Flow, int64) {})
		}
		return pushed == taken+d.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrderPerPriorityProperty(t *testing.T) {
	// Within one priority, flows drain in arrival order.
	f := func(n uint8) bool {
		d := NewDestQueue(true)
		count := int(n%20) + 2
		for i := 0; i < count; i++ {
			d.Push(newFlow(int64(i), 512), sim.Time(i)) // all prio0
		}
		last := int64(-1)
		ok := true
		d.Take(int64(count)*512, func(fl *flows.Flow, _ int64) {
			if fl.ID < last {
				ok = false
			}
			last = fl.ID
		})
		return ok && d.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTakeReadyRespectsArrivalTime(t *testing.T) {
	var q FIFO
	f1, f2 := newFlow(1, 100), newFlow(2, 100)
	q.Push(Segment{Flow: f1, Bytes: 100, Enqueued: 50})
	q.Push(Segment{Flow: f2, Bytes: 100, Enqueued: 500})
	if got := q.ReadyBytes(100); got != 100 {
		t.Errorf("ReadyBytes(100) = %d, want 100", got)
	}
	n := q.TakeReady(1000, 100, func(*flows.Flow, int64) {})
	if n != 100 {
		t.Errorf("TakeReady took %d, want 100 (second segment not arrived)", n)
	}
	if q.Bytes() != 100 {
		t.Errorf("remaining = %d", q.Bytes())
	}
	n = q.TakeReady(1000, 500, func(*flows.Flow, int64) {})
	if n != 100 {
		t.Errorf("second TakeReady took %d, want 100", n)
	}
	if got := q.ReadyBytes(1 << 40); got != 0 {
		t.Errorf("ReadyBytes after drain = %d", got)
	}
}

func TestTakeReadyPartialSegment(t *testing.T) {
	var q FIFO
	q.Push(Segment{Flow: newFlow(1, 100), Bytes: 100, Enqueued: 10})
	if n := q.TakeReady(40, 10, func(*flows.Flow, int64) {}); n != 40 {
		t.Errorf("partial TakeReady = %d, want 40", n)
	}
	if q.Bytes() != 60 {
		t.Errorf("remaining = %d, want 60", q.Bytes())
	}
}
