package queue

import (
	"testing"

	"negotiator/internal/flows"
)

// BenchmarkPushTake measures the steady-state per-packet queue cost: one
// PIAS-classified push and one priority-ordered take.
func BenchmarkPushTake(b *testing.B) {
	d := NewDestQueue(true)
	f := &flows.Flow{ID: 1, Size: 1 << 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBytes(f, 1115, int64(i)*1115%(20<<10), 0)
		d.Take(1115, func(*flows.Flow, int64) {})
	}
}

// BenchmarkTakeCell measures the spray-lane cell extraction used by the
// oblivious baseline's hot path.
func BenchmarkTakeCell(b *testing.B) {
	var q FIFO
	fl := make([]*flows.Flow, 8)
	for i := range fl {
		fl[i] = &flows.Flow{ID: int64(i), Dst: i % 3, Size: 1 << 40}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(Segment{Flow: fl[i%8], Bytes: 615})
		q.TakeCell(615, func(*flows.Flow, int64) {})
	}
}
