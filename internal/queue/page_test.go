package queue

import (
	"math/rand"
	"testing"

	"negotiator/internal/flows"
)

// TestDestSlabPageBoundaries: pushes and takes straddling page boundaries
// behave exactly like adjacent monolithic-slab entries — neighbouring
// destinations on different pages stay independent, HeadDst carries the
// true destination across the boundary, and a trailing partial page trims
// to the slab width.
func TestDestSlabPageBoundaries(t *testing.T) {
	for _, priority := range []bool{false, true} {
		n := 2*PageSize + 37 // three pages, last one partial
		var pool PagePool
		s := NewDestSlab(n, priority)
		if s.NumPages() != 3 {
			t.Fatalf("priority=%v NumPages = %d, want 3", priority, s.NumPages())
		}
		// Touch the four destinations hugging the first boundary plus the
		// slab's last destination.
		dsts := []int{PageSize - 1, PageSize, 2*PageSize - 1, 2 * PageSize, n - 1}
		for _, d := range dsts {
			f := &flows.Flow{ID: int64(d), Dst: d, Size: 1 << 30}
			s.Queue(d, &pool).PushBytes(f, int64(100+d), 0, 0)
			s.Add(d, int64(100+d))
		}
		if got := s.MaterializedPages(); got != 3 {
			t.Fatalf("priority=%v materialized %d pages, want 3", priority, got)
		}
		for _, d := range dsts {
			if got := s.Bytes(d); got != int64(100+d) {
				t.Fatalf("priority=%v Bytes(%d) = %d, want %d", priority, d, got, 100+d)
			}
			if got := s.Probe(d).HeadDst(); got != d {
				t.Fatalf("priority=%v HeadDst(%d) = %d", priority, d, got)
			}
		}
		// Untouched neighbours of touched destinations read empty, on both
		// sides of each boundary.
		for _, d := range []int{PageSize - 2, PageSize + 1, n - 2} {
			if got := s.Bytes(d); got != 0 {
				t.Fatalf("priority=%v untouched dst %d holds %d bytes", priority, d, got)
			}
			if q := s.Probe(d); q == nil || q.HeadDst() != -1 {
				t.Fatalf("priority=%v dst %d on a materialized page must probe empty", priority, d)
			}
		}
		// Page-wise iteration covers exactly the touched pages and trims
		// the last to the slab width.
		covered := 0
		s.ForEachPage(func(page, base int, qs []DestQueue, bytes int64) {
			covered += len(qs)
			if page == 2 && len(qs) != 37 {
				t.Fatalf("priority=%v final page len %d, want 37", priority, len(qs))
			}
			var sum int64
			for j := range qs {
				sum += qs[j].Bytes()
			}
			if sum != bytes {
				t.Fatalf("priority=%v page %d counter %d != queue sum %d", priority, page, bytes, sum)
			}
		})
		if covered != n {
			t.Fatalf("priority=%v ForEachPage covered %d of %d destinations", priority, covered, n)
		}
		// Draining one boundary destination leaves its cross-page
		// neighbour intact.
		d := PageSize
		taken := s.Probe(d).Take(1<<20, func(*flows.Flow, int64) {})
		if taken != int64(100+d) {
			t.Fatalf("priority=%v drained %d of %d", priority, taken, 100+d)
		}
		if pb, _ := s.Add(d, -taken); pb != int64(100+2*PageSize-1) {
			t.Fatalf("priority=%v page counter after drain = %d", priority, pb)
		}
		if got := s.Bytes(PageSize - 1); got != int64(100+PageSize-1) {
			t.Fatalf("priority=%v neighbour across boundary lost bytes: %d", priority, got)
		}
	}
}

// TestFIFOSlabPageBoundaries: the relay-slab variant of the boundary
// behaviour.
func TestFIFOSlabPageBoundaries(t *testing.T) {
	n := PageSize + 5
	var pool PagePool
	s := NewFIFOSlab(n)
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s.NumPages())
	}
	f := &flows.Flow{ID: 1, Dst: 9, Size: 1 << 30}
	for _, d := range []int{PageSize - 1, PageSize, n - 1} {
		s.Get(d, &pool).Push(Segment{Flow: f, Bytes: int64(10 + d)})
		s.Add(d, int64(10+d))
	}
	for _, d := range []int{PageSize - 1, PageSize, n - 1} {
		if got := s.Bytes(d); got != int64(10+d) {
			t.Fatalf("Bytes(%d) = %d, want %d", d, got, 10+d)
		}
	}
	if s.Probe(PageSize-2) == nil || !s.Probe(PageSize - 2).Empty() {
		t.Fatal("untouched dst on materialized page must probe empty")
	}
	covered := 0
	s.ForEachPage(func(page, base int, fs []FIFO, bytes int64) {
		covered += len(fs)
		if page == 1 && len(fs) != 5 {
			t.Fatalf("final page len %d, want 5", len(fs))
		}
	})
	if covered != n {
		t.Fatalf("ForEachPage covered %d of %d", covered, n)
	}
}

// TestUnmaterializedPageReadsEmpty: destinations whose page has never been
// touched — and whole unmaterialized slabs — read as empty through every
// accessor, so releasing a page is invisible to readers.
func TestUnmaterializedPageReadsEmpty(t *testing.T) {
	var bare DestSlab // zero value: unmaterialized slab
	if bare.Materialized() {
		t.Fatal("zero-value slab claims materialized")
	}
	if bare.Probe(12345) != nil || bare.Bytes(12345) != 0 || bare.PageMaterialized(12345) {
		t.Fatal("unmaterialized slab leaks state")
	}
	var pool PagePool
	s := NewDestSlab(4*PageSize, true)
	s.Queue(0, &pool) // materialize page 0 only
	for _, d := range []int{PageSize, 2 * PageSize, 4*PageSize - 1} {
		if s.Probe(d) != nil || s.Bytes(d) != 0 || s.PageMaterialized(d) {
			t.Fatalf("dst %d on absent page leaks state", d)
		}
	}
	var bareF FIFOSlab
	if bareF.Materialized() || bareF.Probe(7) != nil || bareF.Bytes(7) != 0 {
		t.Fatal("zero-value FIFO slab leaks state")
	}
}

// TestPagePoolRecycleAndReuse: a released page returns to the pool with
// cleared queues but intact segment capacity, so re-materializing and
// pushing through the pool allocates nothing.
func TestPagePoolRecycleAndReuse(t *testing.T) {
	var pool PagePool
	var segs SegPool
	s := NewDestSlab(2*PageSize, true)
	f := &flows.Flow{ID: 1, Dst: 3, Size: 1 << 30}

	// Fill a page with enough segments to grow every FIFO's array, then
	// drain and release it.
	fill := func(dst int) (ver uint32) {
		for i := 0; i < 16; i++ {
			s.Queue(dst, &pool).PushBytesPool(&segs, f, 100, int64(i*100), 0)
			_, ver = s.Add(dst, 100)
		}
		return ver
	}
	drain := func(dst int) (pageBytes int64, ver uint32) {
		n := s.Probe(dst).Take(1<<20, func(*flows.Flow, int64) {})
		return s.Add(dst, -n)
	}
	fill(3)
	pb, ver := drain(3)
	if pb != 0 {
		t.Fatalf("page bytes %d after full drain", pb)
	}
	if !s.ReleaseIfEmpty(0, ver, &pool) {
		t.Fatal("empty untouched page refused release")
	}
	if s.PageMaterialized(3) {
		t.Fatal("released page still materialized")
	}

	// Re-materializing the same destinations must reuse the pooled page
	// and push into its retained segment arrays without allocating.
	allocs := testing.AllocsPerRun(10, func() {
		fill(3)
		pb, ver := drain(3)
		if pb != 0 {
			t.Fatal("refill did not drain clean")
		}
		if !s.ReleaseIfEmpty(0, ver, &pool) {
			t.Fatal("release refused on recycle round")
		}
	})
	if allocs != 0 {
		t.Errorf("recycle round allocated %.1f times, want 0", allocs)
	}

	// A recycled page is indistinguishable from fresh: every queue empty.
	s.Queue(3, &pool)
	for d := 0; d < PageSize; d++ {
		if s.Bytes(d) != 0 {
			t.Fatalf("recycled page dst %d holds %d bytes", d, s.Bytes(d))
		}
	}
}

// TestReleaseVersionHysteresis: a page touched after its empty transition
// was recorded (the churn case) must refuse release — only pages that
// stayed empty and untouched since the recorded version go back to the
// pool.
func TestReleaseVersionHysteresis(t *testing.T) {
	var pool PagePool
	s := NewDestSlab(PageSize, false)
	f := &flows.Flow{ID: 1, Dst: 0, Size: 1 << 30}

	s.Queue(0, &pool).PushBytes(f, 50, 0, 0)
	s.Add(0, 50)
	n := s.Probe(0).Take(50, func(*flows.Flow, int64) {})
	pb, staleVer := s.Add(0, -n)
	if pb != 0 {
		t.Fatalf("page bytes %d", pb)
	}
	// The page is refilled before the deferred release fires.
	s.Queue(0, &pool).PushBytes(f, 70, 50, 0)
	s.Add(0, 70)
	if s.ReleaseIfEmpty(0, staleVer, &pool) {
		t.Fatal("released a page that was refilled after the candidate was recorded")
	}
	// Even once empty again, the stale version must not release it.
	n = s.Probe(0).Take(70, func(*flows.Flow, int64) {})
	_, freshVer := s.Add(0, -n)
	if s.ReleaseIfEmpty(0, staleVer, &pool) {
		t.Fatal("stale version released an empty page touched since")
	}
	if !s.ReleaseIfEmpty(0, freshVer, &pool) {
		t.Fatal("fresh version refused to release an empty untouched page")
	}
}

// TestPagedSlabTraceEquivalence replays one recorded op trace against the
// monolithic NewSlab and the paged DestSlab and demands byte-identical
// observable state after every op: per-destination bytes, head
// destinations, emitted (flow, n) sequences and weighted HoL ages.
func TestPagedSlabTraceEquivalence(t *testing.T) {
	for _, priority := range []bool{false, true} {
		const n = 3*PageSize + 11
		rng := rand.New(rand.NewSource(42))
		mono := NewSlab(n, priority)
		var pool PagePool
		paged := NewDestSlab(n, priority)
		flowsByID := map[int64]*flows.Flow{}
		flowFor := func(id int64, dst int) *flows.Flow {
			fl, ok := flowsByID[id]
			if !ok {
				fl = &flows.Flow{ID: id, Dst: dst, Size: 1 << 30}
				flowsByID[id] = fl
			}
			return fl
		}
		type emitRec struct {
			id int64
			n  int64
		}
		for op := 0; op < 20000; op++ {
			// Concentrate on a sparse hot set plus uniform background so
			// page-boundary and cross-page cases both occur.
			var dst int
			if rng.Intn(4) > 0 {
				dst = (PageSize - 3) + rng.Intn(8) // straddles pages 0/1
			} else {
				dst = rng.Intn(n)
			}
			switch rng.Intn(3) {
			case 0: // push
				id := int64(rng.Intn(50))
				sz := int64(1 + rng.Intn(4000))
				fl := flowFor(id, dst)
				mono[dst].PushBytes(fl, sz, 0, 0)
				paged.Queue(dst, &pool).PushBytes(fl, sz, 0, 0)
				paged.Add(dst, sz)
			case 1: // take
				max := int64(1 + rng.Intn(3000))
				var em, ep []emitRec
				tm := mono[dst].Take(max, func(f *flows.Flow, n int64) { em = append(em, emitRec{f.ID, n}) })
				var tp int64
				if q := paged.Probe(dst); q != nil {
					tp = q.Take(max, func(f *flows.Flow, n int64) { ep = append(ep, emitRec{f.ID, n}) })
					paged.Add(dst, -tp)
				}
				if tm != tp || len(em) != len(ep) {
					t.Fatalf("priority=%v op %d: take(%d) mono %d paged %d", priority, op, dst, tm, tp)
				}
				for i := range em {
					if em[i] != ep[i] {
						t.Fatalf("priority=%v op %d: emit %d differs: %+v vs %+v", priority, op, i, em[i], ep[i])
					}
				}
			case 2: // observe
				var pb int64
				var hd = -1
				var hol float64
				if q := paged.Probe(dst); q != nil {
					pb, hd, hol = q.Bytes(), q.HeadDst(), q.WeightedHoL(0, 0.5)
				}
				if mb := mono[dst].Bytes(); mb != pb {
					t.Fatalf("priority=%v op %d: Bytes(%d) mono %d paged %d", priority, op, dst, mb, pb)
				}
				if mh := mono[dst].HeadDst(); mh != hd {
					t.Fatalf("priority=%v op %d: HeadDst(%d) mono %d paged %d", priority, op, dst, mh, hd)
				}
				if mw := mono[dst].WeightedHoL(0, 0.5); mw != hol {
					t.Fatalf("priority=%v op %d: WeightedHoL(%d) mono %v paged %v", priority, op, dst, mw, hol)
				}
			}
		}
		// Final sweep: every destination byte-identical.
		for d := 0; d < n; d++ {
			if mono[d].Bytes() != paged.Bytes(d) {
				t.Fatalf("priority=%v final dst %d: mono %d paged %d", priority, d, mono[d].Bytes(), paged.Bytes(d))
			}
		}
	}
}
