package queue

import "fmt"

// Checkpoint support. A queue's live contents are exactly its segments at
// or after each FIFO's head (consumed slots before head hold no bytes and
// are never serialized). Restore must reproduce segments VERBATIM — same
// per-priority placement, same order, same byte counts — because PIAS
// priority is assigned by cumulative flow offset at push time, not by
// queue position: re-splitting restored segments through PushBytesPool
// would need offsets the queue does not store. RestoreSegment therefore
// bypasses the PIAS split and pushes into an explicit priority level, the
// inverse of ForEachSegment's walk.

// ForEachSegment visits every live segment in service order: priority
// levels in ascending order, FIFO order within each.
func (d *DestQueue) ForEachSegment(fn func(prio int, s Segment)) {
	for p := range d.prios {
		f := &d.prios[p]
		for i := f.head; i < len(f.segs); i++ {
			fn(p, f.segs[i])
		}
	}
}

// NumPrios reports the number of priority levels (1 without PIAS).
func (d *DestQueue) NumPrios() int { return len(d.prios) }

// RestoreSegment pushes a checkpointed segment verbatim into the given
// priority level, maintaining the aggregate byte counter exactly as the
// normal push paths do.
func (d *DestQueue) RestoreSegment(pool *SegPool, prio int, s Segment) error {
	if prio < 0 || prio >= len(d.prios) {
		return fmt.Errorf("queue: restored segment priority %d out of range [0, %d)", prio, len(d.prios))
	}
	if s.Bytes <= 0 || s.Flow == nil {
		return fmt.Errorf("queue: restored segment invalid (bytes=%d, flow nil=%v)", s.Bytes, s.Flow == nil)
	}
	d.prios[prio].PushPool(pool, s)
	d.bytes += s.Bytes
	return nil
}

// ForEachSegment visits every live segment of a plain FIFO in order (the
// relay queues are bare FIFOs, not DestQueues).
func (q *FIFO) ForEachSegment(fn func(s Segment)) {
	for i := q.head; i < len(q.segs); i++ {
		fn(q.segs[i])
	}
}
