// Package queue implements the ToR-side queueing model: per-destination
// FIFO queues (paper §3.1) optionally layered with the PIAS-style
// information-agnostic multi-level priority mechanism used for mice-flow
// prioritisation (paper §3.4.2).
//
// With priority queues enabled, the first DefaultPrio0Bytes of every flow
// land in priority 0, the next DefaultPrio1Bytes-DefaultPrio0Bytes in
// priority 1, and the remainder in priority 2 — the paper's "first 1KB,
// then the following 9KB, and then the rest" (§4.1). Each priority level
// drains FIFO, and dequeueing always serves the lowest-numbered non-empty
// priority, so mice flows overtake queued elephant bytes without any flow
// size knowledge.
//
// Transmission is byte-granular: a slot payload may pack bytes from
// several segments (and hence flows). This cut-through idealisation has no
// effect on the epoch-level dynamics the paper measures and keeps the hot
// path allocation-free.
package queue

import (
	"fmt"
	"math/bits"

	"negotiator/internal/flows"
	"negotiator/internal/sim"
)

// PIAS demotion thresholds (paper §4.1).
const (
	DefaultPrio0Bytes = 1 << 10  // first 1 KB of a flow
	DefaultPrio1Bytes = 10 << 10 // up to 10 KB of a flow
	NumPriorities     = 3
)

// Segment is a contiguous run of one flow's bytes inside a queue.
type Segment struct {
	Flow     *flows.Flow
	Bytes    int64
	Enqueued sim.Time // when the segment entered this queue (for HoL stats)
}

// SegPool recycles the backing arrays FIFOs shed when they grow: a queue
// deepening under flow churn reuses capacity another queue discarded
// instead of allocating. Arrays are binned by power-of-two capacity and
// cleared on return (no stale flow references). The pool is
// unsynchronised: every queue GROWTH in the engines happens in a serial
// phase (arrival admission, loss requeue, relay pushes in the serial
// merge) — parallel phases only take, and takes never grow.
type SegPool struct {
	classes [33][][]Segment
}

// get returns an empty segment slice with capacity at least minCap. The
// class granularity matches append's doubling, so pooled queues keep the
// same compact arrays un-pooled queues would have — mostly-idle queues
// must not be inflated to a larger class (cache footprint is the whole
// point of the slab layout).
func (p *SegPool) get(minCap int) []Segment {
	if minCap < 2 {
		minCap = 2
	}
	c := bits.Len(uint(minCap - 1)) // smallest c with 1<<c >= minCap
	if free := p.classes[c]; len(free) > 0 {
		arr := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		return arr
	}
	return make([]Segment, 0, 1<<c)
}

// put returns a discarded backing array to the pool, cleared.
func (p *SegPool) put(arr []Segment) {
	if cap(arr) < 2 {
		return
	}
	arr = arr[:cap(arr)]
	for i := range arr {
		arr[i] = Segment{}
	}
	c := bits.Len(uint(cap(arr))) - 1 // largest c with 1<<c <= cap
	if len(p.classes[c]) < 4096 {
		p.classes[c] = append(p.classes[c], arr[:0])
	}
}

// FIFO is a segment queue with O(1) amortised push/pop and no steady-state
// allocation. The zero value is an empty queue ready for use.
type FIFO struct {
	segs  []Segment
	head  int
	bytes int64
}

// Push appends a segment. Zero-byte segments are dropped.
func (q *FIFO) Push(s Segment) { q.PushPool(nil, s) }

// PushPool is Push with segment-array recycling: when the append would
// grow the backing array and pool is non-nil, the replacement comes from
// the pool and the old array is returned to it.
func (q *FIFO) PushPool(pool *SegPool, s Segment) {
	if s.Bytes <= 0 {
		return
	}
	if q.head > 64 && q.head*2 >= len(q.segs) {
		n := copy(q.segs, q.segs[q.head:])
		q.segs = q.segs[:n]
		q.head = 0
	}
	// Recycle only on genuine growth (cap 0 means the first push: plain
	// append keeps the tiny-queue footprint identical to the unpooled
	// path), doubling like append would.
	if pool != nil && len(q.segs) == cap(q.segs) && cap(q.segs) > 0 {
		grown := pool.get(2 * cap(q.segs))
		grown = grown[:copy(grown[:cap(grown)], q.segs[q.head:])]
		pool.put(q.segs)
		q.segs = grown
		q.head = 0
	}
	q.segs = append(q.segs, s)
	q.bytes += s.Bytes
}

// Bytes reports the queued byte total.
func (q *FIFO) Bytes() int64 { return q.bytes }

// Empty reports whether the queue holds no bytes.
func (q *FIFO) Empty() bool { return q.bytes == 0 }

// Len reports the number of queued segments.
func (q *FIFO) Len() int { return len(q.segs) - q.head }

// Head returns the front segment without removing it. It panics when empty.
func (q *FIFO) Head() *Segment {
	if q.Empty() {
		panic("queue: Head of empty FIFO")
	}
	return &q.segs[q.head]
}

// Take removes up to max bytes from the front of the queue in FIFO order,
// invoking emit once per (flow, byte-run) taken. It returns the bytes taken.
func (q *FIFO) Take(max int64, emit func(f *flows.Flow, n int64)) int64 {
	var taken int64
	for taken < max && !q.Empty() {
		s := &q.segs[q.head]
		n := s.Bytes
		if rem := max - taken; n > rem {
			n = rem
		}
		s.Bytes -= n
		q.bytes -= n
		taken += n
		emit(s.Flow, n)
		if s.Bytes == 0 {
			s.Flow = nil // allow GC of completed flows
			q.head++
		}
	}
	return taken
}

// TakeReady is Take restricted to segments whose Enqueued time is at or
// before now. It models in-flight data: a relay queue is filled with future
// arrival timestamps, and the intermediate may only forward bytes that have
// physically arrived. Segments are enqueued in non-decreasing time order,
// so the scan stops at the first not-yet-arrived segment.
func (q *FIFO) TakeReady(max int64, now sim.Time, emit func(f *flows.Flow, n int64)) int64 {
	var taken int64
	for taken < max && !q.Empty() {
		s := &q.segs[q.head]
		if s.Enqueued > now {
			break
		}
		n := s.Bytes
		if rem := max - taken; n > rem {
			n = rem
		}
		s.Bytes -= n
		q.bytes -= n
		taken += n
		emit(s.Flow, n)
		if s.Bytes == 0 {
			s.Flow = nil
			q.head++
		}
	}
	return taken
}

// TakeCell removes up to max bytes belonging to one destination: the head
// segment's flow destination, packing consecutive segments that share it.
// It models a network cell, which carries exactly one destination header.
// It returns the destination served and the bytes taken (dst -1 if empty).
func (q *FIFO) TakeCell(max int64, emit func(f *flows.Flow, n int64)) (dst int, taken int64) {
	if q.Empty() {
		return -1, 0
	}
	dst = q.Head().Flow.Dst
	for taken < max && !q.Empty() && q.Head().Flow.Dst == dst {
		s := &q.segs[q.head]
		n := s.Bytes
		if rem := max - taken; n > rem {
			n = rem
		}
		s.Bytes -= n
		q.bytes -= n
		taken += n
		emit(s.Flow, n)
		if s.Bytes == 0 {
			s.Flow = nil
			q.head++
		}
	}
	return dst, taken
}

// HeadReady reports whether the front segment has arrived by now — the
// O(1) guard for relay service decisions (segments are queued in
// non-decreasing arrival order, so a late head implies nothing is ready).
func (q *FIFO) HeadReady(now sim.Time) bool {
	return !q.Empty() && q.segs[q.head].Enqueued <= now
}

// ReadyBytes reports how many queued bytes have arrived by now.
func (q *FIFO) ReadyBytes(now sim.Time) int64 {
	var b int64
	for i := q.head; i < len(q.segs); i++ {
		if q.segs[i].Enqueued > now {
			break
		}
		b += q.segs[i].Bytes
	}
	return b
}

// DestQueue is the per-destination queue of one ToR: either a single FIFO
// (priority queues disabled) or a PIAS multi-level feedback queue. The
// aggregate byte counter is maintained by every push/take, so Bytes() and
// Empty() are O(1) field reads — the per-round demand sweeps of the
// engines read them N² times per epoch. DestQueue is embeddable by value:
// NewSlab lays a whole VOQ set out contiguously.
type DestQueue struct {
	prios    []FIFO
	priority bool
	bytes    int64
}

// NewDestQueue returns a per-destination queue; priority selects the PIAS
// multi-level variant.
func NewDestQueue(priority bool) *DestQueue {
	n := 1
	if priority {
		n = NumPriorities
	}
	return &DestQueue{prios: make([]FIFO, n), priority: priority}
}

// NewSlab returns n per-destination queues laid out contiguously, with all
// their priority FIFOs in one shared backing array: a node's whole VOQ set
// is two allocations, and a dense sweep of Bytes()/Empty() walks
// consecutive cache lines instead of chasing n heap pointers.
func NewSlab(n int, priority bool) []DestQueue {
	np := 1
	if priority {
		np = NumPriorities
	}
	fifos := make([]FIFO, n*np)
	qs := make([]DestQueue, n)
	for j := range qs {
		qs[j] = DestQueue{prios: fifos[j*np : (j+1)*np : (j+1)*np], priority: priority}
	}
	return qs
}

// Push enqueues all bytes of flow f (all members, for a group) at time
// now, splitting across priority levels by the PIAS thresholds when
// enabled.
func (d *DestQueue) Push(f *flows.Flow, now sim.Time) {
	d.PushBytes(f, f.Total(), 0, now)
}

// PushBytes enqueues n bytes of flow f whose first byte is at offset off
// within the flow. Offsets matter because PIAS priorities are assigned by
// cumulative position in the flow, not by arrival order (a requeued byte
// keeps its original priority).
func (d *DestQueue) PushBytes(f *flows.Flow, n, off int64, now sim.Time) {
	d.PushBytesPool(nil, f, n, off, now)
}

// PushBytesPool is PushBytes with segment-array recycling (see
// FIFO.PushPool).
func (d *DestQueue) PushBytesPool(pool *SegPool, f *flows.Flow, n, off int64, now sim.Time) {
	if n <= 0 {
		return
	}
	d.bytes += n
	if !d.priority {
		d.prios[0].PushPool(pool, Segment{Flow: f, Bytes: n, Enqueued: now})
		return
	}
	// PIAS demotion is per HOST flow. For a flow group, off is a position
	// in the concatenated member stream, so split the run at member
	// boundaries and demote each piece by its member-relative offset —
	// byte-for-byte the placement Count separate flows would get.
	if f.Count > 1 {
		for n > 0 {
			mOff := off % f.Size
			take := f.Size - mOff
			if take > n {
				take = n
			}
			d.pushPrios(pool, f, take, mOff, now)
			off += take
			n -= take
		}
		return
	}
	d.pushPrios(pool, f, n, off, now)
}

// pushPrios splits one member-contained byte run across the PIAS priority
// levels. The caller has already added n to the aggregate byte counter.
func (d *DestQueue) pushPrios(pool *SegPool, f *flows.Flow, n, off int64, now sim.Time) {
	bounds := [...]int64{DefaultPrio0Bytes, DefaultPrio1Bytes, 1 << 62}
	for p := 0; p < NumPriorities && n > 0; p++ {
		if off >= bounds[p] {
			continue
		}
		take := bounds[p] - off
		if take > n {
			take = n
		}
		d.prios[p].PushPool(pool, Segment{Flow: f, Bytes: take, Enqueued: now})
		off += take
		n -= take
	}
	if n > 0 {
		panic(fmt.Sprintf("queue: %d bytes beyond final priority bound", n))
	}
}

// Bytes reports the total queued bytes across all priorities (an O(1)
// field read; the counter is maintained by push/take).
func (d *DestQueue) Bytes() int64 { return d.bytes }

// Recount sums the per-priority FIFO byte counters — the figure the
// aggregate must match, for invariant checks.
func (d *DestQueue) Recount() int64 {
	var total int64
	for i := range d.prios {
		total += d.prios[i].bytes
	}
	return total
}

// Empty reports whether no bytes are queued.
func (d *DestQueue) Empty() bool { return d.bytes == 0 }

// Take removes up to max bytes, serving priorities in order and FIFO within
// each priority. It returns the bytes taken.
func (d *DestQueue) Take(max int64, emit func(f *flows.Flow, n int64)) int64 {
	var taken int64
	for p := range d.prios {
		if taken >= max {
			break
		}
		taken += d.prios[p].Take(max-taken, emit)
	}
	d.bytes -= taken
	return taken
}

// HeadDst returns the destination of the next data to be served (the head
// flow of the highest-priority non-empty queue), or -1 when empty. Used by
// spray lanes, whose segments mix final destinations.
func (d *DestQueue) HeadDst() int {
	for p := range d.prios {
		if !d.prios[p].Empty() {
			return d.prios[p].Head().Flow.Dst
		}
	}
	return -1
}

// TakeHeadCell removes up to max bytes for a single destination from the
// highest-priority non-empty queue (see FIFO.TakeCell). It returns the
// destination served and bytes taken.
func (d *DestQueue) TakeHeadCell(max int64, emit func(f *flows.Flow, n int64)) (dst int, taken int64) {
	for p := range d.prios {
		if !d.prios[p].Empty() {
			dst, taken = d.prios[p].TakeCell(max, emit)
			d.bytes -= taken
			return dst, taken
		}
	}
	return -1, 0
}

// TakeLowestOnly removes up to max bytes but only from the lowest-priority
// (elephant) queue, used by the traffic-aware selective relay variant
// (App. A.2.2), which relays only elephant-class data.
func (d *DestQueue) TakeLowestOnly(max int64, emit func(f *flows.Flow, n int64)) int64 {
	taken := d.prios[len(d.prios)-1].Take(max, emit)
	d.bytes -= taken
	return taken
}

// LowestPriorityBytes reports the bytes queued at the lowest priority.
func (d *DestQueue) LowestPriorityBytes() int64 {
	return d.prios[len(d.prios)-1].bytes
}

// HoLWait returns the per-priority head-of-line waiting times at now,
// padded with zeros for empty queues. Used by the HoL-delay informative
// request variant (App. A.2.3).
func (d *DestQueue) HoLWait(now sim.Time) [NumPriorities]sim.Duration {
	var w [NumPriorities]sim.Duration
	for p := range d.prios {
		if !d.prios[p].Empty() {
			w[p] = now.Sub(d.prios[p].Head().Enqueued)
		}
	}
	return w
}

// WeightedHoL computes the paper's weighted head-of-line delay
// (App. A.2.3): (1-α)·(HoL₀+HoL₁)/2 + α·HoL₂, with α small so mice-bearing
// pairs are scheduled promptly while elephants still register demand.
func (d *DestQueue) WeightedHoL(now sim.Time, alpha float64) float64 {
	w := d.HoLWait(now)
	return (1-alpha)*(float64(w[0])+float64(w[1]))/2 + alpha*float64(w[2])
}
