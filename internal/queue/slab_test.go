package queue

import (
	"testing"

	"negotiator/internal/flows"
)

// TestNewSlabIndependence: slab entries are independent queues over one
// shared FIFO backing array.
func TestNewSlabIndependence(t *testing.T) {
	for _, priority := range []bool{false, true} {
		qs := NewSlab(4, priority)
		if len(qs) != 4 {
			t.Fatalf("slab len = %d", len(qs))
		}
		f := &flows.Flow{ID: 1, Size: 1 << 30}
		qs[1].PushBytes(f, 20<<10, 0, 0)
		for j := range qs {
			want := int64(0)
			if j == 1 {
				want = 20 << 10
			}
			if got := qs[j].Bytes(); got != want {
				t.Fatalf("priority=%v slab[%d].Bytes() = %d, want %d", priority, j, got, want)
			}
			if got := qs[j].Recount(); got != want {
				t.Fatalf("priority=%v slab[%d].Recount() = %d, want %d", priority, j, got, want)
			}
		}
		var taken int64
		for taken < 20<<10 {
			n := qs[1].Take(3000, func(*flows.Flow, int64) {})
			if n == 0 {
				t.Fatal("take stalled")
			}
			taken += n
			if qs[1].Bytes() != qs[1].Recount() {
				t.Fatalf("aggregate %d != recount %d mid-drain", qs[1].Bytes(), qs[1].Recount())
			}
		}
		if !qs[1].Empty() {
			t.Fatal("queue not empty after full drain")
		}
	}
}

// TestAggregateCounterAcrossTakeFlavors: every take flavor maintains the
// O(1) byte counter.
func TestAggregateCounterAcrossTakeFlavors(t *testing.T) {
	d := NewDestQueue(true)
	f := &flows.Flow{ID: 1, Dst: 3, Size: 1 << 30}
	d.PushBytes(f, 64<<10, 0, 0)
	d.TakeHeadCell(500, func(*flows.Flow, int64) {})
	d.TakeLowestOnly(1000, func(*flows.Flow, int64) {})
	d.Take(2000, func(*flows.Flow, int64) {})
	want := int64(64<<10) - 500 - 1000 - 2000
	if d.Bytes() != want || d.Recount() != want {
		t.Fatalf("aggregate %d recount %d, want %d", d.Bytes(), d.Recount(), want)
	}
}

// TestSegPoolRecycles: growing through the pool reuses arrays shed by
// earlier growth and never loses segments.
func TestSegPoolRecycles(t *testing.T) {
	var pool SegPool
	var q FIFO
	f := &flows.Flow{ID: 1, Size: 1 << 30}
	const pushes = 100
	for i := 0; i < pushes; i++ {
		q.PushPool(&pool, Segment{Flow: f, Bytes: 10})
	}
	if q.Len() != pushes || q.Bytes() != 10*pushes {
		t.Fatalf("after pooled pushes: len %d bytes %d", q.Len(), q.Bytes())
	}
	// A second queue growing through the pool picks up the arrays the
	// first one shed.
	var q2 FIFO
	preAlloc := testing.AllocsPerRun(1, func() {
		q2 = FIFO{}
		for i := 0; i < 60; i++ {
			q2.PushPool(&pool, Segment{Flow: f, Bytes: 10})
		}
	})
	if preAlloc > 2 { // at most the unpooled cap-0->1 first array and one growth miss
		t.Errorf("second pooled queue allocated %.0f times, want <= 2", preAlloc)
	}
	var total int64
	q.Take(10*pushes, func(_ *flows.Flow, n int64) { total += n })
	if total != 10*pushes {
		t.Fatalf("drained %d, want %d", total, 10*pushes)
	}
}
