package queue

import "fmt"

// Paged destination slabs decouple a node's queue memory from topology
// width. NewSlab lays a node's whole VOQ set out as one N-wide array —
// compact per node, but a single touched node at 65,536 ToRs would pay
// for 65,536 destinations' worth of queue headers when spray traffic
// occupies a few hundred. A paged slab keeps only a page TABLE of
// pointers (N/PageSize words) and materializes fixed-width pages of
// PageSize contiguous destinations on first touch, so per-node memory
// follows the destinations traffic actually reaches while sweeps inside
// a page still walk consecutive cache lines, exactly as the monolithic
// slab's did.
//
// Pages carry two small bookkeeping fields the fabric's deferred release
// relies on:
//
//   - bytes: the page-aggregate byte counter, maintained by the owner
//     through Add at the same choke points that maintain the per-queue
//     aggregates. A page whose counter hits zero is a release candidate.
//   - ver: a touch version bumped by every materialization and every
//     positive Add (push). A release candidate is recorded with its
//     version; the releaser honours it only if the version is unchanged,
//     i.e. the page has stayed empty and untouched since the candidate
//     was recorded. Churning pages (emptied and refilled every round)
//     are never released, so steady state stays allocation-free.
//
// Release returns pages to a PagePool with their FIFO segment arrays
// attached (cleared), so a page re-materialized from the pool pushes
// without allocating — recycling is invisible to the zero-alloc
// guarantees as well as to the simulation (a recycled page is
// indistinguishable from a fresh one).
const (
	// PageShift sets the page width: PageSize = 128 destinations keeps a
	// plain page at ~5 KB (one-priority) and means the sparse tiers'
	// contiguous active sets (e.g. 256 destinations) occupy two pages.
	PageShift = 7
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
)

// numPages returns the page-table length covering n destinations.
func numPages(n int) int { return (n + PageSize - 1) >> PageShift }

// destPage is one materialized chunk of PageSize destination queues with
// their priority FIFOs in a shared backing array (the monolithic slab's
// layout, at page granularity).
type destPage struct {
	qs    []DestQueue // len PageSize
	fifos []FIFO      // len PageSize * numPriorities, backing qs' prios
	bytes int64
	ver   uint32
}

func newDestPage(priority bool) *destPage {
	np := 1
	if priority {
		np = NumPriorities
	}
	fifos := make([]FIFO, PageSize*np)
	qs := make([]DestQueue, PageSize)
	for j := range qs {
		qs[j] = DestQueue{prios: fifos[j*np : (j+1)*np : (j+1)*np], priority: priority}
	}
	return &destPage{qs: qs, fifos: fifos}
}

// fifoPage is one materialized chunk of PageSize plain FIFOs (relay
// queues).
type fifoPage struct {
	fifos []FIFO // len PageSize
	bytes int64
	ver   uint32
}

func newFIFOPage() *fifoPage { return &fifoPage{fifos: make([]FIFO, PageSize)} }

// recycle clears a FIFO for reuse, dropping flow references but KEEPING
// the backing segment array (a recycled page must push without
// allocating). The whole capacity is cleared: compaction can leave stale
// segment copies beyond len.
func (q *FIFO) recycle() {
	segs := q.segs[:cap(q.segs)]
	for i := range segs {
		segs[i] = Segment{}
	}
	q.segs = q.segs[:0]
	q.head = 0
	q.bytes = 0
}

// PagePool recycles released pages, keyed by page kind (plain FIFO pages
// vs destination pages with and without priority levels). Like SegPool it
// is unsynchronised: pages are taken at materialization (pushes, which
// run only in serial phases) and returned by the core's serial merge.
type PagePool struct {
	dest [2][]*destPage // [0] single-FIFO, [1] priority
	fifo []*fifoPage
}

// maxFreePages caps each freelist; beyond it released pages go to the GC.
const maxFreePages = 4096

func (p *PagePool) getDest(priority bool) *destPage {
	k := 0
	if priority {
		k = 1
	}
	if free := p.dest[k]; len(free) > 0 {
		pg := free[len(free)-1]
		free[len(free)-1] = nil
		p.dest[k] = free[:len(free)-1]
		return pg
	}
	return newDestPage(priority)
}

func (p *PagePool) putDest(pg *destPage, priority bool) {
	for i := range pg.fifos {
		pg.fifos[i].recycle()
	}
	for i := range pg.qs {
		pg.qs[i].bytes = 0
	}
	pg.bytes, pg.ver = 0, 0
	k := 0
	if priority {
		k = 1
	}
	if len(p.dest[k]) < maxFreePages {
		p.dest[k] = append(p.dest[k], pg)
	}
}

func (p *PagePool) getFIFO() *fifoPage {
	if free := p.fifo; len(free) > 0 {
		pg := free[len(free)-1]
		free[len(free)-1] = nil
		p.fifo = free[:len(free)-1]
		return pg
	}
	return newFIFOPage()
}

func (p *PagePool) putFIFO(pg *fifoPage) {
	for i := range pg.fifos {
		pg.fifos[i].recycle()
	}
	pg.bytes, pg.ver = 0, 0
	if len(p.fifo) < maxFreePages {
		p.fifo = append(p.fifo, pg)
	}
}

// DestSlab is the paged replacement for a NewSlab VOQ set: a page table
// over n destinations whose pages materialize on first push. The zero
// value is an unmaterialized slab (the lazy-node idiom: no memory at all
// until the class is first pushed into).
type DestSlab struct {
	pages    []*destPage
	n        int
	priority bool
}

// NewDestSlab returns a paged slab over n destinations holding only the
// page table — no queue memory until pages materialize.
func NewDestSlab(n int, priority bool) DestSlab {
	return DestSlab{pages: make([]*destPage, numPages(n)), n: n, priority: priority}
}

// Materialized reports whether the slab itself exists (the class has been
// pushed into at least once).
func (s *DestSlab) Materialized() bool { return s.pages != nil }

// Width returns the destination count the slab covers.
func (s *DestSlab) Width() int { return s.n }

// NumPages returns the page-table length.
func (s *DestSlab) NumPages() int { return len(s.pages) }

// PageOf returns the page index covering dst.
func PageOf(dst int) int { return dst >> PageShift }

// Probe returns the queue for dst, or nil when its page (or the slab) has
// not materialized — the nil-page-safe read path. An absent page reads as
// a set of empty queues.
func (s *DestSlab) Probe(dst int) *DestQueue {
	i := dst >> PageShift
	if i >= len(s.pages) {
		return nil
	}
	pg := s.pages[i]
	if pg == nil {
		return nil
	}
	return &pg.qs[dst&pageMask]
}

// Queue returns the queue for dst, materializing its page from the pool
// on first touch (and bumping the page's touch version). Mutation path
// only: pushes run in serial phases, so materialization never races with
// the parallel phases' Probe reads.
func (s *DestSlab) Queue(dst int, pool *PagePool) *DestQueue {
	i := dst >> PageShift
	pg := s.pages[i]
	if pg == nil {
		pg = pool.getDest(s.priority)
		s.pages[i] = pg
	}
	pg.ver++
	return &pg.qs[dst&pageMask]
}

// Bytes returns the queued bytes for dst (zero for absent pages).
func (s *DestSlab) Bytes(dst int) int64 {
	if q := s.Probe(dst); q != nil {
		return q.Bytes()
	}
	return 0
}

// Add adjusts dst's page byte counter by delta (the owner calls it at the
// same choke points that maintain the per-queue aggregates) and returns
// the page's new total with its touch version — a zero total is a release
// candidate, honoured later only if the version is still current.
func (s *DestSlab) Add(dst int, delta int64) (pageBytes int64, ver uint32) {
	pg := s.pages[dst>>PageShift]
	pg.bytes += delta
	if pg.bytes < 0 {
		panic(fmt.Sprintf("queue: page %d byte counter negative (%d)", dst>>PageShift, pg.bytes))
	}
	return pg.bytes, pg.ver
}

// ReleaseIfEmpty returns the page to the pool if it still holds zero
// bytes AND its touch version matches ver (no push since the candidate
// was recorded). It reports whether the page was released.
func (s *DestSlab) ReleaseIfEmpty(page int, ver uint32, pool *PagePool) bool {
	pg := s.pages[page]
	if pg == nil || pg.bytes != 0 || pg.ver != ver {
		return false
	}
	s.pages[page] = nil
	pool.putDest(pg, s.priority)
	return true
}

// ForEachPage invokes fn for every materialized page with the page index,
// the first destination it covers, its queues (trimmed to the slab width
// on the final page) and its byte counter — the contiguous-iteration
// surface for page-wise sweeps and invariant checks.
func (s *DestSlab) ForEachPage(fn func(page, base int, qs []DestQueue, bytes int64)) {
	for i, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := i << PageShift
		qs := pg.qs
		if rem := s.n - base; rem < PageSize {
			qs = qs[:rem]
		}
		fn(i, base, qs, pg.bytes)
	}
}

// PageMaterialized reports whether the page covering dst exists.
func (s *DestSlab) PageMaterialized(dst int) bool {
	i := dst >> PageShift
	return i < len(s.pages) && s.pages[i] != nil
}

// MaterializedPages counts materialized pages.
func (s *DestSlab) MaterializedPages() int {
	var k int
	for _, pg := range s.pages {
		if pg != nil {
			k++
		}
	}
	return k
}

// MaterializeAll eagerly materializes every page, reproducing the
// monolithic pre-paging footprint (lazy-vs-eager equivalence tests).
func (s *DestSlab) MaterializeAll(pool *PagePool) {
	for i := range s.pages {
		if s.pages[i] == nil {
			s.pages[i] = pool.getDest(s.priority)
		}
	}
}

// FIFOSlab is the paged replacement for a []FIFO relay set: a page table
// over n destinations whose FIFO pages materialize on first push.
type FIFOSlab struct {
	pages []*fifoPage
	n     int
}

// NewFIFOSlab returns a paged FIFO slab over n destinations holding only
// the page table.
func NewFIFOSlab(n int) FIFOSlab {
	return FIFOSlab{pages: make([]*fifoPage, numPages(n)), n: n}
}

// Materialized reports whether the slab itself exists.
func (s *FIFOSlab) Materialized() bool { return s.pages != nil }

// Width returns the destination count the slab covers.
func (s *FIFOSlab) Width() int { return s.n }

// NumPages returns the page-table length.
func (s *FIFOSlab) NumPages() int { return len(s.pages) }

// Probe returns the FIFO for dst, or nil when its page (or the slab) has
// not materialized.
func (s *FIFOSlab) Probe(dst int) *FIFO {
	i := dst >> PageShift
	if i >= len(s.pages) {
		return nil
	}
	pg := s.pages[i]
	if pg == nil {
		return nil
	}
	return &pg.fifos[dst&pageMask]
}

// Get returns the FIFO for dst, materializing its page from the pool on
// first touch (and bumping the page's touch version). Mutation path only.
func (s *FIFOSlab) Get(dst int, pool *PagePool) *FIFO {
	i := dst >> PageShift
	pg := s.pages[i]
	if pg == nil {
		pg = pool.getFIFO()
		s.pages[i] = pg
	}
	pg.ver++
	return &pg.fifos[dst&pageMask]
}

// Bytes returns the queued bytes for dst (zero for absent pages).
func (s *FIFOSlab) Bytes(dst int) int64 {
	if q := s.Probe(dst); q != nil {
		return q.Bytes()
	}
	return 0
}

// Add adjusts dst's page byte counter by delta, returning the page total
// and touch version (see DestSlab.Add).
func (s *FIFOSlab) Add(dst int, delta int64) (pageBytes int64, ver uint32) {
	pg := s.pages[dst>>PageShift]
	pg.bytes += delta
	if pg.bytes < 0 {
		panic(fmt.Sprintf("queue: page %d byte counter negative (%d)", dst>>PageShift, pg.bytes))
	}
	return pg.bytes, pg.ver
}

// ReleaseIfEmpty returns the page to the pool if still empty and
// untouched since ver was recorded.
func (s *FIFOSlab) ReleaseIfEmpty(page int, ver uint32, pool *PagePool) bool {
	pg := s.pages[page]
	if pg == nil || pg.bytes != 0 || pg.ver != ver {
		return false
	}
	s.pages[page] = nil
	pool.putFIFO(pg)
	return true
}

// ForEachPage invokes fn for every materialized page (see
// DestSlab.ForEachPage).
func (s *FIFOSlab) ForEachPage(fn func(page, base int, fs []FIFO, bytes int64)) {
	for i, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := i << PageShift
		fs := pg.fifos
		if rem := s.n - base; rem < PageSize {
			fs = fs[:rem]
		}
		fn(i, base, fs, pg.bytes)
	}
}

// PageMaterialized reports whether the page covering dst exists.
func (s *FIFOSlab) PageMaterialized(dst int) bool {
	i := dst >> PageShift
	return i < len(s.pages) && s.pages[i] != nil
}

// MaterializedPages counts materialized pages.
func (s *FIFOSlab) MaterializedPages() int {
	var k int
	for _, pg := range s.pages {
		if pg != nil {
			k++
		}
	}
	return k
}

// MaterializeAll eagerly materializes every page.
func (s *FIFOSlab) MaterializeAll(pool *PagePool) {
	for i := range s.pages {
		if s.pages[i] == nil {
			s.pages[i] = pool.getFIFO()
		}
	}
}
