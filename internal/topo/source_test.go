package topo

import "testing"

// TestPredefinedSourceInverse pins the inverse contract the oblivious
// plane's destination-inverted drain walk relies on: for every (s, t, r),
// PredefinedPeer(·, s, t, r) is a partial permutation and PredefinedSource
// is its exact inverse — PredefinedSource(j, s, t, r) == i if and only if
// PredefinedPeer(i, s, t, r) == j, with -1 exactly where no source exists.
func TestPredefinedSourceInverse(t *testing.T) {
	par, err := NewParallel(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewThinClos(24, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, top := range map[string]Topology{"parallel": par, "thin-clos": tc} {
		n, s := top.N(), top.Ports()
		for r := 0; r < 3; r++ {
			for tt := 0; tt < top.PredefinedSlots(); tt++ {
				for port := 0; port < s; port++ {
					// src[j] = the unique i with PredefinedPeer(i) == j.
					src := make([]int, n)
					for j := range src {
						src[j] = -1
					}
					for i := 0; i < n; i++ {
						j := top.PredefinedPeer(i, port, tt, r)
						if j < 0 {
							continue
						}
						if src[j] != -1 {
							t.Fatalf("%s: (s=%d t=%d r=%d) peers %d and %d both hit %d",
								name, port, tt, r, src[j], i, j)
						}
						src[j] = i
					}
					for j := 0; j < n; j++ {
						if got := top.PredefinedSource(j, port, tt, r); got != src[j] {
							t.Errorf("%s: PredefinedSource(%d, s=%d, t=%d, r=%d) = %d, want %d",
								name, j, port, tt, r, got, src[j])
						}
					}
				}
			}
		}
	}
}
