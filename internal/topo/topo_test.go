package topo

import (
	"testing"
	"testing/quick"
)

func mustParallel(t *testing.T, n, s int) *Parallel {
	t.Helper()
	p, err := NewParallel(n, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustThinClos(t *testing.T, n, s, w int) *ThinClos {
	t.Helper()
	tc, err := NewThinClos(n, s, w)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewParallel(1, 4); err == nil {
		t.Error("NewParallel(1,4) should fail")
	}
	if _, err := NewParallel(8, 0); err == nil {
		t.Error("NewParallel(8,0) should fail")
	}
	if _, err := NewThinClos(128, 8, 15); err == nil {
		t.Error("NewThinClos with n != s*w should fail")
	}
	if _, err := NewThinClos(0, 0, 0); err == nil {
		t.Error("NewThinClos(0,0,0) should fail")
	}
}

func TestPaperScaleDimensions(t *testing.T) {
	p := mustParallel(t, 128, 8)
	if got := p.PredefinedSlots(); got != 16 {
		t.Errorf("parallel predefined slots = %d, want 16 (paper §4.1)", got)
	}
	if c, ports := p.AWGRs(); c != 8 || ports != 128 {
		t.Errorf("parallel AWGRs = %d x %d-port, want 8 x 128-port", c, ports)
	}

	tc := mustThinClos(t, 128, 8, 16)
	if got := tc.PredefinedSlots(); got != 16 {
		t.Errorf("thin-clos predefined slots = %d, want 16 (paper §4.1)", got)
	}
	if c, ports := tc.AWGRs(); c != 64 || ports != 16 {
		t.Errorf("thin-clos AWGRs = %d x %d-port, want 64 x 16-port", c, ports)
	}
}

func TestParallelReachability(t *testing.T) {
	p := mustParallel(t, 16, 4)
	for s := 0; s < 4; s++ {
		if p.CanReach(3, s, 3) {
			t.Errorf("self-reach allowed on port %d", s)
		}
		if !p.CanReach(3, s, 7) {
			t.Errorf("parallel should reach any dst on any port (port %d)", s)
		}
	}
	if p.CanReach(3, 4, 7) {
		t.Error("out-of-range port accepted")
	}
	if p.PathPort(3, 7) != -1 {
		t.Error("parallel PathPort should be -1 (any)")
	}
	if p.PathPort(3, 3) != -2 {
		t.Error("PathPort(self) should be -2")
	}
}

func TestThinClosSinglePath(t *testing.T) {
	tc := mustThinClos(t, 16, 4, 4)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				if tc.PathPort(src, dst) != -2 {
					t.Errorf("PathPort(%d,%d) should be -2", src, dst)
				}
				continue
			}
			// Exactly one port reaches dst.
			count := 0
			path := -1
			for s := 0; s < 4; s++ {
				if tc.CanReach(src, s, dst) {
					count++
					path = s
				}
			}
			if count != 1 {
				t.Fatalf("thin-clos src=%d dst=%d reachable via %d ports, want exactly 1", src, dst, count)
			}
			if got := tc.PathPort(src, dst); got != path {
				t.Errorf("PathPort(%d,%d) = %d, but CanReach says %d", src, dst, got, path)
			}
			// Identical port index on both ends: the reverse path uses
			// the same port (paper §3.6.1).
			if rev := tc.PathPort(dst, src); rev != path {
				t.Errorf("reverse path port %d != forward %d for (%d,%d)", rev, path, src, dst)
			}
		}
	}
}

func TestThinClosPortPartition(t *testing.T) {
	// The S port-reachable sets of a source partition all other ToRs.
	tc := mustThinClos(t, 128, 8, 16)
	for src := 0; src < 128; src += 13 {
		seen := make(map[int]int)
		for s := 0; s < 8; s++ {
			for dst := 0; dst < 128; dst++ {
				if tc.CanReach(src, s, dst) {
					seen[dst]++
				}
			}
		}
		for dst := 0; dst < 128; dst++ {
			want := 1
			if dst == src {
				want = 0
			}
			if seen[dst] != want {
				t.Fatalf("src %d reaches dst %d via %d ports, want %d", src, dst, seen[dst], want)
			}
		}
	}
}

func TestThinClosPortDomain(t *testing.T) {
	tc := mustThinClos(t, 128, 8, 16)
	for dst := 0; dst < 128; dst += 11 {
		for s := 0; s < 8; s++ {
			dom := tc.PortDomain(dst, s)
			if len(dom) != 16 {
				t.Fatalf("PortDomain(%d,%d) size %d, want 16", dst, s, len(dom))
			}
			for _, src := range dom {
				if src != dst && !tc.CanReach(src, s, dst) {
					t.Fatalf("PortDomain(%d,%d) contains %d which cannot reach", dst, s, src)
				}
			}
		}
	}
}

// checkPredefinedPhase asserts the two core invariants of a predefined
// phase under rotation r: (1) conflict-freedom: per slot, each destination
// port hears from at most one source; (2) coverage: every ordered pair
// meets exactly once.
func checkPredefinedPhase(t *testing.T, topo Topology, r int) {
	t.Helper()
	n, S, slots := topo.N(), topo.Ports(), topo.PredefinedSlots()
	pairs := make(map[[2]int]int)
	for tt := 0; tt < slots; tt++ {
		// rx[dst][port] = src
		rx := make(map[[2]int]int)
		for i := 0; i < n; i++ {
			for s := 0; s < S; s++ {
				j := topo.PredefinedPeer(i, s, tt, r)
				if j == -1 {
					continue
				}
				if j == i {
					t.Fatalf("self connection surfaced: i=%d s=%d t=%d", i, s, tt)
				}
				if !topo.CanReach(i, s, j) {
					t.Fatalf("predefined peer unreachable: %d -(port %d)-> %d", i, s, j)
				}
				key := [2]int{j, s}
				if prev, ok := rx[key]; ok {
					t.Fatalf("collision at dst %d port %d slot %d: sources %d and %d", j, s, tt, prev, i)
				}
				rx[key] = i
				pairs[[2]int{i, j}]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if c := pairs[[2]int{i, j}]; c != 1 {
				t.Fatalf("pair (%d,%d) connected %d times in one phase (rotation %d), want 1", i, j, c, r)
			}
		}
	}
}

func TestParallelPredefinedPhase(t *testing.T) {
	for _, r := range []int{0, 1, 7, 100} {
		checkPredefinedPhase(t, mustParallel(t, 16, 4), r)
	}
	checkPredefinedPhase(t, mustParallel(t, 128, 8), 0)
	checkPredefinedPhase(t, mustParallel(t, 128, 8), 3)
	// N-1 not divisible by S (padding slots).
	checkPredefinedPhase(t, mustParallel(t, 10, 4), 0)
	checkPredefinedPhase(t, mustParallel(t, 10, 4), 5)
	// Degenerate two-ToR network.
	checkPredefinedPhase(t, mustParallel(t, 2, 1), 0)
}

func TestThinClosPredefinedPhase(t *testing.T) {
	checkPredefinedPhase(t, mustThinClos(t, 16, 4, 4), 0)
	checkPredefinedPhase(t, mustThinClos(t, 128, 8, 16), 0)
	checkPredefinedPhase(t, mustThinClos(t, 8, 2, 4), 0)
	// Rotation must not break anything even though it is ignored.
	checkPredefinedPhase(t, mustThinClos(t, 16, 4, 4), 9)
}

func TestParallelRotationCyclesPorts(t *testing.T) {
	// Over S consecutive rotations, the port carrying a given pair's
	// predefined connection takes all S values (§3.6.1 fault resilience).
	p := mustParallel(t, 16, 4)
	i, j := 2, 9
	ports := make(map[int]bool)
	for r := 0; r < 4; r++ {
		found := -1
		for tt := 0; tt < p.PredefinedSlots(); tt++ {
			for s := 0; s < 4; s++ {
				if p.PredefinedPeer(i, s, tt, r) == j {
					found = s
				}
			}
		}
		if found == -1 {
			t.Fatalf("pair (%d,%d) not connected at rotation %d", i, j, r)
		}
		ports[found] = true
	}
	if len(ports) != 4 {
		t.Errorf("rotation covered %d distinct ports, want 4: %v", len(ports), ports)
	}
}

func TestPredefinedPhasePropertyQuick(t *testing.T) {
	// Property test over random valid dimensions.
	f := func(a, b, c uint8) bool {
		s := int(a%6) + 1
		w := int(b%6) + 2
		r := int(c)
		tc, err := NewThinClos(s*w, s, w)
		if err != nil {
			return false
		}
		n := s * w
		pairs := 0
		for tt := 0; tt < tc.PredefinedSlots(); tt++ {
			for i := 0; i < n; i++ {
				for ss := 0; ss < s; ss++ {
					if j := tc.PredefinedPeer(i, ss, tt, r); j >= 0 {
						if !tc.CanReach(i, ss, j) {
							return false
						}
						pairs++
					}
				}
			}
		}
		return pairs == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}

	g := func(a, b, c uint8) bool {
		n := int(a%30) + 2
		s := int(b%5) + 1
		r := int(c)
		p, err := NewParallel(n, s)
		if err != nil {
			return false
		}
		pairs := 0
		for tt := 0; tt < p.PredefinedSlots(); tt++ {
			for i := 0; i < n; i++ {
				for ss := 0; ss < s; ss++ {
					if j := p.PredefinedPeer(i, ss, tt, r); j >= 0 {
						pairs++
					}
				}
			}
		}
		return pairs == n*(n-1)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	if mustParallel(t, 4, 2).Name() != "parallel" {
		t.Error("parallel name")
	}
	if mustThinClos(t, 4, 2, 2).Name() != "thin-clos" {
		t.Error("thin-clos name")
	}
}

func TestPredefinedSlotPortInverse(t *testing.T) {
	// PredefinedSlotPort must invert PredefinedPeer for every pair.
	tops := []Topology{
		mustParallel(t, 16, 4),
		mustParallel(t, 10, 4),
		mustParallel(t, 128, 8),
		mustThinClos(t, 16, 4, 4),
		mustThinClos(t, 128, 8, 16),
	}
	for _, top := range tops {
		for _, r := range []int{0, 1, 5, 13} {
			n := top.N()
			step := 1
			if n > 32 {
				step = 7
			}
			for i := 0; i < n; i += step {
				for j := 0; j < n; j++ {
					if i == j {
						if s, p := top.PredefinedSlotPort(i, j, r); s != -1 || p != -1 {
							t.Fatalf("%s: self pair should give (-1,-1)", top.Name())
						}
						continue
					}
					slot, port := top.PredefinedSlotPort(i, j, r)
					if slot < 0 || slot >= top.PredefinedSlots() || port < 0 || port >= top.Ports() {
						t.Fatalf("%s: slot/port out of range for (%d,%d,r=%d): (%d,%d)",
							top.Name(), i, j, r, slot, port)
					}
					if got := top.PredefinedPeer(i, port, slot, r); got != j {
						t.Fatalf("%s: inverse broken for (%d,%d,r=%d): slot=%d port=%d gives peer %d",
							top.Name(), i, j, r, slot, port, got)
					}
				}
			}
		}
	}
}

// TestDomainPos pins the domain-position mapping both topologies provide
// for the matching layer's per-domain candidate masks: DomainPos agrees
// with the PortDomain slice, and PortAndDomainPos agrees with
// PathPort+DomainPos on single-path topologies.
func TestDomainPos(t *testing.T) {
	p, err := NewParallel(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewThinClos(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, top := range []Topology{p, tc} {
		for dst := 0; dst < top.N(); dst++ {
			for s := 0; s < top.Ports(); s++ {
				dom := top.PortDomain(dst, s)
				seen := make(map[int]bool, len(dom))
				for pos, src := range dom {
					if got := top.DomainPos(dst, s, src); got != pos {
						t.Fatalf("%s: DomainPos(%d,%d,%d) = %d, want %d", top.Name(), dst, s, src, got, pos)
					}
					seen[src] = true
				}
				for src := 0; src < top.N(); src++ {
					if !seen[src] {
						if got := top.DomainPos(dst, s, src); got != -1 && top.Name() != "parallel" {
							t.Fatalf("%s: DomainPos(%d,%d,%d) = %d for non-member", top.Name(), dst, s, src, got)
						}
					}
				}
			}
		}
	}
	// Thin-clos: PortAndDomainPos == (PathPort, DomainPos at that port).
	for dst := 0; dst < tc.N(); dst++ {
		for src := 0; src < tc.N(); src++ {
			port, pos := tc.PortAndDomainPos(dst, src)
			if src == dst {
				if port != -1 || pos != -1 {
					t.Fatalf("self pair gave (%d, %d)", port, pos)
				}
				continue
			}
			wantPort := tc.PathPort(src, dst)
			if port != wantPort || pos != tc.DomainPos(dst, wantPort, src) {
				t.Fatalf("PortAndDomainPos(%d,%d) = (%d,%d), want (%d,%d)",
					dst, src, port, pos, wantPort, tc.DomainPos(dst, wantPort, src))
			}
		}
	}
	// Parallel: any port works, so the single-path form answers (-1, -1).
	if port, pos := p.PortAndDomainPos(3, 5); port != -1 || pos != -1 {
		t.Fatalf("parallel PortAndDomainPos = (%d, %d), want (-1, -1)", port, pos)
	}
}
