package topo

import "testing"

// BenchmarkPredefinedPeer measures the schedule lookup on the hot
// per-slot path at paper scale.
func BenchmarkPredefinedPeer(b *testing.B) {
	p, err := NewParallel(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PredefinedPeer(i%128, i%8, i%16, i)
	}
}

// BenchmarkPredefinedSlotPort measures the inverse lookup used per
// ToR-pair per epoch for piggybacking.
func BenchmarkPredefinedSlotPort(b *testing.B) {
	tc, err := NewThinClos(128, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.PredefinedSlotPort(i%128, (i+7)%128, i)
	}
}
