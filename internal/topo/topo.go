// Package topo models the flat AWGR-based optical topologies that NegotiaToR
// runs on: the parallel network built from high port-count AWGRs and the
// thin-clos network built from low port-count AWGRs (paper Figure 1).
//
// In both topologies a ToR has S uplink ports, each equipped with a fast
// tunable laser and attached to a passive AWGR; tuning the wavelength selects
// the destination. A physical connection is always "same-index port to
// same-index port": when source i transmits from its port s the bits arrive
// on destination j's port s. The topologies differ in which destinations a
// given port can reach, which in turn shapes the GRANT step of NegotiaToR
// Matching (per-ToR ring on the parallel network, per-port rings on
// thin-clos).
package topo

import "fmt"

// Topology describes the connection capabilities of a flat optical fabric
// interconnecting N ToRs with S uplink ports each.
//
// Implementations must be stateless and safe for concurrent use.
type Topology interface {
	// N returns the number of ToRs.
	N() int
	// Ports returns the number of uplink ports per ToR (S).
	Ports() int

	// CanReach reports whether source ToR src can transmit to destination
	// ToR dst using port s (on both ends; connections are same-index).
	CanReach(src, s, dst int) bool

	// PortDomain returns the set of source ToRs that can reach destination
	// dst on its port s, i.e. the candidate set of the GRANT arbiter for
	// that port. The returned slice must not be modified. The destination
	// itself is included when the hardware would allow a self-loop; the
	// matching layer never requests self traffic.
	PortDomain(dst, s int) []int

	// DomainPos returns the position of src within PortDomain(dst, s), or
	// -1 when src is not a member: the domain-position-space index the
	// matching layer's per-domain candidate masks (Ring.PickMask) are
	// built in. Both topologies answer in O(1), so mask construction costs
	// O(candidates) instead of O(domain).
	DomainPos(dst, s, src int) int

	// PortAndDomainPos returns the single port on which src reaches dst
	// together with src's position in that port's domain — the one-call
	// form the matching layer's mask-building request sweeps use on
	// single-path topologies (thin-clos). It returns (-1, -1) when any
	// port works (parallel network; those matchers use the identity-domain
	// path instead) or when src cannot reach dst.
	PortAndDomainPos(dst, src int) (port, pos int)

	// PredefinedSlots returns the number of timeslots a predefined phase
	// needs to connect every ordered ToR pair exactly once:
	// ceil((N-1)/S) for the parallel network, W for thin-clos.
	PredefinedSlots() int

	// PredefinedPeer returns the destination that port s of ToR i connects
	// to during timeslot t of a predefined phase with round-robin rotation
	// r, or -1 if the slot is a self-connection (idle). Rotation only has
	// an effect on the parallel network, where it cycles the port used by
	// each ToR pair across epochs for fault resilience (§3.6.1); thin-clos
	// pairs have a single fixed port-to-port path.
	PredefinedPeer(i, s, t, r int) int

	// PathPort returns the single port index connecting src to dst on
	// topologies with unique paths (thin-clos), or -1 when any port works
	// (parallel network). It returns -2 if src == dst.
	PathPort(src, dst int) int

	// PredefinedSlotPort is the inverse of PredefinedPeer: the (slot, port)
	// at which source i connects to j during a predefined phase with
	// rotation r. It returns (-1, -1) if i == j.
	PredefinedSlotPort(i, j, r int) (slot, port int)

	// PredefinedSource is the per-slot inverse of PredefinedPeer: the
	// source i whose port s connects to destination j during timeslot t
	// with rotation r, or -1 if no source reaches j on that port this
	// slot (schedule padding or the self-connection). The predefined
	// schedules are per-(s, t, r) permutations, so
	// PredefinedPeer(i, s, t, r) == j iff PredefinedSource(j, s, t, r) == i.
	// Slot loops that iterate backlogged DESTINATIONS instead of all
	// sources use this to find the one node a destination can drain from.
	PredefinedSource(j, s, t, r int) int

	// AWGRs returns the number of optical switches the physical build
	// requires and the port count of each.
	AWGRs() (count, ports int)

	// Name returns a short human-readable topology name.
	Name() string
}

// Parallel is the parallel network topology (paper Figure 1a): S AWGRs, each
// with N ports; ToR i's port s attaches to AWGR s, which is a full N×N
// wavelength crossbar. Any source can reach any destination on any port.
type Parallel struct {
	n, s    int
	domains [][]int // one shared domain: all ToRs
}

// NewParallel returns a parallel network of n ToRs with s ports each.
func NewParallel(n, s int) (*Parallel, error) {
	if n < 2 || s < 1 {
		return nil, fmt.Errorf("topo: parallel network needs n >= 2, s >= 1 (got n=%d s=%d)", n, s)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return &Parallel{n: n, s: s, domains: [][]int{all}}, nil
}

func (p *Parallel) N() int     { return p.n }
func (p *Parallel) Ports() int { return p.s }

func (p *Parallel) CanReach(src, s, dst int) bool {
	return src != dst && s >= 0 && s < p.s && src >= 0 && src < p.n && dst >= 0 && dst < p.n
}

func (p *Parallel) PortDomain(dst, s int) []int { return p.domains[0] }

// DomainPos: the shared domain lists every ToR in ascending order, so the
// position of a ToR is its id.
func (p *Parallel) DomainPos(dst, s, src int) int {
	if src < 0 || src >= p.n {
		return -1
	}
	return src
}

// PortAndDomainPos: any port works on the parallel network.
func (p *Parallel) PortAndDomainPos(dst, src int) (int, int) { return -1, -1 }

func (p *Parallel) PredefinedSlots() int { return (p.n - 2 + p.s) / p.s } // ceil((n-1)/s)

// PredefinedPeer implements the rotating round-robin schedule. With
// k = (t*S + s + r) mod (slots*S), ToR i connects to (i + 1 + k) mod N.
// For fixed t the S ports of a ToR hit S consecutive offsets, so each slot
// is conflict-free, and over one phase every ordered pair meets exactly
// once. Incrementing the rotation r each epoch shifts which port serves a
// given pair, cycling through all S ports over S epochs.
func (p *Parallel) PredefinedPeer(i, s, t, r int) int {
	span := p.PredefinedSlots() * p.s
	k := (t*p.s + s + r) % span
	j := (i + 1 + k) % p.n
	if j == i || k >= p.n-1 {
		// Offsets beyond n-2 (padding when S doesn't divide N-1) and the
		// wrap onto self are idle.
		return -1
	}
	return j
}

// PredefinedSource inverts the rotating schedule within one slot: the
// same offset k that takes i forward to j takes j back to i.
func (p *Parallel) PredefinedSource(j, s, t, r int) int {
	span := p.PredefinedSlots() * p.s
	k := (t*p.s + s + r) % span
	if k >= p.n-1 {
		return -1 // schedule padding: no source transmits on this offset
	}
	return ((j-1-k)%p.n + p.n) % p.n
}

func (p *Parallel) PathPort(src, dst int) int {
	if src == dst {
		return -2
	}
	return -1
}

// PredefinedSlotPort inverts the rotating schedule: the offset of j from i
// is k = (j-i-1) mod N, reached when (t*S + s + r) mod span == k.
func (p *Parallel) PredefinedSlotPort(i, j, r int) (slot, port int) {
	if i == j {
		return -1, -1
	}
	span := p.PredefinedSlots() * p.s
	k := (j - i - 1 + p.n) % p.n
	ts := ((k-r)%span + span) % span
	return ts / p.s, ts % p.s
}

func (p *Parallel) AWGRs() (count, ports int) { return p.s, p.n }
func (p *Parallel) Name() string              { return "parallel" }

// ThinClos is the thin-clos topology (paper Figure 1b) built from W-port
// AWGRs. N = W*G ToRs are arranged in G groups of W, with S = G ports per
// ToR. Port s of ToR i (in group gi) reaches exactly the W ToRs of group
// (s - gi) mod G, so every ordered pair is connected by a single
// port-to-port path with identical port index at both ends (§3.6.1). The
// build uses N*S/W AWGRs of W ports each: at paper scale (N=128, S=8,
// W=16) that is 64 sixteen-port AWGRs.
type ThinClos struct {
	n, s, w int
	domains [][]int // indexed by group: the W members of that group
}

// NewThinClos returns a thin-clos network of n ToRs with s ports per ToR
// and w-port AWGRs. It requires n == s*w (so the s port-reachable sets of
// size w partition the n destinations).
func NewThinClos(n, s, w int) (*ThinClos, error) {
	if n < 2 || s < 1 || w < 1 {
		return nil, fmt.Errorf("topo: thin-clos needs positive dimensions (got n=%d s=%d w=%d)", n, s, w)
	}
	if n != s*w {
		return nil, fmt.Errorf("topo: thin-clos requires n == s*w, got n=%d, s*w=%d", n, s*w)
	}
	t := &ThinClos{n: n, s: s, w: w}
	t.domains = make([][]int, s)
	for g := 0; g < s; g++ {
		members := make([]int, w)
		for l := 0; l < w; l++ {
			members[l] = g*w + l
		}
		t.domains[g] = members
	}
	return t, nil
}

func (t *ThinClos) N() int     { return t.n }
func (t *ThinClos) Ports() int { return t.s }

// W returns the AWGR port count (group size).
func (t *ThinClos) W() int { return t.w }

func (t *ThinClos) group(i int) int { return i / t.w }

func (t *ThinClos) CanReach(src, s, dst int) bool {
	if src == dst || s < 0 || s >= t.s || src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		return false
	}
	return t.group(dst) == (s-t.group(src)+t.s)%t.s
}

// PortDomain: destination dst receives on port s only from sources in group
// (s - g(dst)) mod G.
func (t *ThinClos) PortDomain(dst, s int) []int {
	g := (s - t.group(dst) + t.s) % t.s
	return t.domains[g]
}

// DomainPos: port s of dst hears group (s - g(dst)) mod G; a member's
// position is its local index within that group.
func (t *ThinClos) DomainPos(dst, s, src int) int {
	if src < 0 || src >= t.n || t.group(src) != (s-t.group(dst)+t.s)%t.s {
		return -1
	}
	return src % t.w
}

// PortAndDomainPos: the pair's unique port is (g(src)+g(dst)) mod G and
// src's position is its local index — two divisions total, the form the
// matchers' per-request mask sweeps can afford in dense epochs.
func (t *ThinClos) PortAndDomainPos(dst, src int) (int, int) {
	if src == dst || src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		return -1, -1
	}
	gs := src / t.w
	port := gs + dst/t.w
	if port >= t.s {
		port -= t.s
	}
	return port, src - gs*t.w
}

func (t *ThinClos) PredefinedSlots() int { return t.w }

// PredefinedPeer: in slot tt, port s of ToR i connects to the member of its
// reachable group with local index (li + tt) mod W. Each destination port
// then hears from exactly one source per slot, and over W slots every
// reachable pair meets exactly once. Rotation r is ignored: thin-clos pairs
// have a unique path, so there is nothing to rotate (the paper handles
// thin-clos failures by relaying instead).
func (t *ThinClos) PredefinedPeer(i, s, tt, r int) int {
	gi := t.group(i)
	gj := (s - gi + t.s) % t.s
	li := i % t.w
	j := gj*t.w + (li+tt)%t.w
	if j == i {
		return -1
	}
	return j
}

// PredefinedSource inverts the thin-clos schedule within one slot:
// destination j (group gj, local index lj) hears port s only from group
// (s - gj) mod G, and slot tt picks the member with local index
// (lj - tt) mod W.
func (t *ThinClos) PredefinedSource(j, s, tt, r int) int {
	gj := t.group(j)
	gi := (s - gj + t.s) % t.s
	li := (j%t.w - tt%t.w + t.w) % t.w
	i := gi*t.w + li
	if i == j {
		return -1
	}
	return i
}

func (t *ThinClos) PathPort(src, dst int) int {
	if src == dst {
		return -2
	}
	return (t.group(src) + t.group(dst)) % t.s
}

// PredefinedSlotPort inverts the thin-clos schedule: the pair's unique port
// and the slot offsetting j's local index from i's.
func (t *ThinClos) PredefinedSlotPort(i, j, r int) (slot, port int) {
	if i == j {
		return -1, -1
	}
	port = t.PathPort(i, j)
	slot = (j%t.w - i%t.w + t.w) % t.w
	return slot, port
}

func (t *ThinClos) AWGRs() (count, ports int) { return t.n * t.s / t.w, t.w }
func (t *ThinClos) Name() string              { return "thin-clos" }
