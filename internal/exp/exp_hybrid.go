package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
)

// The hybrid-control-plane experiment: the third engine over the shared
// fabric core, compared head-to-head against both paper systems.

func init() {
	register(Experiment{ID: "ext-hybrid", Title: "Extension: hybrid control plane (mice on round-robin, elephants negotiated) vs both paper systems", Run: runExtHybrid})
}

// runExtHybrid sweeps load on the parallel network and prints, per
// system, the metrics the mice/elephant segregation trades: mice FCT
// (99p/mean), all-flow 99p and goodput. The hybrid pins mice latency to
// the round-robin period with zero scheduling delay — but caps a mouse's
// bandwidth at one piggyback payload per epoch, so large mice finish
// slower than under NegotiaToR's combined piggyback+scheduled service;
// elephants see an idealised instant negotiation (an upper bound). One
// cell per (system, load).
func runExtHybrid(o Options, w io.Writer) error {
	d := o.duration()
	r := o.runner()
	r.Header("%-8s | %-11s | %-12s | %-12s | %-12s | %-8s", "load(%)", "system", "mice99p(ms)", "miceAvg(µs)", "all 99p(ms)", "goodput")
	systems := []struct {
		name  string
		plane negotiator.ControlPlaneKind
	}{
		{"negotiator", negotiator.NegotiaToRPlane},
		{"oblivious", negotiator.ObliviousPlane},
		{"hybrid", negotiator.HybridPlane},
	}
	for _, load := range o.loads() {
		for _, sys := range systems {
			load, sys := load, sys
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.ControlPlane = sys.plane
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-8.0f | %-11s | %s | %12.1f | %s | %8.3f\n",
					load*100, sys.name, fmtFCT(sum.Mice99p), sum.MiceMean.Micros(), fmtFCT(sum.All99p), sum.GoodputNormalized)
				return nil
			})
		}
	}
	return r.Flush(w)
}
