package exp

import (
	"fmt"
	"io"
	"time"

	negotiator "negotiator"
	"negotiator/internal/par"
)

func init() {
	register(Experiment{
		ID:        "scale-sweep",
		Title:     "Extension: fabric-size scaling with intra-run ToR shards (256/512 ToRs)",
		Run:       runScaleSweep,
		WallClock: true, // the epochs/s column is wall-clock-derived
	})
}

// runScaleSweep pushes the fabric beyond the paper's 128 ToRs — the sizes
// the sequential engines made wall-clock-prohibitive — using the sharded
// epoch execution (Spec.Workers): each run splits its ToRs into
// worker-owned shards with barrier-synchronized phases, so one large
// simulation can use every core while producing results identical to a
// sequential run. The table reports, per size and system, the headline
// metrics plus the wall-clock epoch throughput. Unlike every other
// experiment, the cells run sequentially regardless of -parallel: each
// cell times itself, and concurrent wall-clock-timed cells would contend
// for the cores the shard gang is supposed to use, understating and
// noising the epochs/s column.
func runScaleSweep(o Options, w io.Writer) error {
	workers := o.Workers
	if workers <= 0 {
		// This experiment exists to exercise intra-run sharding: default to
		// all cores rather than Options' usual sequential default.
		workers = par.Effective(0)
	}
	sizes := []int{128, 256, 512}
	if o.Quick {
		sizes = []int{64, 128, 256}
	}
	d := o.Duration
	if d == 0 {
		d = 2 * negotiator.Millisecond // 512 ToRs at 6ms would dominate '-exp all'
	}
	const load = 0.5

	r := NewRunner(1) // sequential cells: each times its own epoch throughput
	r.Textf("intra-run workers: %d (ToR shards per simulation; results are identical at any value)\n", workers)
	r.Header("%-6s | %-22s | %-7s | %-12s | %-8s | %-10s | %-10s", "ToRs",
		"system", "flows", "99p FCT (ms)", "goodput", "epochs", "epochs/s")
	for _, size := range sizes {
		for _, sys := range []struct {
			name string
			obl  bool
		}{
			{"negotiator/parallel", false},
			{"oblivious/thin-clos", true},
		} {
			r.Cell(func(w io.Writer) error {
				spec := o.sizedSpec(size)
				spec.Workers = workers
				spec.Oblivious = sys.obl
				if sys.obl {
					spec.Topology = negotiator.ThinClos
				}
				fab, err := spec.Build()
				if err != nil {
					return err
				}
				fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed))
				start := time.Now()
				fab.Run(d)
				wall := time.Since(start)
				sum := fab.Summary()
				perSec := float64(sum.Epochs) / wall.Seconds()
				fmt.Fprintf(w, "%-6d | %-22s | %7d | %s | %8.3f | %10d | %10.0f\n",
					size, sys.name, sum.Flows, fmtFCT(sum.Mice99p), sum.GoodputNormalized,
					sum.Epochs, perSec)
				return nil
			})
		}
	}
	r.Textf("(epochs = scheduling rounds: NegotiaToR epochs, baseline round-robin cycles; %v simulated at %.0f%% load)\n", d, load*100)
	return r.Flush(w)
}
