package exp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestRunnerStitchOrder checks that cells and text items appear in
// registration order regardless of the parallelism level, including cell
// fragments that compose a single output line.
func TestRunnerStitchOrder(t *testing.T) {
	for _, par := range []int{1, 2, 7} {
		r := NewRunner(par)
		var want strings.Builder
		for row := 0; row < 5; row++ {
			r.Textf("row%d:", row)
			fmt.Fprintf(&want, "row%d:", row)
			for c := 0; c < 4; c++ {
				r.Cell(func(w io.Writer) error {
					fmt.Fprintf(w, " c%d", c)
					return nil
				})
				fmt.Fprintf(&want, " c%d", c)
			}
			r.Textf("\n")
			want.WriteString("\n")
		}
		var got bytes.Buffer
		if err := r.Flush(&got); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.String() != want.String() {
			t.Errorf("par=%d: got\n%q\nwant\n%q", par, got.String(), want.String())
		}
	}
}

// TestRunnerErrorOrder checks that Flush reports the first error in
// registration order (not completion order) and stops writing at the
// failed item, matching sequential semantics.
func TestRunnerErrorOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	r := NewRunner(4)
	r.Textf("ok1\n")
	r.Cell(func(w io.Writer) error { fmt.Fprintln(w, "cell1"); return nil })
	r.Cell(func(io.Writer) error { return errA })
	r.Cell(func(io.Writer) error { return errB })
	r.Textf("never\n")
	var got bytes.Buffer
	if err := r.Flush(&got); err != errA {
		t.Fatalf("Flush error = %v, want %v", err, errA)
	}
	if want := "ok1\ncell1\n"; got.String() != want {
		t.Errorf("partial output %q, want %q", got.String(), want)
	}
}

// TestRunnerTextSeesCellResults checks the barrier contract: text items
// run after every cell has completed, so they can read results cells
// stored into pre-sized slots (the fig17/fig18 pattern).
func TestRunnerTextSeesCellResults(t *testing.T) {
	r := NewRunner(4)
	vals := make([]int, 8)
	for i := range vals {
		r.Cell(func(io.Writer) error {
			vals[i] = i * i
			return nil
		})
	}
	r.Text(func(w io.Writer) error {
		for _, v := range vals {
			fmt.Fprintf(w, "%d,", v)
		}
		return nil
	})
	var got bytes.Buffer
	if err := r.Flush(&got); err != nil {
		t.Fatal(err)
	}
	if want := "0,1,4,9,16,25,36,49,"; got.String() != want {
		t.Errorf("got %q, want %q", got.String(), want)
	}
}

// TestParallelDeterminism is the tentpole guarantee: every experiment
// produces byte-identical output whether its cells run sequentially or on
// a saturated worker pool. Under -race this doubles as the concurrency
// soundness check for the whole experiment matrix.
func TestParallelDeterminism(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			if e.WallClock {
				t.Skip("output includes wall-clock measurements by design; simulated metrics are covered by TestShardDeterminism and TestEveryExperimentRuns")
			}
			outs := make([]string, 2)
			for i, par := range []int{1, 8} {
				o := tinyOptions()
				o.Parallel = par
				var sb strings.Builder
				if err := e.Run(o, &sb); err != nil {
					t.Fatalf("parallel=%d: %v", par, err)
				}
				outs[i] = sb.String()
			}
			if outs[0] != outs[1] {
				t.Errorf("output differs between parallel=1 and parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", outs[0], outs[1])
			}
		})
	}
}
