package exp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunnerStitchOrder checks that cells and text items appear in
// registration order regardless of the parallelism level, including cell
// fragments that compose a single output line.
func TestRunnerStitchOrder(t *testing.T) {
	for _, par := range []int{1, 2, 7} {
		r := NewRunner(par)
		var want strings.Builder
		for row := 0; row < 5; row++ {
			r.Textf("row%d:", row)
			fmt.Fprintf(&want, "row%d:", row)
			for c := 0; c < 4; c++ {
				r.Cell(func(w io.Writer) error {
					fmt.Fprintf(w, " c%d", c)
					return nil
				})
				fmt.Fprintf(&want, " c%d", c)
			}
			r.Textf("\n")
			want.WriteString("\n")
		}
		var got bytes.Buffer
		if err := r.Flush(&got); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.String() != want.String() {
			t.Errorf("par=%d: got\n%q\nwant\n%q", par, got.String(), want.String())
		}
	}
}

// TestRunnerErrorOrder checks that Flush reports the first error in
// registration order (not completion order) and stops writing at the
// failed item, matching sequential semantics.
func TestRunnerErrorOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	r := NewRunner(4)
	r.Textf("ok1\n")
	r.Cell(func(w io.Writer) error { fmt.Fprintln(w, "cell1"); return nil })
	r.Cell(func(io.Writer) error { return errA })
	r.Cell(func(io.Writer) error { return errB })
	r.Textf("never\n")
	var got bytes.Buffer
	if err := r.Flush(&got); err != errA {
		t.Fatalf("Flush error = %v, want %v", err, errA)
	}
	if want := "ok1\ncell1\n"; got.String() != want {
		t.Errorf("partial output %q, want %q", got.String(), want)
	}
}

// TestRunnerTextSeesCellResults checks the barrier contract: text items
// run after every cell has completed, so they can read results cells
// stored into pre-sized slots (the fig17/fig18 pattern).
func TestRunnerTextSeesCellResults(t *testing.T) {
	r := NewRunner(4)
	vals := make([]int, 8)
	for i := range vals {
		r.Cell(func(io.Writer) error {
			vals[i] = i * i
			return nil
		})
	}
	r.Text(func(w io.Writer) error {
		for _, v := range vals {
			fmt.Fprintf(w, "%d,", v)
		}
		return nil
	})
	var got bytes.Buffer
	if err := r.Flush(&got); err != nil {
		t.Fatal(err)
	}
	if want := "0,1,4,9,16,25,36,49,"; got.String() != want {
		t.Errorf("got %q, want %q", got.String(), want)
	}
}

// TestParallelDeterminism is the tentpole guarantee: every experiment
// produces byte-identical output whether its cells run sequentially or on
// a saturated worker pool. Under -race this doubles as the concurrency
// soundness check for the whole experiment matrix.
func TestParallelDeterminism(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			if e.WallClock {
				t.Skip("output includes wall-clock measurements by design; simulated metrics are covered by TestShardDeterminism and TestEveryExperimentRuns")
			}
			outs := make([]string, 2)
			for i, par := range []int{1, 8} {
				o := tinyOptions()
				o.Parallel = par
				var sb strings.Builder
				if err := e.Run(o, &sb); err != nil {
					t.Fatalf("parallel=%d: %v", par, err)
				}
				outs[i] = sb.String()
			}
			if outs[0] != outs[1] {
				t.Errorf("output differs between parallel=1 and parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", outs[0], outs[1])
			}
		})
	}
}

// TestRunnerPanicQuarantine checks that a panicking cell is quarantined
// rather than sinking the sweep: its position carries a failure marker,
// every other item still runs and prints, and Flush reports the casualty
// only after all output is written.
func TestRunnerPanicQuarantine(t *testing.T) {
	r := NewRunner(4)
	r.Cell(func(w io.Writer) error { fmt.Fprint(w, "a"); return nil })
	r.Cell(func(io.Writer) error { panic("boom") })
	r.Cell(func(w io.Writer) error { fmt.Fprint(w, "c"); return nil })
	r.Textf("tail\n")
	var out bytes.Buffer
	err := r.Flush(&out)
	var cas *CasualtyError
	if !errors.As(err, &cas) {
		t.Fatalf("Flush error = %v, want *CasualtyError", err)
	}
	if len(cas.Cells) != 1 || cas.Cells[0].Key != 1 {
		t.Fatalf("casualties = %+v, want exactly cell 1", cas.Cells)
	}
	got := out.String()
	for _, want := range []string{"a", "!! cell 1 failed", "panic: boom", "c", "tail\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunnerCellTimeout checks the wall-clock budget: a cell that blows
// the budget once is retried with a fresh buffer and may still succeed; a
// cell that blows it twice is quarantined while the rest of the sweep
// completes.
func TestRunnerCellTimeout(t *testing.T) {
	r := NewRunner(4)
	r.timeout = 50 * time.Millisecond
	var attempts atomic.Int32
	r.Cell(func(w io.Writer) error { // succeeds on the retry
		if attempts.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond)
		}
		fmt.Fprint(w, "late")
		return nil
	})
	r.Cell(func(w io.Writer) error { // never fits the budget
		time.Sleep(400 * time.Millisecond)
		fmt.Fprint(w, "never")
		return nil
	})
	r.Cell(func(w io.Writer) error { fmt.Fprint(w, "fast"); return nil })
	var out bytes.Buffer
	err := r.Flush(&out)
	var cas *CasualtyError
	if !errors.As(err, &cas) {
		t.Fatalf("Flush error = %v, want *CasualtyError", err)
	}
	if len(cas.Cells) != 1 || cas.Cells[0].Key != 1 {
		t.Fatalf("casualties = %+v, want exactly cell 1", cas.Cells)
	}
	got := out.String()
	for _, want := range []string{"late", "timed out", "fast"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "never") {
		t.Errorf("abandoned attempt's output leaked into the stream:\n%s", got)
	}
	if n := attempts.Load(); n != 2 {
		t.Errorf("retried cell ran %d attempts, want 2", n)
	}
}

// TestRunnerDurableResume is the crash-recovery contract at the unit
// level: a durable sweep with one quarantined cell persists every finished
// cell, and the resumed sweep reruns only the casualty while stitching a
// byte stream identical to an uninterrupted run.
func TestRunnerDurableResume(t *testing.T) {
	o := Options{StateDir: t.TempDir(), StateID: "unit"}
	var runs [4]atomic.Int32
	register := func(r *Runner, failIdx int) {
		for i := 0; i < 4; i++ {
			r.Textf("[%d]", i)
			r.Cell(func(w io.Writer) error {
				runs[i].Add(1)
				if i == failIdx {
					panic("flaky")
				}
				fmt.Fprintf(w, "cell%d", i)
				return nil
			})
		}
	}

	r := o.runner()
	register(r, 2)
	var out1 bytes.Buffer
	err := r.Flush(&out1)
	var cas *CasualtyError
	if !errors.As(err, &cas) || len(cas.Cells) != 1 || cas.Cells[0].Key != 2 {
		t.Fatalf("first pass error = %v, want casualty for cell 2", err)
	}
	for _, want := range []string{"cell0", "cell1", "!! cell 2 failed", "cell3"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("first pass output missing %q:\n%s", want, out1.String())
		}
	}

	o.Resume = true
	r2 := o.runner()
	register(r2, -1)
	var out2 bytes.Buffer
	if err := r2.Flush(&out2); err != nil {
		t.Fatalf("resume flush: %v", err)
	}
	if want := "[0]cell0[1]cell1[2]cell2[3]cell3"; out2.String() != want {
		t.Errorf("resumed output %q, want %q", out2.String(), want)
	}
	for i := range runs {
		want := int32(1)
		if i == 2 {
			want = 2 // the casualty is the only cell that reran
		}
		if n := runs[i].Load(); n != want {
			t.Errorf("cell %d ran %d times, want %d", i, n, want)
		}
	}
}

// TestResumeRefusesDifferentSweep: a state dir recorded under one set of
// output-shaping options must not be salvaged by a sweep with different
// ones — stitching cells from a different seed would silently corrupt the
// results.
func TestResumeRefusesDifferentSweep(t *testing.T) {
	o := Options{StateDir: t.TempDir(), StateID: "sig", Seed: 1}
	r := o.runner()
	r.Cell(func(w io.Writer) error { fmt.Fprint(w, "x"); return nil })
	if err := r.Flush(io.Discard); err != nil {
		t.Fatal(err)
	}

	o2 := o
	o2.Seed = 2
	o2.Resume = true
	r2 := o2.runner()
	r2.Cell(func(w io.Writer) error { fmt.Fprint(w, "x"); return nil })
	err := r2.Flush(io.Discard)
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("resume with different seed: err = %v, want signature mismatch", err)
	}
}

// TestSweepStateTornTail simulates a SIGKILL mid-manifest-append: the torn
// final line is dropped (its cell reruns), complete lines before it stay
// salvageable, and the truncated manifest accepts further appends cleanly.
func TestSweepStateTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSweepState(dir, "sig", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Record(0, []byte("out0")); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(1, []byte("out1")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	mf := filepath.Join(dir, "manifest")
	raw, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mf, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenSweepState(dir, "sig", true)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := st2.CachedOutput(0); !ok || string(out) != "out0" {
		t.Errorf("cell 0 (complete line) not salvaged: %q %v", out, ok)
	}
	if _, ok := st2.CachedOutput(1); ok {
		t.Error("cell 1 (torn line) reported as cached")
	}
	if err := st2.Record(1, []byte("out1b")); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := OpenSweepState(dir, "sig", true)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if out, ok := st3.CachedOutput(1); !ok || string(out) != "out1b" {
		t.Errorf("re-recorded cell 1 not salvaged after torn-tail truncation: %q %v", out, ok)
	}
}

// TestSweepStateHashMismatch: a cell file that no longer matches its
// manifest hash (torn write, tampering) reads as not-cached, so the cell
// reruns instead of stitching corrupt bytes.
func TestSweepStateHashMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSweepState(dir, "sig", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Record(0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if err := os.WriteFile(filepath.Join(dir, "cells", "000000.out"), []byte("evil"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenSweepState(dir, "sig", true)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.CachedOutput(0); ok {
		t.Error("tampered cell file reported as cached")
	}
}
