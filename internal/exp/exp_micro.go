package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
)

func init() {
	register(Experiment{ID: "table2", Title: "Table 2: PB/PQ ablation — mice FCT (99p/avg, epochs) at 100% load", Run: runTable2})
	register(Experiment{ID: "fig6", Title: "Figure 6: CDF of mice flow FCT at 100% load", Run: runFig6})
	register(Experiment{ID: "fig7a", Title: "Figure 7(a): incast finish time vs degree", Run: runFig7a})
	register(Experiment{ID: "fig7b", Title: "Figure 7(b): all-to-all goodput vs flow size", Run: runFig7b})
	register(Experiment{ID: "fig8", Title: "Figure 8: performance under various reconfiguration delays at 100% load", Run: runFig8})
}

// runTable2 reproduces Table 2: data piggybacking (PB) and priority queues
// (PQ) separately enabled and disabled, mice flow FCT in epochs at 100%
// load on both topologies. Each (variant, topology) run is one cell
// emitting its table fragment.
func runTable2(o Options, w io.Writer) error {
	d := o.duration()
	r := o.runner()
	r.Header("%-10s | %-21s | %-21s", "variant", "parallel 99p/avg (ep)", "thin-clos 99p/avg (ep)")
	rows := []struct {
		name   string
		pb, pq bool
	}{
		{"-", false, false},
		{"PB", true, false},
		{"PQ", false, true},
		{"PB and PQ", true, true},
	}
	for _, row := range rows {
		r.Textf("%-10s", row.name)
		for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = top
				spec.Piggyback = row.pb
				spec.PriorityQueues = row.pq
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " | %8.1f /%7.1f",
					metrics.EpochsOf(sum.Mice99p, sum.EpochLen),
					metrics.EpochsOf(sum.MiceMean, sum.EpochLen))
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runFig6 reproduces Figure 6: the CDF of mice-flow FCT at 100% load with
// PB and PQ enabled, on both topologies, with the epoch boundaries marked.
// Each topology is one cell.
func runFig6(o Options, w io.Writer) error {
	d := o.duration()
	points := 20
	if o.Quick {
		points = 8
	}
	r := o.runner()
	for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
		r.Cell(func(w io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = top
			fab, err := spec.Build()
			if err != nil {
				return err
			}
			fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 7+o.Seed))
			fab.Run(d)
			sum := fab.Summary()
			fmt.Fprintf(w, "%s (epoch=%v; 1st epoch ends %v, 2nd %v)\n",
				top, sum.EpochLen, sum.EpochLen, 2*sum.EpochLen)
			header(w, "%-12s | %-8s", "FCT (µs)", "CDF")
			var within2 float64
			for _, p := range fab.MiceCDF(points) {
				fmt.Fprintf(w, "%12.2f | %8.4f\n", p.Value.Micros(), p.Frac)
			}
			// Fraction finishing within 2 epochs (the paper: over 80%).
			cdf := fab.MiceCDF(400)
			for _, p := range cdf {
				if p.Value <= 2*sum.EpochLen {
					within2 = p.Frac
				}
			}
			fmt.Fprintf(w, "fraction bypassing the scheduling delay (<= 2 epochs): %.1f%%\n\n", 100*within2)
			return nil
		})
	}
	return r.Flush(w)
}

// runFig7a reproduces Figure 7(a): a set of ToRs synchronously send one
// 1 KB flow to the same ToR; finish time vs incast degree for NegotiaToR on
// both topologies and the traffic-oblivious baseline. Each (degree, system)
// run is one cell emitting its row fragment.
func runFig7a(o Options, w io.Writer) error {
	degrees := []int{1, 10, 20, 30, 40, 50}
	if o.Quick {
		degrees = []int{1, 20, 50}
	}
	r := o.runner()
	r.Header("%-7s | %-16s | %-16s | %-16s", "degree",
		"negotiator/par", "negotiator/tc", "oblivious (µs)")
	inject := sim.Time(10 * sim.Microsecond)
	for _, deg := range degrees {
		r.Textf("%-7d", deg)
		for _, sys := range []struct {
			top negotiator.Topology
			obl bool
		}{
			{negotiator.ParallelNetwork, false},
			{negotiator.ThinClos, false},
			{negotiator.ThinClos, true},
		} {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = sys.top
				spec.Oblivious = sys.obl
				if deg > spec.ToRs-1 {
					fmt.Fprintf(w, " | %16s", "      n/a")
					return nil
				}
				wl, err := negotiator.IncastWorkload(spec, 3, deg, 1000, inject, 1, 5+o.Seed)
				if err != nil {
					return err
				}
				fab, err := spec.Build()
				if err != nil {
					return err
				}
				fab.SetWorkload(wl)
				fab.Run(sim.Duration(inject) + 2*sim.Millisecond)
				ev := fab.Events()[1]
				if ev.Done < ev.Flows {
					fmt.Fprintf(w, " | %16s", " unfinished")
					return nil
				}
				fmt.Fprintf(w, " | %16s", fmtUs(ev.FinishTime()))
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runFig7b reproduces Figure 7(b): each ToR synchronously sends equal-sized
// flows to all other ToRs; average per-ToR goodput during the transmission.
// Each (size, system) run is one cell emitting its row fragment.
func runFig7b(o Options, w io.Writer) error {
	sizesKB := []int64{1, 5, 30, 100, 500}
	if o.Quick {
		sizesKB = []int64{1, 30, 500}
	}
	r := o.runner()
	r.Header("%-9s | %-15s | %-15s | %-15s", "size(KB)",
		"negotiator/par", "negotiator/tc", "oblivious(Gbps)")
	inject := sim.Time(10 * sim.Microsecond)
	for _, kb := range sizesKB {
		r.Textf("%-9d", kb)
		for _, sys := range []struct {
			top negotiator.Topology
			obl bool
		}{
			{negotiator.ParallelNetwork, false},
			{negotiator.ThinClos, false},
			{negotiator.ThinClos, true},
		} {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = sys.top
				spec.Oblivious = sys.obl
				var last sim.Time
				spec.OnDeliver = func(dst int, at sim.Time, n int64) {
					if at > last {
						last = at
					}
				}
				fab, err := spec.Build()
				if err != nil {
					return err
				}
				fab.SetWorkload(negotiator.AllToAllWorkload(spec, kb<<10, inject))
				if !fab.Drain(50_000_000) {
					fmt.Fprintf(w, " | %15s", "  undrained")
					return nil
				}
				sum := fab.Summary()
				makespan := last.Sub(inject)
				gbps := float64(sum.Delivered) * 8 / makespan.Seconds() / 1e9 / float64(spec.ToRs)
				fmt.Fprintf(w, " | %15s", fmt.Sprintf("%10.1f", gbps))
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runFig8 reproduces Figure 8: goodput and mice FCT under reconfiguration
// delays of 10-100 ns at 100% load, with the scheduled phase stretched to
// hold the guardband share constant. Each (topology, delay) run is a cell.
func runFig8(o Options, w io.Writer) error {
	d := o.duration()
	delays := []sim.Duration{10, 20, 50, 100}
	if o.Quick {
		delays = []sim.Duration{10, 100}
	}
	r := o.runner()
	for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
		r.Textf("%s:\n", top)
		r.Header("%-11s | %-12s | %-8s", "reconf (ns)", "99p FCT (ms)", "goodput")
		for _, delay := range delays {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = top
				spec.ReconfigDelay = delay
				// Stretch the scheduled phase to keep guardband share
				// constant (paper: "the length of the scheduled phase is
				// accordingly adjusted").
				spec.ScheduledSlots = int(30 * delay / 10)
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-11d | %s | %8.3f\n", delay, fmtFCT(sum.Mice99p), sum.GoodputNormalized)
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}
