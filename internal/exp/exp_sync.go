package exp

import (
	"fmt"
	"io"

	"negotiator/internal/clocksync"
	"negotiator/internal/sim"
)

func init() {
	register(Experiment{ID: "ext-sync", Title: "Extension: guardband vs clock drift and sync error (§3.6.3)", Run: runExtSync})
}

// runExtSync quantifies the paper's §3.6.3 argument: with per-epoch
// resynchronisation over the predefined phase's round-robin connections, a
// 10 ns guardband absorbs clock drift; with conventional tens-of-ns sync
// errors a larger guardband is needed. The table reports the worst
// pairwise misalignment over many epochs and the guardband margin
// (guardband minus a 5 ns tuning time minus the misalignment). One cell
// per sync regime.
func runExtSync(o Options, w io.Writer) error {
	spec := o.baseSpec()
	epoch := negotiatorEpoch(spec)
	epochs := 2000
	if o.Quick {
		epochs = 200
	}
	const tuning = 5 // ns of the guardband consumed by laser tuning/CDR
	r := o.runner()
	r.Header("%-28s | %-14s | %-14s | %-14s", "sync regime",
		"worst mis (ns)", "margin@10ns", "margin@100ns")
	rows := []struct {
		name  string
		drift float64      // ppm
		err   sim.Duration // residual sync error
	}{
		{"round-robin sync, 10ppm", 10, 0},
		{"round-robin sync, 100ppm", 100, 0},
		{"1ns residual, 100ppm", 100, 1},
		{"conventional 25ns, 10ppm", 10, 25},
	}
	for _, row := range rows {
		r.Cell(func(w io.Writer) error {
			m, err := clocksync.New(clocksync.Config{
				N:         spec.ToRs,
				DriftPPM:  row.drift,
				SyncError: row.err,
				Interval:  epoch,
			}, 17+o.Seed)
			if err != nil {
				return err
			}
			worst := m.WorstOverEpochs(epochs)
			fmt.Fprintf(w, "%-28s | %14.3f | %14.3f | %14.3f\n",
				row.name, worst, float64(10-tuning)-worst, float64(100-tuning)-worst)
			return nil
		})
	}
	r.Textf("(positive margin: slots stay collision-free; epoch = %v )\n", epoch)
	return r.Flush(w)
}
