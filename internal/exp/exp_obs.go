package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
)

func init() {
	register(Experiment{ID: "fig17", Title: "Figure 17 (A.3): receiver bandwidth, incast degree 15", Run: runFig17})
	register(Experiment{ID: "fig18", Title: "Figure 18 (A.3): receiver bandwidth, all-to-all 30KB", Run: runFig18})
	register(Experiment{ID: "fig19", Title: "Figure 19 (A.4): single-pair bandwidth across link failures", Run: runFig19})
}

// observeReceiver runs a fabric while sampling the bandwidth arriving at
// one destination, returning the Gbps series.
func observeReceiver(spec negotiator.Spec, dst int, wl negotiator.Workload, dur, bucket sim.Duration) (recv, transit []float64, err error) {
	rx := metrics.NewTimeSeries(bucket)
	tx := metrics.NewTimeSeries(bucket)
	spec.OnDeliver = func(d int, at sim.Time, n int64) {
		if d == dst {
			rx.Add(at, n)
		}
	}
	spec.OnTransit = func(k int, at sim.Time, n int64) {
		if k == dst {
			tx.Add(at, n)
		}
	}
	fab, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	fab.SetWorkload(wl)
	fab.Run(dur)
	return rx.Gbps(), tx.Gbps(), nil
}

func printSeries(w io.Writer, bucket sim.Duration, series ...[]float64) {
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		t := sim.Duration(int64(i) * int64(bucket))
		fmt.Fprintf(w, "%10.2f", t.Micros())
		for _, s := range series {
			v := 0.0
			if i < len(s) {
				v = s[i]
			}
			fmt.Fprintf(w, " | %8.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// runFig17 samples the incast destination's receive bandwidth for incast
// degree 15 on the three systems. Flows are injected at 10µs; the
// oblivious receiver goes quiet while data detours through intermediates.
// Each system runs as one cell that stores its series into a private slot;
// the combined table is printed after the cells complete.
func runFig17(o Options, w io.Writer) error {
	const dst = 3
	inject := sim.Time(10 * sim.Microsecond)
	bucket := sim.Duration(2 * sim.Microsecond)
	dur := 60 * sim.Microsecond
	systems := []struct {
		name string
		top  negotiator.Topology
		obl  bool
	}{
		{"negotiator/parallel", negotiator.ParallelNetwork, false},
		{"negotiator/thin-clos", negotiator.ThinClos, false},
		{"oblivious/thin-clos", negotiator.ThinClos, true},
	}
	all := make([][]float64, len(systems))
	r := o.runner()
	for idx, sys := range systems {
		r.Cell(func(io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = sys.top
			spec.Oblivious = sys.obl
			deg := 15
			if deg > spec.ToRs-1 {
				deg = spec.ToRs - 1
			}
			wl, err := negotiator.IncastWorkload(spec, dst, deg, 1000, inject, 1, 5+o.Seed)
			if err != nil {
				return err
			}
			recv, _, err := observeReceiver(spec, dst, wl, dur, bucket)
			if err != nil {
				return err
			}
			all[idx] = recv
			return nil
		})
	}
	r.Header("%-10s | %-8s | %-8s | %-8s", "t (µs)", "neg/par", "neg/tc", "obl(Gbps)")
	r.Text(func(w io.Writer) error {
		printSeries(w, bucket, all...)
		return nil
	})
	return r.Flush(w)
}

// runFig18 samples a receiver under the 30 KB all-to-all workload. For the
// oblivious system the transit (to-be-forwarded) arrivals are reported
// separately — bandwidth that does not contribute to the receiver's
// goodput. Cells fill fixed series slots; the table prints afterwards.
func runFig18(o Options, w io.Writer) error {
	const dst = 3
	inject := sim.Time(10 * sim.Microsecond)
	bucket := sim.Duration(4 * sim.Microsecond)
	dur := 200 * sim.Microsecond
	systems := []struct {
		top negotiator.Topology
		obl bool
	}{
		{negotiator.ParallelNetwork, false},
		{negotiator.ThinClos, false},
		{negotiator.ThinClos, true},
	}
	// Column order: recv per system, plus the oblivious transit series.
	all := make([][]float64, len(systems)+1)
	r := o.runner()
	for idx, sys := range systems {
		r.Cell(func(io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = sys.top
			spec.Oblivious = sys.obl
			recv, transit, err := observeReceiver(spec, dst,
				negotiator.AllToAllWorkload(spec, 30<<10, inject), dur, bucket)
			if err != nil {
				return err
			}
			all[idx] = recv
			if sys.obl {
				all[len(systems)] = transit // the dedicated extra last column
			}
			return nil
		})
	}
	r.Header("%-10s | %-8s | %-8s | %-8s | %-8s", "t (µs)", "neg/par", "neg/tc", "obl", "obl-transit")
	r.Text(func(w io.Writer) error {
		printSeries(w, bucket, all...)
		return nil
	})
	return r.Flush(w)
}

// runFig19 lets one pair transmit continuously on the parallel network and
// fails a growing set of the source's egress links mid-run: bandwidth
// occupation steps down with failures, shows zero-bandwidth epochs while
// scheduling messages are lost, and recovers. A single simulation: one cell.
func runFig19(o Options, w io.Writer) error {
	r := o.runner()
	r.Cell(func(w io.Writer) error {
		spec := o.baseSpec()
		spec.Topology = negotiator.ParallelNetwork
		epoch := negotiatorEpoch(spec)
		src, dst := 2, 9
		// Fail half the source's egress links.
		var links []negotiator.FailedLink
		for p := 0; p < spec.Ports/2; p++ {
			links = append(links, negotiator.FailedLink{ToR: src, Port: p})
		}
		failAt := sim.Time(60 * epoch)
		recoverAt := sim.Time(140 * epoch)
		spec.Failures = &negotiator.FailurePlan{
			Links:  links,
			FailAt: failAt, RecoverAt: recoverAt,
			DetectDelay: 3 * epoch,
		}
		series := metrics.NewTimeSeries(epoch)
		spec.OnDeliver = func(d int, at sim.Time, n int64) {
			if d == dst {
				series.Add(at, n)
			}
		}
		fab, err := spec.Build()
		if err != nil {
			return err
		}
		fab.SetWorkload(negotiator.SinglePairWorkload(src, dst, 1<<40, 0))
		fab.Run(200 * epoch)
		fmt.Fprintf(w, "single pair %d->%d, %d/%d egress links failed at %.1fµs, recovered at %.1fµs\n",
			src, dst, len(links), spec.Ports, sim.Duration(failAt).Micros(), sim.Duration(recoverAt).Micros())
		header(w, "%-10s | %-10s", "t (µs)", "recv Gbps")
		for i, v := range series.Gbps() {
			t := sim.Duration(int64(i) * int64(epoch))
			fmt.Fprintf(w, "%10.2f | %10.1f\n", t.Micros(), v)
		}
		return nil
	})
	return r.Flush(w)
}
