// Package exp is the evaluation harness: one registered experiment per
// table and figure in the paper's evaluation (§4 and appendices), shared by
// the negotiator-exp CLI and the benchmark suite. Each experiment rebuilds
// the paper's workload and parameters, runs the relevant fabrics, and
// prints the same rows or series the paper reports.
//
// Absolute numbers are expected to differ from the paper (different
// substrate, shorter default duration); EXPERIMENTS.md records measured
// values next to the paper's and the shape claims each experiment must
// reproduce.
package exp

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	negotiator "negotiator"
	"negotiator/internal/sim"
)

// Options control experiment scale.
type Options struct {
	// Duration is the simulated time per run; zero means 6 ms (the paper
	// uses 30 ms; pass -full in the CLI for that).
	Duration sim.Duration
	// ToRs overrides the network size; zero means the paper's 128. Ports
	// and AWGR width scale with it (ToRs/16 ports, W=16 when possible).
	ToRs int
	// Quick trims sweep points for smoke runs.
	Quick bool
	// Seed offsets all run seeds.
	Seed int64
	// Parallel bounds how many independent simulation cells run
	// concurrently; 0 means GOMAXPROCS, 1 forces sequential execution.
	// Output is byte-identical at any setting (see Runner).
	Parallel int
	// Workers is the intra-run ToR-shard parallelism applied to every
	// fabric an experiment builds (Spec.Workers). 0 keeps runs sequential
	// — the right default when cells already fill the cores — except for
	// the scale-sweep experiment, which exists to exercise intra-run
	// sharding and resolves 0 to GOMAXPROCS. Output is byte-identical at
	// any setting.
	Workers int
	// StateDir, when non-empty, makes sweeps durable: each completed cell's
	// output is persisted under StateDir/StateID as it finishes, so a
	// crashed or killed sweep can be rerun with Resume and only the
	// unfinished cells execute.
	StateDir string
	// StateID names the sweep inside StateDir (the CLI passes the
	// experiment ID, keeping cell keys from different experiments apart).
	StateID string
	// Resume salvages a previous run's completed cells from StateDir
	// instead of starting fresh. The stitched output is byte-identical to
	// an uninterrupted run; a state dir recorded by a different sweep
	// (other experiment, duration, size, quick mode, or seed) is refused.
	Resume bool
	// CellTimeout, when positive, bounds each cell's wall-clock time. A
	// cell that exceeds it is retried once with a fresh buffer and
	// quarantined as a casualty if it times out again; see Runner.Flush.
	CellTimeout time.Duration
}

// runner returns the cell runner for these options. Configuration problems
// with the durability state (unwritable dir, signature mismatch) surface
// from the first Flush rather than here, keeping cell registration
// infallible for experiment code.
func (o Options) runner() *Runner {
	r := NewRunner(o.Parallel)
	r.timeout = o.CellTimeout
	if o.StateDir != "" {
		st, err := OpenSweepState(filepath.Join(o.StateDir, o.StateID), o.signature(), o.Resume)
		if err != nil {
			r.initErr = err
		} else {
			r.state = st
		}
	}
	return r
}

// signature is the durability manifest's identity line: the experiment
// plus every option that shapes its output. Parallel and Workers are
// deliberately absent — output is byte-identical at any parallelism, so a
// sweep may be resumed at a different worker count.
func (o Options) signature() string {
	return fmt.Sprintf("%s duration=%d tors=%d quick=%v seed=%d", o.StateID, int64(o.duration()), o.ToRs, o.Quick, o.Seed)
}

func (o Options) duration() sim.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return 6 * sim.Millisecond
}

// baseSpec returns the paper's §4.1 spec scaled to the options.
func (o Options) baseSpec() negotiator.Spec { return o.sizedSpec(o.ToRs) }

// sizedSpec returns the paper's §4.1 spec scaled to an explicit fabric
// size (0 means the paper's 128 ToRs). Ports and AWGR width scale with
// the size, keeping the 2x speedup.
func (o Options) sizedSpec(tors int) negotiator.Spec {
	s := negotiator.DefaultSpec()
	s.Seed = 1 + o.Seed
	s.Workers = o.Workers
	if tors == 0 || tors == 128 {
		return s
	}
	s.ToRs = tors
	switch {
	case tors%16 == 0 && tors >= 64:
		s.Ports, s.AWGRPorts = tors/16, 16
	case tors%8 == 0 && tors >= 32:
		s.Ports, s.AWGRPorts = tors/8, 8
	default:
		s.Ports, s.AWGRPorts = 4, tors/4
	}
	// Keep the 2x speedup: host rate = ports * link rate / 2.
	s.HostRate = sim.Gbps(int64(s.Ports) * 100 / 2)
	return s
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
	// WallClock marks experiments whose output includes wall-clock-derived
	// measurements (e.g. scale-sweep's epochs/s column). Their simulated
	// metrics are still deterministic, but the byte stream is exempt from
	// the byte-identical-at-any-parallelism guarantee the rest of the
	// registry upholds.
	WallClock bool
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, k := range []string{
		"table2", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10",
		"fig11", "fig12a", "fig12b", "fig13a", "fig13b", "fig13c",
		"fig14", "fig15", "table3", "table4", "table5", "table6",
		"fig17", "fig18", "fig19", "ext-arbiters", "ext-threshold", "ext-buffers", "ext-sync",
		"ext-hybrid", "ext-skew", "ext-failures", "ext-diurnal", "scale-sweep",
	} {
		if k == id {
			return i
		}
	}
	return 1 << 30
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// run builds a fabric from the spec, attaches the workload, runs it for d
// and returns the summary.
func run(spec negotiator.Spec, w negotiator.Workload, d sim.Duration) (negotiator.Summary, error) {
	fab, err := spec.Build()
	if err != nil {
		return negotiator.Summary{}, err
	}
	fab.SetWorkload(w)
	fab.Run(d)
	return fab.Summary(), nil
}

// loads returns the load sweep (paper: 10-100%).
func (o Options) loads() []float64 {
	if o.Quick {
		return []float64{0.25, 1.0}
	}
	return []float64{0.10, 0.25, 0.50, 0.75, 1.00}
}

// fmtFCT renders an FCT the way the paper's figures do (ms with enough
// precision for the 10µs..10ms range).
func fmtFCT(d sim.Duration) string {
	return fmt.Sprintf("%8.4f", d.Millis())
}

func fmtUs(d sim.Duration) string {
	return fmt.Sprintf("%7.1f", d.Micros())
}

// header prints a table header line followed by a rule.
func header(w io.Writer, format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	fmt.Fprintln(w, s)
	for range s {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
