package exp

import (
	"bytes"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"negotiator/internal/par"
)

// Runner executes an experiment as a sequence of output items, some of
// which — the cells — are independent simulations that may run
// concurrently on a bounded worker pool. Each cell renders into its own
// buffer; Flush stitches every item's output in registration order, so the
// final byte stream is identical at any parallelism level.
//
// The contract that makes this safe: a cell closure must be
// self-contained. It builds its own Spec, fabric, workload and metric
// sinks (all randomness flows from per-cell seeds, see internal/sim.RNG),
// and shares nothing mutable with other cells. Text items run serially
// during the stitch pass, after every cell has finished, so they may read
// results a cell stored (e.g. a series written into its own slot of a
// pre-sized slice).
//
// A runner may additionally be durable (state != nil): every completed
// cell's output is persisted through a SweepState as it finishes, and
// cells the manifest already records as done are not rerun — their
// salvaged bytes are stitched in place, so a resumed sweep's output is
// byte-identical to an uninterrupted one. Cell keys are assigned by a
// monotonic registration counter that persists across Flush calls, which
// is why resuming requires re-registering the exact same cell sequence
// (enforced coarsely by the sweep signature, see SweepState).
type Runner struct {
	par     int
	items   []runItem
	nextKey int
	timeout time.Duration
	state   *SweepState
	initErr error
}

// runItem is one unit of output: either a pooled cell or a serial text
// item (exactly one of the two fields is set).
type runItem struct {
	cell *cell
	text func(io.Writer) error
}

// cell is a pooled simulation with its private output buffer. err holds a
// regular failure returned by the closure (aborts the stitch, as a
// sequential run would); casualty holds a quarantined failure — a panic or
// a timeout — that is reported in place without sinking the sweep.
type cell struct {
	key      int
	run      func(io.Writer) error
	out      *bytes.Buffer
	err      error
	casualty error
}

// CellFailure identifies one quarantined cell.
type CellFailure struct {
	Key int
	Err error
}

// CasualtyError is returned by Flush when one or more cells were
// quarantined (panicked or timed out) but the rest of the sweep completed
// and every surviving item was written. The failed cells are marked in the
// output stream and absent from the durability manifest, so a -resume run
// retries exactly those.
type CasualtyError struct {
	Cells []CellFailure
}

func (e *CasualtyError) Error() string {
	first := e.Cells[0]
	msg := fmt.Sprint(first.Err)
	if i := len(msg); i > 120 {
		msg = msg[:120] + "..."
	}
	return fmt.Sprintf("%d cell(s) quarantined (first: cell %d: %s)", len(e.Cells), first.Key, msg)
}

// EffectiveParallelism resolves a requested parallelism level:
// parallel <= 0 means GOMAXPROCS (see par.Effective, the single point of
// truth shared with the engines' shard workers).
func EffectiveParallelism(parallel int) int { return par.Effective(parallel) }

// NewRunner returns a runner executing at most parallel cells at once.
// parallel <= 0 means GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	return &Runner{par: EffectiveParallelism(parallel)}
}

// Parallelism reports the runner's worker bound.
func (r *Runner) Parallelism() int { return r.par }

// Cell registers an independent simulation. fn receives the cell's private
// buffer as its writer; its output appears at this registration position
// in the stitched stream.
func (r *Runner) Cell(fn func(w io.Writer) error) {
	r.items = append(r.items, runItem{cell: &cell{key: r.nextKey, run: fn}})
	r.nextKey++
}

// Text registers a serial item executed in order during the stitch pass,
// after all cells have completed. Use it for headers, separators, and any
// output derived from results the cells stored.
func (r *Runner) Text(fn func(w io.Writer) error) {
	r.items = append(r.items, runItem{text: fn})
}

// Textf registers a fixed formatted string as a serial item.
func (r *Runner) Textf(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	r.Text(func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	})
}

// Header registers the experiment table header (rule line included).
func (r *Runner) Header(format string, args ...interface{}) {
	r.Text(func(w io.Writer) error {
		header(w, format, args...)
		return nil
	})
}

// Flush runs every registered cell on the worker pool, then writes all
// items to w in registration order. It returns the first regular error in
// registration order; output preceding the failed item has already been
// written, matching what a sequential run would have produced. Quarantined
// cells (panics, timeouts) do not abort: their position carries a failure
// marker, the remaining items still run and print, and Flush returns a
// *CasualtyError after everything is written.
func (r *Runner) Flush(w io.Writer) error {
	if r.initErr != nil {
		return r.initErr
	}
	var pending []*cell
	for _, it := range r.items {
		c := it.cell
		if c == nil {
			continue
		}
		if r.state != nil {
			if out, ok := r.state.CachedOutput(c.key); ok {
				c.out = bytes.NewBuffer(out)
				continue
			}
		}
		pending = append(pending, c)
	}
	par.Do(len(pending), r.par, func(i int) {
		r.runCell(pending[i])
	})
	var casualties []CellFailure
	for _, it := range r.items {
		if it.cell != nil {
			c := it.cell
			if c.casualty != nil {
				casualties = append(casualties, CellFailure{Key: c.key, Err: c.casualty})
				if _, err := fmt.Fprintf(w, "!! cell %d failed: %v\n", c.key, c.casualty); err != nil {
					return err
				}
				continue
			}
			if c.err != nil {
				return c.err
			}
			if _, err := w.Write(c.out.Bytes()); err != nil {
				return err
			}
			continue
		}
		if err := it.text(w); err != nil {
			return err
		}
	}
	r.items = r.items[:0]
	if len(casualties) > 0 {
		return &CasualtyError{Cells: casualties}
	}
	return nil
}

// runCell executes one cell with panic quarantine and, when a timeout is
// configured, a bounded wall-clock budget with one retry. Each attempt
// writes into its own fresh buffer: a timed-out attempt's worker goroutine
// cannot be killed, so it is abandoned with its private buffer and its
// eventual output (if any) is discarded rather than raced over.
func (r *Runner) runCell(c *cell) {
	attempts := 1
	if r.timeout > 0 {
		attempts = 2
	}
	for a := 1; a <= attempts; a++ {
		buf := new(bytes.Buffer)
		type result struct {
			err      error
			panicked error
		}
		done := make(chan result, 1)
		go func() {
			var res result
			defer func() {
				if p := recover(); p != nil {
					res.panicked = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
				}
				done <- res
			}()
			res.err = c.run(buf)
		}()
		if r.timeout <= 0 {
			res := <-done
			r.finishCell(c, buf, res.err, res.panicked)
			return
		}
		timer := time.NewTimer(r.timeout)
		select {
		case res := <-done:
			timer.Stop()
			r.finishCell(c, buf, res.err, res.panicked)
			return
		case <-timer.C:
			c.casualty = fmt.Errorf("timed out after %v (attempt %d/%d)", r.timeout, a, attempts)
		}
	}
}

// finishCell records an attempt's outcome: panics quarantine the cell,
// regular errors keep abort semantics, and successes clear any earlier
// timeout casualty and are persisted when the runner is durable.
func (r *Runner) finishCell(c *cell, buf *bytes.Buffer, err, panicked error) {
	c.out = buf
	c.err = err
	c.casualty = panicked
	if c.err == nil && c.casualty == nil && r.state != nil {
		if err := r.state.Record(c.key, buf.Bytes()); err != nil {
			c.err = fmt.Errorf("persisting cell %d: %w", c.key, err)
		}
	}
}
