package exp

import (
	"bytes"
	"fmt"
	"io"

	"negotiator/internal/par"
)

// Runner executes an experiment as a sequence of output items, some of
// which — the cells — are independent simulations that may run
// concurrently on a bounded worker pool. Each cell renders into its own
// buffer; Flush stitches every item's output in registration order, so the
// final byte stream is identical at any parallelism level.
//
// The contract that makes this safe: a cell closure must be
// self-contained. It builds its own Spec, fabric, workload and metric
// sinks (all randomness flows from per-cell seeds, see internal/sim.RNG),
// and shares nothing mutable with other cells. Text items run serially
// during the stitch pass, after every cell has finished, so they may read
// results a cell stored (e.g. a series written into its own slot of a
// pre-sized slice).
type Runner struct {
	par   int
	items []runItem
}

// runItem is one unit of output: either a pooled cell or a serial text
// item (exactly one of the two fields is set).
type runItem struct {
	cell *cell
	text func(io.Writer) error
}

// cell is a pooled simulation with its private output buffer.
type cell struct {
	run func(io.Writer) error
	buf bytes.Buffer
	err error
}

// EffectiveParallelism resolves a requested parallelism level:
// parallel <= 0 means GOMAXPROCS (see par.Effective, the single point of
// truth shared with the engines' shard workers).
func EffectiveParallelism(parallel int) int { return par.Effective(parallel) }

// NewRunner returns a runner executing at most parallel cells at once.
// parallel <= 0 means GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	return &Runner{par: EffectiveParallelism(parallel)}
}

// Parallelism reports the runner's worker bound.
func (r *Runner) Parallelism() int { return r.par }

// Cell registers an independent simulation. fn receives the cell's private
// buffer as its writer; its output appears at this registration position
// in the stitched stream.
func (r *Runner) Cell(fn func(w io.Writer) error) {
	r.items = append(r.items, runItem{cell: &cell{run: fn}})
}

// Text registers a serial item executed in order during the stitch pass,
// after all cells have completed. Use it for headers, separators, and any
// output derived from results the cells stored.
func (r *Runner) Text(fn func(w io.Writer) error) {
	r.items = append(r.items, runItem{text: fn})
}

// Textf registers a fixed formatted string as a serial item.
func (r *Runner) Textf(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	r.Text(func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	})
}

// Header registers the experiment table header (rule line included).
func (r *Runner) Header(format string, args ...interface{}) {
	r.Text(func(w io.Writer) error {
		header(w, format, args...)
		return nil
	})
}

// Flush runs every registered cell on the worker pool, then writes all
// items to w in registration order. It returns the first error in
// registration order; output preceding the failed item has already been
// written, matching what a sequential run would have produced.
func (r *Runner) Flush(w io.Writer) error {
	var cells []*cell
	for _, it := range r.items {
		if it.cell != nil {
			cells = append(cells, it.cell)
		}
	}
	par.Do(len(cells), r.par, func(i int) {
		c := cells[i]
		c.err = c.run(&c.buf)
	})
	for _, it := range r.items {
		if it.cell != nil {
			if it.cell.err != nil {
				return it.cell.err
			}
			if _, err := w.Write(it.cell.buf.Bytes()); err != nil {
				return err
			}
			continue
		}
		if err := it.text(w); err != nil {
			return err
		}
	}
	r.items = r.items[:0]
	return nil
}
