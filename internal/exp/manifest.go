package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// SweepState is the Runner's crash-safe durability backend: an
// append-only manifest of completed cells plus one output file per cell.
//
// The write protocol makes a SIGKILL at any instant recoverable: a cell's
// output is first written to a temp file and renamed into place
// (cells/NNNNNN.out), and only then is its "key hash" line appended to
// the manifest under a mutex. A kill between the two leaves an orphan
// output file with no manifest line — ignored on resume, the cell just
// reruns. A kill mid-append leaves a torn last line — dropped on resume.
// The manifest therefore never claims output that is not fully on disk.
//
// The manifest's first line is the sweep signature (experiment identity
// plus every option that shapes the output: duration, size, quick mode,
// seed — parallelism settings are excluded because output is
// parallelism-independent). Resume refuses a state directory whose
// signature does not match: a checkpointed sweep is only resumable by the
// same sweep.
type SweepState struct {
	dir  string
	mu   sync.Mutex
	mf   *os.File
	done map[int]string // cell key -> output hash
}

// OpenSweepState opens (resume) or initializes (fresh) the durability
// state for one sweep. A fresh open truncates any previous manifest, so
// stale cell files from an older run can never be mistaken for current
// ones. Resume with no manifest on disk degrades to a fresh start.
func OpenSweepState(dir, signature string, resume bool) (*SweepState, error) {
	if strings.ContainsAny(signature, "\n\r") {
		return nil, fmt.Errorf("exp: sweep signature must be a single line")
	}
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "manifest")
	s := &SweepState{dir: dir, done: make(map[int]string)}
	if resume {
		raw, err := os.ReadFile(path)
		switch {
		case err == nil:
			text := string(raw)
			// A SIGKILL mid-append can leave a torn final line; drop
			// everything after the last complete line before appending.
			if cut := strings.LastIndexByte(text, '\n'); cut >= 0 {
				if cut+1 < len(text) {
					if err := os.Truncate(path, int64(cut+1)); err != nil {
						return nil, err
					}
				}
				text = text[:cut]
			} else {
				text = ""
			}
			lines := strings.Split(text, "\n")
			if len(lines) == 0 || lines[0] != signature {
				got := ""
				if len(lines) > 0 {
					got = lines[0]
				}
				return nil, fmt.Errorf("exp: state dir %s holds a different sweep (manifest signature %q, want %q)", dir, got, signature)
			}
			for _, ln := range lines[1:] {
				var key int
				var hash string
				if _, err := fmt.Sscanf(ln, "%d %s", &key, &hash); err == nil {
					s.done[key] = hash
				}
			}
			mf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			s.mf = mf
			return s, nil
		case !os.IsNotExist(err):
			return nil, err
		}
		// No manifest yet: nothing to resume, start fresh below.
	}
	mf, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintln(mf, signature); err != nil {
		mf.Close()
		return nil, err
	}
	s.mf = mf
	return s, nil
}

// Finished reports how many cells the manifest records as complete.
func (s *SweepState) Finished() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

func (s *SweepState) cellPath(key int) string {
	return filepath.Join(s.dir, "cells", fmt.Sprintf("%06d.out", key))
}

// CachedOutput returns a completed cell's salvaged output. It re-verifies
// the recorded hash against the file on disk: any mismatch (torn write,
// manual tampering) reads as not-cached and the cell reruns.
func (s *SweepState) CachedOutput(key int) ([]byte, bool) {
	s.mu.Lock()
	hash, ok := s.done[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	b, err := os.ReadFile(s.cellPath(key))
	if err != nil || hashBytes(b) != hash {
		return nil, false
	}
	return b, true
}

// Record persists one completed cell: output file first (atomic via temp
// + rename), manifest line second. Safe to call from concurrent workers.
func (s *SweepState) Record(key int, out []byte) error {
	p := s.cellPath(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		return err
	}
	h := hashBytes(out)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(s.mf, "%d %s\n", key, h); err != nil {
		return err
	}
	s.done[key] = h
	return nil
}

// Close releases the manifest handle.
func (s *SweepState) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mf == nil {
		return nil
	}
	err := s.mf.Close()
	s.mf = nil
	return err
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
