package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
	"negotiator/internal/sim"
)

// The failure-resilience sweep (PR 6 robustness item): Figure 10 measures
// bandwidth recovery for NegotiaToR alone, but the fabric core now owns
// failure state, so every control plane degrades under the same plan and
// the same requeue-on-detect semantics. This sweep compares how the three
// planes absorb random link failures as the failed fraction and the
// detection lag grow: NegotiaToR reroutes around known-down pairs at the
// next negotiation, the oblivious baseline keeps spraying into black holes
// until detection, and the hybrid splits the difference (mice ride the
// fixed schedule, elephants renegotiate).

func init() {
	register(Experiment{ID: "ext-failures", Title: "Extension: failure fraction x detection delay across all three control planes", Run: runExtFailures})
}

// runExtFailures fails a fraction of directed links for the middle half of
// the run and sweeps the detection lag, on each control plane. One cell
// per (fraction, detect, system); load is fixed at 75% Hadoop.
func runExtFailures(o Options, w io.Writer) error {
	d := o.duration()
	const load = 0.75
	fractions := []float64{0.01, 0.05}
	// Detection lags in epochs: near-immediate, the default three, and a
	// sluggish monitoring plane.
	detects := []int{1, 3, 10}
	if o.Quick {
		fractions = []float64{0.05}
		detects = []int{1, 10}
	}
	systems := []struct {
		name  string
		plane negotiator.ControlPlaneKind
	}{
		{"negotiator", negotiator.NegotiaToRPlane},
		{"oblivious", negotiator.ObliviousPlane},
		{"hybrid", negotiator.HybridPlane},
	}
	epoch := negotiatorEpoch(o.baseSpec())
	r := o.runner()
	r.Header("%-10s | %-13s | %-11s | %-12s | %-12s | %-8s | %-10s",
		"failed(%)", "detect(epoch)", "system", "mice99p(ms)", "all 99p(ms)", "goodput", "lost(KB)")
	for _, frac := range fractions {
		for _, det := range detects {
			for _, sys := range systems {
				frac, det, sys := frac, det, sys
				r.Cell(func(w io.Writer) error {
					spec := o.baseSpec()
					spec.Topology = negotiator.ParallelNetwork
					spec.ControlPlane = sys.plane
					// Links fail a quarter in and recover at three
					// quarters, so the run sees both transitions.
					spec.Failures = &negotiator.FailurePlan{
						Fraction:    frac,
						FailAt:      sim.Time(d / 4),
						RecoverAt:   sim.Time(3 * d / 4),
						DetectDelay: sim.Duration(det) * epoch,
						Seed:        17 + o.Seed,
					}
					sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%-10.0f | %-13d | %-11s | %s | %s | %8.3f | %10.1f\n",
						frac*100, det, sys.name, fmtFCT(sum.Mice99p), fmtFCT(sum.All99p),
						sum.GoodputNormalized, float64(sum.LostBytes)/1024)
					return nil
				})
			}
		}
	}
	return r.Flush(w)
}
