package exp

import (
	"fmt"
	"io"
	"time"

	negotiator "negotiator"
)

// The diurnal quiet-time sweep (ROADMAP event-skip item): real fabrics
// spend most of a day far below peak load, and a tick-every-round
// simulator pays full price for every quiet epoch. This experiment drives
// all three control planes through a day/night load cycle twice — once
// with the event-skip run loop, once forced to tick — asserts the two runs
// are result-identical, and reports the measured wall-clock speedup.

func init() {
	register(Experiment{
		ID:        "ext-diurnal",
		Title:     "Extension: diurnal load cycle — event-skip wall-clock speedup at identical results",
		Run:       runExtDiurnal,
		WallClock: true, // speedup columns are wall-clock-derived
	})
}

// runExtDiurnal runs each control plane under a sinusoidal day/night load
// (two cycles per run, 50% peak load, 0.05% trough) with the event-skip
// run loop on and off. The simulated metrics of both runs must match
// exactly — the experiment fails otherwise — so the speedup column is the
// only difference skipping makes. Wall-clock numbers are meaningful when
// cells run sequentially (-parallel 1).
func runExtDiurnal(o Options, w io.Writer) error {
	d := o.duration()
	r := o.runner()
	r.Header("%-11s | %-11s | %-12s | %-8s | %-9s | %-9s | %-7s", "system", "mice99p(ms)", "all 99p(ms)", "goodput", "skip(ms)", "tick(ms)", "speedup")
	systems := []struct {
		name  string
		plane negotiator.ControlPlaneKind
	}{
		{"negotiator", negotiator.NegotiaToRPlane},
		{"oblivious", negotiator.ObliviousPlane},
		{"hybrid", negotiator.HybridPlane},
	}
	for _, sys := range systems {
		sys := sys
		r.Cell(func(w io.Writer) error {
			var sums [2]negotiator.Summary
			var wall [2]time.Duration
			for i, noskip := range []bool{false, true} {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.ControlPlane = sys.plane
				spec.DisableEventSkip = noskip
				wl, err := negotiator.DiurnalWorkload(spec, negotiator.Hadoop, 0.001, d/2, 0.01, 7+o.Seed)
				if err != nil {
					return err
				}
				start := time.Now()
				sum, err := run(spec, wl, d)
				if err != nil {
					return err
				}
				wall[i] = time.Since(start)
				sums[i] = sum
			}
			if sums[0] != sums[1] {
				return fmt.Errorf("ext-diurnal: %s: event-skip changed results:\n  skip: %+v\n  tick: %+v", sys.name, sums[0], sums[1])
			}
			speedup := float64(wall[1]) / float64(wall[0])
			fmt.Fprintf(w, "%-11s | %s | %s | %8.3f | %9.2f | %9.2f | %6.2fx\n",
				sys.name, fmtFCT(sums[0].Mice99p), fmtFCT(sums[0].All99p), sums[0].GoodputNormalized,
				float64(wall[0].Microseconds())/1000, float64(wall[1].Microseconds())/1000, speedup)
			return nil
		})
	}
	return r.Flush(w)
}
