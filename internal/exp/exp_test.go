package exp

import (
	"strings"
	"testing"

	"negotiator/internal/sim"
)

// tinyOptions keep experiment smoke tests fast.
func tinyOptions() Options {
	return Options{Duration: 300 * sim.Microsecond, ToRs: 16, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered.
	want := []string{
		"table2", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10",
		"fig11", "fig12a", "fig12b", "fig13a", "fig13b", "fig13c",
		"fig14", "fig15", "table3", "table4", "table5", "table6",
		"fig17", "fig18", "fig19", "ext-arbiters", "ext-threshold", "ext-buffers", "ext-sync",
		"ext-hybrid", "ext-skew", "ext-failures", "ext-diurnal", "scale-sweep",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s (paper order)", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	// Each experiment must complete at tiny scale and produce a table.
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			if err := e.Run(tinyOptions(), &sb); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := sb.String()
			if len(out) < 40 {
				t.Fatalf("%s produced no meaningful output: %q", e.ID, out)
			}
			if !strings.Contains(out, "|") {
				t.Errorf("%s output has no table structure:\n%s", e.ID, out)
			}
		})
	}
}

func TestOptionsScaling(t *testing.T) {
	for _, tc := range []struct {
		tors, wantPorts, wantW int
	}{
		{0, 8, 16},
		{128, 8, 16},
		{64, 4, 16},
		{16, 4, 4},
	} {
		o := Options{ToRs: tc.tors}
		s := o.baseSpec()
		if s.Ports != tc.wantPorts || s.AWGRPorts != tc.wantW {
			t.Errorf("ToRs=%d: ports=%d W=%d, want %d/%d",
				tc.tors, s.Ports, s.AWGRPorts, tc.wantPorts, tc.wantW)
		}
		if s.ToRs != tc.tors && tc.tors != 0 {
			t.Errorf("ToRs not applied")
		}
		// Thin-clos constraint must hold for the scaled spec.
		if s.ToRs != 0 && s.Ports*s.AWGRPorts != max(s.ToRs, 128) && tc.tors != 0 {
			if s.Ports*s.AWGRPorts != s.ToRs {
				t.Errorf("ToRs=%d: ports*W=%d != ToRs", tc.tors, s.Ports*s.AWGRPorts)
			}
		}
	}
}

func TestTheoreticalMatchRatio(t *testing.T) {
	// 1-(1-1/n)^n: 0.75 for n=2, ->1-1/e for large n.
	if got := theoreticalMatchRatio(2); got != 0.75 {
		t.Errorf("n=2: %v, want 0.75", got)
	}
	if got := theoreticalMatchRatio(128); got < 0.632 || got > 0.637 {
		t.Errorf("n=128: %v, want ~0.634", got)
	}
	if got := theoreticalMatchRatio(16); got < 0.64 || got > 0.65 {
		t.Errorf("n=16: %v, want ~0.644", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDefaultDuration(t *testing.T) {
	if d := (Options{}).duration(); d != 6*sim.Millisecond {
		t.Errorf("default duration = %v", d)
	}
	if d := (Options{Duration: 123}).duration(); d != 123 {
		t.Errorf("override duration = %v", d)
	}
}

func TestLoadsSweep(t *testing.T) {
	if got := (Options{}).loads(); len(got) != 5 {
		t.Errorf("full sweep = %v", got)
	}
	if got := (Options{Quick: true}).loads(); len(got) != 2 {
		t.Errorf("quick sweep = %v", got)
	}
}
