package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
	"negotiator/internal/sim"
)

func init() {
	register(Experiment{ID: "fig12a", Title: "Figure 12(a): sensitivity of predefined-phase timeslot duration", Run: runFig12a})
	register(Experiment{ID: "fig12b", Title: "Figure 12(b): sensitivity of scheduled-phase length", Run: runFig12b})
	register(Experiment{ID: "fig13a", Title: "Figure 13(a): Hadoop mixed with incasts", Run: runFig13a})
	register(Experiment{ID: "fig13b", Title: "Figure 13(b): web search workload", Run: runFig13b})
	register(Experiment{ID: "fig13c", Title: "Figure 13(c): Google datacenter workload", Run: runFig13c})
	register(Experiment{ID: "fig14", Title: "Figure 14 (A.1): match ratio vs theory", Run: runFig14})
}

// runFig12a sweeps the predefined-phase timeslot duration (guardband
// included) from 20 to 120 ns on the parallel network, reporting mice 99p
// FCT per load. Each (load, slot) run is one cell emitting its fragment.
func runFig12a(o Options, w io.Writer) error {
	d := o.duration()
	slots := []sim.Duration{20, 30, 60, 90, 120}
	if o.Quick {
		slots = []sim.Duration{20, 60, 120}
	}
	loads := o.loads()
	head := fmt.Sprintf("%-8s", "load(%)")
	for _, st := range slots {
		head += fmt.Sprintf(" | %4dns 99p(µs)", st)
	}
	r := o.runner()
	r.Header("%s", head)
	for _, load := range loads {
		r.Textf("%-8.0f", load*100)
		for _, st := range slots {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.PredefinedSlotTime = st
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " | %15.1f", sum.Mice99p.Micros())
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runFig12b sweeps the scheduled-phase length from 10 to 500 timeslots on
// the parallel network, reporting mice 99p FCT and goodput per load.
func runFig12b(o Options, w io.Writer) error {
	d := o.duration()
	lengths := []int{10, 30, 50, 100, 500}
	if o.Quick {
		lengths = []int{10, 30, 500}
	}
	r := o.runner()
	for _, n := range lengths {
		r.Textf("scheduled phase = %d timeslots:\n", n)
		r.Header("%-8s | %-12s | %-8s", "load(%)", "99p FCT (ms)", "goodput")
		for _, load := range o.loads() {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.ScheduledSlots = n
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-8.0f | %s | %8.3f\n", load*100, fmtFCT(sum.Mice99p), sum.GoodputNormalized)
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runFig13a mixes degree-20 1 KB incasts consuming 2% of aggregate downlink
// bandwidth into the Hadoop background (paper §4.4): background mice FCT,
// average incast finish time, and overall goodput per system and load.
func runFig13a(o Options, w io.Writer) error {
	d := o.duration()
	systems := mainResultSystems()
	if o.Quick {
		systems = []system{systems[0], systems[2], systems[4]}
	}
	r := o.runner()
	for _, sys := range systems {
		r.Textf("%s:\n", sys.name)
		r.Header("%-8s | %-12s | %-16s | %-8s", "load(%)", "bg 99p (ms)", "incast avg (ms)", "goodput")
		for _, load := range o.loads() {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = sys.top
				spec.Oblivious = sys.obl
				spec.PriorityQueues = sys.pq
				degree := 20
				if degree > spec.ToRs-1 {
					degree = spec.ToRs - 1
				}
				fab, err := spec.Build()
				if err != nil {
					return err
				}
				fab.SetWorkload(negotiator.MixedIncastWorkload(spec, negotiator.Hadoop, load, degree, 1000, 0.02, 1, 7+o.Seed))
				fab.Run(d)
				sum := fab.Summary()
				var total sim.Duration
				var done int
				for _, ev := range fab.Events() {
					if ft := ev.FinishTime(); ft > 0 {
						total += ft
						done++
					}
				}
				avg := sim.Duration(0)
				if done > 0 {
					avg = total / sim.Duration(done)
				}
				fmt.Fprintf(w, "%-8.0f | %s | %16.4f | %8.3f\n",
					load*100, fmtFCT(sum.Mice99p), avg.Millis(), sum.GoodputNormalized)
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

func runFig13b(o Options, w io.Writer) error {
	return runLoadSweep(o, w, negotiator.WebSearch, nil)
}

func runFig13c(o Options, w io.Writer) error {
	return runLoadSweep(o, w, negotiator.Google, nil)
}

// runFig14 reproduces Appendix A.1: the per-epoch accept/grant match ratio
// at 100% load on both topologies, against the theoretical 1-(1-1/n)^n.
// Each topology is one cell.
func runFig14(o Options, w io.Writer) error {
	d := o.duration()
	r := o.runner()
	for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
		r.Cell(func(w io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = top
			// Theory: n = number of competitors per grant ring (N for
			// parallel, W for thin-clos).
			n := spec.ToRs
			if top == negotiator.ThinClos {
				n = spec.AWGRPorts
			}
			theory := theoreticalMatchRatio(n)
			fab, err := spec.Build()
			if err != nil {
				return err
			}
			fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 7+o.Seed))
			fab.Run(d)
			series := fab.MatchRatioSeries()
			sum := fab.Summary()
			fmt.Fprintf(w, "%s: theory E[Y]=%.3f measured mean=%.3f\n", top, theory, sum.MatchRatio)
			header(w, "%-10s | %-10s", "time (ms)", "ratio")
			step := len(series) / 10
			if step == 0 {
				step = 1
			}
			for i := step; i < len(series); i += step {
				t := sim.Duration(int64(i) * int64(sum.EpochLen))
				fmt.Fprintf(w, "%10.2f | %10.3f\n", t.Millis(), series[i])
			}
			fmt.Fprintln(w)
			return nil
		})
	}
	return r.Flush(w)
}

// theoreticalMatchRatio is 1-(1-1/n)^n (paper §3.2.2).
func theoreticalMatchRatio(n int) float64 {
	p := 1.0
	base := 1 - 1/float64(n)
	for i := 0; i < n; i++ {
		p *= base
	}
	return 1 - p
}
