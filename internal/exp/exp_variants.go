package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
)

func init() {
	register(Experiment{ID: "fig15", Title: "Figure 15 (A.2.1): iterative matching vs 2x speedup", Run: runFig15})
	register(Experiment{ID: "table3", Title: "Table 3 (A.2.2): traffic-aware selective relay on thin-clos", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Table 4 (A.2.3): informative requests", Run: runTable4})
	register(Experiment{ID: "table5", Title: "Table 5 (A.2.4): stateful scheduling", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Table 6 (A.2.5): ProjecToR-style scheduling", Run: runTable6})
}

// variantRow registers one scheduler/spec variant's row: one cell per
// load, each reporting the paper's appendix-table format — 99p mice FCT
// (µs) / normalised goodput.
func variantRow(o Options, r *Runner, name string, mutate func(*negotiator.Spec)) {
	d := o.duration()
	r.Textf("%-10s", name)
	for _, load := range o.loads() {
		r.Cell(func(w io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = negotiator.ParallelNetwork
			mutate(&spec)
			sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " | %s/%5.1f%%", fmtUs(sum.Mice99p), 100*sum.GoodputNormalized)
			return nil
		})
	}
	r.Textf("\n")
}

func variantHeader(o Options, r *Runner) {
	head := fmt.Sprintf("%-10s", "")
	for _, load := range o.loads() {
		head += fmt.Sprintf(" | %3.0f%% 99p(µs)/gp", load*100)
	}
	r.Header("%s", head)
}

// runFig15 compares the base non-iterative matching with 2x speedup
// against iterative variants (1/3/5 rounds) without speedup.
func runFig15(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "speedup2x", func(s *negotiator.Spec) {})
	iters := []struct {
		name string
		sch  negotiator.Scheduler
	}{
		{"ITER_I", negotiator.Iterative1},
		{"ITER_III", negotiator.Iterative3},
		{"ITER_V", negotiator.Iterative5},
	}
	if o.Quick {
		iters = iters[2:]
	}
	for _, it := range iters {
		variantRow(o, r, it.name, func(s *negotiator.Spec) {
			s.Scheduler = it.sch
			// No speedup: uplink aggregate equals host aggregate.
			s.LinkRate = negotiator.Gbps(int64(s.HostRate) / int64(s.Ports))
		})
	}
	return r.Flush(w)
}

// runTable3 compares base NegotiaToR with the traffic-aware selective
// relay extension on the thin-clos topology.
func runTable3(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "Base", func(s *negotiator.Spec) {
		s.Topology = negotiator.ThinClos
	})
	variantRow(o, r, "Two-Hop", func(s *negotiator.Spec) {
		s.Topology = negotiator.ThinClos
		s.SelectiveRelay = true
	})
	return r.Flush(w)
}

// runTable4 compares binary requests with the informative-request
// variants.
func runTable4(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "Base", func(s *negotiator.Spec) {})
	variantRow(o, r, "Data-Size", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.DataSizePriority
	})
	variantRow(o, r, "HoL-Delay", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.HoLDelayPriority
	})
	return r.Flush(w)
}

// runTable5 compares stateless and stateful scheduling.
func runTable5(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "Base", func(s *negotiator.Spec) {})
	variantRow(o, r, "Stateful", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.Stateful
	})
	return r.Flush(w)
}

// runTable6 compares NegotiaToR Matching with the ProjecToR-style
// scheduler.
func runTable6(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "Base", func(s *negotiator.Spec) {})
	variantRow(o, r, "ProjecToR", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.ProjecToRStyle
	})
	return r.Flush(w)
}
