package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
)

func init() {
	register(Experiment{ID: "fig15", Title: "Figure 15 (A.2.1): iterative matching vs 2x speedup", Run: runFig15})
	register(Experiment{ID: "table3", Title: "Table 3 (A.2.2): traffic-aware selective relay on thin-clos", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Table 4 (A.2.3): informative requests", Run: runTable4})
	register(Experiment{ID: "table5", Title: "Table 5 (A.2.4): stateful scheduling", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Table 6 (A.2.5): ProjecToR-style scheduling", Run: runTable6})
}

// variantRow runs one scheduler/spec variant across loads, reporting the
// paper's appendix-table format: 99p mice FCT (µs) / normalised goodput.
func variantRow(o Options, w io.Writer, name string, mutate func(*negotiator.Spec)) error {
	d := o.duration()
	fmt.Fprintf(w, "%-10s", name)
	for _, load := range o.loads() {
		spec := o.baseSpec()
		spec.Topology = negotiator.ParallelNetwork
		mutate(&spec)
		sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, " | %s/%5.1f%%", fmtUs(sum.Mice99p), 100*sum.GoodputNormalized)
	}
	fmt.Fprintln(w)
	return nil
}

func variantHeader(o Options, w io.Writer) {
	head := fmt.Sprintf("%-10s", "")
	for _, load := range o.loads() {
		head += fmt.Sprintf(" | %3.0f%% 99p(µs)/gp", load*100)
	}
	header(w, "%s", head)
}

// runFig15 compares the base non-iterative matching with 2x speedup
// against iterative variants (1/3/5 rounds) without speedup.
func runFig15(o Options, w io.Writer) error {
	variantHeader(o, w)
	if err := variantRow(o, w, "speedup2x", func(s *negotiator.Spec) {}); err != nil {
		return err
	}
	iters := []struct {
		name string
		sch  negotiator.Scheduler
	}{
		{"ITER_I", negotiator.Iterative1},
		{"ITER_III", negotiator.Iterative3},
		{"ITER_V", negotiator.Iterative5},
	}
	if o.Quick {
		iters = iters[2:]
	}
	for _, it := range iters {
		err := variantRow(o, w, it.name, func(s *negotiator.Spec) {
			s.Scheduler = it.sch
			// No speedup: uplink aggregate equals host aggregate.
			s.LinkRate = negotiator.Gbps(int64(s.HostRate) / int64(s.Ports))
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runTable3 compares base NegotiaToR with the traffic-aware selective
// relay extension on the thin-clos topology.
func runTable3(o Options, w io.Writer) error {
	variantHeader(o, w)
	if err := variantRow(o, w, "Base", func(s *negotiator.Spec) {
		s.Topology = negotiator.ThinClos
	}); err != nil {
		return err
	}
	return variantRow(o, w, "Two-Hop", func(s *negotiator.Spec) {
		s.Topology = negotiator.ThinClos
		s.SelectiveRelay = true
	})
}

// runTable4 compares binary requests with the informative-request
// variants.
func runTable4(o Options, w io.Writer) error {
	variantHeader(o, w)
	if err := variantRow(o, w, "Base", func(s *negotiator.Spec) {}); err != nil {
		return err
	}
	if err := variantRow(o, w, "Data-Size", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.DataSizePriority
	}); err != nil {
		return err
	}
	return variantRow(o, w, "HoL-Delay", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.HoLDelayPriority
	})
}

// runTable5 compares stateless and stateful scheduling.
func runTable5(o Options, w io.Writer) error {
	variantHeader(o, w)
	if err := variantRow(o, w, "Base", func(s *negotiator.Spec) {}); err != nil {
		return err
	}
	return variantRow(o, w, "Stateful", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.Stateful
	})
}

// runTable6 compares NegotiaToR Matching with the ProjecToR-style
// scheduler.
func runTable6(o Options, w io.Writer) error {
	variantHeader(o, w)
	if err := variantRow(o, w, "Base", func(s *negotiator.Spec) {}); err != nil {
		return err
	}
	return variantRow(o, w, "ProjecToR", func(s *negotiator.Spec) {
		s.Scheduler = negotiator.ProjecToRStyle
	})
}
