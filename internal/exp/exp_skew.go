package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
)

// The skewed/permutation traffic-matrix sweep (ROADMAP scenario-diversity
// item): the paper evaluates uniform random endpoints only, but real
// datacenter services concentrate traffic on a few hot services, and the
// adversarial extreme of that concentration is a permutation matrix. This
// sweep shows where each control plane's assumptions bend: destination
// hotspots serialise the hot ToRs' downlinks (scheduling cannot create
// receiver bandwidth), while the hybrid's mice-bandwidth cap and the
// oblivious baseline's doubled volume shift relative to NegotiaToR as
// skew grows.

func init() {
	register(Experiment{ID: "ext-skew", Title: "Extension: skewed and permutation traffic matrices (hotspot destinations, sparse permutation)", Run: runExtSkew})
}

// runExtSkew runs each control plane on the parallel network under
// increasingly skewed matrices at a fixed 75% offered load: uniform,
// half the traffic into N/8 hot ToRs, 80% into 2 hot ToRs, and the
// saturated sparse permutation (one elephant per ToR to its successor,
// sized to the run's offered load). One cell per (matrix, system).
func runExtSkew(o Options, w io.Writer) error {
	d := o.duration()
	const load = 0.75
	r := o.runner()
	r.Header("%-16s | %-11s | %-12s | %-12s | %-8s", "matrix", "system", "mice99p(ms)", "all 99p(ms)", "goodput")
	systems := []struct {
		name  string
		plane negotiator.ControlPlaneKind
	}{
		{"negotiator", negotiator.NegotiaToRPlane},
		{"oblivious", negotiator.ObliviousPlane},
		{"hybrid", negotiator.HybridPlane},
	}
	type matrix struct {
		name string
		gen  func(spec negotiator.Spec) (negotiator.Workload, error)
	}
	matrices := []matrix{
		{"uniform", func(spec negotiator.Spec) (negotiator.Workload, error) {
			return negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), nil
		}},
		{"hot-50%/N÷8", func(spec negotiator.Spec) (negotiator.Workload, error) {
			hot := spec.ToRs / 8
			if hot < 1 {
				hot = 1
			}
			return negotiator.HotspotWorkload(spec, negotiator.Hadoop, load, hot, 0.5, 7+o.Seed)
		}},
		{"hot-80%/2", func(spec negotiator.Spec) (negotiator.Workload, error) {
			return negotiator.HotspotWorkload(spec, negotiator.Hadoop, load, 2, 0.8, 7+o.Seed)
		}},
		{"permutation", func(spec negotiator.Spec) (negotiator.Workload, error) {
			// One elephant per ToR, sized so the matrix offers ~load of
			// each host link over the run.
			size := int64(load * spec.HostRate.BytesPerSecond() * d.Seconds())
			return negotiator.PermutationWorkload(spec, 0, size, 0)
		}},
	}
	if o.Quick {
		matrices = []matrix{matrices[0], matrices[2], matrices[3]}
	}
	for _, m := range matrices {
		for _, sys := range systems {
			m, sys := m, sys
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.ControlPlane = sys.plane
				wl, err := m.gen(spec)
				if err != nil {
					return err
				}
				sum, err := run(spec, wl, d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-16s | %-11s | %s | %s | %8.3f\n",
					m.name, sys.name, fmtFCT(sum.Mice99p), fmtFCT(sum.All99p), sum.GoodputNormalized)
				return nil
			})
		}
	}
	return r.Flush(w)
}
