package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
)

// Extension experiments: ablations beyond the paper's own evaluation,
// exercising design dimensions the paper discusses but does not measure.

func init() {
	register(Experiment{ID: "ext-arbiters", Title: "Extension: arbiter disciplines (RRM vs PIM vs iSLIP vs NegotiaToR Matching)", Run: runExtArbiters})
	register(Experiment{ID: "ext-threshold", Title: "Extension: request-threshold sensitivity (§3.4.1)", Run: runExtThreshold})
	register(Experiment{ID: "ext-buffers", Title: "Extension: peak receiver-side ToR-to-host buffering (§3.6.5)", Run: runExtBuffers})
}

// runExtArbiters compares NegotiaToR Matching against the classic crossbar
// schedulers the paper cites (§5): PIM (random) and iSLIP (desynchronising
// pointers), both transplanted to ToR matching with 3 iterations and no
// speedup, against the paper's 2x-speedup non-iterative design. The
// expected outcome mirrors §3.5: higher matching efficiency cannot offset
// the iteration-added scheduling delay in a long-RTT fabric.
func runExtArbiters(o Options, w io.Writer) error {
	r := o.runner()
	variantHeader(o, r)
	variantRow(o, r, "base-2x", func(s *negotiator.Spec) {})
	rows := []struct {
		name string
		sch  negotiator.Scheduler
	}{
		{"RRM-3", negotiator.Iterative3},
		{"PIM-3", negotiator.PIMStyle},
		{"iSLIP-3", negotiator.ISLIPStyle},
	}
	if o.Quick {
		rows = rows[2:]
	}
	for _, row := range rows {
		variantRow(o, r, row.name, func(s *negotiator.Spec) {
			s.Scheduler = row.sch
			s.LinkRate = negotiator.Gbps(int64(s.HostRate) / int64(s.Ports))
		})
	}
	return r.Flush(w)
}

// runExtBuffers measures the receiver-side buffering the 2x speedup
// induces (§3.6.5: data "may arrive synchronously at the ToR through
// multiple ports" faster than hosts drain): peak ToR-to-host backlog
// across loads, with and without speedup. Each (load, speedup) run is one
// cell emitting its row fragment.
func runExtBuffers(o Options, w io.Writer) error {
	d := o.duration()
	r := o.runner()
	r.Header("%-8s | %-22s | %-22s", "load(%)", "peak rx buffer 2x (KB)", "peak rx buffer 1x (KB)")
	for _, load := range o.loads() {
		r.Textf("%-8.0f", load*100)
		for _, speedup := range []bool{true, false} {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = negotiator.ParallelNetwork
				spec.TrackReceiverBuffers = true
				if !speedup {
					spec.LinkRate = negotiator.Gbps(int64(spec.HostRate) / int64(spec.Ports))
				}
				sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " | %22.1f", float64(sum.PeakReceiverBuffer)/1024)
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

// runExtThreshold sweeps the request threshold of §3.4.1 (the paper fixes
// it at 3 piggyback packets): lower thresholds over-schedule pairs whose
// queue will drain via piggybacking anyway; higher thresholds delay
// elephants' first scheduled epoch. One cell per threshold.
func runExtThreshold(o Options, w io.Writer) error {
	d := o.duration()
	thresholds := []int{1, 2, 3, 5, 8}
	if o.Quick {
		thresholds = []int{1, 3, 8}
	}
	r := o.runner()
	r.Header("%-10s | %-12s | %-12s | %-8s", "threshold", "99p FCT (ms)", "mean FCT(µs)", "goodput")
	for _, thr := range thresholds {
		r.Cell(func(w io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = negotiator.ParallelNetwork
			spec.RequestThresholdPkts = thr
			sum, err := run(spec, negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 7+o.Seed), d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10d | %s | %12.1f | %8.3f\n",
				thr, fmtFCT(sum.Mice99p), sum.MiceMean.Micros(), sum.GoodputNormalized)
			return nil
		})
	}
	return r.Flush(w)
}
