package exp

import (
	"fmt"
	"io"

	negotiator "negotiator"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
)

func init() {
	register(Experiment{ID: "fig9", Title: "Figure 9: mice FCT and goodput at various loads (main result)", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Figure 10: bandwidth usage across link failure and recovery", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Figure 11: FCT and goodput at various loads with no speedup", Run: runFig11})
}

// mainResultSystems is the system matrix of Figures 9/11/13: NegotiaToR on
// both topologies and the traffic-oblivious baseline on thin-clos, each
// with and without priority queues.
type system struct {
	name string
	top  negotiator.Topology
	obl  bool
	pq   bool
}

func mainResultSystems() []system {
	return []system{
		{"negotiator/parallel", negotiator.ParallelNetwork, false, true},
		{"negotiator/parallel w/o PQ", negotiator.ParallelNetwork, false, false},
		{"negotiator/thin-clos", negotiator.ThinClos, false, true},
		{"negotiator/thin-clos w/o PQ", negotiator.ThinClos, false, false},
		{"oblivious/thin-clos", negotiator.ThinClos, true, true},
		{"oblivious/thin-clos w/o PQ", negotiator.ThinClos, true, false},
	}
}

// runLoadSweep renders the FCT/goodput-vs-load matrix shared by Figures 9,
// 11 and 13(b)/(c). Every (system, load) point is an independent cell.
func runLoadSweep(o Options, w io.Writer, trace negotiator.Trace, mutate func(*negotiator.Spec)) error {
	d := o.duration()
	systems := mainResultSystems()
	if o.Quick {
		systems = []system{systems[0], systems[2], systems[4]}
	}
	r := o.runner()
	for _, sys := range systems {
		r.Textf("%s:\n", sys.name)
		r.Header("%-8s | %-12s | %-8s", "load(%)", "99p FCT (ms)", "goodput")
		for _, load := range o.loads() {
			r.Cell(func(w io.Writer) error {
				spec := o.baseSpec()
				spec.Topology = sys.top
				spec.Oblivious = sys.obl
				spec.PriorityQueues = sys.pq
				if mutate != nil {
					mutate(&spec)
				}
				sum, err := run(spec, negotiator.PoissonWorkload(spec, trace, load, 7+o.Seed), d)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-8.0f | %s | %8.3f\n", load*100, fmtFCT(sum.Mice99p), sum.GoodputNormalized)
				return nil
			})
		}
		r.Textf("\n")
	}
	return r.Flush(w)
}

func runFig9(o Options, w io.Writer) error {
	return runLoadSweep(o, w, negotiator.Hadoop, nil)
}

// runFig11 removes the 2x speedup: uplink aggregate equals the host
// aggregate (50 Gbps per port at paper scale).
func runFig11(o Options, w io.Writer) error {
	return runLoadSweep(o, w, negotiator.Hadoop, func(s *negotiator.Spec) {
		s.LinkRate = sim.Rate(int64(s.HostRate) / int64(s.Ports))
	})
}

// runFig10 reproduces Figure 10: simultaneous link failures at ratios
// 2-10%, recovered mid-run; the table reports BWpost-failure/BWpre-failure
// and BWpre-recovery/BWpost-recovery under a saturating workload on the
// parallel network. Each failure ratio is one cell.
func runFig10(o Options, w io.Writer) error {
	ratios := []float64{0.02, 0.04, 0.06, 0.08, 0.10}
	if o.Quick {
		ratios = []float64{0.02, 0.10}
	}
	r := o.runner()
	r.Header("%-12s | %-22s | %-22s", "failure(%)",
		"BWpost_fail/BWpre_fail", "BWpre_recov/BWpost_recov")
	for _, ratio := range ratios {
		r.Cell(func(w io.Writer) error {
			spec := o.baseSpec()
			spec.Topology = negotiator.ParallelNetwork
			epoch := negotiatorEpoch(spec)
			// Timeline: warm up, fail, hold, recover, hold.
			failAt := sim.Time(400 * epoch)
			recoverAt := sim.Time(800 * epoch)
			endAt := sim.Duration(1200 * epoch)
			series := metrics.NewTimeSeries(10 * epoch)
			spec.OnDeliver = func(dst int, at sim.Time, n int64) { series.Add(at, n) }
			spec.Failures = &negotiator.FailurePlan{
				Fraction: ratio,
				FailAt:   failAt, RecoverAt: recoverAt,
				Seed: 11 + o.Seed,
			}
			fab, err := spec.Build()
			if err != nil {
				return err
			}
			// Saturating uniform traffic so bandwidth usage tracks capacity.
			fab.SetWorkload(negotiator.FixedSizeWorkload(spec, 1<<20, 1.2, 13+o.Seed))
			fab.Run(endAt)
			// Windows avoid the detection transients.
			preFail := series.MeanGbpsBetween(sim.Time(200*epoch), failAt)
			postFail := series.MeanGbpsBetween(sim.Time(500*epoch), recoverAt)
			postRecov := series.MeanGbpsBetween(sim.Time(1000*epoch), sim.Time(endAt))
			fmt.Fprintf(w, "%-12.0f | %22.3f | %22.3f\n",
				ratio*100, postFail/preFail, preFail/postRecov)
			return nil
		})
	}
	return r.Flush(w)
}

// negotiatorEpoch computes the spec's epoch length without building a
// fabric.
func negotiatorEpoch(spec negotiator.Spec) sim.Duration {
	fab, err := spec.Build()
	if err != nil {
		return 3660
	}
	return fab.Summary().EpochLen
}
