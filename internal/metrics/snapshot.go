// Checkpoint accessors: the accumulators keep their fields private (the
// engines may only feed them through Record/Observe/Deliver), so the
// snapshot subsystem gets explicit state getters and setters here. Every
// derived statistic either sorts first (FCTStats) or is a commutative sum
// (Goodput, Ratio), which is what lets a restore concentrate merged
// samples into a single shard without changing any queried result.
package metrics

import "negotiator/internal/sim"

// Samples exposes the raw recorded FCT samples in recording order.
func (s *FCTStats) Samples() (all, mice []sim.Duration) { return s.all, s.mice }

// RestoreSamples replaces the recorded samples. The sort cache resets, so
// percentile and CDF queries re-sort — restored sample order is
// irrelevant to every derived statistic.
func (s *FCTStats) RestoreSamples(all, mice []sim.Duration) {
	s.all = append(s.all[:0], all...)
	s.mice = append(s.mice[:0], mice...)
	s.sorted = false
}

// PerToR exposes the per-destination delivered byte counts.
func (g *Goodput) PerToR() []int64 { return g.perToR }

// RestorePerToR replaces the per-destination byte counts and recomputes
// the total. The length must match the accumulator's ToR count.
func (g *Goodput) RestorePerToR(perToR []int64) {
	copy(g.perToR, perToR)
	g.total = 0
	for _, b := range g.perToR {
		g.total += b
	}
}

// State exposes a drain buffer's simulation-time state (the drain rate is
// configuration, not state).
func (b *DrainBuffer) State() (last sim.Time, backlog, peak int64) {
	return b.last, b.backlog, b.peak
}

// RestoreState sets a drain buffer's simulation-time state.
func (b *DrainBuffer) RestoreState(last sim.Time, backlog, peak int64) {
	b.last, b.backlog, b.peak = last, backlog, peak
}

// Counts exposes the raw per-observation numerators and denominators.
func (r *Ratio) Counts() (num, den []int64) { return r.num, r.den }

// RestoreCounts replaces the observation history.
func (r *Ratio) RestoreCounts(num, den []int64) {
	r.num = append(r.num[:0], num...)
	r.den = append(r.den[:0], den...)
}
