// Package metrics provides the measurement primitives used by the
// evaluation harness: flow-completion-time statistics with percentiles and
// CDFs, goodput accounting, bandwidth time series, and per-epoch ratio
// tracking (e.g. NegotiaToR Matching's accept/grant match ratio).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"negotiator/internal/sim"
)

// MiceFlowBytes is the paper's mice-flow threshold: flows smaller than
// 10 KB are mice (§4.1).
const MiceFlowBytes = 10 << 10

// FCTStats accumulates flow completion times, classified into mice and
// all flows. The zero value is ready to use.
//
// Every derived statistic has a defined zero result on an empty sample
// set — P, MiceP, Mean, MiceMean and Max return 0, MiceCDF returns nil —
// so per-shard instances that happened to record nothing (a legitimate
// state under sharded engine execution) are safe to query or merge.
type FCTStats struct {
	all    []sim.Duration
	mice   []sim.Duration
	sorted bool
}

// Record adds one completed flow.
func (s *FCTStats) Record(size int64, fct sim.Duration) {
	s.sorted = false
	s.all = append(s.all, fct)
	if size < MiceFlowBytes {
		s.mice = append(s.mice, fct)
	}
}

// Merge folds another accumulator's samples into s. Every derived
// statistic sorts first, so the merge is order-independent: merging
// per-shard accumulators in any order yields the same percentiles, means
// and CDFs as recording all samples into one instance. o is not modified.
func (s *FCTStats) Merge(o *FCTStats) {
	if o == nil || len(o.all) == 0 {
		return
	}
	s.sorted = false
	s.all = append(s.all, o.all...)
	s.mice = append(s.mice, o.mice...)
}

// Count returns the number of completed flows (all classes).
func (s *FCTStats) Count() int { return len(s.all) }

// MiceCount returns the number of completed mice flows.
func (s *FCTStats) MiceCount() int { return len(s.mice) }

func (s *FCTStats) sort() {
	if s.sorted {
		return
	}
	sort.Slice(s.all, func(i, j int) bool { return s.all[i] < s.all[j] })
	sort.Slice(s.mice, func(i, j int) bool { return s.mice[i] < s.mice[j] })
	s.sorted = true
}

func percentile(xs []sim.Duration, p float64) sim.Duration {
	if len(xs) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

func mean(xs []sim.Duration) sim.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += int64(x)
	}
	return sim.Duration(sum / int64(len(xs)))
}

// P returns the p-th percentile FCT over all flows.
func (s *FCTStats) P(p float64) sim.Duration { s.sort(); return percentile(s.all, p) }

// MiceP returns the p-th percentile FCT over mice flows.
func (s *FCTStats) MiceP(p float64) sim.Duration { s.sort(); return percentile(s.mice, p) }

// Mean returns the mean FCT over all flows.
func (s *FCTStats) Mean() sim.Duration { return mean(s.all) }

// MiceMean returns the mean FCT over mice flows.
func (s *FCTStats) MiceMean() sim.Duration { return mean(s.mice) }

// Max returns the largest recorded FCT.
func (s *FCTStats) Max() sim.Duration { s.sort(); return percentile(s.all, 100) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value sim.Duration
	Frac  float64 // fraction of samples <= Value
}

// MiceCDF returns an empirical CDF of mice-flow FCTs sampled at up to
// points evenly spaced quantiles (paper Figure 6).
func (s *FCTStats) MiceCDF(points int) []CDFPoint {
	s.sort()
	return cdf(s.mice, points)
}

func cdf(xs []sim.Duration, points int) []CDFPoint {
	if len(xs) == 0 || points < 2 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	for k := 1; k <= points; k++ {
		idx := k*len(xs)/points - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: xs[idx], Frac: float64(idx+1) / float64(len(xs))})
	}
	return out
}

// Goodput accumulates payload bytes delivered to their final-destination
// ToRs.
type Goodput struct {
	perToR []int64
	total  int64
}

// NewGoodput returns a goodput accumulator for n ToRs.
func NewGoodput(n int) *Goodput { return &Goodput{perToR: make([]int64, n)} }

// Deliver records n payload bytes arriving at their destination dst.
func (g *Goodput) Deliver(dst int, n int64) {
	g.perToR[dst] += n
	g.total += n
}

// Merge adds another accumulator's per-ToR byte counts into g — a
// commutative sum, so merging per-shard goodput accumulators in any order
// equals recording every delivery into one instance. Sizes must match.
func (g *Goodput) Merge(o *Goodput) {
	if o == nil {
		return
	}
	if len(o.perToR) != len(g.perToR) {
		panic(fmt.Sprintf("metrics: merging goodput over %d ToRs into %d", len(o.perToR), len(g.perToR)))
	}
	for i, b := range o.perToR {
		g.perToR[i] += b
	}
	g.total += o.total
}

// TotalBytes returns all delivered payload bytes.
func (g *Goodput) TotalBytes() int64 { return g.total }

// Normalized returns goodput normalised to the per-ToR host aggregate
// bandwidth (the paper's normalisation, §4.1): average over ToRs of
// delivered-rate / hostRate.
func (g *Goodput) Normalized(d sim.Duration, hostRate sim.Rate) float64 {
	if d <= 0 || len(g.perToR) == 0 {
		return 0
	}
	capacity := hostRate.BytesPerSecond() * d.Seconds() * float64(len(g.perToR))
	return float64(g.total) / capacity
}

// PerToRGbps returns the average delivered Gbps of one ToR.
func (g *Goodput) PerToRGbps(d sim.Duration) float64 {
	if d <= 0 || len(g.perToR) == 0 {
		return 0
	}
	bytesPerToR := float64(g.total) / float64(len(g.perToR))
	return bytesPerToR * 8 / d.Seconds() / 1e9
}

// TimeSeries buckets byte counts over simulated time, producing bandwidth
// traces like the paper's receiver-bandwidth micro-observations
// (Figures 17-19).
type TimeSeries struct {
	bucket  sim.Duration
	buckets []int64
}

// NewTimeSeries returns a time series with the given bucket width.
func NewTimeSeries(bucket sim.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("metrics: non-positive bucket")
	}
	return &TimeSeries{bucket: bucket}
}

// Add records n bytes at time t.
func (ts *TimeSeries) Add(t sim.Time, n int64) {
	if t < 0 {
		return
	}
	idx := int(int64(t) / int64(ts.bucket))
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += n
}

// BucketWidth returns the bucket duration.
func (ts *TimeSeries) BucketWidth() sim.Duration { return ts.bucket }

// Gbps returns the series as bandwidth per bucket in Gbps.
func (ts *TimeSeries) Gbps() []float64 {
	out := make([]float64, len(ts.buckets))
	secs := ts.bucket.Seconds()
	for i, b := range ts.buckets {
		out[i] = float64(b) * 8 / secs / 1e9
	}
	return out
}

// MeanGbpsBetween returns the mean bandwidth between the two times (Gbps).
func (ts *TimeSeries) MeanGbpsBetween(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	lo, hi := int(int64(from)/int64(ts.bucket)), int(int64(to)/int64(ts.bucket))
	var sum int64
	for i := lo; i <= hi && i < len(ts.buckets); i++ {
		if i < 0 {
			continue
		}
		sum += ts.buckets[i]
	}
	return float64(sum) * 8 / to.Sub(from).Seconds() / 1e9
}

// DrainBuffer models a queue fed by discrete arrival events and drained at
// a constant rate — the receiver-side ToR-to-host buffer of paper §3.6.5,
// where the 2x optical speedup can deliver bursts faster than the host
// aggregate drains them. It reports the peak backlog, the figure a switch
// designer sizes SRAM against.
type DrainBuffer struct {
	rate    sim.Rate
	last    sim.Time
	backlog int64
	peak    int64
}

// NewDrainBuffer returns a buffer draining at the given rate.
func NewDrainBuffer(rate sim.Rate) *DrainBuffer {
	return &DrainBuffer{rate: rate}
}

// Add drains the buffer up to time at, then adds n arriving bytes.
// Slightly out-of-order timestamps are tolerated (arrivals from different
// ports of one epoch jitter by less than an epoch): draining only moves
// forward, so the peak estimate errs conservatively high by at most one
// epoch of arrivals.
func (b *DrainBuffer) Add(at sim.Time, n int64) {
	if at > b.last {
		b.backlog -= b.rate.BytesIn(at.Sub(b.last))
		if b.backlog < 0 {
			b.backlog = 0
		}
		b.last = at
	}
	b.backlog += n
	if b.backlog > b.peak {
		b.peak = b.backlog
	}
}

// Backlog returns the bytes queued as of the last Add.
func (b *DrainBuffer) Backlog() int64 { return b.backlog }

// Peak returns the largest backlog observed.
func (b *DrainBuffer) Peak() int64 { return b.peak }

// Ratio tracks a per-epoch numerator/denominator ratio, such as the
// accept/grant match ratio (paper Appendix A.1).
type Ratio struct {
	num, den []int64
}

// Observe appends one epoch's counts.
func (r *Ratio) Observe(num, den int64) {
	r.num = append(r.num, num)
	r.den = append(r.den, den)
}

// Mean returns the aggregate ratio (sum of numerators over sum of
// denominators), ignoring epochs with zero denominator.
func (r *Ratio) Mean() float64 {
	var n, d int64
	for i := range r.num {
		n += r.num[i]
		d += r.den[i]
	}
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Series returns the per-epoch ratios (NaN-free: zero-denominator epochs
// are reported as 0).
func (r *Ratio) Series() []float64 {
	out := make([]float64, len(r.num))
	for i := range r.num {
		if r.den[i] != 0 {
			out[i] = float64(r.num[i]) / float64(r.den[i])
		}
	}
	return out
}

// Len returns the number of observations.
func (r *Ratio) Len() int { return len(r.num) }

// FormatDuration renders a duration for experiment tables, choosing the
// same units the paper uses (µs for FCT tables, ms for FCT figures).
func FormatDuration(d sim.Duration) string { return d.String() }

// EpochsOf expresses a duration in units of the given epoch length, the
// unit used by the paper's Table 2.
func EpochsOf(d, epoch sim.Duration) float64 {
	if epoch <= 0 {
		return 0
	}
	return float64(d) / float64(epoch)
}

// String summarises the stats for debugging.
func (s *FCTStats) String() string {
	return fmt.Sprintf("flows=%d mice=%d mice99p=%v miceAvg=%v",
		s.Count(), s.MiceCount(), s.MiceP(99), s.MiceMean())
}
