package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"negotiator/internal/sim"
)

// TestEmptyStatsDefinedZeros pins the full empty-set contract: per-shard
// accumulators can legitimately hold no samples under sharded engine
// execution, and every derived statistic must return its defined zero.
func TestEmptyStatsDefinedZeros(t *testing.T) {
	var s FCTStats
	if s.Count() != 0 || s.MiceCount() != 0 {
		t.Error("empty stats report non-zero counts")
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if s.P(p) != 0 {
			t.Errorf("P(%v) = %v on empty stats, want 0", p, s.P(p))
		}
		if s.MiceP(p) != 0 {
			t.Errorf("MiceP(%v) = %v on empty stats, want 0", p, s.MiceP(p))
		}
	}
	if s.Mean() != 0 || s.MiceMean() != 0 || s.Max() != 0 {
		t.Error("empty means/max should be 0")
	}
	if s.MiceCDF(10) != nil {
		t.Error("empty MiceCDF should be nil")
	}
}

// TestFCTMergeEqualsBulk: sharding samples across accumulators and merging
// (in any order) must reproduce the single-accumulator statistics exactly.
func TestFCTMergeEqualsBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var bulk FCTStats
	shards := make([]FCTStats, 4)
	for i := 0; i < 500; i++ {
		size := int64(rng.Intn(100 << 10)) // mix of mice and elephants
		fct := sim.Duration(rng.Intn(1e6))
		bulk.Record(size, fct)
		shards[rng.Intn(len(shards))].Record(size, fct)
	}
	// Merge in a scrambled order, including an empty extra shard.
	var merged FCTStats
	var empty FCTStats
	merged.Merge(&shards[2])
	merged.Merge(&empty)
	merged.Merge(&shards[0])
	merged.Merge(&shards[3])
	merged.Merge(&shards[1])
	merged.Merge(nil)

	if merged.Count() != bulk.Count() || merged.MiceCount() != bulk.MiceCount() {
		t.Fatalf("counts diverge: %d/%d vs %d/%d",
			merged.Count(), merged.MiceCount(), bulk.Count(), bulk.MiceCount())
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 100} {
		if merged.P(p) != bulk.P(p) {
			t.Errorf("P(%v): merged %v, bulk %v", p, merged.P(p), bulk.P(p))
		}
		if merged.MiceP(p) != bulk.MiceP(p) {
			t.Errorf("MiceP(%v): merged %v, bulk %v", p, merged.MiceP(p), bulk.MiceP(p))
		}
	}
	if merged.Mean() != bulk.Mean() || merged.MiceMean() != bulk.MiceMean() {
		t.Error("means diverge after merge")
	}
	if !reflect.DeepEqual(merged.MiceCDF(20), bulk.MiceCDF(20)) {
		t.Error("MiceCDF diverges after merge")
	}
}

// TestMergeAfterSortResorts: merging into a sorted accumulator must
// invalidate the sort.
func TestMergeAfterSortResorts(t *testing.T) {
	var a, b FCTStats
	a.Record(1, 50)
	_ = a.P(99) // sorts
	b.Record(1, 10)
	a.Merge(&b)
	if got := a.P(50); got != 10 {
		t.Errorf("P(50) after merge = %v, want 10", got)
	}
}

// TestGoodputMergeEqualsBulk: per-shard goodput merge is a commutative
// per-ToR sum.
func TestGoodputMergeEqualsBulk(t *testing.T) {
	bulk := NewGoodput(8)
	shards := []*Goodput{NewGoodput(8), NewGoodput(8), NewGoodput(8)}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		dst, n := rng.Intn(8), int64(rng.Intn(5000))
		bulk.Deliver(dst, n)
		shards[rng.Intn(3)].Deliver(dst, n)
	}
	merged := NewGoodput(8)
	merged.Merge(shards[1])
	merged.Merge(shards[0])
	merged.Merge(shards[2])
	merged.Merge(nil)
	if merged.TotalBytes() != bulk.TotalBytes() {
		t.Fatalf("total %d vs %d", merged.TotalBytes(), bulk.TotalBytes())
	}
	if got, want := merged.Normalized(1000, sim.Gbps(100)), bulk.Normalized(1000, sim.Gbps(100)); got != want {
		t.Errorf("normalized %v vs %v", got, want)
	}
	if got, want := merged.PerToRGbps(1000), bulk.PerToRGbps(1000); got != want {
		t.Errorf("per-ToR %v vs %v", got, want)
	}
}

func TestGoodputMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size-mismatched merge did not panic")
		}
	}()
	NewGoodput(4).Merge(NewGoodput(8))
}
