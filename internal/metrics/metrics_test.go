package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func TestFCTPercentiles(t *testing.T) {
	var s FCTStats
	for i := 1; i <= 100; i++ {
		s.Record(100, sim.Duration(i)) // 100 mice flows, FCT 1..100
	}
	if got := s.MiceP(99); got != 99 {
		t.Errorf("99p = %d, want 99", got)
	}
	if got := s.MiceP(50); got != 50 {
		t.Errorf("50p = %d, want 50", got)
	}
	if got := s.MiceMean(); got != 50 {
		t.Errorf("mean = %d, want 50 (floor of 50.5)", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("max = %d, want 100", got)
	}
}

func TestFCTClassification(t *testing.T) {
	var s FCTStats
	s.Record(MiceFlowBytes-1, 10) // mouse
	s.Record(MiceFlowBytes, 1000) // not a mouse (paper: flows < 10KB)
	s.Record(1<<20, 2000)         // elephant
	if s.Count() != 3 || s.MiceCount() != 1 {
		t.Errorf("count=%d mice=%d, want 3/1", s.Count(), s.MiceCount())
	}
	if got := s.MiceP(99); got != 10 {
		t.Errorf("mice 99p = %d, want 10", got)
	}
	if got := s.Mean(); got != (10+1000+2000)/3 {
		t.Errorf("mean = %d", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var s FCTStats
	if s.P(99) != 0 || s.MiceMean() != 0 || s.Max() != 0 {
		t.Error("empty stats should report zeros")
	}
	if s.MiceCDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestRecordAfterSortResorts(t *testing.T) {
	var s FCTStats
	s.Record(1, 50)
	_ = s.P(99)
	s.Record(1, 10) // must re-sort
	if got := s.P(50); got != 10 {
		t.Errorf("P(50) after late record = %d, want 10", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var s FCTStats
	r := []sim.Duration{5, 3, 8, 1, 9, 2, 7, 4, 6, 10}
	for _, d := range r {
		s.Record(100, d)
	}
	pts := s.MiceCDF(5)
	if len(pts) != 5 {
		t.Fatalf("CDF points = %d, want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
	}
	if last := pts[len(pts)-1]; last.Frac != 1 || last.Value != 10 {
		t.Errorf("CDF should end at (max,1): %+v", last)
	}
}

func TestGoodputNormalized(t *testing.T) {
	g := NewGoodput(4)
	// Each of 4 ToRs receives 50 GB over 1 second at 400 Gbps host bw:
	// rate = 400Gbps per ToR => normalized 1.0.
	for i := 0; i < 4; i++ {
		g.Deliver(i, 50_000_000_000)
	}
	got := g.Normalized(sim.Second, sim.Gbps(400))
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("normalized = %v, want 1.0", got)
	}
	if tot := g.TotalBytes(); tot != 200_000_000_000 {
		t.Errorf("total = %d", tot)
	}
	if got := g.PerToRGbps(sim.Second); math.Abs(got-400) > 1e-6 {
		t.Errorf("per-ToR Gbps = %v, want 400", got)
	}
}

func TestGoodputEdgeCases(t *testing.T) {
	g := NewGoodput(2)
	if g.Normalized(0, sim.Gbps(400)) != 0 {
		t.Error("zero duration should give 0")
	}
	if g.PerToRGbps(0) != 0 {
		t.Error("zero duration should give 0")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(1000) // 1µs buckets
	ts.Add(0, 125)            // 125 B in 1µs = 1 Gbps
	ts.Add(500, 125)
	ts.Add(1500, 250)
	g := ts.Gbps()
	if len(g) != 2 {
		t.Fatalf("buckets = %d, want 2", len(g))
	}
	if math.Abs(g[0]-2) > 1e-9 || math.Abs(g[1]-2) > 1e-9 {
		t.Errorf("series = %v, want [2 2]", g)
	}
	if got := ts.MeanGbpsBetween(0, 2000); math.Abs(got-2) > 1e-9 {
		t.Errorf("mean between = %v, want 2", got)
	}
	ts.Add(-5, 1000) // ignored
	if ts.Gbps()[0] != g[0] {
		t.Error("negative time should be ignored")
	}
}

func TestTimeSeriesPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bucket should panic")
		}
	}()
	NewTimeSeries(0)
}

func TestRatio(t *testing.T) {
	var r Ratio
	r.Observe(63, 100)
	r.Observe(65, 100)
	r.Observe(0, 0) // idle epoch
	if got := r.Mean(); math.Abs(got-0.64) > 1e-9 {
		t.Errorf("mean ratio = %v, want 0.64", got)
	}
	s := r.Series()
	if len(s) != 3 || s[2] != 0 {
		t.Errorf("series = %v", s)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestEpochsOf(t *testing.T) {
	if got := EpochsOf(7320, 3660); got != 2.0 {
		t.Errorf("EpochsOf = %v, want 2.0", got)
	}
	if EpochsOf(100, 0) != 0 {
		t.Error("zero epoch should give 0")
	}
}

func TestPercentileProperty(t *testing.T) {
	// For any sample set, P(100) is the max and P(p) is a member of the set.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s FCTStats
		var max sim.Duration
		for _, v := range raw {
			d := sim.Duration(v)
			s.Record(1, d)
			if d > max {
				max = d
			}
		}
		if s.MiceP(100) != max {
			return false
		}
		p50 := s.MiceP(50)
		found := false
		for _, v := range raw {
			if sim.Duration(v) == p50 {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDrainBuffer(t *testing.T) {
	// 400 Gbps drain = 50 B/ns.
	b := NewDrainBuffer(sim.Gbps(400))
	b.Add(0, 1000)
	if b.Backlog() != 1000 || b.Peak() != 1000 {
		t.Fatalf("backlog=%d peak=%d", b.Backlog(), b.Peak())
	}
	// 10ns later, 500B drained.
	b.Add(10, 0)
	if b.Backlog() != 500 {
		t.Fatalf("backlog after drain = %d, want 500", b.Backlog())
	}
	// Long idle: floors at zero.
	b.Add(1000, 200)
	if b.Backlog() != 200 {
		t.Fatalf("backlog = %d, want 200", b.Backlog())
	}
	if b.Peak() != 1000 {
		t.Fatalf("peak = %d, want 1000", b.Peak())
	}
	// Out-of-order timestamp: no backwards drain, bytes still counted.
	b.Add(500, 100)
	if b.Backlog() != 300 {
		t.Fatalf("stale add: backlog = %d, want 300", b.Backlog())
	}
}

func TestDrainBufferBurstPeak(t *testing.T) {
	// A 2x-speedup burst: 100 B/ns arrivals against a 50 B/ns drain for
	// 1000ns leaves a 50KB peak.
	b := NewDrainBuffer(sim.Gbps(400))
	for ts := sim.Time(0); ts < 1000; ts += 10 {
		b.Add(ts, 1000) // 100 B/ns
	}
	want := int64(1000*100 - 990*50)
	if diff := b.Peak() - want; diff < -1000 || diff > 1000 {
		t.Fatalf("peak = %d, want ~%d", b.Peak(), want)
	}
}
