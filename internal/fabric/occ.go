package fabric

import "math/bits"

// OccSet is a destination-occupancy index: a bitset over [0, n) with
// deterministic ascending iteration by word-scan find-first-set (the same
// structure as match.BitArbiter's candidate mask). Engines iterate it to
// make per-round sweeps O(active destinations) instead of O(N):
//
//	for j := occ.Next(-1); j >= 0; j = occ.Next(j) { ... }
//
// Set/Clear are idempotent, so the choke points that maintain the index
// never need to read queue state twice.
type OccSet struct {
	words []uint64
}

func newOccSet(n int) OccSet {
	return OccSet{words: make([]uint64, (n+63)>>6)}
}

// Set marks destination i occupied.
func (s *OccSet) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear marks destination i empty.
func (s *OccSet) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether destination i is marked occupied.
func (s *OccSet) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Next returns the smallest member strictly greater than after, or -1.
// Next(-1) starts an ascending scan.
func (s *OccSet) Next(after int) int {
	i := after + 1
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(s.words) {
		return -1
	}
	mask := s.words[w] &^ (1<<(uint(i)&63) - 1)
	for {
		if mask != 0 {
			return w<<6 + bits.TrailingZeros64(mask)
		}
		w++
		if w >= len(s.words) {
			return -1
		}
		mask = s.words[w]
	}
}

// nextUnion returns the smallest index strictly greater than after that is
// a member of a or b (either may be empty/unmaterialized), scanning the OR
// of the two masks one word at a time. Materialized sets of one node share
// one size, so a single bound covers the joint scan.
func nextUnion(a, b *OccSet, after int) int {
	if b == nil || b.words == nil {
		return a.Next(after)
	}
	if a.words == nil {
		// Relay-only node: the direct set never materialized, but queued
		// relay data must still be visited (lazy == eager).
		return b.Next(after)
	}
	i := after + 1
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(a.words) {
		return -1
	}
	mask := (a.words[w] | b.words[w]) &^ (1<<(uint(i)&63) - 1)
	for {
		if mask != 0 {
			return w<<6 + bits.TrailingZeros64(mask)
		}
		w++
		if w >= len(a.words) {
			return -1
		}
		mask = a.words[w] | b.words[w]
	}
}
