package fabric

import "math/bits"

// OccSet is a destination-occupancy index: a two-level bitset over [0, n)
// with deterministic ascending iteration by word-scan find-first-set. The
// bottom level is the member bitmask; the summary level has one bit per
// bottom word (bit w set iff words[w] != 0), so Next skips runs of empty
// words 64 at a time — iteration and termination cost O(members + N/4096)
// instead of the flat bitset's O(N/64), which at 65,536 destinations was
// itself a width-proportional per-round term. Engines iterate it to make
// per-round sweeps O(active destinations):
//
//	for j := occ.Next(-1); j >= 0; j = occ.Next(j) { ... }
//
// Set/Clear are idempotent, so the choke points that maintain the index
// never need to read queue state twice.
type OccSet struct {
	words []uint64
	sum   []uint64 // sum[w>>6] bit (w&63) set iff words[w] != 0
}

func newOccSet(n int) OccSet {
	nw := (n + 63) >> 6
	return OccSet{words: make([]uint64, nw), sum: make([]uint64, (nw+63)>>6)}
}

// NewOccSet returns an empty occupancy set over [0, n) for engine-side
// indexes (mailbox-pending and matched sets) that follow the same
// O(members) iteration discipline as the fabric's own shard sets.
func NewOccSet(n int) OccSet { return newOccSet(n) }

// Set marks destination i occupied.
func (s *OccSet) Set(i int) {
	w := i >> 6
	s.words[w] |= 1 << (uint(i) & 63)
	s.sum[w>>6] |= 1 << (uint(w) & 63)
}

// Clear marks destination i empty.
func (s *OccSet) Clear(i int) {
	w := i >> 6
	s.words[w] &^= 1 << (uint(i) & 63)
	if s.words[w] == 0 {
		s.sum[w>>6] &^= 1 << (uint(w) & 63)
	}
}

// Has reports whether destination i is marked occupied.
func (s *OccSet) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// nextSumWord returns the smallest word index >= from whose summary bit is
// set in sa (OR sb when non-nil), or -1.
func nextSumWord(sa, sb []uint64, from int) int {
	w := from >> 6
	if w >= len(sa) {
		return -1
	}
	m := sa[w]
	if sb != nil {
		m |= sb[w]
	}
	m &^= 1<<(uint(from)&63) - 1
	for {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
		w++
		if w >= len(sa) {
			return -1
		}
		m = sa[w]
		if sb != nil {
			m |= sb[w]
		}
	}
}

// Next returns the smallest member strictly greater than after, or -1.
// Next(-1) starts an ascending scan.
func (s *OccSet) Next(after int) int {
	i := after + 1
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(s.words) {
		return -1
	}
	if mask := s.words[w] &^ (1<<(uint(i)&63) - 1); mask != 0 {
		return w<<6 + bits.TrailingZeros64(mask)
	}
	w = nextSumWord(s.sum, nil, w+1)
	if w < 0 {
		return -1
	}
	return w<<6 + bits.TrailingZeros64(s.words[w])
}

// NextUnion returns the smallest index strictly greater than after that
// is a member of s or b — ascending joint iteration of two sets of one
// size, at the same O(members + N/4096) cost as Next.
func (s *OccSet) NextUnion(b *OccSet, after int) int { return nextUnion(s, b, after) }

// Count returns the number of members: a popcount over the member words,
// O(n/64). Slot loops use it to pick between a dense active-node walk and
// an inverted backlogged-destination walk; the answer only steers that
// cost heuristic, never the results (both walks are byte-identical).
func (s *OccSet) Count() int {
	var c int
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// relayDstIndex is a shard-level relay-DESTINATION index: which
// destinations ANY of the shard's nodes holds relay backlog for,
// refcounted per destination so the last node to drain one clears its
// bit. The node choke points (PushRelay/DrainRelay) maintain it on the
// same queue-empty transitions that flip the per-node RelayOcc sets.
//
// It exists to invert the relay-drain walk: under VLB spray every
// intermediate holds relay bytes, so iterating relay-ACTIVE NODES is
// O(N·S) per slot no matter how sparse the traffic — but the backlogged
// destinations are only the active flows' targets, and the predefined
// schedules are per-(port, slot) permutations, so each (destination,
// port) pair maps back to exactly one candidate source via
// topo.PredefinedSource. Allocation is lazy on the first relay push, so
// relay-free planes never pay for it.
type relayDstIndex struct {
	refs  []int32 // per destination: shard nodes holding relay backlog for it
	occ   OccSet  // destinations with refs > 0
	count int     // members of occ
}

func (ix *relayDstIndex) inc(n, dst int) {
	if ix.refs == nil {
		ix.refs = make([]int32, n)
		ix.occ = newOccSet(n)
	}
	if ix.refs[dst]++; ix.refs[dst] == 1 {
		ix.occ.Set(dst)
		ix.count++
	}
}

func (ix *relayDstIndex) dec(dst int) {
	if ix.refs[dst]--; ix.refs[dst] == 0 {
		ix.occ.Clear(dst)
		ix.count--
	}
}

// nextUnion returns the smallest index strictly greater than after that is
// a member of a or b (either may be empty/unmaterialized), scanning the OR
// of the two summaries and then the OR of the two candidate words.
// Materialized sets of one node share one size, so a single bound covers
// the joint scan.
func nextUnion(a, b *OccSet, after int) int {
	if b == nil || b.words == nil {
		return a.Next(after)
	}
	if a.words == nil {
		// Relay-only node: the direct set never materialized, but queued
		// relay data must still be visited (lazy == eager).
		return b.Next(after)
	}
	i := after + 1
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(a.words) {
		return -1
	}
	if mask := (a.words[w] | b.words[w]) &^ (1<<(uint(i)&63) - 1); mask != 0 {
		return w<<6 + bits.TrailingZeros64(mask)
	}
	w = nextSumWord(a.sum, b.sum, w+1)
	if w < 0 {
		return -1
	}
	return w<<6 + bits.TrailingZeros64(a.words[w]|b.words[w])
}
