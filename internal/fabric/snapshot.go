package fabric

import (
	"fmt"
	"io"
	"sort"

	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/snap"
	"negotiator/internal/workload"
)

// StatefulPlane is the per-plane checkpoint hook: a control plane that
// carries state across rounds (match rings, mailboxes, spray/relay
// counters) serializes it here, and the core embeds the payload in its
// snapshot stream. Planes without the hook cannot be checkpointed.
type StatefulPlane interface {
	ControlPlane
	// PlaneState serializes the plane's persistent cross-round state.
	// Called only at a round boundary. An error (e.g. a scheduler policy
	// that does not support snapshots) aborts the checkpoint.
	PlaneState() ([]byte, error)
	// RestorePlaneState applies state captured by PlaneState to a freshly
	// constructed plane of the same configuration.
	RestorePlaneState(data []byte) error
}

// Section tags of the core snapshot stream (see internal/snap for the
// container format and the versioning policy).
const (
	secCore  = "CORE" // identity, clock, counters, pump, ledger, RNG
	secTags  = "TAGS" // tagged-event accounting
	secMetr  = "METR" // merged FCT samples, goodput, receiver buffers
	secFail  = "FAIL" // failure cursor positions (only with a plan)
	secFlows = "FLOW" // live flow records
	secGrps  = "GRPS" // flow-group member counts (only when grouping is live)
	secNode  = "NODE" // one per node with queue/loss/spray state
	secPlane = "PLNE" // the control plane's StatefulPlane payload
)

// Snapshot serializes the core's complete simulation state at a round
// boundary: clock and counters, the workload pump position, ledger and
// tag accounting, merged metrics, failure cursor positions, every live
// flow, every node's queued segments verbatim, and the control plane's
// own state. The stream is versioned and CRC-guarded (internal/snap).
//
// What is NOT captured: configuration. A snapshot is a resume token — the
// restoring process must rebuild the identical spec (topology, scheduler,
// failure plan, worker count is free to differ) and attach an identically
// constructed workload generator before Restore.
func (c *Core) Snapshot(w io.Writer) error {
	sp, ok := c.plane.(StatefulPlane)
	if !ok {
		return fmt.Errorf("fabric: control plane %q does not support checkpoints", c.plane.Name())
	}
	sw := snap.NewWriter(w)

	var e snap.Enc
	e.Str(c.plane.Name())
	e.Int(c.N)
	e.Int(c.S)
	e.I64(int64(c.roundLen))
	e.I64(int64(c.now))
	e.I64(c.rounds)
	e.I64(c.skippedRounds)
	e.I64(c.flowSeq)
	e.I64(c.nextCalls)
	e.Bool(c.genDone)
	e.Bool(c.havePending)
	if c.havePending {
		encodeArrival(&e, c.pending)
	}
	e.I64(c.Ledger.Injected)
	e.I64(c.Ledger.Delivered)
	e.I64(c.Ledger.Lost)
	e.I64(c.Lost)
	e.I64(c.requeued)
	e.I64(c.pendingLosses)
	for _, word := range c.RNG.State() {
		e.U64(word)
	}
	sw.Section(secCore, e.Bytes())

	sw.Section(secTags, c.encodeTags())
	sw.Section(secMetr, c.encodeMetrics())
	if c.failPlan != nil {
		var f snap.Enc
		f.I64(int64(c.actualCur.Now()))
		f.I64(int64(c.knownCur.Now()))
		sw.Section(secFail, f.Bytes())
	}
	live := c.liveFlows()
	sw.Section(secFlows, encodeFlows(live))
	if payload := encodeGroups(live, c.pending, c.havePending); payload != nil {
		sw.Section(secGrps, payload)
	}
	for i, nd := range c.Nodes {
		if payload := nd.encodeState(i); payload != nil {
			sw.Section(secNode, payload)
		}
	}
	planeState, err := sp.PlaneState()
	if err != nil {
		return err
	}
	sw.Section(secPlane, planeState)
	return sw.Close()
}

// Restore applies a snapshot to a freshly built core. The caller must
// have Bound the same control plane configuration and attached an
// identically constructed workload generator (SetWorkload) first; Restore
// replays the generator to the checkpointed position. The stream is fully
// validated before any state mutates, so a corrupt or truncated
// checkpoint leaves the core untouched. After applying state, Restore
// re-verifies the rebuilt derived indexes (CheckOccupancy, and
// CheckConservation under a failure plan).
func (c *Core) Restore(r io.Reader) error {
	sp, ok := c.plane.(StatefulPlane)
	if !ok {
		return fmt.Errorf("fabric: control plane %q does not support checkpoints", c.plane.Name())
	}
	if c.now != 0 || c.rounds != 0 || c.Ledger.Injected != 0 {
		return fmt.Errorf("fabric: restore target must be a freshly built core (now=%v rounds=%d injected=%d)",
			c.now, c.rounds, c.Ledger.Injected)
	}
	s, err := snap.Load(r)
	if err != nil {
		return err
	}

	// Decode and validate everything read-only first; mutation starts only
	// after the checkpoint has proven structurally sound and compatible.
	core, err := c.decodeCore(s)
	if err != nil {
		return err
	}
	failSec, haveFail := s.Section(secFail)
	if haveFail != (c.failPlan != nil) {
		return fmt.Errorf("fabric: checkpoint failure-plan presence (%v) does not match core configuration (%v)",
			haveFail, c.failPlan != nil)
	}
	// Flow-group counts must be in hand before flow records decode (the
	// progress bounds check is against the group's TOTAL bytes) and before
	// the workload replays (the buffered pending arrival is compared
	// including its count). An absent section means an ungrouped run — every
	// pre-group checkpoint restores as all-singles.
	var groups map[int64]int32
	if grpSec, ok := s.Section(secGrps); ok {
		var pendCount int32
		groups, pendCount, err = decodeGroups(grpSec)
		if err != nil {
			return err
		}
		if pendCount > 1 {
			if !core.havePending {
				return fmt.Errorf("fabric: checkpoint carries a pending-arrival group count without a pending arrival")
			}
			core.pending.Count = pendCount
		}
	}
	flowSec, ok := s.Section(secFlows)
	if !ok {
		return fmt.Errorf("fabric: checkpoint missing %s section", secFlows)
	}
	byID, err := decodeFlows(flowSec, core.flowSeq, groups)
	if err != nil {
		return err
	}
	planeSec, ok := s.Section(secPlane)
	if !ok {
		return fmt.Errorf("fabric: checkpoint missing %s section", secPlane)
	}

	// Replay the workload pump to the checkpointed position before touching
	// anything else: a replay mismatch (wrong generator attached) must not
	// leave a half-restored core.
	if err := c.replayWorkload(core); err != nil {
		return err
	}

	c.now = core.now
	c.rounds = core.rounds
	c.skippedRounds = core.skippedRounds
	c.flowSeq = core.flowSeq
	c.pending, c.havePending, c.genDone = core.pending, core.havePending, core.genDone
	c.nextCalls = core.nextCalls
	c.Ledger = core.ledger
	c.Lost = core.lost
	c.requeued = core.requeued
	c.pendingLosses = core.pendingLosses
	c.RNG.SetState(core.rng)

	if tags, ok := s.Section(secTags); ok {
		if err := c.decodeTags(tags); err != nil {
			return err
		}
	}
	if metr, ok := s.Section(secMetr); ok {
		if err := c.decodeMetrics(metr); err != nil {
			return err
		}
	}
	for _, payload := range s.Sections(secNode) {
		if err := c.decodeNode(payload, byID); err != nil {
			return err
		}
	}
	if haveFail {
		d := snap.NewDec(failSec)
		aNow, kNow := sim.Time(d.I64()), sim.Time(d.I64())
		if err := d.Finish(); err != nil {
			return err
		}
		// Cursors are pure functions of (plan, time): advancing the fresh
		// cursors to the checkpointed positions replays the exact transition
		// prefix, reproducing dense state, reference counts and the applied
		// index — mid-cycle flapping state included.
		if aNow != failure.NeverAdvanced {
			c.actualCur.AdvanceTo(aNow)
		}
		if kNow != failure.NeverAdvanced {
			c.knownCur.AdvanceTo(kNow)
		}
	}
	if err := sp.RestorePlaneState(planeSec); err != nil {
		return err
	}

	// The rebuilt derived state must satisfy the same invariants a live run
	// maintains.
	c.CheckOccupancy()
	if c.failPlan != nil {
		c.CheckConservation()
	}
	return nil
}

// coreState is the decoded CORE section.
type coreState struct {
	now           sim.Time
	rounds        int64
	skippedRounds int64
	flowSeq       int64
	nextCalls     int64
	genDone       bool
	havePending   bool
	pending       workload.Arrival
	ledger        flows.Ledger
	lost          int64
	requeued      int64
	pendingLosses int64
	rng           [4]uint64
}

func (c *Core) decodeCore(s *snap.Snapshot) (*coreState, error) {
	payload, ok := s.Section(secCore)
	if !ok {
		return nil, fmt.Errorf("fabric: checkpoint missing %s section", secCore)
	}
	d := snap.NewDec(payload)
	if name := d.Str(); name != c.plane.Name() {
		return nil, fmt.Errorf("fabric: checkpoint was taken on control plane %q, core runs %q", name, c.plane.Name())
	}
	if n, ports := d.Int(), d.Int(); n != c.N || ports != c.S {
		return nil, fmt.Errorf("fabric: checkpoint topology %dx%d does not match core %dx%d", n, ports, c.N, c.S)
	}
	if rl := sim.Duration(d.I64()); rl != c.roundLen {
		return nil, fmt.Errorf("fabric: checkpoint round length %v does not match core %v", rl, c.roundLen)
	}
	st := &coreState{}
	st.now = sim.Time(d.I64())
	st.rounds = d.I64()
	st.skippedRounds = d.I64()
	st.flowSeq = d.I64()
	st.nextCalls = d.I64()
	st.genDone = d.Bool()
	st.havePending = d.Bool()
	if st.havePending {
		st.pending = decodeArrival(d)
	}
	st.ledger.Injected = d.I64()
	st.ledger.Delivered = d.I64()
	st.ledger.Lost = d.I64()
	st.lost = d.I64()
	st.requeued = d.I64()
	st.pendingLosses = d.I64()
	for i := range st.rng {
		st.rng[i] = d.U64()
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return st, nil
}

// replayWorkload pulls the generator forward to the checkpointed pump
// position and cross-checks the final draw against the serialized pending
// arrival — catching a restore with the wrong (or wrongly seeded)
// generator attached.
func (c *Core) replayWorkload(st *coreState) error {
	if st.nextCalls == 0 {
		return nil
	}
	if c.work == nil {
		return fmt.Errorf("fabric: restore requires the original workload attached via SetWorkload (checkpoint had drawn %d arrivals)", st.nextCalls)
	}
	var (
		last   workload.Arrival
		lastOK bool
	)
	for i := int64(0); i < st.nextCalls; i++ {
		last, lastOK = c.work.Next()
		if !lastOK && i != st.nextCalls-1 {
			return fmt.Errorf("fabric: workload exhausted after %d of %d checkpointed draws: wrong generator attached", i+1, st.nextCalls)
		}
	}
	switch {
	case st.havePending:
		if !lastOK || last != st.pending {
			return fmt.Errorf("fabric: workload replay diverges from checkpoint (got %+v ok=%v, want buffered %+v): wrong generator attached",
				last, lastOK, st.pending)
		}
	case st.genDone:
		if lastOK {
			return fmt.Errorf("fabric: workload replay yields arrivals past the checkpointed end: wrong generator attached")
		}
	}
	return nil
}

func encodeArrival(e *snap.Enc, a workload.Arrival) {
	e.I64(int64(a.Time))
	e.Int(a.Src)
	e.Int(a.Dst)
	e.I64(a.Size)
	e.Int(a.Tag)
}

func decodeArrival(d *snap.Dec) workload.Arrival {
	return workload.Arrival{
		Time: sim.Time(d.I64()),
		Src:  d.Int(),
		Dst:  d.Int(),
		Size: d.I64(),
		Tag:  d.Int(),
	}
}

func (c *Core) encodeTags() []byte {
	keys := make([]int, 0, len(c.Tags))
	for k := range c.Tags {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var e snap.Enc
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		ts := c.Tags[k]
		e.Int(k)
		e.I64(int64(ts.Start))
		e.I64(int64(ts.End))
		e.Int(ts.Flows)
		e.Int(ts.Done)
	}
	return e.Bytes()
}

func (c *Core) decodeTags(payload []byte) error {
	d := snap.NewDec(payload)
	n := int(d.U32())
	for i := 0; i < n; i++ {
		k := d.Int()
		ts := &TagStat{
			Start: sim.Time(d.I64()),
			End:   sim.Time(d.I64()),
			Flows: d.Int(),
			Done:  d.Int(),
		}
		if d.Err() == nil {
			c.Tags[k] = ts
		}
	}
	return d.Finish()
}

// encodeMetrics captures the MERGED per-shard accumulators. Restore
// concentrates them into shard 0: shard merges are commutative sums and
// every FCT query re-sorts, so queried results are identical at any
// worker count on either side of the checkpoint.
func (c *Core) encodeMetrics() []byte {
	var e snap.Enc
	all, mice := c.MergedFCT().Samples()
	e.U32(uint32(len(all)))
	for _, v := range all {
		e.I64(int64(v))
	}
	e.U32(uint32(len(mice)))
	for _, v := range mice {
		e.I64(int64(v))
	}
	perToR := c.MergedGoodput().PerToR()
	var cnt uint32
	for _, b := range perToR {
		if b != 0 {
			cnt++
		}
	}
	e.U32(cnt)
	for dst, b := range perToR {
		if b != 0 {
			e.U32(uint32(dst))
			e.I64(b)
		}
	}
	e.Bool(c.RxBuffers != nil)
	if c.RxBuffers != nil {
		var rx uint32
		for _, b := range c.RxBuffers {
			if last, backlog, peak := b.State(); last != 0 || backlog != 0 || peak != 0 {
				rx++
			}
		}
		e.U32(rx)
		for dst, b := range c.RxBuffers {
			if last, backlog, peak := b.State(); last != 0 || backlog != 0 || peak != 0 {
				e.U32(uint32(dst))
				e.I64(int64(last))
				e.I64(backlog)
				e.I64(peak)
			}
		}
	}
	return e.Bytes()
}

func (c *Core) decodeMetrics(payload []byte) error {
	d := snap.NewDec(payload)
	all := make([]sim.Duration, int(d.U32()))
	for i := range all {
		all[i] = sim.Duration(d.I64())
	}
	mice := make([]sim.Duration, int(d.U32()))
	for i := range mice {
		mice[i] = sim.Duration(d.I64())
	}
	perToR := make([]int64, c.N)
	gn := int(d.U32())
	for i := 0; i < gn; i++ {
		dst := int(d.U32())
		v := d.I64()
		if d.Err() != nil {
			break
		}
		if dst < 0 || dst >= c.N {
			return fmt.Errorf("fabric: checkpoint goodput destination %d out of range", dst)
		}
		perToR[dst] = v
	}
	haveRx := d.Bool()
	if haveRx != (c.RxBuffers != nil) {
		return fmt.Errorf("fabric: checkpoint receiver-buffer presence (%v) does not match core configuration (%v)",
			haveRx, c.RxBuffers != nil)
	}
	if haveRx {
		rn := int(d.U32())
		for i := 0; i < rn; i++ {
			dst := int(d.U32())
			last, backlog, peak := sim.Time(d.I64()), d.I64(), d.I64()
			if d.Err() != nil {
				break
			}
			if dst < 0 || dst >= c.N {
				return fmt.Errorf("fabric: checkpoint receiver buffer %d out of range", dst)
			}
			c.RxBuffers[dst].RestoreState(last, backlog, peak)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	c.Shards[0].FCT.RestoreSamples(all, mice)
	c.Shards[0].Goodput.RestorePerToR(perToR)
	return nil
}

// liveFlows collects every flow still referenced by the fabric — queued
// segments of all three classes plus outstanding loss records. Completed
// flows survive only as metric samples and are not serialized.
func (c *Core) liveFlows() []*flows.Flow {
	byID := make(map[int64]*flows.Flow)
	note := func(f *flows.Flow) {
		if f != nil {
			byID[f.ID] = f
		}
	}
	for _, nd := range c.Nodes {
		nd.Direct.ForEachPage(func(_, _ int, qs []queue.DestQueue, _ int64) {
			for j := range qs {
				qs[j].ForEachSegment(func(_ int, s queue.Segment) { note(s.Flow) })
			}
		})
		nd.Lanes.ForEachPage(func(_, _ int, qs []queue.DestQueue, _ int64) {
			for j := range qs {
				qs[j].ForEachSegment(func(_ int, s queue.Segment) { note(s.Flow) })
			}
		})
		nd.Relay.ForEachPage(func(_, _ int, fs []queue.FIFO, _ int64) {
			for j := range fs {
				fs[j].ForEachSegment(func(s queue.Segment) { note(s.Flow) })
			}
		})
		for _, l := range nd.Losses {
			note(l.F)
		}
	}
	out := make([]*flows.Flow, 0, len(byID))
	for _, f := range byID {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func encodeFlows(live []*flows.Flow) []byte {
	var e snap.Enc
	e.U32(uint32(len(live)))
	for _, f := range live {
		e.I64(f.ID)
		e.Int(f.Src)
		e.Int(f.Dst)
		e.I64(f.Size)
		e.I64(int64(f.Arrival))
		e.Int(f.Tag)
		e.I64(f.Sent())
		e.I64(f.Delivered())
	}
	return e.Bytes()
}

func decodeFlows(payload []byte, flowSeq int64, groups map[int64]int32) (map[int64]*flows.Flow, error) {
	d := snap.NewDec(payload)
	n := int(d.U32())
	byID := make(map[int64]*flows.Flow, n)
	for i := 0; i < n; i++ {
		f := &flows.Flow{
			ID:      d.I64(),
			Src:     d.Int(),
			Dst:     d.Int(),
			Size:    d.I64(),
			Arrival: sim.Time(d.I64()),
			Tag:     d.Int(),
		}
		sent, delivered := d.I64(), d.I64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if f.ID <= 0 || f.ID > flowSeq {
			return nil, fmt.Errorf("fabric: checkpoint flow ID %d outside issued range [1, %d]", f.ID, flowSeq)
		}
		if _, dup := byID[f.ID]; dup {
			return nil, fmt.Errorf("fabric: checkpoint flow ID %d duplicated", f.ID)
		}
		// The member count must be applied before progress restores: the
		// bounds check is against the group's total bytes, not one member's.
		if k, ok := groups[f.ID]; ok {
			f.Count = k
		}
		if err := f.RestoreProgress(sent, delivered); err != nil {
			return nil, err
		}
		byID[f.ID] = f
	}
	for id := range groups {
		if _, ok := byID[id]; !ok {
			return nil, fmt.Errorf("fabric: checkpoint flow-group count references unknown flow %d", id)
		}
	}
	return byID, d.Finish()
}

// encodeGroups captures flow-group member counts — the one piece of live
// flow state encodeFlows predates — plus the buffered pending arrival's
// count. The section is written only when grouping is actually live (some
// count above 1), so ungrouped runs produce snapshot streams byte-identical
// to pre-group builds, and checkpoints from those builds restore here as
// all-singles.
func encodeGroups(live []*flows.Flow, pending workload.Arrival, havePending bool) []byte {
	var pendCount int32
	if havePending && pending.Count > 1 {
		pendCount = pending.Count
	}
	var grouped uint32
	for _, f := range live {
		if f.Count > 1 {
			grouped++
		}
	}
	if pendCount == 0 && grouped == 0 {
		return nil
	}
	var e snap.Enc
	e.U32(uint32(pendCount))
	e.U32(grouped)
	for _, f := range live {
		if f.Count > 1 {
			e.I64(f.ID)
			e.U32(uint32(f.Count))
		}
	}
	return e.Bytes()
}

func decodeGroups(payload []byte) (map[int64]int32, int32, error) {
	d := snap.NewDec(payload)
	pendCount := int32(d.U32())
	n := int(d.U32())
	counts := make(map[int64]int32, n)
	for i := 0; i < n; i++ {
		id := d.I64()
		k := int32(d.U32())
		if d.Err() != nil {
			break
		}
		if k < 2 {
			return nil, 0, fmt.Errorf("fabric: checkpoint flow-group count %d for flow %d below 2", k, id)
		}
		if _, dup := counts[id]; dup {
			return nil, 0, fmt.Errorf("fabric: checkpoint flow-group count for flow %d duplicated", id)
		}
		counts[id] = k
	}
	return counts, pendCount, d.Finish()
}

// encodeState serializes one node's state, or nil when the node carries
// none. Queued segments are recorded verbatim (class, destination,
// priority level, flow, bytes, enqueue time) in service order; restore
// re-pushes them through restore choke points that maintain the same
// shadow/aggregate/index bookkeeping as the live push paths, which is how
// the derived occupancy state is rebuilt rather than serialized.
func (nd *Node) encodeState(idx int) []byte {
	var cum uint32
	for _, v := range nd.CumInjected {
		if v != 0 {
			cum++
		}
	}
	hasSegs := nd.DirectBytes > 0 || nd.LanesBytes > 0 || nd.RelayBytes > 0
	if nd.SprayPtr == 0 && len(nd.Losses) == 0 && cum == 0 && !hasSegs {
		return nil
	}
	var e snap.Enc
	e.Int(idx)
	e.Int(nd.SprayPtr)
	e.U32(cum)
	for dst, v := range nd.CumInjected {
		if v != 0 {
			e.U32(uint32(dst))
			e.I64(v)
		}
	}
	e.U32(uint32(len(nd.Losses)))
	for _, l := range nd.Losses {
		e.I64(l.F.ID)
		e.U32(uint32(l.Dst))
		e.I64(l.Off)
		e.I64(l.N)
		e.I64(int64(l.At))
		e.U8(uint8(l.Class))
		e.U32(uint32(l.Via))
	}
	encodeDestSlab(&e, &nd.Direct)
	encodeDestSlab(&e, &nd.Lanes)
	var relayCnt uint32
	nd.Relay.ForEachPage(func(_, base int, fs []queue.FIFO, _ int64) {
		for j := range fs {
			relayCnt += uint32(fs[j].Len())
		}
	})
	e.U32(relayCnt)
	nd.Relay.ForEachPage(func(_, base int, fs []queue.FIFO, _ int64) {
		for j := range fs {
			dst := base + j
			fs[j].ForEachSegment(func(s queue.Segment) {
				e.U32(uint32(dst))
				e.I64(s.Flow.ID)
				e.I64(s.Bytes)
				e.I64(int64(s.Enqueued))
			})
		}
	})
	return e.Bytes()
}

func encodeDestSlab(e *snap.Enc, slab *queue.DestSlab) {
	var cnt uint32
	slab.ForEachPage(func(_, _ int, qs []queue.DestQueue, _ int64) {
		for j := range qs {
			qs[j].ForEachSegment(func(int, queue.Segment) { cnt++ })
		}
	})
	e.U32(cnt)
	slab.ForEachPage(func(_, base int, qs []queue.DestQueue, _ int64) {
		for j := range qs {
			dst := base + j
			qs[j].ForEachSegment(func(prio int, s queue.Segment) {
				e.U32(uint32(dst))
				e.U8(uint8(prio))
				e.I64(s.Flow.ID)
				e.I64(s.Bytes)
				e.I64(int64(s.Enqueued))
			})
		}
	})
}

func (c *Core) decodeNode(payload []byte, byID map[int64]*flows.Flow) error {
	d := snap.NewDec(payload)
	idx := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if idx < 0 || idx >= c.N {
		return fmt.Errorf("fabric: checkpoint node index %d out of range", idx)
	}
	nd := c.Nodes[idx]
	nd.SprayPtr = d.Int()
	cum := int(d.U32())
	for i := 0; i < cum; i++ {
		dst := int(d.U32())
		v := d.I64()
		if d.Err() != nil {
			break
		}
		if !nd.spec.cumInjected {
			return fmt.Errorf("fabric: checkpoint node %d carries cumulative-injected state the core does not track", idx)
		}
		if dst < 0 || dst >= c.N {
			return fmt.Errorf("fabric: checkpoint node %d cum-injected destination %d out of range", idx, dst)
		}
		if !nd.Direct.Materialized() {
			nd.materializeDirect()
		}
		nd.CumInjected[dst] = v
	}
	losses := int(d.U32())
	for i := 0; i < losses; i++ {
		id := d.I64()
		l := Loss{
			Dst:   int(d.U32()),
			Off:   d.I64(),
			N:     d.I64(),
			At:    sim.Time(d.I64()),
			Class: RequeueClass(d.U8()),
			Via:   int32(d.U32()),
		}
		if d.Err() != nil {
			break
		}
		f, ok := byID[id]
		if !ok {
			return fmt.Errorf("fabric: checkpoint node %d loss references unknown flow %d", idx, id)
		}
		if l.Class > RequeueRelay {
			return fmt.Errorf("fabric: checkpoint node %d loss has invalid requeue class %d", idx, l.Class)
		}
		l.F = f
		nd.Losses = append(nd.Losses, l)
	}
	if err := c.decodeDestSlabSegs(d, nd, byID, idx, false); err != nil {
		return err
	}
	if err := c.decodeDestSlabSegs(d, nd, byID, idx, true); err != nil {
		return err
	}
	relays := int(d.U32())
	for i := 0; i < relays; i++ {
		dst := int(d.U32())
		id := d.I64()
		s := queue.Segment{Bytes: d.I64(), Enqueued: sim.Time(d.I64())}
		if d.Err() != nil {
			break
		}
		f, ok := byID[id]
		if !ok {
			return fmt.Errorf("fabric: checkpoint node %d relay segment references unknown flow %d", idx, id)
		}
		if dst < 0 || dst >= c.N || s.Bytes <= 0 {
			return fmt.Errorf("fabric: checkpoint node %d relay segment invalid (dst=%d bytes=%d)", idx, dst, s.Bytes)
		}
		if !nd.spec.relay {
			return fmt.Errorf("fabric: checkpoint node %d carries relay data the core does not configure", idx)
		}
		s.Flow = f
		nd.PushRelay(dst, s)
	}
	return d.Finish()
}

func (c *Core) decodeDestSlabSegs(d *snap.Dec, nd *Node, byID map[int64]*flows.Flow, idx int, lanes bool) error {
	n := int(d.U32())
	for i := 0; i < n; i++ {
		dst := int(d.U32())
		prio := int(d.U8())
		id := d.I64()
		s := queue.Segment{Bytes: d.I64(), Enqueued: sim.Time(d.I64())}
		if d.Err() != nil {
			break
		}
		f, ok := byID[id]
		if !ok {
			return fmt.Errorf("fabric: checkpoint node %d segment references unknown flow %d", idx, id)
		}
		if dst < 0 || dst >= c.N {
			return fmt.Errorf("fabric: checkpoint node %d segment destination %d out of range", idx, dst)
		}
		s.Flow = f
		var err error
		if lanes {
			if !nd.spec.lanes {
				return fmt.Errorf("fabric: checkpoint node %d carries lane data the core does not configure", idx)
			}
			err = nd.restoreLaneSegment(dst, prio, s)
		} else {
			err = nd.restoreDirectSegment(dst, prio, s)
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreDirectSegment re-enqueues one checkpointed segment verbatim,
// mirroring PushDirectBytes' bookkeeping exactly (aggregates, page
// counter, occupancy index, shard active bit, demand version) but
// bypassing the PIAS offset split — the segment's priority placement was
// decided at original push time and must be reproduced, not recomputed.
func (nd *Node) restoreDirectSegment(dst, prio int, s queue.Segment) error {
	if !nd.Direct.Materialized() {
		nd.materializeDirect()
	}
	if err := nd.Direct.Queue(dst, nd.pages).RestoreSegment(nd.pool, prio, s); err != nil {
		return err
	}
	nd.Direct.Add(dst, s.Bytes)
	if nd.DirectBytes == 0 && nd.actDirect != nil {
		nd.actDirect.Set(nd.actBit)
	}
	nd.DirectBytes += s.Bytes
	nd.DirectOcc.Set(dst)
	nd.demandVer++
	return nil
}

// restoreLaneSegment is restoreDirectSegment for the secondary VOQ set,
// mirroring PushLaneBytes.
func (nd *Node) restoreLaneSegment(dst, prio int, s queue.Segment) error {
	if !nd.Lanes.Materialized() {
		nd.materializeLanes()
	}
	if err := nd.Lanes.Queue(dst, nd.pages).RestoreSegment(nd.pool, prio, s); err != nil {
		return err
	}
	nd.Lanes.Add(dst, s.Bytes)
	if nd.LanesBytes == 0 && nd.actLanes != nil {
		nd.actLanes.Set(nd.actBit)
	}
	nd.LanesBytes += s.Bytes
	nd.LanesOcc.Set(dst)
	return nil
}
