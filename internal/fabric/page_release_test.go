package fabric

import (
	"strings"
	"testing"

	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestDeferredPageRelease: a page whose last byte drains is returned to
// the pool once it has sat empty and untouched for pageReleaseAge merges,
// after which every accessor reads it as empty and CheckOccupancy still
// passes — release is invisible to the simulation.
func TestDeferredPageRelease(t *testing.T) {
	c, _ := testCore(t, workload.NewSinglePair(0, 1, 5000, 0), 1<<20)
	if !c.Drain(4) {
		t.Fatal("single pair did not drain")
	}
	nd := c.Nodes[0]
	if !nd.Direct.Materialized() || !nd.Direct.PageMaterialized(1) {
		t.Fatal("drained page released before the hysteresis age")
	}
	// Idle rounds age the candidate past pageReleaseAge; the merge then
	// returns the page to the pool.
	for i := 0; i < int(pageReleaseAge)+2; i++ {
		c.RunRound()
	}
	if nd.Direct.PageMaterialized(1) {
		t.Fatal("empty page not released after the hysteresis age")
	}
	if got := nd.Direct.Bytes(1); got != 0 {
		t.Fatalf("released page reports %d bytes", got)
	}
	if nd.DirectQueuedBytes(1) != 0 || nd.DirectOcc.Has(1) {
		t.Fatal("release left byte or occupancy residue")
	}
	c.CheckOccupancy()

	// A later push re-materializes the page from the pool and the fabric
	// behaves as if nothing happened.
	f := &flows.Flow{ID: 99, Src: 0, Dst: 1, Size: 800}
	c.Ledger.Injected += 800
	nd.PushDirect(1, f, c.Now())
	if !nd.Direct.PageMaterialized(1) || nd.Direct.Bytes(1) != 800 {
		t.Fatalf("re-materialized page holds %d bytes, want 800", nd.Direct.Bytes(1))
	}
	c.CheckOccupancy()
	if !c.Drain(4) {
		t.Fatal("re-materialized page did not drain")
	}
}

// TestChurningPageStaysMaterialized: a page emptied and refilled every
// round moves its touch version, refuting each release candidate — it
// must never be released, so steady state never pays a
// release/re-materialize cycle.
func TestChurningPageStaysMaterialized(t *testing.T) {
	c, _ := testCore(t, nil, 1<<20)
	c.SetWorkload(nil)
	nd := c.Nodes[0]
	sh := c.Shards[0]
	for round := 0; round < 4*int(pageReleaseAge); round++ {
		if round > 0 && !nd.Direct.PageMaterialized(1) {
			t.Fatalf("churning page released at round %d", round)
		}
		f := &flows.Flow{ID: int64(round), Src: 0, Dst: 1, Size: 700}
		c.Ledger.Injected += 700
		nd.PushDirect(1, f, c.Now())
		nd.TakeDirect(1, 1<<20, func(f *flows.Flow, n int64) {
			f.NoteSent(n)
			sh.Deliver(f, 1, n, c.Now())
		})
		c.RunRound()
	}
	if !nd.Direct.PageMaterialized(1) {
		t.Fatal("churning page released despite per-round touches")
	}
	c.CheckOccupancy()
}

// TestUnmaterializedPageResiduePanics: an occupancy bit pointing into an
// absent page claims backlog the queues cannot hold — CheckOccupancy
// must panic naming the page.
func TestUnmaterializedPageResiduePanics(t *testing.T) {
	top, err := topo.NewParallel(2*queue.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: top, HostRate: sim.Gbps(400)})
	if err != nil {
		t.Fatal(err)
	}
	nd := c.Nodes[0]
	f := &flows.Flow{ID: 1, Src: 0, Dst: 1, Size: 1000}
	nd.PushDirect(1, f, 0) // materializes the slab and page 0 only
	c.CheckOccupancy()

	nd.DirectOcc.Set(queue.PageSize + 5) // residue in absent page 1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckOccupancy accepted occupancy residue in an unmaterialized page")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "unmaterialized direct page 1") {
			t.Fatalf("panic %q does not name the absent page", r)
		}
	}()
	c.CheckOccupancy()
}

// TestPageCounterDriftPanics: a page byte counter that disagrees with the
// sum of its queues is caught by the page-wise sweep.
func TestPageCounterDriftPanics(t *testing.T) {
	c, _ := testCore(t, nil, 1<<20)
	c.SetWorkload(nil)
	nd := c.Nodes[0]
	f := &flows.Flow{ID: 1, Src: 0, Dst: 1, Size: 1000}
	c.Ledger.Injected += 1000
	nd.PushDirect(1, f, 0)
	c.CheckOccupancy()

	nd.Direct.Add(1, 32) // drift the page counter with no queued bytes behind it
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckOccupancy accepted a drifted page counter")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "page 0 counter") {
			t.Fatalf("panic %q does not name the drifted page counter", r)
		}
	}()
	c.CheckOccupancy()
}
