package fabric

import (
	"negotiator/internal/flows"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
)

// Shard owns the metric accumulators of one contiguous ToR range
// [Lo, Hi). A control plane's phase steps book deliveries and losses
// through the shard owning the flow's source (in-shard, race-free), or
// defer them into their own per-shard records and apply through
// Core.Deliver from the serial merge. Accumulators merge
// order-independently (sorted percentiles, per-ToR sums), so results are
// identical at any worker count.
type Shard struct {
	c      *Core
	K      int
	Lo, Hi int

	// ActiveDirect, ActiveLanes and ActiveRelay index the shard's nodes
	// with a non-zero per-class aggregate (bit i-Lo set iff node i holds
	// bytes of that class). They are the node-level analogue of the
	// per-node destination occupancy sets: a slot/epoch loop iterates the
	// shard's active nodes directly instead of probing all Hi-Lo
	// aggregates. Maintained by the node choke points; every mutation of
	// node i happens either in a serial phase or in shard-of-i's own
	// parallel step, so the shard-local words never race.
	ActiveDirect OccSet
	ActiveLanes  OccSet
	ActiveRelay  OccSet

	// Per-shard accumulators. FCT and Goodput merge at snapshot time
	// (Core.MergedFCT/MergedGoodput); Delivered, LostDelta, LossRecs,
	// Tagged and Freed are deltas folded by the core after every round.
	FCT       metrics.FCTStats
	Goodput   *metrics.Goodput
	Delivered int64
	LostDelta int64
	LossRecs  int64
	Tagged    []*flows.Flow
	// Freed collects untagged flows that completed this round; the merge
	// hands them to the core's recycling pool (tagged flows follow after
	// their tag accounting). A completed flow has no live queue segments
	// or loss records, so recycling is safe.
	Freed []*flows.Flow

	// relq queues the shard's empty-page release candidates (recorded by
	// the node take choke points, applied by the core's serial merge —
	// see Core.mergeRound).
	relq pageRelq

	// relDst is the shard's relay-destination index (see relayDstIndex):
	// maintained by the node choke points, consumed by slot planes that
	// invert the relay-drain walk from sources to backlogged destinations.
	relDst relayDstIndex
}

// RelayDsts exposes the shard's relay-destination index: the set of
// destinations any of the shard's nodes holds relay backlog for, plus its
// member count. The set is empty (nil-safe to iterate) until the shard's
// first relay push. Callers may iterate it only from the shard's own
// parallel step or a serial phase, and must finish iterating before
// draining (drains mutate the index).
func (sh *Shard) RelayDsts() (*OccSet, int) {
	return &sh.relDst.occ, sh.relDst.count
}

// Deliver accounts one run of payload bytes arriving at dst: shard
// delivery/goodput accumulation, flow completion with FCT recording and
// tag deferral, plus the optional receiver-buffer model and delivery
// observer (both sequential-only by the control planes' worker clamping).
func (sh *Shard) Deliver(f *flows.Flow, dst int, n int64, at sim.Time) {
	sh.Delivered += n
	sh.Goodput.Deliver(dst, n)
	if m := f.Deliver(n, at); m > 0 {
		// One FCT sample per completed member: group delivery is FIFO, so
		// the m members whose (i+1)·Size boundary this run crossed all
		// finish now, exactly as m separate flows would.
		fct := at.Sub(f.Arrival)
		for i := 0; i < m; i++ {
			sh.FCT.Record(f.Size, fct)
		}
		if f.Done() {
			if f.Tag != 0 {
				sh.Tagged = append(sh.Tagged, f)
			} else {
				sh.Freed = append(sh.Freed, f)
			}
		}
	}
	if sh.c.RxBuffers != nil {
		sh.c.RxBuffers[dst].Add(at, n)
	}
	if sh.c.OnDeliver != nil {
		sh.c.OnDeliver(dst, at, n)
	}
}

// RecordLoss books n bytes of f (starting at flow offset off) destroyed
// by a failed link on a transmission from nd toward dst, awaiting
// detection and source requeue. The loss list is owned by the
// transmitting node, hence by the calling shard.
func (sh *Shard) RecordLoss(nd *Node, f *flows.Flow, dst int, off, n int64, at sim.Time) {
	sh.RecordLossClass(nd, f, dst, off, n, at, RequeueDirect, -1)
}

// RecordLossClass is RecordLoss with an explicit requeue class: via names
// the lane index for RequeueLane losses (ignored otherwise).
func (sh *Shard) RecordLossClass(nd *Node, f *flows.Flow, dst int, off, n int64, at sim.Time, class RequeueClass, via int) {
	sh.LostDelta += n
	sh.LossRecs++
	nd.Losses = append(nd.Losses, Loss{F: f, Dst: dst, Off: off, N: n, At: at, Class: class, Via: int32(via)})
}

// Deliver applies one delivery's accounting from serial context (a
// control plane's post-barrier merge), routing it to the shard owning the
// destination ToR — order-independent, since per-shard accumulators merge
// commutatively.
func (c *Core) Deliver(f *flows.Flow, dst int, n int64, at sim.Time) {
	c.Shards[c.ShardOf[dst]].Deliver(f, dst, n, at)
}
