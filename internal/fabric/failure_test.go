package fabric

import (
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// failCore builds a core with every queue class enabled, for driving the
// requeue switch directly.
func failCore(t *testing.T) *Core {
	t.Helper()
	top, err := topo.NewParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: top, HostRate: sim.Gbps(400), Lanes: true, Relay: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRequeueClasses pins the class-dispatch of RequeueDetectedLosses:
// direct losses unsend and return to the direct VOQ, lane losses unsend
// into their recorded lane, relay losses re-enqueue the second-hop segment
// WITHOUT unsending (the bytes were noted sent at the first hop, and the
// relay delivery never re-notes them).
func TestRequeueClasses(t *testing.T) {
	c := failCore(t)
	nd := c.Nodes[0]
	sh := c.Shards[0]
	f := &flows.Flow{ID: 1, Src: 0, Dst: 1, Size: 1000}
	c.Ledger.Injected += 1000
	nd.PushDirect(1, f, 0)

	// Direct loss: 300 bytes destroyed leaving the source.
	nd.TakeDirect(1, 300, func(fl *flows.Flow, n int64) {
		off := fl.Sent()
		fl.NoteSent(n)
		sh.RecordLossClass(nd, fl, 1, off, n, c.Now(), RequeueDirect, -1)
	})
	// Lane loss: 200 bytes destroyed on lane 3.
	nd.TakeDirect(1, 200, func(fl *flows.Flow, n int64) {
		off := fl.Sent()
		fl.NoteSent(n)
		sh.RecordLossClass(nd, fl, 1, off, n, c.Now(), RequeueLane, 3)
	})
	c.mergeRound()
	if c.Ledger.Lost != 500 || c.pendingLosses != 2 {
		t.Fatalf("lost=%d records=%d after two losses", c.Ledger.Lost, c.pendingLosses)
	}
	c.CheckConservation()

	c.RequeueDetectedLosses(c.Now().Add(100), 5)
	if c.pendingLosses != 0 || c.Ledger.Lost != 0 || c.Requeued() != 500 {
		t.Fatalf("after requeue: records=%d lost=%d requeued=%d", c.pendingLosses, c.Ledger.Lost, c.Requeued())
	}
	if f.Sent() != 0 {
		t.Fatalf("direct/lane requeue did not unsend: sent=%d", f.Sent())
	}
	if nd.DirectBytes != 800 {
		t.Fatalf("direct VOQ holds %d bytes, want 800 (700 untouched + 300 requeued)", nd.DirectBytes)
	}
	if nd.LanesBytes != 200 || !nd.LanesOcc.Has(3) {
		t.Fatalf("lane 3 holds %d bytes, want the 200 lane-lost bytes back in their lane", nd.LanesBytes)
	}
	c.CheckOccupancy()
	c.CheckConservation()

	// Relay loss: a second-hop segment destroyed in flight. The bytes were
	// noted sent at the first hop, so the segment re-enqueues as-is.
	relay := c.Nodes[2]
	rsh := c.Shards[c.ShardOf[2]]
	g := &flows.Flow{ID: 2, Src: 3, Dst: 1, Size: 400}
	c.Ledger.Injected += 400
	g.NoteSent(400) // first hop already happened
	relay.PushRelay(1, queue.Segment{Flow: g, Bytes: 400, Enqueued: 0})
	relay.DrainRelay(1, 400, 1<<40, func(fl *flows.Flow, n int64) {
		rsh.RecordLossClass(relay, fl, 1, 0, n, c.Now(), RequeueRelay, -1)
	})
	c.mergeRound()
	c.CheckConservation()
	c.RequeueDetectedLosses(c.Now().Add(200), 5)
	if g.Sent() != 400 {
		t.Fatalf("relay requeue unsent the first hop: sent=%d", g.Sent())
	}
	if relay.RelayBytes != 400 || !relay.RelayOcc.Has(1) {
		t.Fatalf("relay VOQ holds %d bytes after requeue, want 400", relay.RelayBytes)
	}
	if c.Requeued() != 900 {
		t.Fatalf("requeued=%d, want 900", c.Requeued())
	}
	c.CheckOccupancy()
	c.CheckConservation()
}

// TestZeroDetectDelayRequeue: with DetectDelay 0 a recorded loss requeues
// on the very next failure advance (the round after the loss), never
// lingering.
func TestZeroDetectDelayRequeue(t *testing.T) {
	c := failCore(t)
	nd := c.Nodes[0]
	sh := c.Shards[0]
	f := &flows.Flow{ID: 1, Src: 0, Dst: 1, Size: 500}
	c.Ledger.Injected += 500
	nd.PushDirect(1, f, 0)
	at := c.Now()
	nd.TakeDirect(1, 500, func(fl *flows.Flow, n int64) {
		off := fl.Sent()
		fl.NoteSent(n)
		sh.RecordLossClass(nd, fl, 1, off, n, at, RequeueDirect, -1)
	})
	c.mergeRound()
	c.RequeueDetectedLosses(at, 0)
	if c.pendingLosses != 0 || nd.DirectBytes != 500 {
		t.Fatalf("zero-delay loss not requeued: records=%d queued=%d", c.pendingLosses, nd.DirectBytes)
	}
	c.CheckConservation()
}

// TestCoreOwnsFailureState: a core built with a failure plan exposes live
// actual/known snapshots that RunRound advances — the known view lagging
// the actual by the detection delay.
func TestCoreOwnsFailureState(t *testing.T) {
	top, err := topo.NewParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := failure.Single([]failure.Link{{ToR: 0, Port: 0}}, 250, 1<<40, 300)
	c, err := New(Config{Topology: top, HostRate: sim.Gbps(400), Failures: plan})
	if err != nil {
		t.Fatal(err)
	}
	p := &testPlane{c: c, serve: 1 << 20}
	c.Bind(p, func(f *flows.Flow, at sim.Time) { c.Nodes[f.Src].PushDirect(f.Dst, f, at) })
	c.SetWorkload(workload.NewSinglePair(2, 3, 100, 0))
	actual, known := c.ActualFailures(), c.KnownFailures()
	if actual == nil || known == nil || actual == known {
		t.Fatal("core did not build distinct actual/known snapshots")
	}
	c.RunRounds(4) // rounds start at t=0..300: actual sees the cut at 300, known still lags
	if actual.Count != 1 || !actual.Egress[0][0] {
		t.Fatalf("actual state missed the failure: count=%d", actual.Count)
	}
	if known.Count != 0 {
		t.Fatalf("known state detected the failure before the delay: count=%d", known.Count)
	}
	c.RunRounds(4) // round starts reach t=700 > 250+300: detection
	if known.Count != 1 || !known.Egress[0][0] {
		t.Fatalf("known state never detected the failure: count=%d", known.Count)
	}
	c.CheckConservation()
}

// TestCheckConservationCatchesDrift: the extended invariant must reject a
// fabric whose destroyed bytes do not reconcile with ledger + records.
func TestCheckConservationCatchesDrift(t *testing.T) {
	c := failCore(t)
	c.Lost += 100 // cumulative destroyed with no matching ledger entry
	defer func() {
		if recover() == nil {
			t.Error("CheckConservation accepted drifted loss accounting")
		}
	}()
	c.CheckConservation()
}
