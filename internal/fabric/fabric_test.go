package fabric

import (
	"testing"

	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// testPlane is a minimal control plane: each round it pumps arrivals and
// serves up to `serve` bytes from every occupied direct VOQ, delivering
// immediately.
type testPlane struct {
	c     *Core
	serve int64
}

func (p *testPlane) Name() string           { return "test" }
func (p *testPlane) RoundLen() sim.Duration { return 100 }
func (p *testPlane) Round() {
	c := p.c
	now := c.Now()
	c.Inject(now)
	for i, nd := range c.Nodes {
		sh := c.Shards[c.ShardOf[i]]
		for j := nd.DirectOcc.Next(-1); j >= 0; j = nd.DirectOcc.Next(j) {
			dst := j
			nd.TakeDirect(dst, p.serve, func(f *flows.Flow, n int64) {
				f.NoteSent(n)
				sh.Deliver(f, dst, n, now)
			})
		}
	}
}

func testCore(t *testing.T, g workload.Generator, serve int64) (*Core, *testPlane) {
	t.Helper()
	top, err := topo.NewParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: top, HostRate: sim.Gbps(400)})
	if err != nil {
		t.Fatal(err)
	}
	p := &testPlane{c: c, serve: serve}
	c.Bind(p, func(f *flows.Flow, at sim.Time) { c.Nodes[f.Src].PushDirect(f.Dst, f, at) })
	c.SetWorkload(g)
	return c, p
}

// TestDrainReportsBufferedArrival is the regression test for the Drain
// return value: an arrival still buffered in the pump (generator not
// exhausted) means the fabric is NOT drained even when the ledger reads
// zero. The pre-fix code returned true here.
func TestDrainReportsBufferedArrival(t *testing.T) {
	c, _ := testCore(t, workload.NewSinglePair(0, 1, 500, sim.Time(1000)), 1<<20)
	if c.Drain(2) {
		t.Fatal("Drain reported complete with an arrival still buffered in the pump")
	}
	if c.Ledger.Injected != 0 {
		t.Fatalf("arrival admitted early: injected = %d", c.Ledger.Injected)
	}
	// Enough rounds to pass t=1000, admit and serve the flow.
	if !c.Drain(20) {
		t.Fatal("Drain did not complete after the arrival was served")
	}
	if c.Ledger.Delivered != 500 {
		t.Fatalf("delivered = %d, want 500", c.Ledger.Delivered)
	}
}

// TestDrainNoWorkload: with no generator attached, an empty fabric drains
// immediately.
func TestDrainNoWorkload(t *testing.T) {
	c, _ := testCore(t, nil, 1<<20)
	c.SetWorkload(nil)
	if !c.Drain(1) {
		t.Fatal("empty fabric did not drain")
	}
}

// TestOutstandingLossCounter pins the loss bookkeeping: RecordLoss folds
// into the core counter at the round merge, requeue decrements it, and a
// zero counter short-circuits the walk.
func TestOutstandingLossCounter(t *testing.T) {
	c, _ := testCore(t, workload.NewSinglePair(0, 1, 1000, 0), 0)
	c.RunRound() // admits the flow, serves nothing (serve=0)
	if c.pendingLosses != 0 {
		t.Fatalf("pendingLosses = %d before any loss", c.pendingLosses)
	}
	// Destroy 300 bytes in flight from ToR 0 toward dst 1.
	nd := c.Nodes[0]
	sh := c.Shards[0]
	nd.TakeDirect(1, 300, func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		sh.RecordLoss(nd, f, 1, off, n, c.Now())
	})
	c.mergeRound()
	if c.pendingLosses != 1 {
		t.Fatalf("pendingLosses = %d after one recorded loss, want 1", c.pendingLosses)
	}
	if c.Ledger.Lost != 300 || c.Lost != 300 {
		t.Fatalf("lost bytes = %d/%d, want 300", c.Ledger.Lost, c.Lost)
	}
	// Not yet detected: the record stays.
	c.RequeueDetectedLosses(c.Now(), 1<<40)
	if c.pendingLosses != 1 || len(nd.Losses) != 1 {
		t.Fatal("loss requeued before the detection delay elapsed")
	}
	// Detected: bytes return to the source VOQ, counter hits zero.
	c.RequeueDetectedLosses(c.Now().Add(10), 5)
	if c.pendingLosses != 0 || len(nd.Losses) != 0 {
		t.Fatalf("pendingLosses = %d, records = %d after requeue", c.pendingLosses, len(nd.Losses))
	}
	if got := nd.DirectQueuedBytes(1); got != 1000 {
		t.Fatalf("source VOQ holds %d bytes after requeue, want 1000", got)
	}
	c.CheckOccupancy()
	if err := c.Ledger.Check(c.QueuedInNodes()); err != nil {
		t.Fatal(err)
	}
}

// TestOccSet pins the bitset index: membership, ascending word-scan
// iteration and the two-set union used by the predefined-phase sweep.
func TestOccSet(t *testing.T) {
	s := newOccSet(200)
	for _, v := range []int{0, 1, 63, 64, 130, 199} {
		s.Set(v)
	}
	s.Clear(1)
	s.Clear(130)
	want := []int{0, 63, 64, 199}
	var got []int
	for i := s.Next(-1); i >= 0; i = s.Next(i) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if s.Has(1) || !s.Has(63) {
		t.Fatal("membership wrong after Set/Clear")
	}
	b := newOccSet(200)
	b.Set(1)
	b.Set(150)
	wantU := []int{0, 1, 63, 64, 150, 199}
	var gotU []int
	for i := nextUnion(&s, &b, -1); i >= 0; i = nextUnion(&s, &b, i) {
		gotU = append(gotU, i)
	}
	if len(gotU) != len(wantU) {
		t.Fatalf("union iterated %v, want %v", gotU, wantU)
	}
	for k := range wantU {
		if gotU[k] != wantU[k] {
			t.Fatalf("union iterated %v, want %v", gotU, wantU)
		}
	}
	if got := nextUnion(&s, nil, 63); got != 64 {
		t.Fatalf("nil union next = %d, want 64", got)
	}
}

// TestChokePointsMaintainIndexes drives every Node mutation path and
// asserts the shadow array and occupancy indexes track exactly.
func TestChokePointsMaintainIndexes(t *testing.T) {
	top, err := topo.NewParallel(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: top, PriorityQueues: true, Lanes: true, Relay: true})
	if err != nil {
		t.Fatal(err)
	}
	nd := c.Nodes[0]
	f := &flows.Flow{ID: 1, Src: 0, Dst: 3, Size: 1 << 20}
	discard := func(fl *flows.Flow, n int64) {}

	nd.PushDirect(3, f, 0)
	nd.PushDirectBytes(5, f, 0, 0, 0) // zero-byte push must not set the bit
	nd.PushLaneBytes(2, f, 4096, 0, 0)
	nd.PushRelay(6, queue.Segment{Flow: f, Bytes: 777, Enqueued: 5})
	c.CheckOccupancy()
	if !nd.DirectOcc.Has(3) || nd.DirectOcc.Has(5) || !nd.LanesOcc.Has(2) || !nd.RelayOcc.Has(6) {
		t.Fatal("occupancy bits wrong after pushes")
	}
	if got := nd.NextDirectOrRelay(-1); got != 3 {
		t.Fatalf("NextDirectOrRelay(-1) = %d, want 3", got)
	}
	if got := nd.NextDirectOrRelay(3); got != 6 {
		t.Fatalf("NextDirectOrRelay(3) = %d, want 6", got)
	}

	// Partial take leaves the bit set; final take clears it.
	nd.TakeDirect(3, 1<<19, discard)
	c.CheckOccupancy()
	if !nd.DirectOcc.Has(3) {
		t.Fatal("partial take cleared the occupancy bit")
	}
	nd.TakeDirect(3, 1<<20, discard)
	nd.TakeDirectLowest(3, 1, discard)
	nd.TakeLane(2, 1<<20, discard)
	nd.TakeLaneHeadCell(2, 1, discard)
	c.CheckOccupancy()
	if nd.DirectOcc.Has(3) || nd.LanesOcc.Has(2) {
		t.Fatal("occupancy bit survived a draining take")
	}

	// Relay: a not-yet-arrived head drains nothing and keeps the bit; an
	// arrived one drains and clears it.
	if got := nd.DrainRelay(6, 1<<20, 0, discard); got != 0 {
		t.Fatalf("drained %d not-yet-arrived bytes", got)
	}
	c.CheckOccupancy()
	if !nd.RelayOcc.Has(6) {
		t.Fatal("relay bit cleared by a zero-byte drain")
	}
	if got := nd.DrainRelay(6, 1<<20, 10, discard); got != 777 {
		t.Fatalf("drained %d, want 777", got)
	}
	c.CheckOccupancy()
	if nd.RelayOcc.Has(6) || nd.RelayBytes != 0 {
		t.Fatal("relay bookkeeping wrong after full drain")
	}
}

// TestFlowPoolRecycles: completed untagged flows return to the core pool
// and the next injection reuses the record.
func TestFlowPoolRecycles(t *testing.T) {
	gen := workload.NewMerge(
		workload.NewSinglePair(0, 1, 400, 0),
		workload.NewSinglePair(2, 3, 400, sim.Time(500)),
	)
	c, _ := testCore(t, gen, 1<<20)
	c.RunRound() // admits and completes the first flow
	if c.Ledger.Delivered != 400 {
		t.Fatalf("delivered = %d, want 400", c.Ledger.Delivered)
	}
	if len(c.flowPool) != 1 {
		t.Fatalf("flow pool holds %d records, want 1", len(c.flowPool))
	}
	recycled := c.flowPool[0]
	c.RunRounds(6) // passes t=500: admits the second flow
	if c.Ledger.Delivered != 800 {
		t.Fatalf("delivered = %d, want 800", c.Ledger.Delivered)
	}
	if len(c.flowPool) != 1 || c.flowPool[0] != recycled {
		t.Fatal("second flow did not reuse the recycled record")
	}
}

// TestLazyNodesReportEmpty pins the lazy-slab contract: a freshly built
// core owns no queue memory, every unmaterialized node reads as
// empty/zero through all accessors (including zero-takes), the first push
// materializes exactly the touched class of the touched node, and
// CheckOccupancy accepts every intermediate state.
func TestLazyNodesReportEmpty(t *testing.T) {
	top, err := topo.NewParallel(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Topology: top, PriorityQueues: true, Lanes: true, Relay: true, CumInjected: true})
	if err != nil {
		t.Fatal(err)
	}
	discard := func(fl *flows.Flow, n int64) {}
	for i, nd := range c.Nodes {
		if nd.Direct.Materialized() || nd.Lanes.Materialized() || nd.Relay.Materialized() || nd.CumInjected != nil {
			t.Fatalf("node %d owns slab memory before any push", i)
		}
		if nd.DirectBytes != 0 || nd.LanesBytes != 0 || nd.RelayBytes != 0 {
			t.Fatalf("node %d has non-zero aggregates before any push", i)
		}
		if nd.DirectQueuedBytes(3) != 0 || nd.RelayQueuedBytes(3) != 0 {
			t.Fatalf("node %d accessor reports phantom bytes", i)
		}
		if nd.NextDirectOrRelay(-1) != -1 || nd.DirectOcc.Next(-1) != -1 {
			t.Fatalf("node %d occupancy iterates while unmaterialized", i)
		}
		if nd.TakeDirect(1, 100, discard) != 0 || nd.TakeLane(1, 100, discard) != 0 ||
			nd.DrainRelay(1, 100, 1<<40, discard) != 0 {
			t.Fatalf("node %d take from unmaterialized slab returned bytes", i)
		}
		if d, n := nd.TakeLaneHeadCell(1, 100, discard); d != -1 || n != 0 {
			t.Fatalf("node %d TakeLaneHeadCell on nil lanes = (%d, %d)", i, d, n)
		}
		if !nd.RelayEnabled() {
			t.Fatalf("node %d: relay configured but RelayEnabled false", i)
		}
	}
	c.CheckOccupancy()

	// First direct push materializes Direct (+index, CumInjected) of node
	// 2 only; lanes and relay stay nil until their first push.
	f := &flows.Flow{ID: 1, Src: 2, Dst: 5, Size: 4096}
	c.Nodes[2].PushDirect(5, f, 0)
	if !c.Nodes[2].Direct.Materialized() || c.Nodes[2].CumInjected == nil {
		t.Fatal("direct push did not materialize the direct class")
	}
	if c.Nodes[2].Lanes.Materialized() || c.Nodes[2].Relay.Materialized() {
		t.Fatal("direct push materialized unrelated classes")
	}
	if c.Nodes[3].Direct.Materialized() {
		t.Fatal("push on node 2 materialized node 3")
	}
	c.Nodes[2].PushRelay(1, queue.Segment{Flow: f, Bytes: 100, Enqueued: 0})
	if !c.Nodes[2].Relay.Materialized() || c.Nodes[2].Lanes.Materialized() {
		t.Fatal("relay push materialized the wrong classes")
	}
	c.CheckOccupancy()

	// Regression: a RELAY-ONLY node (relay materialized, direct not) must
	// still surface its queued relay data through the union sweep — the
	// predefined phase walks NextDirectOrRelay, and lazy == eager demands
	// the relay entry is visited even with DirectOcc unmaterialized.
	c.Nodes[4].PushRelay(5, queue.Segment{Flow: f, Bytes: 64, Enqueued: 0})
	if c.Nodes[4].Direct.Materialized() {
		t.Fatal("relay push materialized the direct class")
	}
	if got := c.Nodes[4].NextDirectOrRelay(-1); got != 5 {
		t.Fatalf("relay-only node NextDirectOrRelay(-1) = %d, want 5", got)
	}
	if got := c.Nodes[4].NextDirectOrRelay(5); got != -1 {
		t.Fatalf("relay-only node NextDirectOrRelay(5) = %d, want -1", got)
	}

	// MaterializeAll is the eager escape hatch tests compare against.
	c.MaterializeAll()
	for i, nd := range c.Nodes {
		if !nd.Direct.Materialized() || !nd.Lanes.Materialized() || !nd.Relay.Materialized() {
			t.Fatalf("node %d not fully materialized by MaterializeAll", i)
		}
	}
	c.CheckOccupancy()
}
