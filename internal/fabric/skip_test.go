package fabric

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/workload"
)

// idleTestPlane wraps testPlane with the IdlePlane capability and an
// executed-round counter: it keeps no state across rounds (everything it
// serves is delivered within the round), so its idle horizon is honestly
// infinite — the core's own gates (queued bytes, pending arrival, failure
// transitions) are the only things that may force a tick.
type idleTestPlane struct {
	*testPlane
	executed int
}

func (p *idleTestPlane) Round()                { p.executed++; p.testPlane.Round() }
func (p *idleTestPlane) IdleHorizon() sim.Time { return HorizonInfinite }

func idleTestCore(t *testing.T, g workload.Generator, disable bool) (*Core, *idleTestPlane) {
	t.Helper()
	c, inner := testCore(t, g, 1<<20)
	c.skipOff = disable
	p := &idleTestPlane{testPlane: inner}
	c.Bind(p, c.admit)
	return c, p
}

// TestQuietRunDoesNoWork is the idle fast-path guard: an empty fabric
// with no workload must execute exactly one round (the tick that retires
// the nil generator and proves the pump empty) no matter how far the run
// horizon extends, skip everything after it, allocate nothing while
// skipping, and still land on the exact round count and clock the ticking
// loop would reach.
func TestQuietRunDoesNoWork(t *testing.T) {
	c, p := idleTestCore(t, nil, false)
	c.Run(sim.Duration(1_000_000)) // 10k rounds of 100ns
	if p.executed != 1 {
		t.Errorf("executed %d rounds on an empty fabric, want 1 (the generator-retiring tick)", p.executed)
	}
	if c.Rounds() != 10_000 {
		t.Errorf("rounds = %d, want 10000 (skipped rounds must still count)", c.Rounds())
	}
	if c.SkippedRounds() != 9_999 {
		t.Errorf("skipped = %d, want 9999", c.SkippedRounds())
	}
	if c.Now() != sim.Time(1_000_000) {
		t.Errorf("now = %v, want 1000000", c.Now())
	}
	// The steady skipping state must be allocation-free: each RunRounds
	// call is one skipQuiet jump.
	if allocs := testing.AllocsPerRun(100, func() { c.RunRounds(1_000) }); allocs != 0 {
		t.Errorf("skipping allocates %.1f per RunRounds call, want 0", allocs)
	}
	if p.executed != 1 {
		t.Errorf("executed %d rounds after skip-only RunRounds, want still 1", p.executed)
	}
}

// TestSkipWakesForArrival: the skip must stop at the round that can
// observe a future arrival, deliver it exactly as the ticking loop would,
// and go back to skipping afterwards.
func TestSkipWakesForArrival(t *testing.T) {
	const at = sim.Time(500_000) // round 5000 of 10k
	c, p := idleTestCore(t, workload.NewSinglePair(0, 1, 700, at), false)
	c.Run(sim.Duration(1_000_000))
	if c.Ledger.Delivered != 700 {
		t.Fatalf("delivered = %d, want 700", c.Ledger.Delivered)
	}
	// Budget: one tick to buffer the arrival into the pump, one to admit
	// and serve it, one to retire the exhausted generator — anything close
	// to the 10k total means skipping never resumed.
	if p.executed > 4 {
		t.Errorf("executed %d rounds for a single mid-run arrival, want <= 4", p.executed)
	}
	if c.Rounds() != 10_000 {
		t.Errorf("rounds = %d, want 10000", c.Rounds())
	}
}

// TestSkipDisabledTicksEveryRound: the DisableEventSkip override must
// force the ticking loop even for a skippable plane.
func TestSkipDisabledTicksEveryRound(t *testing.T) {
	c, p := idleTestCore(t, nil, true)
	c.RunRounds(500)
	if p.executed != 500 {
		t.Errorf("executed %d rounds with skip disabled, want 500", p.executed)
	}
	if c.SkippedRounds() != 0 {
		t.Errorf("skipped = %d with skip disabled, want 0", c.SkippedRounds())
	}
}

// TestSkipBudgetClamp: RunRounds must land on exactly k rounds even when
// the idle horizon lies far beyond the budget.
func TestSkipBudgetClamp(t *testing.T) {
	c, _ := idleTestCore(t, nil, false)
	c.RunRounds(137)
	if c.Rounds() != 137 {
		t.Errorf("rounds = %d, want exactly 137", c.Rounds())
	}
	if c.Now() != sim.Time(137*100) {
		t.Errorf("now = %v, want %v", c.Now(), sim.Time(137*100))
	}
}
