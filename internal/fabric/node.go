package fabric

import (
	"fmt"

	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
)

// Node is one ToR's data-plane state: the queues bytes wait in and the
// loss records awaiting failure detection. Control-plane state (scheduling
// mailboxes, matches, relay plans) stays with the control plane, keyed by
// the same ToR index.
//
// Queue sets are PAGED slabs (queue.DestSlab / queue.FIFOSlab) indexed
// by the per-class occupancy sets. They materialize lazily at two
// granularities: a fresh node owns no queue memory at all and each class
// (Direct with its index, Lanes, Relay) allocates its page table on the
// first push into it; the
// pages themselves (fixed-width chunks of queue.PageSize destinations)
// materialize from the core's page pool on the first push that touches
// them. A node's footprint therefore scales with the destinations its
// traffic actually reaches, not with topology width — the rung that
// opens the 65,536-ToR tier. Every push happens in a serial phase
// (arrival admission, loss requeue, the engines' serial merges), so
// materialization never races with the parallel phases' reads, and an
// unmaterialized class or page reads as empty/zero everywhere (nil
// page, zero aggregate, empty occupancy index).
//
// Pages whose byte counter stays at zero long enough are recycled back
// to the pool by the core's serial merge (see Core.mergeRound): the take
// choke points record empty-page candidates with the page's touch
// version, and the release honours a candidate only if the page has
// stayed empty and untouched since — so churning pages are never
// released and steady state stays allocation-free.
//
// Engines may READ materialized slabs freely but must tolerate nil pages
// on nodes (and destinations) they merely probe — use the nil-page-safe
// accessors below (RelayQueuedBytes, DirectQueuedBytes, RelayHeadReady,
// LaneHeadDst, DirectWeightedHoL, ...). Every MUTATION must go through
// the Push*/Take*/Drain* choke points, which keep the
// aggregates, the page counters and the indexes exact — the occupancy
// invariant engines assert under CheckInvariants (Core.CheckOccupancy).
type Node struct {
	// Direct holds data per final destination: the NegotiaToR VOQs, the
	// baseline's direct queues, the hybrid's elephant queues.
	Direct queue.DestSlab
	// Lanes is the optional secondary VOQ set: per-intermediate VLB spray
	// lanes for the baseline, per-destination mice queues for the hybrid.
	Lanes queue.DestSlab
	// Relay holds in-transit data per final destination (second-hop
	// virtual output queues); RelayBytes is its single aggregate counter,
	// maintained exclusively by PushRelay/DrainRelay below so no engine
	// tallies it in two places.
	Relay      queue.FIFOSlab
	RelayBytes int64
	// DirectBytes and LanesBytes are the per-class aggregate byte
	// counters (RelayBytes' counterparts), maintained by the choke
	// points: an engine skips a whole node's per-port round work with one
	// O(1) read instead of scanning its occupancy words.
	DirectBytes int64
	LanesBytes  int64
	// DirectOcc, LanesOcc and RelayOcc index the non-empty entries of the
	// corresponding queue set; per-round sweeps iterate them in ascending
	// destination order, making round cost O(active), not O(N).
	DirectOcc, LanesOcc, RelayOcc OccSet
	// CumInjected is the optional cumulative injected-bytes table per
	// destination (stateful matcher view).
	CumInjected []int64
	// SprayPtr is a rotating destination pointer for slot-time spray
	// disciplines.
	SprayPtr int
	// Losses are bytes destroyed by failures, awaiting detection and
	// source requeue.
	Losses []Loss

	// demandVer counts mutations of the node's direct demand (every push
	// into or take from the Direct set). Matcher request caches compare it
	// to decide whether a source's cached emissions can be replayed; a
	// round that neither pushes nor takes leaves it untouched, so the
	// comparison alone proves the demand row unchanged.
	demandVer int64

	// actDirect/actLanes/actRelay point at the owning shard's active-node
	// sets, with actBit the node's shard-local bit. The choke points flip
	// the bit exactly on the per-class aggregate's 0<->nonzero transitions.
	actDirect, actLanes, actRelay *OccSet
	actBit                        int

	// id is the node's ToR index and relq its owning shard's
	// pending-release queue: take choke points record empty-page
	// candidates there (shard-local, so parallel phases never contend)
	// and the core's serial merge ages and applies them.
	id   int32
	relq *pageRelq
	// relDst points at the owning shard's relay-destination index: the
	// set of destinations ANY of the shard's nodes holds relay backlog
	// for, refcounted so the last node to drain a destination clears its
	// bit. PushRelay/DrainRelay maintain it on the same 0<->nonzero queue
	// transitions that flip RelayOcc; pushes are serial-phase-only and
	// drains happen in the owning shard's own parallel step, so the index
	// never races.
	relDst *relayDstIndex

	// spec remembers the topology size and class configuration the lazy
	// slabs materialize to (shared by every node of a core).
	spec *nodeSpec
	// pool recycles segment arrays fabric-wide (the core's; see
	// queue.SegPool for why it may be unsynchronised). pages recycles
	// released queue pages the same way (materialization happens only in
	// serial phases, release only in the serial merge).
	pool  *queue.SegPool
	pages *queue.PagePool
}

// nodeSpec is the shared recipe lazy materialization follows: the
// per-class slab sizes and options of Config, captured once per core.
type nodeSpec struct {
	n           int
	priority    bool
	lanes       bool
	relay       bool
	cumInjected bool
}

// Queue-class tags for page-release candidates.
const (
	classDirect uint8 = iota
	classLanes
	classRelay
)

// pageRef is one empty-page release candidate: which node/class/page went
// empty, the page's touch version at that moment, and (stamped by the
// serial merge) the round it was recorded.
type pageRef struct {
	tor   int32
	page  int32
	class uint8
	ver   uint32
	round int64
}

// pageRelq is a shard's pending-release queue: refs append during the
// shard's own take phases (or the serial phases), and the core's serial
// merge stamps, ages and applies them (see Core.mergeRound).
type pageRelq struct {
	refs    []pageRef
	head    int
	stamped int
}

// RequeueClass selects how Core.RequeueDetectedLosses returns a detected
// loss to the recording node's queues — each control plane records losses
// in the class whose queue set its discipline actually serves.
type RequeueClass uint8

const (
	// RequeueDirect rewinds the flow's sent cursor and re-enqueues into
	// the recording node's direct VOQ for Dst — the NegotiaToR semantics
	// (and the zero value, so plain RecordLoss keeps them).
	RequeueDirect RequeueClass = iota
	// RequeueLane rewinds the sent cursor and re-enqueues into lane Via
	// (a VLB spray lane, the hybrid's mice queue): disciplines whose
	// sources never serve the direct set must not strand bytes there.
	RequeueLane
	// RequeueRelay re-enqueues the bytes into the recording node's relay
	// FIFO for Dst without rewinding the flow: second-hop bytes were
	// already noted sent at their first hop, and relay delivery does not
	// note them again.
	RequeueRelay
)

// Loss books one run of failure-destroyed bytes: flow, destination, flow
// offset, byte count, destruction time and how to requeue on detection.
type Loss struct {
	F     *flows.Flow
	Dst   int
	Off   int64
	N     int64
	At    sim.Time
	Class RequeueClass
	Via   int32 // lane index for RequeueLane
}

func newNode(spec *nodeSpec, pool *queue.SegPool, pages *queue.PagePool) *Node {
	return &Node{spec: spec, pool: pool, pages: pages}
}

// noteEmptyPage records a release candidate with the page's touch
// version. Outside a core (bare-node tests) there is no queue and pages
// simply stay materialized.
func (nd *Node) noteEmptyPage(class uint8, page int, ver uint32) {
	if nd.relq == nil {
		return
	}
	nd.relq.refs = append(nd.relq.refs, pageRef{tor: nd.id, page: int32(page), class: class, ver: ver})
}

// materializeDirect allocates the direct page table with its occupancy
// index and (when configured) the cumulative-injected table. Called from
// the push choke points on first use; pushes happen only in serial
// phases, so growth never races with parallel reads. Per-destination
// queued bytes live in the pages themselves (DestSlab.Bytes), so a
// touched node's footprint stays proportional to the destinations its
// traffic reaches, never to the fabric width.
func (nd *Node) materializeDirect() {
	nd.Direct = queue.NewDestSlab(nd.spec.n, nd.spec.priority)
	nd.DirectOcc = newOccSet(nd.spec.n)
	if nd.spec.cumInjected {
		nd.CumInjected = make([]int64, nd.spec.n)
	}
}

// materializeLanes allocates the secondary page table and its index.
func (nd *Node) materializeLanes() {
	nd.Lanes = queue.NewDestSlab(nd.spec.n, nd.spec.priority)
	nd.LanesOcc = newOccSet(nd.spec.n)
}

// materializeRelay allocates the relay page table and its index.
func (nd *Node) materializeRelay() {
	nd.Relay = queue.NewFIFOSlab(nd.spec.n)
	nd.RelayOcc = newOccSet(nd.spec.n)
}

// Materialize eagerly allocates every class the node's configuration
// enables — page tables AND every page — as pre-paging construction did.
// Tests use it to prove lazy and eager fabrics produce byte-identical
// results.
func (nd *Node) Materialize() {
	if !nd.Direct.Materialized() {
		nd.materializeDirect()
	}
	nd.Direct.MaterializeAll(nd.pages)
	if nd.spec.lanes {
		if !nd.Lanes.Materialized() {
			nd.materializeLanes()
		}
		nd.Lanes.MaterializeAll(nd.pages)
	}
	if nd.spec.relay {
		if !nd.Relay.Materialized() {
			nd.materializeRelay()
		}
		nd.Relay.MaterializeAll(nd.pages)
	}
}

// RelayEnabled reports whether the node's configuration carries relay
// FIFOs (whether or not they have materialized yet).
func (nd *Node) RelayEnabled() bool { return nd.spec.relay }

// PushDirect enqueues all bytes of flow f (all members, for a group) for
// destination dst at time now.
func (nd *Node) PushDirect(dst int, f *flows.Flow, at sim.Time) {
	nd.PushDirectBytes(dst, f, f.Total(), 0, at)
}

// PushDirectBytes enqueues n bytes of f (first byte at flow offset off)
// for dst, maintaining the page counter and the occupancy index.
func (nd *Node) PushDirectBytes(dst int, f *flows.Flow, n, off int64, at sim.Time) {
	if n <= 0 {
		return
	}
	if !nd.Direct.Materialized() {
		nd.materializeDirect()
	}
	nd.Direct.Queue(dst, nd.pages).PushBytesPool(nd.pool, f, n, off, at)
	nd.Direct.Add(dst, n)
	if nd.DirectBytes == 0 && nd.actDirect != nil {
		nd.actDirect.Set(nd.actBit)
	}
	nd.DirectBytes += n
	nd.DirectOcc.Set(dst)
	nd.demandVer++
}

// TakeDirect removes up to max bytes from the dst VOQ (priorities in
// order, FIFO within each), returning the bytes taken.
func (nd *Node) TakeDirect(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	q := nd.Direct.Probe(dst)
	if q == nil {
		return 0
	}
	taken := q.Take(max, emit)
	if taken > 0 {
		nd.afterTakeDirect(dst, taken)
	}
	return taken
}

// TakeDirectLowest removes up to max bytes from the dst VOQ's
// lowest-priority (elephant) class only — the selective relay's first-hop
// source drain.
func (nd *Node) TakeDirectLowest(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	q := nd.Direct.Probe(dst)
	if q == nil {
		return 0
	}
	taken := q.TakeLowestOnly(max, emit)
	if taken > 0 {
		nd.afterTakeDirect(dst, taken)
	}
	return taken
}

// afterTakeDirect folds a direct take into the aggregates, the page
// counter, the occupancy indexes and the demand version, and records an
// empty-page candidate when the page's counter hits zero.
func (nd *Node) afterTakeDirect(dst int, taken int64) {
	if pb, ver := nd.Direct.Add(dst, -taken); pb == 0 {
		nd.noteEmptyPage(classDirect, queue.PageOf(dst), ver)
	}
	if nd.DirectBytes -= taken; nd.DirectBytes == 0 && nd.actDirect != nil {
		nd.actDirect.Clear(nd.actBit)
	}
	if nd.Direct.Bytes(dst) == 0 {
		nd.DirectOcc.Clear(dst)
	}
	nd.demandVer++
}

// PushLane enqueues all bytes of flow f (all members, for a group) into
// lane dst at time now.
func (nd *Node) PushLane(dst int, f *flows.Flow, at sim.Time) {
	nd.PushLaneBytes(dst, f, f.Total(), 0, at)
}

// PushLaneBytes enqueues n bytes of f (offset off) into lane dst.
func (nd *Node) PushLaneBytes(dst int, f *flows.Flow, n, off int64, at sim.Time) {
	if n <= 0 {
		return
	}
	if !nd.Lanes.Materialized() {
		nd.materializeLanes()
	}
	nd.Lanes.Queue(dst, nd.pages).PushBytesPool(nd.pool, f, n, off, at)
	nd.Lanes.Add(dst, n)
	if nd.LanesBytes == 0 && nd.actLanes != nil {
		nd.actLanes.Set(nd.actBit)
	}
	nd.LanesBytes += n
	nd.LanesOcc.Set(dst)
}

// TakeLane removes up to max bytes from lane dst.
func (nd *Node) TakeLane(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	q := nd.Lanes.Probe(dst)
	if q == nil {
		return 0
	}
	taken := q.Take(max, emit)
	if taken > 0 {
		nd.afterTakeLane(dst, taken, q.Empty())
	}
	return taken
}

// TakeLaneHeadCell removes up to max bytes for a single destination from
// lane dst's head (see queue.DestQueue.TakeHeadCell), returning the
// destination served and the bytes taken.
func (nd *Node) TakeLaneHeadCell(dst int, max int64, emit func(f *flows.Flow, n int64)) (int, int64) {
	q := nd.Lanes.Probe(dst)
	if q == nil {
		return -1, 0
	}
	d, taken := q.TakeHeadCell(max, emit)
	if taken > 0 {
		nd.afterTakeLane(dst, taken, q.Empty())
	}
	return d, taken
}

// afterTakeLane folds a lane take into the aggregate, the page counter
// and the occupancy index.
func (nd *Node) afterTakeLane(dst int, taken int64, nowEmpty bool) {
	if pb, ver := nd.Lanes.Add(dst, -taken); pb == 0 {
		nd.noteEmptyPage(classLanes, queue.PageOf(dst), ver)
	}
	if nd.LanesBytes -= taken; nd.LanesBytes == 0 && nd.actLanes != nil {
		nd.actLanes.Clear(nd.actBit)
	}
	if nowEmpty {
		nd.LanesOcc.Clear(dst)
	}
}

// PushRelay enqueues one in-transit segment for final destination dst and
// maintains the aggregate relay counter, the page counter and the
// occupancy index.
func (nd *Node) PushRelay(dst int, s queue.Segment) {
	if s.Bytes <= 0 {
		return
	}
	if !nd.Relay.Materialized() {
		nd.materializeRelay()
	}
	nd.Relay.Get(dst, nd.pages).PushPool(nd.pool, s)
	nd.Relay.Add(dst, s.Bytes)
	if nd.RelayBytes == 0 && nd.actRelay != nil {
		nd.actRelay.Set(nd.actBit)
	}
	nd.RelayBytes += s.Bytes
	if !nd.RelayOcc.Has(dst) {
		nd.RelayOcc.Set(dst)
		if nd.relDst != nil {
			nd.relDst.inc(nd.spec.n, dst)
		}
	}
}

// DrainRelay forwards up to max relay bytes for dst that have physically
// arrived by now, maintaining the aggregate counter. It returns the bytes
// taken.
func (nd *Node) DrainRelay(dst int, max int64, now sim.Time, emit func(f *flows.Flow, n int64)) int64 {
	q := nd.Relay.Probe(dst)
	if q == nil {
		return 0
	}
	taken := q.TakeReady(max, now, emit)
	if taken > 0 {
		if pb, ver := nd.Relay.Add(dst, -taken); pb == 0 {
			nd.noteEmptyPage(classRelay, queue.PageOf(dst), ver)
		}
		if nd.RelayBytes -= taken; nd.RelayBytes == 0 && nd.actRelay != nil {
			nd.actRelay.Clear(nd.actBit)
		}
		if q.Empty() {
			nd.RelayOcc.Clear(dst)
			if nd.relDst != nil {
				nd.relDst.dec(dst)
			}
		}
	}
	return taken
}

// NextDirectOrRelay returns the smallest destination strictly greater
// than after with direct backlog or queued relay data, or -1 — the
// ascending sweep order of the predefined transmission phase.
func (nd *Node) NextDirectOrRelay(after int) int {
	if !nd.Relay.Materialized() {
		return nd.DirectOcc.Next(after)
	}
	return nextUnion(&nd.DirectOcc, &nd.RelayOcc, after)
}

// RelayHeadroom returns how many more relay bytes the node accepts under
// the given aggregate cap.
func (nd *Node) RelayHeadroom(cap int64) int64 { return cap - nd.RelayBytes }

// RelayQueuedBytes reports the relay backlog for dst, zero when the relay
// slab (or dst's page) has not materialized — the nil-page-safe read
// engines use to probe OTHER nodes (a spray source checking an
// intermediate's VOQ headroom).
func (nd *Node) RelayQueuedBytes(dst int) int64 { return nd.Relay.Bytes(dst) }

// RelayHeadReady reports whether the relay FIFO for dst has data that has
// physically arrived by now (false for unmaterialized slabs or pages).
func (nd *Node) RelayHeadReady(dst int, now sim.Time) bool {
	q := nd.Relay.Probe(dst)
	return q != nil && q.HeadReady(now)
}

// DirectQueuedBytes reports the direct backlog for dst, zero when the
// direct slab (or dst's page) has not materialized — the nil-page-safe
// read matcher demand views and spray scans use.
func (nd *Node) DirectQueuedBytes(dst int) int64 { return nd.Direct.Bytes(dst) }

// DirectLowestPriorityBytes reports the bytes queued at dst's lowest
// (elephant) priority, zero for unmaterialized slabs or pages.
func (nd *Node) DirectLowestPriorityBytes(dst int) int64 {
	q := nd.Direct.Probe(dst)
	if q == nil {
		return 0
	}
	return q.LowestPriorityBytes()
}

// DirectWeightedHoL computes the weighted head-of-line delay for dst
// (App. A.2.3), zero for unmaterialized slabs or pages (an absent page
// is a set of empty queues, whose HoL waits are all zero).
func (nd *Node) DirectWeightedHoL(dst int, now sim.Time, alpha float64) float64 {
	q := nd.Direct.Probe(dst)
	if q == nil {
		return 0
	}
	return q.WeightedHoL(now, alpha)
}

// LaneHeadDst returns the destination of the next data lane dst would
// serve, or -1 when the lane is empty (or its page absent).
func (nd *Node) LaneHeadDst(dst int) int {
	q := nd.Lanes.Probe(dst)
	if q == nil {
		return -1
	}
	return q.HeadDst()
}

// DemandVer returns the node's direct-demand mutation counter. Two equal
// readings bracket a span with no push into and no take from the Direct
// set — the condition under which a matcher's cached request emissions
// for this source are still exact.
func (nd *Node) DemandVer() int64 { return nd.demandVer }

// CheckRelayCounter asserts the aggregate counter matches the FIFO
// contents (per-round invariant of relay-carrying control planes).
func (nd *Node) CheckRelayCounter() {
	if !nd.Relay.Materialized() {
		return
	}
	var sum int64
	nd.Relay.ForEachPage(func(page, base int, fs []queue.FIFO, bytes int64) {
		for j := range fs {
			sum += fs[j].Bytes()
		}
	})
	if sum != nd.RelayBytes {
		panic(fmt.Sprintf("fabric: relay accounting drift: FIFOs hold %d, counter says %d", sum, nd.RelayBytes))
	}
}

// checkOccupancy asserts the per-queue, per-page and per-class aggregate
// counters and all three occupancy indexes exactly mirror queue contents
// — including that unmaterialized classes report empty/zero everywhere
// (nil slab, zero aggregate) and that unmaterialized PAGES carry no
// residue: an absent page must have no occupancy bits and no page
// counter anywhere in its destination range.
func (nd *Node) checkOccupancy(tor int) {
	if !nd.Direct.Materialized() {
		if nd.DirectBytes != 0 || nd.DirectOcc.words != nil || nd.CumInjected != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized direct slab with residue (bytes=%d)", tor, nd.DirectBytes))
		}
	}
	if !nd.Lanes.Materialized() {
		if nd.LanesBytes != 0 || nd.LanesOcc.words != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized lane slab with residue (bytes=%d)", tor, nd.LanesBytes))
		}
	}
	if !nd.Relay.Materialized() {
		if nd.RelayBytes != 0 || nd.RelayOcc.words != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized relay slab with residue (bytes=%d)", tor, nd.RelayBytes))
		}
	}
	if nd.Direct.Materialized() {
		var direct int64
		for j := 0; j < nd.spec.n; j++ {
			q := nd.Direct.Probe(j)
			var b int64
			if q != nil {
				b = q.Bytes()
				if r := q.Recount(); r != b {
					panic(fmt.Sprintf("fabric: tor %d direct[%d] aggregate %d != recount %d", tor, j, b, r))
				}
			} else if nd.DirectOcc.Has(j) {
				panic(fmt.Sprintf("fabric: tor %d unmaterialized direct page %d with occupancy residue at dst %d", tor, queue.PageOf(j), j))
			}
			if nd.DirectOcc.Has(j) != (b > 0) {
				panic(fmt.Sprintf("fabric: tor %d direct occupancy[%d] = %v, queue holds %d", tor, j, nd.DirectOcc.Has(j), b))
			}
			direct += b
		}
		nd.Direct.ForEachPage(func(page, base int, qs []queue.DestQueue, bytes int64) {
			var sum int64
			for k := range qs {
				sum += qs[k].Bytes()
			}
			if sum != bytes {
				panic(fmt.Sprintf("fabric: tor %d direct page %d counter %d, queues hold %d", tor, page, bytes, sum))
			}
		})
		if direct != nd.DirectBytes {
			panic(fmt.Sprintf("fabric: tor %d DirectBytes = %d, queues hold %d", tor, nd.DirectBytes, direct))
		}
	}
	if nd.Lanes.Materialized() {
		var lanes int64
		for j := 0; j < nd.spec.n; j++ {
			q := nd.Lanes.Probe(j)
			var b int64
			if q != nil {
				b = q.Bytes()
				if r := q.Recount(); r != b {
					panic(fmt.Sprintf("fabric: tor %d lane[%d] aggregate %d != recount %d", tor, j, b, r))
				}
			}
			if nd.LanesOcc.Has(j) != (b > 0) {
				panic(fmt.Sprintf("fabric: tor %d lane occupancy[%d] = %v, queue holds %d", tor, j, nd.LanesOcc.Has(j), b))
			}
			lanes += b
		}
		nd.Lanes.ForEachPage(func(page, base int, qs []queue.DestQueue, bytes int64) {
			var sum int64
			for k := range qs {
				sum += qs[k].Bytes()
			}
			if sum != bytes {
				panic(fmt.Sprintf("fabric: tor %d lane page %d counter %d, queues hold %d", tor, page, bytes, sum))
			}
		})
		if lanes != nd.LanesBytes {
			panic(fmt.Sprintf("fabric: tor %d LanesBytes = %d, queues hold %d", tor, nd.LanesBytes, lanes))
		}
	}
	if nd.Relay.Materialized() {
		for j := 0; j < nd.spec.n; j++ {
			q := nd.Relay.Probe(j)
			empty := q == nil || q.Empty()
			if nd.RelayOcc.Has(j) != !empty {
				panic(fmt.Sprintf("fabric: tor %d relay occupancy[%d] = %v, queue holds %d", tor, j, nd.RelayOcc.Has(j), nd.Relay.Bytes(j)))
			}
		}
		nd.Relay.ForEachPage(func(page, base int, fs []queue.FIFO, bytes int64) {
			var sum int64
			for k := range fs {
				sum += fs[k].Bytes()
			}
			if sum != bytes {
				panic(fmt.Sprintf("fabric: tor %d relay page %d counter %d, FIFOs hold %d", tor, page, bytes, sum))
			}
		})
	}
}
