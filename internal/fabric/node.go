package fabric

import (
	"fmt"

	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
)

// Node is one ToR's data-plane state: the queues bytes wait in and the
// loss records awaiting failure detection. Control-plane state (scheduling
// mailboxes, matches, relay plans) stays with the control plane, keyed by
// the same ToR index.
type Node struct {
	// Direct holds data per final destination: the NegotiaToR VOQs, the
	// baseline's direct queues, the hybrid's elephant queues.
	Direct []*queue.DestQueue
	// Lanes is the optional secondary VOQ set: per-intermediate VLB spray
	// lanes for the baseline, per-destination mice queues for the hybrid.
	Lanes []*queue.DestQueue
	// Relay holds in-transit data per final destination (second-hop
	// virtual output queues); RelayBytes is its single aggregate counter,
	// maintained exclusively by PushRelay/DrainRelay below so no engine
	// tallies it in two places.
	Relay      []*queue.FIFO
	RelayBytes int64
	// CumInjected is the optional cumulative injected-bytes table per
	// destination (stateful matcher view).
	CumInjected []int64
	// SprayPtr is a rotating destination pointer for slot-time spray
	// disciplines.
	SprayPtr int
	// Losses are bytes destroyed by failures, awaiting detection and
	// source requeue.
	Losses []Loss
}

// Loss books one run of failure-destroyed bytes: flow, destination, flow
// offset, byte count and destruction time.
type Loss struct {
	F   *flows.Flow
	Dst int
	Off int64
	N   int64
	At  sim.Time
}

func newNode(n int, cfg Config) *Node {
	nd := &Node{Direct: make([]*queue.DestQueue, n)}
	if cfg.Lanes {
		nd.Lanes = make([]*queue.DestQueue, n)
	}
	if cfg.Relay {
		nd.Relay = make([]*queue.FIFO, n)
	}
	if cfg.CumInjected {
		nd.CumInjected = make([]int64, n)
	}
	for j := range nd.Direct {
		nd.Direct[j] = queue.NewDestQueue(cfg.PriorityQueues)
		if nd.Lanes != nil {
			nd.Lanes[j] = queue.NewDestQueue(cfg.PriorityQueues)
		}
		if nd.Relay != nil {
			nd.Relay[j] = &queue.FIFO{}
		}
	}
	return nd
}

// PushRelay enqueues one in-transit segment for final destination dst and
// maintains the aggregate relay counter.
func (nd *Node) PushRelay(dst int, s queue.Segment) {
	nd.Relay[dst].Push(s)
	nd.RelayBytes += s.Bytes
}

// DrainRelay forwards up to max relay bytes for dst that have physically
// arrived by now, maintaining the aggregate counter. It returns the bytes
// taken.
func (nd *Node) DrainRelay(dst int, max int64, now sim.Time, emit func(f *flows.Flow, n int64)) int64 {
	taken := nd.Relay[dst].TakeReady(max, now, emit)
	nd.RelayBytes -= taken
	return taken
}

// RelayHeadroom returns how many more relay bytes the node accepts under
// the given aggregate cap.
func (nd *Node) RelayHeadroom(cap int64) int64 { return cap - nd.RelayBytes }

// CheckRelayCounter asserts the aggregate counter matches the FIFO
// contents (per-round invariant of relay-carrying control planes).
func (nd *Node) CheckRelayCounter() {
	if nd.Relay == nil {
		return
	}
	var sum int64
	for _, q := range nd.Relay {
		sum += q.Bytes()
	}
	if sum != nd.RelayBytes {
		panic(fmt.Sprintf("fabric: relay accounting drift: FIFOs hold %d, counter says %d", sum, nd.RelayBytes))
	}
}
