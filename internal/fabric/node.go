package fabric

import (
	"fmt"

	"negotiator/internal/flows"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
)

// Node is one ToR's data-plane state: the queues bytes wait in and the
// loss records awaiting failure detection. Control-plane state (scheduling
// mailboxes, matches, relay plans) stays with the control plane, keyed by
// the same ToR index.
//
// Queue sets are contiguous value slabs (one allocation per set, see
// queue.NewSlab) shadowed by the dense QueuedBytes array and the
// per-class occupancy indexes. Slabs materialize LAZILY: a fresh node
// owns no queue memory at all, and each class (Direct with its shadow
// and index, Lanes, Relay) allocates on the first push into it — so a
// fabric's footprint scales with the nodes (and classes) traffic
// actually occupies, not with topology size. Every push happens in a
// serial phase (arrival admission, loss requeue, the engines' serial
// merges), so materialization never races with the parallel phases'
// reads, and an unmaterialized class reads as empty/zero everywhere
// (nil slab, zero aggregate, empty occupancy index).
//
// Engines may READ materialized slabs freely
// (Bytes/Empty/HeadDst/WeightedHoL/...) but must tolerate nil slabs on
// nodes they merely probe (use the *QueuedBytes/HeadReady accessors
// below, or check the slab). Every MUTATION must go through the
// Push*/Take*/Drain* choke points, which keep the shadow, the aggregates
// and the indexes exact — the occupancy invariant engines assert under
// CheckInvariants (Core.CheckOccupancy).
type Node struct {
	// Direct holds data per final destination: the NegotiaToR VOQs, the
	// baseline's direct queues, the hybrid's elephant queues.
	Direct []queue.DestQueue
	// Lanes is the optional secondary VOQ set: per-intermediate VLB spray
	// lanes for the baseline, per-destination mice queues for the hybrid.
	Lanes []queue.DestQueue
	// Relay holds in-transit data per final destination (second-hop
	// virtual output queues); RelayBytes is its single aggregate counter,
	// maintained exclusively by PushRelay/DrainRelay below so no engine
	// tallies it in two places.
	Relay      []queue.FIFO
	RelayBytes int64
	// DirectBytes and LanesBytes are the per-class aggregate byte
	// counters (RelayBytes' counterparts), maintained by the choke
	// points: an engine skips a whole node's per-port round work with one
	// O(1) read instead of scanning its occupancy words.
	DirectBytes int64
	LanesBytes  int64
	// QueuedBytes shadows Direct[j].Bytes() in a dense array, so matcher
	// demand views read 8-byte-strided memory instead of queue structs.
	QueuedBytes []int64
	// DirectOcc, LanesOcc and RelayOcc index the non-empty entries of the
	// corresponding queue set; per-round sweeps iterate them in ascending
	// destination order, making round cost O(active), not O(N).
	DirectOcc, LanesOcc, RelayOcc OccSet
	// CumInjected is the optional cumulative injected-bytes table per
	// destination (stateful matcher view).
	CumInjected []int64
	// SprayPtr is a rotating destination pointer for slot-time spray
	// disciplines.
	SprayPtr int
	// Losses are bytes destroyed by failures, awaiting detection and
	// source requeue.
	Losses []Loss

	// demandVer counts mutations of the node's direct demand (every push
	// into or take from the Direct set). Matcher request caches compare it
	// to decide whether a source's cached emissions can be replayed; a
	// round that neither pushes nor takes leaves it untouched, so the
	// comparison alone proves the demand row unchanged.
	demandVer int64

	// actDirect/actLanes/actRelay point at the owning shard's active-node
	// sets, with actBit the node's shard-local bit. The choke points flip
	// the bit exactly on the per-class aggregate's 0<->nonzero transitions.
	actDirect, actLanes, actRelay *OccSet
	actBit                        int

	// spec remembers the topology size and class configuration the lazy
	// slabs materialize to (shared by every node of a core).
	spec *nodeSpec
	// pool recycles segment arrays fabric-wide (the core's; see
	// queue.SegPool for why it may be unsynchronised).
	pool *queue.SegPool
}

// nodeSpec is the shared recipe lazy materialization follows: the
// per-class slab sizes and options of Config, captured once per core.
type nodeSpec struct {
	n           int
	priority    bool
	lanes       bool
	relay       bool
	cumInjected bool
}

// RequeueClass selects how Core.RequeueDetectedLosses returns a detected
// loss to the recording node's queues — each control plane records losses
// in the class whose queue set its discipline actually serves.
type RequeueClass uint8

const (
	// RequeueDirect rewinds the flow's sent cursor and re-enqueues into
	// the recording node's direct VOQ for Dst — the NegotiaToR semantics
	// (and the zero value, so plain RecordLoss keeps them).
	RequeueDirect RequeueClass = iota
	// RequeueLane rewinds the sent cursor and re-enqueues into lane Via
	// (a VLB spray lane, the hybrid's mice queue): disciplines whose
	// sources never serve the direct set must not strand bytes there.
	RequeueLane
	// RequeueRelay re-enqueues the bytes into the recording node's relay
	// FIFO for Dst without rewinding the flow: second-hop bytes were
	// already noted sent at their first hop, and relay delivery does not
	// note them again.
	RequeueRelay
)

// Loss books one run of failure-destroyed bytes: flow, destination, flow
// offset, byte count, destruction time and how to requeue on detection.
type Loss struct {
	F     *flows.Flow
	Dst   int
	Off   int64
	N     int64
	At    sim.Time
	Class RequeueClass
	Via   int32 // lane index for RequeueLane
}

func newNode(spec *nodeSpec, pool *queue.SegPool) *Node {
	return &Node{spec: spec, pool: pool}
}

// materializeDirect allocates the direct VOQ slab with its QueuedBytes
// shadow, occupancy index and (when configured) the cumulative-injected
// table. Called from the push choke points on first use; pushes happen
// only in serial phases, so growth never races with parallel reads.
func (nd *Node) materializeDirect() {
	nd.Direct = queue.NewSlab(nd.spec.n, nd.spec.priority)
	nd.QueuedBytes = make([]int64, nd.spec.n)
	nd.DirectOcc = newOccSet(nd.spec.n)
	if nd.spec.cumInjected {
		nd.CumInjected = make([]int64, nd.spec.n)
	}
}

// materializeLanes allocates the secondary VOQ slab and its index.
func (nd *Node) materializeLanes() {
	nd.Lanes = queue.NewSlab(nd.spec.n, nd.spec.priority)
	nd.LanesOcc = newOccSet(nd.spec.n)
}

// materializeRelay allocates the relay FIFO slab and its index.
func (nd *Node) materializeRelay() {
	nd.Relay = make([]queue.FIFO, nd.spec.n)
	nd.RelayOcc = newOccSet(nd.spec.n)
}

// Materialize eagerly allocates every class the node's configuration
// enables, as pre-PR-5 construction did. Tests use it to prove lazy and
// eager fabrics produce byte-identical results.
func (nd *Node) Materialize() {
	if nd.Direct == nil {
		nd.materializeDirect()
	}
	if nd.spec.lanes && nd.Lanes == nil {
		nd.materializeLanes()
	}
	if nd.spec.relay && nd.Relay == nil {
		nd.materializeRelay()
	}
}

// RelayEnabled reports whether the node's configuration carries relay
// FIFOs (whether or not they have materialized yet).
func (nd *Node) RelayEnabled() bool { return nd.spec.relay }

// PushDirect enqueues all bytes of flow f for destination dst at time now.
func (nd *Node) PushDirect(dst int, f *flows.Flow, at sim.Time) {
	nd.PushDirectBytes(dst, f, f.Size, 0, at)
}

// PushDirectBytes enqueues n bytes of f (first byte at flow offset off)
// for dst, maintaining the QueuedBytes shadow and the occupancy index.
func (nd *Node) PushDirectBytes(dst int, f *flows.Flow, n, off int64, at sim.Time) {
	if n <= 0 {
		return
	}
	if nd.Direct == nil {
		nd.materializeDirect()
	}
	nd.Direct[dst].PushBytesPool(nd.pool, f, n, off, at)
	nd.QueuedBytes[dst] += n
	if nd.DirectBytes == 0 && nd.actDirect != nil {
		nd.actDirect.Set(nd.actBit)
	}
	nd.DirectBytes += n
	nd.DirectOcc.Set(dst)
	nd.demandVer++
}

// TakeDirect removes up to max bytes from the dst VOQ (priorities in
// order, FIFO within each), returning the bytes taken.
func (nd *Node) TakeDirect(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	if nd.Direct == nil {
		return 0
	}
	taken := nd.Direct[dst].Take(max, emit)
	if taken > 0 {
		if nd.DirectBytes -= taken; nd.DirectBytes == 0 && nd.actDirect != nil {
			nd.actDirect.Clear(nd.actBit)
		}
		if nd.QueuedBytes[dst] -= taken; nd.QueuedBytes[dst] == 0 {
			nd.DirectOcc.Clear(dst)
		}
		nd.demandVer++
	}
	return taken
}

// TakeDirectLowest removes up to max bytes from the dst VOQ's
// lowest-priority (elephant) class only — the selective relay's first-hop
// source drain.
func (nd *Node) TakeDirectLowest(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	if nd.Direct == nil {
		return 0
	}
	taken := nd.Direct[dst].TakeLowestOnly(max, emit)
	if taken > 0 {
		if nd.DirectBytes -= taken; nd.DirectBytes == 0 && nd.actDirect != nil {
			nd.actDirect.Clear(nd.actBit)
		}
		if nd.QueuedBytes[dst] -= taken; nd.QueuedBytes[dst] == 0 {
			nd.DirectOcc.Clear(dst)
		}
		nd.demandVer++
	}
	return taken
}

// PushLane enqueues all bytes of flow f into lane dst at time now.
func (nd *Node) PushLane(dst int, f *flows.Flow, at sim.Time) {
	nd.PushLaneBytes(dst, f, f.Size, 0, at)
}

// PushLaneBytes enqueues n bytes of f (offset off) into lane dst.
func (nd *Node) PushLaneBytes(dst int, f *flows.Flow, n, off int64, at sim.Time) {
	if n <= 0 {
		return
	}
	if nd.Lanes == nil {
		nd.materializeLanes()
	}
	nd.Lanes[dst].PushBytesPool(nd.pool, f, n, off, at)
	if nd.LanesBytes == 0 && nd.actLanes != nil {
		nd.actLanes.Set(nd.actBit)
	}
	nd.LanesBytes += n
	nd.LanesOcc.Set(dst)
}

// TakeLane removes up to max bytes from lane dst.
func (nd *Node) TakeLane(dst int, max int64, emit func(f *flows.Flow, n int64)) int64 {
	if nd.Lanes == nil {
		return 0
	}
	taken := nd.Lanes[dst].Take(max, emit)
	if taken > 0 {
		if nd.LanesBytes -= taken; nd.LanesBytes == 0 && nd.actLanes != nil {
			nd.actLanes.Clear(nd.actBit)
		}
		if nd.Lanes[dst].Empty() {
			nd.LanesOcc.Clear(dst)
		}
	}
	return taken
}

// TakeLaneHeadCell removes up to max bytes for a single destination from
// lane dst's head (see queue.DestQueue.TakeHeadCell), returning the
// destination served and the bytes taken.
func (nd *Node) TakeLaneHeadCell(dst int, max int64, emit func(f *flows.Flow, n int64)) (int, int64) {
	if nd.Lanes == nil {
		return -1, 0
	}
	d, taken := nd.Lanes[dst].TakeHeadCell(max, emit)
	if taken > 0 {
		if nd.LanesBytes -= taken; nd.LanesBytes == 0 && nd.actLanes != nil {
			nd.actLanes.Clear(nd.actBit)
		}
		if nd.Lanes[dst].Empty() {
			nd.LanesOcc.Clear(dst)
		}
	}
	return d, taken
}

// PushRelay enqueues one in-transit segment for final destination dst and
// maintains the aggregate relay counter and the occupancy index.
func (nd *Node) PushRelay(dst int, s queue.Segment) {
	if s.Bytes <= 0 {
		return
	}
	if nd.Relay == nil {
		nd.materializeRelay()
	}
	nd.Relay[dst].PushPool(nd.pool, s)
	if nd.RelayBytes == 0 && nd.actRelay != nil {
		nd.actRelay.Set(nd.actBit)
	}
	nd.RelayBytes += s.Bytes
	nd.RelayOcc.Set(dst)
}

// DrainRelay forwards up to max relay bytes for dst that have physically
// arrived by now, maintaining the aggregate counter. It returns the bytes
// taken.
func (nd *Node) DrainRelay(dst int, max int64, now sim.Time, emit func(f *flows.Flow, n int64)) int64 {
	if nd.Relay == nil {
		return 0
	}
	taken := nd.Relay[dst].TakeReady(max, now, emit)
	if taken > 0 {
		if nd.RelayBytes -= taken; nd.RelayBytes == 0 && nd.actRelay != nil {
			nd.actRelay.Clear(nd.actBit)
		}
		if nd.Relay[dst].Empty() {
			nd.RelayOcc.Clear(dst)
		}
	}
	return taken
}

// NextDirectOrRelay returns the smallest destination strictly greater
// than after with direct backlog or queued relay data, or -1 — the
// ascending sweep order of the predefined transmission phase.
func (nd *Node) NextDirectOrRelay(after int) int {
	if nd.Relay == nil {
		return nd.DirectOcc.Next(after)
	}
	return nextUnion(&nd.DirectOcc, &nd.RelayOcc, after)
}

// RelayHeadroom returns how many more relay bytes the node accepts under
// the given aggregate cap.
func (nd *Node) RelayHeadroom(cap int64) int64 { return cap - nd.RelayBytes }

// RelayQueuedBytes reports the relay backlog for dst, zero when the relay
// slab has not materialized — the nil-safe read engines use to probe
// OTHER nodes (a spray source checking an intermediate's VOQ headroom).
func (nd *Node) RelayQueuedBytes(dst int) int64 {
	if nd.Relay == nil {
		return 0
	}
	return nd.Relay[dst].Bytes()
}

// DirectQueuedBytes reports the direct backlog for dst, zero when the
// direct slab has not materialized.
func (nd *Node) DirectQueuedBytes(dst int) int64 {
	if nd.QueuedBytes == nil {
		return 0
	}
	return nd.QueuedBytes[dst]
}

// DemandVer returns the node's direct-demand mutation counter. Two equal
// readings bracket a span with no push into and no take from the Direct
// set — the condition under which a matcher's cached request emissions
// for this source are still exact.
func (nd *Node) DemandVer() int64 { return nd.demandVer }

// CheckRelayCounter asserts the aggregate counter matches the FIFO
// contents (per-round invariant of relay-carrying control planes).
func (nd *Node) CheckRelayCounter() {
	if nd.Relay == nil {
		return
	}
	var sum int64
	for j := range nd.Relay {
		sum += nd.Relay[j].Bytes()
	}
	if sum != nd.RelayBytes {
		panic(fmt.Sprintf("fabric: relay accounting drift: FIFOs hold %d, counter says %d", sum, nd.RelayBytes))
	}
}

// checkOccupancy asserts the QueuedBytes shadow, the per-queue and
// per-class aggregate counters and all three occupancy indexes exactly
// mirror queue contents — including that unmaterialized classes report
// empty/zero everywhere (nil slab, nil shadow, zero aggregate).
func (nd *Node) checkOccupancy(tor int) {
	if nd.Direct == nil {
		if nd.DirectBytes != 0 || nd.QueuedBytes != nil || nd.DirectOcc.words != nil || nd.CumInjected != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized direct slab with residue (bytes=%d)", tor, nd.DirectBytes))
		}
	}
	if nd.Lanes == nil {
		if nd.LanesBytes != 0 || nd.LanesOcc.words != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized lane slab with residue (bytes=%d)", tor, nd.LanesBytes))
		}
	}
	if nd.Relay == nil {
		if nd.RelayBytes != 0 || nd.RelayOcc.words != nil {
			panic(fmt.Sprintf("fabric: tor %d unmaterialized relay slab with residue (bytes=%d)", tor, nd.RelayBytes))
		}
	}
	var direct, lanes int64
	for j := range nd.Direct {
		b := nd.Direct[j].Bytes()
		if r := nd.Direct[j].Recount(); r != b {
			panic(fmt.Sprintf("fabric: tor %d direct[%d] aggregate %d != recount %d", tor, j, b, r))
		}
		if nd.QueuedBytes[j] != b {
			panic(fmt.Sprintf("fabric: tor %d QueuedBytes[%d] = %d, queue holds %d", tor, j, nd.QueuedBytes[j], b))
		}
		if nd.DirectOcc.Has(j) != (b > 0) {
			panic(fmt.Sprintf("fabric: tor %d direct occupancy[%d] = %v, queue holds %d", tor, j, nd.DirectOcc.Has(j), b))
		}
		direct += b
	}
	for j := range nd.Lanes {
		b := nd.Lanes[j].Bytes()
		if r := nd.Lanes[j].Recount(); r != b {
			panic(fmt.Sprintf("fabric: tor %d lane[%d] aggregate %d != recount %d", tor, j, b, r))
		}
		if nd.LanesOcc.Has(j) != (b > 0) {
			panic(fmt.Sprintf("fabric: tor %d lane occupancy[%d] = %v, queue holds %d", tor, j, nd.LanesOcc.Has(j), b))
		}
		lanes += b
	}
	for j := range nd.Relay {
		if nd.RelayOcc.Has(j) != !nd.Relay[j].Empty() {
			panic(fmt.Sprintf("fabric: tor %d relay occupancy[%d] = %v, queue holds %d", tor, j, nd.RelayOcc.Has(j), nd.Relay[j].Bytes()))
		}
	}
	if direct != nd.DirectBytes {
		panic(fmt.Sprintf("fabric: tor %d DirectBytes = %d, queues hold %d", tor, nd.DirectBytes, direct))
	}
	if lanes != nd.LanesBytes {
		panic(fmt.Sprintf("fabric: tor %d LanesBytes = %d, queues hold %d", tor, nd.LanesBytes, lanes))
	}
}
