// Package fabric is the control-plane-agnostic core shared by every
// engine: it owns the physical substrate and the bookkeeping that is
// identical no matter how transmissions are decided — topology, per-ToR
// node state (VOQs, spray lanes, relay FIFOs, failure-loss records), the
// workload pump, the flow ledger and tagged-event accounting, the
// shard/gang scaffolding with per-shard metric accumulators and their
// deterministic serial merge, and the round-synchronous run loop.
//
// A control plane — NegotiaToR's on-demand negotiation, the
// traffic-oblivious round-robin/VLB baseline, the mice/elephant hybrid —
// plugs in through the small ControlPlane interface: it decides, per
// round, which bytes move where, reading slot-start snapshots and writing
// through the core's shard-local accounting (Shard.Deliver,
// Shard.RecordLoss, Node relay bookkeeping). Everything a new baseline
// or scenario needs beyond its decision rule already lives here, which is
// what makes an additional engine a single-file change.
//
// The determinism contract carries over from the engines the core was
// extracted from: shards are contiguous ascending ToR ranges executed
// between barriers, per-shard accumulators merge order-independently, and
// any cross-shard effect is deferred into per-shard buffers applied in
// shard (= ToR-ascending) order.
package fabric

import (
	"fmt"
	"runtime"

	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/metrics"
	"negotiator/internal/par"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// ControlPlane is one scheduling discipline driving the shared core: the
// decide-and-transmit hook the run loop invokes once per round. Round
// executes one scheduling round (a NegotiaToR epoch, one baseline
// timeslot, ...) starting at the core's current time: it pumps arrivals
// (Core.Inject at the point in the round its semantics require), runs its
// phases over the shards via Core.ParDo, and books every effect through
// the core's shard-local accounting. The core then folds the per-shard
// deltas, advances time by RoundLen and increments the round counter.
type ControlPlane interface {
	// Name identifies the control plane in output and CLIs.
	Name() string
	// RoundLen is the simulated duration of one round.
	RoundLen() sim.Duration
	// Round executes one round at Core.Now.
	Round()
}

// RoundChecker is optionally implemented by control planes with
// per-round invariants (byte conservation, match conflict-freedom); the
// core calls it after each round's serial merge.
type RoundChecker interface {
	CheckRound()
}

// TagStat tracks one tagged application event (e.g. an incast): its
// start, the completion time of its last flow, and flow counts.
type TagStat struct {
	Start sim.Time
	End   sim.Time
	Flows int
	Done  int
}

// Config assembles a core. Workers is the EFFECTIVE shard parallelism:
// control planes resolve their own clamping rules (sequential-only
// features, matcher shardability) before building the core.
type Config struct {
	// Topology is the optical fabric layout (required).
	Topology topo.Topology
	// HostRate is the per-ToR host aggregate bandwidth, for goodput
	// normalisation and receiver-buffer drain modelling.
	HostRate sim.Rate
	// Workers is the effective shard count (clamped to the ToR count;
	// values < 1 mean sequential).
	Workers int
	// Seed seeds the core RNG (ignored when RNG is set).
	Seed int64
	// RNG optionally supplies the randomness stream directly, for control
	// planes that must interleave their own draws with the core's (the
	// stream is shared, so ownership passes to the core).
	RNG *sim.RNG
	// PriorityQueues enables PIAS-style multi-level queues in every
	// DestQueue the core allocates.
	PriorityQueues bool
	// Lanes allocates the per-ToR secondary VOQ set (VLB spray lanes,
	// hybrid mice queues).
	Lanes bool
	// Relay allocates the per-ToR in-transit relay FIFOs.
	Relay bool
	// CumInjected tracks cumulative injected bytes per destination
	// (consumed by the stateful matcher's queue view).
	CumInjected bool
	// OnDeliver, when set, observes every payload delivery at its
	// destination.
	OnDeliver func(dst int, at sim.Time, n int64)
	// TrackReceiverBuffers models receiver-side ToR-to-host drain buffers
	// and reports their peak occupancy.
	TrackReceiverBuffers bool
	// Failures optionally injects link failures: the core owns the actual
	// and known link-state snapshots, advances them by event-transition
	// cursor at each round start, and requeues detected losses before the
	// control plane's phases run. Planes read the snapshots through
	// ActualFailures/KnownFailures — known state excludes links from
	// scheduling, actual state destroys bits at transmission choke points.
	Failures *failure.Plan
	// DisableEventSkip forces the run loop to tick every round even when
	// the fabric is provably idle and the plane implements IdlePlane —
	// the cross-check knob skip-on == skip-off equality tests flip.
	DisableEventSkip bool
}

// Core is the shared fabric substrate. Exported fields are the stable
// surface control planes program against; the run loop, workload pump and
// merge bookkeeping stay internal.
type Core struct {
	Top   topo.Topology
	N, S  int
	Nodes []*Node
	// Shards are the contiguous ToR ranges with their metric
	// accumulators; ShardOf maps a ToR to its owning shard.
	Shards  []*Shard
	ShardOf []int32
	Workers int
	// Ledger tracks fabric-wide byte conservation; Lost accumulates
	// failure-destroyed bytes (before requeue) for reporting.
	Ledger flows.Ledger
	Lost   int64
	// Tags tracks tagged application events.
	Tags map[int]*TagStat
	// RNG is the core randomness stream (spray decisions, matcher seeds).
	RNG *sim.RNG
	// RxBuffers are the optional receiver-side drain buffers (per dst).
	RxBuffers []*metrics.DrainBuffer
	// OnDeliver is the optional delivery observer (applied by
	// Shard.Deliver; sequential-only by the control planes' clamping).
	OnDeliver func(dst int, at sim.Time, n int64)

	plane    ControlPlane
	check    RoundChecker
	roundLen sim.Duration
	gang     *par.Gang
	now      sim.Time
	rounds   int64

	// Event-skip state: the plane's optional idle capability, the
	// configuration override, and the fast-forwarded round count (see
	// skip.go).
	idle          IdlePlane
	skipOff       bool
	skippedRounds int64

	work        workload.Generator
	pending     workload.Arrival
	havePending bool
	genDone     bool
	flowSeq     int64
	// nextCalls counts Generator.Next invocations since SetWorkload.
	// Generators are deterministic from construction but opaque, so
	// checkpoints store this count and restore replays exactly that many
	// draws on an identically constructed generator (see snapshot.go).
	nextCalls int64
	admit     func(f *flows.Flow, at sim.Time)

	// Failure subsystem: the plan, the two cursor-maintained snapshots
	// (actual link state, and the detection-lagged state the fabric
	// knows), and the cumulative requeued-byte counter. Quiet epochs cost
	// one O(1) cursor probe each, not a dense state rebuild.
	failPlan  *failure.Plan
	actualCur *failure.Cursor
	knownCur  *failure.Cursor
	requeued  int64

	// pendingLosses counts loss records outstanding across all nodes
	// (folded from the per-shard deltas), so failure-free rounds skip the
	// requeue walk entirely.
	pendingLosses int64
	// flowPool recycles completed flow records for the arrival pump: churn
	// workloads stop paying one allocation per flow once completions keep
	// pace with arrivals. segPool does the same for queue segment arrays
	// (growth happens only in serial phases; see queue.SegPool).
	flowPool []*flows.Flow
	segPool  queue.SegPool
	// pagePool recycles released queue pages (see queue.PagePool); like
	// segPool it is unsynchronised — pages are taken at push-time
	// materialization (serial phases) and returned by the serial merge.
	pagePool queue.PagePool
}

// New builds a core. Bind must be called with the control plane before
// the run loop is used.
func New(cfg Config) (*Core, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("fabric: nil topology")
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	c := &Core{
		Top:       cfg.Topology,
		N:         cfg.Topology.N(),
		S:         cfg.Topology.Ports(),
		Tags:      make(map[int]*TagStat),
		RNG:       cfg.RNG,
		OnDeliver: cfg.OnDeliver,
	}
	if c.RNG == nil {
		c.RNG = sim.NewRNG(cfg.Seed)
	}
	// Nodes are lazy: construction allocates only the node headers and
	// the shared slab spec; queue slabs, shadows and occupancy indexes
	// materialize per node (per class) on first push, so a mostly-idle
	// 4096-ToR fabric costs O(active nodes), not O(N²) FIFOs.
	spec := &nodeSpec{
		n:           c.N,
		priority:    cfg.PriorityQueues,
		lanes:       cfg.Lanes,
		relay:       cfg.Relay,
		cumInjected: cfg.CumInjected,
	}
	c.Nodes = make([]*Node, c.N)
	for i := range c.Nodes {
		c.Nodes[i] = newNode(spec, &c.segPool, &c.pagePool)
	}
	c.Workers = cfg.Workers
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Workers > c.N {
		c.Workers = c.N
	}
	c.ShardOf = make([]int32, c.N)
	c.Shards = make([]*Shard, c.Workers)
	for k := 0; k < c.Workers; k++ {
		lo, hi := par.Split(c.N, c.Workers, k)
		sh := &Shard{c: c, K: k, Lo: lo, Hi: hi, Goodput: metrics.NewGoodput(c.N)}
		sh.ActiveDirect = newOccSet(hi - lo)
		sh.ActiveLanes = newOccSet(hi - lo)
		sh.ActiveRelay = newOccSet(hi - lo)
		c.Shards[k] = sh
		for i := lo; i < hi; i++ {
			c.ShardOf[i] = int32(k)
			nd := c.Nodes[i]
			nd.actDirect = &sh.ActiveDirect
			nd.actLanes = &sh.ActiveLanes
			nd.actRelay = &sh.ActiveRelay
			nd.actBit = i - lo
			nd.id = int32(i)
			nd.relq = &sh.relq
			nd.relDst = &sh.relDst
		}
	}
	c.skipOff = cfg.DisableEventSkip
	if c.Workers > 1 {
		c.gang = par.NewGang(c.Workers)
		// Cores have no Close; release the gang's background workers when
		// the core becomes unreachable (the gang holds no core reference,
		// so the cleanup can fire).
		runtime.AddCleanup(c, func(g *par.Gang) { g.Close() }, c.gang)
	}
	if cfg.TrackReceiverBuffers {
		c.RxBuffers = make([]*metrics.DrainBuffer, c.N)
		for i := range c.RxBuffers {
			c.RxBuffers[i] = metrics.NewDrainBuffer(cfg.HostRate)
		}
	}
	if cfg.Failures != nil {
		c.failPlan = cfg.Failures
		c.actualCur = failure.NewCursor(cfg.Failures, c.N, c.S)
		c.knownCur = failure.NewCursor(cfg.Failures, c.N, c.S)
	}
	return c, nil
}

// Failures returns the active failure plan, nil without fault injection.
func (c *Core) Failures() *failure.Plan { return c.failPlan }

// ActualFailures returns the live actual link-state snapshot (nil without
// a plan). The pointer is stable for the core's lifetime; the core
// advances it once per round, before the control plane's phases.
func (c *Core) ActualFailures() *failure.State {
	if c.actualCur == nil {
		return nil
	}
	return c.actualCur.State()
}

// KnownFailures returns the detection-lagged link-state snapshot the
// fabric schedules against (nil without a plan). Stable pointer, like
// ActualFailures.
func (c *Core) KnownFailures() *failure.State {
	if c.knownCur == nil {
		return nil
	}
	return c.knownCur.State()
}

// Requeued returns the cumulative bytes returned to source queues by
// detected-loss requeue.
func (c *Core) Requeued() int64 { return c.requeued }

// advanceFailures moves both snapshots to the round start (known state
// lagging by the plan's detection delay) and requeues every loss whose
// detection delay has elapsed. Rounds with no transitions and no
// outstanding losses do O(1) work.
func (c *Core) advanceFailures(t sim.Time) {
	c.actualCur.AdvanceTo(t)
	c.knownCur.AdvanceTo(t.Add(-c.failPlan.DetectDelay))
	c.RequeueDetectedLosses(t, c.failPlan.DetectDelay)
}

// Bind attaches the control plane and its arrival-admission hook (which
// places an injected flow into the source node's queues). RoundLen is
// captured once: a plane's round duration is fixed for the run.
func (c *Core) Bind(plane ControlPlane, admit func(f *flows.Flow, at sim.Time)) {
	c.plane = plane
	c.roundLen = plane.RoundLen()
	c.admit = admit
	c.check, _ = plane.(RoundChecker)
	c.idle, _ = plane.(IdlePlane)
}

// SetWorkload attaches (or replaces) the arrival stream; replacing one
// mid-run restarts the pump on the new generator, dropping any arrival
// still buffered from the previous one.
func (c *Core) SetWorkload(g workload.Generator) {
	c.work = g
	c.genDone = false
	c.havePending = false
	c.nextCalls = 0
}

// Now returns the current simulated time (start of the next round).
func (c *Core) Now() sim.Time { return c.now }

// Rounds returns the number of completed rounds.
func (c *Core) Rounds() int64 { return c.rounds }

// WorkloadDone reports whether the arrival generator is exhausted.
func (c *Core) WorkloadDone() bool { return c.genDone }

// ParDo runs one barrier phase: fn(k) for every shard k, concurrently on
// the gang when parallel, inline in shard order when sequential.
func (c *Core) ParDo(fn func(k int)) {
	if c.gang != nil {
		c.gang.Do(fn)
		return
	}
	for k := range c.Shards {
		fn(k)
	}
}

// RunRound executes one scheduling round: failure-state advance and
// detected-loss requeue (when a plan is configured), the control plane's
// phases, then the deterministic serial merge of per-shard deltas, the
// optional invariant check, and the time/round-counter advance.
func (c *Core) RunRound() {
	if c.failPlan != nil {
		c.advanceFailures(c.now)
	}
	c.plane.Round()
	c.mergeRound()
	if c.check != nil {
		c.check.CheckRound()
	}
	c.rounds++
	c.now = c.now.Add(c.roundLen)
}

// Run advances the simulation until at least d of simulated time has
// elapsed (whole rounds). Provably-idle spans are fast-forwarded when the
// plane supports it (see skip.go); the remaining-round budget bounds each
// jump, so the final Now and round count match the ticking loop exactly.
func (c *Core) Run(d sim.Duration) {
	end := sim.Time(d)
	rl := int64(c.roundLen)
	for c.now < end {
		if c.skipQuiet((int64(end)-int64(c.now)+rl-1)/rl) > 0 {
			continue
		}
		c.RunRound()
	}
}

// RunRounds advances exactly k rounds (skipped rounds count).
func (c *Core) RunRounds(k int) {
	for done := int64(0); done < int64(k); {
		if s := c.skipQuiet(int64(k) - done); s > 0 {
			done += s
			continue
		}
		c.RunRound()
		done++
	}
}

// Drain keeps running until all injected traffic is delivered or
// maxRounds pass, returning true if fully drained. The workload must be
// exhausted first. The final check matches the loop's condition: an
// arrival still buffered in the pump (or a non-exhausted generator) means
// traffic remains even when the ledger reads zero.
func (c *Core) Drain(maxRounds int) bool {
	for i := int64(0); i < int64(maxRounds); {
		if c.Ledger.Queued() == 0 && c.genDone && !c.havePending {
			return true
		}
		if s := c.skipQuiet(int64(maxRounds) - i); s > 0 {
			i += s
			continue
		}
		c.RunRound()
		i++
	}
	return c.Ledger.Queued() == 0 && c.genDone && !c.havePending
}

// mergeRound folds the per-shard deltas in shard order. Every fold is
// commutative (sums, max), so the result is worker-count-independent.
func (c *Core) mergeRound() {
	for _, sh := range c.Shards {
		c.Ledger.Delivered += sh.Delivered
		sh.Delivered = 0
		c.Ledger.Lost += sh.LostDelta
		c.Lost += sh.LostDelta
		sh.LostDelta = 0
		c.pendingLosses += sh.LossRecs
		sh.LossRecs = 0
		for _, f := range sh.Tagged {
			ts := c.Tags[f.Tag]
			ts.Done += int(f.Members())
			if f.Completed() > ts.End {
				ts.End = f.Completed()
			}
		}
		c.flowPool = append(c.flowPool, sh.Tagged...)
		sh.Tagged = sh.Tagged[:0]
		c.flowPool = append(c.flowPool, sh.Freed...)
		sh.Freed = sh.Freed[:0]
		c.releasePages(sh)
	}
}

// pageReleaseAge is how many rounds an empty-page candidate must sit
// unrefuted before its page returns to the pool. The hysteresis keeps
// churning pages (emptied and refilled within a few rounds — the page's
// touch version moves, refuting the candidate) permanently materialized,
// so steady state never pays a release/re-materialize cycle; pages the
// workload has abandoned are reclaimed a few rounds after their last
// byte drains.
const pageReleaseAge = 8

// releasePages stamps the shard's new empty-page candidates with the
// current round, then applies every candidate old enough: the page is
// released only if it is still empty AND untouched since the candidate
// was recorded (queue.DestSlab.ReleaseIfEmpty). Runs in the serial
// merge, the only place pages may be taken from or returned to the
// unsynchronised pool besides serial-phase materialization.
func (c *Core) releasePages(sh *Shard) {
	q := &sh.relq
	for i := q.stamped; i < len(q.refs); i++ {
		q.refs[i].round = c.rounds
	}
	q.stamped = len(q.refs)
	for q.head < len(q.refs) && q.refs[q.head].round+pageReleaseAge <= c.rounds {
		ref := q.refs[q.head]
		q.refs[q.head] = pageRef{}
		q.head++
		nd := c.Nodes[ref.tor]
		switch ref.class {
		case classDirect:
			nd.Direct.ReleaseIfEmpty(int(ref.page), ref.ver, &c.pagePool)
		case classLanes:
			nd.Lanes.ReleaseIfEmpty(int(ref.page), ref.ver, &c.pagePool)
		case classRelay:
			nd.Relay.ReleaseIfEmpty(int(ref.page), ref.ver, &c.pagePool)
		}
	}
	if q.head > 64 && q.head*2 >= len(q.refs) {
		n := copy(q.refs, q.refs[q.head:])
		q.refs = q.refs[:n]
		q.stamped -= q.head
		q.head = 0
	}
}

// newFlow pops a recycled flow record or allocates a fresh one. Completed
// flows reach the pool through the round merge; Inject overwrites every
// field at reuse, so recycling is invisible to the simulation.
func (c *Core) newFlow() *flows.Flow {
	if k := len(c.flowPool) - 1; k >= 0 {
		f := c.flowPool[k]
		c.flowPool[k] = nil
		c.flowPool = c.flowPool[:k]
		return f
	}
	return &flows.Flow{}
}

// Inject moves all arrivals at or before t through the control plane's
// admission hook into the source queues. Control planes call it at the
// point of their round where arrivals become visible.
func (c *Core) Inject(t sim.Time) {
	if c.work == nil {
		c.genDone = true
		return
	}
	for {
		if !c.havePending {
			c.nextCalls++
			a, ok := c.work.Next()
			if !ok {
				c.genDone = true
				return
			}
			c.pending, c.havePending = a, true
		}
		if c.pending.Time > t {
			return
		}
		a := c.pending
		c.havePending = false
		c.flowSeq++
		f := c.newFlow()
		*f = flows.Flow{ID: c.flowSeq, Src: a.Src, Dst: a.Dst, Size: a.Size, Arrival: a.Time, Tag: a.Tag, Count: a.Count}
		c.admit(f, t)
		c.Ledger.Injected += f.Total()
		if a.Tag != 0 {
			ts := c.Tags[a.Tag]
			if ts == nil {
				ts = &TagStat{Start: a.Time}
				c.Tags[a.Tag] = ts
			}
			ts.Flows += int(f.Members())
			if a.Time < ts.Start {
				ts.Start = a.Time
			}
		}
	}
}

// RequeueDetectedLosses returns failure-destroyed bytes to the recording
// node's queues once the detection delay has elapsed, modelling
// upper-layer retransmission. The loss's requeue class picks the queue
// set (direct VOQ, spray/mice lane, relay FIFO — see RequeueClass).
// Failure-free rounds return immediately on the outstanding-loss counter
// instead of walking every node.
func (c *Core) RequeueDetectedLosses(now sim.Time, detect sim.Duration) {
	if c.pendingLosses == 0 {
		return
	}
	for _, nd := range c.Nodes {
		if len(nd.Losses) == 0 {
			continue
		}
		kept := nd.Losses[:0]
		for _, l := range nd.Losses {
			if l.At.Add(detect) <= now {
				switch l.Class {
				case RequeueDirect:
					l.F.Unsend(l.N)
					nd.PushDirectBytes(l.Dst, l.F, l.N, l.Off, now)
				case RequeueLane:
					l.F.Unsend(l.N)
					nd.PushLaneBytes(int(l.Via), l.F, l.N, l.Off, now)
				case RequeueRelay:
					// Second-hop bytes were already noted sent at their
					// first hop and relay delivery never re-notes them, so
					// the flow's sent cursor stays put.
					nd.PushRelay(l.Dst, queue.Segment{Flow: l.F, Bytes: l.N, Enqueued: now})
				}
				c.Ledger.Lost -= l.N
				c.requeued += l.N
				c.pendingLosses--
			} else {
				kept = append(kept, l)
			}
		}
		nd.Losses = kept
	}
}

// MergedFCT snapshots the per-shard FCT accumulators into one fresh
// instance (order-independent merge, so the snapshot is identical at any
// worker count and the call is idempotent).
func (c *Core) MergedFCT() *metrics.FCTStats {
	fct := &metrics.FCTStats{}
	for _, sh := range c.Shards {
		fct.Merge(&sh.FCT)
	}
	return fct
}

// MergedGoodput snapshots the per-shard goodput accumulators.
func (c *Core) MergedGoodput() *metrics.Goodput {
	g := metrics.NewGoodput(c.N)
	for _, sh := range c.Shards {
		g.Merge(sh.Goodput)
	}
	return g
}

// PeakReceiverBuffer returns the largest receiver-side backlog across all
// ToRs (zero without TrackReceiverBuffers).
func (c *Core) PeakReceiverBuffer() int64 {
	var peak int64
	for _, b := range c.RxBuffers {
		if p := b.Peak(); p > peak {
			peak = p
		}
	}
	return peak
}

// QueuedInNodes sums every byte sitting in node queues (direct VOQs,
// lanes, relay FIFOs) — the fabric-side figure per-round conservation
// checks compare against the ledger.
func (c *Core) QueuedInNodes() int64 {
	var total int64
	for _, nd := range c.Nodes {
		nd.Direct.ForEachPage(func(_, _ int, qs []queue.DestQueue, _ int64) {
			for j := range qs {
				total += qs[j].Bytes()
			}
		})
		nd.Lanes.ForEachPage(func(_, _ int, qs []queue.DestQueue, _ int64) {
			for j := range qs {
				total += qs[j].Bytes()
			}
		})
		nd.Relay.ForEachPage(func(_, _ int, fs []queue.FIFO, _ int64) {
			for j := range fs {
				total += fs[j].Bytes()
			}
		})
	}
	return total
}

// CheckOccupancy asserts every node's occupancy indexes and per-queue
// and per-page aggregate counters exactly mirror the queue
// contents — the invariant the choke points maintain — and that
// unmaterialized slabs report empty/zero everywhere. Engines run it per
// round under CheckInvariants; it costs O(N²), like the ledger check.
func (c *Core) CheckOccupancy() {
	for i, nd := range c.Nodes {
		nd.checkOccupancy(i)
	}
	// The per-shard active-node sets must exactly mirror the per-class
	// aggregates the node choke points maintain.
	for _, sh := range c.Shards {
		for i := sh.Lo; i < sh.Hi; i++ {
			nd := c.Nodes[i]
			if sh.ActiveDirect.Has(i-sh.Lo) != (nd.DirectBytes > 0) {
				panic(fmt.Sprintf("fabric: shard %d active-direct[%d] = %v, node holds %d", sh.K, i, sh.ActiveDirect.Has(i-sh.Lo), nd.DirectBytes))
			}
			if sh.ActiveLanes.Has(i-sh.Lo) != (nd.LanesBytes > 0) {
				panic(fmt.Sprintf("fabric: shard %d active-lanes[%d] = %v, node holds %d", sh.K, i, sh.ActiveLanes.Has(i-sh.Lo), nd.LanesBytes))
			}
			if sh.ActiveRelay.Has(i-sh.Lo) != (nd.RelayBytes > 0) {
				panic(fmt.Sprintf("fabric: shard %d active-relay[%d] = %v, node holds %d", sh.K, i, sh.ActiveRelay.Has(i-sh.Lo), nd.RelayBytes))
			}
		}
		// The relay-destination index must refcount exactly the per-node
		// relay occupancy bits of the shard's nodes.
		if sh.relDst.refs != nil {
			var members int
			for d := 0; d < c.N; d++ {
				var cnt int32
				for i := sh.Lo; i < sh.Hi; i++ {
					nd := c.Nodes[i]
					if nd.Relay.Materialized() && nd.RelayOcc.Has(d) {
						cnt++
					}
				}
				if sh.relDst.refs[d] != cnt {
					panic(fmt.Sprintf("fabric: shard %d relay-dst refs[%d] = %d, %d nodes hold backlog", sh.K, d, sh.relDst.refs[d], cnt))
				}
				if sh.relDst.occ.Has(d) != (cnt > 0) {
					panic(fmt.Sprintf("fabric: shard %d relay-dst occ[%d] = %v, refs %d", sh.K, d, sh.relDst.occ.Has(d), cnt))
				}
				if cnt > 0 {
					members++
				}
			}
			if members != sh.relDst.count {
				panic(fmt.Sprintf("fabric: shard %d relay-dst count %d, index holds %d members", sh.K, sh.relDst.count, members))
			}
		}
	}
}

// CheckConservation asserts byte conservation under failures, beyond the
// plain ledger identity (injected == delivered + queued + Lost): the
// outstanding loss records must sum to Ledger.Lost and match the
// pending-loss counter, and cumulative destroyed bytes must equal the
// ledger's live losses plus everything requeued — so injected ==
// delivered + queued + Lost − requeued holds with Lost read as the
// cumulative destruction figure (Core.Lost). Failure tests of every
// control plane run it per round.
func (c *Core) CheckConservation() {
	if err := c.Ledger.Check(c.QueuedInNodes()); err != nil {
		panic(err)
	}
	var sum, recs int64
	for _, nd := range c.Nodes {
		for _, l := range nd.Losses {
			sum += l.N
			recs++
		}
	}
	if sum != c.Ledger.Lost {
		panic(fmt.Sprintf("fabric: outstanding loss records hold %d bytes, ledger says %d", sum, c.Ledger.Lost))
	}
	if recs != c.pendingLosses {
		panic(fmt.Sprintf("fabric: %d outstanding loss records, counter says %d", recs, c.pendingLosses))
	}
	if c.Lost != c.Ledger.Lost+c.requeued {
		panic(fmt.Sprintf("fabric: destroyed %d != live lost %d + requeued %d", c.Lost, c.Ledger.Lost, c.requeued))
	}
}

// MaterializeAll eagerly allocates every node's configured slabs, exactly
// as pre-PR-5 construction did. Lazy-vs-eager equivalence tests call it;
// simulations never need to.
func (c *Core) MaterializeAll() {
	for _, nd := range c.Nodes {
		nd.Materialize()
	}
}
