package fabric

import (
	"math"

	"negotiator/internal/sim"
)

// Event-skip: when the fabric is provably idle — no byte queued anywhere,
// no loss record awaiting detection, no arrival buffered before the next
// wake event — ticking rounds one by one is pure overhead: an idle round
// of an IdlePlane mutates nothing, draws no randomness and records no
// metric sample. The run loop therefore jumps the clock and the round
// counter straight to the earliest future event (next workload arrival,
// next failure-cursor transition on either snapshot, or plane-declared
// future work) and resumes ticking there. Because every piece of
// round-derived state (pipeline generation, rotation, batch slot) is
// computed from the round counter rather than incremented per round, the
// landing round proceeds exactly as it would have after ticking through
// the idle span — skip-on == skip-off byte identity is pinned by the
// golden fingerprints and TestEventSkipEquivalence.

// HorizonInfinite is the IdleHorizon of a plane with no self-scheduled
// future work at all: given no new arrivals and no failure transitions,
// none of its future rounds would do anything.
const HorizonInfinite = sim.Time(math.MaxInt64)

// IdlePlane is optionally implemented by control planes whose rounds are
// provable no-ops while the fabric holds no bytes. IdleHorizon reports
// the earliest simulated time at which the plane itself may have work to
// do — in-flight control messages, a pending future-ring match, a relay
// plan — given its current state. Returning any time at or before
// Core.Now declares "not provably idle this round" and disables skipping
// (the conservative default for planes that do not implement the
// interface at all); HorizonInfinite declares no plane-side work ever.
//
// The contract: if IdleHorizon returns T > Now while Ledger.Queued()==0
// and no losses are outstanding, then every round starting before T —
// absent arrivals and failure transitions, which the core bounds
// separately — must leave the plane's observable state (queues, matcher
// state, randomness stream, metric series used in results) exactly as a
// ticked idle round would.
type IdlePlane interface {
	IdleHorizon() sim.Time
}

// SkippedRounds reports how many rounds the run loop fast-forwarded over
// instead of executing. The rounds still count in Rounds() and Now().
func (c *Core) SkippedRounds() int64 { return c.skippedRounds }

// skipQuiet jumps over provably-idle rounds, advancing the clock and the
// round counter without invoking the plane, and returns how many rounds
// were consumed (0 when the next round must execute). maxRounds is the
// caller's remaining round budget: clamping to it keeps Run/RunRounds/
// Drain semantics identical to the ticking loop even when the next event
// lies beyond the caller's horizon.
func (c *Core) skipQuiet(maxRounds int64) int64 {
	if c.idle == nil || c.skipOff || maxRounds <= 0 {
		return 0
	}
	if c.Ledger.Queued() != 0 || c.pendingLosses != 0 {
		return 0
	}
	wake := c.idle.IdleHorizon()
	if wake <= c.now {
		return 0
	}
	// The arrival horizon is the pump's buffered arrival. When none is
	// buffered and the generator is not exhausted, the next arrival time
	// is unknown — tick the round instead: its Inject buffers the next
	// arrival (or exhausts the generator), and skipping resumes after.
	// That costs at most one executed round per idle span and keeps the
	// pump state evolving exactly as in the ticking loop, which is what
	// makes Drain's stopping round identical with skip on and off.
	if !c.genDone && !c.havePending {
		return 0
	}
	if c.havePending && c.pending.Time < wake {
		wake = c.pending.Time
	}
	if c.failPlan != nil {
		// Wake for cursor transitions on both snapshots: the actual cursor
		// flips at the event time, the known (detection-lagged) cursor
		// becomes visible DetectDelay later.
		if at, ok := c.actualCur.NextTransition(); ok && at < wake {
			wake = at
		}
		if at, ok := c.knownCur.NextTransition(); ok {
			if t := at.Add(c.failPlan.DetectDelay); t < wake {
				wake = t
			}
		}
	}
	if wake <= c.now {
		return 0
	}
	// The first round that can observe the wake event is the first round
	// START at or after it; every round starting strictly before is a
	// no-op. now is always a whole number of rounds, so the skip count is
	// the ceiling division of the gap (guarding the HorizonInfinite case
	// against overflow by clamping through the budget first).
	rl := int64(c.roundLen)
	delta := int64(wake) - int64(c.now)
	var k int64
	if delta/rl >= maxRounds {
		k = maxRounds
	} else {
		k = (delta + rl - 1) / rl
	}
	if k <= 0 {
		return 0
	}
	c.rounds += k
	c.now = c.now.Add(sim.Duration(k) * c.roundLen)
	c.skippedRounds += k
	return k
}
