package negotiator

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// steadyEngine builds a paper-scale engine saturated with long-lived
// elephant flows (one huge flow per ToR pair) and runs it past the
// pipeline fill and all warm-up slice growth. After the workload generator
// is exhausted, each epoch exercises the full hot path — REQUEST, GRANT,
// ACCEPT, piggybacking, and scheduled transmission on every matched port —
// with no new flow arrivals, which is the engine's steady state.
func steadyEngine(tb testing.TB, kind string, warmupEpochs int) *Engine {
	tb.Helper()
	var top topo.Topology
	var err error
	if kind == "parallel" {
		top, err = topo.NewParallel(128, 8)
	} else {
		top, err = topo.NewThinClos(128, 8, 16)
	}
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:       top,
		HostRate:       sim.Gbps(400),
		Piggyback:      true,
		PriorityQueues: true,
		Seed:           1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	// 1 GiB per pair: far more than the warm-up plus measurement epochs can
	// drain, so no flow completes (completions append to FCT stats) and
	// every queue stays deep enough to request every epoch.
	e.SetWorkload(workload.NewAllToAll(128, 1<<30, 0))
	e.RunEpochs(warmupEpochs)
	if !e.fab.WorkloadDone() {
		tb.Fatal("steady state not reached: workload not exhausted")
	}
	return e
}

// TestEpochSteadyStateZeroAlloc pins the tentpole property of the hot
// path: a steady-state epoch performs no heap allocation on either
// topology. The only amortised allocations left are slice growth in the
// per-epoch match-ratio series, which the warm-up pre-grows past the
// measured window.
func TestEpochSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale engines in -short mode")
	}
	for _, kind := range []string{"parallel", "thinclos"} {
		t.Run(kind, func(t *testing.T) {
			// 700 warm-up epochs leave the Ratio series at capacity 1024;
			// the 101 measured epochs stay under it.
			e := steadyEngine(t, kind, 700)
			allocs := testing.AllocsPerRun(100, func() { e.runEpoch() })
			if allocs != 0 {
				t.Errorf("%s: steady-state epoch allocates %.1f objects/epoch, want 0", kind, allocs)
			}
		})
	}
}

// BenchmarkEpochSteadyStateParallel measures the allocation-free epoch on
// the parallel network: full matcher activity and saturated scheduled
// phases, no flow churn. Companion to BenchmarkEpochParallel, which
// includes Poisson injection (and therefore allocates per arriving flow).
func BenchmarkEpochSteadyStateParallel(b *testing.B) {
	e := steadyEngine(b, "parallel", 700)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSteadyStateThinClos is the thin-clos counterpart.
func BenchmarkEpochSteadyStateThinClos(b *testing.B) {
	e := steadyEngine(b, "thinclos", 700)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}
