package negotiator

import (
	"fmt"
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// constructionBytes reports the heap bytes allocated building one idle
// n-ToR priority-queue engine (the configuration whose eager construction
// cost — ~3M FIFOs at 1024 ToRs — motivated lazy node slabs).
func constructionBytes(tb testing.TB, n int) uint64 {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	e, err := New(Config{Topology: top, HostRate: sim.Gbps(400), Piggyback: true, PriorityQueues: true, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(e)
	return after.TotalAlloc - before.TotalAlloc
}

// TestConstructionFootprintScaling is the eager-construction regression
// guard: engine construction must scale sub-quadratically with the ToR
// count (lazy slabs are ~linear: matcher rings, views, ToR headers). The
// pre-PR-5 eager fabric was quadratic — N nodes × N destination queues ×
// 3 priority FIFOs plus N-1 pre-sized mailbox slots per generation — so a
// 4x larger fabric cost ~16x the bytes; if that sneaks back, the 4096-ToR
// tier stops constructing on modest hosts and this test fails first.
func TestConstructionFootprintScaling(t *testing.T) {
	b256 := constructionBytes(t, 256)
	b1024 := constructionBytes(t, 1024)
	ratio := float64(b1024) / float64(b256)
	t.Logf("construction bytes: 256 ToRs = %d (%.1f KB/ToR), 1024 ToRs = %d (%.1f KB/ToR), ratio %.2f",
		b256, float64(b256)/256/1024, b1024, float64(b1024)/1024/1024, ratio)
	// Linear scaling gives ~4, quadratic ~16; 8 separates them with slack.
	if ratio > 8 {
		t.Errorf("construction bytes grew %.1fx from 256 to 1024 ToRs (want < 8x, ~linear): eager per-destination state is back", ratio)
	}
	// Absolute guard: the eager fabric cost ~500 KB/ToR at 1024.
	if perToR := float64(b1024) / 1024; perToR > 64*1024 {
		t.Errorf("construction costs %.1f KB/ToR at 1024 ToRs, want < 64 KB", perToR/1024)
	}
}

// TestLazyEagerFingerprint4096 proves lazy materialization is invisible
// to the simulation at the new scale tier: a 4096-ToR sparse permutation
// run with default lazy slabs and one with every node slab eagerly
// materialized (pre-PR-5 construction) must agree on every metric.
// Priority queues stay off to keep the EAGER side's ~1.6 GB footprint
// CI-safe; the lazy side allocates ~2 orders of magnitude less.
func TestLazyEagerFingerprint4096(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-ToR engines in -short mode")
	}
	if raceEnabled {
		t.Skip("eager 4096-ToR slabs under the race detector's shadow memory")
	}
	fpOf := func(r Results) string {
		return fmt.Sprintf("count=%d mean=%v p50=%v p99=%v max=%v epochs=%d",
			r.FCT.Count(), r.FCT.Mean(), r.FCT.P(50), r.FCT.P(99), r.FCT.Max(), r.Epochs)
	}
	run := func(eager bool) (string, Results) {
		top, err := topo.NewParallel(4096, 8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Topology: top, HostRate: sim.Gbps(400), Piggyback: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if eager {
			e.fab.MaterializeAll()
		}
		perm, err := workload.NewPermutation(4096, 256, 1<<24, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.RunEpochs(40)
		r := e.Results()
		return fpOf(r), r
	}
	lazyFP, lazyRes := run(false)
	eagerFP, eagerRes := run(true)
	if lazyFP != eagerFP {
		t.Errorf("FCT fingerprints differ:\nlazy:  %s\neager: %s", lazyFP, eagerFP)
	}
	if lazyRes.Delivered != eagerRes.Delivered || lazyRes.Injected != eagerRes.Injected {
		t.Errorf("ledger differs: lazy %d/%d, eager %d/%d",
			lazyRes.Injected, lazyRes.Delivered, eagerRes.Injected, eagerRes.Delivered)
	}
	if lazyRes.MatchRatio.Mean() != eagerRes.MatchRatio.Mean() {
		t.Errorf("match ratio differs: lazy %v, eager %v", lazyRes.MatchRatio.Mean(), eagerRes.MatchRatio.Mean())
	}
}

// BenchmarkConstructFootprint4096 measures what it costs to stand up the
// 4096-ToR priority-queue fabric — the tier that eagerly allocated ~50M
// FIFOs (multi-GB) before PR 5. bytes/ToR is the headline BENCH_pr5.json
// records.
func BenchmarkConstructFootprint4096(b *testing.B) {
	top, err := topo.NewParallel(4096, 8)
	if err != nil {
		b.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(Config{Topology: top, HostRate: sim.Gbps(400), Piggyback: true, PriorityQueues: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		runtime.KeepAlive(e)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N)/4096, "bytes/ToR")
}
