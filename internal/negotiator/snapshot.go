package negotiator

import (
	"fmt"
	"io"

	"negotiator/internal/match"
	"negotiator/internal/snap"
)

// Snapshot serializes the engine's complete state (fabric core plus this
// control plane's PlaneState payload) at an epoch boundary.
func (e *Engine) Snapshot(w io.Writer) error { return e.fab.Snapshot(w) }

// Restore applies a snapshot to a freshly constructed engine of the same
// configuration. SetWorkload (with an identically constructed generator)
// must be called first; see fabric.Core.Restore.
func (e *Engine) Restore(r io.Reader) error { return e.fab.Restore(r) }

// PlaneState implements fabric.StatefulPlane. The NegotiaToR plane's
// persistent cross-epoch state is: the match-ratio series, the selective
// relay's candidate rotation, every ToR's pipelined mailboxes and live
// match row, the batch matchers' future-match ring, and the matcher's own
// state (ring pointers, demand matrices, tie-break RNG). Everything else
// — request caches, outboxes, shard scratch — is rebuilt or re-derived
// within an epoch and is deliberately not serialized: a restored cache
// restarts cold, which the replay-equals-fresh invariant makes invisible.
func (e *Engine) PlaneState() ([]byte, error) {
	var enc snap.Enc
	num, den := e.matchRatio.Counts()
	enc.U32(uint32(len(num)))
	for _, v := range num {
		enc.I64(v)
	}
	for _, v := range den {
		enc.I64(v)
	}

	enc.Bool(e.relay != nil)
	if e.relay != nil {
		enc.U32(uint32(len(e.relay.rotate)))
		for _, r := range e.relay.rotate {
			enc.Int(r)
		}
	}

	var cnt uint32
	for _, t := range e.tors {
		if torHasState(t) {
			cnt++
		}
	}
	enc.U32(cnt)
	for i, t := range e.tors {
		if !torHasState(t) {
			continue
		}
		enc.U32(uint32(i))
		enc.Bool(t.hasMatches)
		if t.hasMatches {
			for _, m := range t.matches {
				enc.Int(int(m))
			}
		}
		for g := 0; g < e.stageLag; g++ {
			encodeRequests(&enc, t.reqIn[g])
			encodeGrants(&enc, t.grantIn[g])
		}
	}

	enc.Bool(e.batch != nil)
	if e.batch != nil {
		enc.U32(uint32(len(e.future)))
		for d := range e.future {
			touched := e.futureTouched[d]
			enc.U32(uint32(len(touched)))
			for _, src := range touched {
				enc.U32(uint32(src))
				for _, m := range e.future[d][src] {
					enc.Int(int(m))
				}
			}
		}
	}

	if err := match.SnapshotState(e.matcher, &enc); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// RestorePlaneState implements fabric.StatefulPlane: the inverse of
// PlaneState, applied to a freshly constructed engine. After decoding it
// rebuilds the per-shard derived mirrors (matched/pending occupancy bits
// and in-flight message counts) that a live run maintains incrementally —
// the same invariants checkInvariants asserts.
func (e *Engine) RestorePlaneState(data []byte) error {
	d := snap.NewDec(data)
	rn := int(d.U32())
	num := make([]int64, rn)
	den := make([]int64, rn)
	for i := range num {
		num[i] = d.I64()
	}
	for i := range den {
		den[i] = d.I64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	e.matchRatio.RestoreCounts(num, den)

	hasRelay := d.Bool()
	if hasRelay != (e.relay != nil) {
		return fmt.Errorf("negotiator: checkpoint relay presence (%v) does not match engine configuration (%v)", hasRelay, e.relay != nil)
	}
	if hasRelay {
		if n := int(d.U32()); n != len(e.relay.rotate) {
			return fmt.Errorf("negotiator: checkpoint holds %d relay rotations, engine has %d", n, len(e.relay.rotate))
		}
		for i := range e.relay.rotate {
			e.relay.rotate[i] = d.Int()
		}
	}

	cnt := int(d.U32())
	for k := 0; k < cnt; k++ {
		i := int(d.U32())
		if d.Err() != nil {
			break
		}
		if i < 0 || i >= e.n {
			return fmt.Errorf("negotiator: checkpoint ToR index %d out of range", i)
		}
		t := e.tors[i]
		t.hasMatches = d.Bool()
		if t.hasMatches {
			for p := range t.matches {
				t.matches[p] = int32(d.Int())
			}
		}
		for g := 0; g < e.stageLag; g++ {
			var err error
			if t.reqIn[g], err = decodeRequests(d, t.reqIn[g]); err != nil {
				return err
			}
			if t.grantIn[g], err = decodeGrants(d, t.grantIn[g]); err != nil {
				return err
			}
		}
	}

	hasBatch := d.Bool()
	if hasBatch != (e.batch != nil) {
		return fmt.Errorf("negotiator: checkpoint batch-matcher presence (%v) does not match engine configuration (%v)", hasBatch, e.batch != nil)
	}
	if hasBatch {
		if depth := int(d.U32()); depth != len(e.future) {
			return fmt.Errorf("negotiator: checkpoint future-ring depth %d does not match engine %d", depth, len(e.future))
		}
		for dd := range e.future {
			tn := int(d.U32())
			for k := 0; k < tn; k++ {
				src := int(d.U32())
				if d.Err() != nil {
					break
				}
				if src < 0 || src >= e.n {
					return fmt.Errorf("negotiator: checkpoint future-ring source %d out of range", src)
				}
				e.futureTouched[dd] = append(e.futureTouched[dd], int32(src))
				row := e.future[dd][src]
				for p := range row {
					row[p] = int32(d.Int())
				}
			}
		}
	}

	if err := match.RestoreState(e.matcher, d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	// Rebuild the shard-side derived mirrors from the restored shadow
	// state (matched bit == hasMatches, pending bits == non-empty
	// mailboxes, inflight == delivered-but-unconsumed message count).
	for _, sh := range e.shards {
		for i := sh.lo; i < sh.hi; i++ {
			t := e.tors[i]
			if t.hasMatches {
				sh.matched.Set(i - sh.lo)
			}
			for g := 0; g < e.stageLag; g++ {
				if n := len(t.reqIn[g]); n > 0 {
					sh.reqPend[g].Set(i - sh.lo)
					sh.inflight += int64(n)
				}
				if n := len(t.grantIn[g]); n > 0 {
					sh.grantPend[g].Set(i - sh.lo)
					sh.inflight += int64(n)
				}
			}
		}
	}
	return nil
}

// torHasState reports whether a ToR carries cross-epoch control state: a
// live match row or any pending pipelined message. The relay plan is
// cleared and recomputed by the next epoch's planning pass and does not
// count.
func torHasState(t *tor) bool {
	if t.hasMatches {
		return true
	}
	for _, in := range t.reqIn {
		if len(in) > 0 {
			return true
		}
	}
	for _, in := range t.grantIn {
		if len(in) > 0 {
			return true
		}
	}
	return false
}

func encodeRequests(e *snap.Enc, reqs []match.Request) {
	e.U32(uint32(len(reqs)))
	for _, r := range reqs {
		e.Int(r.Src)
		e.Int(r.Dst)
		e.Int(r.Port)
		e.I64(r.Size)
		e.F64(r.Delay)
		e.I64(r.NewBytes)
	}
}

func decodeRequests(d *snap.Dec, into []match.Request) ([]match.Request, error) {
	n := int(d.U32())
	for i := 0; i < n; i++ {
		r := match.Request{
			Src:      d.Int(),
			Dst:      d.Int(),
			Port:     d.Int(),
			Size:     d.I64(),
			Delay:    d.F64(),
			NewBytes: d.I64(),
		}
		if d.Err() != nil {
			break
		}
		into = append(into, r)
	}
	return into, d.Err()
}

func encodeGrants(e *snap.Enc, grants []match.Grant) {
	e.U32(uint32(len(grants)))
	for _, g := range grants {
		e.Int(g.Dst)
		e.Int(g.Port)
		e.Int(g.Src)
	}
}

func decodeGrants(d *snap.Dec, into []match.Grant) ([]match.Grant, error) {
	n := int(d.U32())
	for i := 0; i < n; i++ {
		g := match.Grant{Dst: d.Int(), Port: d.Int(), Src: d.Int()}
		if d.Err() != nil {
			break
		}
		into = append(into, g)
	}
	return into, d.Err()
}
