package negotiator

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// benchEngine builds a paper-scale engine with a saturating workload.
func benchEngine(b *testing.B, kind string, load float64) *Engine {
	b.Helper()
	var top topo.Topology
	var err error
	if kind == "parallel" {
		top, err = topo.NewParallel(128, 8)
	} else {
		top, err = topo.NewThinClos(128, 8, 16)
	}
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Topology:       top,
		HostRate:       sim.Gbps(400),
		Piggyback:      true,
		PriorityQueues: true,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 128, load, sim.Gbps(400), 7))
	// Warm up past the pipeline fill.
	e.RunEpochs(50)
	return e
}

// BenchmarkEpochParallel measures one full epoch (control step, predefined
// phase with piggybacking, scheduled phase) at paper scale under 100% load
// on the parallel network.
func BenchmarkEpochParallel(b *testing.B) {
	e := benchEngine(b, "parallel", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochThinClos is the thin-clos counterpart.
func BenchmarkEpochThinClos(b *testing.B) {
	e := benchEngine(b, "thinclos", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochLightLoad shows the idle-fabric epoch cost.
func BenchmarkEpochLightLoad(b *testing.B) {
	e := benchEngine(b, "parallel", 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkControlStep isolates the distributed scheduling computation
// (REQUEST + GRANT + ACCEPT for 128 ToRs).
func BenchmarkControlStep(b *testing.B) {
	e := benchEngine(b, "parallel", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.controlStep(e.Now())
	}
}

// BenchmarkSimSecondPerWallSecond reports simulated-vs-wall time for the
// default full-load setup, the figure that determines experiment runtimes.
func BenchmarkSimThroughput(b *testing.B) {
	e := benchEngine(b, "parallel", 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpochs(10)
	}
	b.StopTimer()
	simNs := float64(e.epochLn) * 10
	b.ReportMetric(simNs, "simns/op")
}
