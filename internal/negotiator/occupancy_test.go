package negotiator

import (
	"fmt"
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestOccupancyInvariant runs the engine with per-round invariant
// checking on (which asserts, after every epoch's merge, that the
// occupancy indexes and the per-page byte counters exactly match queue
// contents — fabric.Core.CheckOccupancy) across the features that stress
// the choke points: priority queues, failures with loss requeue, and the
// selective relay's cross-ToR pushes. Run in CI under -race at
// -cpu 1,2,4 together with the worker sweep here.
func TestOccupancyInvariant(t *testing.T) {
	ep := DefaultTiming().EpochLen(4) // 16x4 thin-clos epoch, for failure timing
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"piggyback-priority-parallel", func(t *testing.T) Config {
			top, err := topo.NewParallel(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: top, Piggyback: true, PriorityQueues: true, Seed: 1}
		}},
		{"failures-parallel", func(t *testing.T) Config {
			top, err := topo.NewParallel(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{
				Topology:       top,
				Piggyback:      true,
				PriorityQueues: true,
				Seed:           1,
				Failures:       failure.Random(16, 4, 0.25, sim.Time(20*ep), sim.Time(60*ep), 3*ep, 9),
			}
		}},
		{"relay-thinclos", func(t *testing.T) Config {
			tc, err := topo.NewThinClos(16, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: tc, Piggyback: true, PriorityQueues: true, Seed: 1, Relay: &RelayConfig{}}
		}},
		{"plain-thinclos", func(t *testing.T) Config {
			tc, err := topo.NewThinClos(16, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: tc, Seed: 1}
		}},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				cfg := c.cfg(t)
				cfg.CheckInvariants = true
				cfg.Workers = workers
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, sim.Gbps(400), 7))
				e.RunEpochs(120)
				e.SetWorkload(nil)
				e.Drain(4000)
			})
		}
	}

	// Sparse permutation over a quarter of the fabric: most nodes never
	// materialize, so every per-round CheckOccupancy pass also asserts
	// the lazy-slab contract (unmaterialized nodes report empty/zero
	// everywhere) while matched ToRs exercise the occupancy paths.
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("sparse-lazy/workers=%d", workers), func(t *testing.T) {
			top, err := topo.NewParallel(64, 4)
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(Config{
				Topology:        top,
				Piggyback:       true,
				PriorityQueues:  true,
				Seed:            1,
				CheckInvariants: true,
				Workers:         workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			perm, err := workload.NewPermutation(64, 16, 1<<20, 0)
			if err != nil {
				t.Fatal(err)
			}
			e.SetWorkload(perm)
			e.RunEpochs(40)
			e.SetWorkload(nil)
			if !e.Drain(4000) {
				t.Fatal("sparse permutation did not drain")
			}
			for i := 16; i < 64; i++ {
				if e.fab.Nodes[i].Direct.Materialized() {
					t.Fatalf("idle node %d materialized", i)
				}
			}
		})
	}

	// Page-granularity lazy contract: at 256 ToRs the direct slab spans
	// two pages, and a permutation confined to the first 16 destinations
	// must materialize page 0 only. Every per-round CheckOccupancy pass
	// also asserts page counters match queue contents and absent pages
	// carry no shadow or occupancy residue.
	t.Run("paged-sparse", func(t *testing.T) {
		top, err := topo.NewParallel(2*queue.PageSize, 8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Topology:        top,
			Piggyback:       true,
			PriorityQueues:  true,
			Seed:            1,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		perm, err := workload.NewPermutation(2*queue.PageSize, 16, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.RunEpochs(30)
		e.SetWorkload(nil)
		if !e.Drain(8000) {
			t.Fatal("paged sparse permutation did not drain")
		}
		for i, nd := range e.fab.Nodes {
			if i >= 16 && nd.Direct.Materialized() {
				t.Fatalf("idle node %d materialized", i)
			}
			if nd.Direct.PageMaterialized(2*queue.PageSize - 1) {
				t.Fatalf("node %d materialized a direct page outside the active range", i)
			}
		}
	})
}
