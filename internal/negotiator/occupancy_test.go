package negotiator

import (
	"fmt"
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestOccupancyInvariant runs the engine with per-round invariant
// checking on (which asserts, after every epoch's merge, that the
// occupancy indexes and the QueuedBytes shadow exactly match queue
// contents — fabric.Core.CheckOccupancy) across the features that stress
// the choke points: priority queues, failures with loss requeue, and the
// selective relay's cross-ToR pushes. Run in CI under -race at
// -cpu 1,2,4 together with the worker sweep here.
func TestOccupancyInvariant(t *testing.T) {
	ep := DefaultTiming().EpochLen(4) // 16x4 thin-clos epoch, for failure timing
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"piggyback-priority-parallel", func(t *testing.T) Config {
			top, err := topo.NewParallel(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: top, Piggyback: true, PriorityQueues: true, Seed: 1}
		}},
		{"failures-parallel", func(t *testing.T) Config {
			top, err := topo.NewParallel(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{
				Topology:       top,
				Piggyback:      true,
				PriorityQueues: true,
				Seed:           1,
				Failures:       failure.Random(16, 4, 0.25, sim.Time(20*ep), sim.Time(60*ep), 3*ep, 9),
			}
		}},
		{"relay-thinclos", func(t *testing.T) Config {
			tc, err := topo.NewThinClos(16, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: tc, Piggyback: true, PriorityQueues: true, Seed: 1, Relay: &RelayConfig{}}
		}},
		{"plain-thinclos", func(t *testing.T) Config {
			tc, err := topo.NewThinClos(16, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Topology: tc, Seed: 1}
		}},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				cfg := c.cfg(t)
				cfg.CheckInvariants = true
				cfg.Workers = workers
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, sim.Gbps(400), 7))
				e.RunEpochs(120)
				e.SetWorkload(nil)
				e.Drain(4000)
			})
		}
	}
}
