package negotiator

import (
	"testing"
	"time"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

func TestPaperScaleSmoke(t *testing.T) {
	top, _ := topo.NewParallel(128, 8)
	cfg := Config{Topology: top, HostRate: sim.Gbps(400), Piggyback: true, PriorityQueues: true, Seed: 1}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 128, 1.0, sim.Gbps(400), 7))
	start := time.Now()
	e.Run(2 * sim.Millisecond)
	el := time.Since(start)
	r := e.Results()
	t.Logf("wall=%v epochs=%d flows=%d mice99p=%v miceavg=%v goodput=%.3f matchratio=%.3f",
		el, r.Epochs, r.FCT.Count(), r.FCT.MiceP(99), r.FCT.MiceMean(),
		r.Goodput.Normalized(r.Duration, sim.Gbps(400)), r.MatchRatio.Mean())
}
