package negotiator

import (
	"fmt"

	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/match"
	"negotiator/internal/metrics"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Config assembles a NegotiaToR fabric.
type Config struct {
	// Topology is the optical fabric layout (required).
	Topology topo.Topology
	// Timing is the epoch structure; zero value means DefaultTiming.
	Timing Timing
	// HostRate is the aggregate host bandwidth under one ToR (400 Gbps in
	// the paper), used for goodput normalisation.
	HostRate sim.Rate
	// Piggyback enables unscheduled data transmission in the predefined
	// phase (paper §3.4.1). On by default in the paper's evaluation.
	Piggyback bool
	// PriorityQueues enables PIAS-style mice-flow prioritisation at
	// sources (paper §3.4.2).
	PriorityQueues bool
	// RequestThresholdPkts is the request threshold in piggyback packets:
	// with piggybacking on, a pair requests a scheduled connection only
	// when its queue exceeds this many piggyback payloads (3 in §3.4.1).
	// Ignored when Piggyback is false (threshold zero).
	RequestThresholdPkts int
	// NewMatcher builds the scheduling policy; nil means the base
	// NegotiaToR Matching.
	NewMatcher func(t topo.Topology, timing Timing, rng *sim.RNG) match.Matcher
	// Relay enables the traffic-aware selective relay extension
	// (Appendix A.2.2, thin-clos only); nil disables.
	Relay *RelayConfig
	// Failures optionally injects link failures (§4.3).
	Failures *failure.Plan
	// Seed drives all randomness (ring init, relay candidate rotation).
	Seed int64
	// CheckInvariants enables per-epoch conflict-freedom and byte
	// conservation assertions (used by tests; costs O(N²) per epoch).
	CheckInvariants bool
	// OnDeliver, when set, observes every payload delivery at its
	// destination (receiver-bandwidth micro-observations).
	OnDeliver func(dst int, at sim.Time, n int64)
	// TrackReceiverBuffers models the receiver-side ToR-to-host buffers of
	// §3.6.5 (the optical fabric can deliver at 2x the host drain rate)
	// and reports their peak occupancy in Results.
	TrackReceiverBuffers bool
}

// TagStat tracks one tagged application event (e.g. an incast): its start,
// the completion time of its last flow, and flow counts.
type TagStat struct {
	Start sim.Time
	End   sim.Time
	Flows int
	Done  int
}

// Results summarises a run.
type Results struct {
	FCT        *metrics.FCTStats
	Goodput    *metrics.Goodput
	MatchRatio *metrics.Ratio
	Tags       map[int]*TagStat
	Duration   sim.Duration
	EpochLen   sim.Duration
	Epochs     int64
	Injected   int64
	Delivered  int64
	LostBytes  int64 // bytes destroyed by failures (before requeue), cumulative
	// PeakReceiverBuffer is the largest receiver-side ToR-to-host backlog
	// across all ToRs (§3.6.5); zero unless TrackReceiverBuffers is set.
	PeakReceiverBuffer int64
}

// tor holds one ToR's queues and scheduling mailboxes.
type tor struct {
	queues      []*queue.DestQueue
	cumInjected []int64
	// Pipelined scheduling mailboxes: reqIn[g] holds requests received as
	// a destination, grantIn[g] grants received as a source; g cycles
	// through stageLag generations.
	reqIn   [][]match.Request
	grantIn [][]match.Grant
	matches []int32 // this epoch's scheduled matches, per port

	// Selective relay state (nil unless enabled).
	relayQ     []*queue.FIFO // per final destination: bytes relayed through us
	relayBytes int64         // total relay backlog
	relayPlan  []relayPlan   // per intermediate: first-hop plan this epoch

	losses []lossRec // bytes destroyed by failures, awaiting detection+requeue
}

type relayPlan struct {
	finalDst int32
	quota    int64
}

type lossRec struct {
	f   *flows.Flow
	dst int
	off int64
	n   int64
	at  sim.Time
}

// Engine is the NegotiaToR fabric simulator.
type Engine struct {
	cfg     Config
	top     topo.Topology
	timing  Timing
	n, s    int
	epochs  int64
	now     sim.Time
	epochLn sim.Duration

	predefSlots int
	stageLag    int
	threshold   int64
	payload     int64 // scheduled-phase payload per slot
	piggyBytes  int64

	tors    []*tor
	matcher match.Matcher
	batch   match.BatchMatcher // non-nil for batch (iterative) matchers
	future  [][][]int32        // batch path: future[d][src][port], ring by epoch

	work        workload.Generator
	pending     workload.Arrival
	havePending bool
	genDone     bool
	flowSeq     int64

	fct        metrics.FCTStats
	goodput    *metrics.Goodput
	matchRatio metrics.Ratio
	ledger     flows.Ledger
	tags       map[int]*TagStat
	tagOf      map[int64]int // flow ID -> tag, for tagged flows only
	lost       int64

	actual, known *failure.State
	relay         *relayState
	rxBuffers     []*metrics.DrainBuffer // per-dst host-drain model, optional

	rng *sim.RNG

	// scratch
	reqScratch []match.Request

	// Allocation-free hot-path state. The per-epoch control and data paths
	// run entirely through these preallocated views and prebuilt closures:
	// constructing a fresh closure (or boxing a torView into the QueueView
	// interface) at every call site costs one heap allocation per ToR per
	// epoch, which dominated the steady-state profile.
	views      []torView              // one per ToR, passed as *torView
	curGen     int                    // mailbox generation filled this epoch
	ctlGrants  int64                  // GRANT-step counter for the match ratio
	feedbackFn func(match.Grant, bool)
	grantEmit  func(match.Grant)
	reqEmit    func(match.Request)
	batchEmit  func(match.Request)

	// Transmission emitter state, shared by the prebuilt schedEmit /
	// pbEmit / relayEmit closures. Valid only during one queue drain.
	txTor        *tor
	txDst        int
	txLost       bool
	txPos        int64    // scheduled-phase byte position (slot timing)
	txAt         sim.Time // predefined-phase fixed arrival time
	txPhaseStart sim.Time
	txInter      *tor // relay first hop: receiving intermediate
	schedEmit    func(*flows.Flow, int64)
	pbEmit       func(*flows.Flow, int64)
	relayEmit    func(*flows.Flow, int64)
}

// New builds an engine. The zero Timing is replaced by DefaultTiming and a
// zero HostRate by 400 Gbps.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("negotiator: nil topology")
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	if cfg.RequestThresholdPkts == 0 {
		cfg.RequestThresholdPkts = 3
	}
	if err := cfg.Timing.Validate(cfg.Topology); err != nil {
		return nil, err
	}
	if cfg.Relay != nil {
		if _, ok := cfg.Topology.(*topo.ThinClos); !ok {
			return nil, fmt.Errorf("negotiator: selective relay is a thin-clos extension (Appendix A.2.2)")
		}
	}
	e := &Engine{
		cfg:         cfg,
		top:         cfg.Topology,
		timing:      cfg.Timing,
		n:           cfg.Topology.N(),
		s:           cfg.Topology.Ports(),
		predefSlots: cfg.Topology.PredefinedSlots(),
		rng:         sim.NewRNG(cfg.Seed),
		tags:        make(map[int]*TagStat),
		tagOf:       make(map[int64]int),
	}
	e.epochLn = e.timing.EpochLen(e.predefSlots)
	e.stageLag = e.timing.StageLag(e.predefSlots)
	e.payload = e.timing.DataPayloadBytes()
	e.piggyBytes = e.timing.PiggybackBytes()
	if cfg.Piggyback {
		e.threshold = int64(cfg.RequestThresholdPkts) * e.piggyBytes
	}
	e.goodput = metrics.NewGoodput(e.n)

	if cfg.NewMatcher != nil {
		e.matcher = cfg.NewMatcher(e.top, e.timing, e.rng.Split(1))
	} else {
		e.matcher = match.NewNegotiator(e.top, e.rng.Split(1))
	}
	if b, ok := e.matcher.(match.BatchMatcher); ok {
		e.batch = b
		depth := b.MatchDelay() + 1
		e.future = make([][][]int32, depth)
		for d := range e.future {
			e.future[d] = make([][]int32, e.n)
			for i := range e.future[d] {
				row := make([]int32, e.s)
				for p := range row {
					row[p] = -1
				}
				e.future[d][i] = row
			}
		}
	}

	e.tors = make([]*tor, e.n)
	for i := range e.tors {
		t := &tor{
			queues:      make([]*queue.DestQueue, e.n),
			cumInjected: make([]int64, e.n),
			reqIn:       make([][]match.Request, e.stageLag),
			grantIn:     make([][]match.Grant, e.stageLag),
			matches:     make([]int32, e.s),
		}
		for j := range t.queues {
			t.queues[j] = queue.NewDestQueue(cfg.PriorityQueues)
		}
		// Pre-size the pipelined mailboxes so typical epochs never grow
		// them: a destination receives at most n-1 requests; a source
		// usually receives far fewer than n-1 grants (the theoretical
		// worst case is (n-1)*s under extreme skew — growth past the
		// pre-size is one-time, since capacity is retained via in[:0]).
		for g := range t.reqIn {
			t.reqIn[g] = make([]match.Request, 0, e.n-1)
		}
		for g := range t.grantIn {
			t.grantIn[g] = make([]match.Grant, 0, e.n-1)
		}
		for p := range t.matches {
			t.matches[p] = -1
		}
		e.tors[i] = t
	}
	e.initHotPath()
	if cfg.Failures != nil {
		e.actual = failure.NewState(e.n, e.s)
		e.known = failure.NewState(e.n, e.s)
	}
	if cfg.Relay != nil {
		e.initRelay()
	}
	if cfg.TrackReceiverBuffers {
		e.rxBuffers = make([]*metrics.DrainBuffer, e.n)
		for i := range e.rxBuffers {
			e.rxBuffers[i] = metrics.NewDrainBuffer(cfg.HostRate)
		}
	}
	return e, nil
}

// initHotPath builds the preallocated matcher views and the closures the
// per-epoch path reuses. All per-call context travels through engine
// fields (curGen, tx*), so the steady-state epoch performs no heap
// allocation: closures are built once here, and views are passed by
// pointer to avoid boxing.
//
// The closures rely on two invariants every Matcher maintains:
// Requests(src, ...) emits requests with Src == src, and Grants(dst, ...)
// emits grants with Dst == dst.
func (e *Engine) initHotPath() {
	e.views = make([]torView, e.n)
	for i := range e.views {
		e.views[i] = torView{e: e, i: i}
	}
	e.feedbackFn = func(g match.Grant, ok bool) { e.matcher.Feedback(g, ok) }
	// GRANT transport: the grant message travels g.Dst -> g.Src in this
	// epoch's predefined phase.
	e.grantEmit = func(g match.Grant) {
		e.ctlGrants++
		// Grants over known-failed ports are suppressed at the source of
		// truth: the destination will not use a dead ingress.
		if e.known != nil && e.known.Count > 0 && !e.known.PathOK(g.Src, g.Dst, g.Port) {
			return
		}
		if !e.msgPathOK(g.Dst, g.Src, e.epochs) {
			return
		}
		e.tors[g.Src].grantIn[e.curGen] = append(e.tors[g.Src].grantIn[e.curGen], g)
	}
	// REQUEST transport: the request message travels r.Src -> r.Dst.
	e.reqEmit = func(r match.Request) {
		if !e.msgPathOK(r.Src, r.Dst, e.epochs) {
			return
		}
		e.tors[r.Dst].reqIn[e.curGen] = append(e.tors[r.Dst].reqIn[e.curGen], r)
	}
	e.batchEmit = func(r match.Request) { e.reqScratch = append(e.reqScratch, r) }
	// Scheduled-phase delivery: bytes land slot by slot after the
	// predefined phase.
	e.schedEmit = func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		e.txPos += n
		at := e.slotArrival()
		if e.txLost {
			e.recordLoss(f, off, n, at)
			return
		}
		e.deliver(f, e.txDst, n, at)
	}
	// Predefined-phase (piggyback) delivery: fixed slot arrival time.
	e.pbEmit = func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		if e.txLost {
			e.recordLoss(f, off, n, e.txAt)
			return
		}
		e.deliver(f, e.txDst, n, e.txAt)
	}
	// Relay first hop: bytes move into the intermediate's relay queue and
	// stay "sent but not delivered" until the second hop completes, so
	// NoteSent happens at the final hop only.
	e.relayEmit = func(f *flows.Flow, n int64) {
		e.txPos += n
		at := e.slotArrival()
		if e.txLost {
			off := f.Sent()
			f.NoteSent(n)
			e.recordLoss(f, off, n, at)
			return
		}
		e.txInter.relayQ[e.txDst].Push(queue.Segment{Flow: f, Bytes: n, Enqueued: at})
		e.txInter.relayBytes += n
	}
}

// slotArrival returns the arrival time of a scheduled-phase byte run
// ending at the current txPos: the end of the slot it finishes in, plus
// propagation.
func (e *Engine) slotArrival() sim.Time {
	endSlot := (e.txPos + e.payload - 1) / e.payload
	return e.txPhaseStart.Add(sim.Duration(endSlot) * e.timing.ScheduledSlot).Add(e.timing.PropDelay)
}

// recordLoss books n bytes of f (starting at flow offset off) destroyed by
// an actually-failed link on the current transmission (txTor -> txDst),
// awaiting detection and source requeue (§3.6.1).
func (e *Engine) recordLoss(f *flows.Flow, off, n int64, at sim.Time) {
	e.ledger.Lost += n
	e.lost += n
	e.txTor.losses = append(e.txTor.losses, lossRec{f: f, dst: e.txDst, off: off, n: n, at: at})
}

// SetWorkload attaches the arrival stream. Must be called before Run.
func (e *Engine) SetWorkload(g workload.Generator) { e.work = g }

// EpochLen returns the epoch duration.
func (e *Engine) EpochLen() sim.Duration { return e.epochLn }

// Now returns the current simulated time (start of the next epoch).
func (e *Engine) Now() sim.Time { return e.now }

// Run advances the simulation until at least d of simulated time has
// elapsed (whole epochs).
func (e *Engine) Run(d sim.Duration) {
	end := sim.Time(d)
	for e.now < end {
		e.runEpoch()
	}
}

// RunEpochs advances exactly k epochs.
func (e *Engine) RunEpochs(k int) {
	for i := 0; i < k; i++ {
		e.runEpoch()
	}
}

// Drain keeps running until all injected flows complete or maxEpochs pass,
// returning true if fully drained. The workload must be exhausted first.
func (e *Engine) Drain(maxEpochs int) bool {
	for i := 0; i < maxEpochs; i++ {
		if e.ledger.Queued() == 0 && e.genDone && !e.havePending {
			return true
		}
		e.runEpoch()
	}
	return e.ledger.Queued() == 0
}

// Results snapshots the run's measurements.
func (e *Engine) Results() Results {
	r := Results{
		FCT:        &e.fct,
		Goodput:    e.goodput,
		MatchRatio: &e.matchRatio,
		Tags:       e.tags,
		Duration:   sim.Duration(e.now),
		EpochLen:   e.epochLn,
		Epochs:     e.epochs,
		Injected:   e.ledger.Injected,
		Delivered:  e.ledger.Delivered,
		LostBytes:  e.lost,
	}
	for _, b := range e.rxBuffers {
		if p := b.Peak(); p > r.PeakReceiverBuffer {
			r.PeakReceiverBuffer = p
		}
	}
	return r
}

func (e *Engine) runEpoch() {
	epochStart := e.now
	if e.cfg.Failures != nil {
		e.cfg.Failures.Fill(e.actual, epochStart)
		e.cfg.Failures.Fill(e.known, epochStart.Add(-e.cfg.Failures.DetectDelay))
		e.requeueDetectedLosses(epochStart)
	}
	e.inject(epochStart)
	e.controlStep(epochStart)
	if e.cfg.Piggyback {
		e.predefinedPhase(epochStart)
	}
	e.scheduledPhase(epochStart)
	if e.cfg.CheckInvariants {
		e.checkInvariants()
	}
	e.epochs++
	e.now = epochStart.Add(e.epochLn)
}

// inject moves all arrivals at or before t into the source queues.
func (e *Engine) inject(t sim.Time) {
	if e.work == nil {
		e.genDone = true
		return
	}
	for {
		if !e.havePending {
			a, ok := e.work.Next()
			if !ok {
				e.genDone = true
				return
			}
			e.pending, e.havePending = a, true
		}
		if e.pending.Time > t {
			return
		}
		a := e.pending
		e.havePending = false
		e.flowSeq++
		f := &flows.Flow{ID: e.flowSeq, Src: a.Src, Dst: a.Dst, Size: a.Size, Arrival: a.Time}
		e.tors[a.Src].queues[a.Dst].Push(f, t)
		e.tors[a.Src].cumInjected[a.Dst] += a.Size
		e.ledger.Injected += a.Size
		if a.Tag != 0 {
			ts := e.tags[a.Tag]
			if ts == nil {
				ts = &TagStat{Start: a.Time}
				e.tags[a.Tag] = ts
			}
			ts.Flows++
			if a.Time < ts.Start {
				ts.Start = a.Time
			}
			e.tagOf[f.ID] = a.Tag
		}
	}
}

// deliver accounts one run of payload bytes arriving at dst.
func (e *Engine) deliver(f *flows.Flow, dst int, n int64, at sim.Time) {
	e.ledger.Delivered += n
	e.goodput.Deliver(dst, n)
	if f.Deliver(n, at) {
		e.fct.Record(f.Size, f.FCT())
		e.noteTagCompletion(f)
	}
	if e.rxBuffers != nil {
		e.rxBuffers[dst].Add(at, n)
	}
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(dst, at, n)
	}
}

// noteTagCompletion updates application-event bookkeeping (incast finish
// times) for a finished flow.
func (e *Engine) noteTagCompletion(f *flows.Flow) {
	if len(e.tagOf) == 0 {
		return
	}
	if tag, ok := e.tagOf[f.ID]; ok {
		ts := e.tags[tag]
		ts.Done++
		if f.Completed() > ts.End {
			ts.End = f.Completed()
		}
		delete(e.tagOf, f.ID)
	}
}

// requeueDetectedLosses returns failure-destroyed bytes to their source
// queues once the detection delay has elapsed, modelling upper-layer
// retransmission (§3.6.1).
func (e *Engine) requeueDetectedLosses(now sim.Time) {
	detect := e.cfg.Failures.DetectDelay
	for _, t := range e.tors {
		if len(t.losses) == 0 {
			continue
		}
		kept := t.losses[:0]
		for _, l := range t.losses {
			if l.at.Add(detect) <= now {
				l.f.Unsend(l.n)
				t.queues[l.dst].PushBytes(l.f, l.n, l.off, now)
				e.ledger.Lost -= l.n
			} else {
				kept = append(kept, l)
			}
		}
		t.losses = kept
	}
}

// checkInvariants asserts byte conservation and match conflict-freedom.
func (e *Engine) checkInvariants() {
	var inFabric int64
	for _, t := range e.tors {
		for _, q := range t.queues {
			inFabric += q.Bytes()
		}
		if t.relayQ != nil {
			for _, q := range t.relayQ {
				inFabric += q.Bytes()
			}
		}
	}
	if err := e.ledger.Check(inFabric); err != nil {
		panic(err)
	}
	rx := make(map[[2]int32]int32)
	for i, t := range e.tors {
		for p, dj := range t.matches {
			if dj < 0 {
				continue
			}
			key := [2]int32{dj, int32(p)}
			if prev, ok := rx[key]; ok {
				panic(fmt.Sprintf("negotiator: conflict: dst %d port %d matched by %d and %d", dj, p, prev, i))
			}
			rx[key] = int32(i)
			if !e.top.CanReach(i, p, int(dj)) {
				panic(fmt.Sprintf("negotiator: unreachable match %d-(%d)->%d", i, p, dj))
			}
		}
	}
}
