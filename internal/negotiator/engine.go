package negotiator

import (
	"fmt"
	"slices"

	"negotiator/internal/fabric"
	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/match"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Config assembles a NegotiaToR fabric.
type Config struct {
	// Topology is the optical fabric layout (required).
	Topology topo.Topology
	// Timing is the epoch structure; zero value means DefaultTiming.
	Timing Timing
	// HostRate is the aggregate host bandwidth under one ToR (400 Gbps in
	// the paper), used for goodput normalisation.
	HostRate sim.Rate
	// Piggyback enables unscheduled data transmission in the predefined
	// phase (paper §3.4.1). On by default in the paper's evaluation.
	Piggyback bool
	// PriorityQueues enables PIAS-style mice-flow prioritisation at
	// sources (paper §3.4.2).
	PriorityQueues bool
	// RequestThresholdPkts is the request threshold in piggyback packets:
	// with piggybacking on, a pair requests a scheduled connection only
	// when its queue exceeds this many piggyback payloads (3 in §3.4.1).
	// Ignored when Piggyback is false (threshold zero).
	RequestThresholdPkts int
	// NewMatcher builds the scheduling policy; nil means the base
	// NegotiaToR Matching.
	NewMatcher func(t topo.Topology, timing Timing, rng *sim.RNG) match.Matcher
	// Relay enables the traffic-aware selective relay extension
	// (Appendix A.2.2, thin-clos only); nil disables.
	Relay *RelayConfig
	// Failures optionally injects link failures (§4.3).
	Failures *failure.Plan
	// Seed drives all randomness (ring init, relay candidate rotation).
	Seed int64
	// CheckInvariants enables per-epoch conflict-freedom and byte
	// conservation assertions (used by tests; costs O(N²) per epoch).
	CheckInvariants bool
	// DisableEventSkip forces the run loop to tick every round even when
	// the fabric is provably idle. Results are byte-identical either way
	// (pinned by the golden fingerprints); the knob exists for A/B
	// benchmarks and the skip-equivalence tests.
	DisableEventSkip bool
	// DisableIncremental forces a from-scratch REQUEST sweep every epoch
	// instead of replaying the demand-versioned request cache of sources
	// whose queues did not change. Results are byte-identical either way;
	// the knob exists for A/B benchmarks and the cache-equivalence tests.
	DisableIncremental bool
	// OnDeliver, when set, observes every payload delivery at its
	// destination (receiver-bandwidth micro-observations).
	OnDeliver func(dst int, at sim.Time, n int64)
	// TrackReceiverBuffers models the receiver-side ToR-to-host buffers of
	// §3.6.5 (the optical fabric can deliver at 2x the host drain rate)
	// and reports their peak occupancy in Results.
	TrackReceiverBuffers bool
	// Workers is the intra-run shard parallelism: the ToRs are split into
	// Workers contiguous shards that execute each epoch's pipeline stages
	// concurrently with barrier-synchronized phases (shard-local request
	// emission → cross-shard mailbox exchange → shard-local matching and
	// transmission → deterministic merge). Results are byte-identical at
	// any value. 0 or 1 means sequential; the count is capped at the ToR
	// count and silently reduced to 1 when a feature that requires global
	// sequential state is enabled (selective relay, receiver-buffer
	// tracking, OnDeliver observation, or a custom matcher that does not
	// implement match.Sharded) — see Engine.Workers for the effective
	// value.
	Workers int
}

// Results summarises a run.
type Results struct {
	FCT        *metrics.FCTStats
	Goodput    *metrics.Goodput
	MatchRatio *metrics.Ratio
	Tags       map[int]*fabric.TagStat
	Duration   sim.Duration
	EpochLen   sim.Duration
	Epochs     int64
	Injected   int64
	Delivered  int64
	LostBytes  int64 // bytes destroyed by failures (before requeue), cumulative
	// PeakReceiverBuffer is the largest receiver-side ToR-to-host backlog
	// across all ToRs (§3.6.5); zero unless TrackReceiverBuffers is set.
	PeakReceiverBuffer int64
}

// tor holds one ToR's control-plane state: scheduling mailboxes, this
// epoch's matches, and the selective-relay plan. The data-plane state
// (VOQs, relay FIFOs, loss records) lives in the shared fabric core's
// Nodes, keyed by the same index.
type tor struct {
	// Pipelined scheduling mailboxes: reqIn[g] holds requests received as
	// a destination, grantIn[g] grants received as a source; g cycles
	// through stageLag generations.
	reqIn   [][]match.Request
	grantIn [][]match.Grant
	matches []int32 // this epoch's scheduled matches, per port
	// hasMatches is false only when matches is all -1: the scheduled
	// phase and the per-epoch clears skip idle ToRs on this one flag, so
	// a sparse epoch costs O(matched ToRs · S) instead of O(N · S). The
	// flag may be conservatively true for an all--1 row; it must never be
	// false for a row holding a match.
	hasMatches bool

	relayPlan []relayPlan // per intermediate: first-hop plan this epoch (selective relay)
	planned   []int32     // intermediates planned last epoch, for O(planned) clearing
}

type relayPlan struct {
	finalDst int32
	quota    int64
}

// reqCache holds one source's REQUEST emissions from its last fresh sweep,
// stamped with the node's demand version at capture time. While the
// version is unchanged no push or take touched any of the source's VOQs,
// so a pure matcher's sweep would re-emit exactly this list — the epoch
// replays it instead of re-walking the occupancy index and re-reading
// queue depths. Capture is lazy: the first sweep at a new version only
// records the version (seen), the next sweep at the same version tees its
// emissions into reqs (valid), and only then do epochs replay. Rows whose
// demand changes every epoch — the dense saturated regime — therefore
// never pay the tee, only a version read and a branch. Cached requests
// are pre-transport: replay feeds them through the same emit path as a
// fresh sweep, so the per-epoch failure filtering (msgPathOK) still
// applies at current-epoch rotation.
type reqCache struct {
	reqs  []match.Request
	segs  []reqSeg
	ver   int64
	seen  bool
	valid bool
}

// reqSeg marks the end (exclusive, into reqCache.reqs) of a run of
// consecutive requests whose destinations live on one shard. Emissions
// are ascending by destination and shards are contiguous ToR ranges, so
// a cached row splits into at most one segment per shard — replay with
// no failures active appends each segment to its outbox wholesale
// instead of re-running the per-request emit closure (whose only
// epoch-dependent work, msgPathOK, is the identity without failures).
type reqSeg struct {
	shard, end int32
}

// Engine is the NegotiaToR control plane over the shared fabric core: it
// decides, per epoch, which pairs connect (ACCEPT → GRANT/REQUEST over
// the pipelined in-band mailboxes) and drives the predefined and
// scheduled transmission phases, while the core owns queues, workload,
// metrics, failure-loss bookkeeping and the round loop.
type Engine struct {
	cfg     Config
	fab     *fabric.Core
	top     topo.Topology
	timing  Timing
	n, s    int
	epochLn sim.Duration

	predefSlots int
	stageLag    int
	threshold   int64
	payload     int64 // scheduled-phase payload per slot
	piggyBytes  int64

	tors    []*tor
	matcher match.Matcher
	// Matcher capability traits (see match.RequestTraits), resolved once:
	// idle-safety gates both the event-skip horizon and the O(active)
	// request sweep; purity gates the incremental request cache.
	matcherIdleSafe bool
	matcherPure     bool
	// sparseReq: the per-shard REQUEST sweep may iterate the non-empty
	// direct-VOQ occupancy set instead of every source — sound only when
	// skipping a zero-demand source is a matcher no-op and no relay demand
	// hides outside the direct queues.
	sparseReq bool
	// incremental: replay each source's cached request emissions while its
	// demand version is unchanged (see reqCache); requires a pure Requests
	// and no relay demand.
	incremental bool
	caches      []reqCache
	batch       match.BatchMatcher // non-nil for batch (iterative) matchers
	future      [][][]int32        // batch path: future[d][src][port], ring by epoch
	// futureTouched[d] lists, ascending, the sources whose future[d] rows
	// the batch Match wrote; all other rows are all -1. batchPrepStep
	// copies and resets only these rows.
	futureTouched [][]int32

	matchRatio metrics.Ratio

	actual, known *failure.State
	relay         *relayState

	// scratch
	reqScratch []match.Request // batch path: stitched request snapshot

	// Sharded epoch execution (see shard.go). The fabric core owns the
	// shard ranges, gang and metric accumulators; each engineShard wraps
	// one core shard with the control-plane context (matcher handle,
	// outboxes, emitters). Cross-shard scheduling messages travel through
	// per-shard outboxes merged in shard order, which reproduces the exact
	// ToR-ascending mailbox order of a sequential epoch.
	workers       int
	shards        []*engineShard
	curEpochStart sim.Time // set serially each epoch, read by phase steps

	// Prebuilt phase-step closures, passed to the core's ParDo so the
	// steady-state epoch performs no heap allocation regardless of worker
	// count.
	stepAccept        func(k int)
	stepEmit          func(k int)
	stepMergeOnly     func(k int)
	stepMergeTransmit func(k int)
	stepBatchPrep     func(k int)

	// Allocation-free hot-path views: one per ToR, passed as *torView so
	// the QueueView interface conversion never allocates.
	views  []torView
	curGen int // mailbox generation filled this epoch
}

// New builds an engine. The zero Timing is replaced by DefaultTiming and a
// zero HostRate by 400 Gbps.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("negotiator: nil topology")
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	if cfg.RequestThresholdPkts == 0 {
		cfg.RequestThresholdPkts = 3
	}
	if err := cfg.Timing.Validate(cfg.Topology); err != nil {
		return nil, err
	}
	if cfg.Relay != nil {
		if _, ok := cfg.Topology.(*topo.ThinClos); !ok {
			return nil, fmt.Errorf("negotiator: selective relay is a thin-clos extension (Appendix A.2.2)")
		}
	}
	e := &Engine{
		cfg:         cfg,
		top:         cfg.Topology,
		timing:      cfg.Timing,
		n:           cfg.Topology.N(),
		s:           cfg.Topology.Ports(),
		predefSlots: cfg.Topology.PredefinedSlots(),
	}
	e.epochLn = e.timing.EpochLen(e.predefSlots)
	e.stageLag = e.timing.StageLag(e.predefSlots)
	e.payload = e.timing.DataPayloadBytes()
	e.piggyBytes = e.timing.PiggybackBytes()
	if cfg.Piggyback {
		e.threshold = int64(cfg.RequestThresholdPkts) * e.piggyBytes
	}

	// The engine's randomness stream is shared with the core (the matcher
	// split consumes one draw, exactly as before the core extraction).
	rng := sim.NewRNG(cfg.Seed)
	if cfg.NewMatcher != nil {
		e.matcher = cfg.NewMatcher(e.top, e.timing, rng.Split(1))
	} else {
		e.matcher = match.NewNegotiator(e.top, rng.Split(1))
	}
	e.matcherIdleSafe, e.matcherPure = match.TraitsOf(e.matcher)
	e.sparseReq = e.matcherIdleSafe && cfg.Relay == nil
	e.incremental = e.matcherPure && cfg.Relay == nil && !cfg.DisableIncremental
	if e.incremental {
		e.caches = make([]reqCache, e.n)
	}
	if b, ok := e.matcher.(match.BatchMatcher); ok {
		e.batch = b
		depth := b.MatchDelay() + 1
		e.future = make([][][]int32, depth)
		for d := range e.future {
			e.future[d] = make([][]int32, e.n)
			for i := range e.future[d] {
				row := make([]int32, e.s)
				for p := range row {
					row[p] = -1
				}
				e.future[d][i] = row
			}
		}
		e.futureTouched = make([][]int32, depth)
	}

	fab, err := fabric.New(fabric.Config{
		Topology:             cfg.Topology,
		HostRate:             cfg.HostRate,
		Workers:              e.resolveWorkers(),
		RNG:                  rng,
		PriorityQueues:       cfg.PriorityQueues,
		Relay:                cfg.Relay != nil,
		CumInjected:          true,
		OnDeliver:            cfg.OnDeliver,
		TrackReceiverBuffers: cfg.TrackReceiverBuffers,
		Failures:             cfg.Failures,
		DisableEventSkip:     cfg.DisableEventSkip,
	})
	if err != nil {
		return nil, err
	}
	e.fab = fab
	fab.Bind(e, e.admit)

	e.tors = make([]*tor, e.n)
	for i := range e.tors {
		t := &tor{
			reqIn:   make([][]match.Request, e.stageLag),
			grantIn: make([][]match.Grant, e.stageLag),
			matches: make([]int32, e.s),
		}
		// Mailboxes start empty and grow on demand, retaining capacity
		// via in[:0]: a ToR's mailbox footprint follows the traffic it
		// actually receives instead of pre-paying n-1 slots per
		// generation (O(N²) across the fabric — at 4096 ToRs that
		// pre-size alone dwarfed the queue slabs). Growth is one-time
		// warm-up; the steady state stays allocation-free.
		for p := range t.matches {
			t.matches[p] = -1
		}
		e.tors[i] = t
	}
	e.initHotPath()
	// The core owns failure state (cursor-advanced at each round start);
	// the engine caches the stable snapshot pointers for its hot paths.
	e.actual = fab.ActualFailures()
	e.known = fab.KnownFailures()
	if cfg.Relay != nil {
		e.initRelay()
	}
	return e, nil
}

// admit is the core's arrival-admission hook: an injected flow lands in
// the source's per-destination VOQ, and the cumulative-injected table
// (stateful matcher view) advances.
func (e *Engine) admit(f *flows.Flow, at sim.Time) {
	nd := e.fab.Nodes[f.Src]
	nd.PushDirect(f.Dst, f, at)
	nd.CumInjected[f.Dst] += f.Total()
}

// resolveWorkers clamps the configured shard parallelism: never more
// shards than ToRs, and sequential whenever a feature needs globally
// ordered mutation that the sharded phases cannot reproduce — the
// selective relay's cross-ToR queue pushes, the receiver-buffer drain
// model, per-delivery observation callbacks, and custom matchers without
// shard-private scratch (batch matchers are exempt: their Match runs
// serially and their per-ToR Requests step is read-only).
func (e *Engine) resolveWorkers() int {
	w := e.cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > e.n {
		w = e.n
	}
	if e.cfg.Relay != nil || e.cfg.TrackReceiverBuffers || e.cfg.OnDeliver != nil {
		w = 1
	}
	if w > 1 {
		if _, ok := e.matcher.(match.Sharded); !ok {
			w = 1
		}
	}
	return w
}

// initHotPath builds the preallocated per-ToR matcher views and the
// shard execution contexts (see shard.go), including every closure the
// per-epoch path reuses — all per-call context travels through engine and
// shard fields, so the steady-state epoch performs no heap allocation at
// any worker count: closures are built once here, and views are passed by
// pointer to avoid boxing.
func (e *Engine) initHotPath() {
	e.views = make([]torView, e.n)
	for i := range e.views {
		e.views[i] = torView{e: e, i: i}
	}
	e.workers = e.fab.Workers
	e.shards = make([]*engineShard, e.workers)

	// Matcher handles: the sequential engine uses the matcher directly;
	// parallel shards get scratch-private forks sharing the per-ToR ring
	// state. Batch matchers fork too — only their per-ToR Requests step
	// runs on the handles (Match stays serial on the original), and the
	// built-in batch matchers inherit both Fork and Requests unchanged
	// from the base Negotiator.
	var handles []match.Matcher
	if e.workers > 1 {
		handles = e.matcher.(match.Sharded).Fork(e.workers)
	}
	for k := 0; k < e.workers; k++ {
		fs := e.fab.Shards[k]
		sh := &engineShard{e: e, k: k, lo: fs.Lo, hi: fs.Hi, fs: fs}
		if handles != nil {
			sh.matcher = handles[k]
		} else {
			sh.matcher = e.matcher
		}
		sh.reqOut = make([][]match.Request, e.workers)
		sh.grantOut = make([][]match.Grant, e.workers)
		for r := range sh.reqOut {
			sh.reqOut[r] = make([]match.Request, 0, (fs.Hi-fs.Lo)+1)
			sh.grantOut[r] = make([]match.Grant, 0, (fs.Hi-fs.Lo)+1)
		}
		sh.reqPend = make([]fabric.OccSet, e.stageLag)
		sh.grantPend = make([]fabric.OccSet, e.stageLag)
		for g := 0; g < e.stageLag; g++ {
			sh.reqPend[g] = fabric.NewOccSet(fs.Hi - fs.Lo)
			sh.grantPend[g] = fabric.NewOccSet(fs.Hi - fs.Lo)
		}
		sh.matched = fabric.NewOccSet(fs.Hi - fs.Lo)
		sh.initEmitters()
		e.shards[k] = sh
	}

	// Phase-step closures, one per barrier phase, prebuilt so ParDo
	// never constructs a closure per epoch.
	e.stepAccept = func(k int) { e.shards[k].acceptStep() }
	e.stepEmit = func(k int) { e.shards[k].emitStep() }
	e.stepMergeOnly = func(k int) { e.shards[k].mergeStep() }
	e.stepMergeTransmit = func(k int) { e.shards[k].mergeTransmitStep() }
	e.stepBatchPrep = func(k int) { e.shards[k].batchPrepStep() }
}

// parDo runs one barrier phase over all shards (via the core's gang).
func (e *Engine) parDo(fn func(k int)) { e.fab.ParDo(fn) }

// SetWorkload attaches the arrival stream. Must be called before Run.
func (e *Engine) SetWorkload(g workload.Generator) { e.fab.SetWorkload(g) }

// Name identifies the control plane.
func (e *Engine) Name() string { return "negotiator" }

// EpochLen returns the epoch duration.
func (e *Engine) EpochLen() sim.Duration { return e.epochLn }

// RoundLen implements fabric.ControlPlane: one round is one epoch.
func (e *Engine) RoundLen() sim.Duration { return e.epochLn }

// Now returns the current simulated time (start of the next epoch).
func (e *Engine) Now() sim.Time { return e.fab.Now() }

// Run advances the simulation until at least d of simulated time has
// elapsed (whole epochs).
func (e *Engine) Run(d sim.Duration) { e.fab.Run(d) }

// RunEpochs advances exactly k epochs.
func (e *Engine) RunEpochs(k int) { e.fab.RunRounds(k) }

// runEpoch advances one epoch (test and benchmark hook).
func (e *Engine) runEpoch() { e.fab.RunRound() }

// Drain keeps running until all injected flows complete or maxEpochs pass,
// returning true if fully drained. The workload must be exhausted first.
func (e *Engine) Drain(maxEpochs int) bool { return e.fab.Drain(maxEpochs) }

// Workers reports the effective shard parallelism after clamping (see
// Config.Workers).
func (e *Engine) Workers() int { return e.workers }

// Results snapshots the run's measurements. Per-shard FCT and goodput
// accumulators merge order-independently, so the snapshot is identical at
// any worker count; the merge builds fresh accumulators, keeping Results
// idempotent.
func (e *Engine) Results() Results {
	return Results{
		FCT:                e.fab.MergedFCT(),
		Goodput:            e.fab.MergedGoodput(),
		MatchRatio:         &e.matchRatio,
		Tags:               e.fab.Tags,
		Duration:           sim.Duration(e.fab.Now()),
		EpochLen:           e.epochLn,
		Epochs:             e.fab.Rounds(),
		Injected:           e.fab.Ledger.Injected,
		Delivered:          e.fab.Ledger.Delivered,
		LostBytes:          e.fab.Lost,
		PeakReceiverBuffer: e.fab.PeakReceiverBuffer(),
	}
}

// Round implements fabric.ControlPlane: one epoch through the
// barrier-synchronized shard phases (paper Figure 4 per shard):
//
//	serial   failure bookkeeping, arrival injection
//	phase A  ACCEPT over last epoch's grants (+ known-failure filter)
//	phase B  GRANT + REQUEST emission into per-shard outboxes
//	phase C  cross-shard mailbox exchange (outboxes merged in shard
//	         order, reproducing ToR-ascending arrival order), then the
//	         predefined and scheduled transmission phases shard-locally
//
// The core follows with the deterministic serial merge (ledger deltas,
// tag completions) and the optional invariant check. The batch
// (iterative) matchers replace A and B with one request-snapshot phase
// and a serial whole-fabric Match.
func (e *Engine) Round() {
	// Failure bookkeeping (snapshot advance, detected-loss requeue) has
	// already run: the core owns it, before any plane's Round.
	epochStart := e.fab.Now()
	e.curEpochStart = epochStart
	e.fab.Inject(epochStart)

	// Mailbox generation g is consumed exactly stageLag epochs after it
	// was filled; with a ring of stageLag slots that is the same slot the
	// current epoch refills, so consumption (phases A/B) precedes
	// production (phase C).
	e.curGen = int(e.fab.Rounds()) % e.stageLag

	if e.relay != nil {
		e.planRelay() // sequential-only feature (workers == 1)
	}

	if e.batch != nil {
		e.batchControl()
		e.parDo(e.stepMergeTransmit) // outboxes empty: pure transmission
	} else {
		e.controlPhases(e.stepMergeTransmit)
	}
}

// IdleHorizon implements fabric.IdlePlane: with no byte queued anywhere
// (the core's precondition), an epoch still does work only if control
// messages are in flight toward a future generation's mailboxes, a batch
// match is pending in the future ring, the relay extension is planning, or
// the matcher's REQUEST step has per-call side effects even on idle
// sources. When none of those hold, every future epoch is a no-op until
// new bytes arrive — report no self-scheduled work at all.
func (e *Engine) IdleHorizon() sim.Time {
	if e.relay != nil || !e.matcherIdleSafe {
		return e.fab.Now()
	}
	for _, sh := range e.shards {
		if sh.inflight != 0 {
			return e.fab.Now()
		}
	}
	for _, touched := range e.futureTouched {
		if len(touched) != 0 {
			return e.fab.Now()
		}
	}
	return fabric.HorizonInfinite
}

// CheckRound implements fabric.RoundChecker (invoked after each round's
// serial merge) when invariant checking is on.
func (e *Engine) CheckRound() {
	if e.cfg.CheckInvariants {
		e.checkInvariants()
	}
}

// batchControl runs the batch-matcher control plane: the per-shard
// request snapshot, the shard-order stitch, and the serial whole-fabric
// Match into the future ring.
func (e *Engine) batchControl() {
	e.parDo(e.stepBatchPrep)
	// The slot batchPrepStep just consumed is spent: its rows are all -1
	// again, so its touched list must read empty — both for the idle
	// horizon below (a stale non-empty list would block event-skip
	// forever) and for the slot's next read, should the ring not be
	// rewritten first.
	spent := int(e.fab.Rounds()) % len(e.future)
	e.futureTouched[spent] = e.futureTouched[spent][:0]
	e.reqScratch = e.reqScratch[:0]
	for _, sh := range e.shards {
		e.reqScratch = append(e.reqScratch, sh.reqScratch...)
	}
	target := (int(e.fab.Rounds()) + e.batch.MatchDelay()) % len(e.future)
	var stats match.BatchStats
	touched := e.batch.Match(e.reqScratch, e.future[target], &stats)
	// Keep a sorted private copy: the matcher's list is scratch reused by
	// the next Match, and batchPrepStep's shards merge-join it against
	// their ascending ToR ranges MatchDelay epochs from now.
	e.futureTouched[target] = append(e.futureTouched[target][:0], touched...)
	slices.Sort(e.futureTouched[target])
	e.matchRatio.Observe(stats.Accepts, stats.Grants)
}

// controlPhases runs the non-batch control plane — phases A (ACCEPT) and
// B (GRANT/REQUEST emission), the given phase-C step (mailbox exchange,
// with or without transmission) — then folds the per-shard accept/grant
// counters into the match ratio.
func (e *Engine) controlPhases(phaseC func(k int)) {
	e.parDo(e.stepAccept)
	e.parDo(e.stepEmit)
	e.parDo(phaseC)
	var accepts, grants int64
	for _, sh := range e.shards {
		accepts += sh.accepts
		grants += sh.grants
		sh.accepts, sh.grants = 0, 0
	}
	e.matchRatio.Observe(accepts, grants)
}

// controlStep runs one epoch's scheduling phases in isolation — ACCEPT,
// GRANT and REQUEST plus the mailbox exchange, without data transmission
// (and without Round's relay planning, a sequential-only feature outside
// the control plane). Benchmarks use it to measure the distributed
// scheduling computation alone.
func (e *Engine) controlStep(epochStart sim.Time) {
	e.curEpochStart = epochStart
	e.curGen = int(e.fab.Rounds()) % e.stageLag
	if e.batch != nil {
		e.batchControl()
		return
	}
	e.controlPhases(e.stepMergeOnly)
}

// checkInvariants asserts byte conservation, occupancy-index/shadow
// exactness and match conflict-freedom.
func (e *Engine) checkInvariants() {
	if e.cfg.Failures != nil {
		e.fab.CheckConservation() // ledger check plus loss-record identities
	} else if err := e.fab.Ledger.Check(e.fab.QueuedInNodes()); err != nil {
		panic(err)
	}
	e.fab.CheckOccupancy()
	rx := make(map[[2]int32]int32)
	for i, t := range e.tors {
		for p, dj := range t.matches {
			if dj < 0 {
				continue
			}
			key := [2]int32{dj, int32(p)}
			if prev, ok := rx[key]; ok {
				panic(fmt.Sprintf("negotiator: conflict: dst %d port %d matched by %d and %d", dj, p, prev, i))
			}
			rx[key] = int32(i)
			if !e.top.CanReach(i, p, int(dj)) {
				panic(fmt.Sprintf("negotiator: unreachable match %d-(%d)->%d", i, p, dj))
			}
		}
	}
	// The shard occupancy indexes must mirror their shadow state exactly:
	// the phase walks trust them to visit every ToR with pending mail or
	// a live match row, so a stale bit either repeats work or silently
	// strands a mailbox.
	for _, sh := range e.shards {
		for i := sh.lo; i < sh.hi; i++ {
			t := e.tors[i]
			if sh.matched.Has(i-sh.lo) != t.hasMatches {
				panic(fmt.Sprintf("negotiator: shard %d matched[%d] = %v, hasMatches = %v", sh.k, i, sh.matched.Has(i-sh.lo), t.hasMatches))
			}
			for g := 0; g < e.stageLag; g++ {
				if sh.reqPend[g].Has(i-sh.lo) != (len(t.reqIn[g]) > 0) {
					panic(fmt.Sprintf("negotiator: shard %d reqPend[%d][%d] = %v, mailbox holds %d", sh.k, g, i, sh.reqPend[g].Has(i-sh.lo), len(t.reqIn[g])))
				}
				if sh.grantPend[g].Has(i-sh.lo) != (len(t.grantIn[g]) > 0) {
					panic(fmt.Sprintf("negotiator: shard %d grantPend[%d][%d] = %v, mailbox holds %d", sh.k, g, i, sh.grantPend[g].Has(i-sh.lo), len(t.grantIn[g])))
				}
			}
		}
	}
}

// Compile-time interface checks.
var (
	_ fabric.ControlPlane = (*Engine)(nil)
	_ fabric.RoundChecker = (*Engine)(nil)
	_ fabric.IdlePlane    = (*Engine)(nil)
)
