package negotiator

import (
	"fmt"
	"slices"

	"negotiator/internal/fabric"
	"negotiator/internal/flows"
	"negotiator/internal/match"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
)

// engineShard owns the control-plane execution context of one contiguous
// ToR range [lo, hi): a scratch-private matcher handle, cross-shard
// message outboxes, and the transmission emitter state with its prebuilt
// closures. Metric accumulation and delivery/loss accounting go through
// the wrapped fabric core shard (fs). An epoch's phases run over all
// shards between barriers (see Engine.Round); everything a phase writes
// is either owned by this shard (its ToRs' queues, mailboxes and matches;
// its accumulators) or deferred into an outbox that a later phase merges
// in shard order.
//
// Determinism at any worker count follows from three properties:
//
//   - Shards are contiguous ascending ToR ranges and each phase walks its
//     range in ascending order, so concatenating per-shard emissions in
//     shard order reproduces exactly the ToR-ascending order a sequential
//     epoch produces — mailbox contents are identical, byte for byte.
//   - Per-shard FCT/goodput/ledger accumulators merge order-independently
//     (sorted percentiles, sums, max).
//   - Matcher per-ToR state (rings, matrices) is partitioned by the same
//     ToR ranges, and shard handles share it while owning private scratch
//     (see match.Sharded).
type engineShard struct {
	e      *Engine
	k      int
	lo, hi int // ToR range [lo, hi)

	// fs is the fabric core shard carrying this range's FCT/goodput
	// accumulators and delivery/loss accounting.
	fs *fabric.Shard

	// matcher is this shard's handle: a scratch-private fork when running
	// parallel, the engine's matcher itself when sequential or batch.
	matcher match.Matcher

	// Per-shard accept/grant counters, folded into the match ratio at the
	// end of each epoch's control phases.
	accepts int64
	grants  int64

	// inflight counts scheduling messages delivered into this shard's
	// ToRs' mailbox generations and not yet consumed (requests and grants
	// ride the stageLag-deep pipeline). mergeStep raises it, acceptStep
	// and emitStep lower it — all shard-local, so the engine's IdleHorizon
	// may sum the counters racelessly between rounds: zero everywhere
	// means no control message will surface in any future epoch.
	inflight int64

	// Outboxes for cross-shard scheduling messages, bucketed by receiving
	// shard. Phase B fills them; phase C's receiving shard drains bucket
	// [k] of every sender in shard order and resets it. Buckets retain
	// capacity across epochs, so the steady state never allocates.
	reqOut   [][]match.Request
	grantOut [][]match.Grant

	// Occupancy indexes over this shard's ToR range (bit i-lo), the
	// engine-side analogue of the fabric shard's active sets: reqPend[g]
	// and grantPend[g] mark ToRs whose generation-g mailbox is non-empty
	// (set by mergeStep, cleared when phases A/B consume the slot), and
	// matched mirrors tor.hasMatches. Each phase walks only members, so a
	// quiet epoch costs O(active + range/4096) instead of a dense O(range)
	// sweep per phase — the last width-proportional per-round term.
	reqPend   []fabric.OccSet
	grantPend []fabric.OccSet
	matched   fabric.OccSet

	reqScratch []match.Request // batch path: this shard's request snapshot

	// Transmission emitter state shared by the prebuilt closures below.
	// Valid only during one queue drain.
	txNode       *fabric.Node // transmitting ToR's node (loss records)
	txDst        int
	txLost       bool
	txPos        int64    // scheduled-phase byte position (slot timing)
	txAt         sim.Time // predefined-phase fixed arrival time
	txPhaseStart sim.Time
	txInter      *fabric.Node // relay first hop: receiving intermediate

	feedbackFn func(match.Grant, bool)
	grantEmit  func(match.Grant)
	reqEmit    func(match.Request)
	batchEmit  func(match.Request)
	schedEmit  func(*flows.Flow, int64)
	pbEmit     func(*flows.Flow, int64)
	relayEmit  func(*flows.Flow, int64)

	// Incremental request-cache plumbing (see reqCache): a fresh sweep
	// tees every emission into the source's cache before forwarding it to
	// the real emitter; the verify tee captures a shadow sweep for the
	// replay-equals-fresh invariant. Valid only during one sourceRequests
	// call.
	curCache  *reqCache
	curEmit   func(match.Request)
	teeEmit   func(match.Request)
	verifyBuf []match.Request
	verifyTee func(match.Request)
}

// initEmitters builds the closures the per-epoch path reuses. All per-call
// context travels through shard fields, so the steady-state epoch performs
// no heap allocation.
//
// The closures rely on two invariants every Matcher maintains:
// Requests(src, ...) emits requests with Src == src, and Grants(dst, ...)
// emits grants with Dst == dst.
func (sh *engineShard) initEmitters() {
	e := sh.e
	sh.feedbackFn = func(g match.Grant, ok bool) { sh.matcher.Feedback(g, ok) }
	// GRANT transport: the grant message travels g.Dst -> g.Src in this
	// epoch's predefined phase, via the outbox bucket of g.Src's shard.
	sh.grantEmit = func(g match.Grant) {
		sh.grants++
		// Grants over known-failed ports are suppressed at the source of
		// truth: the destination will not use a dead ingress.
		if e.known != nil && e.known.Count > 0 && !e.known.PathOK(g.Src, g.Dst, g.Port) {
			return
		}
		if !e.msgPathOK(g.Dst, g.Src, e.fab.Rounds()) {
			return
		}
		r := e.fab.ShardOf[g.Src]
		sh.grantOut[r] = append(sh.grantOut[r], g)
	}
	// REQUEST transport: the request message travels r.Src -> r.Dst.
	sh.reqEmit = func(r match.Request) {
		if !e.msgPathOK(r.Src, r.Dst, e.fab.Rounds()) {
			return
		}
		d := e.fab.ShardOf[r.Dst]
		sh.reqOut[d] = append(sh.reqOut[d], r)
	}
	sh.batchEmit = func(r match.Request) { sh.reqScratch = append(sh.reqScratch, r) }
	sh.teeEmit = func(r match.Request) {
		sh.curCache.reqs = append(sh.curCache.reqs, r)
		sh.curEmit(r)
	}
	sh.verifyTee = func(r match.Request) { sh.verifyBuf = append(sh.verifyBuf, r) }
	// Scheduled-phase delivery: bytes land slot by slot after the
	// predefined phase.
	sh.schedEmit = func(f *flows.Flow, n int64) {
		// A flow group's contiguous run is split at member boundaries so
		// each member's last byte carries the arrival time of the slot it
		// actually lands in — the boundary-crossing FCT is then exactly
		// what n separate flows would record. Single flows take one pass.
		for n > 0 {
			take := n
			if f.Count > 1 {
				if rem := f.Size - f.Sent()%f.Size; rem < take {
					take = rem
				}
			}
			off := f.Sent()
			f.NoteSent(take)
			sh.txPos += take
			at := sh.slotArrival()
			if sh.txLost {
				sh.fs.RecordLoss(sh.txNode, f, sh.txDst, off, take, at)
			} else {
				sh.fs.Deliver(f, sh.txDst, take, at)
			}
			n -= take
		}
	}
	// Predefined-phase (piggyback) delivery: fixed slot arrival time.
	sh.pbEmit = func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		if sh.txLost {
			sh.fs.RecordLoss(sh.txNode, f, sh.txDst, off, n, sh.txAt)
			return
		}
		sh.fs.Deliver(f, sh.txDst, n, sh.txAt)
	}
	// Relay first hop (sequential-only feature): bytes move into the
	// intermediate's relay queue and stay "sent but not delivered" until
	// the second hop completes, so NoteSent happens at the final hop only.
	sh.relayEmit = func(f *flows.Flow, n int64) {
		sh.txPos += n
		at := sh.slotArrival()
		if sh.txLost {
			off := f.Sent()
			f.NoteSent(n)
			sh.fs.RecordLoss(sh.txNode, f, sh.txDst, off, n, at)
			return
		}
		sh.txInter.PushRelay(sh.txDst, queue.Segment{Flow: f, Bytes: n, Enqueued: at})
	}
}

// slotArrival returns the arrival time of a scheduled-phase byte run
// ending at the current txPos: the end of the slot it finishes in, plus
// propagation.
func (sh *engineShard) slotArrival() sim.Time {
	e := sh.e
	endSlot := (sh.txPos + e.payload - 1) / e.payload
	return sh.txPhaseStart.Add(sim.Duration(endSlot) * e.timing.ScheduledSlot).Add(e.timing.PropDelay)
}

// acceptStep is phase A: grants received during the previous epoch yield
// this epoch's matches for this shard's ToRs, followed by the
// known-failure filter. Feedback reaches the matcher's shared state only
// at elements unique to a (dst, src) pair — src local to this shard — so
// concurrent shards never write the same element.
func (sh *engineShard) acceptStep() {
	e := sh.e
	prev := e.curGen
	// Expire last epoch's matches first: the rows of ToRs with no grants
	// this epoch must read all -1, and Accepts rewrites its row in full,
	// so a ToR in both sets just pays one redundant O(S) clear. Expiry
	// touches no matcher state, so hoisting it out of the grant walk
	// cannot reorder anything the matcher observes.
	for bit := sh.matched.Next(-1); bit >= 0; bit = sh.matched.Next(bit) {
		t := e.tors[sh.lo+bit]
		for p := range t.matches {
			t.matches[p] = -1
		}
		t.hasMatches = false
		sh.matched.Clear(bit)
	}
	pend := &sh.grantPend[prev]
	for bit := pend.Next(-1); bit >= 0; bit = pend.Next(bit) {
		pend.Clear(bit)
		i := sh.lo + bit
		t := e.tors[i]
		in := t.grantIn[prev]
		sh.matcher.Accepts(i, &e.views[i], in, t.matches, sh.feedbackFn)
		sh.inflight -= int64(len(in))
		t.grantIn[prev] = in[:0]
		any := false
		for _, d := range t.matches {
			if d >= 0 {
				sh.accepts++
				any = true
			}
		}
		t.hasMatches = any
		if any {
			sh.matched.Set(bit)
		}
	}
	// Known failures exclude links from transmission at use time. The
	// flag (and matched bit) stays up even when the filter empties a row
	// — the scheduled phase's port walk just finds nothing, exactly as
	// the dense sweep behaved.
	if e.known != nil && e.known.Count > 0 {
		for bit := sh.matched.Next(-1); bit >= 0; bit = sh.matched.Next(bit) {
			i := sh.lo + bit
			t := e.tors[i]
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
					sh.accepts--
				}
			}
		}
	}
}

// emitStep is phase B: requests received during the previous epoch yield
// grants (GRANT), and current queue state yields requests (REQUEST), both
// emitted into per-shard outboxes for the phase-C exchange.
func (sh *engineShard) emitStep() {
	e := sh.e
	prev := e.curGen
	pend := &sh.reqPend[prev]
	for bit := pend.Next(-1); bit >= 0; bit = pend.Next(bit) {
		pend.Clear(bit)
		j := sh.lo + bit
		t := e.tors[j]
		in := t.reqIn[prev]
		sh.matcher.Grants(j, in, sh.grantEmit)
		sh.inflight -= int64(len(in))
		t.reqIn[prev] = in[:0]
	}
	sh.requestSweep(sh.reqEmit, bulkOut)
}

// Bulk-replay targets for a cached row (see sourceRequests): where the
// emit closure's output would land, so replay can append the cached list
// wholesale when no failures are active and skip the per-request call.
const (
	bulkNone    = iota // unknown emitter — always replay per emission
	bulkOut            // reqEmit: per-destination-shard outbox buckets
	bulkScratch        // batchEmit: the flat reqScratch list
)

// requestSweep runs the REQUEST step over this shard's sources into emit.
// When the matcher tolerates skipping zero-demand sources (and no relay
// demand hides outside the direct VOQs), the sweep walks the shard's
// non-empty-node occupancy set — O(active sources) — instead of the dense
// range; the occupancy bit is exactly "some direct VOQ holds bytes", a
// superset of "some VOQ exceeds the request threshold", so emissions are
// identical to the dense walk, in the same ascending order.
func (sh *engineShard) requestSweep(emit func(match.Request), bulk int) {
	e := sh.e
	if e.sparseReq {
		occ := &sh.fs.ActiveDirect
		for bit := occ.Next(-1); bit >= 0; bit = occ.Next(bit) {
			sh.sourceRequests(sh.lo+bit, emit, bulk)
		}
		return
	}
	for i := sh.lo; i < sh.hi; i++ {
		sh.sourceRequests(i, emit, bulk)
	}
}

// sourceRequests emits one source's requests: a cached replay when the
// incremental path is on and the source's demand version is unchanged
// since the last fresh sweep, a fresh sweep otherwise. A fresh sweep tees
// its emissions into the cache only once the version has already been
// observed stable across an epoch (see reqCache) — a row that changes
// every epoch emits straight through the real emitter. With no failures
// active the emit closures are epoch-independent (msgPathOK is the
// identity), so replay bypasses them and appends the cached list to the
// target wholesale — per pre-computed shard segment for the outbox
// buckets, in one append for the batch scratch list. Under
// CheckInvariants every replay is shadowed by a fresh sweep and compared
// element-wise — the incremental path must be invisible.
func (sh *engineShard) sourceRequests(i int, emit func(match.Request), bulk int) {
	e := sh.e
	if !e.incremental {
		sh.matcher.Requests(i, &e.views[i], e.curEpochStart, e.threshold, emit)
		return
	}
	c := &e.caches[i]
	ver := e.fab.Nodes[i].DemandVer()
	if !c.seen || c.ver != ver {
		// Demand moved since the last sweep (or first visit): plain sweep,
		// no capture — replay next epoch is not yet possible anyway.
		c.ver, c.seen, c.valid = ver, true, false
		sh.matcher.Requests(i, &e.views[i], e.curEpochStart, e.threshold, emit)
		return
	}
	if c.valid {
		if e.cfg.CheckInvariants {
			sh.verifyReplay(i, c)
		}
		if bulk != bulkNone && (e.actual == nil || e.actual.Count == 0) {
			if bulk == bulkScratch {
				sh.reqScratch = append(sh.reqScratch, c.reqs...)
				return
			}
			a := int32(0)
			for _, s := range c.segs {
				sh.reqOut[s.shard] = append(sh.reqOut[s.shard], c.reqs[a:s.end]...)
				a = s.end
			}
			return
		}
		for _, r := range c.reqs {
			emit(r)
		}
		return
	}
	// Version held stable for a full epoch: capture this sweep so the
	// next one can replay it.
	c.reqs = c.reqs[:0]
	sh.curCache, sh.curEmit = c, emit
	sh.matcher.Requests(i, &e.views[i], e.curEpochStart, e.threshold, sh.teeEmit)
	sh.curCache, sh.curEmit = nil, nil
	c.segs = c.segs[:0]
	for k, r := range c.reqs {
		s := e.fab.ShardOf[r.Dst]
		if n := len(c.segs); n == 0 || c.segs[n-1].shard != s {
			c.segs = append(c.segs, reqSeg{shard: s})
		}
		c.segs[len(c.segs)-1].end = int32(k + 1)
	}
	c.valid = true
}

// verifyReplay asserts that a source's cached request list matches what a
// fresh sweep would emit right now (sound to run twice: the incremental
// path requires a pure Requests).
func (sh *engineShard) verifyReplay(i int, c *reqCache) {
	e := sh.e
	sh.verifyBuf = sh.verifyBuf[:0]
	sh.matcher.Requests(i, &e.views[i], e.curEpochStart, e.threshold, sh.verifyTee)
	if len(sh.verifyBuf) != len(c.reqs) {
		panic(fmt.Sprintf("negotiator: request cache diverged at ToR %d: %d cached vs %d fresh", i, len(c.reqs), len(sh.verifyBuf)))
	}
	for k := range sh.verifyBuf {
		if sh.verifyBuf[k] != c.reqs[k] {
			panic(fmt.Sprintf("negotiator: request cache diverged at ToR %d request %d: cached %+v fresh %+v", i, k, c.reqs[k], sh.verifyBuf[k]))
		}
	}
}

// mergeStep is the cross-shard mailbox exchange of phase C: this shard
// drains its bucket of every sender's outbox in shard order, which
// appends messages to its ToRs' mailboxes in exactly the ToR-ascending
// order a sequential epoch would.
func (sh *engineShard) mergeStep() {
	e := sh.e
	cur := e.curGen
	for _, src := range e.shards {
		gout := src.grantOut[sh.k]
		for _, g := range gout {
			t := e.tors[g.Src]
			t.grantIn[cur] = append(t.grantIn[cur], g)
			sh.grantPend[cur].Set(int(g.Src) - sh.lo)
		}
		sh.inflight += int64(len(gout))
		src.grantOut[sh.k] = gout[:0]
		rout := src.reqOut[sh.k]
		for _, r := range rout {
			t := e.tors[r.Dst]
			t.reqIn[cur] = append(t.reqIn[cur], r)
			sh.reqPend[cur].Set(int(r.Dst) - sh.lo)
		}
		sh.inflight += int64(len(rout))
		src.reqOut[sh.k] = rout[:0]
	}
}

// mergeTransmitStep is phase C: the mailbox exchange, then the shard-local
// predefined and scheduled transmission phases.
func (sh *engineShard) mergeTransmitStep() {
	e := sh.e
	sh.mergeStep()
	if e.cfg.Piggyback {
		sh.predefinedPhase(e.curEpochStart)
	}
	sh.scheduledPhase(e.curEpochStart)
}

// batchPrepStep replaces phases A and B for batch (iterative) matchers:
// this epoch's matches were computed MatchDelay epochs ago and are copied
// from the future ring, then the shard snapshots its ToRs' requests for
// the serial whole-fabric Match (run on the original matcher; only the
// Requests step runs on the shard handles).
//
// Only the slot's TOUCHED rows (the sources Match granted; everything
// else is all -1) are copied and reset — O((matched + touched)·S): last
// epoch's matched rows are expired first (per-ToR state only, so the two
// walks need no interleaving), then the slot's touched rows overwrite in
// full. ToRs in both just pay one redundant O(S) clear; nothing visits
// the idle remainder of the range.
func (sh *engineShard) batchPrepStep() {
	e := sh.e
	depth := len(e.future)
	slot := int(e.fab.Rounds()) % depth
	for bit := sh.matched.Next(-1); bit >= 0; bit = sh.matched.Next(bit) {
		t := e.tors[sh.lo+bit]
		for p := range t.matches {
			t.matches[p] = -1
		}
		t.hasMatches = false
		sh.matched.Clear(bit)
	}
	touched := e.futureTouched[slot]
	ti, _ := slices.BinarySearch(touched, int32(sh.lo))
	for ; ti < len(touched) && int(touched[ti]) < sh.hi; ti++ {
		i := int(touched[ti])
		t := e.tors[i]
		row := e.future[slot][i]
		copy(t.matches, row)
		for p := range row {
			row[p] = -1
		}
		any := false
		for _, d := range t.matches {
			if d >= 0 {
				any = true
				break
			}
		}
		t.hasMatches = any
		if any {
			sh.matched.Set(i - sh.lo)
		}
	}
	if e.known != nil && e.known.Count > 0 {
		for bit := sh.matched.Next(-1); bit >= 0; bit = sh.matched.Next(bit) {
			i := sh.lo + bit
			t := e.tors[i]
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
				}
			}
		}
	}
	sh.reqScratch = sh.reqScratch[:0]
	sh.requestSweep(sh.batchEmit, bulkScratch)
}

// predefinedPhase transmits piggybacked data over the round-robin
// all-to-all connections (§3.4.1) for this shard's sources: every pair
// moves up to one small payload, bypassing the scheduling delay. The
// sweep iterates the occupancy indexes (direct ∪ relay, ascending) so a
// mostly-idle ToR pays O(active destinations), not O(N).
func (sh *engineShard) predefinedPhase(epochStart sim.Time) {
	e := sh.e
	if e.piggyBytes <= 0 {
		return
	}
	rot := e.rotation(e.fab.Rounds())
	slotDur := e.timing.PredefinedSlot
	// A source transmits here only if it holds direct or relay bytes, so
	// the walk follows the fabric shard's node-level active sets — the
	// drains below clear a set bit only at the current position, which an
	// ascending Next never revisits.
	ad, ar := &sh.fs.ActiveDirect, &sh.fs.ActiveRelay
	for bit := ad.NextUnion(ar, -1); bit >= 0; bit = ad.NextUnion(ar, bit) {
		i := sh.lo + bit
		nd := e.fab.Nodes[i]
		for j := nd.NextDirectOrRelay(-1); j >= 0; j = nd.NextDirectOrRelay(j) {
			if j == i {
				continue
			}
			hasDirect := nd.DirectQueuedBytes(j) > 0
			hasRelay := nd.RelayHeadReady(j, epochStart)
			if !hasDirect && !hasRelay {
				continue
			}
			slot, port := e.top.PredefinedSlotPort(i, j, rot)
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, port) {
				continue // knowingly dead link: hold the data
			}
			sh.txNode, sh.txDst = nd, j
			sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, port)
			sh.txAt = epochStart.Add(sim.Duration(slot+1) * slotDur).Add(e.timing.PropDelay)
			budget := e.piggyBytes
			if hasDirect {
				budget -= nd.TakeDirect(j, budget, sh.pbEmit)
			}
			if budget > 0 && hasRelay {
				// Relay bytes piggyback too once they are at the
				// intermediate: from there they are ordinary one-hop data.
				nd.DrainRelay(j, budget, epochStart, sh.pbEmit)
			}
		}
	}
}

// scheduledPhase transmits data over the matched connections for this
// shard's sources: each matched port sends from its per-destination queue
// until the phase ends or the queue empties (§3.3.2). Direct data goes
// first, then relay forwarding (second hop), then selective-relay
// first-hop data (Appendix A.2.2; sequential-only).
func (sh *engineShard) scheduledPhase(epochStart sim.Time) {
	e := sh.e
	phaseStart := epochStart.Add(e.timing.PredefinedLen(e.predefSlots))
	capacity := e.payload * int64(e.timing.ScheduledSlots)
	// matched mirrors tor.hasMatches, so only ToRs holding a live match
	// row pay the O(S) port walk — the epoch's last dense range sweep.
	for bit := sh.matched.Next(-1); bit >= 0; bit = sh.matched.Next(bit) {
		i := sh.lo + bit
		t := e.tors[i]
		nd := e.fab.Nodes[i]
		for p, dj := range t.matches {
			if dj < 0 {
				continue
			}
			j := int(dj)
			sh.txNode, sh.txDst = nd, j
			sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, p)
			sh.txPos = 0
			sh.txPhaseStart = phaseStart
			sent := nd.TakeDirect(j, capacity, sh.schedEmit)
			if nd.Relay.Materialized() && sent < capacity {
				// Second hop: forward data relayed through us that has
				// physically arrived by the start of this epoch.
				sent += nd.DrainRelay(j, capacity-sent, epochStart, sh.schedEmit)
			}
			if e.relay != nil && sent < capacity {
				// First hop: ship planned relay data to intermediate j.
				sh.relayFirstHop(i, j, capacity-sent)
			}
		}
	}
}
