package negotiator

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// BenchmarkIncrementalMatch measures the request phase's demand-version
// cache in the regime it targets: demand rows that stand still between
// epochs. With Piggyback off, elephant VOQs drain only through scheduled
// matches, so every epoch the 16 incast destinations grant a few dozen of
// the 512 contending sources and the losers' rows are untouched — ~480 of
// 512 sources replay their cached emissions (bulk per-shard segment
// appends; no failures are active) instead of re-walking their
// occupancy set and re-reading queue depths ("cached" = default engine,
// "scratch" = DisableIncremental, the pre-PR-7 behavior). The win is
// bounded by the request phase's share of the epoch: grants, accepts and
// the transmit phases are identical either way.
func incastEngine(tb testing.TB, incremental bool) *Engine {
	tb.Helper()
	const n = 512
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:           top,
		HostRate:           sim.Gbps(400),
		Seed:               1,
		DisableIncremental: !incremental,
	})
	if err != nil {
		tb.Fatal(err)
	}
	gens := make([]workload.Generator, 0, 16)
	for d := 0; d < 16; d++ {
		inc, err := workload.NewIncast(n, d, n-1, 1<<28, 0, d, int64(d+1))
		if err != nil {
			tb.Fatal(err)
		}
		gens = append(gens, inc)
	}
	e.SetWorkload(workload.NewMerge(gens...))
	e.RunEpochs(8)
	if !e.fab.WorkloadDone() {
		tb.Fatal("incast steady state not reached: workload not exhausted")
	}
	return e
}

func BenchmarkIncrementalMatch(b *testing.B) {
	for _, bc := range []struct {
		name        string
		incremental bool
	}{{"cached", true}, {"scratch", false}} {
		b.Run(bc.name, func(b *testing.B) {
			e := incastEngine(b, bc.incremental)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.runEpoch()
			}
		})
	}
}
