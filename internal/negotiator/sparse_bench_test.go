package negotiator

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// permWorkload is a saturated-but-sparse traffic matrix: every ToR sends
// one enormous flow to its cyclic successor at t=0, so each epoch has
// exactly one active destination per source while 1023 of 1024 queues stay
// empty. This is the regime where per-round work must be O(active), not
// O(N): an N² sweep pays ~1M empty-queue reads per epoch for 1024 pairs
// of actual demand.
type permWorkload struct {
	n, i int
	size int64
}

func (g *permWorkload) Next() (workload.Arrival, bool) {
	if g.i >= g.n {
		return workload.Arrival{}, false
	}
	a := workload.Arrival{Src: g.i, Dst: (g.i + 1) % g.n, Size: g.size}
	g.i++
	return a, true
}

// sparseEngine1024 builds a 1024-ToR parallel-network engine saturated
// with the permutation workload and runs it past the pipeline fill, so
// every measured epoch exercises request/grant/accept and a full
// scheduled phase on the single active destination per ToR.
func sparseEngine1024(tb testing.TB, workers int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(1024, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:  top,
		HostRate:  sim.Gbps(400),
		Piggyback: true,
		Seed:      1,
		Workers:   workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(&permWorkload{n: 1024, size: 1 << 32})
	e.RunEpochs(8)
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkEpochSparse1024 measures the per-epoch cost at 1024 ToRs under
// sparse traffic (1 active destination per ToR). BENCH_pr4.json records
// the before/after trajectory of the occupancy-index port.
func BenchmarkEpochSparse1024(b *testing.B) {
	e := sparseEngine1024(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}
