package negotiator

import (
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// The sparse benchmarks run the saturated-but-sparse permutation matrix
// (workload.Permutation): every active ToR sends one enormous flow to its
// cyclic successor at t=0, so each epoch has exactly one active
// destination per active source while every other queue stays empty. This
// is the regime where per-round work must be O(active), not O(N) — an N²
// sweep pays ~1M empty-queue reads per epoch for 1024 pairs of actual
// demand — and, at 4096 ToRs, where fabric memory must follow occupancy:
// eager construction allocates ~50M FIFOs before the first flow arrives,
// while lazy slabs materialize only the active nodes.

// sparseEngine builds an n-ToR parallel-network engine saturated with the
// permutation workload over the first `active` ToRs and runs it past the
// pipeline fill, so every measured epoch exercises request/grant/accept
// and a full scheduled phase on the single active destination per source.
func sparseEngine(tb testing.TB, n, active, workers int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:  top,
		HostRate:  sim.Gbps(400),
		Piggyback: true,
		Seed:      1,
		Workers:   workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(n, active, 1<<32, 0)
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(perm)
	e.RunEpochs(8)
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkEpochSparse1024 measures the per-epoch cost at 1024 ToRs under
// sparse traffic (1 active destination per ToR). BENCH_pr4.json records
// the before/after trajectory of the occupancy-index port, BENCH_pr5.json
// the lazy-slab parity check.
func BenchmarkEpochSparse1024(b *testing.B) {
	e := sparseEngine(b, 1024, 1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSparse4096 is the scale tier lazy node slabs open: a
// 4096-ToR priority-queue fabric with 256 active ToRs. Eager construction
// would allocate ~2 GB of queue slabs (plus ~1.5 GB of pre-sized
// mailboxes) before the first arrival; lazily, only the 256 active nodes
// materialize and the per-epoch cost stays O(active).
func BenchmarkEpochSparse4096(b *testing.B) {
	e := sparseEngine(b, 4096, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSparse8192 is the scale tier PR 5 opened but never
// measured: 8192 ToRs, 256 active. The memory ceiling is a hard
// assertion, not a report — construction plus steady-state warm-up must
// stay under 512 MB of cumulative allocation (lazy slabs put it around
// an order of magnitude below that; the eager layout needed ~16 GB at
// this size and would abort the benchmark here).
func BenchmarkEpochSparse8192(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 8192, 256, 1)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 512<<20 {
		b.Fatalf("8192-ToR sparse setup allocated %d MB, ceiling 512 MB: per-destination state is eager again", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/8192, "setup-bytes/ToR")
}

// BenchmarkEpochSparse65536 is the scale tier paged destination slabs
// open: 65,536 ToRs, 256 active. Before paging, each touched node's
// N-wide queue slab put this size out of reach; paged, an active source
// pays its dense shadow tables plus the two pages its contiguous active
// set occupies. The ceiling is a hard assertion with the same role as
// the 8192 tier's: fail fast if per-destination memory is width-coupled
// again.
func BenchmarkEpochSparse65536(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 65536, 256, 1)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 2048<<20 {
		b.Fatalf("65536-ToR sparse setup allocated %d MB, ceiling 2048 MB: per-destination state is width-coupled again", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/65536, "setup-bytes/ToR")
}
