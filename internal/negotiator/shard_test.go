package negotiator

import (
	"fmt"
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/match"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// shardFingerprint runs an engine for a fixed number of epochs and renders
// everything observable about the run — summary metrics, CDF, per-epoch
// match-ratio series, ledger — into one comparable string.
func shardFingerprint(t *testing.T, cfg Config, epochs int) string {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), cfg.Topology.N(), 0.8, sim.Gbps(200), 33))
	e.RunEpochs(epochs)
	r := e.Results()
	return fmt.Sprintf("fct=%v flows=%d mice=%d p99=%v mp99=%v mean=%v goodput=%d per=%v ratio=%.6f series=%v inj=%d del=%d lost=%d tags=%v cdf=%v",
		r.FCT, r.FCT.Count(), r.FCT.MiceCount(), r.FCT.P(99), r.FCT.MiceP(99), r.FCT.Mean(),
		r.Goodput.TotalBytes(), r.Goodput.PerToRGbps(r.Duration), r.MatchRatio.Mean(), r.MatchRatio.Series(),
		r.Injected, r.Delivered, r.LostBytes, r.Tags, r.FCT.MiceCDF(16))
}

// TestShardDeterminismEngine: the engine must produce identical results at
// every worker count, for both topologies, every sharded matcher, the
// batch matchers, and under failure injection.
func TestShardDeterminismEngine(t *testing.T) {
	const n, s, w = 16, 4, 4
	newParallel := func() topo.Topology { p, _ := topo.NewParallel(n, s); return p }
	newThinClos := func() topo.Topology { tc, _ := topo.NewThinClos(n, s, w); return tc }

	matchers := map[string]func(topo.Topology, *sim.RNG) match.Matcher{
		"base":      nil,
		"data-size": func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewDataSize(tp, r) },
		"hol-delay": func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewHoLDelay(tp, r) },
		"stateful":  func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewStateful(tp, r, 20000) },
		"projector": func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewProjecToR(tp, r) },
		"iter3":     func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewIterative(tp, r, 3) },
		"islip":     func(tp topo.Topology, r *sim.RNG) match.Matcher { return match.NewClassic(tp, r, 3, match.ISLIP) },
	}
	for _, topoKind := range []string{"parallel", "thinclos"} {
		for name, mk := range matchers {
			t.Run(topoKind+"/"+name, func(t *testing.T) {
				build := func(workers int) Config {
					var tp topo.Topology
					if topoKind == "parallel" {
						tp = newParallel()
					} else {
						tp = newThinClos()
					}
					cfg := Config{
						Topology:        tp,
						HostRate:        sim.Gbps(200),
						Piggyback:       true,
						PriorityQueues:  true,
						Seed:            1,
						CheckInvariants: true,
						Workers:         workers,
					}
					if mk != nil {
						m := mk
						cfg.NewMatcher = func(tp topo.Topology, tm Timing, r *sim.RNG) match.Matcher { return m(tp, r) }
					}
					return cfg
				}
				epochs, counts := 400, []int{2, 3, 4, 8, 16}
				if testing.Short() {
					epochs, counts = 150, []int{2, 4, 16}
				}
				want := shardFingerprint(t, build(1), epochs)
				for _, workers := range counts {
					if got := shardFingerprint(t, build(workers), epochs); got != want {
						t.Fatalf("workers=%d diverges from sequential\n got: %.300s\nwant: %.300s", workers, got, want)
					}
				}
			})
		}
	}
}

// TestShardDeterminismUnderFailures: failure injection (loss, detection,
// requeue) must also be worker-count-independent.
func TestShardDeterminismUnderFailures(t *testing.T) {
	build := func(workers int) Config {
		tp, _ := topo.NewParallel(16, 4)
		ep := DefaultTiming().EpochLen(16)
		return Config{
			Topology:        tp,
			HostRate:        sim.Gbps(200),
			Piggyback:       true,
			PriorityQueues:  true,
			Seed:            1,
			CheckInvariants: true,
			Workers:         workers,
			Failures:        failure.Random(16, 4, 0.2, sim.Time(20*ep), sim.Time(150*ep), 3*ep, 9),
		}
	}
	epochs := 300
	if testing.Short() {
		epochs = 150
	}
	want := shardFingerprint(t, build(1), epochs)
	for _, workers := range []int{2, 4, 8} {
		if got := shardFingerprint(t, build(workers), epochs); got != want {
			t.Fatalf("workers=%d diverges under failures\n got: %.300s\nwant: %.300s", workers, got, want)
		}
	}
}

// TestWorkersClampedForSequentialFeatures: features that need globally
// ordered mutation must force sequential execution.
func TestWorkersClampedForSequentialFeatures(t *testing.T) {
	tc, _ := topo.NewThinClos(16, 4, 4)
	base := Config{Topology: tc, Workers: 4}

	cfg := base
	cfg.Relay = &RelayConfig{}
	if e, _ := New(cfg); e.Workers() != 1 {
		t.Errorf("relay: workers = %d, want 1", e.Workers())
	}
	cfg = base
	cfg.TrackReceiverBuffers = true
	if e, _ := New(cfg); e.Workers() != 1 {
		t.Errorf("rx buffers: workers = %d, want 1", e.Workers())
	}
	cfg = base
	cfg.OnDeliver = func(int, sim.Time, int64) {}
	if e, _ := New(cfg); e.Workers() != 1 {
		t.Errorf("OnDeliver: workers = %d, want 1", e.Workers())
	}
	cfg = base
	if e, _ := New(cfg); e.Workers() != 4 {
		t.Errorf("plain: workers = %d, want 4", e.Workers())
	}
	cfg = base
	cfg.Workers = 1000 // capped at ToR count
	if e, _ := New(cfg); e.Workers() != 16 {
		t.Errorf("cap: workers = %d, want 16", e.Workers())
	}
}

// unshardedMatcher wraps the base matcher but hides its Fork, simulating a
// custom scheduler that predates match.Sharded.
type unshardedMatcher struct{ m match.Matcher }

func (u *unshardedMatcher) Name() string    { return "unsharded" }
func (u *unshardedMatcher) MatchDelay() int { return u.m.MatchDelay() }
func (u *unshardedMatcher) Requests(src int, v match.QueueView, now sim.Time, thr int64, emit func(match.Request)) {
	u.m.Requests(src, v, now, thr, emit)
}
func (u *unshardedMatcher) Grants(dst int, reqs []match.Request, emit func(match.Grant)) {
	u.m.Grants(dst, reqs, emit)
}
func (u *unshardedMatcher) Accepts(src int, v match.QueueView, gs []match.Grant, matches []int32, fb func(match.Grant, bool)) {
	u.m.Accepts(src, v, gs, matches, fb)
}
func (u *unshardedMatcher) Feedback(g match.Grant, ok bool) { u.m.Feedback(g, ok) }

func TestWorkersClampedForUnshardedMatcher(t *testing.T) {
	tp, _ := topo.NewParallel(16, 4)
	cfg := Config{
		Topology: tp,
		Workers:  4,
		NewMatcher: func(tp topo.Topology, tm Timing, r *sim.RNG) match.Matcher {
			return &unshardedMatcher{m: match.NewNegotiator(tp, r)}
		},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 1 {
		t.Errorf("custom non-Sharded matcher: workers = %d, want 1", e.Workers())
	}
}
