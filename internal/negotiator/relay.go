package negotiator

import (
	"negotiator/internal/topo"
)

// RelayConfig tunes the traffic-aware selective relay extension
// (Appendix A.2.2), which lets elephant-flow data take a two-hop path on
// the connection-limited thin-clos topology when spare links exist.
type RelayConfig struct {
	// MinBytes is the lowest-priority backlog a destination queue needs
	// before its data is considered for relaying ("only enable it ... if
	// the data volume exceeds a certain threshold"). Zero means one epoch
	// of port capacity.
	MinBytes int64
	// DirectBusyBytes marks a port-group as busy with direct traffic;
	// candidates sharing a busy link are excluded to avoid bandwidth
	// competition. Zero means one epoch of port capacity.
	DirectBusyBytes int64
	// BufferCap bounds the relay backlog an intermediate accepts, the
	// congestion-control condition of the GRANT step. Zero means 64 epochs
	// of port capacity.
	BufferCap int64
}

func (c *RelayConfig) withDefaults(epochPortBytes int64) RelayConfig {
	out := *c
	if out.MinBytes == 0 {
		out.MinBytes = epochPortBytes
	}
	if out.DirectBusyBytes == 0 {
		out.DirectBusyBytes = epochPortBytes
	}
	if out.BufferCap == 0 {
		out.BufferCap = 64 * epochPortBytes
	}
	return out
}

// relayState is the engine-side implementation. The paper's variant runs
// the relay negotiation through the same request/grant/accept exchange; we
// fold the candidate filtering and buffer-capacity checks into the per-epoch
// planning step with direct state inspection standing in for the message
// exchange. This idealisation can only flatter the relay variant (perfect,
// instant information), which is conservative for the paper's conclusion
// that relaying brings no meaningful gain.
type relayState struct {
	cfg      RelayConfig
	tc       *topo.ThinClos
	rotate   []int   // per-source candidate rotation
	groupBuf []int64 // scratch: per-port direct bytes of the planning source
}

func (e *Engine) initRelay() {
	tc := e.top.(*topo.ThinClos)
	e.relay = &relayState{
		cfg:      e.cfg.Relay.withDefaults(e.timing.EpochPortBytes()),
		tc:       tc,
		rotate:   make([]int, e.n),
		groupBuf: make([]int64, e.s),
	}
	// The relay FIFOs themselves live in the fabric core's nodes
	// (fabric.Config.Relay); only the per-epoch plan is control-plane state.
	for _, t := range e.tors {
		t.relayPlan = make([]relayPlan, e.n)
		for k := range t.relayPlan {
			t.relayPlan[k] = relayPlan{finalDst: -1}
		}
	}
}

// planRelay selects, per source, which elephants to relay through which
// intermediates this epoch (step 1 of A.2.2): only lowest-priority data
// above the volume threshold, intermediates that share no busy direct link
// on either hop and have relay buffer headroom. The demand scans iterate
// the direct occupancy index (non-empty queues are exactly the candidates
// both scans filter on), and plan clearing touches only the entries the
// previous epoch planned.
func (e *Engine) planRelay() {
	r := e.relay
	for i, t := range e.tors {
		nd := e.fab.Nodes[i]
		for _, k := range t.planned {
			t.relayPlan[k] = relayPlan{finalDst: -1}
		}
		t.planned = t.planned[:0]
		// Direct traffic volume per egress port of i.
		for p := range r.groupBuf {
			r.groupBuf[p] = 0
		}
		heavy := false
		for j := nd.DirectOcc.Next(-1); j >= 0; j = nd.DirectOcc.Next(j) {
			if j == i {
				continue
			}
			r.groupBuf[r.tc.PathPort(i, j)] += nd.DirectQueuedBytes(j)
			if nd.DirectLowestPriorityBytes(j) > r.cfg.MinBytes {
				heavy = true
			}
		}
		if !heavy {
			continue
		}
		rot := r.rotate[i]
		r.rotate[i]++
		for j := nd.DirectOcc.Next(-1); j >= 0; j = nd.DirectOcc.Next(j) {
			if j == i || nd.DirectLowestPriorityBytes(j) <= r.cfg.MinBytes {
				continue
			}
			// Find an intermediate k for the elephant i -> j.
			for step := 0; step < e.n; step++ {
				k := (j + rot + step) % e.n
				if k == i || k == j {
					continue
				}
				s1 := r.tc.PathPort(i, k)
				// First hop competes with i's own direct traffic on s1.
				if r.groupBuf[s1] > r.cfg.DirectBusyBytes {
					continue
				}
				// A port already planned for another relay is taken.
				if t.relayPlan[k].quota > 0 {
					continue
				}
				inter := e.fab.Nodes[k]
				headroom := inter.RelayHeadroom(r.cfg.BufferCap)
				if headroom <= 0 {
					continue
				}
				// Second hop competes with k's direct traffic to j's group.
				s2 := r.tc.PathPort(k, j)
				var kDirect int64
				for _, d := range r.tc.PortDomain(k, s2) {
					if d != k {
						kDirect += inter.DirectQueuedBytes(d)
					}
				}
				if kDirect > r.cfg.DirectBusyBytes {
					continue
				}
				quota := e.timing.EpochPortBytes()
				if quota > headroom {
					quota = headroom
				}
				t.relayPlan[k] = relayPlan{finalDst: int32(j), quota: quota}
				t.planned = append(t.planned, int32(k))
				break
			}
		}
	}
}

// relayFirstHop ships planned elephant data from source i to the matched
// intermediate k during the scheduled phase, after direct data has been
// served (step 3 of A.2.2). The bytes enter k's relay queue at
// lowest priority and are forwarded by k's own scheduling. Slot position,
// loss state and phase start are carried in the shard's tx* emitter
// fields, already set by scheduledPhase; txDst is repointed from the
// matched intermediate to the final destination for the relayed run.
// Selective relay pushes into another ToR's queue, so it forces
// sequential execution (the engine clamps Workers to 1).
func (sh *engineShard) relayFirstHop(i, k int, budget int64) {
	e := sh.e
	t := e.tors[i]
	plan := t.relayPlan[k]
	if plan.quota <= 0 || plan.finalDst < 0 {
		return
	}
	j := int(plan.finalDst)
	inter := e.fab.Nodes[k]
	headroom := inter.RelayHeadroom(e.relay.cfg.BufferCap)
	max := budget
	if max > plan.quota {
		max = plan.quota
	}
	if max > headroom {
		max = headroom
	}
	if max <= 0 {
		return
	}
	sh.txDst = j
	sh.txInter = inter
	e.fab.Nodes[i].TakeDirectLowest(j, max, sh.relayEmit)
	t.relayPlan[k] = relayPlan{finalDst: -1}
}
