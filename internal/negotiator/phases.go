package negotiator

// The per-epoch pipeline stages themselves (ACCEPT/GRANT/REQUEST and the
// predefined and scheduled transmission phases) live in shard.go: they
// execute per ToR-shard with barriers in between, sequentially when
// Config.Workers <= 1. This file keeps the shared read-only helpers.

// torView adapts a ToR's queues to the matcher's QueueView. Queued bytes
// include relay demand: an intermediate must request links to forward
// relayed data, and a relaying source must request its first-hop
// intermediate. Views are preallocated (one per ToR, see initHotPath) and
// passed by pointer so the interface conversion never allocates. A view
// reads only its own ToR's state, so concurrent shards may evaluate views
// of distinct ToRs freely.
type torView struct {
	e *Engine
	i int
}

func (v *torView) QueuedBytes(dst int) int64 {
	nd := v.e.fab.Nodes[v.i]
	b := nd.DirectQueuedBytes(dst)
	if v.e.cfg.Relay != nil {
		b += nd.RelayQueuedBytes(dst)
		if p := v.e.tors[v.i].relayPlan[dst]; p.quota > 0 {
			b += p.quota
		}
	}
	return b
}

// NextDemand iterates the source's direct-VOQ occupancy index — the exact
// positive-bytes set when relaying is off (an unmaterialized node's empty
// index ends the sweep immediately). With selective relay enabled (a
// sequential, small-scale extension) queued relay data and planned quotas
// add demand the index cannot see, so the sweep falls back to the dense
// superset — gated on the configuration, not on slab materialization, so
// lazy construction cannot change which destinations are visited.
func (v *torView) NextDemand(after int) int {
	if v.e.cfg.Relay != nil {
		if next := after + 1; next < v.e.n {
			return next
		}
		return -1
	}
	return v.e.fab.Nodes[v.i].DirectOcc.Next(after)
}

func (v *torView) WeightedHoL(dst int, alpha float64) float64 {
	nd := v.e.fab.Nodes[v.i]
	return nd.DirectWeightedHoL(dst, v.e.fab.Now(), alpha)
}

func (v *torView) CumInjected(dst int) int64 {
	nd := v.e.fab.Nodes[v.i]
	if nd.CumInjected == nil {
		return 0
	}
	return nd.CumInjected[dst]
}

// rotation returns the predefined-phase round-robin rotation for an epoch.
// The rule changes every epoch so a ToR pair's control messages cycle over
// all ports (§3.6.1).
func (e *Engine) rotation(epoch int64) int { return int(epoch % (1 << 30)) }

// msgPathOK reports whether the scheduling message i->j survives epoch's
// predefined phase (it is lost if its slot's link has actually failed).
func (e *Engine) msgPathOK(i, j int, epoch int64) bool {
	if e.actual == nil || e.actual.Count == 0 {
		return true
	}
	_, port := e.top.PredefinedSlotPort(i, j, e.rotation(epoch))
	return e.actual.PathOK(i, j, port)
}
