package negotiator

import (
	"negotiator/internal/flows"
	"negotiator/internal/match"
	"negotiator/internal/sim"
)

// torView adapts a ToR's queues to the matcher's QueueView. Queued bytes
// include relay demand: an intermediate must request links to forward
// relayed data, and a relaying source must request its first-hop
// intermediate.
type torView struct {
	e *Engine
	i int
}

func (v torView) QueuedBytes(dst int) int64 {
	t := v.e.tors[v.i]
	b := t.queues[dst].Bytes()
	if t.relayQ != nil {
		b += t.relayQ[dst].Bytes()
		if p := t.relayPlan[dst]; p.quota > 0 {
			b += p.quota
		}
	}
	return b
}

func (v torView) WeightedHoL(dst int, alpha float64) float64 {
	return v.e.tors[v.i].queues[dst].WeightedHoL(v.e.now, alpha)
}

func (v torView) CumInjected(dst int) int64 {
	return v.e.tors[v.i].cumInjected[dst]
}

// rotation returns the predefined-phase round-robin rotation for an epoch.
// The rule changes every epoch so a ToR pair's control messages cycle over
// all ports (§3.6.1).
func (e *Engine) rotation(epoch int64) int { return int(epoch % (1 << 30)) }

// msgPathOK reports whether the scheduling message i->j survives epoch's
// predefined phase (it is lost if its slot's link has actually failed).
func (e *Engine) msgPathOK(i, j int, epoch int64) bool {
	if e.actual == nil || e.actual.Count == 0 {
		return true
	}
	_, port := e.top.PredefinedSlotPort(i, j, e.rotation(epoch))
	return e.actual.PathOK(i, j, port)
}

// controlStep runs the three pipelined stages at the start of an epoch
// (paper Figure 4): ACCEPT over grants transported last epoch (producing
// this epoch's matches), GRANT over requests transported last epoch
// (transported now), and REQUEST from current queue state (transported
// now).
func (e *Engine) controlStep(epochStart sim.Time) {
	// Mailbox generation g is consumed exactly stageLag epochs after it was
	// filled; with a ring of stageLag slots that is the same slot the
	// current epoch refills, so consumption precedes production below.
	cur := int(e.epochs) % e.stageLag
	prev := cur

	if e.relay != nil {
		e.planRelay()
	}

	if e.batch != nil {
		e.batchControlStep()
		return
	}

	var grants, accepts int64

	// ACCEPT: grants received during the previous epoch yield this epoch's
	// matches.
	for i, t := range e.tors {
		in := t.grantIn[prev]
		if len(in) == 0 {
			for p := range t.matches {
				t.matches[p] = -1
			}
			continue
		}
		e.matcher.Accepts(i, torView{e, i}, in, t.matches, func(g match.Grant, ok bool) {
			e.matcher.Feedback(g, ok)
		})
		t.grantIn[prev] = in[:0]
		for _, d := range t.matches {
			if d >= 0 {
				accepts++
			}
		}
	}
	// Known failures exclude links from transmission at use time.
	if e.known != nil && e.known.Count > 0 {
		for i, t := range e.tors {
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
					accepts--
				}
			}
		}
	}

	// GRANT: requests received during the previous epoch yield grants
	// transported this epoch.
	for j, t := range e.tors {
		in := t.reqIn[prev]
		if len(in) == 0 {
			continue
		}
		e.matcher.Grants(j, in, func(g match.Grant) {
			grants++
			// Grants over known-failed ports are suppressed at the source
			// of truth: the destination will not use a dead ingress.
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(g.Src, g.Dst, g.Port) {
				return
			}
			// The grant message travels j -> g.Src in this epoch's
			// predefined phase.
			if !e.msgPathOK(j, g.Src, e.epochs) {
				return
			}
			e.tors[g.Src].grantIn[cur] = append(e.tors[g.Src].grantIn[cur], g)
		})
		t.reqIn[prev] = in[:0]
	}

	// REQUEST: current queue state yields requests transported this epoch.
	for i := range e.tors {
		e.matcher.Requests(i, torView{e, i}, epochStart, e.threshold, func(r match.Request) {
			if !e.msgPathOK(i, r.Dst, e.epochs) {
				return
			}
			e.tors[r.Dst].reqIn[cur] = append(e.tors[r.Dst].reqIn[cur], r)
		})
	}

	e.matchRatio.Observe(accepts, grants)
}

// batchControlStep drives BatchMatchers (the iterative variant): requests
// snapshotted now are matched in one logical computation whose result takes
// effect MatchDelay epochs later, modelling the extra request/grant/accept
// rounds occupying the intervening predefined phases.
func (e *Engine) batchControlStep() {
	depth := len(e.future)
	slot := int(e.epochs) % depth
	// This epoch's matches were computed MatchDelay epochs ago.
	for i, t := range e.tors {
		copy(t.matches, e.future[slot][i])
		for p := range e.future[slot][i] {
			e.future[slot][i][p] = -1
		}
	}
	if e.known != nil && e.known.Count > 0 {
		for i, t := range e.tors {
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
				}
			}
		}
	}
	// Snapshot requests and compute the future matching.
	e.reqScratch = e.reqScratch[:0]
	for i := range e.tors {
		e.matcher.Requests(i, torView{e, i}, e.now, e.threshold, func(r match.Request) {
			e.reqScratch = append(e.reqScratch, r)
		})
	}
	target := (int(e.epochs) + e.batch.MatchDelay()) % depth
	var stats match.BatchStats
	e.batch.Match(e.reqScratch, e.future[target], &stats)
	e.matchRatio.Observe(stats.Accepts, stats.Grants)
}

// predefinedPhase transmits piggybacked data over the round-robin all-to-all
// connections (§3.4.1): every pair moves up to one small payload, bypassing
// the scheduling delay.
func (e *Engine) predefinedPhase(epochStart sim.Time) {
	if e.piggyBytes <= 0 {
		return
	}
	rot := e.rotation(e.epochs)
	slotDur := e.timing.PredefinedSlot
	for i, t := range e.tors {
		for j := 0; j < e.n; j++ {
			if j == i {
				continue
			}
			q := t.queues[j]
			hasDirect := !q.Empty()
			hasRelay := t.relayQ != nil && t.relayQ[j].HeadReady(epochStart)
			if !hasDirect && !hasRelay {
				continue
			}
			slot, port := e.top.PredefinedSlotPort(i, j, rot)
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, port) {
				continue // knowingly dead link: hold the data
			}
			lost := e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, port)
			at := epochStart.Add(sim.Duration(slot+1) * slotDur).Add(e.timing.PropDelay)
			budget := e.piggyBytes
			if hasDirect {
				budget -= e.sendRun(t, q.Take, i, j, budget, at, lost)
			}
			if budget > 0 && hasRelay {
				// Relay bytes piggyback too once they are at the
				// intermediate: from there they are ordinary one-hop data.
				ready := func(max int64, emit func(f *flows.Flow, n int64)) int64 {
					return t.relayQ[j].TakeReady(max, epochStart, emit)
				}
				t.relayBytes -= e.sendRun(t, ready, i, j, budget, at, lost)
			}
		}
	}
}

type takeFunc func(max int64, emit func(f *flows.Flow, n int64)) int64

// sendRun moves up to budget bytes from a queue across the link i->j,
// delivering them at time at, or logging them as failure losses.
func (e *Engine) sendRun(t *tor, take takeFunc, i, j int, budget int64, at sim.Time, lost bool) int64 {
	return take(budget, func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		if lost {
			e.ledger.Lost += n
			e.lost += n
			t.losses = append(t.losses, lossRec{f: f, dst: j, off: off, n: n, at: at})
			return
		}
		e.deliver(f, j, n, at)
	})
}

// scheduledPhase transmits data over the matched connections: each matched
// port sends from its per-destination queue until the phase ends or the
// queue empties (§3.3.2). Direct data goes first, then relay forwarding
// (second hop), then selective-relay first-hop data (Appendix A.2.2).
func (e *Engine) scheduledPhase(epochStart sim.Time) {
	phaseStart := epochStart.Add(e.timing.PredefinedLen(e.predefSlots))
	capacity := e.payload * int64(e.timing.ScheduledSlots)
	for i, t := range e.tors {
		for p, dj := range t.matches {
			if dj < 0 {
				continue
			}
			j := int(dj)
			lost := e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, p)
			sent := int64(0)
			pos := int64(0)
			emit := func(f *flows.Flow, n int64) {
				off := f.Sent()
				f.NoteSent(n)
				pos += n
				endSlot := (pos + e.payload - 1) / e.payload
				at := phaseStart.Add(sim.Duration(endSlot) * e.timing.ScheduledSlot).Add(e.timing.PropDelay)
				if lost {
					e.ledger.Lost += n
					e.lost += n
					t.losses = append(t.losses, lossRec{f: f, dst: j, off: off, n: n, at: at})
					return
				}
				e.deliver(f, j, n, at)
			}
			sent += t.queues[j].Take(capacity, emit)
			if t.relayQ != nil && sent < capacity {
				// Second hop: forward data relayed through us that has
				// physically arrived by the start of this epoch.
				fwd := t.relayQ[j].TakeReady(capacity-sent, epochStart, emit)
				t.relayBytes -= fwd
				sent += fwd
			}
			if e.relay != nil && sent < capacity {
				// First hop: ship planned relay data to intermediate j.
				e.relayFirstHop(i, j, capacity-sent, pos, phaseStart, lost)
			}
		}
	}
}
