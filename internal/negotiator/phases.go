package negotiator

import (
	"negotiator/internal/match"
	"negotiator/internal/sim"
)

// torView adapts a ToR's queues to the matcher's QueueView. Queued bytes
// include relay demand: an intermediate must request links to forward
// relayed data, and a relaying source must request its first-hop
// intermediate. Views are preallocated (one per ToR, see initHotPath) and
// passed by pointer so the interface conversion never allocates.
type torView struct {
	e *Engine
	i int
}

func (v *torView) QueuedBytes(dst int) int64 {
	t := v.e.tors[v.i]
	b := t.queues[dst].Bytes()
	if t.relayQ != nil {
		b += t.relayQ[dst].Bytes()
		if p := t.relayPlan[dst]; p.quota > 0 {
			b += p.quota
		}
	}
	return b
}

func (v *torView) WeightedHoL(dst int, alpha float64) float64 {
	return v.e.tors[v.i].queues[dst].WeightedHoL(v.e.now, alpha)
}

func (v *torView) CumInjected(dst int) int64 {
	return v.e.tors[v.i].cumInjected[dst]
}

// rotation returns the predefined-phase round-robin rotation for an epoch.
// The rule changes every epoch so a ToR pair's control messages cycle over
// all ports (§3.6.1).
func (e *Engine) rotation(epoch int64) int { return int(epoch % (1 << 30)) }

// msgPathOK reports whether the scheduling message i->j survives epoch's
// predefined phase (it is lost if its slot's link has actually failed).
func (e *Engine) msgPathOK(i, j int, epoch int64) bool {
	if e.actual == nil || e.actual.Count == 0 {
		return true
	}
	_, port := e.top.PredefinedSlotPort(i, j, e.rotation(epoch))
	return e.actual.PathOK(i, j, port)
}

// controlStep runs the three pipelined stages at the start of an epoch
// (paper Figure 4): ACCEPT over grants transported last epoch (producing
// this epoch's matches), GRANT over requests transported last epoch
// (transported now), and REQUEST from current queue state (transported
// now).
func (e *Engine) controlStep(epochStart sim.Time) {
	// Mailbox generation g is consumed exactly stageLag epochs after it was
	// filled; with a ring of stageLag slots that is the same slot the
	// current epoch refills, so consumption precedes production below.
	cur := int(e.epochs) % e.stageLag
	prev := cur
	e.curGen = cur

	if e.relay != nil {
		e.planRelay()
	}

	if e.batch != nil {
		e.batchControlStep()
		return
	}

	var accepts int64
	e.ctlGrants = 0

	// ACCEPT: grants received during the previous epoch yield this epoch's
	// matches.
	for i, t := range e.tors {
		in := t.grantIn[prev]
		if len(in) == 0 {
			for p := range t.matches {
				t.matches[p] = -1
			}
			continue
		}
		e.matcher.Accepts(i, &e.views[i], in, t.matches, e.feedbackFn)
		t.grantIn[prev] = in[:0]
		for _, d := range t.matches {
			if d >= 0 {
				accepts++
			}
		}
	}
	// Known failures exclude links from transmission at use time.
	if e.known != nil && e.known.Count > 0 {
		for i, t := range e.tors {
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
					accepts--
				}
			}
		}
	}

	// GRANT: requests received during the previous epoch yield grants
	// transported this epoch (via e.grantEmit into generation cur).
	for j, t := range e.tors {
		in := t.reqIn[prev]
		if len(in) == 0 {
			continue
		}
		e.matcher.Grants(j, in, e.grantEmit)
		t.reqIn[prev] = in[:0]
	}

	// REQUEST: current queue state yields requests transported this epoch.
	for i := range e.tors {
		e.matcher.Requests(i, &e.views[i], epochStart, e.threshold, e.reqEmit)
	}

	e.matchRatio.Observe(accepts, e.ctlGrants)
}

// batchControlStep drives BatchMatchers (the iterative variant): requests
// snapshotted now are matched in one logical computation whose result takes
// effect MatchDelay epochs later, modelling the extra request/grant/accept
// rounds occupying the intervening predefined phases.
func (e *Engine) batchControlStep() {
	depth := len(e.future)
	slot := int(e.epochs) % depth
	// This epoch's matches were computed MatchDelay epochs ago.
	for i, t := range e.tors {
		copy(t.matches, e.future[slot][i])
		for p := range e.future[slot][i] {
			e.future[slot][i][p] = -1
		}
	}
	if e.known != nil && e.known.Count > 0 {
		for i, t := range e.tors {
			for p, dj := range t.matches {
				if dj >= 0 && !e.known.PathOK(i, int(dj), p) {
					t.matches[p] = -1
				}
			}
		}
	}
	// Snapshot requests and compute the future matching.
	e.reqScratch = e.reqScratch[:0]
	for i := range e.tors {
		e.matcher.Requests(i, &e.views[i], e.now, e.threshold, e.batchEmit)
	}
	target := (int(e.epochs) + e.batch.MatchDelay()) % depth
	var stats match.BatchStats
	e.batch.Match(e.reqScratch, e.future[target], &stats)
	e.matchRatio.Observe(stats.Accepts, stats.Grants)
}

// predefinedPhase transmits piggybacked data over the round-robin all-to-all
// connections (§3.4.1): every pair moves up to one small payload, bypassing
// the scheduling delay.
func (e *Engine) predefinedPhase(epochStart sim.Time) {
	if e.piggyBytes <= 0 {
		return
	}
	rot := e.rotation(e.epochs)
	slotDur := e.timing.PredefinedSlot
	for i, t := range e.tors {
		for j := 0; j < e.n; j++ {
			if j == i {
				continue
			}
			q := t.queues[j]
			hasDirect := !q.Empty()
			hasRelay := t.relayQ != nil && t.relayQ[j].HeadReady(epochStart)
			if !hasDirect && !hasRelay {
				continue
			}
			slot, port := e.top.PredefinedSlotPort(i, j, rot)
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, port) {
				continue // knowingly dead link: hold the data
			}
			e.txTor, e.txDst = t, j
			e.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, port)
			e.txAt = epochStart.Add(sim.Duration(slot+1) * slotDur).Add(e.timing.PropDelay)
			budget := e.piggyBytes
			if hasDirect {
				budget -= q.Take(budget, e.pbEmit)
			}
			if budget > 0 && hasRelay {
				// Relay bytes piggyback too once they are at the
				// intermediate: from there they are ordinary one-hop data.
				t.relayBytes -= t.relayQ[j].TakeReady(budget, epochStart, e.pbEmit)
			}
		}
	}
}

// scheduledPhase transmits data over the matched connections: each matched
// port sends from its per-destination queue until the phase ends or the
// queue empties (§3.3.2). Direct data goes first, then relay forwarding
// (second hop), then selective-relay first-hop data (Appendix A.2.2).
func (e *Engine) scheduledPhase(epochStart sim.Time) {
	phaseStart := epochStart.Add(e.timing.PredefinedLen(e.predefSlots))
	capacity := e.payload * int64(e.timing.ScheduledSlots)
	for i, t := range e.tors {
		for p, dj := range t.matches {
			if dj < 0 {
				continue
			}
			j := int(dj)
			e.txTor, e.txDst = t, j
			e.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, p)
			e.txPos = 0
			e.txPhaseStart = phaseStart
			sent := t.queues[j].Take(capacity, e.schedEmit)
			if t.relayQ != nil && sent < capacity {
				// Second hop: forward data relayed through us that has
				// physically arrived by the start of this epoch.
				fwd := t.relayQ[j].TakeReady(capacity-sent, epochStart, e.schedEmit)
				t.relayBytes -= fwd
				sent += fwd
			}
			if e.relay != nil && sent < capacity {
				// First hop: ship planned relay data to intermediate j.
				e.relayFirstHop(i, j, capacity-sent)
			}
		}
	}
}
