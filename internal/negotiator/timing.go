// Package negotiator implements the NegotiaToR fabric engine: the two-phase
// epoch with its in-band pipelined control plane (paper §3.3), one-hop
// scheduled data transmission, incast-optimised scheduling-delay bypass via
// data piggybacking (§3.4), mice-flow priority queues, fault tolerance
// (§3.6.1), and the traffic-aware selective relay extension (Appendix
// A.2.2).
//
// The engine is epoch-synchronous: because the fabric is globally
// time-synchronised and slot-quantised, simulating it epoch by epoch is
// exact for every quantity the paper reports while being far cheaper than a
// general event queue.
package negotiator

import (
	"fmt"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// Timing describes the epoch structure (paper §4.1 defaults).
type Timing struct {
	// Guardband absorbs the end-to-end reconfiguration delay before every
	// predefined-phase timeslot (10 ns with fast tunable lasers).
	Guardband sim.Duration
	// PredefinedSlot is the total duration of one predefined-phase
	// timeslot, guardband included (60 ns).
	PredefinedSlot sim.Duration
	// MsgBytes is the size of one scheduling message plus piggybacked data
	// header (30 B).
	MsgBytes int64
	// ScheduledSlot is the duration of one scheduled-phase timeslot
	// (90 ns; no guardband, since the scheduled phase never reconfigures).
	ScheduledSlot sim.Duration
	// DataHeaderBytes is the per-packet header in the scheduled phase (10 B).
	DataHeaderBytes int64
	// ScheduledSlots is the length of the scheduled phase in timeslots (30).
	ScheduledSlots int
	// PropDelay is the one-way ToR-to-ToR propagation delay (2 µs).
	PropDelay sim.Duration
	// LinkRate is the per-uplink-port line rate (100 Gbps with the paper's
	// default 2x speedup over the 400 Gbps host aggregate).
	LinkRate sim.Rate
}

// DefaultTiming returns the paper's §4.1 epoch settings.
func DefaultTiming() Timing {
	return Timing{
		Guardband:       10,
		PredefinedSlot:  60,
		MsgBytes:        30,
		ScheduledSlot:   90,
		DataHeaderBytes: 10,
		ScheduledSlots:  30,
		PropDelay:       2 * sim.Microsecond,
		LinkRate:        sim.Gbps(100),
	}
}

// PiggybackBytes is the data payload carried alongside one scheduling
// message in a predefined-phase slot: transmission time minus guardband at
// line rate, minus the message/header bytes (595 B at defaults).
func (t Timing) PiggybackBytes() int64 {
	n := t.LinkRate.BytesIn(t.PredefinedSlot-t.Guardband) - t.MsgBytes
	if n < 0 {
		return 0
	}
	return n
}

// DataPayloadBytes is the payload of one scheduled-phase packet (1115 B at
// defaults).
func (t Timing) DataPayloadBytes() int64 {
	n := t.LinkRate.BytesIn(t.ScheduledSlot) - t.DataHeaderBytes
	if n < 0 {
		return 0
	}
	return n
}

// PredefinedLen is the predefined phase duration for a topology needing
// the given number of round-robin slots.
func (t Timing) PredefinedLen(slots int) sim.Duration {
	return sim.Duration(slots) * t.PredefinedSlot
}

// ScheduledLen is the scheduled phase duration.
func (t Timing) ScheduledLen() sim.Duration {
	return sim.Duration(t.ScheduledSlots) * t.ScheduledSlot
}

// EpochLen is the full epoch duration.
func (t Timing) EpochLen(predefinedSlots int) sim.Duration {
	return t.PredefinedLen(predefinedSlots) + t.ScheduledLen()
}

// GuardbandShare is the fraction of the epoch spent in guardbands (the
// paper keeps it under 10%, 4.37% at defaults).
func (t Timing) GuardbandShare(predefinedSlots int) float64 {
	e := t.EpochLen(predefinedSlots)
	if e == 0 {
		return 0
	}
	return float64(sim.Duration(predefinedSlots)*t.Guardband) / float64(e)
}

// EpochPortBytes is the data one matched port can move in one scheduled
// phase, used as the stateful variant's matrix decrement.
func (t Timing) EpochPortBytes() int64 {
	return int64(t.ScheduledSlots) * t.DataPayloadBytes()
}

// Validate checks internal consistency.
func (t Timing) Validate(top topo.Topology) error {
	if t.Guardband < 0 || t.PredefinedSlot <= t.Guardband {
		return fmt.Errorf("negotiator: predefined slot %v must exceed guardband %v", t.PredefinedSlot, t.Guardband)
	}
	if t.ScheduledSlot <= 0 || t.ScheduledSlots <= 0 {
		return fmt.Errorf("negotiator: scheduled phase must be non-empty")
	}
	if t.LinkRate <= 0 {
		return fmt.Errorf("negotiator: non-positive link rate")
	}
	if t.PiggybackBytes() < 0 || t.DataPayloadBytes() <= 0 {
		return fmt.Errorf("negotiator: slot too short for headers")
	}
	if t.PropDelay < 0 {
		return fmt.Errorf("negotiator: negative propagation delay")
	}
	return nil
}

// StageLag is the number of epochs between consecutive pipeline stages:
// one when scheduling messages (sent during the predefined phase) arrive
// and are processed before the next epoch starts, more when the one-way
// delay exceeds an epoch (paper §3.3.1 footnote: the pipeline "expands to
// more epochs").
func (t Timing) StageLag(predefinedSlots int) int {
	epoch := t.EpochLen(predefinedSlots)
	deadline := t.PredefinedLen(predefinedSlots) + t.PropDelay
	lag := 1
	for sim.Duration(lag)*epoch < deadline {
		lag++
	}
	return lag
}

// ForReconfigDelay derives a timing with a different guardband
// (reconfiguration delay), keeping the message transmission time per
// predefined slot and stretching the scheduled phase so the guardband share
// of the epoch stays constant, as the paper does for Figure 8
// ("the length of the scheduled phase is accordingly adjusted to control
// the reconfiguration overhead"). predefinedSlots is the topology's
// round-robin slot count.
func (t Timing) ForReconfigDelay(guard sim.Duration, predefinedSlots int) Timing {
	nt := t
	nt.Guardband = guard
	nt.PredefinedSlot = t.PredefinedSlot - t.Guardband + guard
	share := t.GuardbandShare(predefinedSlots)
	if share > 0 && guard > 0 {
		// Solve slots' from: P*guard / (P*slot' + slots''*ScheduledSlot) = share.
		guardTotal := float64(int64(guard) * int64(predefinedSlots))
		predefLen := float64(int64(nt.PredefinedSlot) * int64(predefinedSlots))
		slots := int((guardTotal/share - predefLen) / float64(t.ScheduledSlot))
		if slots < 1 {
			slots = 1
		}
		nt.ScheduledSlots = slots
	}
	return nt
}
