package negotiator

import (
	"math"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if got := tm.PiggybackBytes(); got != 595 {
		t.Errorf("piggyback payload = %d B, want 595 (paper §4.1)", got)
	}
	if got := tm.DataPayloadBytes(); got != 1115 {
		t.Errorf("data payload = %d B, want 1115 (1125 B slot - 10 B header)", got)
	}
	// 128 ToRs x 8 ports: 16 predefined slots.
	if got := tm.PredefinedLen(16); got != 960 {
		t.Errorf("predefined phase = %v, want 0.96µs", got)
	}
	if got := tm.ScheduledLen(); got != 2700 {
		t.Errorf("scheduled phase = %v, want 2.7µs", got)
	}
	if got := tm.EpochLen(16); got != 3660 {
		t.Errorf("epoch = %v, want 3.66µs", got)
	}
	if got := tm.GuardbandShare(16); math.Abs(got-0.0437) > 0.0005 {
		t.Errorf("guardband share = %.4f, want ~4.37%%", got)
	}
	if got := tm.EpochPortBytes(); got != 30*1115 {
		t.Errorf("epoch port bytes = %d", got)
	}
}

func TestStageLag(t *testing.T) {
	tm := DefaultTiming()
	// Default: 0.96µs predefined + 2µs prop < 3.66µs epoch: lag 1.
	if got := tm.StageLag(16); got != 1 {
		t.Errorf("stage lag = %d, want 1", got)
	}
	// Very long propagation forces pipeline expansion (paper §3.3.1 fn 3).
	tm.PropDelay = 10 * sim.Microsecond
	if got := tm.StageLag(16); got != 3 {
		t.Errorf("stage lag with 10µs prop = %d, want 3 (ceil(10.96/3.66))", got)
	}
}

func TestForReconfigDelayKeepsGuardbandShare(t *testing.T) {
	tm := DefaultTiming()
	base := tm.GuardbandShare(16)
	for _, g := range []sim.Duration{20, 50, 100} {
		nt := tm.ForReconfigDelay(g, 16)
		if nt.Guardband != g {
			t.Fatalf("guardband not applied: %v", nt.Guardband)
		}
		// Transmission time per predefined slot is preserved.
		if got := nt.PredefinedSlot - nt.Guardband; got != 50 {
			t.Errorf("g=%v: message time = %v, want 50ns", g, got)
		}
		share := nt.GuardbandShare(16)
		if math.Abs(share-base) > 0.005 {
			t.Errorf("g=%v: guardband share %.4f, want ~%.4f", g, share, base)
		}
		if g == 100 && nt.ScheduledSlots < 300 {
			t.Errorf("g=100: scheduled slots = %d, want ~380 (stretched)", nt.ScheduledSlots)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	top, _ := topo.NewParallel(8, 2)
	good := DefaultTiming()
	if err := good.Validate(top); err != nil {
		t.Errorf("default timing invalid: %v", err)
	}
	bad := good
	bad.PredefinedSlot = bad.Guardband // no transmission time
	if bad.Validate(top) == nil {
		t.Error("slot <= guardband accepted")
	}
	bad = good
	bad.ScheduledSlots = 0
	if bad.Validate(top) == nil {
		t.Error("empty scheduled phase accepted")
	}
	bad = good
	bad.LinkRate = 0
	if bad.Validate(top) == nil {
		t.Error("zero link rate accepted")
	}
	bad = good
	bad.PropDelay = -1
	if bad.Validate(top) == nil {
		t.Error("negative propagation accepted")
	}
}

func TestNoSpeedupTiming(t *testing.T) {
	// Figure 11: no speedup = 50 Gbps per port on 8-port ToRs vs 400 Gbps
	// hosts. Slot durations stay, payloads halve.
	tm := DefaultTiming()
	tm.LinkRate = sim.Gbps(50)
	if got := tm.PiggybackBytes(); got != 282 {
		t.Errorf("no-speedup piggyback = %d, want 282 (312-30)", got)
	}
	if got := tm.DataPayloadBytes(); got != 552 {
		t.Errorf("no-speedup data payload = %d, want 552 (562-10)", got)
	}
}
