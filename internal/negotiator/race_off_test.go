//go:build !race

package negotiator

const raceEnabled = false
