package negotiator

import (
	"fmt"
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// steadyEngineAt builds a saturated engine of the given size with the
// given intra-run worker count (cf. steadyEngine, which pins the paper's
// 128x8 parallel network): one huge flow per ToR pair, run past warm-up so
// every epoch exercises the full hot path with no flow churn.
func steadyEngineAt(tb testing.TB, tors, ports, workers, warmupEpochs int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(tors, ports)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:       top,
		HostRate:       sim.Gbps(int64(ports) * 50),
		Piggyback:      true,
		PriorityQueues: true,
		Seed:           1,
		Workers:        workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(workload.NewAllToAll(tors, 1<<30, 0))
	e.RunEpochs(warmupEpochs)
	if !e.fab.WorkloadDone() {
		tb.Fatal("steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkEpochSteadyStateWorkers measures the sharded epoch at the
// paper's 128 ToRs and at the 256-ToR scale the sharding exists for,
// across worker counts (1, 2, 4, and GOMAXPROCS). On a multi-core host
// the epoch throughput scales with workers up to the core count; on one
// core the >1-worker rows expose the pure barrier/merge overhead of the
// sharded path. BENCH_pr2.json records the trajectory.
func BenchmarkEpochSteadyStateWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if nc := runtime.GOMAXPROCS(0); nc > 4 {
		counts = append(counts, nc)
	}
	for _, size := range []struct{ tors, ports int }{{128, 8}, {256, 16}} {
		for _, workers := range counts {
			b.Run(fmt.Sprintf("tors=%d/workers=%d", size.tors, workers), func(b *testing.B) {
				e := steadyEngineAt(b, size.tors, size.ports, workers, 100)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.runEpoch()
				}
			})
		}
	}
}
