package negotiator

import (
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/match"
	"negotiator/internal/metrics"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

func testTopo(t *testing.T, kind string) topo.Topology {
	t.Helper()
	switch kind {
	case "parallel":
		p, err := topo.NewParallel(16, 4)
		if err != nil {
			t.Fatal(err)
		}
		return p
	case "thinclos":
		tc, err := topo.NewThinClos(16, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		return tc
	}
	t.Fatalf("unknown topo %q", kind)
	return nil
}

func testConfig(t *testing.T, kind string) Config {
	return Config{
		Topology:        testTopo(t, kind),
		HostRate:        sim.Gbps(200), // 4 ports x 100G = 2x speedup
		Piggyback:       true,
		PriorityQueues:  true,
		Seed:            1,
		CheckInvariants: true,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	cfg := testConfig(t, "parallel")
	cfg.Relay = &RelayConfig{}
	if _, err := New(cfg); err == nil {
		t.Error("relay on parallel network accepted (thin-clos only)")
	}
}

func TestSingleFlowPiggybackOnly(t *testing.T) {
	// A flow smaller than the request threshold completes purely via
	// piggybacking, bypassing the scheduling delay (§3.4.1).
	for _, kind := range []string{"parallel", "thinclos"} {
		t.Run(kind, func(t *testing.T) {
			e, err := New(testConfig(t, kind))
			if err != nil {
				t.Fatal(err)
			}
			// 1000 B < threshold 3*595: never requested, sent as 595+405.
			e.SetWorkload(workload.NewSinglePair(2, 9, 1000, 0))
			e.Run(10 * e.EpochLen())
			r := e.Results()
			if r.FCT.Count() != 1 {
				t.Fatalf("completed flows = %d, want 1", r.FCT.Count())
			}
			fct := r.FCT.MiceP(100)
			// Two piggyback opportunities: done within 2 epochs + prop.
			max := 2*e.EpochLen() + 2*sim.Microsecond
			if fct > max {
				t.Errorf("piggyback-only FCT = %v, want <= %v", fct, max)
			}
			if r.Delivered != 1000 {
				t.Errorf("delivered = %d, want 1000", r.Delivered)
			}
		})
	}
}

func TestScheduledPathTiming(t *testing.T) {
	// A large flow must wait the ~2-epoch scheduling delay before bulk
	// transmission (paper §3.3.2): nothing beyond piggybacks moves in
	// epochs 0-1, bulk moves from epoch 2.
	e, err := New(testConfig(t, "parallel"))
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	e.SetWorkload(workload.NewSinglePair(0, 5, size, 0))
	piggy := e.timing.PiggybackBytes()
	e.RunEpochs(2)
	r := e.Results()
	if r.Delivered > 2*piggy {
		t.Fatalf("delivered %d bytes before scheduling delay elapsed, want <= %d", r.Delivered, 2*piggy)
	}
	e.RunEpochs(1)
	r = e.Results()
	wantBulk := int64(e.timing.ScheduledSlots) * e.timing.DataPayloadBytes()
	if r.Delivered < wantBulk {
		t.Fatalf("after epoch 2: delivered %d, want >= one port-epoch %d", r.Delivered, wantBulk)
	}
}

func TestElephantUsesMultiplePortsOnParallel(t *testing.T) {
	// On the parallel network a single backlogged pair can be granted
	// several ports of the destination at once.
	e, err := New(testConfig(t, "parallel"))
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewSinglePair(0, 5, 8<<20, 0))
	e.RunEpochs(4)
	perPort := int64(e.timing.ScheduledSlots) * e.timing.DataPayloadBytes()
	r := e.Results()
	// With 4 ports and one competitor-free pair, epoch 2 and 3 should each
	// move ~4 port-epochs of data.
	if r.Delivered < 4*perPort {
		t.Errorf("delivered %d, want >= %d (multi-port grants)", r.Delivered, 4*perPort)
	}
}

func TestThinClosSinglePathLimitsPair(t *testing.T) {
	// On thin-clos one pair has exactly one port-to-port path, so a
	// backlogged pair moves at most one port-epoch per epoch.
	e, err := New(testConfig(t, "thinclos"))
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewSinglePair(0, 5, 8<<20, 0))
	e.RunEpochs(4)
	perPort := int64(e.timing.ScheduledSlots) * e.timing.DataPayloadBytes()
	piggy := e.timing.PiggybackBytes()
	r := e.Results()
	maxPossible := 2*perPort + 4*piggy // epochs 2,3 scheduled + all piggybacks
	if r.Delivered > maxPossible {
		t.Errorf("delivered %d, want <= %d (single path)", r.Delivered, maxPossible)
	}
}

func TestConservationUnderLoad(t *testing.T) {
	// CheckInvariants panics on conservation or conflict violations; this
	// test passes if a loaded run completes.
	for _, kind := range []string{"parallel", "thinclos"} {
		cfg := testConfig(t, kind)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 1.0, cfg.HostRate, 7))
		e.Run(300 * sim.Microsecond)
		r := e.Results()
		if r.FCT.Count() == 0 {
			t.Errorf("%s: no flows completed", kind)
		}
		if r.Delivered <= 0 || r.Delivered > r.Injected {
			t.Errorf("%s: delivered %d of %d injected", kind, r.Delivered, r.Injected)
		}
	}
}

func TestDrain(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	e.SetWorkload(workload.NewAllToAll(16, 50<<10, 0))
	e.Run(100 * sim.Microsecond)
	if !e.Drain(100000) {
		t.Fatal("all-to-all failed to drain")
	}
	r := e.Results()
	if r.Delivered != r.Injected {
		t.Errorf("drained but delivered %d != injected %d", r.Delivered, r.Injected)
	}
	if r.FCT.Count() != 16*15 {
		t.Errorf("completed %d flows, want 240", r.FCT.Count())
	}
}

func TestIncastBypassFlat(t *testing.T) {
	// Incast finish time should be roughly flat in degree (paper Fig. 7a):
	// the predefined phase serves all sources of one destination in
	// parallel.
	finish := func(degree int) sim.Duration {
		cfg := testConfig(t, "parallel")
		e, _ := New(cfg)
		inc, err := workload.NewIncast(16, 3, degree, 1000, sim.Time(10*sim.Microsecond), 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(inc)
		e.Run(200 * sim.Microsecond)
		ts := e.Results().Tags[1]
		if ts == nil || ts.Done != degree {
			t.Fatalf("degree %d: incast incomplete: %+v", degree, ts)
		}
		return ts.End.Sub(ts.Start)
	}
	f2, f14 := finish(2), finish(14)
	if f14 > 2*f2+sim.Duration(2*e2e(t)) {
		t.Errorf("incast finish grows with degree: %v (2) vs %v (14)", f2, f14)
	}
}

func e2e(t *testing.T) sim.Duration {
	return DefaultTiming().EpochLen(testTopo(t, "parallel").PredefinedSlots())
}

func TestTagTracking(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	inc, _ := workload.NewIncast(16, 0, 5, 800, 1000, 42, 3)
	e.SetWorkload(inc)
	e.Run(50 * sim.Microsecond)
	ts := e.Results().Tags[42]
	if ts == nil {
		t.Fatal("tag not tracked")
	}
	if ts.Flows != 5 || ts.Done != 5 {
		t.Errorf("tag stats: %+v", ts)
	}
	if ts.Start != 1000 || ts.End <= ts.Start {
		t.Errorf("tag window: %+v", ts)
	}
}

func TestMatchRatioUnderSaturation(t *testing.T) {
	// Appendix A.1: the per-epoch accept/grant ratio at heavy load sits
	// near 1-(1-1/n)^n.
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	e.SetWorkload(workload.NewAllToAll(16, 1<<20, 0))
	e.Run(500 * sim.Microsecond)
	ratio := e.Results().MatchRatio.Mean()
	if ratio < 0.5 || ratio > 0.85 {
		t.Errorf("match ratio = %.3f, want ~0.63", ratio)
	}
}

func TestPriorityQueuesImproveMiceFCT(t *testing.T) {
	run := func(pq bool) sim.Duration {
		cfg := testConfig(t, "parallel")
		cfg.PriorityQueues = pq
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 1.0, cfg.HostRate, 11))
		e.Run(2 * sim.Millisecond)
		return e.Results().FCT.MiceP(99)
	}
	withPQ, withoutPQ := run(true), run(false)
	if withPQ > withoutPQ {
		t.Errorf("PQ made mice 99p FCT worse: %v vs %v", withPQ, withoutPQ)
	}
}

func TestPiggybackImprovesMiceFCT(t *testing.T) {
	run := func(pb bool) sim.Duration {
		cfg := testConfig(t, "parallel")
		cfg.Piggyback = pb
		cfg.PriorityQueues = false
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, cfg.HostRate, 13))
		e.Run(2 * sim.Millisecond)
		return e.Results().FCT.MiceMean()
	}
	withPB, withoutPB := run(true), run(false)
	if withPB >= withoutPB {
		t.Errorf("piggybacking made mice mean FCT worse: %v vs %v", withPB, withoutPB)
	}
}

func TestMatcherVariantsRun(t *testing.T) {
	// Every variant completes a loaded run with invariants on.
	factories := map[string]func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher{
		"stateful": func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
			return match.NewStateful(tp, rng, tm.EpochPortBytes())
		},
		"datasize": func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
			return match.NewDataSize(tp, rng)
		},
		"holdelay": func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
			return match.NewHoLDelay(tp, rng)
		},
		"projector": func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
			return match.NewProjecToR(tp, rng)
		},
		"iterative3": func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
			return match.NewIterative(tp, rng, 3)
		},
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, "parallel")
			cfg.NewMatcher = f
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 17))
			e.Run(500 * sim.Microsecond)
			r := e.Results()
			if r.FCT.Count() == 0 {
				t.Error("no completions")
			}
		})
	}
}

func TestIterativeDelaysHurtFCT(t *testing.T) {
	// Appendix A.2.1: iteration lengthens the scheduling delay, hurting
	// FCT. Compare mice FCT of iterative-5 vs base at moderate load with
	// piggybacking off (so the scheduled path dominates).
	run := func(iters int) sim.Duration {
		cfg := testConfig(t, "parallel")
		cfg.Piggyback = false
		if iters > 0 {
			cfg.NewMatcher = func(tp topo.Topology, tm Timing, rng *sim.RNG) match.Matcher {
				return match.NewIterative(tp, rng, iters)
			}
		}
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.5, cfg.HostRate, 23))
		e.Run(1 * sim.Millisecond)
		return e.Results().FCT.MiceMean()
	}
	base, iter5 := run(0), run(5)
	if iter5 <= base {
		t.Errorf("iterative-5 mean mice FCT %v should exceed base %v", iter5, base)
	}
}

func TestFailureLosesAndRecovers(t *testing.T) {
	cfg := testConfig(t, "parallel")
	epoch := DefaultTiming().EpochLen(4) // 16 ToRs, 4 ports: 4 predefined slots... computed below
	_ = epoch
	e0, _ := New(cfg)
	failAt := sim.Time(20 * e0.EpochLen())
	recoverAt := sim.Time(60 * e0.EpochLen())
	cfg.Failures = failure.Random(16, 4, 0.15, failAt, recoverAt, 3*e0.EpochLen(), 9)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 31))
	e.Run(120 * e0.EpochLen())
	r := e.Results()
	if r.LostBytes == 0 {
		t.Error("no bytes lost despite 15% link failures")
	}
	if r.FCT.Count() == 0 {
		t.Error("no flows completed across failure")
	}
	// Conservation (ledger) held throughout via CheckInvariants.
}

func TestFailureBandwidthDrop(t *testing.T) {
	// During failures, delivered bandwidth drops; after recovery it
	// returns (paper Fig. 10).
	cfg := testConfig(t, "parallel")
	e0, _ := New(cfg)
	ep := e0.EpochLen()
	series := metrics.NewTimeSeries(10 * ep)
	cfg.OnDeliver = func(dst int, at sim.Time, n int64) { series.Add(at, n) }
	cfg.Failures = failure.Random(16, 4, 0.25, sim.Time(100*ep), sim.Time(200*ep), 3*ep, 10)
	e, _ := New(cfg)
	e.SetWorkload(workload.NewPoisson(workload.Fixed(1<<20), 16, 0.9, cfg.HostRate, 37))
	e.Run(300 * ep)
	pre := series.MeanGbpsBetween(sim.Time(50*ep), sim.Time(100*ep))
	during := series.MeanGbpsBetween(sim.Time(130*ep), sim.Time(200*ep))
	post := series.MeanGbpsBetween(sim.Time(240*ep), sim.Time(300*ep))
	if during >= pre {
		t.Errorf("failure did not reduce bandwidth: pre=%.1f during=%.1f", pre, during)
	}
	if post < during {
		t.Errorf("recovery did not restore bandwidth: during=%.1f post=%.1f", during, post)
	}
}

func TestSelectiveRelayRuns(t *testing.T) {
	cfg := testConfig(t, "thinclos")
	cfg.Relay = &RelayConfig{}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.5, cfg.HostRate, 41))
	e.Run(1 * sim.Millisecond)
	r := e.Results()
	if r.FCT.Count() == 0 {
		t.Fatal("no completions with relay enabled")
	}
	if r.Delivered > r.Injected {
		t.Fatal("over-delivery with relay")
	}
}

func TestOnDeliverObserver(t *testing.T) {
	cfg := testConfig(t, "parallel")
	var observed int64
	cfg.OnDeliver = func(dst int, at sim.Time, n int64) {
		if dst == 9 {
			observed += n
		}
	}
	e, _ := New(cfg)
	e.SetWorkload(workload.NewSinglePair(2, 9, 40<<10, 0))
	e.Run(200 * sim.Microsecond)
	if observed != 40<<10 {
		t.Errorf("observer saw %d bytes, want %d", observed, 40<<10)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, sim.Duration) {
		cfg := testConfig(t, "thinclos")
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.7, cfg.HostRate, 99))
		e.Run(500 * sim.Microsecond)
		r := e.Results()
		return r.Delivered, r.FCT.MiceP(99)
	}
	d1, f1 := run()
	d2, f2 := run()
	if d1 != d2 || f1 != f2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", d1, f1, d2, f2)
	}
}
