//go:build race

package negotiator

// raceEnabled reports whether the race detector is compiled in; the
// 4096-ToR lazy-vs-eager test skips under race (the EAGER side's slabs
// times the detector's shadow memory would dominate CI memory).
const raceEnabled = true
