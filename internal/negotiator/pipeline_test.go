package negotiator

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/workload"
)

// TestPipelineExpandsWithLongPropagation verifies the paper's footnote 3:
// when the one-way delay exceeds an epoch, the pipeline stretches to more
// epochs but scheduling still works.
func TestPipelineExpandsWithLongPropagation(t *testing.T) {
	cfg := testConfig(t, "parallel")
	tm := DefaultTiming()
	tm.PropDelay = 12 * sim.Microsecond // >> 2.94µs epoch at 16x4
	cfg.Timing = tm
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.stageLag < 2 {
		t.Fatalf("stage lag = %d, want >= 2 for 12µs propagation", e.stageLag)
	}
	e.SetWorkload(workload.NewSinglePair(0, 5, 4<<20, 0))
	e.RunEpochs(2 * e.stageLag)
	// Nothing scheduled may move before 2*stageLag epochs.
	piggy := e.timing.PiggybackBytes()
	if d := e.Results().Delivered; d > int64(2*e.stageLag)*piggy {
		t.Fatalf("delivered %d before the stretched pipeline could fill", d)
	}
	e.RunEpochs(4)
	if d := e.Results().Delivered; d < e.timing.EpochPortBytes() {
		t.Fatalf("stretched pipeline never delivered bulk data: %d", d)
	}
}

// TestRequestThresholdBehaviour: flows at or below the threshold ride the
// piggyback path only; the first scheduled transmission happens only for
// queues exceeding 3 piggyback payloads (§3.4.1).
func TestRequestThresholdBehaviour(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	thr := e.threshold
	if want := 3 * e.timing.PiggybackBytes(); thr != want {
		t.Fatalf("threshold = %d, want %d", thr, want)
	}
	// Without piggybacking the threshold is zero.
	cfg2 := testConfig(t, "parallel")
	cfg2.Piggyback = false
	e2, _ := New(cfg2)
	if e2.threshold != 0 {
		t.Fatalf("threshold without PB = %d, want 0", e2.threshold)
	}
	// Custom threshold plumbs through.
	cfg3 := testConfig(t, "parallel")
	cfg3.RequestThresholdPkts = 5
	e3, _ := New(cfg3)
	if want := 5 * e3.timing.PiggybackBytes(); e3.threshold != want {
		t.Fatalf("custom threshold = %d, want %d", e3.threshold, want)
	}
}

// TestPiggybackBudgetPerPair: within one epoch, a pair moves at most one
// piggyback payload through the predefined phase.
func TestPiggybackBudgetPerPair(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	// Queue below the request threshold so only piggybacking acts.
	size := e.timing.PiggybackBytes() * 3 // == threshold, not above
	e.SetWorkload(workload.NewSinglePair(0, 5, size, 0))
	piggy := e.timing.PiggybackBytes()
	for k := 1; k <= 3; k++ {
		e.RunEpochs(1)
		if d := e.Results().Delivered; d > int64(k)*piggy {
			t.Fatalf("after %d epochs delivered %d > %d (one payload per epoch)",
				k, d, int64(k)*piggy)
		}
	}
	e.RunEpochs(2)
	if d := e.Results().Delivered; d != size {
		t.Fatalf("piggyback path delivered %d of %d", d, size)
	}
}

// TestPredefinedSlotTimeScalesPiggyback (Figure 12a's mechanism): longer
// predefined slots carry more unscheduled data.
func TestPredefinedSlotTimeScalesPiggyback(t *testing.T) {
	tm := DefaultTiming()
	base := tm.PiggybackBytes() // 60ns slot: 595B
	tm.PredefinedSlot = 120
	if got := tm.PiggybackBytes(); got != 1345 {
		t.Errorf("120ns slot piggyback = %d, want 1345 (110ns*12.5-30)", got)
	}
	tm.PredefinedSlot = 20
	if got := tm.PiggybackBytes(); got != 95 {
		t.Errorf("20ns slot piggyback = %d, want 95", got)
	}
	if base != 595 {
		t.Errorf("default piggyback = %d", base)
	}
}

// TestSchedulingDelayTwoEpochs measures the paper's headline scheduling
// delay: a just-above-threshold flow arriving at an epoch boundary gets its
// first scheduled transmission exactly two epochs later.
func TestSchedulingDelayTwoEpochs(t *testing.T) {
	cfg := testConfig(t, "parallel")
	cfg.PriorityQueues = false
	e, _ := New(cfg)
	size := 20 * e.timing.PiggybackBytes()
	e.SetWorkload(workload.NewSinglePair(2, 9, size, 0))
	piggy := e.timing.PiggybackBytes()

	e.RunEpochs(1) // epoch 0: request sent; only piggyback moves
	d0 := e.Results().Delivered
	if d0 > piggy {
		t.Fatalf("epoch 0 delivered %d > one piggyback", d0)
	}
	e.RunEpochs(1) // epoch 1: grant in flight; still piggyback only
	d1 := e.Results().Delivered - d0
	if d1 > piggy {
		t.Fatalf("epoch 1 delivered %d > one piggyback", d1)
	}
	e.RunEpochs(1) // epoch 2: accept + scheduled transmission
	d2 := e.Results().Delivered - d0 - d1
	if d2 <= piggy {
		t.Fatalf("epoch 2 delivered only %d; scheduled phase should carry bulk", d2)
	}
}

// TestMatchRatioSeriesLength: one observation per epoch.
func TestMatchRatioSeriesLength(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.5, cfg.HostRate, 3))
	e.RunEpochs(37)
	if got := e.Results().MatchRatio.Len(); got != 37 {
		t.Fatalf("ratio observations = %d, want 37", got)
	}
}

// TestSelectiveRelayMovesElephantBytes: under a sustained single-pair
// elephant on thin-clos (single direct path), the relay extension must
// actually carry bytes through intermediates and still deliver everything
// exactly once.
func TestSelectiveRelayMovesElephantBytes(t *testing.T) {
	run := func(relay bool) (int64, bool) {
		cfg := testConfig(t, "thinclos")
		cfg.Relay = nil
		if relay {
			cfg.Relay = &RelayConfig{}
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		size := int64(4 << 20)
		e.SetWorkload(workload.NewSinglePair(0, 5, size, 0))
		drained := e.Drain(20000)
		return e.Results().Delivered, drained
	}
	dBase, okBase := run(false)
	dRelay, okRelay := run(true)
	if !okBase || !okRelay {
		t.Fatal("failed to drain")
	}
	if dBase != dRelay || dBase != 4<<20 {
		t.Fatalf("delivery mismatch: base=%d relay=%d", dBase, dRelay)
	}
}

// TestSelectiveRelaySpeedsUpSinglePairElephant: with one backlogged pair
// and an otherwise idle thin-clos fabric, two-hop paths add bandwidth, so
// the elephant must finish no later than the single-path base. (The paper
// finds the gain mostly vanishes under realistic mixed load — Table 3 —
// but the mechanism itself must work.)
func TestSelectiveRelaySpeedsUpSinglePairElephant(t *testing.T) {
	finish := func(relay bool) sim.Duration {
		cfg := testConfig(t, "thinclos")
		if relay {
			cfg.Relay = &RelayConfig{}
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(workload.NewSinglePair(0, 5, 8<<20, 0))
		if !e.Drain(40000) {
			t.Fatal("drain failed")
		}
		r := e.Results()
		return r.FCT.P(100)
	}
	base, relay := finish(false), finish(true)
	if relay > base {
		t.Errorf("relay slowed the elephant: %v vs base %v", relay, base)
	}
}

// TestRotationChangesControlPort: the predefined-phase port used by a pair
// must change across epochs on the parallel network (§3.6.1).
func TestRotationChangesControlPort(t *testing.T) {
	cfg := testConfig(t, "parallel")
	e, _ := New(cfg)
	_, p0 := e.top.PredefinedSlotPort(2, 9, e.rotation(0))
	seen := map[int]bool{p0: true}
	for epoch := int64(1); epoch < 4; epoch++ {
		_, p := e.top.PredefinedSlotPort(2, 9, e.rotation(epoch))
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Errorf("control port did not rotate across 4 epochs: %v", seen)
	}
}
