package negotiator

import (
	"runtime"
	"testing"
	"time"
)

// measureSparseEpoch returns a noise-resistant per-epoch cost for an
// n-ToR engine with 256 active ToRs: best-of-reps over batched epochs,
// so a single GC pause or scheduler hiccup cannot inflate the figure.
func measureSparseEpoch(tb testing.TB, n int) time.Duration {
	e := sparseEngine(tb, n, 256, 1)
	for i := 0; i < 4; i++ {
		e.runEpoch() // settle caches and the incremental request path
	}
	runtime.GC()
	const epochs = 20
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		for i := 0; i < epochs; i++ {
			e.runEpoch()
		}
		if d := time.Since(start) / epochs; d < best {
			best = d
		}
	}
	return best
}

// TestNoWidthProportionalWork pins the O(active)-per-round property:
// with the active set held at 256 ToRs, widening the fabric 8x (8192 ->
// 65536) must not widen the per-epoch cost anywhere near 8x. Every phase
// of the epoch — accept, grant/request emission, mailbox merge, the
// predefined and scheduled transmission sweeps — walks occupancy indexes
// whose iteration cost is O(members + N/4096), so the measured ratio
// sits around 1.4x; a dense per-ToR sweep sneaking back into any phase
// pushes it past 5x. The 4x bound splits those regimes with margin for
// machine noise on both sides.
func TestNoWidthProportionalWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ratio needs full-size engines")
	}
	small := measureSparseEpoch(t, 8192)
	wide := measureSparseEpoch(t, 65536)
	ratio := float64(wide) / float64(small)
	t.Logf("sparse epoch: 8192 ToRs %v, 65536 ToRs %v, ratio %.2f", small, wide, ratio)
	if ratio > 4 {
		t.Fatalf("8x width costs %.2fx per epoch (%v -> %v): a width-proportional per-round term is back", ratio, small, wide)
	}
}
