package sim

// State exposes the generator's internal xoshiro256** state for
// checkpointing. Restoring it with SetState resumes the stream at exactly
// the next draw.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator state with one captured by State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }
