package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). Every stochastic component of the
// simulator owns its own RNG derived from the run seed, so results are
// reproducible regardless of iteration order and independent of math/rand
// version changes.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// independent streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		// splitmix64 step.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new independent generator derived from r's stream,
// perturbed by id. Use it to hand each component (ToR, workload source,
// ring) its own stream.
func (r *RNG) Split(id int64) *RNG {
	return NewRNG(int64(r.Uint64() ^ (uint64(id) * 0x9e3779b97f4a7c15)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, for Poisson arrival processes. The result is at least 1 ns so that
// arrival sequences strictly advance.
func (r *RNG) ExpDuration(mean Duration) Duration {
	if mean <= 0 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (r *RNG) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
