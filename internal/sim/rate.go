package sim

// Rate is a link rate expressed in bytes per 8 nanoseconds. The unusual unit
// makes the common datacenter rates exact integers (100 Gbps = 100 bytes per
// 8 ns) so slot payload arithmetic stays integral.
type Rate int64

// Gbps returns the rate for a whole number of gigabits per second.
// 1 Gbps = 1e9 bits/s = 0.125 B/ns = 1 byte per 8 ns.
func Gbps(g int64) Rate { return Rate(g) }

// GbpsValue reports the rate in gigabits per second.
func (r Rate) GbpsValue() float64 { return float64(r) }

// BytesIn returns how many whole bytes the rate transfers in d.
func (r Rate) BytesIn(d Duration) int64 {
	return int64(r) * int64(d) / 8
}

// TimeFor returns the duration needed to transfer n bytes at rate r,
// rounded up to whole nanoseconds.
func (r Rate) TimeFor(n int64) Duration {
	if r <= 0 {
		return 0
	}
	return Duration((n*8 + int64(r) - 1) / int64(r))
}

// BytesPerSecond reports the rate in bytes per second.
func (r Rate) BytesPerSecond() float64 { return float64(r) * 0.125e9 }
