// Package sim provides the low-level substrate shared by the fabric engines:
// a nanosecond-resolution simulated clock, deterministic pseudo-random
// number generation, and link-rate arithmetic helpers.
//
// All fabric engines in this repository are epoch-synchronous: the optical
// fabric is globally time-synchronised and slot-quantised, so simulated time
// only ever advances in whole slots. Time is therefore represented as an
// integer number of nanoseconds, which keeps the hot loops free of floating
// point and makes runs bit-for-bit reproducible.
package sim

import "fmt"

// Time is an absolute simulated time in nanoseconds since the start of the
// run. The zero value is the start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time with an adaptive unit, e.g. "3.66µs".
func (t Time) String() string { return Duration(t).String() }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }
