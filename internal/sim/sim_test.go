package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	var t0 Time
	t1 := t0.Add(60)
	if t1 != 60 {
		t.Fatalf("Add: got %d, want 60", t1)
	}
	if d := t1.Sub(t0); d != 60 {
		t.Fatalf("Sub: got %d, want 60", d)
	}
	if d := t0.Sub(t1); d != -60 {
		t.Fatalf("Sub negative: got %d, want -60", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{10, "10ns"},
		{999, "999ns"},
		{3660, "3.66µs"},
		{2 * Microsecond, "2µs"},
		{30 * Millisecond, "30ms"},
		{Second, "1s"},
		{-10, "-10ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 3660 * Nanosecond
	if got := d.Micros(); math.Abs(got-3.66) > 1e-12 {
		t.Errorf("Micros = %v, want 3.66", got)
	}
	if got := (30 * Millisecond).Seconds(); math.Abs(got-0.03) > 1e-15 {
		t.Errorf("Seconds = %v, want 0.03", got)
	}
	if got := (500 * Microsecond).Millis(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Millis = %v, want 0.5", got)
	}
}

func TestRateExactness(t *testing.T) {
	r := Gbps(100) // 100 Gbps = 12.5 B/ns
	if got := r.BytesIn(80); got != 1000 {
		t.Errorf("100Gbps over 80ns = %d bytes, want 1000", got)
	}
	if got := r.BytesIn(50); got != 625 {
		t.Errorf("100Gbps over 50ns = %d bytes, want 625 (paper's predefined payload+msg)", got)
	}
	if got := r.BytesIn(90); got != 1125 {
		t.Errorf("100Gbps over 90ns = %d bytes, want 1125 (paper's data slot)", got)
	}
	if got := r.GbpsValue(); got != 100 {
		t.Errorf("GbpsValue = %v, want 100", got)
	}
}

func TestRateTimeFor(t *testing.T) {
	r := Gbps(100)
	if got := r.TimeFor(1125); got != 90 {
		t.Errorf("TimeFor(1125) = %d, want 90", got)
	}
	// Rounds up.
	if got := r.TimeFor(1); got != 1 {
		t.Errorf("TimeFor(1) = %d, want 1", got)
	}
	if got := Rate(0).TimeFor(100); got != 0 {
		t.Errorf("zero rate TimeFor = %d, want 0", got)
	}
}

func TestRateRoundTripProperty(t *testing.T) {
	// For any byte count, transferring for TimeFor(n) at the same rate
	// moves at least n bytes (TimeFor rounds up).
	f := func(n uint16, g uint8) bool {
		r := Gbps(int64(g%200) + 1)
		moved := r.BytesIn(r.TimeFor(int64(n)))
		return moved >= int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds look correlated: %d/1000 equal draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	s1 := parent.Split(1)
	parent2 := NewRNG(7)
	_ = parent2.Split(1)
	s2 := parent2.Split(2)
	equal := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			equal++
		}
	}
	if equal > 10 {
		t.Errorf("split streams correlated: %d/1000 equal", equal)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGExpDurationMean(t *testing.T) {
	r := NewRNG(3)
	const mean = 10 * Microsecond
	var sum int64
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 1 {
			t.Fatalf("ExpDuration returned %d < 1", d)
		}
		sum += int64(d)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Errorf("ExpDuration mean = %v, want ~%v", got, float64(mean))
	}
	if d := r.ExpDuration(0); d != 1 {
		t.Errorf("ExpDuration(0) = %d, want 1", d)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(4)
	p := make([]int, 50)
	r.Perm(p)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
	// Identity is astronomically unlikely.
	identity := true
	for i, v := range p {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Error("Perm returned identity permutation")
	}
}
