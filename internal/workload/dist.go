// Package workload generates the traffic the paper evaluates on: flow-size
// distributions modelled after published datacenter traces, Poisson arrival
// processes following the paper's load definition L = F/(R·N·τ) (§4.1), and
// the synthetic incast, all-to-all, single-pair and mixed-incast workloads
// of §4.2 and §4.4.
//
// The published traces themselves (Meta Hadoop, DCTCP web search, Google
// aggregated) are not redistributable, so each is reproduced as a piecewise
// log-linear CDF matching every property the paper states about it; see
// DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math"
	"sort"

	"negotiator/internal/sim"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size.
	Sample(r *sim.RNG) int64
	// Mean returns the distribution's expected flow size in bytes.
	Mean() float64
	// Name returns a short identifier.
	Name() string
}

// CDFPoint anchors a piecewise log-linear size CDF: Frac of flows are of
// size <= Size bytes.
type CDFPoint struct {
	Size int64
	Frac float64
}

// CDF is a flow-size distribution interpolated log-linearly between anchor
// points, the standard way DCN papers encode trace size distributions.
type CDF struct {
	name string
	pts  []CDFPoint
	mean float64
}

// NewCDF builds a distribution from anchor points. Points must have
// strictly increasing sizes and non-decreasing fractions ending at 1.0.
// An implicit starting anchor at (minSize, 0) is added using the first
// point's size scaled down if the first fraction is positive.
func NewCDF(name string, pts []CDFPoint) (*CDF, error) {
	if len(pts) < 1 {
		return nil, fmt.Errorf("workload: CDF %q needs at least one point", name)
	}
	sorted := make([]CDFPoint, 0, len(pts)+1)
	if pts[0].Frac > 0 {
		first := pts[0].Size / 2
		if first < 1 {
			first = 1
		}
		sorted = append(sorted, CDFPoint{Size: first, Frac: 0})
	}
	sorted = append(sorted, pts...)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Size <= sorted[i-1].Size {
			return nil, fmt.Errorf("workload: CDF %q sizes not increasing at %d", name, i)
		}
		if sorted[i].Frac < sorted[i-1].Frac {
			return nil, fmt.Errorf("workload: CDF %q fractions decreasing at %d", name, i)
		}
	}
	if last := sorted[len(sorted)-1]; last.Frac != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at fraction 1, got %v", name, last.Frac)
	}
	c := &CDF{name: name, pts: sorted}
	c.mean = c.computeMean()
	return c, nil
}

// MustCDF is NewCDF that panics on error, for package-level trace tables.
func MustCDF(name string, pts []CDFPoint) *CDF {
	c, err := NewCDF(name, pts)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *CDF) Name() string  { return c.name }
func (c *CDF) Mean() float64 { return c.mean }

// computeMean integrates the log-linear segments analytically:
// over a segment from (s0,f0) to (s1,f1), size(u) = s0·(s1/s0)^((u-f0)/(f1-f0)),
// whose integral over u is (f1-f0)·(s1-s0)/ln(s1/s0).
func (c *CDF) computeMean() float64 {
	var mean float64
	for i := 1; i < len(c.pts); i++ {
		p0, p1 := c.pts[i-1], c.pts[i]
		df := p1.Frac - p0.Frac
		if df == 0 {
			continue
		}
		s0, s1 := float64(p0.Size), float64(p1.Size)
		mean += df * (s1 - s0) / math.Log(s1/s0)
	}
	return mean
}

// Sample draws a size by inverse transform with log-linear interpolation.
func (c *CDF) Sample(r *sim.RNG) int64 {
	u := r.Float64()
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].Frac >= u })
	if i == 0 {
		return c.pts[0].Size
	}
	if i >= len(c.pts) {
		return c.pts[len(c.pts)-1].Size
	}
	p0, p1 := c.pts[i-1], c.pts[i]
	df := p1.Frac - p0.Frac
	if df == 0 {
		return p1.Size
	}
	frac := (u - p0.Frac) / df
	s := float64(p0.Size) * math.Pow(float64(p1.Size)/float64(p0.Size), frac)
	n := int64(math.Round(s))
	if n < 1 {
		n = 1
	}
	return n
}

// FracBelow returns the fraction of flows strictly smaller than size,
// evaluated on the anchor polyline (used by tests asserting the paper's
// stated trace properties).
func (c *CDF) FracBelow(size int64) float64 {
	if size <= c.pts[0].Size {
		return 0
	}
	last := c.pts[len(c.pts)-1]
	if size >= last.Size {
		return 1
	}
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].Size >= size })
	p0, p1 := c.pts[i-1], c.pts[i]
	frac := math.Log(float64(size)/float64(p0.Size)) / math.Log(float64(p1.Size)/float64(p0.Size))
	return p0.Frac + frac*(p1.Frac-p0.Frac)
}

// ByteFracAbove estimates the fraction of bytes contributed by flows of at
// least size bytes, via numeric quadrature over the CDF.
func (c *CDF) ByteFracAbove(size int64) float64 {
	const steps = 100000
	var total, above float64
	for k := 0; k < steps; k++ {
		u := (float64(k) + 0.5) / steps
		s := c.quantile(u)
		total += s
		if s >= float64(size) {
			above += s
		}
	}
	if total == 0 {
		return 0
	}
	return above / total
}

func (c *CDF) quantile(u float64) float64 {
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].Frac >= u })
	if i == 0 {
		return float64(c.pts[0].Size)
	}
	if i >= len(c.pts) {
		return float64(c.pts[len(c.pts)-1].Size)
	}
	p0, p1 := c.pts[i-1], c.pts[i]
	df := p1.Frac - p0.Frac
	if df == 0 {
		return float64(p1.Size)
	}
	frac := (u - p0.Frac) / df
	return float64(p0.Size) * math.Pow(float64(p1.Size)/float64(p0.Size), frac)
}

// Hadoop returns the Meta Hadoop-cluster distribution (paper §4.1, after
// Roy et al. [41]): highly tailed, ~60% of flows below 1 KB while >80% of
// bytes come from flows larger than 100 KB.
func Hadoop() *CDF {
	return MustCDF("hadoop", []CDFPoint{
		{Size: 150, Frac: 0.10},
		{Size: 350, Frac: 0.40},
		{Size: 1 << 10, Frac: 0.60},
		{Size: 5 << 10, Frac: 0.70},
		{Size: 20 << 10, Frac: 0.78},
		{Size: 100 << 10, Frac: 0.85},
		{Size: 500 << 10, Frac: 0.92},
		{Size: 2 << 20, Frac: 0.97},
		{Size: 5 << 20, Frac: 0.99},
		{Size: 10 << 20, Frac: 1.0},
	})
}

// WebSearch returns the DCTCP web-search distribution (paper §4.4, after
// Alizadeh et al. [1]): heavier, with >80% of flows exceeding 10 KB.
func WebSearch() *CDF {
	return MustCDF("websearch", []CDFPoint{
		{Size: 6 << 10, Frac: 0.10},
		{Size: 13 << 10, Frac: 0.18},
		{Size: 19 << 10, Frac: 0.28},
		{Size: 33 << 10, Frac: 0.40},
		{Size: 53 << 10, Frac: 0.53},
		{Size: 133 << 10, Frac: 0.60},
		{Size: 667 << 10, Frac: 0.70},
		{Size: 1460 << 10, Frac: 0.80},
		{Size: 3333 << 10, Frac: 0.90},
		{Size: 6667 << 10, Frac: 0.95},
		{Size: 20 << 20, Frac: 0.98},
		{Size: 30 << 20, Frac: 1.0},
	})
}

// GoogleAgg returns the aggregated Google-datacenter distribution (paper
// §4.4, after Montazeri et al. [34] and Sivaram [46]): light per-flow —
// >80% of flows below 1 KB — with a long tail carrying most bytes.
func GoogleAgg() *CDF {
	return MustCDF("google", []CDFPoint{
		{Size: 100, Frac: 0.40},
		{Size: 300, Frac: 0.60},
		{Size: 575, Frac: 0.75},
		{Size: 1 << 10, Frac: 0.82},
		{Size: 10 << 10, Frac: 0.92},
		{Size: 100 << 10, Frac: 0.96},
		{Size: 1 << 20, Frac: 0.985},
		{Size: 10 << 20, Frac: 0.998},
		{Size: 64 << 20, Frac: 1.0},
	})
}

// Fixed returns a degenerate distribution of one size, used by the incast
// and all-to-all microbenchmarks.
func Fixed(size int64) *CDF {
	return &CDF{name: fmt.Sprintf("fixed-%dB", size),
		pts: []CDFPoint{{Size: size, Frac: 1}}, mean: float64(size)}
}
