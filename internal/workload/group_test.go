package workload

import (
	"testing"

	"negotiator/internal/sim"
)

// sliceGen replays a fixed arrival sequence.
type sliceGen struct {
	as  []Arrival
	pos int
}

func (g *sliceGen) Next() (Arrival, bool) {
	if g.pos >= len(g.as) {
		return Arrival{}, false
	}
	a := g.as[g.pos]
	g.pos++
	return a, true
}

func TestGroupByRejectsBadFactor(t *testing.T) {
	if _, err := NewGroupBy(&sliceGen{}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewGroupBy(&sliceGen{}, -3); err == nil {
		t.Error("k=-3 accepted")
	}
}

// TestGroupByIdentityPassthrough pins the golden-compatibility property:
// with k == 1 and a stream with no identical neighbours, the wrapped output
// is byte-identical to the input (Count stays 0 — not normalized to 1).
func TestGroupByIdentityPassthrough(t *testing.T) {
	in := []Arrival{
		{Time: 10, Src: 0, Dst: 1, Size: 100},
		{Time: 10, Src: 0, Dst: 1, Size: 200}, // differs in size: no coalesce
		{Time: 20, Src: 2, Dst: 3, Size: 200, Tag: 5},
	}
	g, err := NewGroupBy(&sliceGen{as: in}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range in {
		got, ok := g.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if got != want {
			t.Errorf("arrival %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("stream should be exhausted")
	}
}

// TestGroupByCoalesces checks that consecutive identical arrivals merge
// into one group whose member count is the combined count times k, and
// that a differing neighbour breaks the run.
func TestGroupByCoalesces(t *testing.T) {
	in := []Arrival{
		{Time: 10, Src: 0, Dst: 1, Size: 100},
		{Time: 10, Src: 0, Dst: 1, Size: 100},
		{Time: 10, Src: 0, Dst: 1, Size: 100},
		{Time: 20, Src: 0, Dst: 1, Size: 100},           // later time: new record
		{Time: 30, Src: 4, Dst: 5, Size: 100, Count: 6}, // already a group
	}
	g, err := NewGroupBy(&sliceGen{as: in}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{Time: 10, Src: 0, Dst: 1, Size: 100, Count: 6},
		{Time: 20, Src: 0, Dst: 1, Size: 100, Count: 2},
		{Time: 30, Src: 4, Dst: 5, Size: 100, Count: 12},
	}
	for i, w := range want {
		got, ok := g.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if got != w {
			t.Errorf("group %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("stream should be exhausted")
	}
}

// TestSetGroupNative checks the native Grouper path on the three
// generators that implement it: the RNG draws and arrival process are
// untouched — only Count is stamped — and SetGroup(1) restores the exact
// ungrouped stream.
func TestSetGroupNative(t *testing.T) {
	perm := func() Generator { g, _ := NewPermutation(64, 16, 1000, 5); return g }
	hot := func() Generator {
		g, _ := NewHotspot(Fixed(1000), 64, 0.5, sim.Gbps(400), 4, 0.5, 7)
		return g
	}
	diur := func() Generator {
		g, _ := NewDiurnal(Fixed(1000), 64, 0.5, sim.Gbps(400), sim.Millisecond, 0.1, 7)
		return g
	}
	for name, mk := range map[string]func() Generator{"permutation": perm, "hotspot": hot, "diurnal": diur} {
		base, grouped := mk(), mk()
		grouped.(Grouper).SetGroup(8)
		for i := 0; i < 50; i++ {
			b, okB := base.Next()
			g, okG := grouped.Next()
			if okB != okG {
				t.Fatalf("%s: stream lengths diverge at %d", name, i)
			}
			if !okB {
				break
			}
			if g.Count != 8 {
				t.Fatalf("%s: arrival %d Count = %d, want 8", name, i, g.Count)
			}
			g.Count = 0
			if g != b {
				t.Errorf("%s: arrival %d = %+v, want %+v modulo Count", name, i, g, b)
			}
		}
		reset := mk()
		reset.(Grouper).SetGroup(8)
		reset.(Grouper).SetGroup(1)
		b, _ := mk().Next()
		r, _ := reset.Next()
		if r != b {
			t.Errorf("%s: SetGroup(1) not a strict no-op: %+v vs %+v", name, r, b)
		}
	}
}
