package workload

import (
	"testing"

	"negotiator/internal/sim"
)

// BenchmarkPoissonNext measures arrival generation (exponential draw, CDF
// inversion, endpoint selection) — called hundreds of thousands of times
// per simulated millisecond at full load.
func BenchmarkPoissonNext(b *testing.B) {
	g := NewPoisson(Hadoop(), 128, 1.0, sim.Gbps(400), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkCDFSample isolates the log-linear inverse-transform sampling.
func BenchmarkCDFSample(b *testing.B) {
	d := WebSearch()
	rng := sim.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
