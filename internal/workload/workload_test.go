package workload

import (
	"math"
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF("bad", nil); err == nil {
		t.Error("empty CDF accepted")
	}
	if _, err := NewCDF("bad", []CDFPoint{{100, 0.5}, {50, 1}}); err == nil {
		t.Error("non-increasing sizes accepted")
	}
	if _, err := NewCDF("bad", []CDFPoint{{100, 0.5}, {200, 0.4}, {300, 1}}); err == nil {
		t.Error("decreasing fractions accepted")
	}
	if _, err := NewCDF("bad", []CDFPoint{{100, 0.5}}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
}

func TestCDFSampleStats(t *testing.T) {
	for _, d := range []*CDF{Hadoop(), WebSearch(), GoogleAgg()} {
		rng := sim.NewRNG(1)
		const n = 300000
		var sum float64
		min, max := int64(math.MaxInt64), int64(0)
		for i := 0; i < n; i++ {
			s := d.Sample(rng)
			if s < 1 {
				t.Fatalf("%s: sampled size %d < 1", d.Name(), s)
			}
			sum += float64(s)
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		gotMean := sum / n
		if math.Abs(gotMean-d.Mean()) > 0.05*d.Mean() {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f (>5%% off)", d.Name(), gotMean, d.Mean())
		}
		last := d.pts[len(d.pts)-1].Size
		if max > last {
			t.Errorf("%s: sample %d beyond final anchor %d", d.Name(), max, last)
		}
	}
}

func TestHadoopPaperProperties(t *testing.T) {
	// Paper §4.1: 60% of flows are less than 1KB; more than 80% of the
	// bits are from elephant flows larger than 100KB.
	d := Hadoop()
	if got := d.FracBelow(1 << 10); math.Abs(got-0.60) > 0.02 {
		t.Errorf("Hadoop frac(<1KB) = %.3f, want ~0.60", got)
	}
	if got := d.ByteFracAbove(100 << 10); got < 0.80 {
		t.Errorf("Hadoop byte frac(>=100KB) = %.3f, want > 0.80", got)
	}
}

func TestWebSearchPaperProperties(t *testing.T) {
	// Paper §4.4: more than 80% of flows exceed 10KB.
	d := WebSearch()
	if got := 1 - d.FracBelow(10<<10); got < 0.80 {
		t.Errorf("WebSearch frac(>10KB) = %.3f, want > 0.80", got)
	}
}

func TestGooglePaperProperties(t *testing.T) {
	// Paper §4.4: more than 80% of flows are less than 1KB.
	d := GoogleAgg()
	if got := d.FracBelow(1 << 10); got < 0.80 {
		t.Errorf("Google frac(<1KB) = %.3f, want > 0.80", got)
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(1000)
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if s := d.Sample(rng); s != 1000 {
			t.Fatalf("Fixed sampled %d", s)
		}
	}
	if d.Mean() != 1000 {
		t.Errorf("Fixed mean = %v", d.Mean())
	}
}

func TestLoadEquationRoundTrip(t *testing.T) {
	// InterArrivalFor then Load must recover the requested load.
	d := Hadoop()
	for _, load := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		tau := InterArrivalFor(load, d, sim.Gbps(400), 128)
		got := Load(d.Mean(), sim.Gbps(400), 128, tau)
		// τ is integer nanoseconds: at paper scale (τ ~ 33 ns at full
		// load) rounding alone moves the recovered load by up to ~2%.
		tol := 0.02*load + 0.5/float64(tau)
		if math.Abs(got-load) > tol {
			t.Errorf("load round trip: want %v, got %v (tau=%v)", load, got, tau)
		}
	}
	if InterArrivalFor(0, d, sim.Gbps(400), 128) < 1<<59 {
		t.Error("zero load should give effectively infinite inter-arrival")
	}
}

func TestPoissonGenerator(t *testing.T) {
	g := NewPoisson(Hadoop(), 16, 0.5, sim.Gbps(400), 42)
	var prev sim.Time
	var count int
	var bytes float64
	var horizon = sim.Time(2 * sim.Millisecond)
	for {
		a, ok := g.Next()
		if !ok {
			t.Fatal("Poisson generator exhausted")
		}
		if a.Time < prev {
			t.Fatal("arrivals out of order")
		}
		prev = a.Time
		if a.Time > horizon {
			break
		}
		if a.Src == a.Dst || a.Src < 0 || a.Src >= 16 || a.Dst < 0 || a.Dst >= 16 {
			t.Fatalf("bad src/dst: %d->%d", a.Src, a.Dst)
		}
		if a.Tag != 0 {
			t.Fatal("background traffic should have tag 0")
		}
		count++
		bytes += float64(a.Size)
	}
	// Offered load over the horizon should be ~0.5 of aggregate host bw.
	offered := bytes / (sim.Duration(horizon).Seconds() * sim.Gbps(400).BytesPerSecond() * 16)
	if math.Abs(offered-0.5) > 0.15 {
		t.Errorf("offered load = %.3f, want ~0.5 (count=%d)", offered, count)
	}
}

func TestPoissonUniformEndpoints(t *testing.T) {
	g := NewPoisson(Fixed(1000), 8, 0.5, sim.Gbps(400), 7)
	srcCount := make([]int, 8)
	dstCount := make([]int, 8)
	for i := 0; i < 80000; i++ {
		a, _ := g.Next()
		srcCount[a.Src]++
		dstCount[a.Dst]++
	}
	for i := 0; i < 8; i++ {
		if math.Abs(float64(srcCount[i])-10000) > 600 {
			t.Errorf("src %d count %d, want ~10000", i, srcCount[i])
		}
		if math.Abs(float64(dstCount[i])-10000) > 600 {
			t.Errorf("dst %d count %d, want ~10000", i, dstCount[i])
		}
	}
}

func TestIncast(t *testing.T) {
	ev, err := NewIncast(16, 3, 10, 1000, 5000, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	seen := map[int]bool{}
	for {
		a, ok := ev.Next()
		if !ok {
			break
		}
		n++
		if a.Dst != 3 || a.Size != 1000 || a.Time != 5000 || a.Tag != 7 {
			t.Fatalf("bad incast arrival: %+v", a)
		}
		if a.Src == 3 || seen[a.Src] {
			t.Fatalf("bad/duplicate source %d", a.Src)
		}
		seen[a.Src] = true
	}
	if n != 10 {
		t.Errorf("incast produced %d flows, want 10", n)
	}
	if _, err := NewIncast(8, 0, 8, 1000, 0, 1, 1); err == nil {
		t.Error("degree > n-1 accepted")
	}
}

func TestAllToAll(t *testing.T) {
	g := NewAllToAll(5, 30<<10, 1000)
	pairs := map[[2]int]int{}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Src == a.Dst || a.Size != 30<<10 || a.Time != 1000 {
			t.Fatalf("bad all-to-all arrival: %+v", a)
		}
		pairs[[2]int{a.Src, a.Dst}]++
	}
	if len(pairs) != 20 {
		t.Fatalf("all-to-all covered %d pairs, want 20", len(pairs))
	}
	for p, c := range pairs {
		if c != 1 {
			t.Fatalf("pair %v appeared %d times", p, c)
		}
	}
}

func TestSinglePair(t *testing.T) {
	g := NewSinglePair(1, 2, 1<<30, 0)
	a, ok := g.Next()
	if !ok || a.Src != 1 || a.Dst != 2 || a.Size != 1<<30 {
		t.Fatalf("bad single pair: %+v ok=%v", a, ok)
	}
	if _, ok := g.Next(); ok {
		t.Error("single pair should produce exactly one arrival")
	}
}

func TestIncastMixRate(t *testing.T) {
	// 2% of aggregate downlink bandwidth as degree-20 1KB incasts.
	g := NewIncastMix(128, 20, 1000, 0.02, sim.Gbps(400), 1, 9)
	horizon := sim.Time(1 * sim.Millisecond)
	var bytes float64
	tags := map[int]int{}
	for {
		a, ok := g.Next()
		if !ok || a.Time > horizon {
			break
		}
		if a.Tag < 1 {
			t.Fatal("incast mix must tag events")
		}
		tags[a.Tag]++
		bytes += float64(a.Size)
	}
	for tag, c := range tags {
		if c > 20 {
			t.Fatalf("event %d has %d flows, want <= 20", tag, c)
		}
	}
	frac := bytes / (sim.Duration(horizon).Seconds() * sim.Gbps(400).BytesPerSecond() * 128)
	if math.Abs(frac-0.02) > 0.01 {
		t.Errorf("incast bandwidth fraction = %.4f, want ~0.02", frac)
	}
}

func TestMergeOrdering(t *testing.T) {
	a := NewAllToAll(3, 100, 500)
	b, _ := NewIncast(3, 0, 2, 50, 200, 1, 1)
	c, _ := NewIncast(3, 1, 2, 50, 900, 2, 2)
	m := NewMerge(a, b, c)
	var prev sim.Time
	count := 0
	for {
		ar, ok := m.Next()
		if !ok {
			break
		}
		if ar.Time < prev {
			t.Fatalf("merge out of order: %v after %v", ar.Time, prev)
		}
		prev = ar.Time
		count++
	}
	if count != 6+2+2 {
		t.Errorf("merge produced %d arrivals, want 10", count)
	}
}

func TestMergeEmpty(t *testing.T) {
	m := NewMerge()
	if _, ok := m.Next(); ok {
		t.Error("empty merge should be exhausted")
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	d := Hadoop()
	f := func(a, b uint16) bool {
		u1 := float64(a) / 65536
		u2 := float64(b) / 65536
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return d.quantile(u1) <= d.quantile(u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFracBelowInverseProperty(t *testing.T) {
	// FracBelow(quantile(u)) ~ u on anchor interior.
	d := WebSearch()
	for _, u := range []float64{0.15, 0.35, 0.55, 0.75, 0.93} {
		s := d.quantile(u)
		got := d.FracBelow(int64(s))
		if math.Abs(got-u) > 0.01 {
			t.Errorf("FracBelow(quantile(%v)) = %v", u, got)
		}
	}
}
