package workload

import (
	"container/heap"
	"fmt"
	"math"

	"negotiator/internal/sim"
)

// Arrival is one flow arrival produced by a Generator. Tag groups flows
// belonging to the same application event: 0 marks background traffic and
// positive values identify incast events (used for incast finish time).
//
// Count > 1 makes the arrival a FLOW GROUP: one record standing for Count
// identical host flows of Size bytes each (0 and 1 both mean a single
// flow). The fabric injects one flows.Flow carrying the count; per-member
// FCTs are emitted at delivered-byte boundary crossings, so the metric
// stream matches Count separate arrivals wherever delivery is FIFO.
type Arrival struct {
	Time  sim.Time
	Src   int
	Dst   int
	Size  int64
	Tag   int
	Count int32
}

// Members reports how many host flows the arrival stands for (≥ 1).
func (a Arrival) Members() int64 {
	if a.Count > 1 {
		return int64(a.Count)
	}
	return 1
}

// Generator yields flow arrivals in non-decreasing time order. A generator
// may be infinite; engines stop pulling at their horizon.
type Generator interface {
	// Next returns the next arrival. ok is false when the generator is
	// exhausted.
	Next() (a Arrival, ok bool)
}

// Grouper is implemented by generators that can emit flow groups natively:
// SetGroup(k) makes every subsequent arrival stand for k identical host
// flows (Count = k). SetGroup(1) restores single-flow emission and is a
// strict no-op on the arrival stream.
type Grouper interface {
	SetGroup(k int)
}

// Grouped wraps a generator with flow-group coalescing: consecutive
// arrivals identical in (Time, Src, Dst, Size, Tag) merge into one group
// record whose member count is their combined member count times k. For
// streams with no identical neighbours (Poisson and the other trace-driven
// processes) coalescing never fires, and with k == 1 the output stream is
// byte-identical to the input — the property TestGroupEquivalence pins
// across the golden matrix.
type Grouped struct {
	g    Generator
	k    int64
	pend Arrival
	have bool
	done bool
}

// NewGroupBy wraps g; k multiplies each coalesced record's member count
// (k == 1 means pure coalescing). k must be ≥ 1.
func NewGroupBy(g Generator, k int) (*Grouped, error) {
	if k < 1 {
		return nil, fmt.Errorf("workload: flow-group factor must be >= 1, got %d", k)
	}
	return &Grouped{g: g, k: int64(k)}, nil
}

// Next implements Generator.
func (g *Grouped) Next() (Arrival, bool) {
	if !g.have {
		if g.done {
			return Arrival{}, false
		}
		a, ok := g.g.Next()
		if !ok {
			g.done = true
			return Arrival{}, false
		}
		g.pend = a
	}
	cur := g.pend
	g.have = false
	cnt := cur.Members()
	for !g.done {
		a, ok := g.g.Next()
		if !ok {
			g.done = true
			break
		}
		if a.Time == cur.Time && a.Src == cur.Src && a.Dst == cur.Dst && a.Size == cur.Size && a.Tag == cur.Tag {
			cnt += a.Members()
			continue
		}
		g.pend, g.have = a, true
		break
	}
	cnt *= g.k
	if cnt > math.MaxInt32 {
		panic(fmt.Sprintf("workload: flow group of %d members overflows the count", cnt))
	}
	if cnt > 1 {
		cur.Count = int32(cnt)
	}
	return cur, true
}

// Load computes the paper's network load for a mean flow size F (bytes),
// per-ToR host bandwidth R, N ToRs and mean inter-arrival τ:
// L = F / (R·N·τ).
func Load(meanFlowBytes float64, hostRate sim.Rate, n int, interArrival sim.Duration) float64 {
	denom := hostRate.BytesPerSecond() * float64(n) * interArrival.Seconds()
	if denom == 0 {
		return 0
	}
	return meanFlowBytes / denom
}

// InterArrivalFor inverts the load equation: the mean flow inter-arrival
// time τ that produces the requested load, rounded to the nearest
// nanosecond. At paper scale τ is a few tens of nanoseconds, so treat the
// result as informational; the Poisson generator keeps sub-nanosecond
// precision internally.
func InterArrivalFor(load float64, dist SizeDist, hostRate sim.Rate, n int) sim.Duration {
	if load <= 0 {
		return 1 << 60
	}
	tau := dist.Mean() / (hostRate.BytesPerSecond() * float64(n) * load)
	d := sim.Duration(tau*float64(sim.Second) + 0.5)
	if d < 1 {
		d = 1
	}
	return d
}

// Poisson generates background traffic: flows arrive as a Poisson process
// with sources and destinations chosen uniformly at random (distinct), and
// sizes drawn from dist — the paper's workload model (§4.1).
//
// Arrival times accumulate in float64 nanoseconds internally: at paper
// scale the mean inter-arrival is a few tens of nanoseconds, where integer
// truncation would bias the offered load by several percent.
type Poisson struct {
	dist   SizeDist
	n      int
	meanNs float64
	rng    *sim.RNG
	clock  float64
}

// NewPoisson returns a Poisson generator for n ToRs at the given load.
func NewPoisson(dist SizeDist, n int, load float64, hostRate sim.Rate, seed int64) *Poisson {
	g := &Poisson{
		dist: dist,
		n:    n,
		rng:  sim.NewRNG(seed),
	}
	if load > 0 {
		tauSec := dist.Mean() / (hostRate.BytesPerSecond() * float64(n) * load)
		g.meanNs = tauSec * 1e9
	} else {
		g.meanNs = 1e18
	}
	g.advance()
	return g
}

func (g *Poisson) advance() {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	g.clock += -math.Log(u) * g.meanNs
}

// Next implements Generator. The process is unbounded.
func (g *Poisson) Next() (Arrival, bool) {
	src := g.rng.Intn(g.n)
	dst := g.rng.Intn(g.n - 1)
	if dst >= src {
		dst++
	}
	a := Arrival{Time: sim.Time(g.clock), Src: src, Dst: dst, Size: g.dist.Sample(g.rng)}
	g.advance()
	return a, true
}

// Incast generates one incast event: degree distinct sources each send one
// flow of size bytes to dst simultaneously at t (paper §4.2, Figure 7a).
type Incast struct {
	arrivals []Arrival
	pos      int
}

// NewIncast builds the event. Sources are chosen deterministically from
// seed among all ToRs except dst.
func NewIncast(n, dst, degree int, size int64, t sim.Time, tag int, seed int64) (*Incast, error) {
	if degree > n-1 {
		return nil, fmt.Errorf("workload: incast degree %d exceeds n-1=%d", degree, n-1)
	}
	rng := sim.NewRNG(seed)
	perm := make([]int, n)
	rng.Perm(perm)
	ev := &Incast{}
	for _, src := range perm {
		if src == dst {
			continue
		}
		ev.arrivals = append(ev.arrivals, Arrival{Time: t, Src: src, Dst: dst, Size: size, Tag: tag})
		if len(ev.arrivals) == degree {
			break
		}
	}
	return ev, nil
}

func (g *Incast) Next() (Arrival, bool) {
	if g.pos >= len(g.arrivals) {
		return Arrival{}, false
	}
	a := g.arrivals[g.pos]
	g.pos++
	return a, true
}

// AllToAll generates the synchronous all-to-all workload: at time t each
// ToR sends one flow of size bytes to every other ToR (paper §4.2,
// Figure 7b).
type AllToAll struct {
	n    int
	size int64
	t    sim.Time
	i, j int
}

// NewAllToAll returns the generator for n ToRs.
func NewAllToAll(n int, size int64, t sim.Time) *AllToAll {
	return &AllToAll{n: n, size: size, t: t}
}

func (g *AllToAll) Next() (Arrival, bool) {
	if g.j == g.i {
		g.j++
	}
	if g.j >= g.n {
		g.i++
		g.j = 0
		if g.j == g.i {
			g.j++
		}
	}
	if g.i >= g.n {
		return Arrival{}, false
	}
	a := Arrival{Time: g.t, Src: g.i, Dst: g.j, Size: g.size}
	g.j++
	return a, true
}

// SinglePair generates one very large flow between a fixed pair, modelling
// the continuously-transmitting pair of the failure micro-observation
// (paper Appendix A.4, Figure 19).
type SinglePair struct {
	done bool
	a    Arrival
}

// NewSinglePair returns the generator.
func NewSinglePair(src, dst int, size int64, t sim.Time) *SinglePair {
	return &SinglePair{a: Arrival{Time: t, Src: src, Dst: dst, Size: size}}
}

func (g *SinglePair) Next() (Arrival, bool) {
	if g.done {
		return Arrival{}, false
	}
	g.done = true
	return g.a, true
}

// IncastMix generates Poisson-arriving incast events: each event has the
// given degree and per-flow size, and events arrive so that incast traffic
// consumes bwFraction of the aggregate host downlink bandwidth (paper §4.4,
// Figure 13a: degree 20, 1 KB flows, 2%).
type IncastMix struct {
	n        int
	degree   int
	size     int64
	mean     sim.Duration
	rng      *sim.RNG
	nextTime sim.Time
	tag      int
	pending  []Arrival
	pos      int
}

// NewIncastMix returns the generator. Tags start at firstTag and increment
// per event.
func NewIncastMix(n, degree int, size int64, bwFraction float64, hostRate sim.Rate, firstTag int, seed int64) *IncastMix {
	eventBytes := float64(degree) * float64(size)
	rate := bwFraction * hostRate.BytesPerSecond() * float64(n) / eventBytes // events/s
	mean := sim.Duration(float64(sim.Second) / rate)
	if mean < 1 {
		mean = 1
	}
	g := &IncastMix{
		n: n, degree: degree, size: size,
		mean: mean, rng: sim.NewRNG(seed), tag: firstTag,
	}
	g.nextTime = sim.Time(g.rng.ExpDuration(mean))
	return g
}

func (g *IncastMix) Next() (Arrival, bool) {
	if g.pos >= len(g.pending) {
		// Synthesise the next event.
		dst := g.rng.Intn(g.n)
		ev, err := NewIncast(g.n, dst, g.degree, g.size, g.nextTime, g.tag, int64(g.rng.Uint64()))
		if err != nil {
			return Arrival{}, false
		}
		g.pending = ev.arrivals
		g.pos = 0
		g.tag++
		g.nextTime = g.nextTime.Add(g.rng.ExpDuration(g.mean))
	}
	a := g.pending[g.pos]
	g.pos++
	return a, true
}

// Merge combines generators into one stream ordered by arrival time.
type Merge struct {
	h mergeHeap
}

type mergeEntry struct {
	a   Arrival
	gen Generator
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].a.Time < h[j].a.Time }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewMerge merges the given generators.
func NewMerge(gens ...Generator) *Merge {
	m := &Merge{}
	for _, g := range gens {
		if a, ok := g.Next(); ok {
			m.h = append(m.h, mergeEntry{a, g})
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *Merge) Next() (Arrival, bool) {
	if m.h.Len() == 0 {
		return Arrival{}, false
	}
	top := m.h[0]
	if a, ok := top.gen.Next(); ok {
		m.h[0] = mergeEntry{a, top.gen}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.a, true
}
