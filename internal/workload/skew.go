package workload

import (
	"fmt"
	"math"

	"negotiator/internal/sim"
)

// Permutation generates the saturated-but-sparse traffic matrix the
// sparse-scale benchmarks use (promoted from the PR-4 inline bench
// generators): the first `active` ToRs each send one size-byte flow to
// their cyclic successor within the active set at time t, and the other
// n-active ToRs stay idle. With active == n this is the classic full
// permutation (one active destination per source); with active << n it is
// the regime where fabric memory and per-round cost must follow occupancy,
// not topology size.
type Permutation struct {
	n, active, i int
	size         int64
	t            sim.Time
	group        int32
}

// SetGroup implements Grouper: each (src, dst) pair's arrival becomes a
// group of k identical host flows — the knob that puts a million host
// flows behind a few thousand records.
func (g *Permutation) SetGroup(k int) {
	g.group = 0
	if k > 1 {
		g.group = int32(k)
	}
}

// NewPermutation returns the generator. active == 0 means all n ToRs.
func NewPermutation(n, active int, size int64, t sim.Time) (*Permutation, error) {
	if active == 0 {
		active = n
	}
	if active < 2 || active > n {
		return nil, fmt.Errorf("workload: permutation needs 2 <= active <= n, got active=%d n=%d", active, n)
	}
	return &Permutation{n: n, active: active, size: size, t: t}, nil
}

// Next implements Generator.
func (g *Permutation) Next() (Arrival, bool) {
	if g.i >= g.active {
		return Arrival{}, false
	}
	a := Arrival{Time: g.t, Src: g.i, Dst: (g.i + 1) % g.active, Size: g.size, Count: g.group}
	g.i++
	return a, true
}

// Hotspot generates skewed background traffic: the same Poisson arrival
// process and flow-size distribution as Poisson, but a fraction hotFrac
// of flows target one of the first hotTors destinations (the "hot set"),
// modelling the popularity skew real datacenter services exhibit. The
// remaining flows choose uniformly among all ToRs. Sources stay uniform,
// so the offered network load is the same L = F/(R·N·τ) as the uniform
// workload — only the destination matrix tilts.
type Hotspot struct {
	dist    SizeDist
	n       int
	hotTors int
	hotFrac float64
	meanNs  float64
	rng     *sim.RNG
	clock   float64
	group   int32
}

// SetGroup implements Grouper: each arrival event stands for k identical
// host flows (k users behind the same ToR pair making the same request) —
// the RNG stream and arrival times are untouched, only Count changes.
func (g *Hotspot) SetGroup(k int) {
	g.group = 0
	if k > 1 {
		g.group = int32(k)
	}
}

// NewHotspot returns a skewed Poisson generator. hotTors must be in
// [1, n-1]; hotFrac in [0, 1] (0 degenerates to the uniform workload).
func NewHotspot(dist SizeDist, n int, load float64, hostRate sim.Rate, hotTors int, hotFrac float64, seed int64) (*Hotspot, error) {
	if hotTors < 1 || hotTors >= n {
		return nil, fmt.Errorf("workload: hotspot needs 1 <= hotTors < n, got %d (n=%d)", hotTors, n)
	}
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("workload: hotFrac %v outside [0, 1]", hotFrac)
	}
	g := &Hotspot{dist: dist, n: n, hotTors: hotTors, hotFrac: hotFrac, rng: sim.NewRNG(seed)}
	if load > 0 {
		tauSec := dist.Mean() / (hostRate.BytesPerSecond() * float64(n) * load)
		g.meanNs = tauSec * 1e9
	} else {
		g.meanNs = 1e18
	}
	g.advance()
	return g, nil
}

func (g *Hotspot) advance() {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	g.clock += -math.Log(u) * g.meanNs
}

// Next implements Generator. The process is unbounded.
func (g *Hotspot) Next() (Arrival, bool) {
	src := g.rng.Intn(g.n)
	var dst int
	// A hot pick that cannot avoid src (single-ToR hot set containing
	// src) falls through to the uniform draw, keeping dst != src without
	// rejection sampling.
	if g.rng.Float64() < g.hotFrac && !(g.hotTors == 1 && src == 0) {
		if src < g.hotTors {
			dst = g.rng.Intn(g.hotTors - 1)
			if dst >= src {
				dst++
			}
		} else {
			dst = g.rng.Intn(g.hotTors)
		}
	} else {
		dst = g.rng.Intn(g.n - 1)
		if dst >= src {
			dst++
		}
	}
	a := Arrival{Time: sim.Time(g.clock), Src: src, Dst: dst, Size: g.dist.Sample(g.rng), Count: g.group}
	g.advance()
	return a, true
}
