package workload

import (
	"fmt"
	"math"

	"negotiator/internal/sim"
)

// Diurnal generates background traffic whose offered load follows a
// day/night cycle: the same uniform endpoints and trace-driven sizes as
// Poisson, but the arrival process is an inhomogeneous Poisson process
// whose rate swings sinusoidally between floor·peak and peak over each
// period, starting at the trough. Datacenter fabrics spend most of a real
// day far below peak; this is the workload shape that makes quiet-time
// simulation cost (and the event-skip run loop that removes it) visible.
//
// Arrivals are drawn by thinning against the peak rate: candidate events
// come from a homogeneous Poisson process at the peak rate and survive
// with probability equal to the instantaneous rate fraction. The sequence
// is a deterministic function of the seed, independent of how the
// simulator consumes it.
type Diurnal struct {
	dist   SizeDist
	n      int
	meanNs float64 // mean inter-arrival at the PEAK rate
	period float64 // cycle length in ns
	floor  float64 // trough rate as a fraction of peak
	rng    *sim.RNG
	clock  float64
	group  int32
}

// SetGroup implements Grouper: each arrival event stands for k identical
// host flows; the thinned arrival process itself is untouched.
func (g *Diurnal) SetGroup(k int) {
	g.group = 0
	if k > 1 {
		g.group = int32(k)
	}
}

// NewDiurnal returns a diurnal generator: peakLoad is the network load
// (L = F/(R·N·τ), §4.1) at the top of the cycle, period the cycle length,
// floor the trough-to-peak load ratio in [0, 1).
func NewDiurnal(dist SizeDist, n int, peakLoad float64, hostRate sim.Rate, period sim.Duration, floor float64, seed int64) (*Diurnal, error) {
	if period <= 0 {
		return nil, fmt.Errorf("workload: diurnal period must be positive, got %v", period)
	}
	if floor < 0 || floor >= 1 {
		return nil, fmt.Errorf("workload: diurnal floor %v outside [0, 1)", floor)
	}
	g := &Diurnal{dist: dist, n: n, period: float64(period), floor: floor, rng: sim.NewRNG(seed)}
	if peakLoad > 0 {
		tauSec := dist.Mean() / (hostRate.BytesPerSecond() * float64(n) * peakLoad)
		g.meanNs = tauSec * 1e9
	} else {
		g.meanNs = 1e18
	}
	g.advance()
	return g, nil
}

// rate is the instantaneous rate as a fraction of peak: floor at t = 0
// (and every whole period), 1 at each half period.
func (g *Diurnal) rate(tNs float64) float64 {
	return g.floor + (1-g.floor)*(0.5-0.5*math.Cos(2*math.Pi*tNs/g.period))
}

// advance moves the clock to the next accepted arrival: exponential
// candidate gaps at the peak rate, thinned by the rate fraction at the
// candidate time.
func (g *Diurnal) advance() {
	for {
		u := g.rng.Float64()
		for u == 0 {
			u = g.rng.Float64()
		}
		g.clock += -math.Log(u) * g.meanNs
		if g.rng.Float64() < g.rate(g.clock) {
			return
		}
	}
}

// Next implements Generator. The process is unbounded.
func (g *Diurnal) Next() (Arrival, bool) {
	src := g.rng.Intn(g.n)
	dst := g.rng.Intn(g.n - 1)
	if dst >= src {
		dst++
	}
	a := Arrival{Time: sim.Time(g.clock), Src: src, Dst: dst, Size: g.dist.Sample(g.rng), Count: g.group}
	g.advance()
	return a, true
}
