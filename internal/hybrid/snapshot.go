package hybrid

import (
	"fmt"
	"io"

	"negotiator/internal/match"
	"negotiator/internal/snap"
)

// Snapshot serializes the engine's complete state (fabric core plus this
// control plane's PlaneState payload) at an epoch boundary.
func (e *Engine) Snapshot(w io.Writer) error { return e.fab.Snapshot(w) }

// Restore applies a snapshot to a freshly constructed engine of the same
// configuration. SetWorkload (with an identically constructed generator)
// must be called first; see fabric.Core.Restore.
func (e *Engine) Restore(r io.Reader) error { return e.fab.Restore(r) }

// PlaneState implements fabric.StatefulPlane. The hybrid plane's
// idealised negotiation produces and consumes its single-generation
// mailboxes within one Round, so the only cross-epoch state is the
// match-ratio series, the lazily-cleared per-ToR match rows, and the
// matcher's ring pointers. Request caches restart cold on restore (the
// replay-equals-fresh invariant makes that invisible).
func (e *Engine) PlaneState() ([]byte, error) {
	var enc snap.Enc
	num, den := e.matchRatio.Counts()
	enc.U32(uint32(len(num)))
	for _, v := range num {
		enc.I64(v)
	}
	for _, v := range den {
		enc.I64(v)
	}
	var cnt uint32
	for _, t := range e.tors {
		if t.hasMatches {
			cnt++
		}
	}
	enc.U32(cnt)
	for i, t := range e.tors {
		if !t.hasMatches {
			continue
		}
		enc.U32(uint32(i))
		for _, m := range t.matches {
			enc.Int(int(m))
		}
	}
	if err := match.SnapshotState(e.matcher, &enc); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// RestorePlaneState implements fabric.StatefulPlane: the inverse of
// PlaneState, applied to a freshly constructed engine.
func (e *Engine) RestorePlaneState(data []byte) error {
	d := snap.NewDec(data)
	rn := int(d.U32())
	num := make([]int64, rn)
	den := make([]int64, rn)
	for i := range num {
		num[i] = d.I64()
	}
	for i := range den {
		den[i] = d.I64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	e.matchRatio.RestoreCounts(num, den)
	cnt := int(d.U32())
	for k := 0; k < cnt; k++ {
		i := int(d.U32())
		if d.Err() != nil {
			break
		}
		if i < 0 || i >= e.n {
			return fmt.Errorf("hybrid: checkpoint ToR index %d out of range", i)
		}
		t := e.tors[i]
		t.hasMatches = true
		for p := range t.matches {
			t.matches[p] = int32(d.Int())
		}
	}
	if err := match.RestoreState(e.matcher, d); err != nil {
		return err
	}
	return d.Finish()
}
