package hybrid

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// permWorkload is the saturated-but-sparse matrix: one enormous elephant
// per ToR to its cyclic successor, 1023 of 1024 elephant queues empty and
// every mice queue empty. The mice sweep and the elephant demand view are
// exactly the paths that must be O(active destinations) here.
type permWorkload struct {
	n, i int
	size int64
}

func (g *permWorkload) Next() (workload.Arrival, bool) {
	if g.i >= g.n {
		return workload.Arrival{}, false
	}
	a := workload.Arrival{Src: g.i, Dst: (g.i + 1) % g.n, Size: g.size}
	g.i++
	return a, true
}

// BenchmarkEpochSparse1024 measures the hybrid per-epoch cost at 1024 ToRs
// with one active elephant destination per ToR (see BENCH_pr4.json).
func BenchmarkEpochSparse1024(b *testing.B) {
	top, err := topo.NewParallel(1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Topology: top,
		HostRate: sim.Gbps(400),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e.SetWorkload(&permWorkload{n: 1024, size: 1 << 32})
	e.RunEpochs(4)
	if !e.fab.WorkloadDone() {
		b.Fatal("sparse steady state not reached: workload not exhausted")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}
