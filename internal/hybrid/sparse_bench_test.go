package hybrid

import (
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// The sparse benchmarks run workload.Permutation: one enormous elephant
// per active ToR to its cyclic successor, every other elephant queue and
// every mice queue empty. The mice sweep and the elephant demand view are
// exactly the paths that must be O(active destinations) here; at 4096
// ToRs the lazy node slabs additionally keep memory O(active nodes).

func sparseEngine(tb testing.TB, n, active int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology: top,
		HostRate: sim.Gbps(400),
		Seed:     1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(n, active, 1<<32, 0)
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(perm)
	e.RunEpochs(4)
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkEpochSparse1024 measures the hybrid per-epoch cost at 1024
// ToRs with one active elephant destination per ToR (see BENCH_pr4.json).
func BenchmarkEpochSparse1024(b *testing.B) {
	e := sparseEngine(b, 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSparse4096 is the lazy-slab scale tier: 4096 ToRs, 256
// active (see the NegotiaToR engine's BenchmarkEpochSparse4096).
func BenchmarkEpochSparse4096(b *testing.B) {
	e := sparseEngine(b, 4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSparse65536 is the paged-slab scale tier: 65,536 ToRs,
// 256 active elephants. Mice spray lanes span the full width by design,
// so the hybrid's footprint is dominated by the active sources' lane
// page tables; the ceiling asserts the paged decoupling holds for the
// mixed mice/elephant plane as well.
func BenchmarkEpochSparse65536(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 65536, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 2048<<20 {
		b.Fatalf("65536-ToR sparse setup allocated %d MB, ceiling 2048 MB: per-destination state is width-coupled again", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/65536, "setup-bytes/ToR")
}
