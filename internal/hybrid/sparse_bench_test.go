package hybrid

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// The sparse benchmarks run workload.Permutation: one enormous elephant
// per active ToR to its cyclic successor, every other elephant queue and
// every mice queue empty. The mice sweep and the elephant demand view are
// exactly the paths that must be O(active destinations) here; at 4096
// ToRs the lazy node slabs additionally keep memory O(active nodes).

func sparseEngine(tb testing.TB, n, active int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology: top,
		HostRate: sim.Gbps(400),
		Seed:     1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(n, active, 1<<32, 0)
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(perm)
	e.RunEpochs(4)
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkEpochSparse1024 measures the hybrid per-epoch cost at 1024
// ToRs with one active elephant destination per ToR (see BENCH_pr4.json).
func BenchmarkEpochSparse1024(b *testing.B) {
	e := sparseEngine(b, 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}

// BenchmarkEpochSparse4096 is the lazy-slab scale tier: 4096 ToRs, 256
// active (see the NegotiaToR engine's BenchmarkEpochSparse4096).
func BenchmarkEpochSparse4096(b *testing.B) {
	e := sparseEngine(b, 4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}
