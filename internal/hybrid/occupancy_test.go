package hybrid

import (
	"fmt"
	"testing"

	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestOccupancyInvariant runs the hybrid plane with per-round invariant
// checking on (byte conservation plus the occupancy-index/shadow
// exactness of fabric.Core.CheckOccupancy): the mice sweep iterates
// LanesOcc and the elephant demand view DirectOcc, so both index classes
// are exercised under churn. Run in CI under -race at -cpu 1,2,4.
func TestOccupancyInvariant(t *testing.T) {
	for _, pq := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("pq=%v/workers=%d", pq, workers), func(t *testing.T) {
				top, err := topo.NewParallel(16, 4)
				if err != nil {
					t.Fatal(err)
				}
				e, err := New(Config{
					Topology:        top,
					PriorityQueues:  pq,
					Seed:            1,
					CheckInvariants: true,
					Workers:         workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, sim.Gbps(400), 7))
				e.RunEpochs(120)
				e.SetWorkload(nil)
				e.Drain(4000)
			})
		}
	}

	// Sparse permutation leaving most nodes unmaterialized: each
	// per-round CheckOccupancy also asserts the lazy-slab contract.
	t.Run("sparse-lazy", func(t *testing.T) {
		top, err := topo.NewParallel(64, 4)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Topology: top, Seed: 1, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		perm, err := workload.NewPermutation(64, 16, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.RunEpochs(40)
		e.SetWorkload(nil)
		if !e.Drain(4000) {
			t.Fatal("sparse permutation did not drain")
		}
		for i := 16; i < 64; i++ {
			if e.fab.Nodes[i].Direct.Materialized() || e.fab.Nodes[i].Lanes.Materialized() {
				t.Fatalf("idle node %d materialized", i)
			}
		}
	})

	// Page-granularity lazy contract: at 256 ToRs a permutation confined
	// to the first 16 destinations keeps elephant VOQ and relay pages
	// outside the active destination range unmaterialized (spray lanes are
	// indexed by intermediate, so they legitimately span the full width).
	t.Run("paged-sparse", func(t *testing.T) {
		top, err := topo.NewParallel(2*queue.PageSize, 8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Topology: top, Seed: 1, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		perm, err := workload.NewPermutation(2*queue.PageSize, 16, 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.RunEpochs(30)
		e.SetWorkload(nil)
		if !e.Drain(8000) {
			t.Fatal("paged sparse permutation did not drain")
		}
		lastDst := 2*queue.PageSize - 1
		for i, nd := range e.fab.Nodes {
			if nd.Direct.PageMaterialized(lastDst) {
				t.Fatalf("node %d materialized a direct page outside the active range", i)
			}
			if nd.Relay.PageMaterialized(lastDst) {
				t.Fatalf("node %d materialized a relay page outside the active range", i)
			}
		}
	})
}
