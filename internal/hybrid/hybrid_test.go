package hybrid

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

func testConfig(t testing.TB, tors, ports int) Config {
	t.Helper()
	top, err := topo.NewParallel(tors, ports)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:        top,
		HostRate:        sim.Gbps(200),
		PriorityQueues:  true,
		CheckInvariants: true,
	}
}

// TestMiceNeverNegotiate: a mice-only workload must complete entirely over
// the round-robin predefined schedule — the scheduler never grants.
func TestMiceNeverNegotiate(t *testing.T) {
	e, err := New(testConfig(t, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewAllToAll(16, 8<<10, 0)) // 8 KB: all mice
	if !e.Drain(100_000) {
		t.Fatal("mice failed to drain over the round-robin schedule")
	}
	r := e.Results()
	if r.MatchRatio.Len() == 0 {
		t.Fatal("no epochs observed")
	}
	if got := r.MatchRatio.Mean(); got != 0 {
		t.Errorf("mice-only run produced match activity (ratio %v)", got)
	}
	if r.FCT.MiceCount() != 16*15 {
		t.Errorf("mice completed = %d, want %d", r.FCT.MiceCount(), 16*15)
	}
}

// TestElephantsNeverRideRoundRobin: with only elephant traffic the
// predefined phase moves nothing; all bytes arrive via negotiated
// scheduled connections, so match activity is sustained.
func TestElephantsNeverRideRoundRobin(t *testing.T) {
	e, err := New(testConfig(t, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewAllToAll(16, 64<<10, 0)) // 64 KB: all elephants
	if !e.Drain(100_000) {
		t.Fatal("elephants failed to drain")
	}
	r := e.Results()
	if r.FCT.Count() != 16*15 {
		t.Errorf("flows completed = %d, want %d", r.FCT.Count(), 16*15)
	}
	if r.FCT.MiceCount() != 0 {
		t.Errorf("mice count = %d for an elephant-only workload", r.FCT.MiceCount())
	}
	if ratio := r.MatchRatio.Mean(); ratio <= 0 {
		t.Errorf("match ratio %v: elephants must negotiate", ratio)
	}
}

// TestMiceFCTBoundedUnderElephantLoad: the hybrid's whole point — mice
// FCT stays bounded by the round-robin period regardless of elephant
// pressure, because mice never queue behind a negotiation. A 595-byte
// mouse completes in one epoch (+ propagation) even at saturating
// elephant load.
func TestMiceFCTBoundedUnderElephantLoad(t *testing.T) {
	cfg := testConfig(t, 16, 4)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elephants := workload.NewAllToAll(16, 4<<20, 0)
	mouse := workload.NewSinglePair(3, 11, 500, sim.Time(50*sim.Microsecond))
	e.SetWorkload(workload.NewMerge(elephants, mouse))
	e.Run(200 * sim.Microsecond)
	r := e.Results()
	if r.FCT.MiceCount() != 1 {
		t.Fatalf("mouse incomplete: %d mice done", r.FCT.MiceCount())
	}
	// One epoch's predefined slot plus propagation, rounded up to the
	// epoch the mouse is injected into: comfortably under three epochs.
	if limit := 3 * e.EpochLen(); r.FCT.MiceP(100) > limit {
		t.Errorf("mouse FCT %v exceeds %v under elephant saturation", r.FCT.MiceP(100), limit)
	}
}

// steadyEngine builds a paper-scale hybrid engine saturated with
// long-lived elephants and runs it past all warm-up growth (mirrors the
// NegotiaToR engine's zero-alloc harness).
func steadyEngine(tb testing.TB, warmupEpochs int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(128, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{Topology: top, HostRate: sim.Gbps(400), PriorityQueues: true, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(workload.NewAllToAll(128, 1<<30, 0))
	e.RunEpochs(warmupEpochs)
	if !e.fab.WorkloadDone() {
		tb.Fatal("steady state not reached: workload not exhausted")
	}
	return e
}

// TestEpochSteadyStateZeroAlloc extends the zero-alloc contract to the
// hybrid engine: a steady-state epoch performs no heap allocation.
func TestEpochSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale engine in -short mode")
	}
	e := steadyEngine(t, 700)
	allocs := testing.AllocsPerRun(100, func() { e.runEpoch() })
	if allocs != 0 {
		t.Errorf("steady-state hybrid epoch allocates %.1f objects/epoch, want 0", allocs)
	}
}

// BenchmarkEpochSteadyStateHybrid measures the allocation-free hybrid
// epoch (companion to the NegotiaToR engine's steady-state benchmarks).
func BenchmarkEpochSteadyStateHybrid(b *testing.B) {
	e := steadyEngine(b, 700)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runEpoch()
	}
}
