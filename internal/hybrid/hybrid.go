// Package hybrid is the third control plane over the shared fabric core
// (internal/fabric), and the existence proof that the core extraction
// pays for itself: a complete engine in one file.
//
// It pushes the paper's §3.4.1 mice-bypass idea to its limit. Mice flows
// (< 10 KB) never touch the scheduler: they ride the traffic-oblivious
// round-robin all-to-all schedule — one piggyback payload per connected
// pair per epoch, exactly the predefined-phase connectivity NegotiaToR
// already pays for — so their FCT is bounded by the round-robin period
// with zero scheduling delay. Elephant flows never ride the round-robin:
// they go through on-demand NegotiaToR Matching (request → grant →
// accept, idealised to resolve within the epoch rather than pipelined
// over stageLag epochs — an instant-control-plane upper bound for what
// strict traffic segregation can buy) and transmit in the scheduled
// phase.
//
// The split reuses the core's two VOQ sets per node: Lanes[dst] holds
// mice, Direct[dst] holds elephants, so the matcher's queue view sees
// elephant demand only and mice never wait behind a negotiation.
package hybrid

import (
	"fmt"

	"negotiator/internal/fabric"
	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/match"
	"negotiator/internal/metrics"
	"negotiator/internal/negotiator"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Config assembles the hybrid fabric. The epoch geometry reuses
// negotiator.Timing (predefined round-robin phase + scheduled phase).
type Config struct {
	Topology topo.Topology
	// Timing is the epoch structure; zero value means
	// negotiator.DefaultTiming.
	Timing negotiator.Timing
	// HostRate is the per-ToR host aggregate, for goodput normalisation.
	HostRate sim.Rate
	// PriorityQueues enables PIAS levels inside both VOQ sets (mice
	// queues still benefit: a 1 KB flow's first bytes overtake a 9 KB
	// one's tail).
	PriorityQueues bool
	// MiceBytes is the mice/elephant split threshold; zero means the
	// paper's 10 KB mice bound.
	MiceBytes int64
	// Seed drives the matcher's ring randomness.
	Seed int64
	// Failures optionally injects link failures (owned and advanced by the
	// fabric core). Both traffic classes are exposed: mice riding a
	// known-down predefined pair are held for a later rotation, elephants
	// lose the match's port; links down but not yet detected destroy the
	// bytes sent across them, requeued on detection (mice back into their
	// mice queue, elephants into their VOQ). The idealised same-epoch
	// request/grant/accept exchange itself is assumed reliable — only the
	// data plane degrades, an upper bound matching the engine's
	// instant-control-plane idealisation.
	Failures *failure.Plan
	// CheckInvariants enables per-epoch byte-conservation assertions.
	CheckInvariants bool
	// DisableEventSkip forces the run loop to tick every epoch even when
	// the fabric is provably idle. Results are byte-identical either way;
	// the knob exists for A/B benchmarks and equivalence tests.
	DisableEventSkip bool
	// DisableIncremental forces a from-scratch elephant REQUEST sweep
	// every epoch instead of replaying the demand-versioned request cache
	// of sources whose elephant VOQs did not change. Byte-identical either
	// way; for A/B benchmarks and cache-equivalence tests.
	DisableIncremental bool
	// OnDeliver, when set, observes every payload delivery at its
	// destination (forces sequential execution, like the NegotiaToR
	// engine).
	OnDeliver func(dst int, at sim.Time, n int64)
	// TrackReceiverBuffers models the receiver-side ToR-to-host buffers
	// and reports their peak occupancy (forces sequential execution).
	TrackReceiverBuffers bool
	// Workers is the intra-run shard parallelism (results identical at
	// any value; capped at the ToR count, clamped to 1 when OnDeliver or
	// TrackReceiverBuffers needs globally ordered delivery).
	Workers int
}

// Results mirrors the other engines' summaries.
type Results struct {
	FCT        *metrics.FCTStats
	Goodput    *metrics.Goodput
	MatchRatio *metrics.Ratio
	Tags       map[int]*fabric.TagStat
	Duration   sim.Duration
	EpochLen   sim.Duration
	Epochs     int64
	Injected   int64
	Delivered  int64
	LostBytes  int64 // bytes destroyed by failures (before requeue), cumulative
	// PeakReceiverBuffer is the largest receiver-side backlog; zero
	// unless TrackReceiverBuffers is set.
	PeakReceiverBuffer int64
}

// Engine is the hybrid control plane: mice on the oblivious round-robin
// schedule, elephants on on-demand negotiation.
type Engine struct {
	cfg         Config
	fab         *fabric.Core
	top         topo.Topology
	timing      negotiator.Timing
	n, s        int
	predefSlots int
	epochLn     sim.Duration
	payload     int64 // scheduled-phase payload per slot
	piggyBytes  int64 // predefined-phase payload per pair
	miceBytes   int64

	matcher    match.Matcher
	matchRatio metrics.Ratio
	tors       []*torCtl
	views      []torView
	shards     []*hyShard
	epochStart sim.Time

	// incremental: replay each source's cached elephant request emissions
	// while its direct-demand version is unchanged (the engine's matcher
	// is always the base binary-request policy, whose Requests is a pure
	// function of the demand row).
	incremental bool
	caches      []reqCache

	// Core-owned failure snapshots (stable pointers, advanced by the core
	// before each Round; nil without a plan).
	actual, known *failure.State

	stepRequest  func(k int)
	stepGrant    func(k int)
	stepTransmit func(k int)
}

// reqCache holds one source's elephant REQUEST emissions from its last
// fresh sweep, stamped with the node's direct-demand version at capture
// time (mice pushes do not touch the version — the matcher's view reads
// elephant VOQs only). While the version is unchanged the sweep would
// re-emit exactly this list, so the epoch replays it instead. Capture is
// lazy, as in the NegotiaToR engine: a sweep tees into reqs only after
// the version has held stable across an epoch, so rows that drain every
// epoch never pay the tee.
type reqCache struct {
	reqs  []match.Request
	ver   int64
	seen  bool
	valid bool
}

// torCtl is one ToR's control state: single-generation mailboxes (the
// idealised negotiation resolves within the epoch) and this epoch's
// matches per port.
type torCtl struct {
	reqIn   []match.Request
	grantIn []match.Grant
	matches []int32
	// hasMatches is false only when matches is all -1 (see the NegotiaToR
	// engine's tor.hasMatches): idle ToRs skip the O(S) clear and the
	// elephant port walk.
	hasMatches bool
}

// torView exposes elephant demand only to the matcher.
type torView struct {
	e *Engine
	i int
}

func (v *torView) QueuedBytes(dst int) int64 { return v.e.fab.Nodes[v.i].DirectQueuedBytes(dst) }
func (v *torView) WeightedHoL(dst int, alpha float64) float64 {
	nd := v.e.fab.Nodes[v.i]
	return nd.DirectWeightedHoL(dst, v.e.fab.Now(), alpha)
}
func (v *torView) CumInjected(dst int) int64 { return 0 }

// NextDemand iterates the elephant-VOQ occupancy index: the matcher's
// request sweep is O(active destinations).
func (v *torView) NextDemand(after int) int {
	return v.e.fab.Nodes[v.i].DirectOcc.Next(after)
}

// hyShard is one contiguous ToR range's execution context: the matcher
// handle, cross-shard message outboxes (bucketed by receiving shard,
// merged in shard order — the ToR-ascending order a sequential epoch
// produces) and the prebuilt transmission emitters.
type hyShard struct {
	e               *Engine
	k               int
	lo, hi          int
	fs              *fabric.Shard
	matcher         match.Matcher
	accepts, grants int64
	reqOut          [][]match.Request
	grantOut        [][]match.Grant

	txDst     int
	txPos     int64
	txAt      sim.Time
	txNode    *fabric.Node
	txLost    bool // current connection's link down but undetected
	schedEmit func(*flows.Flow, int64)
	miceEmit  func(*flows.Flow, int64)
	grantEmit func(match.Grant)
	reqEmit   func(match.Request)

	// Incremental request-cache plumbing (see reqCache): the tee captures
	// a fresh sweep's emissions into the source's cache while forwarding
	// them; the verify tee feeds the replay-equals-fresh invariant.
	curCache  *reqCache
	teeEmit   func(match.Request)
	verifyBuf []match.Request
	verifyTee func(match.Request)
}

// New builds the hybrid engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("hybrid: nil topology")
	}
	if cfg.Timing == (negotiator.Timing{}) {
		cfg.Timing = negotiator.DefaultTiming()
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	if cfg.MiceBytes == 0 {
		cfg.MiceBytes = metrics.MiceFlowBytes
	}
	if err := cfg.Timing.Validate(cfg.Topology); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		top:         cfg.Topology,
		timing:      cfg.Timing,
		n:           cfg.Topology.N(),
		s:           cfg.Topology.Ports(),
		predefSlots: cfg.Topology.PredefinedSlots(),
		miceBytes:   cfg.MiceBytes,
	}
	e.epochLn = e.timing.EpochLen(e.predefSlots)
	e.payload = e.timing.DataPayloadBytes()
	e.piggyBytes = e.timing.PiggybackBytes()
	rng := sim.NewRNG(cfg.Seed)
	e.matcher = match.NewNegotiator(e.top, rng.Split(1))
	e.incremental = !cfg.DisableIncremental
	if e.incremental {
		e.caches = make([]reqCache, e.n)
	}
	workers := cfg.Workers
	if cfg.OnDeliver != nil || cfg.TrackReceiverBuffers {
		workers = 1 // globally ordered delivery observation
	}
	fab, err := fabric.New(fabric.Config{
		Topology:             cfg.Topology,
		HostRate:             cfg.HostRate,
		Workers:              workers,
		RNG:                  rng,
		PriorityQueues:       cfg.PriorityQueues,
		Lanes:                true, // Lanes[dst] = mice VOQs
		OnDeliver:            cfg.OnDeliver,
		TrackReceiverBuffers: cfg.TrackReceiverBuffers,
		Failures:             cfg.Failures,
		DisableEventSkip:     cfg.DisableEventSkip,
	})
	if err != nil {
		return nil, err
	}
	e.fab = fab
	fab.Bind(e, e.admit)
	e.actual = fab.ActualFailures()
	e.known = fab.KnownFailures()

	e.tors = make([]*torCtl, e.n)
	e.views = make([]torView, e.n)
	for i := range e.tors {
		// Mailboxes grow on demand (capacity retained via in[:0]), so a
		// ToR's footprint follows received traffic instead of pre-paying
		// n-1 slots — the same O(N²) construction floor the fabric's
		// lazy node slabs remove.
		t := &torCtl{matches: make([]int32, e.s)}
		for p := range t.matches {
			t.matches[p] = -1
		}
		e.tors[i] = t
		e.views[i] = torView{e: e, i: i}
	}
	var handles []match.Matcher
	if fab.Workers > 1 {
		handles = e.matcher.(match.Sharded).Fork(fab.Workers)
	}
	e.shards = make([]*hyShard, fab.Workers)
	for k := range e.shards {
		fs := fab.Shards[k]
		sh := &hyShard{e: e, k: k, lo: fs.Lo, hi: fs.Hi, fs: fs, matcher: e.matcher}
		if handles != nil {
			sh.matcher = handles[k]
		}
		sh.reqOut = make([][]match.Request, fab.Workers)
		sh.grantOut = make([][]match.Grant, fab.Workers)
		for r := range sh.reqOut {
			sh.reqOut[r] = make([]match.Request, 0, (fs.Hi-fs.Lo)+1)
			sh.grantOut[r] = make([]match.Grant, 0, (fs.Hi-fs.Lo)+1)
		}
		sh.initEmitters()
		e.shards[k] = sh
	}
	e.stepRequest = func(k int) { e.shards[k].requestStep() }
	e.stepGrant = func(k int) { e.shards[k].grantStep() }
	e.stepTransmit = func(k int) { e.shards[k].transmitStep() }
	return e, nil
}

// admit routes an arrival by class: mice to the round-robin queues,
// elephants to the negotiated queues.
func (e *Engine) admit(f *flows.Flow, at sim.Time) {
	nd := e.fab.Nodes[f.Src]
	if f.Size < e.miceBytes {
		nd.PushLane(f.Dst, f, at)
		return
	}
	nd.PushDirect(f.Dst, f, at)
}

func (e *Engine) Name() string                     { return "hybrid" }
func (e *Engine) RoundLen() sim.Duration           { return e.epochLn }
func (e *Engine) EpochLen() sim.Duration           { return e.epochLn }
func (e *Engine) Now() sim.Time                    { return e.fab.Now() }
func (e *Engine) Workers() int                     { return e.fab.Workers }
func (e *Engine) SetWorkload(g workload.Generator) { e.fab.SetWorkload(g) }
func (e *Engine) Run(d sim.Duration)               { e.fab.Run(d) }
func (e *Engine) RunEpochs(k int)                  { e.fab.RunRounds(k) }
func (e *Engine) runEpoch()                        { e.fab.RunRound() }
func (e *Engine) Drain(maxEpochs int) bool         { return e.fab.Drain(maxEpochs) }

// Results snapshots the run's measurements (idempotent, worker-count
// independent — see fabric.Core).
func (e *Engine) Results() Results {
	return Results{
		FCT:                e.fab.MergedFCT(),
		Goodput:            e.fab.MergedGoodput(),
		MatchRatio:         &e.matchRatio,
		Tags:               e.fab.Tags,
		Duration:           sim.Duration(e.fab.Now()),
		EpochLen:           e.epochLn,
		Epochs:             e.fab.Rounds(),
		Injected:           e.fab.Ledger.Injected,
		Delivered:          e.fab.Ledger.Delivered,
		LostBytes:          e.fab.Lost,
		PeakReceiverBuffer: e.fab.PeakReceiverBuffer(),
	}
}

// Round implements fabric.ControlPlane: one epoch as three barrier
// phases — REQUEST emission, GRANT over merged requests, ACCEPT over
// merged grants followed by transmission (mice on the predefined
// round-robin, elephants on the matched scheduled connections).
func (e *Engine) Round() {
	e.epochStart = e.fab.Now()
	e.fab.Inject(e.epochStart)
	e.fab.ParDo(e.stepRequest)
	e.fab.ParDo(e.stepGrant)
	e.fab.ParDo(e.stepTransmit)
	var accepts, grants int64
	for _, sh := range e.shards {
		accepts += sh.accepts
		grants += sh.grants
		sh.accepts, sh.grants = 0, 0
	}
	e.matchRatio.Observe(accepts, grants)
}

// IdleHorizon implements fabric.IdlePlane: the idealised negotiation
// produces and consumes its mailboxes within a single Round, the matcher
// draws randomness only at construction, and the lazily-cleared match rows
// of the last busy epoch are wiped at the next executed epoch exactly as
// they would be under ticking — so with no byte queued anywhere (the
// core's precondition) every future epoch is a no-op until new bytes
// arrive.
func (e *Engine) IdleHorizon() sim.Time { return fabric.HorizonInfinite }

// CheckRound implements fabric.RoundChecker when invariant checking is on.
func (e *Engine) CheckRound() {
	if !e.cfg.CheckInvariants {
		return
	}
	if e.cfg.Failures != nil {
		e.fab.CheckConservation() // ledger check plus loss-record identities
	} else if err := e.fab.Ledger.Check(e.fab.QueuedInNodes()); err != nil {
		panic(err)
	}
	e.fab.CheckOccupancy()
}

// initEmitters prebuilds the per-shard closures so the steady-state epoch
// performs no heap allocation.
func (sh *hyShard) initEmitters() {
	e := sh.e
	sh.reqEmit = func(r match.Request) {
		d := e.fab.ShardOf[r.Dst]
		sh.reqOut[d] = append(sh.reqOut[d], r)
	}
	sh.teeEmit = func(r match.Request) {
		sh.curCache.reqs = append(sh.curCache.reqs, r)
		sh.reqEmit(r)
	}
	sh.verifyTee = func(r match.Request) { sh.verifyBuf = append(sh.verifyBuf, r) }
	sh.grantEmit = func(g match.Grant) {
		sh.grants++
		r := e.fab.ShardOf[g.Src]
		sh.grantOut[r] = append(sh.grantOut[r], g)
	}
	// Scheduled-phase (elephant) delivery: slot-timed like NegotiaToR.
	// With the connection's link down but undetected, the bytes are
	// destroyed in flight and booked for requeue into the elephant VOQ.
	sh.schedEmit = func(f *flows.Flow, n int64) {
		// Flow-group runs split at member boundaries so each member's last
		// byte carries its own slot's arrival time (see the negotiator
		// plane's schedEmit); single flows take one pass.
		for n > 0 {
			take := n
			if f.Count > 1 {
				if rem := f.Size - f.Sent()%f.Size; rem < take {
					take = rem
				}
			}
			off := f.Sent()
			f.NoteSent(take)
			sh.txPos += take
			endSlot := (sh.txPos + e.payload - 1) / e.payload
			at := sh.txAt.Add(sim.Duration(endSlot) * e.timing.ScheduledSlot).Add(e.timing.PropDelay)
			if sh.txLost {
				sh.fs.RecordLossClass(sh.txNode, f, sh.txDst, off, take, at, fabric.RequeueDirect, -1)
			} else {
				sh.fs.Deliver(f, sh.txDst, take, at)
			}
			n -= take
		}
	}
	// Predefined-phase (mice) delivery: fixed slot arrival time; losses
	// requeue into the mice queue (lane) they were taken from.
	sh.miceEmit = func(f *flows.Flow, n int64) {
		off := f.Sent()
		f.NoteSent(n)
		if sh.txLost {
			sh.fs.RecordLossClass(sh.txNode, f, sh.txDst, off, n, sh.txAt, fabric.RequeueLane, sh.txDst)
			return
		}
		sh.fs.Deliver(f, sh.txDst, n, sh.txAt)
	}
}

// requestStep emits a request for every destination with elephant
// backlog, bucketed by the destination's shard. The sweep walks the
// shard's non-empty elephant-VOQ occupancy set — a source outside it has
// no demand, and the base matcher's Requests on such a source is a no-op —
// so the phase is O(active sources), in the same ascending order as a
// dense walk.
func (sh *hyShard) requestStep() {
	occ := &sh.fs.ActiveDirect
	for bit := occ.Next(-1); bit >= 0; bit = occ.Next(bit) {
		sh.sourceRequests(sh.lo + bit)
	}
}

// sourceRequests emits one source's requests: a cached replay when the
// source's direct-demand version is unchanged since the last fresh sweep,
// a fresh sweep otherwise. A fresh sweep tees into the cache only once
// the version has been observed stable across an epoch (see reqCache).
// Under CheckInvariants every replay is shadowed by a fresh sweep and
// compared element-wise.
func (sh *hyShard) sourceRequests(i int) {
	e := sh.e
	if !e.incremental {
		sh.matcher.Requests(i, &e.views[i], e.epochStart, 0, sh.reqEmit)
		return
	}
	c := &e.caches[i]
	ver := e.fab.Nodes[i].DemandVer()
	if !c.seen || c.ver != ver {
		c.ver, c.seen, c.valid = ver, true, false
		sh.matcher.Requests(i, &e.views[i], e.epochStart, 0, sh.reqEmit)
		return
	}
	if c.valid {
		if e.cfg.CheckInvariants {
			sh.verifyReplay(i, c)
		}
		for _, r := range c.reqs {
			sh.reqEmit(r)
		}
		return
	}
	c.reqs = c.reqs[:0]
	sh.curCache = c
	sh.matcher.Requests(i, &e.views[i], e.epochStart, 0, sh.teeEmit)
	sh.curCache = nil
	c.valid = true
}

// verifyReplay asserts a source's cached request list matches a fresh
// sweep (sound to run twice: the base matcher's Requests is pure).
func (sh *hyShard) verifyReplay(i int, c *reqCache) {
	e := sh.e
	sh.verifyBuf = sh.verifyBuf[:0]
	sh.matcher.Requests(i, &e.views[i], e.epochStart, 0, sh.verifyTee)
	if len(sh.verifyBuf) != len(c.reqs) {
		panic(fmt.Sprintf("hybrid: request cache diverged at ToR %d: %d cached vs %d fresh", i, len(c.reqs), len(sh.verifyBuf)))
	}
	for k := range sh.verifyBuf {
		if sh.verifyBuf[k] != c.reqs[k] {
			panic(fmt.Sprintf("hybrid: request cache diverged at ToR %d request %d: cached %+v fresh %+v", i, k, c.reqs[k], sh.verifyBuf[k]))
		}
	}
}

// grantStep merges this shard's request buckets (sender order = shard
// order = ToR-ascending) and runs the GRANT step at each of its ToRs.
func (sh *hyShard) grantStep() {
	e := sh.e
	for _, src := range e.shards {
		out := src.reqOut[sh.k]
		for _, r := range out {
			t := e.tors[r.Dst]
			t.reqIn = append(t.reqIn, r)
		}
		src.reqOut[sh.k] = out[:0]
	}
	for j := sh.lo; j < sh.hi; j++ {
		t := e.tors[j]
		if len(t.reqIn) == 0 {
			continue
		}
		sh.matcher.Grants(j, t.reqIn, sh.grantEmit)
		t.reqIn = t.reqIn[:0]
	}
}

// transmitStep merges the grant buckets, runs ACCEPT, and transmits: the
// mice sweep over the predefined round-robin connections, then the
// elephant drain over the matched scheduled connections.
func (sh *hyShard) transmitStep() {
	e := sh.e
	for _, src := range e.shards {
		out := src.grantOut[sh.k]
		for _, g := range out {
			t := e.tors[g.Src]
			t.grantIn = append(t.grantIn, g)
		}
		src.grantOut[sh.k] = out[:0]
	}
	rot := int(e.fab.Rounds() % (1 << 30))
	slotDur := e.timing.PredefinedSlot
	phaseStart := e.epochStart.Add(e.timing.PredefinedLen(e.predefSlots))
	capacity := e.payload * int64(e.timing.ScheduledSlots)
	for i := sh.lo; i < sh.hi; i++ {
		t := e.tors[i]
		if len(t.grantIn) > 0 {
			sh.matcher.Accepts(i, &e.views[i], t.grantIn, t.matches, nil)
			t.grantIn = t.grantIn[:0]
			any := false
			for _, d := range t.matches {
				if d >= 0 {
					sh.accepts++
					any = true
				}
			}
			t.hasMatches = any
		} else if t.hasMatches {
			for p := range t.matches {
				t.matches[p] = -1
			}
			t.hasMatches = false
		}
		nd := e.fab.Nodes[i]
		// Mice ride the round-robin: one piggyback payload per connected
		// pair, delivery fixed by the pair's predefined slot. The sweep
		// iterates the mice-queue occupancy index (ascending, exactly the
		// non-empty lanes), so idle pairs cost nothing.
		sh.txNode = nd
		sh.txLost = false
		// One O(1) aggregate read skips the occupancy-index word scan
		// entirely for ToRs holding no mice at all.
		if e.piggyBytes > 0 && nd.LanesBytes != 0 {
			for j := nd.LanesOcc.Next(-1); j >= 0; j = nd.LanesOcc.Next(j) {
				if j == i {
					continue
				}
				slot, port := e.top.PredefinedSlotPort(i, j, rot)
				// A pair whose predefined link the fabric knows is down
				// holds its mice for a later rotation (a different port);
				// an undetected failure transmits into the void.
				if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, port) {
					continue
				}
				sh.txDst = j
				sh.txAt = e.epochStart.Add(sim.Duration(slot+1) * slotDur).Add(e.timing.PropDelay)
				sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, port)
				nd.TakeLane(j, e.piggyBytes, sh.miceEmit)
			}
		}
		// Elephants use the negotiated connections.
		if t.hasMatches {
			for p, dj := range t.matches {
				if dj < 0 {
					continue
				}
				if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, int(dj), p) {
					continue // match rides a link known down: forfeited
				}
				sh.txDst = int(dj)
				sh.txPos = 0
				sh.txAt = phaseStart
				sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, int(dj), p)
				nd.TakeDirect(int(dj), capacity, sh.schedEmit)
			}
		}
	}
}

// Compile-time interface checks.
var (
	_ fabric.ControlPlane = (*Engine)(nil)
	_ fabric.RoundChecker = (*Engine)(nil)
	_ fabric.IdlePlane    = (*Engine)(nil)
)
