package hybrid

import (
	"fmt"
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/sim"
	"negotiator/internal/workload"
)

// hybridFailurePlan cuts 20% of links for the middle of a short run, long
// enough past recovery that every loss detects, requeues and drains.
func hybridFailurePlan(detect sim.Duration, seed int64) *failure.Plan {
	return failure.Random(16, 4, 0.2,
		sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond), detect, seed)
}

// TestFailureConservation runs the hybrid plane under mid-run link
// failures with per-round invariant checking on (CheckRound calls
// fabric.Core.CheckConservation when failures are configured). Both
// halves lose bytes — mice on the predefined sweep, elephants on their
// negotiated matches — and after recovery everything requeues and drains.
// Run in CI under -race at -cpu 1,2,4.
func TestFailureConservation(t *testing.T) {
	for _, pq := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("pq=%v/workers=%d", pq, workers), func(t *testing.T) {
				cfg := testConfig(t, 16, 4)
				cfg.PriorityQueues = pq
				cfg.Workers = workers
				cfg.Failures = hybridFailurePlan(2*sim.Microsecond, 9)
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 7))
				e.Run(60 * sim.Microsecond)
				e.SetWorkload(nil)
				if !e.Drain(50_000) {
					t.Fatal("fabric did not drain after recovery")
				}
				r := e.Results()
				if r.LostBytes <= 0 {
					t.Error("no bytes destroyed despite 20% links down mid-run")
				}
				if e.fab.Ledger.Lost != 0 {
					t.Errorf("%d bytes still lost after recovery + drain", e.fab.Ledger.Lost)
				}
				if r.Delivered != r.Injected {
					t.Errorf("delivered %d of %d injected", r.Delivered, r.Injected)
				}
				if e.fab.Requeued() != r.LostBytes {
					t.Errorf("requeued %d != destroyed %d after full drain", e.fab.Requeued(), r.LostBytes)
				}
			})
		}
	}
}

// TestFailureDeterminism: loss recording on both the mice sweep and the
// elephant matches must be worker-count invariant.
func TestFailureDeterminism(t *testing.T) {
	fingerprint := func(workers int) string {
		cfg := testConfig(t, 16, 4)
		cfg.CheckInvariants = false
		cfg.Workers = workers
		cfg.Failures = hybridFailurePlan(2*sim.Microsecond, 9)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 7))
		e.Run(60 * sim.Microsecond)
		r := e.Results()
		return fmt.Sprintf("inj=%d del=%d lost=%d match=%v fct99=%v mice=%v cdf=%v",
			r.Injected, r.Delivered, r.LostBytes, r.MatchRatio.Mean(), r.FCT.P(99), r.FCT.MiceMean(), r.FCT.MiceCDF(16))
	}
	want := fingerprint(1)
	for _, workers := range []int{2, 4, 8, 16} {
		if got := fingerprint(workers); got != want {
			t.Fatalf("workers=%d diverges under failures\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestZeroDetectDelayNoLoss: with instant detection the mice gate and the
// elephant match gate both see the true state, so nothing is destroyed.
func TestZeroDetectDelayNoLoss(t *testing.T) {
	cfg := testConfig(t, 16, 4)
	cfg.Failures = hybridFailurePlan(0, 9)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 7))
	e.Run(60 * sim.Microsecond)
	e.SetWorkload(nil)
	if !e.Drain(50_000) {
		t.Fatal("fabric did not drain")
	}
	r := e.Results()
	if r.LostBytes != 0 {
		t.Errorf("instant detection still destroyed %d bytes", r.LostBytes)
	}
	if r.Delivered != r.Injected {
		t.Errorf("delivered %d of %d", r.Delivered, r.Injected)
	}
}

// TestPortGroupScenario: one AWGR dying takes the same port off every
// ToR; the predefined sweep loses exactly the slots mapping to that port
// and the schedulers route elephants around it, yet the run still drains.
func TestPortGroupScenario(t *testing.T) {
	cfg := testConfig(t, 16, 4)
	cfg.Failures = failure.PortGroup(16, 4, 1,
		sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond), 2*sim.Microsecond)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 7))
	e.Run(60 * sim.Microsecond)
	e.SetWorkload(nil)
	if !e.Drain(50_000) {
		t.Fatal("fabric did not drain after the AWGR recovered")
	}
	r := e.Results()
	if r.LostBytes <= 0 {
		t.Error("port-group outage destroyed nothing")
	}
	if r.Delivered != r.Injected {
		t.Errorf("delivered %d of %d after recovery", r.Delivered, r.Injected)
	}
}
