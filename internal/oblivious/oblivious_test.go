package oblivious

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

func testTopo(t *testing.T) topo.Topology {
	t.Helper()
	tc, err := topo.NewThinClos(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func testConfig(t *testing.T) Config {
	return Config{
		Topology:        testTopo(t),
		HostRate:        sim.Gbps(200),
		PriorityQueues:  true,
		Seed:            1,
		CheckInvariants: true,
	}
}

func TestTiming(t *testing.T) {
	tm := DefaultTiming()
	if got := tm.CellBytes(); got != 615 {
		t.Errorf("cell = %d B, want 615 (625 - 10 header)", got)
	}
	bad := tm
	bad.Slot = 5
	if bad.Validate() == nil {
		t.Error("slot shorter than guardband accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestCycleLen(t *testing.T) {
	e, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// 16 ToRs, 4 ports thin-clos: 4 slots of 60ns.
	if got := e.CycleLen(); got != 240 {
		t.Errorf("cycle = %v, want 240ns", got)
	}
}

func TestVLBTakesTwoHops(t *testing.T) {
	// Under the Sirius discipline, most bytes relay through an
	// intermediate; delivery needs two propagation delays.
	e, _ := New(testConfig(t))
	e.SetWorkload(workload.NewSinglePair(0, 9, 20<<10, 0))
	e.Run(100 * sim.Microsecond)
	r := e.Results()
	if r.Delivered != 20<<10 {
		t.Fatalf("delivered %d of %d", r.Delivered, 20<<10)
	}
	if r.Relayed == 0 {
		t.Fatal("no bytes relayed under VLB")
	}
	// Most traffic took the two-hop path (1/16 lands direct by luck).
	if float64(r.Relayed) < 0.7*float64(r.Delivered) {
		t.Errorf("relayed only %d of %d delivered bytes", r.Relayed, r.Delivered)
	}
	if r.FCT.Count() != 1 {
		t.Fatalf("flow count = %d", r.FCT.Count())
	}
	// FCT includes at least two propagation delays.
	if got := r.FCT.P(100); got < 4*sim.Microsecond {
		t.Errorf("two-hop FCT = %v, want >= 4µs (2 hops x 2µs)", got)
	}
}

func TestDirectOnlyNeverRelays(t *testing.T) {
	cfg := testConfig(t)
	cfg.DirectOnly = true
	e, _ := New(cfg)
	e.SetWorkload(workload.NewSinglePair(0, 9, 20<<10, 0))
	e.Run(100 * sim.Microsecond)
	r := e.Results()
	if r.Relayed != 0 {
		t.Errorf("DirectOnly relayed %d bytes", r.Relayed)
	}
	if r.Delivered != 20<<10 {
		t.Errorf("delivered %d", r.Delivered)
	}
}

func TestOpportunisticDirectRelaysLess(t *testing.T) {
	// The RotorLB-style variant serves the connected peer's direct queue
	// before spraying, so it relays strictly fewer bytes than pure VLB.
	run := func(opp bool) (relayed, delivered int64) {
		cfg := testConfig(t)
		cfg.OpportunisticDirect = opp
		e, _ := New(cfg)
		e.SetWorkload(workload.NewAllToAll(16, 10<<10, 0))
		if !e.Drain(1_000_000) {
			t.Fatal("drain failed")
		}
		r := e.Results()
		return r.Relayed, r.Delivered
	}
	oppRelay, oppDel := run(true)
	vlbRelay, vlbDel := run(false)
	if oppDel != vlbDel {
		t.Fatalf("delivered differ: %d vs %d", oppDel, vlbDel)
	}
	if oppRelay >= vlbRelay {
		t.Errorf("opportunistic relayed %d, want < VLB's %d", oppRelay, vlbRelay)
	}
}

func TestRelayDoublesTrafficVolume(t *testing.T) {
	// The paper's core criticism: data relay doubles the traffic volume.
	// Under all-to-all load, relayed bytes approach delivered bytes.
	e, _ := New(testConfig(t))
	e.SetWorkload(workload.NewAllToAll(16, 30<<10, 0))
	if !e.Drain(2_000_000) {
		t.Fatal("failed to drain")
	}
	r := e.Results()
	ratio := float64(r.Relayed) / float64(r.Delivered)
	if ratio < 0.8 {
		t.Errorf("relay ratio = %.2f, want ~0.94 (15/16 two-hop)", ratio)
	}
}

func TestRelayCapBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.RelayCap = 2 * DefaultTiming().CellBytes()
	cfg.CheckInvariants = true
	e, _ := New(cfg)
	e.SetWorkload(workload.NewAllToAll(16, 100<<10, 0))
	e.Run(200 * sim.Microsecond)
	// The cap bounds each (intermediate, destination) VOQ, but the
	// headroom check reads the slot-start occupancy snapshot (backpressure
	// feedback is a propagation delay stale, see Config.Workers): every
	// source connected to the intermediate within one slot may admit up to
	// one cell against the same headroom, so a VOQ can briefly overshoot
	// by up to one cell per port.
	slack := int64(e.s) * e.cell
	for i, nd := range e.fab.Nodes {
		for d := 0; d < e.n; d++ {
			if b := nd.Relay.Bytes(d); b > cfg.RelayCap+slack {
				t.Fatalf("tor %d VOQ[%d] backlog %d exceeds cap %d", i, d, b, cfg.RelayCap)
			}
		}
	}
}

func TestConservationUnderLoad(t *testing.T) {
	cfg := testConfig(t)
	e, _ := New(cfg)
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 1.0, cfg.HostRate, 7))
	e.Run(300 * sim.Microsecond) // CheckInvariants panics on violation
	r := e.Results()
	if r.FCT.Count() == 0 {
		t.Error("no completions")
	}
}

func TestGoodputCollapsesUnderHeavyLoad(t *testing.T) {
	// The relay traffic competes for receiver bandwidth: at saturating
	// load the oblivious design cannot approach offered load (paper §2:
	// worst-case goodput ~50%).
	cfg := testConfig(t)
	e, _ := New(cfg)
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 1.0, cfg.HostRate, 11))
	e.Run(3 * sim.Millisecond)
	r := e.Results()
	norm := r.Goodput.Normalized(r.Duration, cfg.HostRate)
	if norm > 0.8 {
		t.Errorf("oblivious goodput %.2f at 100%% load, expected relay-limited (< 0.8)", norm)
	}
	if norm < 0.2 {
		t.Errorf("oblivious goodput %.2f suspiciously low", norm)
	}
}

func TestIncastTagging(t *testing.T) {
	cfg := testConfig(t)
	e, _ := New(cfg)
	inc, err := workload.NewIncast(16, 3, 10, 1000, sim.Time(10*sim.Microsecond), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(inc)
	e.Run(200 * sim.Microsecond)
	ts := e.Results().Tags[1]
	if ts == nil || ts.Done != 10 {
		t.Fatalf("incast incomplete: %+v", ts)
	}
	if ts.End <= ts.Start {
		t.Errorf("bad tag window: %+v", ts)
	}
}

func TestTransitObserver(t *testing.T) {
	cfg := testConfig(t)
	var transit int64
	cfg.OnTransit = func(k int, at sim.Time, n int64) { transit += n }
	var delivered int64
	cfg.OnDeliver = func(d int, at sim.Time, n int64) { delivered += n }
	e, _ := New(cfg)
	e.SetWorkload(workload.NewSinglePair(0, 9, 10<<10, 0))
	e.Run(100 * sim.Microsecond)
	if transit == 0 {
		t.Error("no transit observed")
	}
	if delivered != 10<<10 {
		t.Errorf("observer saw %d delivered", delivered)
	}
	if transit != e.Results().Relayed {
		t.Errorf("transit observer %d != relayed %d", transit, e.Results().Relayed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		cfg := testConfig(t)
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.6, cfg.HostRate, 99))
		e.Run(300 * sim.Microsecond)
		return e.Results().Delivered
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

func TestWorksOnParallelTopologyToo(t *testing.T) {
	p, err := topo.NewParallel(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.Topology = p
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.5, cfg.HostRate, 3))
	e.Run(200 * sim.Microsecond)
	if e.Results().FCT.Count() == 0 {
		t.Error("no completions on parallel topology")
	}
}
