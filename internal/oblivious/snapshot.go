package oblivious

import (
	"io"

	"negotiator/internal/snap"
)

// Snapshot serializes the engine's complete state (fabric core plus this
// control plane's PlaneState payload) at a timeslot boundary.
func (e *Engine) Snapshot(w io.Writer) error { return e.fab.Snapshot(w) }

// Restore applies a snapshot to a freshly constructed engine of the same
// configuration. SetWorkload (with an identically constructed generator)
// must be called first; see fabric.Core.Restore.
func (e *Engine) Restore(r io.Reader) error { return e.fab.Restore(r) }

// PlaneState implements fabric.StatefulPlane. The round-robin schedule
// keeps almost no cross-slot control state outside the node queues: the
// slot index and rotation derive from the core's round counter, spray
// pointers and the spray RNG live in the core snapshot, and the per-slot
// used-connection stamps compare against the current slot number only.
// The transit-volume counter is the plane's sole persistent scalar.
func (e *Engine) PlaneState() ([]byte, error) {
	var enc snap.Enc
	enc.I64(e.relayed)
	return enc.Bytes(), nil
}

// RestorePlaneState implements fabric.StatefulPlane.
func (e *Engine) RestorePlaneState(data []byte) error {
	d := snap.NewDec(data)
	e.relayed = d.I64()
	return d.Finish()
}
