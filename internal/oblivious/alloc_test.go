package oblivious

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// steadySlotEngine builds a paper-scale baseline engine saturated with
// long-lived flows (one 4 MB flow per ToR pair, sprayed across lanes in
// coarse chunks to bound segment count) and runs it past all warm-up
// growth: relay VOQs at their caps, record buffers and FIFO backing
// arrays at steady capacity, workload exhausted. Each further slot
// exercises the full service path — relay drains, lane heads, VOQ
// admission — with no flow completing inside the measured window.
func steadySlotEngine(tb testing.TB, warmupSlots int) *Engine {
	tb.Helper()
	top, err := topo.NewThinClos(128, 8, 16)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:        top,
		HostRate:        sim.Gbps(400),
		PriorityQueues:  true,
		SprayChunkCells: 64,
		Seed:            1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(workload.NewAllToAll(128, 4<<20, 0))
	for i := 0; i < warmupSlots; i++ {
		e.runSlot()
	}
	if !e.fab.WorkloadDone() {
		tb.Fatal("steady state not reached: workload not exhausted")
	}
	if r := e.Results(); r.FCT.Count() != 0 {
		tb.Fatalf("steady state spoiled: %d flows completed during warm-up", r.FCT.Count())
	}
	return e
}

// TestSlotSteadyStateZeroAlloc extends the zero-alloc steady-state
// guarantee (TestEpochSteadyStateZeroAlloc in the epoch engines) to the
// traffic-oblivious baseline: with segment-array and flow recycling in
// place, a steady-state timeslot performs no heap allocation. This is
// the allocs/op regression guard for the slot path.
func TestSlotSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale engine in -short mode")
	}
	e := steadySlotEngine(t, 2000)
	allocs := testing.AllocsPerRun(100, func() { e.runSlot() })
	if allocs != 0 {
		t.Errorf("steady-state slot allocates %.1f objects/slot, want 0", allocs)
	}
}

// BenchmarkSlotSteadyState measures the allocation-free steady-state
// slot (companion to BenchmarkSlotSaturated, which includes Poisson flow
// churn).
func BenchmarkSlotSteadyState(b *testing.B) {
	e := steadySlotEngine(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}
