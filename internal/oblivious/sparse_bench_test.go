package oblivious

import (
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// The sparse benchmarks run workload.Permutation: one enormous flow per
// active ToR to its cyclic successor. Under the slot-time-spray
// disciplines each active source holds exactly one non-empty destination
// queue, so the per-port spray scan — which walks destinations looking
// for backlog — must be O(active), not O(N), and idle nodes must be
// skipped by the O(1) per-class aggregates rather than walked port by
// port. (Intermediates still materialize relay slabs as spray traffic
// reaches them — memory follows real occupancy.)

func sparseEngine(tb testing.TB, n, active int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:            top,
		HostRate:            sim.Gbps(400),
		OpportunisticDirect: true,
		Seed:                1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(n, active, 1<<32, 0)
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(perm)
	for i := 0; i < 2*e.slots; i++ {
		e.runSlot()
	}
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkSlotSparse1024 measures one timeslot at 1024 ToRs under sparse
// traffic with the RotorLB-style opportunistic discipline (slot-time
// spray over the per-destination queues). See BENCH_pr4.json.
func BenchmarkSlotSparse1024(b *testing.B) {
	e := sparseEngine(b, 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}

// BenchmarkSlotSparse4096 is the lazy-slab scale tier: 4096 ToRs, 256
// active sources. The warm-up runs two full round-robin cycles, so the
// steady state includes the relay slabs spray traffic has materialized.
func BenchmarkSlotSparse4096(b *testing.B) {
	e := sparseEngine(b, 4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}

// BenchmarkSlotSparse8192 is the scale tier PR 5 opened but never
// measured: 8192 ToRs, 256 active sources, opportunistic spray. The
// memory ceiling is a hard assertion. Spray traffic reaches every
// intermediate, and each touched node materializes an N-wide relay slab,
// so this discipline's floor at 8192 ToRs is ~2.9 GB (node-lazy but
// destination-eager — the next slab-granularity rung on the ROADMAP);
// the 4 GB ceiling locks that floor and still fails fast if the
// construction-time eager layout (~17 GB here) returns.
func BenchmarkSlotSparse8192(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 8192, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 4096<<20 {
		b.Fatalf("8192-ToR sparse setup allocated %d MB, ceiling 4096 MB: relay-slab memory no longer follows node occupancy", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/8192, "setup-bytes/ToR")
}

// BenchmarkSlotSparse65536 is the scale tier paged destination slabs
// open: 65,536 ToRs, 256 active sources. Spray traffic still reaches
// every intermediate, but each one now materializes a relay page table
// (N/128 pointers) plus only the pages covering the ~256 active
// destinations — ~20 KB instead of the ~350 KB an N-wide relay slab
// would cost here (~22 GB fabric-wide, which made this tier
// unreachable). The 4 GB ceiling is a hard assertion: it locks the
// paged floor and fails fast if relay memory becomes width-proportional
// again.
func BenchmarkSlotSparse65536(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 65536, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 4096<<20 {
		b.Fatalf("65536-ToR sparse setup allocated %d MB, ceiling 4096 MB: relay memory is width-proportional again", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/65536, "setup-bytes/ToR")
}

// BenchmarkSlotSparse131072 is the tier the destination-inverted drain
// walk opens: 131,072 ToRs, 256 active sources. Relay memory is paged and
// the per-slot walks are occupancy-driven (serve over the direct/lane
// sets, drain over backlogged relay destinations via the topology
// inverse), so doubling the width over the 65,536 tier must move neither
// the setup footprint per ToR nor the slot cost materially. The 8 GB
// ceiling is a hard assertion calibrated ~2x above the measured paged
// floor (the relay page tables grow with N, so the per-ToR cost rises
// gently), and fails fast if width-proportional state returns.
func BenchmarkSlotSparse131072(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 131072, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 8192<<20 {
		b.Fatalf("131072-ToR sparse setup allocated %d MB, ceiling 8192 MB: width-proportional memory is back", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/131072, "setup-bytes/ToR")
}

// replicateGen replays each arrival of the wrapped generator k times: the
// ungrouped ground truth the flow-group benchmark compares against.
type replicateGen struct {
	g    workload.Generator
	k    int
	left int
	cur  workload.Arrival
}

func (r *replicateGen) Next() (workload.Arrival, bool) {
	if r.left == 0 {
		a, ok := r.g.Next()
		if !ok {
			return workload.Arrival{}, false
		}
		r.cur, r.left = a, r.k
	}
	r.left--
	return r.cur, true
}

// millionFlowInject builds a 65,536-ToR engine carrying 1,048,576 host
// flows — 256 permutation pairs with 4096 identical flows each — and
// returns the engine plus the bytes allocated while the first slot pumped
// every arrival in. grouped injects each pair as one 4096-member record;
// ungrouped injects 4096 separate flow records per pair.
func millionFlowInject(tb testing.TB, grouped bool) (*Engine, uint64) {
	tb.Helper()
	top, err := topo.NewParallel(65536, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:            top,
		HostRate:            sim.Gbps(400),
		OpportunisticDirect: true,
		Seed:                1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(65536, 256, 2460, 0)
	if err != nil {
		tb.Fatal(err)
	}
	var w workload.Generator = perm
	if grouped {
		perm.SetGroup(4096)
	} else {
		w = &replicateGen{g: perm, k: 4096}
	}
	e.SetWorkload(w)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	e.runSlot() // every arrival is at t=0: one slot pumps them all
	runtime.ReadMemStats(&after)
	if !e.fab.WorkloadDone() {
		tb.Fatal("first slot did not drain the workload")
	}
	return e, after.TotalAlloc - before.TotalAlloc
}

// BenchmarkMillionFlowGroups is the million-flow tier: 1,048,576 host
// flows open at 65,536 ToRs behind 256 group records. The injection-phase
// allocation per host flow must be at least 10x below the ungrouped
// layout: the flow table holds 256 records instead of 1,048,576 and the
// VOQs hold 256 segments instead of 1,048,576, so the grouped slot's
// remaining allocation is occupancy cost (destination pages, relay pages
// the first spray materializes) that does not scale with the member
// count at all — measured ~11 B per host flow against ~130 ungrouped.
// The whole grouped setup also stays under a hard 4 GB ceiling that an
// ungrouped-record flow table at this width would strain alongside it.
// The timed loop then runs steady-state slots with the grouped table
// live.
func BenchmarkMillionFlowGroups(b *testing.B) {
	const hostFlows = 256 * 4096
	// Ungrouped reference first, then released, so the two flow tables are
	// never live together.
	eu, ungrouped := millionFlowInject(b, false)
	_ = eu
	eu = nil
	runtime.GC()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e, grouped := millionFlowInject(b, true)
	runtime.ReadMemStats(&after)
	if total := after.TotalAlloc - before.TotalAlloc; total > 4096<<20 {
		b.Fatalf("grouped million-flow setup allocated %d MB, ceiling 4096 MB", total>>20)
	}
	perFlowG := float64(grouped) / hostFlows
	perFlowU := float64(ungrouped) / hostFlows
	if perFlowG*10 > perFlowU {
		b.Fatalf("grouped injection costs %.1f B per host flow, ungrouped %.1f: less than the 10x aggregation floor",
			perFlowG, perFlowU)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(perFlowG, "grouped-bytes/flow")
	b.ReportMetric(perFlowU, "ungrouped-bytes/flow")
}
