package oblivious

import (
	"runtime"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// The sparse benchmarks run workload.Permutation: one enormous flow per
// active ToR to its cyclic successor. Under the slot-time-spray
// disciplines each active source holds exactly one non-empty destination
// queue, so the per-port spray scan — which walks destinations looking
// for backlog — must be O(active), not O(N), and idle nodes must be
// skipped by the O(1) per-class aggregates rather than walked port by
// port. (Intermediates still materialize relay slabs as spray traffic
// reaches them — memory follows real occupancy.)

func sparseEngine(tb testing.TB, n, active int) *Engine {
	tb.Helper()
	top, err := topo.NewParallel(n, 8)
	if err != nil {
		tb.Fatal(err)
	}
	e, err := New(Config{
		Topology:            top,
		HostRate:            sim.Gbps(400),
		OpportunisticDirect: true,
		Seed:                1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perm, err := workload.NewPermutation(n, active, 1<<32, 0)
	if err != nil {
		tb.Fatal(err)
	}
	e.SetWorkload(perm)
	for i := 0; i < 2*e.slots; i++ {
		e.runSlot()
	}
	if !e.fab.WorkloadDone() {
		tb.Fatal("sparse steady state not reached: workload not exhausted")
	}
	return e
}

// BenchmarkSlotSparse1024 measures one timeslot at 1024 ToRs under sparse
// traffic with the RotorLB-style opportunistic discipline (slot-time
// spray over the per-destination queues). See BENCH_pr4.json.
func BenchmarkSlotSparse1024(b *testing.B) {
	e := sparseEngine(b, 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}

// BenchmarkSlotSparse4096 is the lazy-slab scale tier: 4096 ToRs, 256
// active sources. The warm-up runs two full round-robin cycles, so the
// steady state includes the relay slabs spray traffic has materialized.
func BenchmarkSlotSparse4096(b *testing.B) {
	e := sparseEngine(b, 4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}

// BenchmarkSlotSparse8192 is the scale tier PR 5 opened but never
// measured: 8192 ToRs, 256 active sources, opportunistic spray. The
// memory ceiling is a hard assertion. Spray traffic reaches every
// intermediate, and each touched node materializes an N-wide relay slab,
// so this discipline's floor at 8192 ToRs is ~2.9 GB (node-lazy but
// destination-eager — the next slab-granularity rung on the ROADMAP);
// the 4 GB ceiling locks that floor and still fails fast if the
// construction-time eager layout (~17 GB here) returns.
func BenchmarkSlotSparse8192(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 8192, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 4096<<20 {
		b.Fatalf("8192-ToR sparse setup allocated %d MB, ceiling 4096 MB: relay-slab memory no longer follows node occupancy", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/8192, "setup-bytes/ToR")
}

// BenchmarkSlotSparse65536 is the scale tier paged destination slabs
// open: 65,536 ToRs, 256 active sources. Spray traffic still reaches
// every intermediate, but each one now materializes a relay page table
// (N/128 pointers) plus only the pages covering the ~256 active
// destinations — ~20 KB instead of the ~350 KB an N-wide relay slab
// would cost here (~22 GB fabric-wide, which made this tier
// unreachable). The 4 GB ceiling is a hard assertion: it locks the
// paged floor and fails fast if relay memory becomes width-proportional
// again.
func BenchmarkSlotSparse65536(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e := sparseEngine(b, 65536, 256)
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	if total > 4096<<20 {
		b.Fatalf("65536-ToR sparse setup allocated %d MB, ceiling 4096 MB: relay memory is width-proportional again", total>>20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(total)/65536, "setup-bytes/ToR")
}
