package oblivious

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// permWorkload is the saturated-but-sparse matrix: one enormous flow per
// ToR to its cyclic successor. Under the slot-time-spray disciplines each
// source holds exactly one non-empty destination queue, so the per-port
// spray scan — which walks destinations looking for backlog — must be
// O(active), not O(N).
type permWorkload struct {
	n, i int
	size int64
}

func (g *permWorkload) Next() (workload.Arrival, bool) {
	if g.i >= g.n {
		return workload.Arrival{}, false
	}
	a := workload.Arrival{Src: g.i, Dst: (g.i + 1) % g.n, Size: g.size}
	g.i++
	return a, true
}

// BenchmarkSlotSparse1024 measures one timeslot at 1024 ToRs under sparse
// traffic with the RotorLB-style opportunistic discipline (slot-time
// spray over the per-destination queues). See BENCH_pr4.json.
func BenchmarkSlotSparse1024(b *testing.B) {
	top, err := topo.NewParallel(1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Topology:            top,
		HostRate:            sim.Gbps(400),
		OpportunisticDirect: true,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e.SetWorkload(&permWorkload{n: 1024, size: 1 << 32})
	for i := 0; i < 2*e.slots; i++ {
		e.runSlot()
	}
	if !e.fab.WorkloadDone() {
		b.Fatal("sparse steady state not reached: workload not exhausted")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}
