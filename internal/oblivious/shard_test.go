package oblivious

import (
	"fmt"
	"strings"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// obFingerprint runs the baseline for a fixed duration and renders every
// observable of the run into one comparable string, including the
// per-delivery and per-transit observer streams (the strictest ordering
// witness: the serial merge must replay them identically at any worker
// count).
func obFingerprint(t *testing.T, cfg Config, d sim.Duration, load float64) string {
	t.Helper()
	var obs strings.Builder
	cfg.OnDeliver = func(dst int, at sim.Time, n int64) { fmt.Fprintf(&obs, "d%d@%d:%d;", dst, at, n) }
	cfg.OnTransit = func(k int, at sim.Time, n int64) { fmt.Fprintf(&obs, "t%d@%d:%d;", k, at, n) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), cfg.Topology.N(), load, cfg.HostRate, 21))
	e.Run(d)
	r := e.Results()
	return fmt.Sprintf("flows=%d mice=%d p99=%v mp99=%v mean=%v goodput=%d slots=%d inj=%d del=%d rel=%d tags=%v cdf=%v obslen=%d obs=%s",
		r.FCT.Count(), r.FCT.MiceCount(), r.FCT.P(99), r.FCT.MiceP(99), r.FCT.Mean(),
		r.Goodput.TotalBytes(), r.Slots, r.Injected, r.Delivered, r.Relayed,
		r.Tags, r.FCT.MiceCDF(16), obs.Len(), obs.String())
}

// TestShardDeterminismOblivious: the baseline must produce identical
// results — including observer callback order — at every worker count,
// for all three service disciplines.
func TestShardDeterminismOblivious(t *testing.T) {
	for _, disc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"vlb-lanes", func(*Config) {}},
		{"opportunistic", func(c *Config) { c.OpportunisticDirect = true }},
		{"direct-only", func(c *Config) { c.DirectOnly = true }},
	} {
		t.Run(disc.name, func(t *testing.T) {
			d := 120 * sim.Microsecond
			counts := []int{2, 3, 4, 8, 16}
			if testing.Short() {
				d, counts = 50*sim.Microsecond, []int{2, 4, 16}
			}
			build := func(workers int) Config {
				tc, _ := topo.NewThinClos(16, 4, 4)
				cfg := Config{
					Topology:        tc,
					HostRate:        sim.Gbps(200),
					PriorityQueues:  true,
					Seed:            1,
					CheckInvariants: true,
					Workers:         workers,
				}
				disc.mod(&cfg)
				return cfg
			}
			want := obFingerprint(t, build(1), d, 0.8)
			for _, workers := range counts {
				if got := obFingerprint(t, build(workers), d, 0.8); got != want {
					t.Fatalf("workers=%d diverges from sequential\n got: %.400s\nwant: %.400s", workers, got, want)
				}
			}
		})
	}
}

// TestRunCycles: k cycles advance exactly k*slots timeslots.
func TestRunCycles(t *testing.T) {
	e, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(3)
	if got := e.Results().Slots; got != int64(3*e.slots) {
		t.Errorf("slots = %d, want %d", got, 3*e.slots)
	}
	if got, want := e.Now(), sim.Time(3*e.slots)*sim.Time(e.timing.Slot); got != want {
		t.Errorf("now = %v, want %v", got, want)
	}
}

// TestWorkersCappedAtToRs: worker counts beyond the ToR count clamp.
func TestWorkersCappedAtToRs(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 16 {
		t.Errorf("workers = %d, want 16", e.Workers())
	}
}
