package oblivious

import (
	"fmt"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/workload"
)

// TestOccupancyInvariant runs every service discipline with per-round
// invariant checking on (relay counter, byte conservation, and the
// occupancy-index/shadow exactness of fabric.Core.CheckOccupancy) across
// worker counts. Run in CI under -race at -cpu 1,2,4.
func TestOccupancyInvariant(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"sirius-lanes", func(c *Config) {}},
		{"opportunistic", func(c *Config) { c.OpportunisticDirect = true }},
		{"direct-only", func(c *Config) { c.DirectOnly = true }},
		{"no-priority", func(c *Config) { c.PriorityQueues = false }},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				cfg := testConfig(t)
				cfg.Workers = workers
				c.mut(&cfg)
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, cfg.HostRate, 7))
				e.Run(100 * sim.Microsecond)
				e.SetWorkload(nil)
				e.Drain(20000)
			})
		}
	}
}
