package oblivious

import (
	"fmt"
	"testing"

	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestOccupancyInvariant runs every service discipline with per-round
// invariant checking on (relay counter, byte conservation, and the
// occupancy-index/shadow exactness of fabric.Core.CheckOccupancy) across
// worker counts. Run in CI under -race at -cpu 1,2,4.
func TestOccupancyInvariant(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"sirius-lanes", func(c *Config) {}},
		{"opportunistic", func(c *Config) { c.OpportunisticDirect = true }},
		{"direct-only", func(c *Config) { c.DirectOnly = true }},
		{"no-priority", func(c *Config) { c.PriorityQueues = false }},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				cfg := testConfig(t)
				cfg.Workers = workers
				c.mut(&cfg)
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.9, cfg.HostRate, 7))
				e.Run(100 * sim.Microsecond)
				e.SetWorkload(nil)
				e.Drain(20000)
			})
		}
	}

	// Sparse permutation with the opportunistic discipline: idle sources
	// never materialize direct slabs and spray intermediates materialize
	// relay slabs only, so each per-round CheckOccupancy also asserts the
	// lazy-slab contract (unmaterialized classes report empty/zero).
	t.Run("sparse-lazy", func(t *testing.T) {
		cfg := testConfig(t)
		cfg.OpportunisticDirect = true
		perm, err := workload.NewPermutation(16, 4, 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.Run(100 * sim.Microsecond)
		e.SetWorkload(nil)
		if !e.Drain(20000) {
			t.Fatal("sparse permutation did not drain")
		}
		for i := 4; i < 16; i++ {
			if e.fab.Nodes[i].Direct.Materialized() {
				t.Fatalf("idle source %d materialized a direct slab", i)
			}
		}
	})

	// Page-granularity lazy contract: at 256 ToRs the slabs span two
	// pages, and a permutation confined to the first 16 destinations must
	// keep direct VOQ and relay pages outside the active range
	// unmaterialized on every node — spray pushes relay data into all
	// intermediates, but only for active destinations. Lanes are indexed
	// by intermediate, so they legitimately span the full width.
	t.Run("paged-sparse", func(t *testing.T) {
		top, err := topo.NewParallel(2*queue.PageSize, 8)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Topology:            top,
			HostRate:            sim.Gbps(200),
			PriorityQueues:      true,
			Seed:                1,
			CheckInvariants:     true,
			OpportunisticDirect: true,
		}
		perm, err := workload.NewPermutation(2*queue.PageSize, 16, 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(perm)
		e.Run(200 * sim.Microsecond)
		e.SetWorkload(nil)
		if !e.Drain(60000) {
			t.Fatal("paged sparse permutation did not drain")
		}
		lastDst := 2*queue.PageSize - 1
		for i, nd := range e.fab.Nodes {
			if nd.Direct.PageMaterialized(lastDst) {
				t.Fatalf("node %d materialized a direct page outside the active range", i)
			}
			if nd.Relay.PageMaterialized(lastDst) {
				t.Fatalf("node %d materialized a relay page outside the active range", i)
			}
		}
	})
}
