package oblivious

import (
	"runtime"
	"testing"
	"time"
)

// measureSparseSlot returns a noise-resistant per-slot cost for an n-ToR
// engine with 256 active ToRs under the opportunistic discipline:
// best-of-reps over batched slots, so a GC pause or scheduler hiccup
// cannot inflate the figure.
func measureSparseSlot(tb testing.TB, n int) time.Duration {
	e := sparseEngine(tb, n, 256)
	for i := 0; i < 2*e.slots; i++ {
		e.runSlot() // settle the steady-state occupancy
	}
	runtime.GC()
	const slots = 64
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		for i := 0; i < slots; i++ {
			e.runSlot()
		}
		if d := time.Since(start) / slots; d < best {
			best = d
		}
	}
	return best
}

// TestNoWidthProportionalSlotWork pins the O(active)-per-slot property on
// the oblivious slot plane — the counterpart of the negotiator plane's
// TestNoWidthProportionalWork. With the active set held at 256 ToRs,
// widening the fabric 8x (8192 -> 65536) must not widen the per-slot cost:
// the serve phase walks the direct/lane occupancy sets (O(active)), and
// the drain phase walks backlogged relay DESTINATIONS through the
// topology inverse (O(destinations · S)) instead of the relay-holder set
// that VLB spraying inflates to every intermediate. The measured ratio
// sits around 1.1-1.2x; the dense holder walk this replaces measured
// 4.3x. The 2x bound splits those regimes with margin for machine noise.
func TestNoWidthProportionalSlotWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ratio needs full-size engines")
	}
	small := measureSparseSlot(t, 8192)
	wide := measureSparseSlot(t, 65536)
	ratio := float64(wide) / float64(small)
	t.Logf("sparse slot: 8192 ToRs %v, 65536 ToRs %v, ratio %.2f", small, wide, ratio)
	if ratio > 2 {
		t.Fatalf("8x width costs %.2fx per slot (%v -> %v): a width-proportional per-slot term is back", ratio, small, wide)
	}
}
