package oblivious

import (
	"fmt"
	"testing"

	"negotiator/internal/failure"
	"negotiator/internal/sim"
	"negotiator/internal/workload"
)

// failurePlan cuts 20% of links for the middle of a short run: long
// enough past recovery that every loss detects, requeues and drains.
func failurePlan(detect sim.Duration, seed int64) *failure.Plan {
	return failure.Random(16, 4, 0.2,
		sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond), detect, seed)
}

// TestFailureConservation runs every service discipline under mid-run
// link failures with per-round invariant checking on (CheckRound calls
// fabric.Core.CheckConservation when failures are configured: destroyed
// bytes reconcile against ledger, outstanding records and the cumulative
// requeue counter after every slot). After recovery and drain, every
// injected byte must be delivered — losses requeue, nothing leaks. Run in
// CI under -race at -cpu 1,2,4.
func TestFailureConservation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"sirius-lanes", func(c *Config) {}},
		{"opportunistic", func(c *Config) { c.OpportunisticDirect = true }},
		{"direct-only", func(c *Config) { c.DirectOnly = true }},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				cfg := testConfig(t)
				cfg.Workers = workers
				cfg.Failures = failurePlan(2*sim.Microsecond, 9)
				c.mut(&cfg)
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.7, cfg.HostRate, 7))
				e.Run(60 * sim.Microsecond)
				e.SetWorkload(nil)
				if !e.Drain(200_000) {
					t.Fatal("fabric did not drain after recovery")
				}
				r := e.Results()
				if r.LostBytes <= 0 {
					t.Error("no bytes destroyed despite 20% links down mid-run")
				}
				if e.fab.Ledger.Lost != 0 {
					t.Errorf("%d bytes still lost after recovery + drain", e.fab.Ledger.Lost)
				}
				if r.Delivered != r.Injected {
					t.Errorf("delivered %d of %d injected", r.Delivered, r.Injected)
				}
				if e.fab.Requeued() != r.LostBytes {
					t.Errorf("requeued %d != destroyed %d after full drain", e.fab.Requeued(), r.LostBytes)
				}
			})
		}
	}
}

// TestFailureDeterminism: failure injection, loss recording and requeue
// must be worker-count invariant — the full results fingerprint at
// workers 2..16 matches the sequential run byte for byte.
func TestFailureDeterminism(t *testing.T) {
	fingerprint := func(workers int) string {
		cfg := testConfig(t)
		cfg.CheckInvariants = false
		cfg.Workers = workers
		cfg.Failures = failurePlan(2*sim.Microsecond, 9)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.8, cfg.HostRate, 7))
		e.Run(60 * sim.Microsecond)
		r := e.Results()
		return fmt.Sprintf("inj=%d del=%d lost=%d relayed=%d fct99=%v mice=%v cdf=%v",
			r.Injected, r.Delivered, r.LostBytes, r.Relayed, r.FCT.P(99), r.FCT.MiceMean(), r.FCT.MiceCDF(16))
	}
	want := fingerprint(1)
	for _, workers := range []int{2, 4, 8, 16} {
		if got := fingerprint(workers); got != want {
			t.Fatalf("workers=%d diverges under failures\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestZeroDetectDelayNoLoss: with instant detection the known state never
// lags the actual state, so the spray/lane/relay gates exclude every
// failed link before any byte is destroyed.
func TestZeroDetectDelayNoLoss(t *testing.T) {
	cfg := testConfig(t)
	cfg.Failures = failurePlan(0, 9)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.7, cfg.HostRate, 7))
	e.Run(60 * sim.Microsecond)
	e.SetWorkload(nil)
	if !e.Drain(200_000) {
		t.Fatal("fabric did not drain")
	}
	r := e.Results()
	if r.LostBytes != 0 {
		t.Errorf("instant detection still destroyed %d bytes", r.LostBytes)
	}
	if r.Delivered != r.Injected {
		t.Errorf("delivered %d of %d", r.Delivered, r.Injected)
	}
}

// TestToRDownScenario: powering one ToR down severs both its directions;
// the dark interval destroys bytes addressed to (and sprayed through) it,
// and after restart everything still drains to completion.
func TestToRDownScenario(t *testing.T) {
	cfg := testConfig(t)
	cfg.Failures = failure.ToRDown(16, 4, 5,
		sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond), 2*sim.Microsecond)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 0.7, cfg.HostRate, 7))
	e.Run(60 * sim.Microsecond)
	e.SetWorkload(nil)
	if !e.Drain(200_000) {
		t.Fatal("fabric did not drain after the ToR restarted")
	}
	r := e.Results()
	if r.LostBytes <= 0 {
		t.Error("whole-ToR outage destroyed nothing")
	}
	if r.Delivered != r.Injected {
		t.Errorf("delivered %d of %d after restart", r.Delivered, r.Injected)
	}
}
