// Package oblivious implements the state-of-the-art traffic-oblivious
// reconfigurable DCN baseline the paper compares against (§2, §4.1),
// following Sirius: the fabric reconfigures every timeslot through a
// predefined round-robin schedule, providing all-to-all connectivity
// regardless of traffic, and adapts traffic to the network with Valiant
// load balancing — data is sprayed to an intermediate ToR and relayed to
// its destination, taking two hops.
//
// Fresh data is split across per-intermediate spray lanes at arrival
// (uniform VLB, pre-assigned as Sirius sprays cells); each slot carries one
// cell: relay (second-hop) traffic for the connected peer first — it must
// not accumulate — else the head cell of the peer's spray lane, which
// stalls when its destination's relay VOQ at the peer is full (the bounded
// buffers + backpressure standing in for Sirius's congestion control).
// That stall-driven slot waste, on top of the doubled traffic volume, is
// what caps this design's goodput under heavy load (paper §2). Mice-flow
// priority queues apply at sources only (the paper notes PIAS does not
// apply to data at intermediate nodes). The RotorLB-style opportunistic
// discipline (relay > direct > slot-time spray) and a relay-free
// round-robin are kept as ablations.
//
// The engine is the round-robin/VLB control plane over the shared fabric
// core (internal/fabric): the core owns queues, workload, ledger, metrics
// and the slot-synchronous run loop; this package owns only the
// per-timeslot service decisions (one decision per port per timeslot).
package oblivious

import (
	"fmt"
	"slices"

	"negotiator/internal/fabric"
	"negotiator/internal/failure"
	"negotiator/internal/flows"
	"negotiator/internal/metrics"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Timing describes the baseline's slot structure: every slot pays a
// reconfiguration guardband (the fabric retunes each slot).
type Timing struct {
	// Guardband is the per-slot reconfiguration delay (10 ns).
	Guardband sim.Duration
	// Slot is the total slot duration including the guardband (60 ns, the
	// same optical hardware budget as NegotiaToR's predefined slot).
	Slot sim.Duration
	// HeaderBytes is the per-cell header (10 B).
	HeaderBytes int64
	// PropDelay is the one-way propagation delay (2 µs).
	PropDelay sim.Duration
	// LinkRate is the per-port line rate (100 Gbps with 2x speedup).
	LinkRate sim.Rate
}

// DefaultTiming returns the evaluation's baseline slot settings.
func DefaultTiming() Timing {
	return Timing{
		Guardband:   10,
		Slot:        60,
		HeaderBytes: 10,
		PropDelay:   2 * sim.Microsecond,
		LinkRate:    sim.Gbps(100),
	}
}

// CellBytes is the payload one slot carries on one port.
func (t Timing) CellBytes() int64 {
	n := t.LinkRate.BytesIn(t.Slot-t.Guardband) - t.HeaderBytes
	if n < 0 {
		return 0
	}
	return n
}

// Validate checks consistency.
func (t Timing) Validate() error {
	if t.Slot <= t.Guardband || t.CellBytes() <= 0 {
		return fmt.Errorf("oblivious: slot %v too short (guardband %v)", t.Slot, t.Guardband)
	}
	if t.PropDelay < 0 {
		return fmt.Errorf("oblivious: negative propagation delay")
	}
	return nil
}

// Config assembles the baseline fabric.
type Config struct {
	// Topology supplies the round-robin schedule. The baseline's
	// relay-enabled round-robin performs identically on both flat
	// topologies (paper §4.1), so either works.
	Topology topo.Topology
	// Timing is the slot structure; zero means DefaultTiming.
	Timing Timing
	// HostRate is the per-ToR host aggregate (400 Gbps), for goodput
	// normalisation.
	HostRate sim.Rate
	// PriorityQueues enables source-side PIAS prioritisation.
	PriorityQueues bool
	// RelayCap bounds each (intermediate, destination) relay VOQ. Zero
	// means 64 cells (~39 KB): deep enough that elephants spread across
	// the fabric block mice at intermediates — the paper's criticism of
	// relay-based designs — while shallow enough that full VOQs stall
	// spraying sources, the congestion that caps the oblivious design's
	// goodput under heavy load (§2).
	RelayCap int64
	// SprayChunkCells is the lane-assignment granularity in cells (default
	// 4). Sirius sprays per cell; chunking trades a little spray
	// uniformity for segment-bookkeeping memory.
	SprayChunkCells int
	// DirectOnly disables VLB relaying (degenerating into pure round-robin
	// direct transmission); used by ablation tests.
	DirectOnly bool
	// OpportunisticDirect switches the service discipline from Sirius's
	// uniform VLB spray (default: every byte takes two hops unless its
	// random intermediate happens to be its destination) to the
	// RotorLB-style relay > direct > indirect order. The paper's baseline
	// follows Sirius; the opportunistic variant is kept for ablations.
	OpportunisticDirect bool
	// Seed drives the spray randomness.
	Seed int64
	// Failures optionally injects link failures (owned and advanced by the
	// fabric core): known-down links are excluded from service — relay,
	// lane and spray alike, since every transmission in slot (i, s) rides
	// the same physical fibre pair — while links that are down but not yet
	// detected silently destroy the bytes sent across them, to be requeued
	// at the source once the detection delay elapses. Lane-discipline
	// losses requeue into the lane they came from (the source never serves
	// its direct set), relay second hops back into the relay FIFO.
	Failures *failure.Plan
	// CheckInvariants enables byte-conservation assertions.
	CheckInvariants bool
	// DisableEventSkip forces the run loop to tick every timeslot even
	// when the fabric is provably idle. Results are byte-identical either
	// way; the knob exists for A/B benchmarks and equivalence tests.
	DisableEventSkip bool
	// OnDeliver observes final-destination deliveries.
	OnDeliver func(dst int, at sim.Time, n int64)
	// OnTransit observes first-hop (intermediate) arrivals, the "light
	// grey dots" of the paper's Figure 18.
	OnTransit func(intermediate int, at sim.Time, n int64)
	// Workers is the intra-run shard parallelism: the ToRs split into
	// Workers contiguous shards, and each timeslot executes as
	// barrier-synchronized phases — shard-local relay drains, then
	// shard-local lane/spray service against the drained VOQ occupancy
	// snapshot, then a serial merge that applies relay pushes and delivery
	// accounting in shard (= ToR) order. Results are identical at any
	// value (0 or 1 = sequential); the count is capped at the ToR count.
	//
	// Sharding fixes the backpressure semantics at any worker count: a
	// source's VOQ-headroom check reads the slot-start occupancy after all
	// second-hop drains but before this slot's pushes — same-slot pushes
	// from other sources are invisible, mirroring the physical reality
	// that occupancy feedback is at least a propagation delay stale. A
	// VOQ may therefore briefly exceed RelayCap by up to one cell per
	// connected source per slot. Observer callbacks fire from the serial
	// merge in a fixed order (drain deliveries, transits, serve
	// deliveries, each in ToR order), identical at any worker count.
	Workers int
}

// Results summarises a run.
type Results struct {
	FCT       *metrics.FCTStats
	Goodput   *metrics.Goodput
	Tags      map[int]*fabric.TagStat
	Duration  sim.Duration
	Slots     int64 // timeslots executed
	Injected  int64
	Delivered int64
	Relayed   int64 // bytes that took a first hop (transit volume)
	LostBytes int64 // bytes destroyed by failures (before requeue), cumulative
}

// Engine is the traffic-oblivious control plane over the shared fabric
// core. Per-ToR data-plane state maps onto fabric.Node: Direct holds
// fresh data per final destination (the slot-time-spray disciplines),
// Lanes holds fresh data per pre-assigned intermediate (the default
// Sirius discipline), Relay holds the bounded second-hop VOQs.
type Engine struct {
	cfg    Config
	fab    *fabric.Core
	top    topo.Topology
	timing Timing
	n, s   int
	slots  int // round-robin cycle length in slots
	cell   int64
	lanes  bool

	// Core-owned failure snapshots (stable pointers, advanced by the core
	// before each Round; nil without a plan). Known state gates service,
	// actual state destroys bits.
	actual, known *failure.State

	relayed int64

	// Sharded slot execution (see Config.Workers): per-slot context set
	// serially, phase steps run over the shards via the core's gang, and
	// the shards' deferred effect records are applied in shard order by
	// the serial merge.
	workers    int
	shards     []*obShard
	stepDrain  func(k int)
	stepServe  func(k int)
	slotT      int      // round-robin slot within the cycle
	slotRot    int      // rule rotation (full cycles elapsed)
	slotStart  sim.Time // current slot's start
	slotArrive sim.Time // current slot's delivery time (slot end + prop)
}

// obShard owns one contiguous ToR range of the slot pipeline. Phases A
// (relay drains) and B (lane/spray service) only mutate shard-local ToR
// state — queue takes at this shard's sources — and defer every
// cross-shard effect (relay pushes into intermediates, delivery accounting
// on flows owned elsewhere) into per-shard record lists the serial merge
// applies in shard order, which equals ToR-ascending order because shards
// are contiguous ascending ranges.
type obShard struct {
	e      *Engine
	k      int
	lo, hi int
	fs     *fabric.Shard

	// usedStamp marks connections phase A consumed ((tor-lo)*s + port,
	// stamped with slotNo+1 so no per-slot clearing is needed).
	usedStamp []int64

	// Deferred effect records. Drain (phase A) and serve (phase B)
	// deliveries are kept apart so the merge can apply all drains before
	// all serves — the same order a sequential slot produces — regardless
	// of where shard boundaries fall. Transits aggregate one record per
	// pushing connection (the granularity OnTransit always had), while
	// pushes keep one record per flow segment for the FIFO contents.
	drainDelivs []obDeliv
	serveDelivs []obDeliv
	pushes      []obPush
	transits    []obTransit

	// drainCands is drainSparse's reusable candidate scratch: packed
	// (source<<40 | port<<20 | dst) triples, sorted to restore the dense
	// walk's service order. Kept on the shard so steady-state slots stay
	// allocation-free.
	drainCands []uint64

	// Emitter context + prebuilt closures (no per-take closure allocs).
	// txLost marks the current connection's actual link state down
	// (undetected): the emitters then book the bytes as destroyed instead
	// of delivered/pushed — lossClass picking the requeue set the
	// discipline serves (lanes vs direct), txVia the lane index.
	txDst     int
	txInter   int
	txNode    *fabric.Node
	txLost    bool
	txVia     int
	lossClass fabric.RequeueClass
	drainEmit func(*flows.Flow, int64) // relay second hop: no NoteSent
	sentEmit  func(*flows.Flow, int64) // direct delivery: NoteSent + record
	pushEmit  func(*flows.Flow, int64) // first hop: NoteSent + push record
}

// obDeliv defers one delivery's accounting to the serial merge.
type obDeliv struct {
	f   *flows.Flow
	dst int
	n   int64
	at  sim.Time
}

// obPush defers one first-hop relay push to the serial merge.
type obPush struct {
	f          *flows.Flow
	inter, dst int
	n          int64
	at         sim.Time
}

// obTransit defers one connection's OnTransit observation (bytes summed
// over the connection's segments) to the serial merge.
type obTransit struct {
	inter int
	n     int64
	at    sim.Time
}

// New builds the baseline engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("oblivious: nil topology")
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		top:    cfg.Topology,
		timing: cfg.Timing,
		n:      cfg.Topology.N(),
		s:      cfg.Topology.Ports(),
		slots:  cfg.Topology.PredefinedSlots(),
		cell:   cfg.Timing.CellBytes(),
	}
	if cfg.RelayCap == 0 {
		e.cfg.RelayCap = 64 * e.cell
	}
	if cfg.SprayChunkCells <= 0 {
		e.cfg.SprayChunkCells = 4
	}
	e.lanes = !e.cfg.OpportunisticDirect && !e.cfg.DirectOnly
	fab, err := fabric.New(fabric.Config{
		Topology:         cfg.Topology,
		HostRate:         cfg.HostRate,
		Workers:          cfg.Workers,
		Seed:             cfg.Seed,
		PriorityQueues:   cfg.PriorityQueues,
		Lanes:            e.lanes,
		Relay:            true,
		OnDeliver:        cfg.OnDeliver,
		Failures:         cfg.Failures,
		DisableEventSkip: cfg.DisableEventSkip,
	})
	if err != nil {
		return nil, err
	}
	e.fab = fab
	fab.Bind(e, e.admit)
	e.actual = fab.ActualFailures()
	e.known = fab.KnownFailures()
	e.initShards()
	return e, nil
}

// admit is the core's arrival-admission hook. Under the default Sirius
// discipline a flow is sprayed across intermediates in fixed-size chunks,
// each assigned a uniformly random intermediate at arrival as Sirius
// sprays cells — randomness matters: deterministic assignment correlates
// across sources and melts hot intermediates. The slot-time-spray
// ablations enqueue per final destination instead.
func (e *Engine) admit(f *flows.Flow, at sim.Time) {
	nd := e.fab.Nodes[f.Src]
	if e.lanes {
		chunk := int64(e.cfg.SprayChunkCells) * e.cell
		total := f.Total()
		for off := int64(0); off < total; off += chunk {
			n := total - off
			if n > chunk {
				n = chunk
			}
			k := e.fab.RNG.Intn(e.n - 1)
			if k >= f.Src {
				k++
			}
			nd.PushLaneBytes(k, f, n, off, at)
		}
		return
	}
	nd.PushDirect(f.Dst, f, at)
}

// initShards builds the shard contexts and their prebuilt emitters.
func (e *Engine) initShards() {
	e.workers = e.fab.Workers
	e.shards = make([]*obShard, e.workers)
	for k := 0; k < e.workers; k++ {
		fs := e.fab.Shards[k]
		sh := &obShard{e: e, k: k, lo: fs.Lo, hi: fs.Hi, fs: fs, usedStamp: make([]int64, (fs.Hi-fs.Lo)*e.s), txVia: -1}
		// Losses requeue into the queue set the discipline actually
		// serves: lanes under Sirius spray, direct under the ablations.
		sh.lossClass = fabric.RequeueDirect
		if e.lanes {
			sh.lossClass = fabric.RequeueLane
		}
		sh.drainEmit = func(f *flows.Flow, n int64) {
			if sh.txLost {
				// Second hop destroyed: back into the relay FIFO on
				// detection, no sent-cursor rewind (see RequeueRelay).
				sh.fs.RecordLossClass(sh.txNode, f, sh.txDst, 0, n, e.slotArrive, fabric.RequeueRelay, -1)
				return
			}
			sh.drainDelivs = append(sh.drainDelivs, obDeliv{f: f, dst: sh.txDst, n: n, at: e.slotArrive})
		}
		sh.sentEmit = func(f *flows.Flow, n int64) {
			off := f.Sent()
			f.NoteSent(n)
			if sh.txLost {
				sh.fs.RecordLossClass(sh.txNode, f, sh.txDst, off, n, e.slotArrive, sh.lossClass, sh.txVia)
				return
			}
			sh.serveDelivs = append(sh.serveDelivs, obDeliv{f: f, dst: sh.txDst, n: n, at: e.slotArrive})
		}
		sh.pushEmit = func(f *flows.Flow, n int64) {
			off := f.Sent()
			f.NoteSent(n)
			if sh.txLost {
				sh.fs.RecordLossClass(sh.txNode, f, sh.txDst, off, n, e.slotArrive, sh.lossClass, sh.txVia)
				return
			}
			sh.pushes = append(sh.pushes, obPush{f: f, inter: sh.txInter, dst: sh.txDst, n: n, at: e.slotArrive})
		}
		e.shards[k] = sh
	}
	e.stepDrain = func(k int) { e.shards[k].drainStep() }
	e.stepServe = func(k int) { e.shards[k].serveStep() }
}

// inject pumps pending arrivals (test hook; the run loop pumps per slot).
func (e *Engine) inject(t sim.Time) { e.fab.Inject(t) }

// Workers reports the effective shard parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetWorkload attaches the arrival stream.
func (e *Engine) SetWorkload(g workload.Generator) { e.fab.SetWorkload(g) }

// Name identifies the control plane.
func (e *Engine) Name() string { return "oblivious" }

// RoundLen implements fabric.ControlPlane: one round is one timeslot.
func (e *Engine) RoundLen() sim.Duration { return e.timing.Slot }

// CycleLen returns the all-to-all round-robin cycle duration.
func (e *Engine) CycleLen() sim.Duration {
	return sim.Duration(e.slots) * e.timing.Slot
}

// SlotsPerCycle returns the number of timeslots in one round-robin cycle.
func (e *Engine) SlotsPerCycle() int { return e.slots }

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.fab.Now() }

// Run advances until at least d has elapsed.
func (e *Engine) Run(d sim.Duration) { e.fab.Run(d) }

// runSlot advances one timeslot (test and benchmark hook).
func (e *Engine) runSlot() { e.fab.RunRound() }

// RunCycles advances exactly k full round-robin cycles (the baseline's
// epoch analogue: one all-to-all sweep of the predefined schedule).
func (e *Engine) RunCycles(k int) { e.fab.RunRounds(k * e.slots) }

// Drain runs until all injected bytes are delivered or maxSlots elapse.
func (e *Engine) Drain(maxSlots int) bool { return e.fab.Drain(maxSlots) }

// Results snapshots the measurements.
func (e *Engine) Results() Results {
	return Results{
		FCT:       e.fab.MergedFCT(),
		Goodput:   e.fab.MergedGoodput(),
		Tags:      e.fab.Tags,
		Duration:  sim.Duration(e.fab.Now()),
		Slots:     e.fab.Rounds(),
		Injected:  e.fab.Ledger.Injected,
		Delivered: e.fab.Ledger.Delivered,
		Relayed:   e.relayed,
		LostBytes: e.fab.Lost,
	}
}

// Round implements fabric.ControlPlane: one timeslot through the
// barrier-synchronized shard phases:
//
//	serial   arrival injection, slot context
//	phase A  second-hop relay drains — each shard drains its own ToRs'
//	         ready relay VOQs toward this slot's peers, marking the
//	         connections it consumed
//	phase B  lane/spray service on the remaining connections, with
//	         VOQ-headroom checks against the post-drain occupancy
//	         snapshot; takes mutate only shard-local queues, and all
//	         cross-shard effects (relay pushes, delivery accounting on
//	         flows owned elsewhere) are deferred as records
//	serial   deterministic merge — pushes and deliveries applied in
//	         shard (= ToR-ascending) order, so FIFO contents, flow
//	         completions and observer callbacks are identical at any
//	         worker count
func (e *Engine) Round() {
	slotStart := e.fab.Now()
	e.fab.Inject(slotStart)
	slotNo := e.fab.Rounds()
	e.slotT = int(slotNo) % e.slots
	e.slotRot = int(slotNo) / e.slots // rotate the rule every full cycle
	e.slotStart = slotStart
	e.slotArrive = slotStart.Add(e.timing.Slot).Add(e.timing.PropDelay)

	e.fab.ParDo(e.stepDrain)
	e.fab.ParDo(e.stepServe)

	// Separate sweeps per record class (drain deliveries, pushes, serve
	// deliveries), each in shard order: the apply order — and with it the
	// FIFO contents, flow completions and observer callbacks — must not
	// depend on where shard boundaries fall. A sequential slot produces
	// exactly this order: all drains in ToR order, then all serves.
	for _, sh := range e.shards {
		for _, d := range sh.drainDelivs {
			e.fab.Deliver(d.f, d.dst, d.n, d.at)
		}
		sh.drainDelivs = sh.drainDelivs[:0]
	}
	for _, sh := range e.shards {
		for _, p := range sh.pushes {
			e.fab.Nodes[p.inter].PushRelay(p.dst, queue.Segment{Flow: p.f, Bytes: p.n, Enqueued: p.at})
			e.relayed += p.n
		}
		sh.pushes = sh.pushes[:0]
		for _, tr := range sh.transits {
			e.cfg.OnTransit(tr.inter, tr.at, tr.n)
		}
		sh.transits = sh.transits[:0]
	}
	for _, sh := range e.shards {
		for _, d := range sh.serveDelivs {
			e.fab.Deliver(d.f, d.dst, d.n, d.at)
		}
		sh.serveDelivs = sh.serveDelivs[:0]
	}
}

// IdleHorizon implements fabric.IdlePlane: the round-robin schedule keeps
// no cross-slot control state outside the node queues — the slot index and
// rotation derive from the round counter, the spray RNG draws only at
// admission, and an empty fabric's slot touches nothing — so with no byte
// queued anywhere (the core's precondition) every future slot is a no-op
// until new bytes arrive.
func (e *Engine) IdleHorizon() sim.Time { return fabric.HorizonInfinite }

// CheckRound implements fabric.RoundChecker when invariant checking is on.
func (e *Engine) CheckRound() {
	if !e.cfg.CheckInvariants {
		return
	}
	for _, nd := range e.fab.Nodes {
		nd.CheckRelayCounter()
	}
	if e.cfg.Failures != nil {
		e.fab.CheckConservation() // ledger check plus loss-record identities
	} else if err := e.fab.Ledger.Check(e.fab.QueuedInNodes()); err != nil {
		panic(err)
	}
	e.fab.CheckOccupancy()
}

// drainStep is phase A for one shard: second-hop relay traffic destined to
// each connected peer, for this shard's ToRs. Relay traffic must not
// accumulate, so a connection carrying it is consumed for the slot.
func (sh *obShard) drainStep() {
	e := sh.e
	slotNo := e.fab.Rounds()
	// The shard's relay occupancy set walks straight to the nodes holding
	// relay backlog, so the drain phase is O(relay-active nodes · S) with
	// no dense scan at all; draining a node empty clears its own bit,
	// which is safe mid-iteration (Next only looks ahead).
	//
	// VLB spraying makes nearly every node a relay HOLDER even when only a
	// handful of flows are live — 256 flows sprayed across 65,536
	// intermediates leave backlog everywhere — so the holder walk is still
	// O(width) in exactly the sparse regime that must not pay it. The
	// number of relay DESTINATIONS tracks live flows, not width; when it is
	// the smaller side, invert the walk over destinations instead.
	occ := &sh.fs.ActiveRelay
	if dsts, nd := sh.fs.RelayDsts(); nd > 0 && nd < occ.Count() {
		sh.drainSparse(dsts, slotNo)
		return
	}
	for bit := occ.Next(-1); bit >= 0; bit = occ.Next(bit) {
		i := sh.lo + bit
		src := e.fab.Nodes[i]
		for s := 0; s < e.s; s++ {
			j := e.top.PredefinedPeer(i, s, e.slotT, e.slotRot)
			if j < 0 {
				continue
			}
			// A link the fabric knows is down is excluded from service
			// (the slot is not scheduled, so serve keeps it gated too); a
			// link that is down but undetected transmits into the void.
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, s) {
				continue
			}
			if !src.RelayHeadReady(j, e.slotStart) {
				continue
			}
			sh.txDst = j
			sh.txNode = src
			sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, s)
			src.DrainRelay(j, e.cell, e.slotStart, sh.drainEmit)
			sh.usedStamp[(i-sh.lo)*e.s+s] = slotNo + 1
		}
	}
}

// drainSparse is drainStep's destination-inverted walk. Within one slot the
// predefined schedule is a permutation per port, so for every backlogged
// destination j and port s there is at most one source i with
// PredefinedPeer(i, s) == j — PredefinedSource names it directly. Collecting
// this shard's (i, s, j) candidates and sorting the packed triples restores
// the dense walk's (i ascending, s ascending) service order, so the drains,
// the deferred records and the usedStamp marks are byte-identical to the
// dense path; a candidate whose source holds no ready backlog for j fails
// the same RelayHeadReady gate that skips it there. Candidates are fixed
// before any drain runs, so destination bits clearing as VOQs empty cannot
// perturb the walk. Cost: O(relay-destinations · S) per shard plus the sort,
// independent of fabric width.
func (sh *obShard) drainSparse(dsts *fabric.OccSet, slotNo int64) {
	e := sh.e
	cands := sh.drainCands[:0]
	for j := dsts.Next(-1); j >= 0; j = dsts.Next(j) {
		for s := 0; s < e.s; s++ {
			i := e.top.PredefinedSource(j, s, e.slotT, e.slotRot)
			if i < sh.lo || i >= sh.hi {
				continue
			}
			cands = append(cands, uint64(i)<<40|uint64(s)<<20|uint64(j))
		}
	}
	slices.Sort(cands)
	sh.drainCands = cands
	for _, c := range cands {
		i := int(c >> 40)
		s := int(c>>20) & (1<<20 - 1)
		j := int(c & (1<<20 - 1))
		src := e.fab.Nodes[i]
		if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, s) {
			continue
		}
		if !src.RelayHeadReady(j, e.slotStart) {
			continue
		}
		sh.txDst = j
		sh.txNode = src
		sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, s)
		src.DrainRelay(j, e.cell, e.slotStart, sh.drainEmit)
		sh.usedStamp[(i-sh.lo)*e.s+s] = slotNo + 1
	}
}

// serveStep is phase B for one shard: fresh-data service on the
// connections phase A left free.
func (sh *obShard) serveStep() {
	e := sh.e
	slotNo := e.fab.Rounds()
	// The occupancy set of the class this discipline serves walks straight
	// to the nodes holding fresh data — the O(active)-nodes counterpart of
	// the drain-phase walk. Connections phase A consumed need no masking
	// here: an idle node set no usedStamp entries. Every visited node has
	// bytes in its class, so the lanes dispatch below needs no nil check.
	occ := &sh.fs.ActiveDirect
	if e.lanes {
		occ = &sh.fs.ActiveLanes
	}
	for bit := occ.Next(-1); bit >= 0; bit = occ.Next(bit) {
		i := sh.lo + bit
		src := e.fab.Nodes[i]
		for s := 0; s < e.s; s++ {
			if sh.usedStamp[(i-sh.lo)*e.s+s] == slotNo+1 {
				continue
			}
			j := e.top.PredefinedPeer(i, s, e.slotT, e.slotRot)
			if j < 0 {
				continue
			}
			// Every transmission of slot (i, s) rides the same fibre pair,
			// so the known-failure gate and the actual-loss flag apply to
			// the connection as a whole (see drainStep).
			if e.known != nil && e.known.Count > 0 && !e.known.PathOK(i, j, s) {
				continue
			}
			sh.txNode = src
			sh.txLost = e.actual != nil && e.actual.Count > 0 && !e.actual.PathOK(i, j, s)
			if src.Lanes.Materialized() {
				sh.serveLanes(src, i, j)
			} else {
				sh.serve(src, i, j)
			}
		}
	}
}

// serveLanes fills one slot under the default Sirius discipline: the head
// cell of the pre-assigned spray lane for the connected peer j. Fresh data
// was split across lanes at arrival, so a slot can only carry lane j's
// data; if the head cell's destination VOQ at j is full — judged against
// the post-drain slot-start occupancy, see Config.Workers — the slot is
// wasted: the backpressure that, together with the doubled traffic volume,
// caps the oblivious design's goodput under heavy load (paper §2).
func (sh *obShard) serveLanes(src *fabric.Node, i, j int) {
	e := sh.e
	d := src.LaneHeadDst(j)
	if d < 0 {
		return // idle slot
	}
	if d == j {
		// The pre-assigned intermediate is the destination: one hop.
		sh.txDst = j
		sh.txVia = j
		src.TakeLaneHeadCell(j, e.cell, sh.sentEmit)
		return
	}
	headroom := e.cfg.RelayCap - e.fab.Nodes[j].RelayQueuedBytes(d)
	if headroom <= 0 {
		return // VOQ full: the lane head stalls and the slot is wasted
	}
	max := e.cell
	if max > headroom {
		max = headroom
	}
	sh.txInter, sh.txDst = j, d
	sh.txVia = j
	_, n := src.TakeLaneHeadCell(j, max, sh.pushEmit)
	if !sh.txLost {
		sh.noteTransit(j, n) // destroyed cells never reach the intermediate
	}
}

// serve fills the slot for the slot-time-spray disciplines
// (OpportunisticDirect and DirectOnly ablations): one cell per slot chosen
// as [direct-to-j] > spray-from-any-queue, with the spray target decided
// at slot time rather than pre-assigned (relay service already ran in
// phase A).
func (sh *obShard) serve(src *fabric.Node, i, j int) {
	e := sh.e
	if e.cfg.OpportunisticDirect || e.cfg.DirectOnly {
		// Direct traffic to j (source-side priority queues apply).
		if src.DirectQueuedBytes(j) > 0 {
			sh.txDst = j
			src.TakeDirect(j, e.cell, sh.sentEmit)
			return
		}
		if e.cfg.DirectOnly {
			return
		}
	}
	// First hop: spray one fresh cell via j, bounded by j's relay headroom
	// (idealised backpressure standing in for Sirius's congestion
	// control). Data already destined to j delivers in one hop.
	//
	// The occupancy index replaces the dense SprayPtr walk: candidates are
	// visited in the same cyclic order starting at SprayPtr, and the
	// pointer lands one past the served destination — or stays put after a
	// fruitless full scan — exactly where the dense walk left it, so the
	// spray sequence is byte-identical at O(active) cost.
	inter := e.fab.Nodes[j]
	start := src.SprayPtr
	d := src.DirectOcc.Next(start - 1)
	wrapped := false
	for {
		if d < 0 {
			if wrapped {
				return
			}
			wrapped = true
			d = src.DirectOcc.Next(-1)
			if d < 0 {
				return
			}
		}
		if wrapped && d >= start {
			return
		}
		if d != i {
			if d == j {
				sh.txDst = j
				src.TakeDirect(d, e.cell, sh.sentEmit)
				src.SprayPtr = d + 1
				if src.SprayPtr >= e.n {
					src.SprayPtr = 0
				}
				return
			}
			if headroom := e.cfg.RelayCap - inter.RelayQueuedBytes(d); headroom > 0 {
				max := e.cell
				if max > headroom {
					max = headroom
				}
				sh.txInter, sh.txDst = j, d
				n := src.TakeDirect(d, max, sh.pushEmit)
				if !sh.txLost {
					sh.noteTransit(j, n)
				}
				src.SprayPtr = d + 1
				if src.SprayPtr >= e.n {
					src.SprayPtr = 0
				}
				return
			}
			// That VOQ is full; try another destination's data.
		}
		d = src.DirectOcc.Next(d)
	}
}

// noteTransit records one connection's transit observation when an
// observer is attached (one call per pushing connection, bytes summed —
// the granularity the sequential engine always delivered).
func (sh *obShard) noteTransit(inter int, n int64) {
	if n > 0 && sh.e.cfg.OnTransit != nil {
		sh.transits = append(sh.transits, obTransit{inter: inter, n: n, at: sh.e.slotArrive})
	}
}

// Compile-time interface checks.
var (
	_ fabric.ControlPlane = (*Engine)(nil)
	_ fabric.RoundChecker = (*Engine)(nil)
	_ fabric.IdlePlane    = (*Engine)(nil)
)
