// Package oblivious implements the state-of-the-art traffic-oblivious
// reconfigurable DCN baseline the paper compares against (§2, §4.1),
// following Sirius: the fabric reconfigures every timeslot through a
// predefined round-robin schedule, providing all-to-all connectivity
// regardless of traffic, and adapts traffic to the network with Valiant
// load balancing — data is sprayed to an intermediate ToR and relayed to
// its destination, taking two hops.
//
// Fresh data is split across per-intermediate spray lanes at arrival
// (uniform VLB, pre-assigned as Sirius sprays cells); each slot carries one
// cell: relay (second-hop) traffic for the connected peer first — it must
// not accumulate — else the head cell of the peer's spray lane, which
// stalls when its destination's relay VOQ at the peer is full (the bounded
// buffers + backpressure standing in for Sirius's congestion control).
// That stall-driven slot waste, on top of the doubled traffic volume, is
// what caps this design's goodput under heavy load (paper §2). Mice-flow
// priority queues apply at sources only (the paper notes PIAS does not
// apply to data at intermediate nodes). The RotorLB-style opportunistic
// discipline (relay > direct > slot-time spray) and a relay-free
// round-robin are kept as ablations.
//
// The engine is slot-synchronous (one decision per port per timeslot) and
// shares the queueing, workload, metrics and failure substrates with the
// NegotiaToR engine.
package oblivious

import (
	"fmt"

	"negotiator/internal/flows"
	"negotiator/internal/metrics"
	"negotiator/internal/queue"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Timing describes the baseline's slot structure: every slot pays a
// reconfiguration guardband (the fabric retunes each slot).
type Timing struct {
	// Guardband is the per-slot reconfiguration delay (10 ns).
	Guardband sim.Duration
	// Slot is the total slot duration including the guardband (60 ns, the
	// same optical hardware budget as NegotiaToR's predefined slot).
	Slot sim.Duration
	// HeaderBytes is the per-cell header (10 B).
	HeaderBytes int64
	// PropDelay is the one-way propagation delay (2 µs).
	PropDelay sim.Duration
	// LinkRate is the per-port line rate (100 Gbps with 2x speedup).
	LinkRate sim.Rate
}

// DefaultTiming returns the evaluation's baseline slot settings.
func DefaultTiming() Timing {
	return Timing{
		Guardband:   10,
		Slot:        60,
		HeaderBytes: 10,
		PropDelay:   2 * sim.Microsecond,
		LinkRate:    sim.Gbps(100),
	}
}

// CellBytes is the payload one slot carries on one port.
func (t Timing) CellBytes() int64 {
	n := t.LinkRate.BytesIn(t.Slot-t.Guardband) - t.HeaderBytes
	if n < 0 {
		return 0
	}
	return n
}

// Validate checks consistency.
func (t Timing) Validate() error {
	if t.Slot <= t.Guardband || t.CellBytes() <= 0 {
		return fmt.Errorf("oblivious: slot %v too short (guardband %v)", t.Slot, t.Guardband)
	}
	if t.PropDelay < 0 {
		return fmt.Errorf("oblivious: negative propagation delay")
	}
	return nil
}

// Config assembles the baseline fabric.
type Config struct {
	// Topology supplies the round-robin schedule. The baseline's
	// relay-enabled round-robin performs identically on both flat
	// topologies (paper §4.1), so either works.
	Topology topo.Topology
	// Timing is the slot structure; zero means DefaultTiming.
	Timing Timing
	// HostRate is the per-ToR host aggregate (400 Gbps), for goodput
	// normalisation.
	HostRate sim.Rate
	// PriorityQueues enables source-side PIAS prioritisation.
	PriorityQueues bool
	// RelayCap bounds each (intermediate, destination) relay VOQ. Zero
	// means 64 cells (~39 KB): deep enough that elephants spread across
	// the fabric block mice at intermediates — the paper's criticism of
	// relay-based designs — while shallow enough that full VOQs stall
	// spraying sources, the congestion that caps the oblivious design's
	// goodput under heavy load (§2).
	RelayCap int64
	// SprayChunkCells is the lane-assignment granularity in cells (default
	// 4). Sirius sprays per cell; chunking trades a little spray
	// uniformity for segment-bookkeeping memory.
	SprayChunkCells int
	// DirectOnly disables VLB relaying (degenerating into pure round-robin
	// direct transmission); used by ablation tests.
	DirectOnly bool
	// OpportunisticDirect switches the service discipline from Sirius's
	// uniform VLB spray (default: every byte takes two hops unless its
	// random intermediate happens to be its destination) to the
	// RotorLB-style relay > direct > indirect order. The paper's baseline
	// follows Sirius; the opportunistic variant is kept for ablations.
	OpportunisticDirect bool
	// Seed drives the spray randomness.
	Seed int64
	// CheckInvariants enables byte-conservation assertions.
	CheckInvariants bool
	// OnDeliver observes final-destination deliveries.
	OnDeliver func(dst int, at sim.Time, n int64)
	// OnTransit observes first-hop (intermediate) arrivals, the "light
	// grey dots" of the paper's Figure 18.
	OnTransit func(intermediate int, at sim.Time, n int64)
}

// TagStat mirrors negotiator.TagStat for tagged application events.
type TagStat struct {
	Start sim.Time
	End   sim.Time
	Flows int
	Done  int
}

// Results summarises a run.
type Results struct {
	FCT       *metrics.FCTStats
	Goodput   *metrics.Goodput
	Tags      map[int]*TagStat
	Duration  sim.Duration
	Injected  int64
	Delivered int64
	Relayed   int64 // bytes that took a first hop (transit volume)
}

type tor struct {
	// direct holds fresh data per final destination; used by the
	// OpportunisticDirect and DirectOnly disciplines, whose spray target
	// is decided at slot time.
	direct []*queue.DestQueue
	// lanes holds fresh data per pre-assigned intermediate (the default
	// Sirius discipline): flows are sprayed across lanes in fixed-size
	// chunks at arrival, and a slot to peer k can only carry lane k's
	// data. PIAS priorities apply within a lane.
	lanes []*queue.DestQueue
	// relay holds in-transit data per final destination (the second-hop
	// virtual output queues). Each VOQ is bounded; a full VOQ stalls the
	// spraying lane head — Sirius's congestion control.
	relay      []*queue.FIFO
	relayBytes int64
	sprayPtr   int // rotating lane/destination pointer
}

// Engine is the traffic-oblivious fabric simulator.
type Engine struct {
	cfg    Config
	top    topo.Topology
	timing Timing
	n, s   int
	slots  int // round-robin cycle length in slots
	cell   int64
	now    sim.Time
	slotNo int64

	tors []*tor

	work        workload.Generator
	pending     workload.Arrival
	havePending bool
	genDone     bool
	flowSeq     int64

	fct     metrics.FCTStats
	goodput *metrics.Goodput
	ledger  flows.Ledger
	tags    map[int]*TagStat
	tagOf   map[int64]int
	relayed int64
	rng     *sim.RNG
}

// New builds the baseline engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("oblivious: nil topology")
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = sim.Gbps(400)
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		top:    cfg.Topology,
		timing: cfg.Timing,
		n:      cfg.Topology.N(),
		s:      cfg.Topology.Ports(),
		slots:  cfg.Topology.PredefinedSlots(),
		cell:   cfg.Timing.CellBytes(),
		tags:   make(map[int]*TagStat),
		tagOf:  make(map[int64]int),
		rng:    sim.NewRNG(cfg.Seed),
	}
	if cfg.RelayCap == 0 {
		e.cfg.RelayCap = 64 * e.cell
	}
	if cfg.SprayChunkCells <= 0 {
		e.cfg.SprayChunkCells = 4
	}
	lanes := !e.cfg.OpportunisticDirect && !e.cfg.DirectOnly
	e.goodput = metrics.NewGoodput(e.n)
	e.tors = make([]*tor, e.n)
	for i := range e.tors {
		t := &tor{
			direct: make([]*queue.DestQueue, e.n),
			relay:  make([]*queue.FIFO, e.n),
		}
		if lanes {
			t.lanes = make([]*queue.DestQueue, e.n)
		}
		for j := range t.direct {
			t.direct[j] = queue.NewDestQueue(cfg.PriorityQueues)
			t.relay[j] = &queue.FIFO{}
			if lanes {
				t.lanes[j] = queue.NewDestQueue(cfg.PriorityQueues)
			}
		}
		e.tors[i] = t
	}
	return e, nil
}

// SetWorkload attaches the arrival stream.
func (e *Engine) SetWorkload(g workload.Generator) { e.work = g }

// CycleLen returns the all-to-all round-robin cycle duration.
func (e *Engine) CycleLen() sim.Duration {
	return sim.Duration(e.slots) * e.timing.Slot
}

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.now }

// Run advances until at least d has elapsed.
func (e *Engine) Run(d sim.Duration) {
	for e.now < sim.Time(d) {
		e.runSlot()
	}
}

// Drain runs until all injected bytes are delivered or maxSlots elapse.
func (e *Engine) Drain(maxSlots int) bool {
	for i := 0; i < maxSlots; i++ {
		if e.ledger.Queued() == 0 && e.genDone && !e.havePending {
			return true
		}
		e.runSlot()
	}
	return e.ledger.Queued() == 0
}

// Results snapshots the measurements.
func (e *Engine) Results() Results {
	return Results{
		FCT:       &e.fct,
		Goodput:   e.goodput,
		Tags:      e.tags,
		Duration:  sim.Duration(e.now),
		Injected:  e.ledger.Injected,
		Delivered: e.ledger.Delivered,
		Relayed:   e.relayed,
	}
}

func (e *Engine) runSlot() {
	slotStart := e.now
	e.inject(slotStart)
	t := int(e.slotNo) % e.slots
	rot := int(e.slotNo) / e.slots // rotate the rule every full cycle
	arrive := slotStart.Add(e.timing.Slot).Add(e.timing.PropDelay)
	for i, src := range e.tors {
		for s := 0; s < e.s; s++ {
			j := e.top.PredefinedPeer(i, s, t, rot)
			if j < 0 {
				continue
			}
			if src.lanes != nil {
				e.serveLanes(src, i, j, slotStart, arrive)
			} else {
				e.serve(src, i, j, slotStart, arrive)
			}
		}
	}
	if e.cfg.CheckInvariants {
		e.checkInvariants()
	}
	e.slotNo++
	e.now = slotStart.Add(e.timing.Slot)
}

// serveLanes fills one slot under the default Sirius discipline: relay
// (second-hop) traffic destined to the connected peer j first, then the
// head cell of the pre-assigned spray lane for j. Fresh data was split
// across lanes at arrival, so a slot can only carry lane j's data; if the
// head cell's destination VOQ at j is full, the slot is wasted — the
// backpressure that, together with the doubled traffic volume, caps the
// oblivious design's goodput under heavy load (paper §2).
func (e *Engine) serveLanes(src *tor, i, j int, slotStart, arrive sim.Time) {
	// Second hop: relay traffic destined to j that has physically arrived.
	if src.relay[j].HeadReady(slotStart) {
		n := src.relay[j].TakeReady(e.cell, slotStart, func(f *flows.Flow, n int64) {
			e.deliver(f, j, n, arrive)
		})
		src.relayBytes -= n
		return
	}
	lane := src.lanes[j]
	d := lane.HeadDst()
	if d < 0 {
		return // idle slot
	}
	if d == j {
		// The pre-assigned intermediate is the destination: one hop.
		lane.TakeHeadCell(e.cell, func(f *flows.Flow, n int64) {
			f.NoteSent(n)
			e.deliver(f, j, n, arrive)
		})
		return
	}
	inter := e.tors[j]
	headroom := e.cfg.RelayCap - inter.relay[d].Bytes()
	if headroom <= 0 {
		return // VOQ full: the lane head stalls and the slot is wasted
	}
	max := e.cell
	if max > headroom {
		max = headroom
	}
	_, n := lane.TakeHeadCell(max, func(f *flows.Flow, n int64) {
		f.NoteSent(n)
		inter.relay[d].Push(queue.Segment{Flow: f, Bytes: n, Enqueued: arrive})
	})
	inter.relayBytes += n
	e.relayed += n
	if e.cfg.OnTransit != nil && n > 0 {
		e.cfg.OnTransit(j, arrive, n)
	}
}

// serve fills the slot for the slot-time-spray disciplines
// (OpportunisticDirect and DirectOnly ablations): one cell per slot chosen
// as relay > [direct-to-j] > spray-from-any-queue, with the spray target
// decided at slot time rather than pre-assigned.
func (e *Engine) serve(src *tor, i, j int, slotStart, arrive sim.Time) {
	// Second hop: relay traffic destined to j that has physically arrived.
	if src.relay[j].HeadReady(slotStart) {
		n := src.relay[j].TakeReady(e.cell, slotStart, func(f *flows.Flow, n int64) {
			e.deliver(f, j, n, arrive)
		})
		src.relayBytes -= n
		return
	}
	if e.cfg.OpportunisticDirect || e.cfg.DirectOnly {
		// Direct traffic to j (source-side priority queues apply).
		if !src.direct[j].Empty() {
			src.direct[j].Take(e.cell, func(f *flows.Flow, n int64) {
				f.NoteSent(n)
				e.deliver(f, j, n, arrive)
			})
			return
		}
		if e.cfg.DirectOnly {
			return
		}
	}
	// First hop: spray one fresh cell via j, bounded by j's relay headroom
	// (idealised backpressure standing in for Sirius's congestion
	// control). Data already destined to j delivers in one hop.
	inter := e.tors[j]
	for scan := 0; scan < e.n; scan++ {
		d := src.sprayPtr
		src.sprayPtr++
		if src.sprayPtr >= e.n {
			src.sprayPtr = 0
		}
		if d == i || src.direct[d].Empty() {
			continue
		}
		if d == j {
			src.direct[d].Take(e.cell, func(f *flows.Flow, n int64) {
				f.NoteSent(n)
				e.deliver(f, j, n, arrive)
			})
			return
		}
		headroom := e.cfg.RelayCap - inter.relay[d].Bytes()
		if headroom <= 0 {
			continue // that VOQ is full; try another destination's data
		}
		max := e.cell
		if max > headroom {
			max = headroom
		}
		n := src.direct[d].Take(max, func(f *flows.Flow, n int64) {
			f.NoteSent(n)
			inter.relay[d].Push(queue.Segment{Flow: f, Bytes: n, Enqueued: arrive})
		})
		inter.relayBytes += n
		e.relayed += n
		if e.cfg.OnTransit != nil && n > 0 {
			e.cfg.OnTransit(j, arrive, n)
		}
		return
	}
}

func (e *Engine) deliver(f *flows.Flow, dst int, n int64, at sim.Time) {
	e.ledger.Delivered += n
	e.goodput.Deliver(dst, n)
	if f.Deliver(n, at) {
		e.fct.Record(f.Size, f.FCT())
		if tag, ok := e.tagOf[f.ID]; ok {
			ts := e.tags[tag]
			ts.Done++
			if f.Completed() > ts.End {
				ts.End = f.Completed()
			}
			delete(e.tagOf, f.ID)
		}
	}
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(dst, at, n)
	}
}

func (e *Engine) inject(t sim.Time) {
	if e.work == nil {
		e.genDone = true
		return
	}
	for {
		if !e.havePending {
			a, ok := e.work.Next()
			if !ok {
				e.genDone = true
				return
			}
			e.pending, e.havePending = a, true
		}
		if e.pending.Time > t {
			return
		}
		a := e.pending
		e.havePending = false
		e.flowSeq++
		f := &flows.Flow{ID: e.flowSeq, Src: a.Src, Dst: a.Dst, Size: a.Size, Arrival: a.Time}
		src := e.tors[a.Src]
		if src.lanes != nil {
			// Spray the flow across intermediates in fixed-size chunks,
			// each assigned a uniformly random intermediate at arrival as
			// Sirius sprays cells. Randomness matters: deterministic
			// assignment correlates across sources and melts hot
			// intermediates.
			chunk := int64(e.cfg.SprayChunkCells) * e.cell
			for off := int64(0); off < a.Size; off += chunk {
				n := a.Size - off
				if n > chunk {
					n = chunk
				}
				k := e.rng.Intn(e.n - 1)
				if k >= a.Src {
					k++
				}
				src.lanes[k].PushBytes(f, n, off, t)
			}
		} else {
			src.direct[a.Dst].Push(f, t)
		}
		e.ledger.Injected += a.Size
		if a.Tag != 0 {
			ts := e.tags[a.Tag]
			if ts == nil {
				ts = &TagStat{Start: a.Time}
				e.tags[a.Tag] = ts
			}
			ts.Flows++
			if a.Time < ts.Start {
				ts.Start = a.Time
			}
			e.tagOf[f.ID] = a.Tag
		}
	}
}

func (e *Engine) checkInvariants() {
	var inFabric int64
	for _, t := range e.tors {
		var relayHere int64
		for j := range t.direct {
			inFabric += t.direct[j].Bytes()
			relayHere += t.relay[j].Bytes()
			if t.lanes != nil {
				inFabric += t.lanes[j].Bytes()
			}
		}
		inFabric += relayHere
		if relayHere != t.relayBytes {
			panic(fmt.Sprintf("oblivious: relay accounting drift: %d vs %d", relayHere, t.relayBytes))
		}
	}
	if err := e.ledger.Check(inFabric); err != nil {
		panic(err)
	}
}
