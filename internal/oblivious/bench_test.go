package oblivious

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

func benchEngine(b *testing.B, load float64) *Engine {
	b.Helper()
	top, err := topo.NewThinClos(128, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{
		Topology:       top,
		HostRate:       sim.Gbps(400),
		PriorityQueues: true,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 128, load, sim.Gbps(400), 7))
	e.Run(100 * sim.Microsecond) // warm-up
	return e
}

// BenchmarkSlotSaturated measures one round-robin timeslot (1024 port
// decisions: relay, spray-lane head, VOQ admission) at full load.
func BenchmarkSlotSaturated(b *testing.B) {
	e := benchEngine(b, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}

// BenchmarkSlotLight is the near-idle slot cost.
func BenchmarkSlotLight(b *testing.B) {
	e := benchEngine(b, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runSlot()
	}
}
