package oblivious

import (
	"math"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// TestSprayUniformity: a large flow's chunks must spread evenly over
// intermediates — deterministic assignment would correlate across sources
// and melt hot intermediates.
func TestSprayUniformity(t *testing.T) {
	cfg := testConfig(t)
	e, _ := New(cfg)
	e.inject(0) // no workload: establishes genDone
	src := e.fab.Nodes[2]
	// Inject a large flow directly through the generator path.
	e.SetWorkload(workload.NewSinglePair(2, 9, 4<<20, 0))
	e.inject(0)
	var total int64
	counts := make([]int64, e.n)
	for k := 0; k < e.n; k++ {
		counts[k] = src.Lanes.Bytes(k)
		total += counts[k]
	}
	if total != 4<<20 {
		t.Fatalf("lanes hold %d of %d", total, 4<<20)
	}
	if counts[2] != 0 {
		t.Fatal("self-lane must stay empty")
	}
	mean := float64(total) / float64(e.n-1)
	for k, c := range counts {
		if k == 2 {
			continue
		}
		if math.Abs(float64(c)-mean) > 0.5*mean {
			t.Errorf("lane %d holds %d bytes, mean %.0f (poor spread)", k, c, mean)
		}
	}
}

// TestLaneStallWastesSlot: when the head cell's destination VOQ is full at
// the connected intermediate, the slot moves nothing (Sirius backpressure),
// even though other lanes have data.
func TestLaneStallWastesSlot(t *testing.T) {
	cfg := testConfig(t)
	cfg.RelayCap = 1 // one byte: every VOQ is effectively always full
	e, _ := New(cfg)
	e.SetWorkload(workload.NewSinglePair(0, 9, 1<<20, 0))
	e.Run(20 * sim.Microsecond)
	r := e.Results()
	// A 1-byte VOQ admits one byte per drain cycle: relay throughput is
	// throttled to a trickle.
	if float64(r.Relayed) > 0.01*float64(r.Injected) {
		t.Errorf("relayed %d of %d bytes despite 1-byte VOQs", r.Relayed, r.Injected)
	}
	if r.Delivered == 0 {
		t.Error("the direct-luck lane should still deliver")
	}
	if float64(r.Delivered) > 0.2*float64(r.Injected) {
		t.Errorf("delivered %d of %d: stalls should throttle hard", r.Delivered, r.Injected)
	}
}

// TestMiceOvertakeElephantsWithinLane: PIAS priorities apply inside spray
// lanes, so a mouse arriving behind an elephant still leaves the source
// promptly.
func TestMiceOvertakeElephantsWithinLane(t *testing.T) {
	run := func(pq bool) sim.Duration {
		cfg := testConfig(t)
		cfg.PriorityQueues = pq
		e, _ := New(cfg)
		elephant := workload.NewSinglePair(0, 9, 8<<20, 0)
		mouse := workload.NewSinglePair(0, 5, 800, 1000)
		e.SetWorkload(workload.NewMerge(elephant, mouse))
		e.Run(2 * sim.Millisecond)
		r := e.Results()
		if r.FCT.MiceCount() != 1 {
			t.Fatalf("mouse incomplete (pq=%v)", pq)
		}
		return r.FCT.MiceP(100)
	}
	withPQ, withoutPQ := run(true), run(false)
	if withPQ > withoutPQ {
		t.Errorf("PQ made the mouse slower: %v vs %v", withPQ, withoutPQ)
	}
}

// TestRelayedBytesWaitPropagation: a relayed byte's delivery is at least
// two propagation delays after injection.
func TestRelayedBytesWaitPropagation(t *testing.T) {
	cfg := testConfig(t)
	var firstDelivery sim.Time
	cfg.OnDeliver = func(dst int, at sim.Time, n int64) {
		if firstDelivery == 0 {
			firstDelivery = at
		}
	}
	e, _ := New(cfg)
	e.SetWorkload(workload.NewSinglePair(0, 9, 50<<10, 0))
	e.Run(100 * sim.Microsecond)
	// The very first delivery may be the 1-hop-lucky lane: >= 1 prop.
	if firstDelivery < sim.Time(cfg.Timing.PropDelay) {
		t.Errorf("delivery at %v before one propagation delay", firstDelivery)
	}
	// All bytes delivered; the bulk (relayed) took >= 2 props. Check the
	// flow's completion.
	r := e.Results()
	if r.FCT.Count() != 1 {
		t.Fatal("flow incomplete")
	}
	if fct := r.FCT.P(100); fct < 2*cfg.Timing.PropDelay {
		t.Errorf("FCT %v < two propagation delays; relay must traverse two hops", fct)
	}
}

// TestChunkGranularityConfigurable: SprayChunkCells controls lane
// assignment granularity.
func TestChunkGranularityConfigurable(t *testing.T) {
	cfg := testConfig(t)
	cfg.SprayChunkCells = 1
	e, _ := New(cfg)
	if e.cfg.SprayChunkCells != 1 {
		t.Fatal("chunk override ignored")
	}
	cfg2 := testConfig(t)
	e2, _ := New(cfg2)
	if e2.cfg.SprayChunkCells != 4 {
		t.Fatalf("default chunk = %d, want 4", e2.cfg.SprayChunkCells)
	}
	// Finer chunks spread a mid-size flow over more lanes.
	e.SetWorkload(workload.NewSinglePair(2, 9, 10*615*4, 0))
	e.inject(0)
	lanes1 := 0
	for k := 0; k < e.n; k++ {
		if e.fab.Nodes[2].Lanes.Bytes(k) > 0 {
			lanes1++
		}
	}
	if lanes1 < 8 {
		t.Errorf("1-cell chunks used %d lanes for a 40-cell flow, want many", lanes1)
	}
}

// TestObliviousTopologyIndependence: the paper notes the relay-enabled
// round-robin performs identically on both topologies; goodput under the
// same saturated workload must be close.
func TestObliviousTopologyIndependence(t *testing.T) {
	run := func(top topo.Topology) float64 {
		cfg := testConfig(t)
		cfg.Topology = top
		e, _ := New(cfg)
		e.SetWorkload(workload.NewPoisson(workload.Hadoop(), 16, 1.0, cfg.HostRate, 5))
		e.Run(2 * sim.Millisecond)
		r := e.Results()
		return r.Goodput.Normalized(r.Duration, cfg.HostRate)
	}
	p, _ := topo.NewParallel(16, 4)
	tc, _ := topo.NewThinClos(16, 4, 4)
	gp, gtc := run(p), run(tc)
	if math.Abs(gp-gtc) > 0.1*math.Max(gp, gtc) {
		t.Errorf("topology changed oblivious goodput: parallel %.3f vs thin-clos %.3f", gp, gtc)
	}
}
