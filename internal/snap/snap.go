// Package snap is the checkpoint container format shared by the fabric
// core and the control planes: a magic header, a format version, and a
// sequence of length-prefixed, CRC-guarded sections closed by an explicit
// end marker.
//
// The format is deliberately dumb. Sections are opaque byte payloads
// identified by a 4-byte tag; the fabric decides what goes in each and the
// Enc/Dec helpers below give both sides a shared little-endian vocabulary.
// Load validates the ENTIRE stream — magic, version, every section's
// bounds and CRC, and the end marker — before returning anything, so a
// caller that only mutates state after a successful Load can guarantee
// that a truncated or corrupted checkpoint leaves the original state
// untouched.
//
// Versioning policy: Version covers the container layout and every section
// payload layout. Any incompatible change to either bumps it, and Load
// rejects mismatched files outright — there is no cross-version migration;
// a checkpoint is a resume token for the binary (and spec) that wrote it,
// not an archival format.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot stream.
const Magic = "NEGOSNAP"

// Version is the current container format version. Restore rejects any
// other value.
const Version = 1

// endTag closes a stream; trailing bytes after it are an error.
const endTag = "END."

// Writer emits a snapshot stream section by section. Errors stick: the
// first write failure is returned by Close and all later calls are no-ops.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter starts a snapshot stream on w by writing the header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	var hdr [12]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	sw.write(hdr[:])
	return sw
}

func (sw *Writer) write(b []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(b)
}

// Section appends one tagged section. The tag must be exactly 4 bytes;
// repeated tags are allowed (e.g. one NODE section per node).
func (sw *Writer) Section(tag string, payload []byte) {
	if len(tag) != 4 {
		panic(fmt.Sprintf("snap: section tag %q must be 4 bytes", tag))
	}
	var hdr [12]byte
	copy(hdr[:4], tag)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	sw.write(hdr[:])
	sw.write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	sw.write(crc[:])
}

// Close writes the end marker and returns the first error encountered.
func (sw *Writer) Close() error {
	sw.Section(endTag, nil)
	return sw.err
}

// Section is one validated section of a loaded snapshot.
type Section struct {
	Tag     string
	Payload []byte
}

// Snapshot is a fully validated snapshot stream held in memory.
type Snapshot struct {
	sections []Section
}

// Load reads and validates an entire snapshot stream: magic, version,
// every section's length bound and CRC, the end marker, and the absence of
// trailing bytes. It returns an error — and no partial data — on any
// corruption, so callers can defer all state mutation until Load succeeds.
func Load(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snap: read: %w", err)
	}
	if len(raw) < 12 || string(raw[:8]) != Magic {
		return nil, fmt.Errorf("snap: not a snapshot (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("snap: unknown snapshot format version %d (this build reads version %d)", v, Version)
	}
	s := &Snapshot{}
	off := 12
	for {
		if off+16 > len(raw) {
			return nil, fmt.Errorf("snap: truncated snapshot: section header missing at byte %d", off)
		}
		tag := string(raw[off : off+4])
		n := binary.LittleEndian.Uint64(raw[off+4 : off+12])
		off += 12
		if n > uint64(len(raw)-off) || off+int(n)+4 > len(raw) {
			return nil, fmt.Errorf("snap: truncated snapshot: section %q declares %d bytes, %d remain", tag, n, len(raw)-off)
		}
		payload := raw[off : off+int(n)]
		off += int(n)
		crc := binary.LittleEndian.Uint32(raw[off : off+4])
		off += 4
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("snap: section %q fails CRC (want %08x, computed %08x): corrupt snapshot", tag, crc, got)
		}
		if tag == endTag {
			if off != len(raw) {
				return nil, fmt.Errorf("snap: %d trailing bytes after end marker", len(raw)-off)
			}
			return s, nil
		}
		s.sections = append(s.sections, Section{Tag: tag, Payload: payload})
	}
}

// Section returns the first section with the tag.
func (s *Snapshot) Section(tag string) ([]byte, bool) {
	for _, sec := range s.sections {
		if sec.Tag == tag {
			return sec.Payload, true
		}
	}
	return nil, false
}

// Sections returns every section with the tag, in stream order.
func (s *Snapshot) Sections(tag string) [][]byte {
	var out [][]byte
	for _, sec := range s.sections {
		if sec.Tag == tag {
			out = append(out, sec.Payload)
		}
	}
	return out
}

// Enc builds a section payload from little-endian primitives.
type Enc struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Dec reads a section payload written by Enc. Errors stick: after the
// first failure every read returns the zero value, and Err (or Finish)
// reports what went wrong, so decoders can read a whole layout linearly
// and check once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = fmt.Errorf("snap: truncated payload: want %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a strict 0/1 byte.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("snap: invalid bool at offset %d", d.off-1)
		}
		return false
	}
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U32()
	p := d.take(int(n))
	return string(p)
}

// Err returns the first decode error.
func (d *Dec) Err() error { return d.err }

// Finish returns the first decode error, or an error if undecoded bytes
// remain — the payload-level analogue of the stream's end marker.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snap: %d undecoded payload bytes", len(d.b)-d.off)
	}
	return nil
}
