package snap

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var e Enc
	e.U8(7)
	e.U32(1 << 20)
	e.U64(1 << 50)
	e.I64(-42)
	e.Int(123456)
	e.F64(0.25)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	w.Section("AAAA", e.Bytes())
	w.Section("NODE", []byte{1})
	w.Section("NODE", []byte{2})
	w.Section("EMPT", nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.Section("AAAA")
	if !ok {
		t.Fatal("section AAAA missing")
	}
	d := NewDec(p)
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 1<<20 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<50 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 0.25 {
		t.Errorf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
	nodes := s.Sections("NODE")
	if len(nodes) != 2 || nodes[0][0] != 1 || nodes[1][0] != 2 {
		t.Errorf("NODE sections = %v", nodes)
	}
	if p, ok := s.Section("EMPT"); !ok || len(p) != 0 {
		t.Errorf("EMPT = %v, %v", p, ok)
	}
	if _, ok := s.Section("MISS"); ok {
		t.Error("unexpected MISS section")
	}
}

// stream builds a small valid snapshot for the corruption tests.
func stream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("AAAA", []byte("some payload bytes"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsCorruption(t *testing.T) {
	good := stream(t)
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("control load failed: %v", err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic"},
		{"short header", func(b []byte) []byte { return b[:5] }, "bad magic"},
		{"unknown version", func(b []byte) []byte { b[8] = 99; return b }, "version"},
		{"payload bit flip", func(b []byte) []byte { b[25] ^= 1; return b }, "CRC"},
		{"crc bit flip", func(b []byte) []byte { b[len(b)-21] ^= 1; return b }, "CRC"},
		{"truncated mid-section", func(b []byte) []byte { return b[:20] }, "truncated"},
		{"missing end marker", func(b []byte) []byte { return b[:len(b)-16] }, "truncated"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }, "trailing"},
		{"empty", func(b []byte) []byte { return nil }, "bad magic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := c.mut(append([]byte(nil), good...))
			_, err := Load(bytes.NewReader(b))
			if err == nil {
				t.Fatal("corrupt stream loaded without error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestDecTruncation(t *testing.T) {
	d := NewDec([]byte{1, 2})
	d.U64()
	if d.Err() == nil {
		t.Fatal("short read not detected")
	}
	// Errors stick and later reads return zero values.
	if d.U32() != 0 || d.Str() != "" {
		t.Error("post-error reads not zero")
	}
	d2 := NewDec([]byte{0, 0})
	d2.U8()
	if err := d2.Finish(); err == nil {
		t.Error("undecoded trailing byte not detected")
	}
	d3 := NewDec([]byte{2})
	d3.Bool()
	if d3.Err() == nil {
		t.Error("invalid bool byte not detected")
	}
}
