package match

import "math/bits"

// BitArbiter is a word-parallel programmable priority encoder: the
// hardware-style implementation of a round-robin arbiter (paper §3.6.2,
// after Gupta & McKeown's fast crossbar schedulers). Candidates are given
// as a bitmask and the winner is the first set bit at or after the
// pointer, found with find-first-set over 64-bit words — the same
// structure switch ASICs build from thermometer masks and priority
// encoders, and also the fastest software path for the large grant-ring
// domains of the parallel network.
//
// BitArbiter and Ring implement the same arbitration discipline; the
// property tests in arbiter_test.go assert they pick identical winners
// from identical states.
type BitArbiter struct {
	n     int
	ptr   int
	words []uint64
}

// NewBitArbiter returns an arbiter over n participants with the pointer at
// start.
func NewBitArbiter(n, start int) *BitArbiter {
	if n <= 0 {
		return &BitArbiter{}
	}
	return &BitArbiter{n: n, ptr: start % n, words: make([]uint64, (n+63)/64)}
}

// Size returns the number of participants.
func (a *BitArbiter) Size() int { return a.n }

// Pointer returns the highest-priority position.
func (a *BitArbiter) Pointer() int { return a.ptr }

// Reset clears the candidate mask.
func (a *BitArbiter) Reset() {
	for i := range a.words {
		a.words[i] = 0
	}
}

// Set marks position pos as a candidate.
func (a *BitArbiter) Set(pos int) {
	a.words[pos>>6] |= 1 << (pos & 63)
}

// Clear unmarks position pos.
func (a *BitArbiter) Clear(pos int) {
	a.words[pos>>6] &^= 1 << (pos & 63)
}

// IsSet reports whether pos is a candidate.
func (a *BitArbiter) IsSet(pos int) bool {
	return a.words[pos>>6]&(1<<(pos&63)) != 0
}

// Pick returns the first candidate at or after the pointer (cyclically),
// or -1 when the mask is empty. Like Ring.Pick it does not move the
// pointer.
func (a *BitArbiter) Pick() int {
	if a.n == 0 {
		return -1
	}
	// Upper segment: bits at or after ptr. Positions >= n are never set.
	w := a.ptr >> 6
	for i := w; i < len(a.words); i++ {
		mask := a.words[i]
		if i == w {
			mask &^= (1 << (a.ptr & 63)) - 1
		}
		if mask != 0 {
			return i<<6 + bits.TrailingZeros64(mask)
		}
	}
	// Wrap-around segment: bits before ptr.
	for i := 0; i <= w && i < len(a.words); i++ {
		mask := a.words[i]
		if i == w {
			mask &= (1 << (a.ptr & 63)) - 1
		}
		if mask != 0 {
			return i<<6 + bits.TrailingZeros64(mask)
		}
	}
	return -1
}

// Advance moves the pointer to the position after winner.
func (a *BitArbiter) Advance(winner int) {
	if a.n == 0 {
		return
	}
	a.ptr = winner + 1
	if a.ptr >= a.n {
		a.ptr = 0
	}
}
