package match

import (
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func TestBitArbiterBasics(t *testing.T) {
	a := NewBitArbiter(10, 0)
	if a.Size() != 10 || a.Pointer() != 0 {
		t.Fatalf("init: size=%d ptr=%d", a.Size(), a.Pointer())
	}
	if a.Pick() != -1 {
		t.Fatal("empty mask should pick -1")
	}
	a.Set(7)
	if !a.IsSet(7) || a.IsSet(6) {
		t.Fatal("Set/IsSet broken")
	}
	if got := a.Pick(); got != 7 {
		t.Fatalf("Pick = %d, want 7", got)
	}
	a.Advance(7)
	if a.Pointer() != 8 {
		t.Fatalf("pointer = %d, want 8", a.Pointer())
	}
	// Wrap-around: candidate 3 is before the pointer.
	a.Clear(7)
	a.Set(3)
	if got := a.Pick(); got != 3 {
		t.Fatalf("wrap Pick = %d, want 3", got)
	}
	a.Advance(9)
	if a.Pointer() != 0 {
		t.Fatalf("Advance wrap: ptr = %d", a.Pointer())
	}
	a.Reset()
	if a.Pick() != -1 {
		t.Fatal("Reset did not clear")
	}
}

func TestBitArbiterMultiWord(t *testing.T) {
	// Domains larger than 64 exercise the word-crossing paths (the
	// parallel network's grant ring at paper scale has 128 positions).
	a := NewBitArbiter(128, 100)
	a.Set(5)
	a.Set(99)
	a.Set(127)
	if got := a.Pick(); got != 127 {
		t.Fatalf("Pick = %d, want 127 (first at/after 100)", got)
	}
	a.Advance(127)
	if got := a.Pick(); got != 5 {
		t.Fatalf("Pick after wrap = %d, want 5", got)
	}
	a.Clear(5)
	a.Clear(127)
	if got := a.Pick(); got != 99 {
		t.Fatalf("Pick = %d, want 99", got)
	}
}

func TestBitArbiterZeroSize(t *testing.T) {
	a := NewBitArbiter(0, 0)
	if a.Pick() != -1 {
		t.Error("zero arbiter should pick -1")
	}
	a.Advance(0) // must not panic
}

// TestBitArbiterEquivalentToRing is the hardware/reference equivalence
// property: for any candidate set and pointer position, BitArbiter.Pick
// must return exactly what Ring.Pick returns.
func TestBitArbiterEquivalentToRing(t *testing.T) {
	f := func(seed int64, nRaw uint8, rounds uint8) bool {
		n := int(nRaw%130) + 1
		rng := sim.NewRNG(seed)
		ring := NewRing(n, nil)
		arb := NewBitArbiter(n, 0)
		members := make([]bool, n)
		for r := 0; r < int(rounds%50)+1; r++ {
			// Random mask mutation.
			pos := rng.Intn(n)
			if members[pos] {
				members[pos] = false
				arb.Clear(pos)
			} else {
				members[pos] = true
				arb.Set(pos)
			}
			want := ring.Pick(func(p int) bool { return members[p] })
			got := arb.Pick()
			if got != want {
				return false
			}
			if got >= 0 {
				ring.Advance(got)
				arb.Advance(got)
			}
			if ring.Pointer() != arb.Pointer() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRingPickMaskEquivalentToPick pins the property the base matcher's
// identity-domain fast path rests on: PickMask over a candidate bitmask
// picks exactly what Pick with an is-set predicate picks, from any
// pointer position.
func TestRingPickMaskEquivalentToPick(t *testing.T) {
	f := func(seed int64, nRaw uint8, rounds uint8) bool {
		n := int(nRaw%130) + 1
		rng := sim.NewRNG(seed)
		ring := NewRing(n, rng)
		members := make([]bool, n)
		mask := make([]uint64, (n+63)>>6)
		for r := 0; r < int(rounds%50)+1; r++ {
			pos := rng.Intn(n)
			if members[pos] {
				members[pos] = false
				mask[pos>>6] &^= 1 << (uint(pos) & 63)
			} else {
				members[pos] = true
				mask[pos>>6] |= 1 << (uint(pos) & 63)
			}
			want := ring.Pick(func(p int) bool { return members[p] })
			if got := ring.PickMask(mask); got != want {
				return false
			}
			if want >= 0 {
				ring.Advance(want)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitArbiterFairness(t *testing.T) {
	// With all candidates always set, winners rotate round-robin.
	a := NewBitArbiter(5, 2)
	for i := 0; i < 5; i++ {
		a.Set(i)
	}
	want := []int{2, 3, 4, 0, 1, 2}
	for i, w := range want {
		got := a.Pick()
		if got != w {
			t.Fatalf("round %d: Pick = %d, want %d", i, got, w)
		}
		a.Advance(got)
	}
}

func BenchmarkRingPick128(b *testing.B) {
	ring := NewRing(128, nil)
	members := make([]bool, 128)
	for i := 0; i < 128; i += 17 {
		members[i] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := ring.Pick(func(p int) bool { return members[p] })
		ring.Advance(w)
	}
}

func BenchmarkBitArbiterPick128(b *testing.B) {
	arb := NewBitArbiter(128, 0)
	for i := 0; i < 128; i += 17 {
		arb.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := arb.Pick()
		arb.Advance(w)
	}
}
