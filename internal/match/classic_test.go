package match

import (
	"testing"

	"negotiator/internal/sim"
)

func runClassic(t *testing.T, kind ArbiterKind, iters, n, s int, epochs int) (matched float64) {
	t.Helper()
	top := parallel(t, n, s)
	m := NewClassic(top, sim.NewRNG(5), iters, kind)
	view := fullBacklogView(n)
	matches := make([][]int32, n)
	for i := range matches {
		matches[i] = make([]int32, s)
	}
	var total, possible int
	for e := 0; e < epochs; e++ {
		var reqs []Request
		for src := 0; src < n; src++ {
			m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
		}
		denseMatch(m, reqs, matches, nil)
		for _, row := range matches {
			for _, d := range row {
				if d >= 0 {
					total++
				}
			}
		}
		possible += n * s
	}
	return float64(total) / float64(possible)
}

func TestClassicNames(t *testing.T) {
	top := parallel(t, 8, 2)
	rng := sim.NewRNG(1)
	if got := NewClassic(top, rng, 1, PIM).Name(); got != "pim-1" {
		t.Errorf("Name = %q", got)
	}
	if got := NewClassic(top, rng, 4, ISLIP).Name(); got != "islip-4" {
		t.Errorf("Name = %q", got)
	}
	if got := NewClassic(top, rng, 2, RRM).Name(); got != "rrm-2" {
		t.Errorf("Name = %q", got)
	}
	if RRM.String() != "rrm" || PIM.String() != "pim" || ISLIP.String() != "islip" {
		t.Error("kind strings")
	}
}

func TestClassicMatchDelay(t *testing.T) {
	top := parallel(t, 8, 2)
	if d := NewClassic(top, sim.NewRNG(1), 3, ISLIP).MatchDelay(); d != 8 {
		t.Errorf("delay = %d, want 8", d)
	}
}

func TestPIMSingleIterationEfficiency(t *testing.T) {
	// PIM's classic single-iteration efficiency under saturation is
	// ~1-1/e = 63%.
	got := runClassic(t, PIM, 1, 32, 4, 30)
	if got < 0.55 || got > 0.72 {
		t.Errorf("PIM-1 efficiency = %.3f, want ~0.63", got)
	}
}

func TestISLIPDesynchronises(t *testing.T) {
	// iSLIP's famous property: under saturated uniform traffic the
	// pointers desynchronise and even a single iteration approaches a
	// perfect matching after a few epochs — clearly better than RRM,
	// whose synchronised pointers stay near 63%.
	islip := runClassic(t, ISLIP, 1, 32, 4, 60)
	rrm := runClassic(t, RRM, 1, 32, 4, 60)
	if islip <= rrm {
		t.Errorf("iSLIP (%.3f) should beat RRM (%.3f) under saturation", islip, rrm)
	}
	if islip < 0.85 {
		t.Errorf("iSLIP-1 efficiency = %.3f, want near 1.0 after desync", islip)
	}
}

func TestIterationImprovesPIM(t *testing.T) {
	one := runClassic(t, PIM, 1, 32, 4, 20)
	four := runClassic(t, PIM, 4, 32, 4, 20)
	if four <= one {
		t.Errorf("PIM-4 (%.3f) should beat PIM-1 (%.3f)", four, one)
	}
	if four < 0.9 {
		t.Errorf("PIM-4 efficiency = %.3f, want >0.9 (log-convergence)", four)
	}
}

func TestClassicConflictFreedom(t *testing.T) {
	for _, kind := range []ArbiterKind{RRM, PIM, ISLIP} {
		top := thinclos(t, 16, 4, 4)
		m := NewClassic(top, sim.NewRNG(9), 3, kind)
		view := fullBacklogView(16)
		var reqs []Request
		for src := 0; src < 16; src++ {
			m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
		}
		matches := make([][]int32, 16)
		for i := range matches {
			matches[i] = make([]int32, 4)
		}
		denseMatch(m, reqs, matches, nil)
		rx := map[[2]int32]bool{}
		for src := range matches {
			for port, dst := range matches[src] {
				if dst < 0 {
					continue
				}
				if !top.CanReach(src, port, int(dst)) {
					t.Fatalf("%v: unreachable match", kind)
				}
				key := [2]int32{dst, int32(port)}
				if rx[key] {
					t.Fatalf("%v: dst %d port %d double-matched", kind, dst, port)
				}
				rx[key] = true
			}
		}
	}
}

func TestClassicStatsConsistency(t *testing.T) {
	top := parallel(t, 16, 4)
	m := NewClassic(top, sim.NewRNG(2), 2, ISLIP)
	view := fullBacklogView(16)
	var reqs []Request
	for src := 0; src < 16; src++ {
		m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
	}
	matches := make([][]int32, 16)
	for i := range matches {
		matches[i] = make([]int32, 4)
	}
	var stats BatchStats
	denseMatch(m, reqs, matches, &stats)
	var matched int64
	for _, row := range matches {
		for _, d := range row {
			if d >= 0 {
				matched++
			}
		}
	}
	if stats.Accepts != matched {
		t.Errorf("stats.Accepts=%d, matched=%d", stats.Accepts, matched)
	}
	if stats.Grants < stats.Accepts {
		t.Errorf("grants %d < accepts %d", stats.Grants, stats.Accepts)
	}
}
