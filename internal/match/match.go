package match

import (
	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// QueueView lets matchers read a source ToR's per-destination queue state
// without coupling to the queue implementation.
type QueueView interface {
	// QueuedBytes returns the bytes currently queued for dst.
	QueuedBytes(dst int) int64
	// WeightedHoL returns the paper's weighted head-of-line delay for dst
	// (Appendix A.2.3).
	WeightedHoL(dst int, alpha float64) float64
	// CumInjected returns the cumulative bytes ever enqueued for dst, used
	// by the stateful variant to report newly arrived demand.
	CumInjected(dst int) int64
	// NextDemand returns the smallest destination strictly greater than
	// after that may hold queued bytes, or -1. Iterating from -1 visits a
	// superset of {dst : QueuedBytes(dst) > 0} in ascending order, so the
	// REQUEST sweep costs O(active destinations) instead of O(N) — the
	// engines back it with their occupancy indexes.
	NextDemand(after int) int
}

// Request is a scheduling request from Src to Dst. The base algorithm uses
// only the binary fact of its existence; variants attach extra fields.
type Request struct {
	Src, Dst int
	Port     int     // ProjecToR variant: pre-bound source port; -1 for ToR-level
	Size     int64   // data-size variant: queued bytes
	Delay    float64 // HoL-delay / ProjecToR variants: waiting-delay priority
	NewBytes int64   // stateful variant: bytes newly arrived since last request
}

// Grant allocates destination Dst's port Port to source Src.
type Grant struct {
	Dst, Port, Src int
}

// Matcher is one scheduling policy, invoked by the fabric engine once per
// ToR per pipeline stage. Implementations keep all per-ToR state internally
// (indexed by ToR id) and are single-goroutine.
type Matcher interface {
	// Name identifies the policy in experiment output.
	Name() string
	// MatchDelay returns the pipeline depth in epochs from the epoch a
	// request is issued to the epoch its match carries data. The base
	// non-iterative pipeline is 2 (request n, grant n+1, accept+data n+2,
	// paper Figure 4); each extra iteration adds three epochs (A.2.1).
	MatchDelay() int
	// Requests emits this epoch's requests from src given its queue state.
	// threshold is the engine's request threshold in bytes (3 piggyback
	// payloads when data piggybacking is on, §3.4.1).
	Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request))
	// Grants runs the GRANT step at dst over the requests it received,
	// emitting at most one grant per uplink port.
	Grants(dst int, reqs []Request, emit func(Grant))
	// Accepts runs the ACCEPT step at src over the grants it received,
	// writing the matched destination (or -1) into matches[port] and
	// reporting per-grant accept/reject feedback (consumed by the stateful
	// variant; the base algorithm ignores it).
	Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(g Grant, accepted bool))
	// Feedback delivers a source's accept/reject decision back to the
	// granting destination (stateful variant; no-op otherwise).
	Feedback(g Grant, accepted bool)
}

// RequestTraits declares what an engine may assume about a matcher's
// Requests step. Both properties gate request-side fast paths; a matcher
// that does not implement the interface gets the conservative (false,
// false) reading from TraitsOf and keeps the dense from-scratch scan.
type RequestTraits interface {
	// RequestsIdleSafe reports that Requests on a source with no queued
	// demand emits nothing and mutates no matcher state — so an engine may
	// skip the call entirely for demand-free sources (O(active-source)
	// request loops) and a fully idle round may be fast-forwarded without
	// invoking the matcher at all.
	RequestsIdleSafe() bool
	// RequestsPure reports that Requests is a pure function of the view's
	// queued-bytes state and the threshold: it reads no clock-dependent
	// signal (WeightedHoL) and mutates no matcher state. An engine may
	// then cache a source's emissions and replay them byte-for-byte while
	// the source's demand row is unchanged. Pure implies idle-safe.
	RequestsPure() bool
}

// TraitsOf reads a matcher's request-step capabilities, defaulting to the
// conservative (false, false) for matchers that do not declare them.
func TraitsOf(m Matcher) (idleSafe, pure bool) {
	t, ok := m.(RequestTraits)
	if !ok {
		return false, false
	}
	return t.RequestsIdleSafe(), t.RequestsPure()
}

// Negotiator is the paper's NegotiaToR Matching: binary ToR-level requests,
// port-level grants via round-robin rings (one shared ring per destination
// on the parallel network, one ring per destination port on thin-clos,
// Figure 3), and port-level accepts via per-port rings. Non-iterative and
// stateless.
type Negotiator struct {
	topo topo.Topology
	// identityDom marks topologies whose port domains are the identity
	// (parallel network: domain position == ToR id). Grants and Accepts
	// then run their ring arbitration as word-scan priority encoding over
	// a candidate bitmask (Ring.PickMask) instead of an O(N) predicate
	// scan — the structure a switch ASIC builds, and the O(active +
	// N/64) software path the 1024-ToR sparse regime needs.
	identityDom bool

	// grantRings[dst]: length 1 (parallel, shared) or S (thin-clos,
	// per-port). Ring positions index the port's domain.
	grantRings [][]*Ring
	// acceptRings[src][port], positions index ToR ids (parallel) or the
	// port's reachable destination group (thin-clos domain size).
	acceptRings [][]*Ring

	// scratch, reused across calls.
	grantable [][]int32 // grantable[port] = dsts granting that port (scratch)
	// candMask is the identityDom candidate bitmask scratch; every use
	// sets exactly the candidate bits and clears them again after
	// arbitration, so the mask is all-zero between calls. candSum is its
	// summary level (one bit per mask word), letting PickMaskSum skip
	// empty words 64 at a time — without it the word-scan itself was an
	// O(N/64) per-arbitration term at 65,536 ToRs. The base matcher's
	// identity-domain paths maintain both; variants that arbitrate with
	// plain PickMask may ignore candSum as long as they restore the mask
	// to all-zero.
	candMask []uint64
	candSum  []uint64
	// domMask is the non-identity counterpart: one candidate bitmask per
	// port, in that port's DOMAIN-POSITION space (topo.DomainPos), so the
	// thin-clos grant/accept rings arbitrate by the same Ring.PickMask
	// word-scan the parallel network uses instead of an O(domain)
	// predicate walk. Like candMask, every use clears the bits it set.
	domMask [][]uint64
	// grp/pos are the thin-clos group and local-index tables (nil on
	// other topologies): port(src→dst) = (grp[src]+grp[dst]) mod S and
	// domain position = pos[src], turning the mask-building request
	// sweeps into table lookups — no divisions, no interface calls — so
	// the dense regime pays no more than the old stamp stores did.
	grp, pos []int32
	// domWords is the total word count across domMask — the wholesale
	// zeroing cost, against which clearDomMasks weighs an exact-bits
	// second request pass.
	domWords int
}

// NewNegotiator returns the base matcher for the given topology. rng seeds
// the random initial ring pointers.
func NewNegotiator(t topo.Topology, rng *sim.RNG) *Negotiator {
	n, s := t.N(), t.Ports()
	m := &Negotiator{topo: t}
	m.grantRings = make([][]*Ring, n)
	m.acceptRings = make([][]*Ring, n)
	_, shared := t.(*topo.Parallel)
	for i := 0; i < n; i++ {
		if shared {
			m.grantRings[i] = []*Ring{NewRing(n, rng)}
		} else {
			rings := make([]*Ring, s)
			for p := 0; p < s; p++ {
				rings[p] = NewRing(len(t.PortDomain(i, p)), rng)
			}
			m.grantRings[i] = rings
		}
		rings := make([]*Ring, s)
		for p := 0; p < s; p++ {
			rings[p] = NewRing(len(t.PortDomain(i, p)), rng)
		}
		m.acceptRings[i] = rings
	}
	m.identityDom = shared
	m.grantable = make([][]int32, s)
	for p := range m.grantable {
		m.grantable[p] = make([]int32, 0, 8)
	}
	m.candMask = make([]uint64, (n+63)>>6)
	m.candSum = make([]uint64, (len(m.candMask)+63)>>6)
	if !shared {
		m.domMask = newDomMask(t)
		for _, mask := range m.domMask {
			m.domWords += len(mask)
		}
		if tc, ok := t.(*topo.ThinClos); ok {
			w := tc.W()
			m.grp = make([]int32, n)
			m.pos = make([]int32, n)
			for i := 0; i < n; i++ {
				m.grp[i] = int32(i / w)
				m.pos[i] = int32(i % w)
			}
		}
	}
	return m
}

// portAndPos returns the port src reaches dst on and src's domain
// position there: table lookups on thin-clos, the Topology interface
// otherwise. (-1, -1) when src cannot reach dst on a unique port.
func (m *Negotiator) portAndPos(dst, src int) (int32, int32) {
	if m.grp != nil {
		if src == dst {
			return -1, -1
		}
		p := m.grp[src] + m.grp[dst]
		if s := int32(len(m.domMask)); p >= s {
			p -= s
		}
		return p, m.pos[src]
	}
	p, pos := m.topo.PortAndDomainPos(dst, src)
	return int32(p), int32(pos)
}

// newDomMask allocates per-port candidate masks in domain-position space.
func newDomMask(t topo.Topology) [][]uint64 {
	s := t.Ports()
	masks := make([][]uint64, s)
	for p := 0; p < s; p++ {
		masks[p] = make([]uint64, (len(t.PortDomain(0, p))+63)>>6)
	}
	return masks
}

func (m *Negotiator) Name() string    { return "negotiator" }
func (m *Negotiator) MatchDelay() int { return 2 }

// RequestsIdleSafe: the base REQUEST sweep emits only for queued demand
// and touches no matcher state. Embedders inherit both traits; variants
// whose Requests reads the clock or mutates state override them.
func (m *Negotiator) RequestsIdleSafe() bool { return true }

// RequestsPure: binary requests depend only on queued bytes vs threshold.
func (m *Negotiator) RequestsPure() bool { return true }

// Requests implements the REQUEST step: a binary request to every
// destination whose per-destination queue exceeds the threshold (§3.2.1
// with the piggybacking adjustment of §3.4.1). The sweep follows the
// view's demand index — ascending order, so emissions are identical to a
// dense 0..N-1 scan, at O(active destinations) cost.
func (m *Negotiator) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	for dst := view.NextDemand(-1); dst >= 0; dst = view.NextDemand(dst) {
		if dst == src {
			continue
		}
		if view.QueuedBytes(dst) > threshold {
			emit(Request{Src: src, Dst: dst, Port: -1})
		}
	}
}

// Grants implements the GRANT step at dst.
func (m *Negotiator) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	if m.identityDom {
		// Word-scan path: the requester set as a bitmask, each port's
		// pick a find-first-set from the shared ring's pointer. Winners
		// stay candidates for later ports, exactly as the predicate scan
		// leaves them.
		for _, r := range reqs {
			m.candMask[r.Src>>6] |= 1 << (uint(r.Src) & 63)
			m.candSum[r.Src>>12] |= 1 << (uint(r.Src>>6) & 63)
		}
		ring := m.grantRings[dst][0]
		s := m.topo.Ports()
		for port := 0; port < s; port++ {
			pos := ring.PickMaskSum(m.candMask, m.candSum)
			if pos < 0 {
				break
			}
			ring.Advance(pos)
			emit(Grant{Dst: dst, Port: port, Src: pos})
		}
		for _, r := range reqs {
			m.candMask[r.Src>>6] &^= 1 << (uint(r.Src) & 63)
			m.candSum[r.Src>>12] &^= 1 << (uint(r.Src>>6) & 63)
		}
		return
	}
	// Per-port word-scan path: each requester reaches dst on exactly one
	// port (thin-clos single paths), so one pass over the requests builds
	// every port's candidate mask in domain-position space, and each
	// port's pick is a Ring.PickMask find-first-set instead of an
	// O(domain) ring.Pick predicate walk. The masks are zeroed wholesale
	// afterwards (S·⌈W/64⌉ words — cheaper than a second request pass).
	for _, r := range reqs {
		p, pos := m.portAndPos(dst, r.Src)
		if p < 0 {
			continue
		}
		m.domMask[p][pos>>6] |= 1 << (uint(pos) & 63)
	}
	s := m.topo.Ports()
	rings := m.grantRings[dst]
	for port := 0; port < s; port++ {
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		pos := ring.PickMask(m.domMask[port])
		if pos < 0 {
			continue
		}
		ring.Advance(pos)
		emit(Grant{Dst: dst, Port: port, Src: m.topo.PortDomain(dst, port)[pos]})
	}
	m.clearDomMasks(dst, reqs)
}

// zeroDomMasks restores the all-zero between-calls state of the per-port
// candidate masks.
func (m *Negotiator) zeroDomMasks() {
	for _, mask := range m.domMask {
		for i := range mask {
			mask[i] = 0
		}
	}
}

// clearDomMasks restores the all-zero state after a Grants arbitration.
// When the request set is sparse relative to the masks' footprint it
// clears exactly the bits the request pass set (one more portAndPos
// sweep); dense request sets keep the wholesale memclr, which is 64x
// denser per touched bit. Without the sparse path the S·⌈W/64⌉ zeroing
// was a width-proportional per-call term on wide thin-clos fabrics.
func (m *Negotiator) clearDomMasks(dst int, reqs []Request) {
	if 4*len(reqs) >= m.domWords {
		m.zeroDomMasks()
		return
	}
	for _, r := range reqs {
		if p, pos := m.portAndPos(dst, r.Src); p >= 0 {
			m.domMask[p][pos>>6] &^= 1 << (uint(pos) & 63)
		}
	}
}

// Accepts implements the ACCEPT step at src: one grant per port, chosen by
// the per-port round-robin ring.
func (m *Negotiator) Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(Grant, bool)) {
	for p := range matches {
		matches[p] = -1
		m.grantable[p] = m.grantable[p][:0]
	}
	for _, g := range grants {
		m.grantable[g.Port] = append(m.grantable[g.Port], int32(g.Dst))
	}
	for port := range matches {
		cand := m.grantable[port]
		if len(cand) == 0 {
			continue
		}
		ring := m.acceptRings[src][port]
		if m.identityDom {
			// Word-scan path: granting dsts as a bitmask, one
			// find-first-set from the per-port ring's pointer.
			for _, c := range cand {
				m.candMask[c>>6] |= 1 << (uint(c) & 63)
				m.candSum[c>>12] |= 1 << (uint(c>>6) & 63)
			}
			pos := ring.PickMaskSum(m.candMask, m.candSum)
			for _, c := range cand {
				m.candMask[c>>6] &^= 1 << (uint(c) & 63)
				m.candSum[c>>12] &^= 1 << (uint(c>>6) & 63)
			}
			if pos < 0 {
				continue
			}
			ring.Advance(pos)
			matches[port] = int32(pos)
			continue
		}
		// Word-scan path in the port's domain-position space: granting
		// dsts as a bitmask, one find-first-set from the ring's pointer.
		mask := m.domMask[port]
		if m.pos != nil {
			// Grants arrive on the pair's unique port, so membership in
			// this port's domain is implied and the position is a table
			// read.
			for _, c := range cand {
				pos := m.pos[c]
				mask[pos>>6] |= 1 << (uint(pos) & 63)
			}
		} else {
			for _, c := range cand {
				if pos := m.topo.DomainPos(src, port, int(c)); pos >= 0 {
					mask[pos>>6] |= 1 << (uint(pos) & 63)
				}
			}
		}
		pos := ring.PickMask(mask)
		// Restore the all-zero mask: exact-bits clear for sparse grant
		// sets, wholesale memclr when dense (see clearDomMasks).
		if 4*len(cand) >= len(mask) {
			for i := range mask {
				mask[i] = 0
			}
		} else if m.pos != nil {
			for _, c := range cand {
				p := m.pos[c]
				mask[p>>6] &^= 1 << (uint(p) & 63)
			}
		} else {
			for _, c := range cand {
				if p := m.topo.DomainPos(src, port, int(c)); p >= 0 {
					mask[p>>6] &^= 1 << (uint(p) & 63)
				}
			}
		}
		if pos < 0 {
			continue
		}
		ring.Advance(pos)
		matches[port] = int32(m.topo.PortDomain(src, port)[pos])
	}
	if feedback != nil {
		for _, g := range grants {
			feedback(g, matches[g.Port] == int32(g.Dst))
		}
	}
}

// Feedback is a no-op for the stateless base algorithm.
func (m *Negotiator) Feedback(Grant, bool) {}
