package match

import (
	"fmt"
	"slices"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// ArbiterKind selects the arbitration discipline of an iterative matcher.
// The paper's related-work discussion (§5) contrasts NegotiaToR Matching
// with the classic crossbar schedulers PIM, RRM and iSLIP; implementing
// all three makes the comparison runnable (the `ext-arbiters` experiment).
type ArbiterKind int

const (
	// RRM picks round-robin and always advances the pointer past the
	// winner — the paper's variant (and NegotiaToR's own discipline).
	RRM ArbiterKind = iota
	// PIM picks uniformly at random among candidates (Anderson et al.):
	// no pointer state, ~63% efficiency per iteration.
	PIM
	// ISLIP picks round-robin but advances pointers only for grants that
	// are accepted in the first iteration (McKeown): the pointers
	// desynchronise and the matcher converges to 100% under saturated
	// uniform traffic.
	ISLIP
)

func (k ArbiterKind) String() string {
	switch k {
	case PIM:
		return "pim"
	case ISLIP:
		return "islip"
	default:
		return "rrm"
	}
}

// grantRec is one grant plus its domain position at the granting dst
// (for iSLIP pointer feedback).
type grantRec struct {
	g   Grant
	pos int
}

// Classic is an iterative matcher with a selectable arbitration discipline,
// implementing the crossbar schedulers the paper cites transplanted to the
// ToR-matching setting. Classic{RRM, iters:1} is exactly the paper's
// iterative variant baseline; ISLIP adds the accepted-grant pointer rule;
// PIM replaces rings with random choice.
type Classic struct {
	*Negotiator
	kind  ArbiterKind
	iters int
	rng   *sim.RNG

	b batchScratch
	// Persistent Match scratch (see Iterative.Match): sorted distinct-ToR
	// indexes so the grant/accept sweeps visit only active ToRs.
	reqBy     [][]int32
	reqDsts   []int32
	grants    [][]grantRec
	grantSrcs []int32
}

// NewClassic returns an iterative matcher with the given discipline and
// iteration count.
func NewClassic(t topo.Topology, rng *sim.RNG, iters int, kind ArbiterKind) *Classic {
	if iters < 1 {
		iters = 1
	}
	n, s := t.N(), t.Ports()
	m := &Classic{
		Negotiator: NewNegotiator(t, rng),
		kind:       kind,
		iters:      iters,
		rng:        rng.Split(77),
	}
	m.b = newBatchScratch(n, s)
	m.reqBy = make([][]int32, n)
	m.grants = make([][]grantRec, n)
	return m
}

func (m *Classic) Name() string { return fmt.Sprintf("%s-%d", m.kind, m.iters) }

// MatchDelay follows the paper's iterative accounting: 2 epochs plus 3 per
// extra iteration (Appendix A.2.1).
func (m *Classic) MatchDelay() int { return 2 + 3*(m.iters-1) }

// pickGrant chooses a requester for (dst, port) among the candidate
// domain positions (ascending, as the dense domain scan collected them),
// returning the chosen position or -1. RRM advances the ring pointer now;
// iSLIP waits for accept feedback; PIM has no pointer and picks uniformly
// at random. Ring picks run as Ring.PickMask word-scans (pickPositions).
func (m *Classic) pickGrant(dst, port int, cands []int32) int {
	switch m.kind {
	case PIM:
		if len(cands) == 0 {
			return -1
		}
		return int(cands[m.rng.Intn(len(cands))])
	default:
		rings := m.grantRings[dst]
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		pos := m.pickPositions(ring, port, cands)
		if pos >= 0 && m.kind == RRM {
			ring.Advance(pos)
		}
		return pos
	}
}

func (m *Classic) pickAccept(src, port int, cands []int32) int {
	switch m.kind {
	case PIM:
		if len(cands) == 0 {
			return -1
		}
		return int(cands[m.rng.Intn(len(cands))])
	default:
		ring := m.acceptRings[src][port]
		pos := m.pickPositions(ring, port, cands)
		if pos >= 0 && m.kind == RRM {
			ring.Advance(pos)
		}
		return pos
	}
}

// Match implements BatchMatcher: iterated request/grant/accept over one
// request snapshot. Like Iterative.Match, the sweeps visit only requested
// destinations and granted sources via sorted distinct-ToR indexes, port
// busyness is epoch-stamped (no O(N·S) clear per call), ring picks are
// word-scans over the candidates' domain positions, and only touched
// sources' match rows are written (see BatchMatcher.Match).
func (m *Classic) Match(reqs []Request, matches [][]int32, stats *BatchStats) []int32 {
	s := m.topo.Ports()
	b := &m.b
	b.begin()
	for _, dst := range m.reqDsts {
		m.reqBy[dst] = m.reqBy[dst][:0]
	}
	m.reqDsts = m.reqDsts[:0]
	for _, r := range reqs {
		if len(m.reqBy[r.Dst]) == 0 {
			m.reqDsts = append(m.reqDsts, int32(r.Dst))
		}
		m.reqBy[r.Dst] = append(m.reqBy[r.Dst], int32(r.Src))
	}
	slices.Sort(m.reqDsts)
	for iter := 0; iter < m.iters; iter++ {
		granted := false
		for _, dst32 := range m.reqDsts {
			dst := int(dst32)
			for port := 0; port < s; port++ {
				if b.dstBusy[dst*s+port] == b.stamp {
					continue
				}
				b.candPos = b.candPos[:0]
				for _, src32 := range m.reqBy[dst] {
					src := int(src32)
					if src == dst || b.srcBusy[src*s+port] == b.stamp {
						continue
					}
					if pos := m.domainPos(dst, port, src); pos >= 0 {
						b.candPos = append(b.candPos, int32(pos))
					}
				}
				pos := m.pickGrant(dst, port, b.candPos)
				if pos < 0 {
					continue
				}
				src := m.topo.PortDomain(dst, port)[pos]
				b.touch(src, matches)
				if len(m.grants[src]) == 0 {
					m.grantSrcs = append(m.grantSrcs, int32(src))
				}
				m.grants[src] = append(m.grants[src], grantRec{Grant{Dst: dst, Port: port, Src: src}, pos})
				if stats != nil {
					stats.Grants++
				}
				granted = true
			}
		}
		if !granted {
			break
		}
		slices.Sort(m.grantSrcs)
		for _, src32 := range m.grantSrcs {
			src := int(src32)
			gs := m.grants[src]
			for port := 0; port < s; port++ {
				if b.srcBusy[src*s+port] == b.stamp {
					continue
				}
				b.candPos = b.candPos[:0]
				for _, g := range gs {
					if g.g.Port != port {
						continue
					}
					if pos := m.domainPos(src, port, g.g.Dst); pos >= 0 {
						b.candPos = append(b.candPos, int32(pos))
					}
				}
				pos := m.pickAccept(src, port, b.candPos)
				if pos < 0 {
					continue
				}
				dst := m.topo.PortDomain(src, port)[pos]
				matches[src][port] = int32(dst)
				b.srcBusy[src*s+port] = b.stamp
				b.dstBusy[dst*s+port] = b.stamp
				if stats != nil {
					stats.Accepts++
				}
				if m.kind == ISLIP && iter == 0 {
					// iSLIP pointer rule: advance only for accepted
					// first-iteration grants.
					rings := m.grantRings[dst]
					gring := rings[0]
					if len(rings) > 1 {
						gring = rings[port]
					}
					for _, g := range gs {
						if g.g.Port == port && g.g.Dst == dst {
							gring.Advance(g.pos)
							break
						}
					}
					m.acceptRings[src][port].Advance(pos)
				}
			}
			m.grants[src] = m.grants[src][:0]
		}
		m.grantSrcs = m.grantSrcs[:0]
	}
	return b.touched
}
