package match

import (
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// benchView is a minimal QueueView for arbitration benchmarks: every
// destination reports the same demand.
type benchView struct{ n int }

func (v *benchView) QueuedBytes(int) int64            { return 1 << 20 }
func (v *benchView) WeightedHoL(int, float64) float64 { return 1 }
func (v *benchView) CumInjected(int) int64            { return 0 }
func (v *benchView) NextDemand(after int) int {
	if after+1 < v.n {
		return after + 1
	}
	return -1
}

// BenchmarkGrantsThinClos measures the GRANT step at one destination of a
// 1024-ToR thin-clos fabric (64 ports, 16-wide domains) with one requester
// in every fourth port domain — the sparse regime where the per-port
// arbitration cost dominates. Before PR 5 each port ran an O(domain)
// ring.Pick predicate walk; after, a per-domain candidate mask drives
// Ring.PickMask word-scan arbitration (BENCH_pr5.json records the
// trajectory).
func BenchmarkGrantsThinClos(b *testing.B) {
	tc, err := topo.NewThinClos(1024, 64, 16)
	if err != nil {
		b.Fatal(err)
	}
	m := NewNegotiator(tc, sim.NewRNG(1))
	dst := 0
	var reqs []Request
	for p := 0; p < 64; p += 4 {
		dom := tc.PortDomain(dst, p)
		reqs = append(reqs, Request{Src: dom[p%16], Dst: dst, Port: -1})
	}
	emit := func(Grant) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Grants(dst, reqs, emit)
	}
}

// BenchmarkAcceptsThinClos measures the ACCEPT step at one source of the
// same fabric holding one grant on every fourth port.
func BenchmarkAcceptsThinClos(b *testing.B) {
	tc, err := topo.NewThinClos(1024, 64, 16)
	if err != nil {
		b.Fatal(err)
	}
	m := NewNegotiator(tc, sim.NewRNG(1))
	src := 0
	var grants []Grant
	for p := 0; p < 64; p += 4 {
		dom := tc.PortDomain(src, p)
		grants = append(grants, Grant{Dst: dom[(p+3)%16], Port: p, Src: src})
	}
	matches := make([]int32, 64)
	view := &benchView{n: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Accepts(src, view, grants, matches, nil)
	}
}
