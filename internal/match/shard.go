package match

// Sharded is implemented by matchers whose per-ToR pipeline steps can run
// concurrently over disjoint ToR shards. Fork returns p handles that SHARE
// the matcher's per-ToR state — the round-robin rings (grantRings[dst] is
// only touched by Grants(dst), acceptRings[src] only by Accepts(src), so
// ToR-sharding partitions them naturally), the stateful traffic matrix, and
// per-source rotation counters — while each handle owns PRIVATE scratch
// (request stamps, grantable lists, priority tables), the state that a
// sequential matcher reuses across per-ToR calls and that concurrent calls
// would otherwise race on.
//
// The contract mirrors the engine's sequential loop:
//
//   - handle k must only be invoked for ToRs of shard k (so shared per-ToR
//     state is touched by exactly one handle);
//   - all handles run the same pipeline stage between barriers, in the
//     stage order of the sequential engine (all Accepts, barrier, all
//     Grants, all Requests) — Stateful's Feedback writes the shared matrix
//     element (dst, src), which is unique per source and therefore per
//     shard, and the barrier publishes those writes before Grants reads
//     the rows;
//   - the original matcher remains the owner: Fork may be called again
//     (e.g. after a worker-count change) and the handles of the previous
//     fork must no longer be used.
//
// Batch matchers (Iterative, Classic) satisfy Sharded through their
// embedded Negotiator: the engine runs their Match serially on the
// original instance and drives only the per-ToR Requests step on the
// forked handles — which is exactly the promoted base Requests for the
// built-in batch matchers. A batch matcher that overrides Requests must
// shadow Fork as well, so its handles carry the overridden behaviour.
type Sharded interface {
	Matcher
	Fork(p int) []Matcher
}

// scratchClone returns a copy of m with fresh private scratch and shared
// topology, rings and per-ToR state.
func (m *Negotiator) scratchClone() *Negotiator {
	n, s := m.topo.N(), m.topo.Ports()
	c := &Negotiator{
		topo:        m.topo,
		identityDom: m.identityDom,
		grantRings:  m.grantRings,
		acceptRings: m.acceptRings,
		grantable:   make([][]int32, s),
		candMask:    make([]uint64, (n+63)>>6),
	}
	c.candSum = make([]uint64, (len(c.candMask)+63)>>6)
	for p := range c.grantable {
		c.grantable[p] = make([]int32, 0, 8)
	}
	if !m.identityDom {
		c.domMask = newDomMask(m.topo)
		c.domWords = m.domWords
		c.grp, c.pos = m.grp, m.pos // read-only tables, shared
	}
	return c
}

// Fork implements Sharded for the base matcher.
func (m *Negotiator) Fork(p int) []Matcher {
	out := make([]Matcher, p)
	for k := range out {
		out[k] = m.scratchClone()
	}
	return out
}

// Fork implements Sharded: handles share the rings, each owns its priority
// scratch.
func (m *Informative) Fork(p int) []Matcher {
	out := make([]Matcher, p)
	for k := range out {
		out[k] = &Informative{
			Negotiator: m.Negotiator.scratchClone(),
			kind:       m.kind,
			portReqs:   make([][]int32, m.topo.Ports()),
		}
	}
	return out
}

// Fork implements Sharded: handles share the traffic matrix and the
// reported-bytes table. Matrix rows are written by Grants(dst) — one shard
// per dst — and by Feedback at element (g.Dst, g.Src), unique per source
// and therefore per shard; reported[src] is only touched by Requests(src).
func (m *Stateful) Fork(p int) []Matcher {
	out := make([]Matcher, p)
	for k := range out {
		out[k] = &Stateful{
			Negotiator: m.Negotiator.scratchClone(),
			epochBytes: m.epochBytes,
			matrix:     m.matrix,
			reported:   m.reported,
		}
	}
	return out
}

// Fork implements Sharded: handles share the per-source port rotation
// (only Requests(src) touches rotate[src]), each owns its per-port best
// scratch.
func (m *ProjecToR) Fork(p int) []Matcher {
	s := m.topo.Ports()
	out := make([]Matcher, p)
	for k := range out {
		out[k] = &ProjecToR{
			Negotiator: m.Negotiator.scratchClone(),
			rotate:     m.rotate,
			bestDelay:  make([]float64, s),
			bestSrc:    make([]int32, s),
		}
	}
	return out
}
