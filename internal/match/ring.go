// Package match implements NegotiaToR Matching (paper §3.2, Algorithm 1):
// the distributed REQUEST / GRANT / ACCEPT scheduling algorithm that
// computes non-conflicting port-level matches from binary ToR-level traffic
// demands, using round-robin rings inspired by RRM for fairness.
//
// The package also implements every design-choice variant the paper
// explores in §3.5 and Appendix A.2 — iterative matching, informative
// requests (data-size and weighted head-of-line delay priorities), stateful
// scheduling, and a ProjecToR-style per-port delay-priority scheduler — all
// behind the same Matcher interface so the fabric engine can swap them
// freely.
package match

import (
	"math/bits"

	"negotiator/internal/sim"
)

// Ring is a round-robin arbiter over n participants (paper Figure 3b/3c).
// The pointer marks the highest-priority participant; priority decreases
// clockwise. After a participant wins, the pointer advances to its
// successor, so the least recently granted participant is always preferred
// — the fairness/starvation-freedom property of RRM.
type Ring struct {
	n   int
	ptr int
}

// NewRing returns a ring of size n with a random initial pointer, as the
// paper's Algorithm 1 initialises its rings.
func NewRing(n int, rng *sim.RNG) *Ring {
	r := &Ring{n: n}
	if n > 0 && rng != nil {
		r.ptr = rng.Intn(n)
	}
	return r
}

// Size returns the ring size.
func (r *Ring) Size() int { return r.n }

// Pointer returns the current highest-priority position.
func (r *Ring) Pointer() int { return r.ptr }

// Pick returns the first position at or after the pointer (cyclically) for
// which want returns true, or -1 if none does. Pick does not move the
// pointer; call Advance with the winner.
func (r *Ring) Pick(want func(pos int) bool) int {
	for k := 0; k < r.n; k++ {
		pos := r.ptr + k
		if pos >= r.n {
			pos -= r.n
		}
		if want(pos) {
			return pos
		}
	}
	return -1
}

// PickMask returns the first position at or after the pointer (cyclically)
// whose bit is set in mask, or -1 when mask is empty — Ring.Pick with an
// is-set predicate, executed as a word-scan priority encoder (the
// BitArbiter structure). Bits at or above Size must not be set. Like Pick
// it does not move the pointer.
func (r *Ring) PickMask(mask []uint64) int {
	if r.n == 0 {
		return -1
	}
	w := r.ptr >> 6
	// Upper segment: bits at or after the pointer.
	for i := w; i < len(mask); i++ {
		m := mask[i]
		if i == w {
			m &^= 1<<(uint(r.ptr)&63) - 1
		}
		if m != 0 {
			return i<<6 + bits.TrailingZeros64(m)
		}
	}
	// Wrap-around segment: bits before the pointer.
	for i := 0; i <= w && i < len(mask); i++ {
		m := mask[i]
		if i == w {
			m &= 1<<(uint(r.ptr)&63) - 1
		}
		if m != 0 {
			return i<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// PickMaskSum is PickMask with a summary level: sum holds one bit per
// mask word (bit w set iff mask[w] != 0), so the scan skips runs of empty
// words 64 at a time — O(candidates + words/4096) instead of O(words),
// which kept wide-but-sparse arbitration width-proportional. Callers
// maintain sum alongside mask; both must return to all-zero between
// arbitration rounds.
func (r *Ring) PickMaskSum(mask, sum []uint64) int {
	if r.n == 0 {
		return -1
	}
	w := r.ptr >> 6
	// Upper segment: bits at or after the pointer. The pointer's own word
	// first (partial), then the summary jumps straight to the next
	// non-empty word.
	if m := mask[w] &^ (1<<(uint(r.ptr)&63) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	if i := nextMaskWord(sum, w+1); i >= 0 {
		return i<<6 + bits.TrailingZeros64(mask[i])
	}
	// Wrap-around segment: bits before the pointer.
	if i := nextMaskWord(sum, 0); i >= 0 && i < w {
		return i<<6 + bits.TrailingZeros64(mask[i])
	}
	if m := mask[w] & (1<<(uint(r.ptr)&63) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	return -1
}

// nextMaskWord returns the smallest word index >= from whose summary bit
// is set, or -1.
func nextMaskWord(sum []uint64, from int) int {
	w := from >> 6
	if w >= len(sum) {
		return -1
	}
	m := sum[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
		w++
		if w >= len(sum) {
			return -1
		}
		m = sum[w]
	}
}

// Advance moves the pointer to the position after winner, giving winner the
// lowest priority for the next arbitration.
func (r *Ring) Advance(winner int) {
	if r.n == 0 {
		return
	}
	r.ptr = winner + 1
	if r.ptr >= r.n {
		r.ptr = 0
	}
}
