package match

import (
	"fmt"
	"slices"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// HoLAlpha is the paper's weight for the lowest-priority queue in the
// weighted head-of-line delay (Appendix A.2.3): small but non-zero so
// mice-bearing pairs are scheduled promptly while elephants still register.
const HoLAlpha = 0.001

// priorityKind selects what the informative-request variants (A.2.3) carry
// and maximise.
type priorityKind int

const (
	prioDataSize priorityKind = iota // goodput-oriented: queued bytes
	prioHoLDelay                     // FCT-oriented: weighted HoL delay
)

// Informative is the informative-requests variant (Appendix A.2.3): requests
// carry a priority (aggregated queue size or weighted HoL delay) and both
// GRANT and ACCEPT pick the highest-priority candidate instead of the
// round-robin ring, with ring order breaking ties.
type Informative struct {
	*Negotiator
	kind priorityKind

	portReqs [][]int32 // scratch: per-port request indexes (thin-clos buckets)
}

// NewDataSize returns the goodput-oriented data-size priority matcher.
func NewDataSize(t topo.Topology, rng *sim.RNG) *Informative {
	return &Informative{Negotiator: NewNegotiator(t, rng), kind: prioDataSize,
		portReqs: make([][]int32, t.Ports())}
}

// NewHoLDelay returns the FCT-oriented weighted-HoL-delay priority matcher.
func NewHoLDelay(t topo.Topology, rng *sim.RNG) *Informative {
	return &Informative{Negotiator: NewNegotiator(t, rng), kind: prioHoLDelay,
		portReqs: make([][]int32, t.Ports())}
}

func (m *Informative) Name() string {
	if m.kind == prioDataSize {
		return "data-size"
	}
	return "hol-delay"
}

func (m *Informative) key(src int, view QueueView, dst int) float64 {
	if m.kind == prioDataSize {
		return float64(view.QueuedBytes(dst))
	}
	return view.WeightedHoL(dst, HoLAlpha)
}

// Requests attaches the priority information to each binary request.
func (m *Informative) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		r.Size = view.QueuedBytes(r.Dst)
		r.Delay = m.key(src, view, r.Dst)
		emit(r)
	})
}

// RequestsPure: the data-size priority is the queued-bytes figure the
// demand row already determines, but the HoL-delay key reads the queues'
// head-of-line ages against the clock — replaying a cached request would
// freeze the age it carried.
func (m *Informative) RequestsPure() bool { return m.kind == prioDataSize }

// prioOf extracts a request's carried priority.
func (m *Informative) prioOf(r Request) float64 {
	if m.kind == prioDataSize {
		return float64(r.Size)
	}
	return r.Delay
}

// Grants picks, per port, the requester with the highest priority; the ring
// is still advanced past the winner so ties rotate fairly. The scans run
// over the REQUESTS (O(active) per port), tracking cyclic distance from the
// ring pointer so ties resolve to exactly the candidate the dense
// ring-order domain walk picked first.
func (m *Informative) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	s := m.topo.Ports()
	rings := m.grantRings[dst]
	if m.identityDom {
		// One shared domain: position == ToR id, every requester is a
		// candidate on every port.
		ring := rings[0]
		n := ring.Size()
		for port := 0; port < s; port++ {
			start := ring.Pointer()
			best, bestPos, bestDist := -1.0, -1, 0
			for _, r := range reqs {
				dist := r.Src - start
				if dist < 0 {
					dist += n
				}
				if p := m.prioOf(r); p > best || (p == best && dist < bestDist) {
					best, bestPos, bestDist = p, r.Src, dist
				}
			}
			if bestPos < 0 {
				continue
			}
			ring.Advance(bestPos)
			emit(Grant{Dst: dst, Port: port, Src: bestPos})
		}
		return
	}
	// Thin-clos: each requester reaches dst on exactly one port; bucket
	// the requests per port, then pick per port in domain-position space.
	for i, r := range reqs {
		if p := m.topo.PathPort(r.Src, dst); p >= 0 {
			m.portReqs[p] = append(m.portReqs[p], int32(i))
		}
	}
	for port := 0; port < s; port++ {
		cand := m.portReqs[port]
		if len(cand) == 0 {
			continue
		}
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		w := ring.Size()
		start := ring.Pointer()
		best, bestPos, bestDist := -1.0, -1, 0
		for _, ri := range cand {
			r := reqs[ri]
			pos := m.topo.DomainPos(dst, port, r.Src)
			if pos < 0 {
				continue
			}
			dist := pos - start
			if dist < 0 {
				dist += w
			}
			if p := m.prioOf(r); p > best || (p == best && dist < bestDist) {
				best, bestPos, bestDist = p, pos, dist
			}
		}
		m.portReqs[port] = cand[:0]
		if bestPos < 0 {
			continue
		}
		ring.Advance(bestPos)
		emit(Grant{Dst: dst, Port: port, Src: m.topo.PortDomain(dst, port)[bestPos]})
	}
}

// Accepts picks, per port, the granting destination with the highest local
// priority (the source consults its own queues).
func (m *Informative) Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(Grant, bool)) {
	for p := range matches {
		matches[p] = -1
		m.grantable[p] = m.grantable[p][:0]
	}
	for _, g := range grants {
		m.grantable[g.Port] = append(m.grantable[g.Port], int32(g.Dst))
	}
	for port := range matches {
		cand := m.grantable[port]
		if len(cand) == 0 {
			continue
		}
		best, bestDst := -1.0, int32(-1)
		for _, d := range cand {
			if k := m.key(src, view, int(d)); k > best {
				best, bestDst = k, d
			}
		}
		matches[port] = bestDst
	}
	if feedback != nil {
		for _, g := range grants {
			feedback(g, matches[g.Port] == int32(g.Dst))
		}
	}
}

// Stateful is the stateful-scheduling variant (Appendix A.2.4): each
// destination maintains a traffic matrix of estimated pending bytes per
// source, fed by request-carried newly-arrived sizes; grants are suppressed
// for sources the matrix believes are drained, and accept/reject feedback
// confirms or reverts the matrix decrements.
type Stateful struct {
	*Negotiator
	epochBytes int64 // bytes one matched port moves per scheduled phase

	matrix   [][]int64 // matrix[dst][src]: estimated pending bytes
	reported [][]int64 // reported[src][dst]: cumulative bytes already requested
}

// NewStateful returns the stateful matcher. epochBytes is the per-port
// scheduled-phase capacity used as the per-grant matrix decrement.
func NewStateful(t topo.Topology, rng *sim.RNG, epochBytes int64) *Stateful {
	n := t.N()
	m := &Stateful{Negotiator: NewNegotiator(t, rng), epochBytes: epochBytes}
	m.matrix = make([][]int64, n)
	m.reported = make([][]int64, n)
	for i := 0; i < n; i++ {
		m.matrix[i] = make([]int64, n)
		m.reported[i] = make([]int64, n)
	}
	return m
}

func (m *Stateful) Name() string { return "stateful" }

// RequestsPure: each emitted request advances the reported-bytes cursor,
// and its NewBytes field depends on that cursor — a cached emission would
// re-report bytes the destination's matrix already counted.
func (m *Stateful) RequestsPure() bool { return false }

// Requests reports newly arrived bytes along with each binary request.
func (m *Stateful) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		cum := view.CumInjected(r.Dst)
		r.NewBytes = cum - m.reported[src][r.Dst]
		m.reported[src][r.Dst] = cum
		emit(r)
	})
}

// Grants updates the matrix from the requests, then grants only to sources
// with matrix-positive demand, temporarily decrementing per grant. The
// candidate set lives in a bitmask (ToR space on the parallel network,
// domain-position space per port on thin-clos), so every pick is a
// Ring.PickMask word-scan and a drained source is removed by clearing its
// bit — no O(domain) predicate walks.
func (m *Stateful) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	row := m.matrix[dst]
	s := m.topo.Ports()
	rings := m.grantRings[dst]
	if m.identityDom {
		for _, r := range reqs {
			row[r.Src] += r.NewBytes
			if row[r.Src] > 0 {
				m.candMask[r.Src>>6] |= 1 << (uint(r.Src) & 63)
			}
		}
		ring := rings[0]
		for port := 0; port < s; port++ {
			pos := ring.PickMask(m.candMask)
			if pos < 0 {
				continue
			}
			ring.Advance(pos)
			// Temporary decrement; reverted on reject via Feedback. A
			// drained source leaves the candidate mask.
			row[pos] -= m.epochBytes
			if row[pos] <= 0 {
				m.candMask[pos>>6] &^= 1 << (uint(pos) & 63)
			}
			emit(Grant{Dst: dst, Port: port, Src: pos})
		}
		for _, r := range reqs {
			m.candMask[r.Src>>6] &^= 1 << (uint(r.Src) & 63)
		}
		return
	}
	for _, r := range reqs {
		row[r.Src] += r.NewBytes
		if row[r.Src] > 0 {
			if p, pos := m.portAndPos(dst, r.Src); p >= 0 {
				m.domMask[p][pos>>6] |= 1 << (uint(pos) & 63)
			}
		}
	}
	for port := 0; port < s; port++ {
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		pos := ring.PickMask(m.domMask[port])
		if pos < 0 {
			continue
		}
		ring.Advance(pos)
		src := m.topo.PortDomain(dst, port)[pos]
		row[src] -= m.epochBytes
		if row[src] <= 0 {
			m.domMask[port][pos>>6] &^= 1 << (uint(pos) & 63)
		}
		emit(Grant{Dst: dst, Port: port, Src: src})
	}
	// Exact-bits clear for sparse request sets (clearing a never-set bit
	// is a no-op, so requests whose matrix row stayed non-positive are
	// harmless); wholesale when dense.
	m.clearDomMasks(dst, reqs)
}

// Feedback reverts the temporary matrix decrement of rejected grants and
// floors accepted entries at zero (piggybacked bytes drain queues the
// matrix cannot see, §3.4.1).
func (m *Stateful) Feedback(g Grant, accepted bool) {
	row := m.matrix[g.Dst]
	if !accepted {
		row[g.Src] += m.epochBytes
	}
	if row[g.Src] < 0 {
		row[g.Src] = 0
	}
}

// Matrix exposes the estimated pending bytes for tests.
func (m *Stateful) Matrix(dst, src int) int64 { return m.matrix[dst][src] }

// ProjecToR is the ProjecToR-style scheduler transferred to NegotiaToR's
// setting (Appendix A.2.5): requests are per-port (the sending port is
// chosen before scheduling), carry the bundle's waiting delay, and both
// sides resolve conflicts by largest delay, with a single iteration.
type ProjecToR struct {
	*Negotiator
	rotate []int // per-source rotating first port, spreading port bindings

	bestDelay []float64 // scratch: per-PORT best delay at the granting dst
	bestSrc   []int32   // scratch: per-PORT best source at the granting dst
}

// NewProjecToR returns the ProjecToR-style matcher.
func NewProjecToR(t topo.Topology, rng *sim.RNG) *ProjecToR {
	return &ProjecToR{
		Negotiator: NewNegotiator(t, rng),
		rotate:     make([]int, t.N()),
		bestDelay:  make([]float64, t.Ports()),
		bestSrc:    make([]int32, t.Ports()),
	}
}

func (m *ProjecToR) Name() string { return "projector" }

// RequestsIdleSafe: the rotating first-port cursor advances on EVERY
// Requests call, demand or not — skipping calls for idle sources (or
// idle rounds) would change later port bindings.
func (m *ProjecToR) RequestsIdleSafe() bool { return false }

// RequestsPure: Requests mutates the rotation cursor and carries a
// clock-dependent waiting delay.
func (m *ProjecToR) RequestsPure() bool { return false }

// Requests binds each demanded destination to a specific source port
// up-front (rotating round-robin across ports), attaching the pair's
// waiting delay. On single-path topologies the bound port is the only path.
func (m *ProjecToR) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	s := m.topo.Ports()
	k := m.rotate[src]
	m.rotate[src]++
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		if p := m.topo.PathPort(src, r.Dst); p >= 0 {
			r.Port = p
		} else {
			r.Port = k % s
			k++
		}
		r.Delay = view.WeightedHoL(r.Dst, 0.5)
		emit(r)
	})
}

// Grants picks, per destination port, the largest-delay request bound to
// that port — one pass over the REQUESTS into per-port bests, replacing
// the O(N) domain walk per port (requests already carry their bound port,
// so the port table reduces to S running maxima; ties resolve to the
// smallest source, exactly as the ascending domain scan did).
func (m *ProjecToR) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	s := m.topo.Ports()
	for p := 0; p < s; p++ {
		m.bestDelay[p] = -1
		m.bestSrc[p] = -1
	}
	for _, r := range reqs {
		p := r.Port
		if p < 0 || p >= s {
			continue
		}
		if r.Delay > m.bestDelay[p] || (r.Delay == m.bestDelay[p] && m.bestSrc[p] >= 0 && int32(r.Src) < m.bestSrc[p]) {
			m.bestDelay[p], m.bestSrc[p] = r.Delay, int32(r.Src)
		}
	}
	for port := 0; port < s; port++ {
		if m.bestSrc[port] < 0 {
			continue
		}
		emit(Grant{Dst: dst, Port: port, Src: int(m.bestSrc[port])})
	}
}

// Accepts picks, per source port, the largest-delay granting destination.
func (m *ProjecToR) Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(Grant, bool)) {
	for p := range matches {
		matches[p] = -1
		m.grantable[p] = m.grantable[p][:0]
	}
	for _, g := range grants {
		m.grantable[g.Port] = append(m.grantable[g.Port], int32(g.Dst))
	}
	for port := range matches {
		best, bestDst := -1.0, int32(-1)
		for _, d := range m.grantable[port] {
			if k := view.WeightedHoL(int(d), 0.5); k > best {
				best, bestDst = k, d
			}
		}
		matches[port] = bestDst
	}
	if feedback != nil {
		for _, g := range grants {
			feedback(g, matches[g.Port] == int32(g.Dst))
		}
	}
}

// BatchStats reports grant/accept counts from a batch matcher for the
// match-ratio metric.
type BatchStats struct {
	Grants, Accepts int64
}

// BatchMatcher computes a whole-fabric matching from one epoch's request
// snapshot in a single call. The fabric engine uses it for the iterative
// variant, whose multiple request/grant/accept rounds would otherwise span
// several predefined phases; the engine models that cost through
// MatchDelay.
type BatchMatcher interface {
	Matcher
	// Match writes matches[src][port] (the matched destination, or -1)
	// for every source it returns in touched — the sources that received
	// at least one grant. Rows of sources NOT in touched are left
	// untouched and must be treated as all-unmatched by the caller; this
	// is what keeps a sparse epoch's Match O(active), with no O(N·S)
	// clear of the whole matrix. touched is unsorted scratch, valid only
	// until the next Match call.
	Match(reqs []Request, matches [][]int32, stats *BatchStats) (touched []int32)
}

// batchScratch is the O(active) bookkeeping the batch matchers share.
// The per-(ToR, port) busy sets are epoch-stamped — bumping the stamp
// clears both in O(1), replacing the O(N·S) srcFree/dstFree sweep that
// used to open every Match — and the touched list records which sources'
// match rows were written (each row is cleared to -1 once, when its
// source first appears in a grant).
type batchScratch struct {
	stamp            uint64
	srcBusy, dstBusy []uint64 // busy iff entry == stamp; index tor*S+port
	touchStamp       []uint64 // matches row cleared this call iff == stamp
	touched          []int32
	candPos          []int32 // candidate domain positions of one pick
}

func newBatchScratch(n, s int) batchScratch {
	return batchScratch{
		srcBusy:    make([]uint64, n*s),
		dstBusy:    make([]uint64, n*s),
		touchStamp: make([]uint64, n),
	}
}

// begin opens a Match call: clears both busy sets and the touched list.
func (b *batchScratch) begin() {
	b.stamp++
	b.touched = b.touched[:0]
}

// touch clears src's match row on its first grant of this call.
func (b *batchScratch) touch(src int, matches [][]int32) {
	if b.touchStamp[src] == b.stamp {
		return
	}
	b.touchStamp[src] = b.stamp
	b.touched = append(b.touched, int32(src))
	row := matches[src]
	for p := range row {
		row[p] = -1
	}
}

// domainPos maps a ToR to its position in PortDomain(owner, port): the id
// itself on the shared identity domain, a table read on thin-clos (with
// the membership check ports imply), topo.DomainPos otherwise.
func (m *Negotiator) domainPos(owner, port, tor int) int {
	if m.identityDom {
		return tor
	}
	if m.grp != nil {
		p := m.grp[tor] + m.grp[owner]
		if s := int32(len(m.domMask)); p >= s {
			p -= s
		}
		if int(p) != port {
			return -1
		}
		return int(m.pos[tor])
	}
	return m.topo.DomainPos(owner, port, tor)
}

// pickPositions arbitrates among candidate domain positions with the
// ring: the candidates become a bitmask (ToR space for the identity
// domain, the port's domain-position space otherwise) and the pick is a
// Ring.PickMask word-scan from the pointer — O(candidates + words)
// instead of an O(domain) predicate walk. The mask is cleared before
// returning. The pointer does not move; callers Advance per their
// discipline.
func (m *Negotiator) pickPositions(ring *Ring, port int, cands []int32) int {
	if len(cands) == 0 {
		return -1
	}
	mask := m.candMask
	if !m.identityDom {
		mask = m.domMask[port]
	}
	for _, p := range cands {
		mask[p>>6] |= 1 << (uint(p) & 63)
	}
	pos := ring.PickMask(mask)
	for _, p := range cands {
		mask[p>>6] &^= 1 << (uint(p) & 63)
	}
	return pos
}

// Iterative is the iterative variant of NegotiaToR Matching
// (Appendix A.2.1): after the base request/grant/accept round, unmatched
// ports re-request for further rounds. Each extra iteration costs three
// more epochs of scheduling delay.
type Iterative struct {
	*Negotiator
	iters int

	b batchScratch
	// Persistent Match scratch: per-dst requester lists plus the sorted
	// distinct-dst index, and per-src grant lists plus the sorted
	// distinct-src index, so the grant/accept sweeps visit only active
	// ToRs (ascending, identical order to the dense 0..N-1 scans) and
	// the per-call slice allocations are gone.
	reqBy     [][]int32
	reqDsts   []int32
	grants    [][]Grant
	grantSrcs []int32
}

// NewIterative returns the iterative matcher with the given iteration
// count (the paper evaluates 1, 3 and 5).
func NewIterative(t topo.Topology, rng *sim.RNG, iters int) *Iterative {
	if iters < 1 {
		iters = 1
	}
	n, s := t.N(), t.Ports()
	m := &Iterative{Negotiator: NewNegotiator(t, rng), iters: iters}
	m.b = newBatchScratch(n, s)
	m.reqBy = make([][]int32, n)
	m.grants = make([][]Grant, n)
	return m
}

func (m *Iterative) Name() string { return fmt.Sprintf("iterative-%d", m.iters) }

// MatchDelay: 2 epochs for the first round plus 3 per extra iteration
// (Appendix A.2.1: "For one more iteration, the scheduling delay is
// enlarged by three epochs").
func (m *Iterative) MatchDelay() int { return 2 + 3*(m.iters-1) }

// Match runs the iterations over the request snapshot. The grant sweep
// visits only requested destinations and the accept sweep only sources
// holding grants, both through sorted distinct-ToR indexes that reproduce
// the dense ascending scans exactly; port busyness is epoch-stamped (no
// O(N·S) clear per call), every ring pick is a Ring.PickMask word-scan
// over the candidates' domain positions, and only touched sources' match
// rows are written (see BatchMatcher.Match).
func (m *Iterative) Match(reqs []Request, matches [][]int32, stats *BatchStats) []int32 {
	s := m.topo.Ports()
	b := &m.b
	b.begin()
	for _, dst := range m.reqDsts {
		m.reqBy[dst] = m.reqBy[dst][:0]
	}
	m.reqDsts = m.reqDsts[:0]
	for _, r := range reqs {
		if len(m.reqBy[r.Dst]) == 0 {
			m.reqDsts = append(m.reqDsts, int32(r.Dst))
		}
		m.reqBy[r.Dst] = append(m.reqBy[r.Dst], int32(r.Src))
	}
	slices.Sort(m.reqDsts)
	for iter := 0; iter < m.iters; iter++ {
		// GRANT at each requested dst over its free ports.
		granted := false
		for _, dst32 := range m.reqDsts {
			dst := int(dst32)
			rings := m.grantRings[dst]
			for port := 0; port < s; port++ {
				if b.dstBusy[dst*s+port] == b.stamp {
					continue
				}
				ring := rings[0]
				if len(rings) > 1 {
					ring = rings[port]
				}
				b.candPos = b.candPos[:0]
				for _, src32 := range m.reqBy[dst] {
					src := int(src32)
					if src == dst || b.srcBusy[src*s+port] == b.stamp {
						continue
					}
					if pos := m.domainPos(dst, port, src); pos >= 0 {
						b.candPos = append(b.candPos, int32(pos))
					}
				}
				pos := m.pickPositions(ring, port, b.candPos)
				if pos < 0 {
					continue
				}
				ring.Advance(pos)
				src := m.topo.PortDomain(dst, port)[pos]
				b.touch(src, matches)
				if len(m.grants[src]) == 0 {
					m.grantSrcs = append(m.grantSrcs, int32(src))
				}
				m.grants[src] = append(m.grants[src], Grant{Dst: dst, Port: port, Src: src})
				if stats != nil {
					stats.Grants++
				}
				granted = true
			}
		}
		if !granted {
			break
		}
		// ACCEPT at each granted src over its free ports.
		slices.Sort(m.grantSrcs)
		for _, src32 := range m.grantSrcs {
			src := int(src32)
			gs := m.grants[src]
			for port := 0; port < s; port++ {
				if b.srcBusy[src*s+port] == b.stamp {
					continue
				}
				b.candPos = b.candPos[:0]
				for _, g := range gs {
					if g.Port != port {
						continue
					}
					if pos := m.domainPos(src, port, g.Dst); pos >= 0 {
						b.candPos = append(b.candPos, int32(pos))
					}
				}
				ring := m.acceptRings[src][port]
				pos := m.pickPositions(ring, port, b.candPos)
				if pos < 0 {
					continue
				}
				ring.Advance(pos)
				dst := m.topo.PortDomain(src, port)[pos]
				matches[src][port] = int32(dst)
				b.srcBusy[src*s+port] = b.stamp
				b.dstBusy[dst*s+port] = b.stamp
				if stats != nil {
					stats.Accepts++
				}
			}
			m.grants[src] = m.grants[src][:0]
		}
		m.grantSrcs = m.grantSrcs[:0]
	}
	return b.touched
}
