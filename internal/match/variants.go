package match

import (
	"fmt"
	"slices"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// HoLAlpha is the paper's weight for the lowest-priority queue in the
// weighted head-of-line delay (Appendix A.2.3): small but non-zero so
// mice-bearing pairs are scheduled promptly while elephants still register.
const HoLAlpha = 0.001

// priorityKind selects what the informative-request variants (A.2.3) carry
// and maximise.
type priorityKind int

const (
	prioDataSize priorityKind = iota // goodput-oriented: queued bytes
	prioHoLDelay                     // FCT-oriented: weighted HoL delay
)

// Informative is the informative-requests variant (Appendix A.2.3): requests
// carry a priority (aggregated queue size or weighted HoL delay) and both
// GRANT and ACCEPT pick the highest-priority candidate instead of the
// round-robin ring, with ring order breaking ties.
type Informative struct {
	*Negotiator
	kind priorityKind

	prio []float64 // scratch: per-source priority at the granting dst
}

// NewDataSize returns the goodput-oriented data-size priority matcher.
func NewDataSize(t topo.Topology, rng *sim.RNG) *Informative {
	return &Informative{Negotiator: NewNegotiator(t, rng), kind: prioDataSize,
		prio: make([]float64, t.N())}
}

// NewHoLDelay returns the FCT-oriented weighted-HoL-delay priority matcher.
func NewHoLDelay(t topo.Topology, rng *sim.RNG) *Informative {
	return &Informative{Negotiator: NewNegotiator(t, rng), kind: prioHoLDelay,
		prio: make([]float64, t.N())}
}

func (m *Informative) Name() string {
	if m.kind == prioDataSize {
		return "data-size"
	}
	return "hol-delay"
}

func (m *Informative) key(src int, view QueueView, dst int) float64 {
	if m.kind == prioDataSize {
		return float64(view.QueuedBytes(dst))
	}
	return view.WeightedHoL(dst, HoLAlpha)
}

// Requests attaches the priority information to each binary request.
func (m *Informative) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		r.Size = view.QueuedBytes(r.Dst)
		r.Delay = m.key(src, view, r.Dst)
		emit(r)
	})
}

// Grants picks, per port, the requester with the highest priority; the ring
// is still advanced past the winner so ties rotate fairly.
func (m *Informative) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	m.stamp++
	for _, r := range reqs {
		m.reqStamp[r.Src] = m.stamp
		p := r.Delay
		if m.kind == prioDataSize {
			p = float64(r.Size)
		}
		m.prio[r.Src] = p
	}
	s := m.topo.Ports()
	rings := m.grantRings[dst]
	for port := 0; port < s; port++ {
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		dom := m.topo.PortDomain(dst, port)
		best, bestPos := -1.0, -1
		// Scan in ring order so equal priorities round-robin.
		start := ring.Pointer()
		for k := 0; k < len(dom); k++ {
			pos := start + k
			if pos >= len(dom) {
				pos -= len(dom)
			}
			src := dom[pos]
			if m.reqStamp[src] == m.stamp && m.prio[src] > best {
				best, bestPos = m.prio[src], pos
			}
		}
		if bestPos < 0 {
			continue
		}
		ring.Advance(bestPos)
		emit(Grant{Dst: dst, Port: port, Src: dom[bestPos]})
	}
}

// Accepts picks, per port, the granting destination with the highest local
// priority (the source consults its own queues).
func (m *Informative) Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(Grant, bool)) {
	for p := range matches {
		matches[p] = -1
		m.grantable[p] = m.grantable[p][:0]
	}
	for _, g := range grants {
		m.grantable[g.Port] = append(m.grantable[g.Port], int32(g.Dst))
	}
	for port := range matches {
		cand := m.grantable[port]
		if len(cand) == 0 {
			continue
		}
		best, bestDst := -1.0, int32(-1)
		for _, d := range cand {
			if k := m.key(src, view, int(d)); k > best {
				best, bestDst = k, d
			}
		}
		matches[port] = bestDst
	}
	if feedback != nil {
		for _, g := range grants {
			feedback(g, matches[g.Port] == int32(g.Dst))
		}
	}
}

// Stateful is the stateful-scheduling variant (Appendix A.2.4): each
// destination maintains a traffic matrix of estimated pending bytes per
// source, fed by request-carried newly-arrived sizes; grants are suppressed
// for sources the matrix believes are drained, and accept/reject feedback
// confirms or reverts the matrix decrements.
type Stateful struct {
	*Negotiator
	epochBytes int64 // bytes one matched port moves per scheduled phase

	matrix   [][]int64 // matrix[dst][src]: estimated pending bytes
	reported [][]int64 // reported[src][dst]: cumulative bytes already requested
}

// NewStateful returns the stateful matcher. epochBytes is the per-port
// scheduled-phase capacity used as the per-grant matrix decrement.
func NewStateful(t topo.Topology, rng *sim.RNG, epochBytes int64) *Stateful {
	n := t.N()
	m := &Stateful{Negotiator: NewNegotiator(t, rng), epochBytes: epochBytes}
	m.matrix = make([][]int64, n)
	m.reported = make([][]int64, n)
	for i := 0; i < n; i++ {
		m.matrix[i] = make([]int64, n)
		m.reported[i] = make([]int64, n)
	}
	return m
}

func (m *Stateful) Name() string { return "stateful" }

// Requests reports newly arrived bytes along with each binary request.
func (m *Stateful) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		cum := view.CumInjected(r.Dst)
		r.NewBytes = cum - m.reported[src][r.Dst]
		m.reported[src][r.Dst] = cum
		emit(r)
	})
}

// Grants updates the matrix from the requests, then grants only to sources
// with matrix-positive demand, temporarily decrementing per grant.
func (m *Stateful) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	m.stamp++
	row := m.matrix[dst]
	for _, r := range reqs {
		row[r.Src] += r.NewBytes
		if row[r.Src] > 0 {
			m.reqStamp[r.Src] = m.stamp
		}
	}
	s := m.topo.Ports()
	rings := m.grantRings[dst]
	for port := 0; port < s; port++ {
		ring := rings[0]
		if len(rings) > 1 {
			ring = rings[port]
		}
		dom := m.topo.PortDomain(dst, port)
		pos := ring.Pick(func(p int) bool { return m.reqStamp[dom[p]] == m.stamp })
		if pos < 0 {
			continue
		}
		ring.Advance(pos)
		src := dom[pos]
		// Temporary decrement; reverted on reject via Feedback. Stamp 0 is
		// never current (the stamp pre-increments), so it unsets the entry.
		row[src] -= m.epochBytes
		if row[src] <= 0 {
			m.reqStamp[src] = 0
		}
		emit(Grant{Dst: dst, Port: port, Src: src})
	}
}

// Feedback reverts the temporary matrix decrement of rejected grants and
// floors accepted entries at zero (piggybacked bytes drain queues the
// matrix cannot see, §3.4.1).
func (m *Stateful) Feedback(g Grant, accepted bool) {
	row := m.matrix[g.Dst]
	if !accepted {
		row[g.Src] += m.epochBytes
	}
	if row[g.Src] < 0 {
		row[g.Src] = 0
	}
}

// Matrix exposes the estimated pending bytes for tests.
func (m *Stateful) Matrix(dst, src int) int64 { return m.matrix[dst][src] }

// ProjecToR is the ProjecToR-style scheduler transferred to NegotiaToR's
// setting (Appendix A.2.5): requests are per-port (the sending port is
// chosen before scheduling), carry the bundle's waiting delay, and both
// sides resolve conflicts by largest delay, with a single iteration.
type ProjecToR struct {
	*Negotiator
	rotate []int // per-source rotating first port, spreading port bindings

	delay []float64 // scratch: per-source delay at the granting dst
	port  []int32   // scratch: per-source requested port at dst
}

// NewProjecToR returns the ProjecToR-style matcher.
func NewProjecToR(t topo.Topology, rng *sim.RNG) *ProjecToR {
	return &ProjecToR{
		Negotiator: NewNegotiator(t, rng),
		rotate:     make([]int, t.N()),
		delay:      make([]float64, t.N()),
		port:       make([]int32, t.N()),
	}
}

func (m *ProjecToR) Name() string { return "projector" }

// Requests binds each demanded destination to a specific source port
// up-front (rotating round-robin across ports), attaching the pair's
// waiting delay. On single-path topologies the bound port is the only path.
func (m *ProjecToR) Requests(src int, view QueueView, now sim.Time, threshold int64, emit func(Request)) {
	s := m.topo.Ports()
	k := m.rotate[src]
	m.rotate[src]++
	m.Negotiator.Requests(src, view, now, threshold, func(r Request) {
		if p := m.topo.PathPort(src, r.Dst); p >= 0 {
			r.Port = p
		} else {
			r.Port = k % s
			k++
		}
		r.Delay = view.WeightedHoL(r.Dst, 0.5)
		emit(r)
	})
}

// Grants picks, per destination port, the largest-delay request bound to
// that port. Requester membership is the epoch-stamped set, replacing the
// O(N) port-table clear per granting destination.
func (m *ProjecToR) Grants(dst int, reqs []Request, emit func(Grant)) {
	if len(reqs) == 0 {
		return
	}
	m.stamp++
	for _, r := range reqs {
		m.reqStamp[r.Src] = m.stamp
		m.port[r.Src] = int32(r.Port)
		m.delay[r.Src] = r.Delay
	}
	s := m.topo.Ports()
	for port := 0; port < s; port++ {
		dom := m.topo.PortDomain(dst, port)
		best, bestSrc := -1.0, -1
		for _, src := range dom {
			if m.reqStamp[src] == m.stamp && m.port[src] == int32(port) && m.delay[src] > best {
				best, bestSrc = m.delay[src], src
			}
		}
		if bestSrc < 0 {
			continue
		}
		emit(Grant{Dst: dst, Port: port, Src: bestSrc})
	}
}

// Accepts picks, per source port, the largest-delay granting destination.
func (m *ProjecToR) Accepts(src int, view QueueView, grants []Grant, matches []int32, feedback func(Grant, bool)) {
	for p := range matches {
		matches[p] = -1
		m.grantable[p] = m.grantable[p][:0]
	}
	for _, g := range grants {
		m.grantable[g.Port] = append(m.grantable[g.Port], int32(g.Dst))
	}
	for port := range matches {
		best, bestDst := -1.0, int32(-1)
		for _, d := range m.grantable[port] {
			if k := view.WeightedHoL(int(d), 0.5); k > best {
				best, bestDst = k, d
			}
		}
		matches[port] = bestDst
	}
	if feedback != nil {
		for _, g := range grants {
			feedback(g, matches[g.Port] == int32(g.Dst))
		}
	}
}

// BatchStats reports grant/accept counts from a batch matcher for the
// match-ratio metric.
type BatchStats struct {
	Grants, Accepts int64
}

// BatchMatcher computes a whole-fabric matching from one epoch's request
// snapshot in a single call. The fabric engine uses it for the iterative
// variant, whose multiple request/grant/accept rounds would otherwise span
// several predefined phases; the engine models that cost through
// MatchDelay.
type BatchMatcher interface {
	Matcher
	// Match fills matches[src][port] with the matched destination or -1.
	Match(reqs []Request, matches [][]int32, stats *BatchStats)
}

// Iterative is the iterative variant of NegotiaToR Matching
// (Appendix A.2.1): after the base request/grant/accept round, unmatched
// ports re-request for further rounds. Each extra iteration costs three
// more epochs of scheduling delay.
type Iterative struct {
	*Negotiator
	iters int

	srcFree, dstFree [][]bool
	// Persistent Match scratch: per-dst requester lists plus the sorted
	// distinct-dst index, and per-src grant lists plus the sorted
	// distinct-src index, so the grant/accept sweeps visit only active
	// ToRs (ascending, identical order to the dense 0..N-1 scans) and
	// the per-call slice allocations are gone.
	reqBy     [][]int32
	reqDsts   []int32
	grants    [][]Grant
	grantSrcs []int32
}

// NewIterative returns the iterative matcher with the given iteration
// count (the paper evaluates 1, 3 and 5).
func NewIterative(t topo.Topology, rng *sim.RNG, iters int) *Iterative {
	if iters < 1 {
		iters = 1
	}
	n, s := t.N(), t.Ports()
	m := &Iterative{Negotiator: NewNegotiator(t, rng), iters: iters}
	m.srcFree = make([][]bool, n)
	m.dstFree = make([][]bool, n)
	for i := 0; i < n; i++ {
		m.srcFree[i] = make([]bool, s)
		m.dstFree[i] = make([]bool, s)
	}
	m.reqBy = make([][]int32, n)
	m.grants = make([][]Grant, n)
	return m
}

func (m *Iterative) Name() string { return fmt.Sprintf("iterative-%d", m.iters) }

// MatchDelay: 2 epochs for the first round plus 3 per extra iteration
// (Appendix A.2.1: "For one more iteration, the scheduling delay is
// enlarged by three epochs").
func (m *Iterative) MatchDelay() int { return 2 + 3*(m.iters-1) }

// Match runs the iterations over the request snapshot. The grant sweep
// visits only requested destinations and the accept sweep only sources
// holding grants, both through sorted distinct-ToR indexes that reproduce
// the dense ascending scans exactly; requester membership is an
// epoch-stamped set (no O(N) clear per destination).
func (m *Iterative) Match(reqs []Request, matches [][]int32, stats *BatchStats) {
	n, s := m.topo.N(), m.topo.Ports()
	for i := 0; i < n; i++ {
		for p := 0; p < s; p++ {
			m.srcFree[i][p] = true
			m.dstFree[i][p] = true
			matches[i][p] = -1
		}
	}
	for _, dst := range m.reqDsts {
		m.reqBy[dst] = m.reqBy[dst][:0]
	}
	m.reqDsts = m.reqDsts[:0]
	for _, r := range reqs {
		if len(m.reqBy[r.Dst]) == 0 {
			m.reqDsts = append(m.reqDsts, int32(r.Dst))
		}
		m.reqBy[r.Dst] = append(m.reqBy[r.Dst], int32(r.Src))
	}
	slices.Sort(m.reqDsts)
	for iter := 0; iter < m.iters; iter++ {
		// GRANT at each requested dst over its free ports.
		granted := false
		for _, dst32 := range m.reqDsts {
			dst := int(dst32)
			m.stamp++
			for _, src := range m.reqBy[dst] {
				m.reqStamp[src] = m.stamp
			}
			rings := m.grantRings[dst]
			for port := 0; port < s; port++ {
				if !m.dstFree[dst][port] {
					continue
				}
				ring := rings[0]
				if len(rings) > 1 {
					ring = rings[port]
				}
				dom := m.topo.PortDomain(dst, port)
				pos := ring.Pick(func(p int) bool {
					src := dom[p]
					return m.reqStamp[src] == m.stamp && src != dst && m.srcFree[src][port]
				})
				if pos < 0 {
					continue
				}
				ring.Advance(pos)
				src := dom[pos]
				if len(m.grants[src]) == 0 {
					m.grantSrcs = append(m.grantSrcs, int32(src))
				}
				m.grants[src] = append(m.grants[src], Grant{Dst: dst, Port: port, Src: src})
				if stats != nil {
					stats.Grants++
				}
				granted = true
			}
		}
		if !granted {
			break
		}
		// ACCEPT at each granted src over its free ports.
		slices.Sort(m.grantSrcs)
		for _, src32 := range m.grantSrcs {
			src := int(src32)
			gs := m.grants[src]
			for port := 0; port < s; port++ {
				if !m.srcFree[src][port] {
					continue
				}
				ring := m.acceptRings[src][port]
				dom := m.topo.PortDomain(src, port)
				pos := ring.Pick(func(p int) bool {
					d := int32(dom[p])
					for _, g := range gs {
						if g.Port == port && int32(g.Dst) == d {
							return true
						}
					}
					return false
				})
				if pos < 0 {
					continue
				}
				ring.Advance(pos)
				dst := dom[pos]
				matches[src][port] = int32(dst)
				m.srcFree[src][port] = false
				m.dstFree[dst][port] = false
				if stats != nil {
					stats.Accepts++
				}
			}
			m.grants[src] = m.grants[src][:0]
		}
		m.grantSrcs = m.grantSrcs[:0]
	}
}
