// Checkpoint support: the only state a matcher carries across epochs is
// its round-robin ring pointers plus, per variant, the stateful demand
// matrices, the ProjecToR rotation counters, and the classic PIM
// tie-break RNG. Everything else (candidate masks, per-epoch request
// buffers, batch scratch) is rebuilt from scratch every epoch and is
// deliberately not serialized.
//
// Fork shares exactly this persistent state between a matcher and its
// per-shard clones (see shard.go), so snapshotting and restoring the
// engine's original matcher covers every worker count.
package match

import (
	"fmt"

	"negotiator/internal/snap"
)

// SetPointer restores a ring's arbitration pointer from a checkpoint.
func (r *Ring) SetPointer(p int) error {
	if p < 0 || p > r.n || (p == r.n && r.n != 0) {
		return fmt.Errorf("match: restored ring pointer %d out of range [0, %d)", p, r.n)
	}
	r.ptr = p
	return nil
}

// matcherKind names each variant inside the payload, so a restore into
// the wrong scheduler configuration fails loudly instead of scrambling
// ring state.
func matcherKind(m Matcher) (string, bool) {
	switch m.(type) {
	case *Negotiator:
		return "matching", true
	case *Informative:
		return "informative", true
	case *Stateful:
		return "stateful", true
	case *ProjecToR:
		return "projector", true
	case *Iterative:
		return "iterative", true
	case *Classic:
		return "classic", true
	}
	return "", false
}

// SnapshotState appends the matcher's persistent state to e.
func SnapshotState(m Matcher, e *snap.Enc) error {
	kind, ok := matcherKind(m)
	if !ok {
		return fmt.Errorf("match: matcher %T does not support snapshots", m)
	}
	e.Str(kind)
	switch v := m.(type) {
	case *Negotiator:
		snapshotRings(v, e)
	case *Informative:
		snapshotRings(v.Negotiator, e)
	case *Stateful:
		snapshotRings(v.Negotiator, e)
		encodeMatrix(e, v.matrix)
		encodeMatrix(e, v.reported)
	case *ProjecToR:
		snapshotRings(v.Negotiator, e)
		e.U32(uint32(len(v.rotate)))
		for _, r := range v.rotate {
			e.Int(r)
		}
	case *Iterative:
		snapshotRings(v.Negotiator, e)
	case *Classic:
		snapshotRings(v.Negotiator, e)
		st := v.rng.State()
		for _, w := range st {
			e.U64(w)
		}
	}
	return nil
}

// RestoreState applies state captured by SnapshotState to a freshly
// constructed matcher of the same kind and topology.
func RestoreState(m Matcher, d *snap.Dec) error {
	kind, ok := matcherKind(m)
	if !ok {
		return fmt.Errorf("match: matcher %T does not support snapshots", m)
	}
	if got := d.Str(); got != kind {
		return fmt.Errorf("match: checkpoint holds %q matcher state, engine runs %q", got, kind)
	}
	switch v := m.(type) {
	case *Negotiator:
		return restoreRings(v, d)
	case *Informative:
		return restoreRings(v.Negotiator, d)
	case *Stateful:
		if err := restoreRings(v.Negotiator, d); err != nil {
			return err
		}
		if err := decodeMatrix(d, v.matrix); err != nil {
			return err
		}
		return decodeMatrix(d, v.reported)
	case *ProjecToR:
		if err := restoreRings(v.Negotiator, d); err != nil {
			return err
		}
		if n := int(d.U32()); n != len(v.rotate) {
			return fmt.Errorf("match: checkpoint holds %d rotation counters, matcher has %d", n, len(v.rotate))
		}
		for i := range v.rotate {
			v.rotate[i] = d.Int()
		}
		return d.Err()
	case *Iterative:
		return restoreRings(v.Negotiator, d)
	case *Classic:
		if err := restoreRings(v.Negotiator, d); err != nil {
			return err
		}
		var st [4]uint64
		for i := range st {
			st[i] = d.U64()
		}
		if err := d.Err(); err != nil {
			return err
		}
		v.rng.SetState(st)
		return nil
	}
	return nil
}

// snapshotRings records every grant and accept ring pointer. The walk
// order is fixed by construction (grant rings row by row, then accept
// rings), so both sides enumerate identically; rings shared between rows
// simply record (and later re-apply) the same value more than once.
func snapshotRings(n *Negotiator, e *snap.Enc) {
	for _, row := range n.grantRings {
		for _, r := range row {
			e.Int(r.Pointer())
		}
	}
	for _, row := range n.acceptRings {
		for _, r := range row {
			e.Int(r.Pointer())
		}
	}
}

func restoreRings(n *Negotiator, d *snap.Dec) error {
	for _, row := range n.grantRings {
		for _, r := range row {
			if err := r.SetPointer(d.Int()); err != nil {
				return err
			}
		}
	}
	for _, row := range n.acceptRings {
		for _, r := range row {
			if err := r.SetPointer(d.Int()); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

// encodeMatrix writes the nonzero entries of a dense int64 matrix.
func encodeMatrix(e *snap.Enc, m [][]int64) {
	var cnt uint32
	for _, row := range m {
		for _, v := range row {
			if v != 0 {
				cnt++
			}
		}
	}
	e.U32(cnt)
	for i, row := range m {
		for j, v := range row {
			if v != 0 {
				e.U32(uint32(i))
				e.U32(uint32(j))
				e.I64(v)
			}
		}
	}
}

func decodeMatrix(d *snap.Dec, m [][]int64) error {
	for i := range m {
		clear(m[i])
	}
	cnt := int(d.U32())
	for k := 0; k < cnt; k++ {
		i, j, v := int(d.U32()), int(d.U32()), d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		if i < 0 || i >= len(m) || j < 0 || j >= len(m[i]) {
			return fmt.Errorf("match: checkpoint matrix entry (%d, %d) out of range", i, j)
		}
		m[i][j] = v
	}
	return d.Err()
}
