package match

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// shardView is a deterministic queue view: pair (src, dst) has queued bytes
// varying with the round so request sets change over time.
type shardView struct {
	src, n, round int
}

func (v *shardView) QueuedBytes(dst int) int64 {
	x := (v.src*31 + dst*17 + v.round*7) % 13
	return int64(x * 1000)
}
func (v *shardView) WeightedHoL(dst int, alpha float64) float64 {
	return float64((v.src*13 + dst*29 + v.round*3) % 11)
}
func (v *shardView) CumInjected(dst int) int64 {
	return int64(v.round+1) * int64((v.src*7+dst*5)%9) * 100
}

// NextDemand is the dense fallback: every destination may hold bytes.
func (v *shardView) NextDemand(after int) int {
	if after+1 >= v.n {
		return -1
	}
	return after + 1
}

// shardedFactories builds each Sharded matcher over the topology. Both
// instances of a pair must be built from identically seeded RNGs so ring
// init matches.
func shardedFactories(t topo.Topology) map[string]func(*sim.RNG) Sharded {
	return map[string]func(*sim.RNG) Sharded{
		"negotiator": func(r *sim.RNG) Sharded { return NewNegotiator(t, r) },
		"data-size":  func(r *sim.RNG) Sharded { return NewDataSize(t, r) },
		"hol-delay":  func(r *sim.RNG) Sharded { return NewHoLDelay(t, r) },
		"stateful":   func(r *sim.RNG) Sharded { return NewStateful(t, r, 20000) },
		"projector":  func(r *sim.RNG) Sharded { return NewProjecToR(t, r) },
	}
}

// drive runs `rounds` full request/grant/accept pipeline rounds over the
// matcher using p shard handles (p=1 uses the matcher itself) and returns
// a transcript of every grant and match. Handles run their shard's ToRs
// concurrently within each stage, with a barrier between stages, exactly
// as the engine drives them.
func drive(t *testing.T, m Sharded, n, s, p, rounds int) string {
	t.Helper()
	handles := []Matcher{m}
	if p > 1 {
		handles = m.Fork(p)
	}
	shardOf := func(tor int) int { return tor * p / n }
	local := make([][]int, p) // ToRs per shard, ascending
	for i := 0; i < n; i++ {
		local[shardOf(i)] = append(local[shardOf(i)], i)
	}
	if p == 1 {
		local = [][]int{}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		local = append(local, all)
	}

	var out string
	reqBox := make([][]Request, n) // per dst
	grantBox := make([][]Grant, n) // per src
	matches := make([][]int32, n)
	for i := range matches {
		matches[i] = make([]int32, s)
	}

	stage := func(fn func(h Matcher, tors []int)) {
		var wg sync.WaitGroup
		for k := range handles {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				fn(handles[k], local[k])
			}(k)
		}
		wg.Wait()
	}

	for round := 0; round < rounds; round++ {
		// ACCEPT over last round's grants (empty in round 0).
		stage(func(h Matcher, tors []int) {
			for _, i := range tors {
				v := &shardView{src: i, n: n, round: round}
				h.Accepts(i, v, grantBox[i], matches[i], func(g Grant, ok bool) { h.Feedback(g, ok) })
			}
		})
		// GRANT over last round's requests; outboxes merged in shard order
		// (per-shard slices appended shard-ascending reproduce dst order).
		grantOut := make([][]Grant, p)
		reqOut := make([][]Request, p)
		stage(func(h Matcher, tors []int) {
			k := 0
			if p > 1 {
				k = shardOf(tors[0])
			}
			for _, j := range tors {
				h.Grants(j, reqBox[j], func(g Grant) { grantOut[k] = append(grantOut[k], g) })
			}
			for _, i := range tors {
				v := &shardView{src: i, n: n, round: round}
				h.Requests(i, v, sim.Time(round), 1500, func(r Request) { reqOut[k] = append(reqOut[k], r) })
			}
		})
		for i := range grantBox {
			grantBox[i] = grantBox[i][:0]
			reqBox[i] = reqBox[i][:0]
		}
		var flat []Grant
		for k := 0; k < p; k++ {
			for _, g := range grantOut[k] {
				grantBox[g.Src] = append(grantBox[g.Src], g)
				flat = append(flat, g)
			}
			for _, r := range reqOut[k] {
				reqBox[r.Dst] = append(reqBox[r.Dst], r)
			}
		}
		out += fmt.Sprintf("round %d matches %v grants %v\n", round, matches, flat)
	}
	return out
}

// TestForkMatchesSequential: driving a forked matcher over shards must
// reproduce the sequential matcher's grants and matches exactly, for every
// Sharded implementation, shard count, and topology.
func TestForkMatchesSequential(t *testing.T) {
	const n, s = 16, 4
	for _, mk := range []struct {
		name string
		topo func() (topo.Topology, error)
	}{
		{"parallel", func() (topo.Topology, error) { return topo.NewParallel(n, s) }},
		{"thinclos", func() (topo.Topology, error) { return topo.NewThinClos(n, s, 4) }},
	} {
		top, err := mk.topo()
		if err != nil {
			t.Fatal(err)
		}
		for name, factory := range shardedFactories(top) {
			want := drive(t, factory(sim.NewRNG(42)), n, s, 1, 6)
			for _, p := range []int{2, 4, 8} {
				got := drive(t, factory(sim.NewRNG(42)), n, s, p, 6)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s: fork(%d) transcript diverges from sequential:\n got: %s\nwant: %s",
						mk.name, name, p, got, want)
				}
			}
		}
	}
}

// TestForkSharesPerToRState: ring state advanced through one shard handle
// must be visible to a later fork — the handles are views, not copies.
func TestForkSharesPerToRState(t *testing.T) {
	top, err := topo.NewParallel(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewNegotiator(top, sim.NewRNG(1))
	h := m.Fork(2)[1]
	h.Grants(5, []Request{{Src: 1, Dst: 5}}, func(Grant) {})
	if m.grantRings[5][0] != h.(*Negotiator).grantRings[5][0] {
		t.Fatal("fork copied rings instead of sharing them")
	}
}
