package match

import (
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
	"negotiator/internal/topo"
)

// fakeView is a QueueView backed by plain maps.
type fakeView struct {
	queued map[int]int64
	hol    map[int]float64
	cum    map[int]int64
}

func (v *fakeView) QueuedBytes(dst int) int64 { return v.queued[dst] }
func (v *fakeView) WeightedHoL(dst int, alpha float64) float64 {
	return v.hol[dst]
}
func (v *fakeView) CumInjected(dst int) int64 { return v.cum[dst] }

// NextDemand iterates the queued map's keys in ascending order (a
// superset of the positive-bytes destinations, as the contract requires).
func (v *fakeView) NextDemand(after int) int {
	next := -1
	for dst := range v.queued {
		if dst > after && (next < 0 || dst < next) {
			next = dst
		}
	}
	return next
}

func viewWith(queued map[int]int64) *fakeView {
	return &fakeView{queued: queued, hol: map[int]float64{}, cum: map[int]int64{}}
}

func parallel(t *testing.T, n, s int) topo.Topology {
	t.Helper()
	p, err := topo.NewParallel(n, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func thinclos(t *testing.T, n, s, w int) topo.Topology {
	t.Helper()
	tc, err := topo.NewThinClos(n, s, w)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// denseMatch runs Match with dense result semantics: every row is reset
// to -1 first, so rows Match leaves untouched (sources with no grant)
// read as unmatched. Tests sweep the whole matrix, so they want this; the
// engine instead consumes the touched list directly.
func denseMatch(m BatchMatcher, reqs []Request, matches [][]int32, stats *BatchStats) {
	for i := range matches {
		for p := range matches[i] {
			matches[i][p] = -1
		}
	}
	m.Match(reqs, matches, stats)
}

func TestRingBasics(t *testing.T) {
	r := NewRing(4, nil)
	if r.Size() != 4 || r.Pointer() != 0 {
		t.Fatalf("ring init: size=%d ptr=%d", r.Size(), r.Pointer())
	}
	got := r.Pick(func(p int) bool { return p == 2 })
	if got != 2 {
		t.Fatalf("Pick = %d, want 2", got)
	}
	r.Advance(2)
	if r.Pointer() != 3 {
		t.Fatalf("pointer after Advance(2) = %d, want 3", r.Pointer())
	}
	// Wrap-around: from 3, candidate 1 is reached cyclically.
	if got := r.Pick(func(p int) bool { return p == 1 }); got != 1 {
		t.Fatalf("cyclic Pick = %d, want 1", got)
	}
	r.Advance(3)
	if r.Pointer() != 0 {
		t.Fatalf("Advance wrap: ptr = %d, want 0", r.Pointer())
	}
	if got := r.Pick(func(int) bool { return false }); got != -1 {
		t.Fatalf("Pick with no candidates = %d, want -1", got)
	}
}

func TestRingLeastRecentlyGranted(t *testing.T) {
	// With everyone always requesting, winners rotate 0,1,2,3,0,...
	r := NewRing(4, nil)
	all := func(int) bool { return true }
	for i := 0; i < 8; i++ {
		w := r.Pick(all)
		if w != i%4 {
			t.Fatalf("round %d: winner %d, want %d", i, w, i%4)
		}
		r.Advance(w)
	}
}

func TestRingNoStarvationProperty(t *testing.T) {
	// A persistent candidate wins within one full revolution no matter
	// what the competition does.
	f := func(seed int64, target uint8, rounds uint8) bool {
		rng := sim.NewRNG(seed)
		n := 8
		r := NewRing(n, rng)
		tgt := int(target) % n
		for round := 0; round < n; round++ {
			w := r.Pick(func(int) bool { return true })
			r.Advance(w)
			if w == tgt {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRequestsThreshold(t *testing.T) {
	tp := parallel(t, 8, 2)
	m := NewNegotiator(tp, sim.NewRNG(1))
	view := viewWith(map[int]int64{1: 2000, 2: 1785, 3: 1786, 0: 5000})
	var got []Request
	m.Requests(0, view, 0, 1785, func(r Request) { got = append(got, r) })
	if len(got) != 2 {
		t.Fatalf("requests = %+v, want dst 1 and 3 only", got)
	}
	for _, r := range got {
		if r.Dst != 1 && r.Dst != 3 {
			t.Errorf("unexpected request to %d", r.Dst)
		}
		if r.Src != 0 || r.Port != -1 {
			t.Errorf("malformed request %+v", r)
		}
	}
	// Self-demand (dst==src) never requested even if the view has bytes.
}

func collectGrants(m Matcher, dst int, reqs []Request) []Grant {
	var gs []Grant
	m.Grants(dst, reqs, func(g Grant) { gs = append(gs, g) })
	return gs
}

func TestGrantInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  topo.Topology
	}{
		{"parallel", parallel(t, 16, 4)},
		{"thinclos", thinclos(t, 16, 4, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewNegotiator(tc.top, sim.NewRNG(2))
			var reqs []Request
			for src := 0; src < 16; src++ {
				if src != 5 {
					reqs = append(reqs, Request{Src: src, Dst: 5, Port: -1})
				}
			}
			gs := collectGrants(m, 5, reqs)
			if len(gs) != 4 {
				t.Fatalf("grants = %d, want 4 (one per port)", len(gs))
			}
			ports := map[int]bool{}
			for _, g := range gs {
				if ports[g.Port] {
					t.Fatalf("port %d granted twice", g.Port)
				}
				ports[g.Port] = true
				if g.Dst != 5 {
					t.Fatalf("grant from wrong dst: %+v", g)
				}
				if !tc.top.CanReach(g.Src, g.Port, g.Dst) {
					t.Fatalf("grant outside domain: %+v", g)
				}
			}
		})
	}
}

func TestGrantFewRequestersGetMultiplePorts(t *testing.T) {
	// Two requesters, four ports: each gets two ports ("m/n ports per
	// request", §3.2.2).
	tp := parallel(t, 16, 4)
	m := NewNegotiator(tp, sim.NewRNG(3))
	reqs := []Request{{Src: 1, Dst: 0, Port: -1}, {Src: 2, Dst: 0, Port: -1}}
	gs := collectGrants(m, 0, reqs)
	if len(gs) != 4 {
		t.Fatalf("grants = %d, want 4", len(gs))
	}
	count := map[int]int{}
	for _, g := range gs {
		count[g.Src]++
	}
	if count[1] != 2 || count[2] != 2 {
		t.Errorf("port split = %v, want 2/2", count)
	}
}

func TestGrantFairnessAcrossEpochs(t *testing.T) {
	// One port, three persistent requesters: grants rotate.
	tp := parallel(t, 8, 1)
	m := NewNegotiator(tp, sim.NewRNG(4))
	reqs := []Request{{Src: 1, Dst: 0, Port: -1}, {Src: 2, Dst: 0, Port: -1}, {Src: 3, Dst: 0, Port: -1}}
	seen := map[int]int{}
	for e := 0; e < 9; e++ {
		gs := collectGrants(m, 0, reqs)
		if len(gs) != 1 {
			t.Fatalf("epoch %d: %d grants", e, len(gs))
		}
		seen[gs[0].Src]++
	}
	for src := 1; src <= 3; src++ {
		if seen[src] != 3 {
			t.Errorf("src %d granted %d of 9, want 3 (fair rotation)", src, seen[src])
		}
	}
}

func TestAcceptInvariants(t *testing.T) {
	tp := parallel(t, 16, 4)
	m := NewNegotiator(tp, sim.NewRNG(5))
	grants := []Grant{
		{Dst: 3, Port: 0, Src: 7},
		{Dst: 9, Port: 0, Src: 7},
		{Dst: 3, Port: 2, Src: 7},
	}
	matches := make([]int32, 4)
	accepted := map[Grant]bool{}
	m.Accepts(7, viewWith(nil), grants, matches, func(g Grant, ok bool) { accepted[g] = ok })
	if matches[0] != 3 && matches[0] != 9 {
		t.Fatalf("port 0 match = %d, want 3 or 9", matches[0])
	}
	if matches[2] != 3 {
		t.Fatalf("port 2 match = %d, want 3", matches[2])
	}
	if matches[1] != -1 || matches[3] != -1 {
		t.Fatalf("ungranted ports matched: %v", matches)
	}
	nAccepted := 0
	for g, ok := range accepted {
		if ok {
			nAccepted++
			if matches[g.Port] != int32(g.Dst) {
				t.Fatalf("feedback inconsistent with matches")
			}
		}
	}
	if nAccepted != 2 {
		t.Fatalf("accepted = %d, want 2", nAccepted)
	}
}

func TestAcceptFairness(t *testing.T) {
	// Port 0 receives grants from dst 3 and 9 every epoch: accepts rotate.
	tp := parallel(t, 16, 1)
	m := NewNegotiator(tp, sim.NewRNG(6))
	grants := []Grant{{Dst: 3, Port: 0, Src: 7}, {Dst: 9, Port: 0, Src: 7}}
	matches := make([]int32, 1)
	seen := map[int32]int{}
	for e := 0; e < 10; e++ {
		m.Accepts(7, viewWith(nil), grants, matches, nil)
		seen[matches[0]]++
	}
	if seen[3] != 5 || seen[9] != 5 {
		t.Errorf("accept rotation = %v, want 5/5", seen)
	}
}

// runFullMatch runs request->grant->accept for a full backlog and returns
// (grants, accepts, matches per src).
func runFullMatch(m Matcher, top topo.Topology, view QueueView) (int, int, [][]int32) {
	n, s := top.N(), top.Ports()
	reqsByDst := make([][]Request, n)
	for src := 0; src < n; src++ {
		m.Requests(src, view, 0, 0, func(r Request) {
			reqsByDst[r.Dst] = append(reqsByDst[r.Dst], r)
		})
	}
	grantsBySrc := make([][]Grant, n)
	nGrants := 0
	for dst := 0; dst < n; dst++ {
		m.Grants(dst, reqsByDst[dst], func(g Grant) {
			grantsBySrc[g.Src] = append(grantsBySrc[g.Src], g)
			nGrants++
		})
	}
	nAccepts := 0
	matches := make([][]int32, n)
	for src := 0; src < n; src++ {
		matches[src] = make([]int32, s)
		m.Accepts(src, view, grantsBySrc[src], matches[src], func(g Grant, ok bool) {
			m.Feedback(g, ok)
		})
		for _, d := range matches[src] {
			if d >= 0 {
				nAccepts++
			}
		}
	}
	return nGrants, nAccepts, matches
}

func fullBacklogView(n int) *fakeView {
	q := map[int]int64{}
	c := map[int]int64{}
	h := map[int]float64{}
	for d := 0; d < n; d++ {
		q[d] = 1 << 20
		c[d] = 1 << 20
		h[d] = 1
	}
	return &fakeView{queued: q, hol: h, cum: c}
}

func TestMatchRatioTheory(t *testing.T) {
	// Under saturated all-to-all demand the accept/grant ratio should sit
	// near 1-(1-1/n)^n (§3.2.2): ~0.634 for large parallel networks, a bit
	// higher for thin-clos (n=W=4 here: 1-(3/4)^4 = 0.684).
	for _, tc := range []struct {
		name     string
		top      topo.Topology
		lo, hi   float64
		minEpoch int
	}{
		{"parallel-32x4", parallel(t, 32, 4), 0.52, 0.80, 50},
		{"thinclos-16x4", thinclos(t, 16, 4, 4), 0.55, 0.85, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewNegotiator(tc.top, sim.NewRNG(7))
			view := fullBacklogView(tc.top.N())
			var g, a int
			for e := 0; e < tc.minEpoch; e++ {
				ge, ae, _ := runFullMatch(m, tc.top, view)
				g += ge
				a += ae
			}
			ratio := float64(a) / float64(g)
			if ratio < tc.lo || ratio > tc.hi {
				t.Errorf("match ratio = %.3f, want in [%.2f,%.2f]", ratio, tc.lo, tc.hi)
			}
		})
	}
}

func TestMatchConflictFreedom(t *testing.T) {
	// Across the whole fabric, no destination port is accepted by two
	// sources (the bufferless-link invariant).
	for _, top := range []topo.Topology{parallel(t, 16, 4), thinclos(t, 16, 4, 4)} {
		m := NewNegotiator(top, sim.NewRNG(8))
		view := fullBacklogView(top.N())
		for e := 0; e < 20; e++ {
			_, _, matches := runFullMatch(m, top, view)
			rx := map[[2]int32]int{}
			for src := range matches {
				for port, dst := range matches[src] {
					if dst < 0 {
						continue
					}
					key := [2]int32{dst, int32(port)}
					rx[key]++
					if rx[key] > 1 {
						t.Fatalf("epoch %d: dst %d port %d accepted twice", e, dst, port)
					}
					if !top.CanReach(src, port, int(dst)) {
						t.Fatalf("match violates reachability: %d -(%d)-> %d", src, port, dst)
					}
				}
			}
		}
	}
}

func TestInformativeDataSizePicksLargest(t *testing.T) {
	tp := parallel(t, 8, 1)
	m := NewDataSize(tp, sim.NewRNG(9))
	reqs := []Request{
		{Src: 1, Dst: 0, Size: 100},
		{Src: 2, Dst: 0, Size: 5000},
		{Src: 3, Dst: 0, Size: 200},
	}
	gs := collectGrants(m, 0, reqs)
	if len(gs) != 1 || gs[0].Src != 2 {
		t.Fatalf("data-size grant = %+v, want src 2", gs)
	}
	// Accept side: choose the dst with the biggest local queue.
	view := viewWith(map[int]int64{4: 100, 5: 9000})
	matches := make([]int32, 1)
	m.Accepts(6, view, []Grant{{Dst: 4, Port: 0, Src: 6}, {Dst: 5, Port: 0, Src: 6}}, matches, nil)
	if matches[0] != 5 {
		t.Fatalf("data-size accept = %d, want 5", matches[0])
	}
}

func TestInformativeHoLPicksLongestWait(t *testing.T) {
	tp := parallel(t, 8, 1)
	m := NewHoLDelay(tp, sim.NewRNG(10))
	reqs := []Request{
		{Src: 1, Dst: 0, Delay: 10},
		{Src: 2, Dst: 0, Delay: 99},
		{Src: 3, Dst: 0, Delay: 50},
	}
	gs := collectGrants(m, 0, reqs)
	if len(gs) != 1 || gs[0].Src != 2 {
		t.Fatalf("hol grant = %+v, want src 2", gs)
	}
}

func TestInformativeRequestsCarryPriority(t *testing.T) {
	tp := parallel(t, 8, 2)
	m := NewDataSize(tp, sim.NewRNG(11))
	view := viewWith(map[int]int64{1: 4000})
	var got []Request
	m.Requests(0, view, 0, 0, func(r Request) { got = append(got, r) })
	if len(got) != 1 || got[0].Size != 4000 {
		t.Fatalf("informative request = %+v", got)
	}
}

func TestStatefulSuppressesDrainedSources(t *testing.T) {
	tp := parallel(t, 8, 1)
	m := NewStateful(tp, sim.NewRNG(12), 1000)
	// Source 1 reports 1500 new bytes; the first two grants are allowed
	// (matrix 1500 -> 500 -> suppressed at 0... second grant drains it).
	reqs := []Request{{Src: 1, Dst: 0, Port: -1, NewBytes: 1500}}
	gs := collectGrants(m, 0, reqs)
	if len(gs) != 1 || gs[0].Src != 1 {
		t.Fatalf("first grant = %+v", gs)
	}
	m.Feedback(gs[0], true) // accepted: decrement stands
	if got := m.Matrix(0, 1); got != 500 {
		t.Fatalf("matrix after accept = %d, want 500", got)
	}
	// Re-request with no new bytes: still grantable (500 left).
	gs = collectGrants(m, 0, []Request{{Src: 1, Dst: 0, Port: -1}})
	if len(gs) != 1 {
		t.Fatalf("second grant missing: %+v", gs)
	}
	m.Feedback(gs[0], true)
	if got := m.Matrix(0, 1); got != 0 {
		t.Fatalf("matrix floor = %d, want 0", got)
	}
	// Drained: requests without new bytes are suppressed.
	gs = collectGrants(m, 0, []Request{{Src: 1, Dst: 0, Port: -1}})
	if len(gs) != 0 {
		t.Fatalf("drained source still granted: %+v", gs)
	}
}

func TestStatefulRevertsOnReject(t *testing.T) {
	tp := parallel(t, 8, 1)
	m := NewStateful(tp, sim.NewRNG(13), 1000)
	gs := collectGrants(m, 0, []Request{{Src: 1, Dst: 0, Port: -1, NewBytes: 1000}})
	if len(gs) != 1 {
		t.Fatal("no grant")
	}
	m.Feedback(gs[0], false) // rejected: matrix reverts to 1000
	if got := m.Matrix(0, 1); got != 1000 {
		t.Fatalf("matrix after reject = %d, want 1000", got)
	}
}

func TestStatefulRequestsReportNewBytesOnce(t *testing.T) {
	tp := parallel(t, 8, 1)
	m := NewStateful(tp, sim.NewRNG(14), 1000)
	view := &fakeView{queued: map[int]int64{2: 500}, cum: map[int]int64{2: 500}, hol: map[int]float64{}}
	var first, second []Request
	m.Requests(0, view, 0, 0, func(r Request) { first = append(first, r) })
	m.Requests(0, view, 0, 0, func(r Request) { second = append(second, r) })
	if len(first) != 1 || first[0].NewBytes != 500 {
		t.Fatalf("first request = %+v", first)
	}
	if len(second) != 1 || second[0].NewBytes != 0 {
		t.Fatalf("second request should carry 0 new bytes: %+v", second)
	}
}

func TestProjecToRPortBinding(t *testing.T) {
	tp := parallel(t, 8, 4)
	m := NewProjecToR(tp, sim.NewRNG(15))
	q := map[int]int64{}
	for d := 1; d < 6; d++ {
		q[d] = 1000
	}
	view := &fakeView{queued: q, hol: map[int]float64{}, cum: map[int]int64{}}
	var reqs []Request
	m.Requests(0, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
	if len(reqs) != 5 {
		t.Fatalf("requests = %d, want 5", len(reqs))
	}
	ports := map[int]int{}
	for _, r := range reqs {
		if r.Port < 0 || r.Port >= 4 {
			t.Fatalf("unbound port in %+v", r)
		}
		ports[r.Port]++
	}
	if len(ports) != 4 {
		t.Errorf("ports used = %v, want all 4 (round-robin spread)", ports)
	}
}

func TestProjecToRGrantsByDelay(t *testing.T) {
	tp := parallel(t, 8, 2)
	m := NewProjecToR(tp, sim.NewRNG(16))
	reqs := []Request{
		{Src: 1, Dst: 0, Port: 0, Delay: 5},
		{Src: 2, Dst: 0, Port: 0, Delay: 50},
		{Src: 3, Dst: 0, Port: 1, Delay: 1},
	}
	gs := collectGrants(m, 0, reqs)
	if len(gs) != 2 {
		t.Fatalf("grants = %+v, want 2", gs)
	}
	for _, g := range gs {
		switch g.Port {
		case 0:
			if g.Src != 2 {
				t.Errorf("port 0 granted to %d, want 2 (max delay)", g.Src)
			}
		case 1:
			if g.Src != 3 {
				t.Errorf("port 1 granted to %d, want 3", g.Src)
			}
		}
	}
}

func TestProjecToRThinClosUsesPathPort(t *testing.T) {
	tc := thinclos(t, 16, 4, 4)
	m := NewProjecToR(tc, sim.NewRNG(17))
	q := map[int]int64{9: 1000}
	view := &fakeView{queued: q, hol: map[int]float64{}, cum: map[int]int64{}}
	var reqs []Request
	m.Requests(0, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
	if len(reqs) != 1 {
		t.Fatalf("requests = %+v", reqs)
	}
	if want := tc.PathPort(0, 9); reqs[0].Port != want {
		t.Errorf("thin-clos ProjecToR bound port %d, want path port %d", reqs[0].Port, want)
	}
}

func TestIterativeImprovesMatching(t *testing.T) {
	// With saturated demand, more iterations must not match fewer ports,
	// and usually match strictly more.
	top := parallel(t, 32, 4)
	view := fullBacklogView(32)
	countMatched := func(iters int) int {
		m := NewIterative(top, sim.NewRNG(18), iters)
		var reqs []Request
		for src := 0; src < 32; src++ {
			m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
		}
		matches := make([][]int32, 32)
		for i := range matches {
			matches[i] = make([]int32, 4)
		}
		var stats BatchStats
		denseMatch(m, reqs, matches, &stats)
		total := 0
		for _, row := range matches {
			for _, d := range row {
				if d >= 0 {
					total++
				}
			}
		}
		if int64(total) != stats.Accepts {
			t.Fatalf("stats.Accepts=%d but matched=%d", stats.Accepts, total)
		}
		return total
	}
	m1, m3, m5 := countMatched(1), countMatched(3), countMatched(5)
	if m3 < m1 || m5 < m3 {
		t.Errorf("iteration must not reduce matching: %d/%d/%d", m1, m3, m5)
	}
	if m5 <= m1 {
		t.Errorf("5 iterations should beat 1 under saturation: %d vs %d", m5, m1)
	}
	if m5 > 32*4 {
		t.Errorf("matched %d > port count", m5)
	}
}

func TestIterativeConflictFreedom(t *testing.T) {
	top := thinclos(t, 16, 4, 4)
	m := NewIterative(top, sim.NewRNG(19), 3)
	view := fullBacklogView(16)
	var reqs []Request
	for src := 0; src < 16; src++ {
		m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
	}
	matches := make([][]int32, 16)
	for i := range matches {
		matches[i] = make([]int32, 4)
	}
	denseMatch(m, reqs, matches, nil)
	rx := map[[2]int32]bool{}
	for src := range matches {
		for port, dst := range matches[src] {
			if dst < 0 {
				continue
			}
			if !top.CanReach(src, port, int(dst)) {
				t.Fatalf("unreachable match %d-(%d)->%d", src, port, dst)
			}
			key := [2]int32{dst, int32(port)}
			if rx[key] {
				t.Fatalf("dst %d port %d matched twice", dst, port)
			}
			rx[key] = true
		}
	}
}

func TestMatchDelays(t *testing.T) {
	tp := parallel(t, 8, 2)
	if d := NewNegotiator(tp, sim.NewRNG(1)).MatchDelay(); d != 2 {
		t.Errorf("base delay = %d, want 2", d)
	}
	if d := NewIterative(tp, sim.NewRNG(1), 1).MatchDelay(); d != 2 {
		t.Errorf("iter-1 delay = %d, want 2", d)
	}
	if d := NewIterative(tp, sim.NewRNG(1), 3).MatchDelay(); d != 8 {
		t.Errorf("iter-3 delay = %d, want 8", d)
	}
	if d := NewIterative(tp, sim.NewRNG(1), 5).MatchDelay(); d != 14 {
		t.Errorf("iter-5 delay = %d, want 14", d)
	}
}

func TestNames(t *testing.T) {
	tp := parallel(t, 8, 2)
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		m    Matcher
		want string
	}{
		{NewNegotiator(tp, rng), "negotiator"},
		{NewDataSize(tp, rng), "data-size"},
		{NewHoLDelay(tp, rng), "hol-delay"},
		{NewStateful(tp, rng, 1000), "stateful"},
		{NewProjecToR(tp, rng), "projector"},
		{NewIterative(tp, rng, 3), "iterative-3"},
	} {
		if got := tc.m.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

// TestMatchLegalityProperty: for arbitrary random demand patterns, the
// full request->grant->accept pipeline must emit grants only to requesters
// (one per destination port) and accepts only against received grants (one
// per source port), on both topologies.
func TestMatchLegalityProperty(t *testing.T) {
	f := func(seed int64, thin bool, rounds uint8) bool {
		var top topo.Topology
		if thin {
			top, _ = topo.NewThinClos(16, 4, 4)
		} else {
			top, _ = topo.NewParallel(16, 4)
		}
		rng := sim.NewRNG(seed)
		m := NewNegotiator(top, rng)
		for round := 0; round < int(rounds%8)+1; round++ {
			// Random demand.
			reqsByDst := make([][]Request, 16)
			requested := map[[2]int]bool{}
			for src := 0; src < 16; src++ {
				for dst := 0; dst < 16; dst++ {
					if dst != src && rng.Intn(3) == 0 {
						reqsByDst[dst] = append(reqsByDst[dst], Request{Src: src, Dst: dst, Port: -1})
						requested[[2]int{src, dst}] = true
					}
				}
			}
			grantsBySrc := make([][]Grant, 16)
			for dst := 0; dst < 16; dst++ {
				ports := map[int]bool{}
				ok := true
				m.Grants(dst, reqsByDst[dst], func(g Grant) {
					if !requested[[2]int{g.Src, dst}] {
						ok = false // grant to a non-requester
					}
					if ports[g.Port] {
						ok = false // destination port granted twice
					}
					ports[g.Port] = true
					grantsBySrc[g.Src] = append(grantsBySrc[g.Src], g)
				})
				if !ok {
					return false
				}
			}
			matches := make([]int32, 4)
			for src := 0; src < 16; src++ {
				granted := map[[2]int32]bool{}
				for _, g := range grantsBySrc[src] {
					granted[[2]int32{int32(g.Dst), int32(g.Port)}] = true
				}
				m.Accepts(src, viewWith(nil), grantsBySrc[src], matches, nil)
				for port, dst := range matches {
					if dst >= 0 && !granted[[2]int32{dst, int32(port)}] {
						return false // accept without grant
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// BenchmarkFullMatchStep measures one whole-fabric scheduling round at
// paper scale (128 ToRs x 8 ports, saturated).
func BenchmarkFullMatchStep(b *testing.B) {
	top, err := topo.NewParallel(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	m := NewNegotiator(top, sim.NewRNG(1))
	view := fullBacklogView(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFullMatch(m, top, view)
	}
}

// BenchmarkIterative3MatchStep is the batch path at paper scale.
func BenchmarkIterative3MatchStep(b *testing.B) {
	top, err := topo.NewParallel(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	m := NewIterative(top, sim.NewRNG(1), 3)
	view := fullBacklogView(128)
	var reqs []Request
	for src := 0; src < 128; src++ {
		m.Requests(src, view, 0, 0, func(r Request) { reqs = append(reqs, r) })
	}
	matches := make([][]int32, 128)
	for i := range matches {
		matches[i] = make([]int32, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		denseMatch(m, reqs, matches, nil)
	}
}
