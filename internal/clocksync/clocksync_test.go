package clocksync

import (
	"math"
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func testConfig() Config {
	return Config{
		N:         128,
		DriftPPM:  10,
		SyncError: 1, // 1 ns residual after sync
		Interval:  3660,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.N = 1
	if bad.Validate() == nil {
		t.Error("N=1 accepted")
	}
	bad = testConfig()
	bad.Interval = 0
	if bad.Validate() == nil {
		t.Error("zero interval accepted")
	}
	bad = testConfig()
	bad.DriftPPM = -1
	if bad.Validate() == nil {
		t.Error("negative drift accepted")
	}
	if _, err := New(bad, 1); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestMisalignmentWithinBound(t *testing.T) {
	m, err := New(testConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	bound := m.Bound()
	for e := 0; e < 200; e++ {
		if got := m.MaxMisalignment(); got > bound {
			t.Fatalf("epoch %d: misalignment %.3f ns exceeds bound %.3f ns", e, got, bound)
		}
		m.Resync()
	}
}

func TestPaperGuardbandAbsorbsDrift(t *testing.T) {
	// §3.6.3: with per-epoch resync over the predefined phase, even a
	// pessimistic 100 ppm oscillator drifts only ~0.37 ns over a 3.66 µs
	// epoch; with Sirius-grade sub-ns sync error the 10 ns guardband
	// absorbs it with room for a few ns of tuning delay.
	cfg := testConfig()
	cfg.DriftPPM = 100
	m, _ := New(cfg, 3)
	worst := m.WorstOverEpochs(500)
	if worst > m.Bound() {
		t.Fatalf("worst %.3f beyond analytic bound %.3f", worst, m.Bound())
	}
	m2, _ := New(cfg, 3)
	if !m2.GuardbandOK(10, 5) {
		t.Errorf("10 ns guardband with 5 ns tuning should absorb misalignment %.3f ns",
			m2.MaxMisalignment())
	}
	if m2.Margin(10, 5) <= 0 {
		t.Error("margin should be positive")
	}
}

func TestConventionalSyncNeedsBiggerGuardband(t *testing.T) {
	// With conventional packet-network sync (tens of ns error), a 10 ns
	// guardband cannot absorb the misalignment — the quantitative reason
	// the paper leans on round-robin-based synchronisation.
	cfg := testConfig()
	cfg.SyncError = 25 // ns
	m, _ := New(cfg, 5)
	// Worst misalignment can approach 2*25 ns; over many epochs it will
	// exceed 10-5=5 ns with overwhelming probability.
	failed := false
	for e := 0; e < 50; e++ {
		if !m.GuardbandOK(10, 5) {
			failed = true
			break
		}
		m.Resync()
	}
	if !failed {
		t.Error("25 ns sync error never violated a 10 ns guardband — model too optimistic")
	}
	// A 100 ns guardband restores safety.
	m2, _ := New(cfg, 5)
	for e := 0; e < 50; e++ {
		if !m2.GuardbandOK(100, 5) {
			t.Fatal("100 ns guardband should absorb 25 ns sync error")
		}
		m2.Resync()
	}
}

func TestOffsetLinearInTime(t *testing.T) {
	m, _ := New(testConfig(), 9)
	o0 := m.OffsetAt(3, 0)
	o1 := m.OffsetAt(3, 1000)
	o2 := m.OffsetAt(3, 2000)
	if math.Abs((o2-o1)-(o1-o0)) > 1e-12 {
		t.Error("offset not linear in elapsed time")
	}
}

func TestMisalignmentSymmetricNonNegative(t *testing.T) {
	m, _ := New(testConfig(), 11)
	f := func(a, b uint8, tt uint16) bool {
		i, j := int(a)%128, int(b)%128
		d := m.Misalignment(i, j, sim.Duration(tt))
		return d >= 0 && d == m.Misalignment(j, i, sim.Duration(tt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDriftStaysBounded(t *testing.T) {
	cfg := testConfig()
	m, _ := New(cfg, 13)
	limit := cfg.DriftPPM * 1e-6
	for e := 0; e < 500; e++ {
		m.Resync()
		for i, d := range m.drift {
			if math.Abs(d) > limit+1e-15 {
				t.Fatalf("epoch %d: tor %d drift %e beyond +-%e", e, i, d, limit)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(testConfig(), 42)
	b, _ := New(testConfig(), 42)
	for e := 0; e < 20; e++ {
		if a.MaxMisalignment() != b.MaxMisalignment() {
			t.Fatal("same-seed models diverged")
		}
		a.Resync()
		b.Resync()
	}
}
