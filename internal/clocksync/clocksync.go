// Package clocksync models the time-synchronisation layer of paper §3.6.3:
// ToRs synchronise their clocks to a primary over the predefined phase's
// round-robin connections once per epoch, then drift freely until the next
// synchronisation. The paper argues that "a guardband of several
// nanoseconds is adequate to absorb the drift till the next
// synchronization in the next predefined phase"; this package makes that
// claim checkable for concrete drift rates, sync errors and epoch lengths.
//
// The model is deliberately simple — per-ToR residual offset after each
// sync plus a bounded linear drift rate that wanders epoch to epoch — but
// it captures the only quantity the fabric cares about: the worst pairwise
// clock misalignment at any point within an epoch, which the guardband
// (minus the laser tuning time) must absorb for slots to stay
// collision-free.
package clocksync

import (
	"fmt"

	"negotiator/internal/sim"
)

// Config describes the synchronisation environment.
type Config struct {
	// N is the number of ToRs.
	N int
	// DriftPPM bounds each ToR's oscillator drift rate in parts per
	// million. Commodity oscillators sit in the 1-100 ppm range; the
	// paper's citations use the low end.
	DriftPPM float64
	// SyncError bounds the residual per-ToR offset right after a
	// synchronisation. Sirius reports picosecond-level errors over the
	// round-robin connections; conventional DCN sync reaches tens of
	// nanoseconds.
	SyncError sim.Duration
	// Interval is the time between synchronisations: one epoch, since
	// every predefined phase resynchronises (§3.6.3).
	Interval sim.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("clocksync: need at least 2 ToRs, got %d", c.N)
	}
	if c.DriftPPM < 0 || c.SyncError < 0 || c.Interval <= 0 {
		return fmt.Errorf("clocksync: negative drift/error or non-positive interval")
	}
	return nil
}

// Model tracks each ToR's clock state across sync intervals.
type Model struct {
	cfg Config
	rng *sim.RNG

	offset []float64 // ns, residual offset right after the last sync
	drift  []float64 // ns per ns of real time (dimensionless)
}

// New builds a model with randomised initial offsets and drift rates.
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:    cfg,
		rng:    sim.NewRNG(seed),
		offset: make([]float64, cfg.N),
		drift:  make([]float64, cfg.N),
	}
	for i := range m.offset {
		m.offset[i] = m.randOffset()
		m.drift[i] = m.randDrift()
	}
	return m, nil
}

func (m *Model) randOffset() float64 {
	return (2*m.rng.Float64() - 1) * float64(m.cfg.SyncError)
}

func (m *Model) randDrift() float64 {
	return (2*m.rng.Float64() - 1) * m.cfg.DriftPPM * 1e-6
}

// Resync models one synchronisation: every ToR's offset collapses to a
// fresh residual error and its drift rate takes a bounded random walk
// (oscillators wander with temperature).
func (m *Model) Resync() {
	for i := range m.offset {
		m.offset[i] = m.randOffset()
		// Wander by up to 10% of the bound per interval, staying bounded.
		d := m.drift[i] + 0.1*(2*m.rng.Float64()-1)*m.cfg.DriftPPM*1e-6
		limit := m.cfg.DriftPPM * 1e-6
		if d > limit {
			d = limit
		}
		if d < -limit {
			d = -limit
		}
		m.drift[i] = d
	}
}

// OffsetAt returns ToR i's clock error (ns) at elapsed time t since the
// last synchronisation.
func (m *Model) OffsetAt(i int, t sim.Duration) float64 {
	return m.offset[i] + m.drift[i]*float64(t)
}

// Misalignment returns the clock disagreement between two ToRs at elapsed
// time t since the last synchronisation, in nanoseconds (always >= 0).
func (m *Model) Misalignment(i, j int, t sim.Duration) float64 {
	d := m.OffsetAt(i, t) - m.OffsetAt(j, t)
	if d < 0 {
		d = -d
	}
	return d
}

// MaxMisalignment returns the worst pairwise disagreement at the end of
// the interval — the moment just before the next sync, where drift has
// accumulated longest. Because every offset evolves linearly, the maximum
// over the interval is at an endpoint, and checking the extremes of the
// per-ToR offsets suffices.
func (m *Model) MaxMisalignment() float64 {
	worst := 0.0
	for _, t := range []sim.Duration{0, m.cfg.Interval} {
		lo, hi := m.OffsetAt(0, t), m.OffsetAt(0, t)
		for i := 1; i < m.cfg.N; i++ {
			o := m.OffsetAt(i, t)
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		if d := hi - lo; d > worst {
			worst = d
		}
	}
	return worst
}

// Bound returns the analytic worst case: twice the sync error plus twice
// the drift accumulated over a full interval (two ToRs at opposite
// extremes).
func (m *Model) Bound() float64 {
	return 2*float64(m.cfg.SyncError) + 2*m.cfg.DriftPPM*1e-6*float64(m.cfg.Interval)
}

// GuardbandOK reports whether a guardband absorbs both the laser tuning
// time and the worst clock misalignment of this interval: bits never leak
// into a neighbouring slot.
func (m *Model) GuardbandOK(guard, tuning sim.Duration) bool {
	return float64(guard-tuning) >= m.MaxMisalignment()
}

// Margin returns the slack (ns) between the guardband (after tuning time)
// and the worst misalignment; negative means collisions are possible.
func (m *Model) Margin(guard, tuning sim.Duration) float64 {
	return float64(guard-tuning) - m.MaxMisalignment()
}

// WorstOverEpochs runs the model for the given number of sync intervals
// and returns the largest misalignment seen.
func (m *Model) WorstOverEpochs(epochs int) float64 {
	worst := 0.0
	for e := 0; e < epochs; e++ {
		if d := m.MaxMisalignment(); d > worst {
			worst = d
		}
		m.Resync()
	}
	return worst
}
