// Package par provides the two parallel-execution primitives the
// simulator uses, factored out of the experiment harness so both layers of
// parallelism share one implementation:
//
//   - Do: a bounded fan-out over independent work items — the
//     across-run level (experiment cells, seed replicates), where each
//     item is a self-contained simulation and completion order is
//     irrelevant because output is stitched afterwards.
//
//   - Gang: a fixed crew of persistent workers executing phase functions
//     in lockstep — the within-run level (ToR shards inside one engine),
//     where every simulated epoch runs several barrier-synchronized
//     phases and spawning goroutines per phase would dominate the
//     microsecond-scale epoch cost.
//
// Both primitives are deterministic by construction as long as the work
// functions are: Do assigns item indices, not work content, and Gang gives
// worker k the same shard k every phase.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Effective resolves a requested parallelism level: values <= 0 mean
// GOMAXPROCS. The single point of truth for the default, shared by the
// runner, the engines and the CLIs' reporting.
func Effective(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Do runs fn(i) for every i in [0, n) using at most workers concurrent
// goroutines and returns when all calls have completed. workers <= 0 means
// GOMAXPROCS; with one worker (or one item) everything runs inline on the
// caller's goroutine in index order.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Effective(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Gang is a crew of n workers that execute phase functions in lockstep:
// each Do(fn) call runs fn(k) once for every worker k and returns when all
// have finished — one barrier-synchronized phase. Workers are persistent
// goroutines, so a phase costs two channel synchronizations per worker
// instead of a goroutine spawn, and worker k always executes shard k,
// keeping shard-to-worker assignment deterministic.
//
// The caller's goroutine doubles as worker 0, so a Gang of size n keeps
// n-1 background goroutines. Gangs of size <= 1 keep none and Do runs
// entirely inline. Close releases the background goroutines; a Gang that
// is never closed leaks them, so owners that cannot guarantee a Close call
// should attach one via runtime.AddCleanup.
//
// Do must not be called concurrently from multiple goroutines, and fn must
// not call Do on the same Gang (workers would deadlock).
type Gang struct {
	n    int
	work []chan func(int) // per background worker (index 1..n-1)
	wg   sync.WaitGroup
	once sync.Once

	panicMu sync.Mutex
	panics  []WorkerPanic // panics recovered during the current Do
}

// WorkerPanic carries a recovered worker panic to the caller: the original
// panic value plus the stack captured at the panic site, so the failure
// reads like the worker's own crash instead of a bare re-panic at the
// barrier.
type WorkerPanic struct {
	Worker int
	Value  any
	Stack  []byte
}

func (p WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker %d panicked: %v\n\noriginal stack:\n%s", p.Worker, p.Value, p.Stack)
}

// NewGang returns a gang of size n (n < 1 is treated as 1), starting its
// n-1 background workers.
func NewGang(n int) *Gang {
	if n < 1 {
		n = 1
	}
	g := &Gang{n: n}
	g.work = make([]chan func(int), n)
	for k := 1; k < n; k++ {
		ch := make(chan func(int))
		g.work[k] = ch
		shard := k
		go func() {
			for fn := range ch {
				g.runGuarded(shard, fn)
				g.wg.Done()
			}
		}()
	}
	return g
}

// runGuarded executes fn(k), converting a panic into a recorded
// WorkerPanic instead of crashing the worker goroutine (which would both
// kill the process bypassing any caller recover and leave the barrier
// permanently short one Done).
func (g *Gang) runGuarded(k int, fn func(int)) {
	defer func() {
		if v := recover(); v != nil {
			stack := make([]byte, 64<<10)
			stack = stack[:runtime.Stack(stack, false)]
			g.panicMu.Lock()
			g.panics = append(g.panics, WorkerPanic{Worker: k, Value: v, Stack: stack})
			g.panicMu.Unlock()
		}
	}()
	fn(k)
}

// Size returns the number of workers (shards) in the gang.
func (g *Gang) Size() int { return g.n }

// Do runs fn(k) for every worker k in [0, Size()) and returns when all
// calls complete. fn(0) runs on the caller's goroutine. Reusing one
// prebuilt fn across calls keeps Do allocation-free.
//
// A panic inside any fn(k) does not deadlock the barrier or crash the
// process from a background goroutine: every worker finishes its phase,
// and Do then re-panics on the caller with a WorkerPanic carrying the
// original panic value and the stack captured at the panic site (the
// lowest-indexed worker's, if several panicked). The gang remains usable
// for subsequent Do calls.
func (g *Gang) Do(fn func(k int)) {
	if g.n == 1 {
		fn(0) // inline: a panic already surfaces on the caller natively
		return
	}
	g.wg.Add(g.n - 1)
	for k := 1; k < g.n; k++ {
		g.work[k] <- fn
	}
	g.runGuarded(0, fn)
	g.wg.Wait()
	if len(g.panics) > 0 {
		first := g.panics[0]
		for _, p := range g.panics[1:] {
			if p.Worker < first.Worker {
				first = p
			}
		}
		g.panics = g.panics[:0]
		panic(first)
	}
}

// Close stops the background workers. The gang must be idle (no Do in
// flight). Close is idempotent; Do must not be called after Close.
func (g *Gang) Close() {
	g.once.Do(func() {
		for k := 1; k < g.n; k++ {
			close(g.work[k])
		}
	})
}

// Split partitions n items into p contiguous ranges as evenly as possible
// and returns the k-th range [lo, hi). Contiguity is what makes
// shard-order merges reproduce global index order: concatenating per-shard
// results for k = 0..p-1 yields items in ascending index order, the same
// order a sequential loop produces. Ranges differ in size by at most one.
func Split(n, p, k int) (lo, hi int) {
	if p < 1 {
		p = 1
	}
	base, rem := n/p, n%p
	lo = k*base + min(k, rem)
	hi = lo + base
	if k < rem {
		hi++
	}
	return lo, hi
}
