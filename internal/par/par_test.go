package par

import (
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 100
		var counts [n]int32
		Do(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoInlineWhenSequential(t *testing.T) {
	// workers=1 must preserve index order (inline execution).
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
	Do(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

func TestGangLockstepPhases(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7} {
		g := NewGang(size)
		if g.Size() != size {
			t.Fatalf("size = %d, want %d", g.Size(), size)
		}
		// Each phase must see the previous phase fully applied (barrier).
		sum := make([]int64, size)
		for phase := 0; phase < 50; phase++ {
			g.Do(func(k int) { sum[k]++ })
			var total int64
			g.Do(func(k int) {
				if k == 0 {
					for _, s := range sum {
						total += s
					}
				}
			})
			if want := int64(size) * int64(phase+1); total != want {
				t.Fatalf("size=%d phase=%d: barrier leak, sum %d want %d", size, phase, total, want)
			}
		}
		g.Close()
		g.Close() // idempotent
	}
}

func TestGangWorkerIdentityStable(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	seen := make([][]int, 4)
	for phase := 0; phase < 8; phase++ {
		g.Do(func(k int) { seen[k] = append(seen[k], k) })
	}
	for k, s := range seen {
		if len(s) != 8 {
			t.Fatalf("worker %d ran %d phases, want 8", k, len(s))
		}
		for _, v := range s {
			if v != k {
				t.Fatalf("worker identity drifted: %v on worker %d", v, k)
			}
		}
	}
}

func TestSplitContiguousAndComplete(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{16, 1}, {16, 4}, {17, 4}, {3, 8}, {128, 5}, {0, 3}} {
		prev := 0
		for k := 0; k < tc.p; k++ {
			lo, hi := Split(tc.n, tc.p, k)
			if lo != prev {
				t.Fatalf("n=%d p=%d k=%d: gap, lo=%d want %d", tc.n, tc.p, k, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d k=%d: negative range [%d,%d)", tc.n, tc.p, k, lo, hi)
			}
			if sz := hi - lo; sz > tc.n/tc.p+1 {
				t.Fatalf("n=%d p=%d k=%d: uneven range size %d", tc.n, tc.p, k, sz)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d p=%d: ranges cover %d items", tc.n, tc.p, prev)
		}
	}
}

func TestEffective(t *testing.T) {
	if Effective(3) != 3 {
		t.Error("explicit level not honoured")
	}
	if Effective(0) < 1 || Effective(-1) < 1 {
		t.Error("default level must be at least 1")
	}
}
