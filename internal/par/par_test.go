package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 100
		var counts [n]int32
		Do(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoInlineWhenSequential(t *testing.T) {
	// workers=1 must preserve index order (inline execution).
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
	Do(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

func TestGangLockstepPhases(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7} {
		g := NewGang(size)
		if g.Size() != size {
			t.Fatalf("size = %d, want %d", g.Size(), size)
		}
		// Each phase must see the previous phase fully applied (barrier).
		sum := make([]int64, size)
		for phase := 0; phase < 50; phase++ {
			g.Do(func(k int) { sum[k]++ })
			var total int64
			g.Do(func(k int) {
				if k == 0 {
					for _, s := range sum {
						total += s
					}
				}
			})
			if want := int64(size) * int64(phase+1); total != want {
				t.Fatalf("size=%d phase=%d: barrier leak, sum %d want %d", size, phase, total, want)
			}
		}
		g.Close()
		g.Close() // idempotent
	}
}

func TestGangWorkerIdentityStable(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	seen := make([][]int, 4)
	for phase := 0; phase < 8; phase++ {
		g.Do(func(k int) { seen[k] = append(seen[k], k) })
	}
	for k, s := range seen {
		if len(s) != 8 {
			t.Fatalf("worker %d ran %d phases, want 8", k, len(s))
		}
		for _, v := range s {
			if v != k {
				t.Fatalf("worker identity drifted: %v on worker %d", v, k)
			}
		}
	}
}

// gangPanicValue runs one Do in which the given workers panic and returns
// the value recovered on the caller (nil if none surfaced).
func gangPanicValue(t *testing.T, g *Gang, panicking map[int]bool) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	g.Do(func(k int) {
		if panicking[k] {
			panic("worker exploded in phase fn")
		}
	})
	return nil
}

// TestGangPanicPropagation: a worker panic must surface on the caller with
// the original panic value and stack, must not deadlock the barrier, and
// must leave the gang usable for subsequent phases.
func TestGangPanicPropagation(t *testing.T) {
	for _, size := range []int{2, 4, 7} {
		g := NewGang(size)
		// Background-worker panic (worker != 0): before the fix this
		// crashed the whole process from the worker goroutine.
		v := gangPanicValue(t, g, map[int]bool{size - 1: true})
		wp, ok := v.(WorkerPanic)
		if !ok {
			t.Fatalf("size=%d: recovered %T %v, want WorkerPanic", size, v, v)
		}
		if wp.Worker != size-1 || wp.Value != "worker exploded in phase fn" {
			t.Fatalf("size=%d: WorkerPanic{Worker:%d Value:%v}", size, wp.Worker, wp.Value)
		}
		if !strings.Contains(string(wp.Stack), "gangPanicValue") {
			t.Errorf("size=%d: stack does not reach the panic site:\n%s", size, wp.Stack)
		}
		if !strings.Contains(wp.Error(), "original stack") {
			t.Errorf("size=%d: Error() omits the original stack", size)
		}
		// Caller-side panic (worker 0) surfaces the same way.
		if v := gangPanicValue(t, g, map[int]bool{0: true}); v.(WorkerPanic).Worker != 0 {
			t.Fatalf("size=%d: worker-0 panic did not surface as WorkerPanic", size)
		}
		// Several panicking workers: the lowest index wins, deterministically.
		if size > 2 {
			all := map[int]bool{}
			for k := 0; k < size; k++ {
				all[k] = true
			}
			if v := gangPanicValue(t, g, all); v.(WorkerPanic).Worker != 0 {
				t.Fatalf("size=%d: multi-panic picked worker %d, want 0", size, v.(WorkerPanic).Worker)
			}
		}
		// The barrier survives: later phases run on every worker.
		var ran int32
		for phase := 0; phase < 3; phase++ {
			g.Do(func(k int) { atomic.AddInt32(&ran, 1) })
		}
		if ran != int32(3*size) {
			t.Fatalf("size=%d: post-panic phases ran %d times, want %d", size, ran, 3*size)
		}
		g.Close()
	}
	// Sequential gang: the panic propagates inline with its native stack.
	g := NewGang(1)
	defer g.Close()
	if v := gangPanicValue(t, g, map[int]bool{0: true}); v != "worker exploded in phase fn" {
		t.Fatalf("size=1: recovered %v, want the raw panic value", v)
	}
}

func TestSplitContiguousAndComplete(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{16, 1}, {16, 4}, {17, 4}, {3, 8}, {128, 5}, {0, 3}} {
		prev := 0
		for k := 0; k < tc.p; k++ {
			lo, hi := Split(tc.n, tc.p, k)
			if lo != prev {
				t.Fatalf("n=%d p=%d k=%d: gap, lo=%d want %d", tc.n, tc.p, k, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d k=%d: negative range [%d,%d)", tc.n, tc.p, k, lo, hi)
			}
			if sz := hi - lo; sz > tc.n/tc.p+1 {
				t.Fatalf("n=%d p=%d k=%d: uneven range size %d", tc.n, tc.p, k, sz)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d p=%d: ranges cover %d items", tc.n, tc.p, prev)
		}
	}
}

func TestEffective(t *testing.T) {
	if Effective(3) != 3 {
		t.Error("explicit level not honoured")
	}
	if Effective(0) < 1 || Effective(-1) < 1 {
		t.Error("default level must be at least 1")
	}
}
