// Package flows defines flow records and their lifecycle accounting.
//
// A flow is a unidirectional ToR-to-ToR transfer of a known size. Following
// the paper's evaluation methodology (§4.1), ToRs are the network endpoints:
// a flow starts when its bytes are enqueued at the source ToR and completes
// when its last byte arrives at the destination ToR, so FCT includes
// queueing, scheduling and propagation delay but not host-side effects.
package flows

import (
	"fmt"

	"negotiator/internal/sim"
)

// Flow is one ToR-to-ToR transfer — or, when Count > 1, a flow group: one
// record standing for Count identical host flows (same src, dst, size,
// arrival and tag). A group's bytes are delivered FIFO, so member i
// completes exactly when the cumulative delivered bytes cross (i+1)·Size;
// the FCT sample stream is identical to Count separate flows. Size is
// always the per-member size; Total() is the record's byte footprint.
type Flow struct {
	ID      int64
	Src     int      // source ToR
	Dst     int      // destination ToR
	Size    int64    // bytes per member host flow
	Arrival sim.Time // enqueue time at the source ToR
	Tag     int      // application event tag (0 = untagged); set at injection
	Count   int32    // member host flows behind this record (0 and 1 both mean a single flow)

	sent      int64    // bytes that have left the source
	delivered int64    // bytes that have arrived at the destination
	completed sim.Time // delivery time of the last byte (valid once Done)
	done      bool
}

// Members reports how many host flows this record stands for (≥ 1).
func (f *Flow) Members() int64 {
	if f.Count > 1 {
		return int64(f.Count)
	}
	return 1
}

// Total reports the record's total byte size: Size per member.
func (f *Flow) Total() int64 {
	if f.Count > 1 {
		return f.Size * int64(f.Count)
	}
	return f.Size
}

// Sent reports how many bytes have left the source ToR.
func (f *Flow) Sent() int64 { return f.sent }

// Delivered reports how many bytes have arrived at the destination ToR.
func (f *Flow) Delivered() int64 { return f.delivered }

// Done reports whether the flow has fully arrived.
func (f *Flow) Done() bool { return f.done }

// FCT returns the flow completion time. It panics if the flow is not done.
func (f *Flow) FCT() sim.Duration {
	if !f.done {
		panic(fmt.Sprintf("flows: FCT of incomplete flow %d", f.ID))
	}
	return f.completed.Sub(f.Arrival)
}

// Completed returns the delivery time of the last byte.
func (f *Flow) Completed() sim.Time { return f.completed }

// NoteSent records n bytes leaving the source. It panics on overshoot,
// which would indicate a queue-accounting bug.
func (f *Flow) NoteSent(n int64) {
	f.sent += n
	if f.sent > f.Total() {
		panic(fmt.Sprintf("flows: flow %d sent %d of %d bytes", f.ID, f.sent, f.Total()))
	}
}

// Unsend returns n bytes to the unsent state. It models source-side
// requeueing after a link failure destroyed bytes in flight (the paper
// delegates recovery to upper-layer retransmission, §3.6.1).
func (f *Flow) Unsend(n int64) {
	f.sent -= n
	if f.sent < f.delivered {
		panic(fmt.Sprintf("flows: flow %d unsent below delivered", f.ID))
	}
}

// Deliver records n bytes arriving at the destination at time t and returns
// how many member host flows this delivery completed. Delivery within a
// group is FIFO, so member i completes when the cumulative delivered bytes
// reach (i+1)·Size; a single cell can complete several small members at
// once. For a single flow the return value is 0 or 1.
func (f *Flow) Deliver(n int64, t sim.Time) int {
	before := f.delivered
	f.delivered += n
	if f.delivered > f.Total() {
		panic(fmt.Sprintf("flows: flow %d delivered %d of %d bytes", f.ID, f.delivered, f.Total()))
	}
	if f.delivered == f.Total() && !f.done {
		f.done = true
		f.completed = t
	}
	return int(f.delivered/f.Size - before/f.Size)
}

// Ledger tracks byte conservation across an entire fabric: every injected
// byte must be delivered, queued, in flight, or (transiently) lost to a
// failure awaiting requeue. Engines feed the ledger and tests assert
// Balanced at epoch boundaries.
type Ledger struct {
	Injected  int64
	Delivered int64
	Lost      int64 // destroyed by link failures, before source requeue
}

// Queued returns the bytes the ledger implies are still inside the fabric
// (source queues, relay queues, or propagation flight).
func (l *Ledger) Queued() int64 { return l.Injected - l.Delivered - l.Lost }

// Check returns an error if the fabric-reported in-flight byte count does
// not match the ledger.
func (l *Ledger) Check(inFabric int64) error {
	if q := l.Queued(); q != inFabric {
		return fmt.Errorf("flows: conservation violated: ledger says %d bytes in fabric, engine says %d (injected=%d delivered=%d lost=%d)",
			q, inFabric, l.Injected, l.Delivered, l.Lost)
	}
	return nil
}
