package flows

import (
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func TestFlowLifecycle(t *testing.T) {
	f := &Flow{ID: 1, Src: 0, Dst: 5, Size: 1000, Arrival: 100}
	if f.Done() {
		t.Fatal("new flow should not be done")
	}
	f.NoteSent(600)
	if f.Sent() != 600 {
		t.Errorf("Sent = %d, want 600", f.Sent())
	}
	if m := f.Deliver(600, 2100); m != 0 {
		t.Errorf("partial delivery completed %d members, want 0", m)
	}
	f.NoteSent(400)
	if m := f.Deliver(400, 3100); m != 1 {
		t.Errorf("final delivery completed %d members, want 1", m)
	}
	if !f.Done() || f.Completed() != 3100 {
		t.Errorf("completed at %v, want 3100", f.Completed())
	}
	if got := f.FCT(); got != 3000 {
		t.Errorf("FCT = %v, want 3000", got)
	}
}

func TestFlowOvershootPanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	defer func() {
		if recover() == nil {
			t.Error("overshoot NoteSent should panic")
		}
	}()
	f.NoteSent(101)
}

func TestFlowDeliverOvershootPanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	f.NoteSent(100)
	defer func() {
		if recover() == nil {
			t.Error("overshoot Deliver should panic")
		}
	}()
	f.Deliver(101, 0)
}

func TestFCTOfIncompletePanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	defer func() {
		if recover() == nil {
			t.Error("FCT of incomplete flow should panic")
		}
	}()
	f.FCT()
}

func TestUnsend(t *testing.T) {
	f := &Flow{ID: 1, Size: 1000}
	f.NoteSent(500)
	f.Deliver(200, 50)
	f.Unsend(300) // 300 bytes were lost on a failed link
	if f.Sent() != 200 {
		t.Errorf("Sent after Unsend = %d, want 200", f.Sent())
	}
	defer func() {
		if recover() == nil {
			t.Error("Unsend below delivered should panic")
		}
	}()
	f.Unsend(1)
}

func TestLedger(t *testing.T) {
	l := &Ledger{}
	l.Injected = 1000
	l.Delivered = 600
	l.Lost = 100
	if q := l.Queued(); q != 300 {
		t.Errorf("Queued = %d, want 300", q)
	}
	if err := l.Check(300); err != nil {
		t.Errorf("balanced ledger flagged: %v", err)
	}
	if err := l.Check(299); err == nil {
		t.Error("imbalanced ledger not flagged")
	}
}

func TestLedgerProperty(t *testing.T) {
	f := func(inj, del uint16) bool {
		if del > inj {
			inj, del = del, inj
		}
		l := &Ledger{Injected: int64(inj), Delivered: int64(del)}
		return l.Check(int64(inj)-int64(del)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupMembersTotal(t *testing.T) {
	for _, tc := range []struct {
		count   int32
		members int64
		total   int64
	}{
		{0, 1, 1000}, // zero value: a single flow
		{1, 1, 1000},
		{7, 7, 7000},
	} {
		f := &Flow{ID: 1, Size: 1000, Count: tc.count}
		if got := f.Members(); got != tc.members {
			t.Errorf("Count=%d: Members = %d, want %d", tc.count, got, tc.members)
		}
		if got := f.Total(); got != tc.total {
			t.Errorf("Count=%d: Total = %d, want %d", tc.count, got, tc.total)
		}
	}
}

// TestGroupDeliverBoundaries pins the FIFO member-completion rule: member i
// of a k-group completes exactly when delivered bytes cross (i+1)·Size, so
// the completion counts Deliver returns across any partition of the byte
// stream sum to k, with each boundary crossed once.
func TestGroupDeliverBoundaries(t *testing.T) {
	f := &Flow{ID: 1, Size: 1000, Count: 3}
	f.NoteSent(3000)
	steps := []struct {
		n    int64
		want int
	}{
		{999, 0},  // just below the first boundary
		{1, 1},    // crosses member 0's boundary exactly
		{1500, 1}, // crosses member 1 (2000), lands mid-member-2
		{499, 0},  // still mid-member-2
		{1, 1},    // final byte completes member 2 and the group
	}
	var done int
	for i, s := range steps {
		got := f.Deliver(s.n, sim.Time(1000*(i+1)))
		if got != s.want {
			t.Errorf("step %d (+%d bytes): %d members completed, want %d", i, s.n, got, s.want)
		}
		done += got
	}
	if done != 3 {
		t.Errorf("total members completed = %d, want 3", done)
	}
	if !f.Done() {
		t.Error("group should be done after Total() bytes")
	}
}

func TestGroupDeliverOvershootPanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100, Count: 2}
	f.NoteSent(200) // Total() bytes: fine for a 2-group
	defer func() {
		if recover() == nil {
			t.Error("delivery past the group total should panic")
		}
	}()
	f.Deliver(201, 0)
}

func TestGroupRestoreProgressBounds(t *testing.T) {
	f := &Flow{ID: 1, Size: 100, Count: 3}
	if err := f.RestoreProgress(250, 150); err != nil {
		t.Errorf("mid-group progress rejected: %v", err)
	}
	g := &Flow{ID: 2, Size: 100, Count: 3}
	if err := g.RestoreProgress(301, 0); err == nil {
		t.Error("sent past group total not rejected")
	}
}

func TestFCTTimeArithmetic(t *testing.T) {
	f := &Flow{ID: 2, Size: 1, Arrival: sim.Time(10 * sim.Microsecond)}
	f.NoteSent(1)
	f.Deliver(1, sim.Time(16*sim.Microsecond))
	if got := f.FCT(); got != 6*sim.Microsecond {
		t.Errorf("FCT = %v, want 6µs", got)
	}
}
