package flows

import (
	"testing"
	"testing/quick"

	"negotiator/internal/sim"
)

func TestFlowLifecycle(t *testing.T) {
	f := &Flow{ID: 1, Src: 0, Dst: 5, Size: 1000, Arrival: 100}
	if f.Done() {
		t.Fatal("new flow should not be done")
	}
	f.NoteSent(600)
	if f.Sent() != 600 {
		t.Errorf("Sent = %d, want 600", f.Sent())
	}
	if f.Deliver(600, 2100) {
		t.Error("partial delivery should not complete flow")
	}
	f.NoteSent(400)
	if !f.Deliver(400, 3100) {
		t.Error("final delivery should complete flow")
	}
	if !f.Done() || f.Completed() != 3100 {
		t.Errorf("completed at %v, want 3100", f.Completed())
	}
	if got := f.FCT(); got != 3000 {
		t.Errorf("FCT = %v, want 3000", got)
	}
}

func TestFlowOvershootPanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	defer func() {
		if recover() == nil {
			t.Error("overshoot NoteSent should panic")
		}
	}()
	f.NoteSent(101)
}

func TestFlowDeliverOvershootPanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	f.NoteSent(100)
	defer func() {
		if recover() == nil {
			t.Error("overshoot Deliver should panic")
		}
	}()
	f.Deliver(101, 0)
}

func TestFCTOfIncompletePanics(t *testing.T) {
	f := &Flow{ID: 1, Size: 100}
	defer func() {
		if recover() == nil {
			t.Error("FCT of incomplete flow should panic")
		}
	}()
	f.FCT()
}

func TestUnsend(t *testing.T) {
	f := &Flow{ID: 1, Size: 1000}
	f.NoteSent(500)
	f.Deliver(200, 50)
	f.Unsend(300) // 300 bytes were lost on a failed link
	if f.Sent() != 200 {
		t.Errorf("Sent after Unsend = %d, want 200", f.Sent())
	}
	defer func() {
		if recover() == nil {
			t.Error("Unsend below delivered should panic")
		}
	}()
	f.Unsend(1)
}

func TestLedger(t *testing.T) {
	l := &Ledger{}
	l.Injected = 1000
	l.Delivered = 600
	l.Lost = 100
	if q := l.Queued(); q != 300 {
		t.Errorf("Queued = %d, want 300", q)
	}
	if err := l.Check(300); err != nil {
		t.Errorf("balanced ledger flagged: %v", err)
	}
	if err := l.Check(299); err == nil {
		t.Error("imbalanced ledger not flagged")
	}
}

func TestLedgerProperty(t *testing.T) {
	f := func(inj, del uint16) bool {
		if del > inj {
			inj, del = del, inj
		}
		l := &Ledger{Injected: int64(inj), Delivered: int64(del)}
		return l.Check(int64(inj)-int64(del)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCTTimeArithmetic(t *testing.T) {
	f := &Flow{ID: 2, Size: 1, Arrival: sim.Time(10 * sim.Microsecond)}
	f.NoteSent(1)
	f.Deliver(1, sim.Time(16*sim.Microsecond))
	if got := f.FCT(); got != 6*sim.Microsecond {
		t.Errorf("FCT = %v, want 6µs", got)
	}
}
