package flows

import "fmt"

// RestoreProgress sets a flow's transmission cursors from a checkpoint.
// Only live (incomplete) flows are checkpointed — completed flows survive
// solely as metric samples — so the flow must still be short of full
// delivery. Note sent may equal Size while delivered lags: a relay-class
// loss requeues bytes without unsending them (paper §3.6.1).
func (f *Flow) RestoreProgress(sent, delivered int64) error {
	if f.done {
		return fmt.Errorf("flows: restore into completed flow %d", f.ID)
	}
	if delivered < 0 || sent < delivered || sent > f.Total() || delivered >= f.Total() {
		return fmt.Errorf("flows: flow %d: invalid restored progress sent=%d delivered=%d size=%d",
			f.ID, sent, delivered, f.Total())
	}
	f.sent, f.delivered = sent, delivered
	return nil
}
