package failure

import (
	"testing"

	"negotiator/internal/sim"
)

func TestEventActiveAt(t *testing.T) {
	e := Event{Link: Link{0, 0, false}, FailAt: 100, RecoverAt: 200}
	for _, tc := range []struct {
		t    sim.Time
		want bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := e.ActiveAt(tc.t); got != tc.want {
			t.Errorf("ActiveAt(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	forever := Event{Link: Link{0, 0, false}, FailAt: 100}
	if !forever.ActiveAt(1 << 40) {
		t.Error("unrecovered event should stay active")
	}
}

func TestFillAndPathOK(t *testing.T) {
	p := &Plan{
		Events: []Event{
			{Link: Link{ToR: 1, Port: 2, Ingress: false}, FailAt: 100, RecoverAt: 300},
			{Link: Link{ToR: 4, Port: 0, Ingress: true}, FailAt: 100, RecoverAt: 300},
		},
		DetectDelay: 50,
	}
	st := NewState(8, 4)
	p.Fill(st, 150)
	if st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}
	if st.PathOK(1, 5, 2) {
		t.Error("egress failure should break path from tor1 port2")
	}
	if st.PathOK(3, 4, 0) {
		t.Error("ingress failure should break path into tor4 port0")
	}
	if !st.PathOK(1, 5, 3) || !st.PathOK(3, 4, 1) {
		t.Error("healthy ports flagged")
	}
	// After recovery.
	p.Fill(st, 300)
	if st.Count != 0 || !st.PathOK(1, 5, 2) {
		t.Error("recovered links still failed")
	}
	// Nil plan is healthy.
	var nilPlan *Plan
	nilPlan.Fill(st, 0)
	if st.Count != 0 {
		t.Error("nil plan should be healthy")
	}
}

func TestFillDeduplicates(t *testing.T) {
	p := &Plan{Events: []Event{
		{Link: Link{ToR: 0, Port: 0}, FailAt: 0},
		{Link: Link{ToR: 0, Port: 0}, FailAt: 0},
	}}
	st := p.Fill(NewState(2, 2), 10)
	if st.Count != 1 {
		t.Errorf("duplicate events double counted: %d", st.Count)
	}
}

func TestFillIgnoresOutOfRange(t *testing.T) {
	p := &Plan{Events: []Event{{Link: Link{ToR: 99, Port: 0}, FailAt: 0}}}
	st := p.Fill(NewState(2, 2), 10)
	if st.Count != 0 {
		t.Error("out-of-range link counted")
	}
}

func TestRandomPlan(t *testing.T) {
	var n, s = 16, 4
	p := Random(n, s, 0.1, 1000, 2000, 100, 7)
	want := int(0.1*float64(2*n*s) + 0.5)
	if len(p.Events) != want {
		t.Fatalf("events = %d, want %d", len(p.Events), want)
	}
	seen := map[Link]bool{}
	for _, e := range p.Events {
		if e.FailAt != 1000 || e.RecoverAt != 2000 {
			t.Fatalf("bad interval: %+v", e)
		}
		if seen[e.Link] {
			t.Fatalf("duplicate link %v", e.Link)
		}
		seen[e.Link] = true
		if e.Link.ToR < 0 || e.Link.ToR >= n || e.Link.Port < 0 || e.Link.Port >= s {
			t.Fatalf("link out of range: %v", e.Link)
		}
	}
	st := p.Fill(NewState(n, s), 1500)
	if st.Count != want {
		t.Errorf("active count = %d, want %d", st.Count, want)
	}
	// Full failure is clamped.
	full := Random(2, 1, 2.0, 0, 0, 0, 1)
	if len(full.Events) != 4 {
		t.Errorf("clamped plan has %d events, want 4", len(full.Events))
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 4, 0.25, 0, 100, 10, 42)
	b := Random(8, 4, 0.25, 0, 100, 10, 42)
	if len(a.Events) != len(b.Events) {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("non-deterministic events")
		}
	}
}

func TestSinglePlanAndString(t *testing.T) {
	links := []Link{{ToR: 3, Port: 1, Ingress: false}, {ToR: 3, Port: 1, Ingress: true}}
	p := Single(links, 100, 200, 10)
	if len(p.Events) != 2 || p.DetectDelay != 10 {
		t.Fatalf("bad plan: %+v", p)
	}
	if got := links[0].String(); got != "tor3/port1/egress" {
		t.Errorf("String = %q", got)
	}
	if got := links[1].String(); got != "tor3/port1/ingress" {
		t.Errorf("String = %q", got)
	}
}
