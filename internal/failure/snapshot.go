package failure

import (
	"math"

	"negotiator/internal/sim"
)

// NeverAdvanced is Now's value on a cursor that has not seen its first
// AdvanceTo call.
const NeverAdvanced = sim.Time(math.MinInt64)

// Now reports the time the cursor last advanced to (NeverAdvanced before
// the first AdvanceTo). A cursor is a pure function of (plan, time) — its
// dense state, applied-transition index and reference counts are all
// reproduced by advancing a fresh cursor over the same plan to Now — so
// checkpoints store only this one value and restore by replay.
func (c *Cursor) Now() sim.Time { return c.now }
