package failure

import (
	"math"
	"sort"

	"negotiator/internal/sim"
)

// Cursor advances a plan's link-state snapshot incrementally: instead of
// rebuilding the dense State from every event each epoch (Plan.Fill,
// O(N·S + events)), it applies only the transitions whose time was
// crossed since the last advance. Epochs with no transitions cost O(1),
// so failure plans no longer reintroduce a per-epoch topology-size term.
//
// Overlapping events on the same link are handled by per-link reference
// counts: a link is down while at least one event covering it is active,
// exactly the semantics Fill's any-active-event scan produces. The
// equivalence is pinned by TestCursorMatchesFill across random plans.
type Cursor struct {
	st    *State
	trans []transition
	next  int     // first unapplied transition
	refs  []int32 // active-event count per directed link
	now   sim.Time
	s     int
}

// transition is one edge of one event: at time at, link idx gains (down)
// or loses (up) one active-event reference.
type transition struct {
	at   sim.Time
	idx  int32
	down bool
}

// NewCursor builds a cursor over the plan for an n-ToR, s-port fabric,
// positioned before every transition (the all-healthy state). A nil plan
// yields a cursor that stays healthy forever. Out-of-range links are
// skipped, exactly as Fill skips them.
func NewCursor(p *Plan, n, s int) *Cursor {
	c := &Cursor{st: NewState(n, s), now: math.MinInt64, s: s}
	if p == nil {
		return c
	}
	for _, e := range p.Events {
		l := e.Link
		if l.ToR < 0 || l.ToR >= n || l.Port < 0 || l.Port >= s {
			continue
		}
		idx := int32((l.ToR*s + l.Port) << 1)
		if l.Ingress {
			idx |= 1
		}
		c.trans = append(c.trans, transition{at: e.FailAt, idx: idx, down: true})
		if e.RecoverAt > e.FailAt {
			c.trans = append(c.trans, transition{at: e.RecoverAt, idx: idx, down: false})
		}
	}
	if len(c.trans) > 0 {
		// Stable time order; same-time transitions commute under reference
		// counting (a link's up edges never outnumber its applied downs).
		sort.SliceStable(c.trans, func(i, j int) bool { return c.trans[i].at < c.trans[j].at })
		c.refs = make([]int32, 2*n*s)
	}
	return c
}

// State returns the live snapshot the cursor maintains. The pointer is
// stable for the cursor's lifetime; AdvanceTo mutates it in place.
func (c *Cursor) State() *State { return c.st }

// AdvanceTo applies every transition at or before t and returns the
// snapshot, equal to Plan.Fill(st, t) by construction. Time must not move
// backwards (engines advance once per round).
func (c *Cursor) AdvanceTo(t sim.Time) *State {
	if t < c.now {
		panic("failure: cursor advanced backwards")
	}
	c.now = t
	for c.next < len(c.trans) && c.trans[c.next].at <= t {
		tr := c.trans[c.next]
		c.next++
		i, p := int(tr.idx>>1)/c.s, int(tr.idx>>1)%c.s
		row := c.st.Egress
		if tr.idx&1 == 1 {
			row = c.st.Ingress
		}
		if tr.down {
			if c.refs[tr.idx]++; c.refs[tr.idx] == 1 {
				row[i][p] = true
				c.st.Count++
			}
		} else {
			if c.refs[tr.idx]--; c.refs[tr.idx] == 0 {
				row[i][p] = false
				c.st.Count--
			}
		}
	}
	return c.st
}

// Pending reports how many transitions the cursor has not yet applied —
// zero once the plan's dynamics are exhausted.
func (c *Cursor) Pending() int { return len(c.trans) - c.next }

// NextTransition reports the time of the earliest unapplied transition.
// ok is false once the plan's dynamics are exhausted — the snapshot will
// never change again, so an event-skipping run loop needs no further
// failure wake-ups.
func (c *Cursor) NextTransition() (at sim.Time, ok bool) {
	if c.next >= len(c.trans) {
		return 0, false
	}
	return c.trans[c.next].at, true
}
