// Package failure describes optical link failure scenarios for the fault
// tolerance evaluation (paper §3.6.1, §4.3, Appendix A.4).
//
// A link is one direction of one ToR uplink port's fibre: the egress fibre
// carries the ToR's transmissions into its AWGR, the ingress fibre carries
// receptions out of it. Failing either direction silently destroys the bits
// crossing it, exactly like a fibre cut under a passive AWGR.
//
// Detection is modelled after the paper's dummy-message mechanism: ToRs
// notice missing predefined-phase traffic and broadcast the failure, so the
// fabric's knowledge of a link's state lags its actual state by a detection
// delay. Engines query both the actual state (to destroy bits) and the
// known state (to exclude links from scheduling).
package failure

import (
	"fmt"

	"negotiator/internal/sim"
)

// Link identifies one direction of one uplink port.
type Link struct {
	ToR     int
	Port    int
	Ingress bool // false = egress
}

func (l Link) String() string {
	dir := "egress"
	if l.Ingress {
		dir = "ingress"
	}
	return fmt.Sprintf("tor%d/port%d/%s", l.ToR, l.Port, dir)
}

// Event fails one link for the interval [FailAt, RecoverAt).
type Event struct {
	Link      Link
	FailAt    sim.Time
	RecoverAt sim.Time // zero or negative means never recovers
}

// Plan is a full failure scenario.
type Plan struct {
	Events []Event
	// DetectDelay is how long the fabric's knowledge lags reality, in both
	// directions (failure detection and recovery detection). The paper's
	// mechanism detects within a few predefined phases.
	DetectDelay sim.Duration
}

// ActiveAt reports whether the event's link is down at time t.
func (e Event) ActiveAt(t sim.Time) bool {
	if t < e.FailAt {
		return false
	}
	return e.RecoverAt <= e.FailAt || t < e.RecoverAt
}

// State is a point-in-time snapshot of link health as dense bitmaps,
// rebuilt once per epoch by engines.
type State struct {
	Egress  [][]bool // [tor][port]
	Ingress [][]bool
	Count   int
}

// NewState allocates a healthy snapshot for n ToRs with s ports.
func NewState(n, s int) *State {
	st := &State{Egress: make([][]bool, n), Ingress: make([][]bool, n)}
	for i := 0; i < n; i++ {
		st.Egress[i] = make([]bool, s)
		st.Ingress[i] = make([]bool, s)
	}
	return st
}

// Fill sets the snapshot to the plan's state at time t and returns it.
func (p *Plan) Fill(st *State, t sim.Time) *State {
	for i := range st.Egress {
		for s := range st.Egress[i] {
			st.Egress[i][s] = false
			st.Ingress[i][s] = false
		}
	}
	st.Count = 0
	if p == nil {
		return st
	}
	for _, e := range p.Events {
		if !e.ActiveAt(t) {
			continue
		}
		l := e.Link
		if l.ToR < 0 || l.ToR >= len(st.Egress) || l.Port < 0 || l.Port >= len(st.Egress[l.ToR]) {
			continue
		}
		if l.Ingress {
			if !st.Ingress[l.ToR][l.Port] {
				st.Ingress[l.ToR][l.Port] = true
				st.Count++
			}
		} else {
			if !st.Egress[l.ToR][l.Port] {
				st.Egress[l.ToR][l.Port] = true
				st.Count++
			}
		}
	}
	return st
}

// PathOK reports whether the directed path src.port -> dst.port is healthy
// in this snapshot.
func (st *State) PathOK(src, dst, port int) bool {
	return !st.Egress[src][port] && !st.Ingress[dst][port]
}

// Random builds a plan failing fraction of all 2·n·s directed links
// simultaneously at failAt and recovering them at recoverAt, the scenario
// of the paper's Figure 10.
func Random(n, s int, fraction float64, failAt, recoverAt sim.Time, detect sim.Duration, seed int64) *Plan {
	p := &Plan{DetectDelay: detect}
	for _, l := range randomLinks(n, s, fraction, seed) {
		p.Events = append(p.Events, Event{Link: l, FailAt: failAt, RecoverAt: recoverAt})
	}
	return p
}

// Single builds a plan failing exactly the given links over the interval,
// used by the single-pair micro-observation (Appendix A.4).
func Single(links []Link, failAt, recoverAt sim.Time, detect sim.Duration) *Plan {
	p := &Plan{DetectDelay: detect}
	for _, l := range links {
		p.Events = append(p.Events, Event{Link: l, FailAt: failAt, RecoverAt: recoverAt})
	}
	return p
}
