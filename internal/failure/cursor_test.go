package failure

import (
	"testing"

	"negotiator/internal/sim"
)

// statesEqual compares a cursor snapshot against a Fill reference.
func statesEqual(a, b *State) bool {
	if a.Count != b.Count {
		return false
	}
	for i := range a.Egress {
		for s := range a.Egress[i] {
			if a.Egress[i][s] != b.Egress[i][s] || a.Ingress[i][s] != b.Ingress[i][s] {
				return false
			}
		}
	}
	return true
}

// TestCursorMatchesFill pins the tentpole equivalence: advancing the
// event-transition cursor epoch by epoch produces exactly the snapshot the
// dense Fill rebuild produces at every boundary, across random plans of
// every scenario shape (simultaneous cuts, flapping, correlated port
// group, whole-ToR outage) plus adversarial hand-built overlaps.
func TestCursorMatchesFill(t *testing.T) {
	const n, s = 12, 4
	const epoch = sim.Duration(100)
	plans := map[string]*Plan{
		"random":          Random(n, s, 0.25, 350, 1250, 100, 7),
		"random-forever":  Random(n, s, 0.1, 500, 0, 100, 8),
		"flapping":        Flapping(n, s, 0.2, 300, 400, 150, 6, 100, 9),
		"port-group":      PortGroup(n, s, 2, 400, 1600, 100),
		"tor-down":        ToRDown(n, s, 5, 250, 900, 100),
		"empty":           {DetectDelay: 100},
		"overlapping":     {Events: []Event{{Link: Link{ToR: 1, Port: 1}, FailAt: 100, RecoverAt: 500}, {Link: Link{ToR: 1, Port: 1}, FailAt: 300, RecoverAt: 800}}},
		"duplicate":       {Events: []Event{{Link: Link{ToR: 2, Port: 0}, FailAt: 200, RecoverAt: 600}, {Link: Link{ToR: 2, Port: 0}, FailAt: 200, RecoverAt: 600}}},
		"never-recovers":  {Events: []Event{{Link: Link{ToR: 3, Port: 3, Ingress: true}, FailAt: 400, RecoverAt: 400}, {Link: Link{ToR: 4, Port: 0}, FailAt: 600, RecoverAt: 100}}},
		"out-of-range":    {Events: []Event{{Link: Link{ToR: n, Port: 0}, FailAt: 0}, {Link: Link{ToR: 0, Port: s}, FailAt: 0}, {Link: Link{ToR: -1, Port: 0}, FailAt: 0}, {Link: Link{ToR: 0, Port: 1}, FailAt: 100, RecoverAt: 900}}},
		"same-time-edges": {Events: []Event{{Link: Link{ToR: 6, Port: 2}, FailAt: 100, RecoverAt: 500}, {Link: Link{ToR: 6, Port: 2}, FailAt: 500, RecoverAt: 900}}},
	}
	for name, p := range plans {
		t.Run(name, func(t *testing.T) {
			cur := NewCursor(p, n, s)
			ref := NewState(n, s)
			for e := 0; e <= 25; e++ {
				at := sim.Time(0).Add(sim.Duration(e) * epoch)
				got := cur.AdvanceTo(at)
				p.Fill(ref, at)
				if !statesEqual(got, ref) {
					t.Fatalf("epoch %d (t=%v): cursor count=%d, Fill count=%d", e, at, got.Count, ref.Count)
				}
			}
			if cur.Pending() != 0 {
				t.Errorf("transitions left after plan exhausted: %d", cur.Pending())
			}
		})
	}
}

func TestCursorNilPlan(t *testing.T) {
	cur := NewCursor(nil, 4, 2)
	if st := cur.AdvanceTo(1 << 40); st.Count != 0 {
		t.Errorf("nil-plan cursor not healthy: %d", st.Count)
	}
	if cur.Pending() != 0 {
		t.Errorf("nil-plan cursor has transitions")
	}
}

func TestCursorStablePointer(t *testing.T) {
	p := Single([]Link{{ToR: 0, Port: 0}}, 100, 200, 0)
	cur := NewCursor(p, 2, 2)
	st := cur.State()
	if cur.AdvanceTo(150) != st || cur.State() != st {
		t.Error("snapshot pointer not stable across advances")
	}
	if !st.Egress[0][0] || st.Count != 1 {
		t.Error("advance did not mutate the snapshot in place")
	}
}

func TestCursorPanicsOnBackwardsTime(t *testing.T) {
	cur := NewCursor(Single([]Link{{ToR: 0, Port: 0}}, 100, 200, 0), 2, 2)
	cur.AdvanceTo(150)
	defer func() {
		if recover() == nil {
			t.Error("backwards advance did not panic")
		}
	}()
	cur.AdvanceTo(149)
}

// TestCursorNegativeTime covers the known-state cursor, which advances to
// now-detect and therefore starts at negative times.
func TestCursorNegativeTime(t *testing.T) {
	p := Single([]Link{{ToR: 1, Port: 0}}, 100, 200, 300)
	cur := NewCursor(p, 2, 2)
	if st := cur.AdvanceTo(-200); st.Count != 0 {
		t.Errorf("negative-time advance failed links: %d", st.Count)
	}
	if st := cur.AdvanceTo(150); st.Count != 1 {
		t.Errorf("advance from negative time missed the failure: %d", st.Count)
	}
}

func TestCursorNeverRecovers(t *testing.T) {
	// RecoverAt <= FailAt means the link never comes back: the cursor must
	// emit no up edge at all, not an up edge at a bogus time.
	for _, rec := range []sim.Time{0, 50, 100} {
		p := &Plan{Events: []Event{{Link: Link{ToR: 0, Port: 1}, FailAt: 100, RecoverAt: rec}}}
		cur := NewCursor(p, 2, 2)
		if st := cur.AdvanceTo(1 << 50); st.Count != 1 || !st.Egress[0][1] {
			t.Errorf("RecoverAt=%d: link recovered, count=%d", rec, st.Count)
		}
		if cur.Pending() != 0 {
			t.Errorf("RecoverAt=%d: phantom up edge pending", rec)
		}
	}
}

func TestCursorSkipsOutOfRangeLinks(t *testing.T) {
	p := &Plan{Events: []Event{
		{Link: Link{ToR: 5, Port: 0}, FailAt: 0},
		{Link: Link{ToR: 0, Port: 5}, FailAt: 0},
		{Link: Link{ToR: -1, Port: -1}, FailAt: 0},
	}}
	cur := NewCursor(p, 2, 2)
	if st := cur.AdvanceTo(100); st.Count != 0 {
		t.Errorf("out-of-range links entered the snapshot: %d", st.Count)
	}
}

func TestCursorDuplicateEventsCountOnce(t *testing.T) {
	p := &Plan{Events: []Event{
		{Link: Link{ToR: 0, Port: 0}, FailAt: 100, RecoverAt: 300},
		{Link: Link{ToR: 0, Port: 0}, FailAt: 100, RecoverAt: 300},
		{Link: Link{ToR: 0, Port: 0}, FailAt: 100, RecoverAt: 300},
	}}
	cur := NewCursor(p, 2, 2)
	if st := cur.AdvanceTo(200); st.Count != 1 {
		t.Errorf("duplicate events double counted: %d", st.Count)
	}
	if st := cur.AdvanceTo(400); st.Count != 0 {
		t.Errorf("duplicate recoveries miscounted: %d", st.Count)
	}
}

func TestFlappingPlan(t *testing.T) {
	const n, s = 8, 4
	p := Flapping(n, s, 0.25, 1000, 400, 100, 5, 30, 3)
	total := 2 * n * s
	links := int(0.25*float64(total) + 0.5)
	if len(p.Events) != links*5 {
		t.Fatalf("events = %d, want %d links x 5 cycles", len(p.Events), links)
	}
	if p.DetectDelay != 30 {
		t.Errorf("detect = %v", p.DetectDelay)
	}
	st := NewState(n, s)
	// Down during each cycle's first 100, up for the remaining 300.
	for c := 0; c < 5; c++ {
		base := sim.Time(1000 + 400*c)
		if p.Fill(st, base.Add(50)); st.Count != links {
			t.Errorf("cycle %d down phase: %d active, want %d", c, st.Count, links)
		}
		if p.Fill(st, base.Add(250)); st.Count != 0 {
			t.Errorf("cycle %d up phase: %d active, want 0", c, st.Count)
		}
	}
	if p.Fill(st, 1000+400*5+50); st.Count != 0 {
		t.Errorf("flapping past last cycle: %d active", st.Count)
	}
	// Zero/oversized downFor clamps to the full period (link stays down
	// across every cycle boundary).
	solid := Flapping(n, s, 0.25, 0, 400, 0, 3, 30, 3)
	if solid.Fill(st, 399); st.Count != links {
		t.Errorf("clamped downFor: %d active at cycle boundary, want %d", st.Count, links)
	}
}

func TestPortGroupPlan(t *testing.T) {
	const n, s = 6, 4
	p := PortGroup(n, s, 2, 100, 900, 50)
	if len(p.Events) != 2*n {
		t.Fatalf("events = %d, want %d (both directions on every ToR)", len(p.Events), 2*n)
	}
	st := p.Fill(NewState(n, s), 500)
	for i := 0; i < n; i++ {
		if !st.Egress[i][2] || !st.Ingress[i][2] {
			t.Fatalf("tor %d port 2 not failed in both directions", i)
		}
		for q := 0; q < s; q++ {
			if q != 2 && (st.Egress[i][q] || st.Ingress[i][q]) {
				t.Fatalf("tor %d port %d failed, expected only port 2", i, q)
			}
		}
	}
	// Out-of-range port yields an empty (harmless) plan.
	if empty := PortGroup(n, s, s, 0, 0, 0); len(empty.Events) != 0 {
		t.Errorf("out-of-range port produced %d events", len(empty.Events))
	}
	if empty := PortGroup(n, s, -1, 0, 0, 0); len(empty.Events) != 0 {
		t.Errorf("negative port produced %d events", len(empty.Events))
	}
}

func TestToRDownPlan(t *testing.T) {
	const n, s = 6, 4
	p := ToRDown(n, s, 3, 100, 900, 50)
	if len(p.Events) != 2*s {
		t.Fatalf("events = %d, want %d (every port, both directions)", len(p.Events), 2*s)
	}
	st := p.Fill(NewState(n, s), 500)
	for q := 0; q < s; q++ {
		if !st.Egress[3][q] || !st.Ingress[3][q] {
			t.Fatalf("tor 3 port %d not fully dark", q)
		}
	}
	if st.Count != 2*s {
		t.Errorf("count = %d, want %d", st.Count, 2*s)
	}
	// No path in or out of the dark ToR; unrelated pairs unaffected.
	if st.PathOK(3, 0, 1) || st.PathOK(0, 3, 1) {
		t.Error("paths through the dark ToR reported healthy")
	}
	if !st.PathOK(0, 1, 2) {
		t.Error("unrelated pair broken")
	}
	// After restart everything heals.
	if p.Fill(st, 900); st.Count != 0 {
		t.Errorf("restart left %d links dark", st.Count)
	}
	if empty := ToRDown(n, s, n, 0, 0, 0); len(empty.Events) != 0 {
		t.Errorf("out-of-range ToR produced %d events", len(empty.Events))
	}
}
