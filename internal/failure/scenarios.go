package failure

import "negotiator/internal/sim"

// randomLinks picks fraction of all 2·n·s directed links, the selection
// underlying Random. Kept separate so scenario builders share the exact
// sampling (same seed → same links regardless of event shape).
func randomLinks(n, s int, fraction float64, seed int64) []Link {
	total := 2 * n * s
	k := int(fraction*float64(total) + 0.5)
	if k > total {
		k = total
	}
	rng := sim.NewRNG(seed)
	perm := make([]int, total)
	rng.Perm(perm)
	links := make([]Link, 0, k)
	for _, idx := range perm[:k] {
		links = append(links, Link{ToR: (idx / 2) / s, Port: (idx / 2) % s, Ingress: idx%2 == 1})
	}
	return links
}

// Flapping builds a plan where fraction of all directed links flap: each
// selected link goes down for downFor at the start of every period, for
// cycles periods beginning at failAt. Flapping exercises recovery-detection
// lag — the fabric keeps scheduling onto a link that just dropped, and
// keeps avoiding one that just came back.
func Flapping(n, s int, fraction float64, failAt sim.Time, period, downFor sim.Duration, cycles int, detect sim.Duration, seed int64) *Plan {
	if downFor <= 0 || downFor > period {
		downFor = period
	}
	p := &Plan{DetectDelay: detect}
	for _, l := range randomLinks(n, s, fraction, seed) {
		for c := 0; c < cycles; c++ {
			at := failAt.Add(sim.Duration(c) * period)
			p.Events = append(p.Events, Event{Link: l, FailAt: at, RecoverAt: at.Add(downFor)})
		}
	}
	return p
}

// PortGroup builds a correlated scenario: one AWGR dies, taking out the
// same port index on every ToR in both directions over [failAt, recoverAt).
// Unlike Random, the survivors form a structured subgraph — every ToR pair
// loses exactly the predefined slots that map to that port.
func PortGroup(n, s, port int, failAt, recoverAt sim.Time, detect sim.Duration) *Plan {
	p := &Plan{DetectDelay: detect}
	if port < 0 || port >= s {
		return p
	}
	for i := 0; i < n; i++ {
		l := Link{ToR: i, Port: port}
		p.Events = append(p.Events,
			Event{Link: l, FailAt: failAt, RecoverAt: recoverAt},
			Event{Link: Link{ToR: i, Port: port, Ingress: true}, FailAt: failAt, RecoverAt: recoverAt})
	}
	return p
}

// ToRDown powers one ToR down over [failAt, recoverAt): every port, both
// directions. Traffic destined to it is lost until detection; traffic from
// it stops at the source. Restart is modelled by recovery.
func ToRDown(n, s, tor int, failAt, recoverAt sim.Time, detect sim.Duration) *Plan {
	p := &Plan{DetectDelay: detect}
	if tor < 0 || tor >= n {
		return p
	}
	for port := 0; port < s; port++ {
		p.Events = append(p.Events,
			Event{Link: Link{ToR: tor, Port: port}, FailAt: failAt, RecoverAt: recoverAt},
			Event{Link: Link{ToR: tor, Port: port, Ingress: true}, FailAt: failAt, RecoverAt: recoverAt})
	}
	return p
}
