package failure

import (
	"testing"

	"negotiator/internal/sim"
)

// The quiescent-epoch guard: once a plan's transitions are exhausted (or
// simply between transitions), advancing the cursor must cost O(1) —
// independent of fabric size — where the dense Fill rebuild pays O(N·S)
// every epoch. Compare:
//
//	go test -bench 'Quiet' -benchtime 100000x ./internal/failure/
//
// BenchmarkCursorQuietEpoch must stay flat as N·S grows (a few ns);
// BenchmarkFillQuietEpoch scales with the 4096x16 bitmap it rewrites.
const benchToRs, benchPorts = 4096, 16

func quietPlan() *Plan {
	// All dynamics in the first microsecond; everything after is quiet.
	return Random(benchToRs, benchPorts, 0.05, 0, sim.Time(sim.Microsecond), sim.Microsecond, 7)
}

func BenchmarkCursorQuietEpoch(b *testing.B) {
	p := quietPlan()
	c := NewCursor(p, benchToRs, benchPorts)
	c.AdvanceTo(sim.Time(2 * sim.Microsecond)) // cross every transition once
	epoch := sim.Duration(3 * sim.Microsecond)
	t := sim.Time(2 * sim.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(epoch)
		c.AdvanceTo(t)
	}
}

func BenchmarkFillQuietEpoch(b *testing.B) {
	p := quietPlan()
	st := NewState(benchToRs, benchPorts)
	epoch := sim.Duration(3 * sim.Microsecond)
	t := sim.Time(2 * sim.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(epoch)
		p.Fill(st, t)
	}
}

// TestQuietAdvanceDoesNoWork pins the O(1) claim mechanically: past the
// last transition, AdvanceTo neither allocates nor touches the bitmap.
func TestQuietAdvanceDoesNoWork(t *testing.T) {
	p := quietPlan()
	c := NewCursor(p, benchToRs, benchPorts)
	c.AdvanceTo(sim.Time(2 * sim.Microsecond))
	if c.Pending() != 0 {
		t.Fatalf("plan not exhausted: %d transitions pending", c.Pending())
	}
	at := sim.Time(3 * sim.Microsecond)
	if allocs := testing.AllocsPerRun(100, func() {
		at = at.Add(sim.Microsecond)
		c.AdvanceTo(at)
	}); allocs != 0 {
		t.Errorf("quiet advance allocates (%v allocs/op)", allocs)
	}
}
