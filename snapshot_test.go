package negotiator_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	negotiator "negotiator"
	"negotiator/internal/workload"
)

// snapshotRun runs a spec for snapAt epochs at snapWorkers, checkpoints,
// restores the checkpoint into a freshly built fabric at restoreWorkers,
// runs the remaining epochs there, and renders the same comparable string
// as shardRun — the checkpoint/restore analogue of the worker-invariance
// harness. The restored fabric gets an identically constructed workload
// generator, which Restore fast-forwards to the checkpointed position.
func snapshotRun(t *testing.T, spec negotiator.Spec, snapWorkers, restoreWorkers, snapAt, epochs int, load float64) string {
	t.Helper()
	spec.Workers = snapWorkers
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, spec.Seed+6))
	fab.RunEpochs(snapAt)
	var buf bytes.Buffer
	if err := fab.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot at epoch %d: %v", snapAt, err)
	}

	spec.Workers = restoreWorkers
	fab2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab2.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, spec.Seed+6))
	if err := fab2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore at epoch %d: %v", snapAt, err)
	}
	fab2.RunEpochs(epochs - snapAt)
	return fmt.Sprintf("%+v | cdf=%v", fab2.Summary(), fab2.MiceCDF(24))
}

// TestSnapshotRestoreEquivalence is the checkpoint contract over the whole
// golden matrix: run 60 of 120 epochs, checkpoint, restore into a fresh
// fabric, run the remaining 60 — the result must be byte-identical to the
// uninterrupted run (the same string the golden fingerprints lock). This
// covers every scheduler variant, both topologies, all three control
// planes, and the failure scenarios (random links recovered mid-run,
// flapping links snapshotted mid-cycle, a ToR power cycle with detection
// lag) whose loss and requeue state must survive the round trip.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, c := range fingerprintCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want := fingerprint(t, c.spec)
			if got := snapshotRun(t, c.spec, 1, 1, 60, 120, 0.7); got != want {
				t.Errorf("restored run diverges from uninterrupted\n got: %.400s\nwant: %.400s", got, want)
			}
		})
	}
}

// TestSnapshotWorkerInvariance pins the worker-count freedom of the
// checkpoint format: a snapshot taken by a maximally sharded run restores
// into a sequential fabric (and vice versa) and still reproduces the
// sequential fingerprint byte for byte. Skipped in -short mode like the
// fingerprint worker-invariance matrix.
func TestSnapshotWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	for _, c := range fingerprintCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want := fingerprint(t, c.spec)
			if got := snapshotRun(t, c.spec, 16, 1, 60, 120, 0.7); got != want {
				t.Errorf("16->1 restore diverges\n got: %.400s\nwant: %.400s", got, want)
			}
			if got := snapshotRun(t, c.spec, 1, 16, 60, 120, 0.7); got != want {
				t.Errorf("1->16 restore diverges\n got: %.400s\nwant: %.400s", got, want)
			}
		})
	}
}

// TestSnapshotAtBoundaries covers the degenerate checkpoint positions: a
// snapshot before the first epoch (nothing has run; the checkpoint is a
// spec-validated zero state) and one after the last (nothing remains to
// run; restore must reproduce the final metrics exactly).
func TestSnapshotAtBoundaries(t *testing.T) {
	spec := negotiator.SmallSpec()
	want := fingerprint(t, spec)
	for _, snapAt := range []int{0, 1, 119, 120} {
		if got := snapshotRun(t, spec, 1, 1, snapAt, 120, 0.7); got != want {
			t.Errorf("snapshot at epoch %d diverges\n got: %.400s\nwant: %.400s", snapAt, got, want)
		}
	}
}

// TestSnapshotPortGroupFailure round-trips the remaining failure scenario
// vocabulary — a whole AWGR (port group) outage with detection lag — mid
// outage, so the restored cursors must reproduce the detection-lagged loss
// and requeue sequence.
func TestSnapshotPortGroupFailure(t *testing.T) {
	spec := negotiator.SmallSpec()
	spec.Failures = &negotiator.FailurePlan{
		Scenario:    negotiator.PortGroupFailure,
		Port:        2,
		FailAt:      negotiator.Time(50 * negotiator.Microsecond),
		RecoverAt:   negotiator.Time(400 * negotiator.Microsecond),
		DetectDelay: 25 * negotiator.Microsecond,
	}
	want := fingerprint(t, spec)
	// Epoch ~14.6µs: epoch 10 is pre-failure, 20 mid-outage pre-detection
	// horizon, 40 mid-outage — the checkpoint lands on each side of the
	// fail/detect edges.
	for _, snapAt := range []int{10, 20, 40} {
		if got := snapshotRun(t, spec, 1, 1, snapAt, 120, 0.7); got != want {
			t.Errorf("snapshot at epoch %d diverges\n got: %.400s\nwant: %.400s", snapAt, got, want)
		}
	}
}

// TestRestoreRejectsCorruption: a checkpoint damaged in transit (bit flip,
// truncation, version bump) must fail Restore with a clear error and leave
// the target fabric untouched — proven by restoring the intact checkpoint
// into the same fabric afterwards and finishing the run byte-identically.
func TestRestoreRejectsCorruption(t *testing.T) {
	spec := negotiator.SmallSpec()
	want := fingerprint(t, spec)

	spec.Workers = 1
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6))
	fab.RunEpochs(60)
	var buf bytes.Buffer
	if err := fab.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corruptions := []struct {
		name    string
		mutate  func([]byte) []byte
		errWant string
	}{
		{"payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }, "CRC"},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"unknown version", func(b []byte) []byte { b[8] = 99; return b }, "version"},
		{"empty", func(b []byte) []byte { return nil }, ""},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			spec := spec
			fab2, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			fab2.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6))
			bad := c.mutate(bytes.Clone(good))
			err = fab2.Restore(bytes.NewReader(bad))
			if err == nil {
				t.Fatal("corrupt checkpoint restored without error")
			}
			if c.errWant != "" && !strings.Contains(err.Error(), c.errWant) {
				t.Fatalf("error %q does not mention %q", err, c.errWant)
			}
			// The failed restore must not have mutated the fabric: the
			// intact checkpoint still applies and the run completes
			// byte-identically.
			if err := fab2.Restore(bytes.NewReader(good)); err != nil {
				t.Fatalf("intact checkpoint rejected after failed restore: %v", err)
			}
			fab2.RunEpochs(60)
			got := fmt.Sprintf("%+v | cdf=%v", fab2.Summary(), fab2.MiceCDF(24))
			if got != want {
				t.Errorf("run after recovered restore diverges\n got: %.400s\nwant: %.400s", got, want)
			}
		})
	}
}

// TestRestoreRejectsMismatch: a structurally valid checkpoint applied to
// the wrong configuration (different plane, topology size, failure plan,
// or a wrongly seeded workload) must fail loudly instead of scrambling
// state.
func TestRestoreRejectsMismatch(t *testing.T) {
	spec := negotiator.SmallSpec()
	spec.Workers = 1
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6))
	fab.RunEpochs(60)
	var buf bytes.Buffer
	if err := fab.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("wrong plane", func(t *testing.T) {
		other := negotiator.SmallSpec()
		other.ControlPlane = negotiator.ObliviousPlane
		fab2, err := other.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab2.SetWorkload(negotiator.PoissonWorkload(other, negotiator.Hadoop, 0.7, other.Seed+6))
		if err := fab2.Restore(bytes.NewReader(good)); err == nil {
			t.Error("checkpoint restored onto the wrong control plane")
		}
	})
	t.Run("wrong workload seed", func(t *testing.T) {
		fab2, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab2.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+7))
		if err := fab2.Restore(bytes.NewReader(good)); err == nil {
			t.Error("checkpoint restored with a differently seeded workload")
		}
	})
	t.Run("no workload attached", func(t *testing.T) {
		fab2, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := fab2.Restore(bytes.NewReader(good)); err == nil {
			t.Error("checkpoint restored without a workload to replay")
		}
	})
	t.Run("already run", func(t *testing.T) {
		fab2, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab2.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6))
		fab2.RunEpochs(1)
		if err := fab2.Restore(bytes.NewReader(good)); err == nil {
			t.Error("checkpoint restored onto a fabric that already ran")
		}
	})
}

// groupedSlice replays a fixed arrival slice — the grouped-checkpoint
// workload: group records in flight at the snapshot point plus one
// grouped arrival still in the future, so the checkpoint must carry both
// live member progress and the pump's pending group intact.
func groupedSlice() negotiator.Workload {
	arrivals := make([]workload.Arrival, 0, 9)
	for i := 0; i < 8; i++ {
		arrivals = append(arrivals, workload.Arrival{
			Time: 0, Src: i, Dst: (i + 8) % 16, Size: 2_000_000, Count: 4,
		})
	}
	// The 8 MB per pair take ~100 of the ~2.9us epochs to deliver, so the
	// groups are mid-flight at the epoch-10 checkpoint; the late group is
	// still pending in the pump there (100us ~ epoch 34) and injects well
	// before epoch 150 (~440us).
	arrivals = append(arrivals, workload.Arrival{
		Time: negotiator.Time(100 * negotiator.Microsecond),
		Src:  5, Dst: 2, Size: 2000, Count: 3,
	})
	return &sliceWorkload{arrivals: arrivals}
}

type sliceWorkload struct {
	arrivals []workload.Arrival
	next     int
}

func (s *sliceWorkload) Next() (workload.Arrival, bool) {
	if s.next >= len(s.arrivals) {
		return workload.Arrival{}, false
	}
	a := s.arrivals[s.next]
	s.next++
	return a, true
}

// groupedSnapshotRun is snapshotRun over the grouped slice workload.
func groupedSnapshotRun(t *testing.T, spec negotiator.Spec, snapWorkers, restoreWorkers, snapAt, epochs int) string {
	t.Helper()
	spec.Workers = snapWorkers
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(groupedSlice())
	fab.RunEpochs(snapAt)
	var buf bytes.Buffer
	if err := fab.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot at epoch %d: %v", snapAt, err)
	}

	spec.Workers = restoreWorkers
	fab2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab2.SetWorkload(groupedSlice())
	if err := fab2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore at epoch %d: %v", snapAt, err)
	}
	fab2.RunEpochs(epochs - snapAt)
	return fmt.Sprintf("%+v | cdf=%v", fab2.Summary(), fab2.MiceCDF(24))
}

// TestSnapshotGroupedFlows round-trips flow-group state. round-trip: with
// 4-member groups mid-delivery and a 3-member group still pending in the
// pump, checkpointing at epoch 10 and restoring — at the same worker
// count and across 16 -> 1 — must continue byte-identically to the
// uninterrupted run: member FCT boundaries, the group counts and the
// pending group's count all survive the GRPS section. identity-bytes: a
// run whose workload passed through the identity GroupWorkload(w, 1)
// yields a checkpoint stream byte-identical to the plain run's — no GRPS
// section is written when no group has formed, so pre-group checkpoints
// and k=1 checkpoints stay interchangeable.
func TestSnapshotGroupedFlows(t *testing.T) {
	t.Run("round-trip", func(t *testing.T) {
		spec := negotiator.SmallSpec()
		fab, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab.SetWorkload(groupedSlice())
		fab.RunEpochs(150)
		want := fmt.Sprintf("%+v | cdf=%v", fab.Summary(), fab.MiceCDF(24))
		if s := fab.Summary(); s.Flows != 35 {
			t.Fatalf("uninterrupted run completed %d member flows, want 35 (8 groups of 4 + 1 of 3)", s.Flows)
		}
		if got := groupedSnapshotRun(t, spec, 1, 1, 10, 150); got != want {
			t.Errorf("restored grouped run diverges\n got: %.400s\nwant: %.400s", got, want)
		}
		if got := groupedSnapshotRun(t, spec, 16, 1, 10, 150); got != want {
			t.Errorf("16->1 grouped restore diverges\n got: %.400s\nwant: %.400s", got, want)
		}
	})

	t.Run("identity-bytes", func(t *testing.T) {
		spec := negotiator.SmallSpec()
		snap := func(group bool) []byte {
			fab, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			w := negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6)
			if group {
				if w, err = negotiator.GroupWorkload(w, 1); err != nil {
					t.Fatal(err)
				}
			}
			fab.SetWorkload(w)
			fab.RunEpochs(60)
			var buf bytes.Buffer
			if err := fab.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(snap(true), snap(false)) {
			t.Error("identity GroupWorkload changes the checkpoint stream")
		}
	})
}
