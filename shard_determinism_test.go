package negotiator_test

import (
	"fmt"
	"testing"

	negotiator "negotiator"
)

// allSchedulers is every scheduling policy the facade exposes.
var allSchedulers = []negotiator.Scheduler{
	negotiator.Matching,
	negotiator.Iterative1,
	negotiator.Iterative3,
	negotiator.Iterative5,
	negotiator.DataSizePriority,
	negotiator.HoLDelayPriority,
	negotiator.Stateful,
	negotiator.ProjecToRStyle,
	negotiator.PIMStyle,
	negotiator.ISLIPStyle,
}

// shardRun builds the spec's fabric with the given worker count, runs it
// for a fixed number of epochs, and renders Summary and MiceCDF into one
// comparable string.
func shardRun(t *testing.T, spec negotiator.Spec, workers, epochs int, load float64) string {
	t.Helper()
	spec.Workers = workers
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, spec.Seed+6))
	fab.RunEpochs(epochs)
	return fmt.Sprintf("%+v | cdf=%v", fab.Summary(), fab.MiceCDF(24))
}

// TestShardDeterminism is the facade-level determinism contract: the
// sharded epoch execution must produce byte-identical Summary and MiceCDF
// at every worker count, for every scheduler variant, both topologies,
// and the traffic-oblivious baseline. CI runs this under -race with
// -cpu 1,2,4.
func TestShardDeterminism(t *testing.T) {
	type variant struct {
		name string
		spec negotiator.Spec
	}
	var variants []variant
	for _, sched := range allSchedulers {
		for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
			spec := negotiator.SmallSpec()
			spec.Scheduler = sched
			spec.Topology = top
			variants = append(variants, variant{fmt.Sprintf("%v/%v", sched, top), spec})
		}
	}
	obl := negotiator.SmallSpec()
	obl.Oblivious = true
	obl.Topology = negotiator.ThinClos
	variants = append(variants, variant{"oblivious/thin-clos", obl})
	for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
		hyb := negotiator.SmallSpec()
		hyb.ControlPlane = negotiator.HybridPlane
		hyb.Topology = top
		variants = append(variants, variant{fmt.Sprintf("hybrid/%v", top), hyb})
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			epochs := 300
			if testing.Short() {
				epochs = 120
			}
			want := shardRun(t, v.spec, 1, epochs, 0.7)
			for _, workers := range []int{2, 4, 8} {
				if got := shardRun(t, v.spec, workers, epochs, 0.7); got != want {
					t.Fatalf("workers=%d diverges from sequential\n got: %.400s\nwant: %.400s", workers, got, want)
				}
			}
		})
	}
}

// TestShardDeterminismLargeFabric repeats the contract at 256 ToRs — the
// scale the sharded execution exists for — on a scheduler subset.
func TestShardDeterminismLargeFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("256-ToR fabrics in -short mode")
	}
	base := negotiator.DefaultSpec()
	base.ToRs, base.Ports, base.AWGRPorts = 256, 16, 16
	base.HostRate = negotiator.Gbps(800)
	for _, sched := range []negotiator.Scheduler{negotiator.Matching, negotiator.Stateful, negotiator.Iterative3} {
		spec := base
		spec.Scheduler = sched
		t.Run(sched.String(), func(t *testing.T) {
			want := shardRun(t, spec, 1, 50, 0.6)
			for _, workers := range []int{2, 4, 8} {
				if got := shardRun(t, spec, workers, 50, 0.6); got != want {
					t.Fatalf("workers=%d diverges at 256 ToRs\n got: %.400s\nwant: %.400s", workers, got, want)
				}
			}
		})
	}
	t.Run("oblivious", func(t *testing.T) {
		spec := base
		spec.Oblivious = true
		spec.Topology = negotiator.ThinClos
		want := shardRun(t, spec, 1, 12, 0.6)
		for _, workers := range []int{2, 4, 8} {
			if got := shardRun(t, spec, workers, 12, 0.6); got != want {
				t.Fatalf("workers=%d diverges at 256 ToRs\n got: %.400s\nwant: %.400s", workers, got, want)
			}
		}
	})
}

// TestSummaryEpochsAndRunEpochs: the facade surfaces the scheduling-round
// count, and RunEpochs steps exactly whole rounds on both fabrics.
func TestSummaryEpochsAndRunEpochs(t *testing.T) {
	for _, obl := range []bool{false, true} {
		spec := negotiator.SmallSpec()
		spec.Oblivious = obl
		fab, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab.RunEpochs(37)
		sum := fab.Summary()
		if sum.Epochs != 37 {
			t.Errorf("oblivious=%v: Epochs = %d after RunEpochs(37)", obl, sum.Epochs)
		}
		if want := 37 * int64(sum.EpochLen); int64(sum.Duration) != want {
			t.Errorf("oblivious=%v: duration %v, want %d epoch lengths", obl, sum.Duration, want)
		}
	}
}

// TestSummaryLostBytes: failure injection surfaces cumulative destroyed
// bytes through the facade.
func TestSummaryLostBytes(t *testing.T) {
	spec := negotiator.SmallSpec()
	epoch := int64(200) // well past failure onset at default timing
	spec.Failures = &negotiator.FailurePlan{
		Fraction:  0.25,
		FailAt:    0,
		RecoverAt: negotiator.Time(1 * negotiator.Millisecond),
		Seed:      3,
	}
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.8, 7))
	fab.RunEpochs(int(epoch))
	if got := fab.Summary().LostBytes; got <= 0 {
		t.Errorf("LostBytes = %d under 25%% link failures, want > 0", got)
	}
	// No failures: must be zero.
	clean := negotiator.SmallSpec()
	fab2, _ := clean.Build()
	fab2.SetWorkload(negotiator.PoissonWorkload(clean, negotiator.Hadoop, 0.8, 7))
	fab2.RunEpochs(100)
	if got := fab2.Summary().LostBytes; got != 0 {
		t.Errorf("LostBytes = %d without failures", got)
	}
}
