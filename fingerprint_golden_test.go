package negotiator_test

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	negotiator "negotiator"
)

// The golden-fingerprint regression test locks the exact Summary and
// MiceCDF output of a small spec for every engine × topology combination
// (plus the failure-injection and selective-relay features that exercise
// loss accounting and relay queues). Refactors that claim byte-identical
// results — like the shared-fabric-core extraction — prove the claim
// mechanically by leaving testdata/fingerprints.golden untouched.
//
// Regenerate (only when an intentional semantic change is documented in
// EXPERIMENTS.md) with:
//
//	go test -run TestFingerprintGolden -update-fingerprints .
var updateFingerprints = flag.Bool("update-fingerprints", false, "rewrite testdata/fingerprints.golden from the current engines")

const fingerprintGoldenPath = "testdata/fingerprints.golden"

// fingerprintCases enumerates the locked combinations. Every case uses
// SmallSpec (16 ToRs) so the whole matrix runs in seconds.
func fingerprintCases() []struct {
	name string
	spec negotiator.Spec
} {
	var cases []struct {
		name string
		spec negotiator.Spec
	}
	add := func(name string, spec negotiator.Spec) {
		cases = append(cases, struct {
			name string
			spec negotiator.Spec
		}{name, spec})
	}
	topos := []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos}
	for _, sched := range allSchedulers {
		for _, top := range topos {
			spec := negotiator.SmallSpec()
			spec.Scheduler = sched
			spec.Topology = top
			add(fmt.Sprintf("negotiator/%v/%v", sched, top), spec)
		}
	}
	for _, top := range topos {
		spec := negotiator.SmallSpec()
		spec.ControlPlane = negotiator.ObliviousPlane
		spec.Topology = top
		add(fmt.Sprintf("oblivious/%v", top), spec)
	}
	for _, top := range topos {
		spec := negotiator.SmallSpec()
		spec.ControlPlane = negotiator.HybridPlane
		spec.Topology = top
		add(fmt.Sprintf("hybrid/%v", top), spec)
	}
	fail := negotiator.SmallSpec()
	fail.Failures = &negotiator.FailurePlan{
		Fraction:  0.25,
		FailAt:    0,
		RecoverAt: negotiator.Time(200 * negotiator.Microsecond),
		Seed:      3,
	}
	add("negotiator/failures/parallel", fail)
	relay := negotiator.SmallSpec()
	relay.Topology = negotiator.ThinClos
	relay.SelectiveRelay = true
	add("negotiator/relay/thin-clos", relay)
	// Failure injection on the other planes (PR 6): same plan as the
	// NegotiaToR failure combo, locking the fabric-core-owned loss and
	// requeue paths of the oblivious and hybrid engines.
	for _, plane := range []negotiator.ControlPlaneKind{negotiator.ObliviousPlane, negotiator.HybridPlane} {
		spec := negotiator.SmallSpec()
		spec.ControlPlane = plane
		spec.Failures = &negotiator.FailurePlan{
			Fraction:  0.25,
			FailAt:    0,
			RecoverAt: negotiator.Time(200 * negotiator.Microsecond),
			Seed:      3,
		}
		add(fmt.Sprintf("%v/failures/parallel", plane), spec)
	}
	// Scenario vocabulary: flapping links on NegotiaToR, a whole-ToR
	// power cycle on the oblivious baseline.
	flap := negotiator.SmallSpec()
	flap.Failures = &negotiator.FailurePlan{
		Scenario: negotiator.FlappingLinks,
		Fraction: 0.2,
		Period:   60 * negotiator.Microsecond,
		Seed:     3,
	}
	add("negotiator/flapping/parallel", flap)
	tdown := negotiator.SmallSpec()
	tdown.ControlPlane = negotiator.ObliviousPlane
	tdown.Failures = &negotiator.FailurePlan{
		Scenario: negotiator.ToRFailure,
		ToR:      5,
		// The oblivious 120-round window spans ~29µs; the power cycle
		// must land inside it.
		FailAt:      negotiator.Time(5 * negotiator.Microsecond),
		RecoverAt:   negotiator.Time(20 * negotiator.Microsecond),
		DetectDelay: 2 * negotiator.Microsecond,
	}
	add("oblivious/tor-down/parallel", tdown)
	// Event-skip off (PR 7): the run loop optimization must be
	// semantically invisible, so a ticking negotiator and a ticking
	// oblivious run are locked in the corpus too. Their fingerprints
	// equal the corresponding default combos' byte for byte — the full
	// matrix is cross-checked by TestEventSkipEquivalence; these two pin
	// the DisableEventSkip plumbing itself against the golden file.
	noskip := negotiator.SmallSpec()
	noskip.DisableEventSkip = true
	add("negotiator/noskip/parallel", noskip)
	obNoskip := negotiator.SmallSpec()
	obNoskip.ControlPlane = negotiator.ObliviousPlane
	obNoskip.DisableEventSkip = true
	add("oblivious/noskip/parallel", obNoskip)
	return cases
}

// fingerprint renders one combination's locked output: the Summary struct
// and a 24-point mice CDF after 120 epochs at 70% Hadoop load, sequential.
func fingerprint(t *testing.T, spec negotiator.Spec) string {
	t.Helper()
	return shardRun(t, spec, 1, 120, 0.7)
}

// TestFingerprintGolden compares every combination's sequential run
// against the recorded goldens. Worker-count equivalence (workers=16
// reproducing these fingerprints byte for byte) is pinned by the
// separate TestFingerprintWorkerInvariance, which is skipped in -short
// mode.
func TestFingerprintGolden(t *testing.T) {
	cases := fingerprintCases()
	got := make(map[string]string, len(cases))
	var sb strings.Builder
	for _, c := range cases {
		fp := fingerprint(t, c.spec)
		got[c.name] = fp
		fmt.Fprintf(&sb, "%s: %s\n", c.name, fp)
	}
	if *updateFingerprints {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fingerprintGoldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(cases), fingerprintGoldenPath)
		return
	}
	raw, err := os.ReadFile(fingerprintGoldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-fingerprints to record): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		name, fp, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[name] = fp
	}
	for _, c := range cases {
		if w, ok := want[c.name]; !ok {
			t.Errorf("%s: no recorded golden (new combo? run -update-fingerprints)", c.name)
		} else if got[c.name] != w {
			t.Errorf("%s: fingerprint diverged from golden\n got: %.400s\nwant: %.400s", c.name, got[c.name], w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: golden recorded but combo no longer enumerated", name)
		}
	}
}

// TestFingerprintWorkerInvariance pins the workers-1..16 contract on the
// golden matrix: the maximally sharded run (16 workers on a 16-ToR spec)
// must reproduce the sequential fingerprint exactly. Intermediate worker
// counts are covered by TestShardDeterminism.
func TestFingerprintWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	for _, c := range fingerprintCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := fingerprint(t, c.spec)
			if max := shardRun(t, c.spec, 16, 120, 0.7); max != seq {
				t.Errorf("workers=16 diverges from sequential\n got: %.400s\nwant: %.400s", max, seq)
			}
		})
	}
}
