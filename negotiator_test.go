package negotiator_test

import (
	"testing"

	negotiator "negotiator"
)

func TestDefaultSpecMatchesPaper(t *testing.T) {
	s := negotiator.DefaultSpec()
	if s.ToRs != 128 || s.Ports != 8 || s.AWGRPorts != 16 {
		t.Errorf("default dimensions %d/%d/%d, want 128/8/16", s.ToRs, s.Ports, s.AWGRPorts)
	}
	if s.LinkRate != negotiator.Gbps(100) || s.HostRate != negotiator.Gbps(400) {
		t.Error("default rates should be 100G ports over 400G hosts (2x speedup)")
	}
	if !s.Piggyback || !s.PriorityQueues {
		t.Error("PB and PQ are on by default in the paper's evaluation")
	}
	if s.ReconfigDelay != 10 || s.ScheduledSlots != 30 {
		t.Error("default epoch parameters mismatch §4.1")
	}
}

func TestBuildAllTopologySystemCombos(t *testing.T) {
	for _, top := range []negotiator.Topology{negotiator.ParallelNetwork, negotiator.ThinClos} {
		for _, obl := range []bool{false, true} {
			spec := negotiator.SmallSpec()
			spec.Topology = top
			spec.Oblivious = obl
			fab, err := spec.Build()
			if err != nil {
				t.Fatalf("%v oblivious=%v: %v", top, obl, err)
			}
			fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 1))
			fab.Run(200 * negotiator.Microsecond)
			if fab.Summary().Flows == 0 {
				t.Errorf("%v oblivious=%v: no flows completed", top, obl)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	spec := negotiator.SmallSpec()
	spec.Topology = negotiator.ThinClos
	spec.AWGRPorts = 5 // 16 != 4*5
	if _, err := spec.Build(); err == nil {
		t.Error("invalid thin-clos dimensions accepted")
	}
	spec = negotiator.SmallSpec()
	spec.SelectiveRelay = true // parallel network: relay is thin-clos-only
	if _, err := spec.Build(); err == nil {
		t.Error("selective relay on parallel accepted")
	}
	spec = negotiator.SmallSpec()
	spec.Oblivious = true
	spec.Failures = &negotiator.FailurePlan{Fraction: 0.1}
	if _, err := spec.Build(); err != nil {
		t.Errorf("failure plan on oblivious baseline rejected: %v", err)
	}
	spec = negotiator.SmallSpec()
	spec.ControlPlane = negotiator.HybridPlane
	spec.Failures = &negotiator.FailurePlan{Fraction: 0.1}
	if _, err := spec.Build(); err != nil {
		t.Errorf("failure plan on hybrid rejected: %v", err)
	}
	spec = negotiator.SmallSpec()
	spec.Failures = &negotiator.FailurePlan{Scenario: negotiator.FlappingLinks, Fraction: 0.1}
	if _, err := spec.Build(); err == nil {
		t.Error("flapping plan without Period accepted")
	}
	spec = negotiator.SmallSpec()
	spec.Failures = &negotiator.FailurePlan{Scenario: negotiator.PortGroupFailure, Port: 99}
	if _, err := spec.Build(); err == nil {
		t.Error("port-group plan with out-of-range port accepted")
	}
	spec = negotiator.SmallSpec()
	spec.Failures = &negotiator.FailurePlan{Scenario: negotiator.ToRFailure, ToR: -1}
	if _, err := spec.Build(); err == nil {
		t.Error("tor-down plan with out-of-range ToR accepted")
	}
	spec = negotiator.SmallSpec()
	spec.Failures = &negotiator.FailurePlan{
		Fraction: 0.1,
		Links:    []negotiator.FailedLink{{ToR: 0, Port: 0}},
	}
	if _, err := spec.Build(); err == nil {
		t.Error("failure plan with both Fraction and Links accepted")
	}
	// Shards are contiguous ToR ranges: more workers than ToRs would leave
	// empty shards, so Build rejects strictly; one worker per ToR is the
	// accepted maximum.
	spec = negotiator.SmallSpec()
	spec.Workers = spec.ToRs + 1
	if _, err := spec.Build(); err == nil {
		t.Error("Workers > ToRs accepted")
	}
	spec.Workers = spec.ToRs
	if _, err := spec.Build(); err != nil {
		t.Errorf("Workers == ToRs rejected: %v", err)
	}
}

func TestAllSchedulersBuildAndRun(t *testing.T) {
	for _, sch := range []negotiator.Scheduler{
		negotiator.Matching, negotiator.Iterative1, negotiator.Iterative3,
		negotiator.Iterative5, negotiator.DataSizePriority,
		negotiator.HoLDelayPriority, negotiator.Stateful, negotiator.ProjecToRStyle,
	} {
		spec := negotiator.SmallSpec()
		spec.Scheduler = sch
		fab, err := spec.Build()
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 3))
		fab.Run(300 * negotiator.Microsecond)
		if fab.Summary().Flows == 0 {
			t.Errorf("%v: no completions", sch)
		}
	}
}

func TestHeadlineResultShape(t *testing.T) {
	// The paper's central claim at small scale: under heavy load,
	// NegotiaToR's mice 99p FCT beats the traffic-oblivious baseline by a
	// large factor, and goodput is at least comparable.
	runSys := func(obl bool) negotiator.Summary {
		spec := negotiator.SmallSpec()
		spec.Topology = negotiator.ThinClos
		spec.Oblivious = obl
		fab, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.9, 7))
		fab.Run(3 * negotiator.Millisecond)
		return fab.Summary()
	}
	neg, obl := runSys(false), runSys(true)
	if neg.Mice99p*5 > obl.Mice99p {
		t.Errorf("NegotiaToR mice 99p %v should be >5x better than baseline %v",
			neg.Mice99p, obl.Mice99p)
	}
	if neg.GoodputNormalized < 0.95*obl.GoodputNormalized {
		t.Errorf("NegotiaToR goodput %.3f should not trail baseline %.3f",
			neg.GoodputNormalized, obl.GoodputNormalized)
	}
}

func TestTable2ShapeAtSmallScale(t *testing.T) {
	// PB+PQ < PQ < PB < none for mice mean FCT at heavy load (Table 2).
	run := func(pb, pq bool) negotiator.Duration {
		spec := negotiator.SmallSpec()
		spec.Piggyback = pb
		spec.PriorityQueues = pq
		fab, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 1.0, 9))
		fab.Run(3 * negotiator.Millisecond)
		return fab.Summary().MiceMean
	}
	none := run(false, false)
	pb := run(true, false)
	both := run(true, true)
	if !(both < pb && pb < none) {
		t.Errorf("ablation ordering broken: both=%v pb=%v none=%v", both, pb, none)
	}
	// With PB+PQ the mean should approach the ~2-epoch scheduling delay.
	spec := negotiator.SmallSpec()
	probe, _ := spec.Build()
	epoch := probe.Summary().EpochLen
	if both > 4*epoch {
		t.Errorf("PB+PQ mice mean %v exceeds 4 epochs (%v)", both, 4*epoch)
	}
}

func TestEventStatFinishTime(t *testing.T) {
	ev := negotiator.EventStat{Start: 100, End: 600, Flows: 5, Done: 5}
	if got := ev.FinishTime(); got != 500 {
		t.Errorf("finish = %v", got)
	}
	ev.Done = 4
	if got := ev.FinishTime(); got != 0 {
		t.Errorf("incomplete event finish = %v, want 0", got)
	}
}

func TestTraceProperties(t *testing.T) {
	for _, tr := range []negotiator.Trace{negotiator.Hadoop, negotiator.WebSearch, negotiator.Google} {
		if tr.MeanFlowBytes() <= 0 {
			t.Errorf("%v mean = %v", tr, tr.MeanFlowBytes())
		}
	}
	if negotiator.WebSearch.MeanFlowBytes() < negotiator.Hadoop.MeanFlowBytes() {
		t.Error("web search should be heavier than Hadoop")
	}
	if negotiator.Google.MeanFlowBytes() > negotiator.Hadoop.MeanFlowBytes() {
		t.Error("Google should be lighter than Hadoop")
	}
}

func TestLoadForRoundTrip(t *testing.T) {
	spec := negotiator.DefaultSpec()
	// A 1µs inter-arrival of Hadoop flows on the paper's network.
	load := negotiator.LoadFor(spec, negotiator.Hadoop, negotiator.Microsecond)
	if load <= 0 {
		t.Fatalf("load = %v", load)
	}
}

func TestStringers(t *testing.T) {
	if negotiator.ParallelNetwork.String() != "parallel" || negotiator.ThinClos.String() != "thin-clos" {
		t.Error("topology strings")
	}
	if negotiator.Matching.String() != "negotiator-matching" {
		t.Error("scheduler string")
	}
	if negotiator.Hadoop.String() != "hadoop" || negotiator.Google.String() != "google" {
		t.Error("trace strings")
	}
}

func TestMiceCDFExposed(t *testing.T) {
	spec := negotiator.SmallSpec()
	fab, _ := spec.Build()
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.8, 5))
	fab.Run(1 * negotiator.Millisecond)
	cdf := fab.MiceCDF(10)
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1.0 {
		t.Errorf("CDF should end at 1.0: %+v", last)
	}
	if len(fab.MatchRatioSeries()) == 0 {
		t.Error("match ratio series empty")
	}
}

func TestMergeWorkloadsAndMixedIncast(t *testing.T) {
	spec := negotiator.SmallSpec()
	fab, _ := spec.Build()
	fab.SetWorkload(negotiator.MixedIncastWorkload(spec, negotiator.Hadoop, 0.5, 10, 1000, 0.02, 1, 3))
	fab.Run(1 * negotiator.Millisecond)
	if len(fab.Events()) == 0 {
		t.Error("mixed workload produced no incast events")
	}
}

func TestReceiverBufferTelemetry(t *testing.T) {
	spec := negotiator.SmallSpec()
	spec.TrackReceiverBuffers = true
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.9, 5))
	fab.Run(1 * negotiator.Millisecond)
	s := fab.Summary()
	if s.PeakReceiverBuffer <= 0 {
		t.Error("peak receiver buffer not tracked")
	}
	// Without tracking it stays zero.
	spec.TrackReceiverBuffers = false
	fab2, _ := spec.Build()
	fab2.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.9, 5))
	fab2.Run(500 * negotiator.Microsecond)
	if fab2.Summary().PeakReceiverBuffer != 0 {
		t.Error("peak buffer reported without tracking")
	}
}

func TestSpecTimingKnobs(t *testing.T) {
	// Reconfiguration delay keeps the 50ns message time and changes the
	// guardband; predefined slot override changes piggyback capacity.
	spec := negotiator.SmallSpec()
	spec.ReconfigDelay = 50
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Epoch: 4 predefined slots of (50+50)ns + 30*90ns = 3100ns.
	if got := fab.Summary().EpochLen; got != 3100 {
		t.Errorf("epoch with 50ns guardband = %v, want 3.1µs", got)
	}
	spec = negotiator.SmallSpec()
	spec.PredefinedSlotTime = 120
	fab, err = spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := fab.Summary().EpochLen; got != 4*120+30*90 {
		t.Errorf("epoch with 120ns slots = %v", got)
	}
	spec = negotiator.SmallSpec()
	spec.ScheduledSlots = 100
	fab, _ = spec.Build()
	if got := fab.Summary().EpochLen; got != 4*60+100*90 {
		t.Errorf("epoch with 100 scheduled slots = %v", got)
	}
}

func TestObliviousSummaryCycle(t *testing.T) {
	spec := negotiator.SmallSpec()
	spec.Oblivious = true
	fab, _ := spec.Build()
	// 16 ToRs / 4 ports thin-... parallel: ceil(15/4)=4 slots x 60ns.
	if got := fab.Summary().EpochLen; got != 240 {
		t.Errorf("baseline cycle = %v, want 240ns", got)
	}
	if fab.MatchRatioSeries() != nil {
		t.Error("baseline should have no match ratio series")
	}
}

func TestClassicSchedulersViaSpec(t *testing.T) {
	for _, sch := range []negotiator.Scheduler{negotiator.PIMStyle, negotiator.ISLIPStyle} {
		spec := negotiator.SmallSpec()
		spec.Scheduler = sch
		fab, err := spec.Build()
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.6, 3))
		fab.Run(500 * negotiator.Microsecond)
		if fab.Summary().Flows == 0 {
			t.Errorf("%v: no completions", sch)
		}
	}
	if negotiator.PIMStyle.String() != "pim" || negotiator.ISLIPStyle.String() != "islip" {
		t.Error("classic scheduler strings")
	}
}

func TestRequestThresholdSpecKnob(t *testing.T) {
	// A higher threshold shifts small transfers onto the piggyback path
	// entirely; the knob must at least build and run.
	spec := negotiator.SmallSpec()
	spec.RequestThresholdPkts = 8
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 3))
	fab.Run(500 * negotiator.Microsecond)
	if fab.Summary().Flows == 0 {
		t.Error("no completions with custom threshold")
	}
}
