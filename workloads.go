package negotiator

import (
	"fmt"

	"negotiator/internal/workload"
)

// Trace identifies a flow-size distribution modelled after a published
// datacenter trace (§4.1, §4.4).
type Trace int

const (
	// Hadoop is Meta's Hadoop-cluster trace: 60% of flows under 1 KB,
	// >80% of bytes in flows over 100 KB (the paper's default workload).
	Hadoop Trace = iota
	// WebSearch is the DCTCP web-search trace: >80% of flows over 10 KB.
	WebSearch
	// Google is the aggregated Google-datacenter trace: >80% of flows
	// under 1 KB.
	Google
)

func (t Trace) String() string {
	switch t {
	case WebSearch:
		return "websearch"
	case Google:
		return "google"
	default:
		return "hadoop"
	}
}

func (t Trace) dist() *workload.CDF {
	switch t {
	case WebSearch:
		return workload.WebSearch()
	case Google:
		return workload.GoogleAgg()
	default:
		return workload.Hadoop()
	}
}

// MeanFlowBytes returns the trace's mean flow size.
func (t Trace) MeanFlowBytes() float64 { return t.dist().Mean() }

// PoissonWorkload generates background traffic at the given network load
// (L = F/(R·N·τ), §4.1): Poisson arrivals, uniform random distinct
// endpoints, sizes from the trace.
func PoissonWorkload(spec Spec, trace Trace, load float64, seed int64) Workload {
	return workload.NewPoisson(trace.dist(), spec.ToRs, load, spec.HostRate, seed)
}

// FixedSizeWorkload is PoissonWorkload with a degenerate single-size
// distribution.
func FixedSizeWorkload(spec Spec, size int64, load float64, seed int64) Workload {
	return workload.NewPoisson(workload.Fixed(size), spec.ToRs, load, spec.HostRate, seed)
}

// IncastWorkload generates one incast event: degree sources each send one
// size-byte flow to dst at time at (§4.2, Figure 7a). The event is tagged
// so Events()[tag].FinishTime() reports the incast finish time.
func IncastWorkload(spec Spec, dst, degree int, size int64, at Time, tag int, seed int64) (Workload, error) {
	return workload.NewIncast(spec.ToRs, dst, degree, size, at, tag, seed)
}

// AllToAllWorkload makes every ToR send one size-byte flow to every other
// ToR at time at (§4.2, Figure 7b).
func AllToAllWorkload(spec Spec, size int64, at Time) Workload {
	return workload.NewAllToAll(spec.ToRs, size, at)
}

// SinglePairWorkload injects one long transfer between a fixed pair
// (Appendix A.4, Figure 19).
func SinglePairWorkload(src, dst int, size int64, at Time) Workload {
	return workload.NewSinglePair(src, dst, size, at)
}

// MixedIncastWorkload layers Poisson incast events (degree, per-flow size,
// consuming bwFraction of aggregate host bandwidth) over background
// traffic from the trace at the given load (§4.4, Figure 13a). Incast
// events are tagged starting from firstTag.
func MixedIncastWorkload(spec Spec, trace Trace, load float64, degree int, size int64, bwFraction float64, firstTag int, seed int64) Workload {
	bg := workload.NewPoisson(trace.dist(), spec.ToRs, load, spec.HostRate, seed)
	inc := workload.NewIncastMix(spec.ToRs, degree, size, bwFraction, spec.HostRate, firstTag, seed+1)
	return workload.NewMerge(bg, inc)
}

// PermutationWorkload generates the saturated-but-sparse permutation
// matrix: the first active ToRs (0 means all) each send one size-byte
// flow to their cyclic successor within the active set at time at. This
// is the sparse-scale benchmark regime promoted into the workload layer.
func PermutationWorkload(spec Spec, active int, size int64, at Time) (Workload, error) {
	return workload.NewPermutation(spec.ToRs, active, size, at)
}

// HotspotWorkload is PoissonWorkload with destination skew: a fraction
// hotFrac of flows target one of the first hotTors destinations, the rest
// choose uniformly. Sources stay uniform, so the offered load equation is
// unchanged — only the traffic matrix tilts.
func HotspotWorkload(spec Spec, trace Trace, load float64, hotTors int, hotFrac float64, seed int64) (Workload, error) {
	return workload.NewHotspot(trace.dist(), spec.ToRs, load, spec.HostRate, hotTors, hotFrac, seed)
}

// DiurnalWorkload is PoissonWorkload with a day/night cycle: the offered
// load swings sinusoidally between floor·peakLoad (at the start of each
// period) and peakLoad (at each half period). Most of a real fabric's day
// is spent far below peak; this is the workload that makes the event-skip
// run loop's quiet-time savings visible end to end.
func DiurnalWorkload(spec Spec, trace Trace, peakLoad float64, period Duration, floor float64, seed int64) (Workload, error) {
	return workload.NewDiurnal(trace.dist(), spec.ToRs, peakLoad, spec.HostRate, period, floor, seed)
}

// GroupWorkload applies the flow-group knob: every arrival of w stands
// for k identical host flows behind one flow record — the aggregation
// that fits millions of host flows in a flow table sized by records.
// Generators that support native group emission (Permutation, Hotspot,
// Diurnal) have their count stamped directly; any other generator is
// wrapped in the coalescing GroupBy adapter, which merges consecutive
// identical arrivals and multiplies their member count by k. k == 1 is a
// strict no-op on the arrival stream (and is what the golden-equivalence
// tests run). k < 1 is rejected.
//
// Per-member FCT emission is exact under FIFO delivery; see the README's
// "Flow groups" subsection for when the grouped FCT stream equals the
// ungrouped one byte for byte.
func GroupWorkload(w Workload, k int) (Workload, error) {
	if k < 1 {
		return nil, fmt.Errorf("negotiator: flow-group factor must be >= 1, got %d", k)
	}
	if g, ok := w.(workload.Grouper); ok {
		g.SetGroup(k)
		return w, nil
	}
	return workload.NewGroupBy(w, k)
}

// MergeWorkloads combines arrival streams in time order.
func MergeWorkloads(ws ...Workload) Workload {
	gens := make([]workload.Generator, len(ws))
	for i, w := range ws {
		gens[i] = w
	}
	return workload.NewMerge(gens...)
}

// LoadFor reports the network load that a mean inter-arrival time would
// produce for a trace on this spec, exposing the paper's load equation.
func LoadFor(spec Spec, trace Trace, interArrival Duration) float64 {
	return workload.Load(trace.dist().Mean(), spec.HostRate, spec.ToRs, interArrival)
}
