package negotiator_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	negotiator "negotiator"
	"negotiator/internal/workload"
)

// kreplicate replays each arrival of the wrapped generator k times — the
// ungrouped ground truth a flow group of k members must be metrically
// indistinguishable from.
type kreplicate struct {
	g    negotiator.Workload
	k    int
	left int
	cur  workload.Arrival
}

func (r *kreplicate) Next() (workload.Arrival, bool) {
	if r.left == 0 {
		a, ok := r.g.Next()
		if !ok {
			return workload.Arrival{}, false
		}
		r.cur, r.left = a, r.k
	}
	r.left--
	return r.cur, true
}

// permRun runs a permutation workload (8 active pairs on the 16-ToR small
// spec) and renders the comparable Summary+CDF string. grouped selects one
// k-member group record per pair; ungrouped injects k separate identical
// flows per pair.
func permRun(t *testing.T, spec negotiator.Spec, workers, k int, size int64, grouped bool) string {
	t.Helper()
	spec.Workers = workers
	fab, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	w, err := negotiator.PermutationWorkload(spec, 8, size, 0)
	if err != nil {
		t.Fatal(err)
	}
	if grouped {
		if w, err = negotiator.GroupWorkload(w, k); err != nil {
			t.Fatal(err)
		}
	} else {
		w = &kreplicate{g: w, k: k}
	}
	fab.SetWorkload(w)
	fab.RunEpochs(150)
	return fmt.Sprintf("%+v | cdf=%v", fab.Summary(), fab.MiceCDF(24))
}

// TestGroupEquivalence is the flow-group acceptance contract, in two
// halves.
//
// golden-k1: threading every golden-matrix workload through the identity
// GroupBy wrapper must reproduce all recorded fingerprints byte for byte —
// the aggregation layer is invisible until a group actually forms.
//
// grouped-fct: on a coalescible workload, one k-member group record must
// produce the exact Summary and FCT sample stream of k separate identical
// flows, at 1 worker and at 16. Delivery here is FIFO over the group's
// bytes (single negotiator-plane VOQ; with priority queues on, the member
// size stays within the first PIAS bound so all bytes share one priority
// FIFO), which is the regime where per-member boundary-crossing emission
// is exact — see the README's "Flow groups" subsection for the conditions.
func TestGroupEquivalence(t *testing.T) {
	t.Run("golden-k1", func(t *testing.T) {
		raw, err := os.ReadFile(fingerprintGoldenPath)
		if err != nil {
			t.Fatalf("missing goldens: %v", err)
		}
		want := make(map[string]string)
		for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
			name, fp, ok := strings.Cut(line, ": ")
			if !ok {
				t.Fatalf("malformed golden line %q", line)
			}
			want[name] = fp
		}
		workerCounts := []int{1, 16}
		if testing.Short() {
			workerCounts = []int{1}
		}
		for _, c := range fingerprintCases() {
			w, ok := want[c.name]
			if !ok {
				t.Fatalf("%s: no recorded golden", c.name)
			}
			for _, workers := range workerCounts {
				spec := c.spec
				spec.Workers = workers
				fab, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				wl, err := negotiator.GroupWorkload(
					negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.7, spec.Seed+6), 1)
				if err != nil {
					t.Fatal(err)
				}
				fab.SetWorkload(wl)
				fab.RunEpochs(120)
				got := fmt.Sprintf("%+v | cdf=%v", fab.Summary(), fab.MiceCDF(24))
				if got != w {
					t.Errorf("%s (workers=%d): identity GroupBy diverges from golden\n got: %.400s\nwant: %.400s",
						c.name, workers, got, w)
				}
			}
		}
	})

	t.Run("grouped-fct", func(t *testing.T) {
		const k = 5
		for _, tc := range []struct {
			name string
			pq   bool
			size int64
		}{
			// PIAS on: members within the first priority bound share one
			// FIFO, so delivery order stays member-sequential.
			{"pias-small-members", true, 1000},
			// PIAS off: any member size is FIFO end to end.
			{"fifo-large-members", false, 4920},
		} {
			t.Run(tc.name, func(t *testing.T) {
				spec := negotiator.SmallSpec()
				spec.PriorityQueues = tc.pq
				for _, workers := range []int{1, 16} {
					grouped := permRun(t, spec, workers, k, tc.size, true)
					separate := permRun(t, spec, workers, k, tc.size, false)
					if grouped != separate {
						t.Errorf("workers=%d: grouped run diverges from %d separate flows\n got: %.400s\nwant: %.400s",
							workers, k, grouped, separate)
					}
				}
			})
		}
	})
}
