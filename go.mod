module negotiator

go 1.24
