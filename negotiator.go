// Package negotiator is a from-scratch Go reproduction of NegotiaToR
// (Liang et al., SIGCOMM 2024): a simple on-demand reconfigurable optical
// datacenter network architecture. ToRs exchange binary scheduling messages
// through an in-band control plane carried by periodic round-robin
// all-to-all connectivity, distributedly compute non-conflicting one-hop
// paths with the NegotiaToR Matching algorithm, and bypass scheduling
// delays for latency-sensitive mice flows by piggybacking data on the
// control plane — an incast-friendly design.
//
// The package exposes a high-level facade over the engines in internal/:
// build a Spec, call Build, attach a workload, Run, and read Summary.
//
//	spec := negotiator.DefaultSpec()
//	fab, err := spec.Build()
//	if err != nil { ... }
//	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 7))
//	fab.Run(5 * negotiator.Millisecond) // simulated time
//	sum := fab.Summary()
//
// Everything the paper evaluates — both flat topologies, the
// traffic-oblivious Sirius-like baseline, the design-choice variants of
// §3.5/Appendix A.2, link-failure scenarios, and the paper's workloads —
// is reachable from this package; the experiment harness in internal/exp
// regenerates every table and figure.
package negotiator

import (
	"fmt"
	"io"

	"negotiator/internal/failure"
	"negotiator/internal/hybrid"
	"negotiator/internal/match"
	"negotiator/internal/metrics"
	"negotiator/internal/negotiator"
	"negotiator/internal/oblivious"
	"negotiator/internal/sim"
	"negotiator/internal/topo"
	"negotiator/internal/workload"
)

// Time is a simulated instant in nanoseconds (re-exported from the
// simulation substrate).
type Time = sim.Time

// Duration is a simulated time span in nanoseconds.
type Duration = sim.Duration

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Gbps expresses a link rate in gigabits per second.
func Gbps(g int64) sim.Rate { return sim.Gbps(g) }

// Topology selects the flat optical topology (paper Figure 1).
type Topology int

const (
	// ParallelNetwork uses S high port-count AWGRs: any destination is
	// reachable on any uplink port.
	ParallelNetwork Topology = iota
	// ThinClos uses many low port-count AWGRs: every ToR pair is connected
	// by exactly one port-to-port path.
	ThinClos
)

func (t Topology) String() string {
	if t == ThinClos {
		return "thin-clos"
	}
	return "parallel"
}

// Scheduler selects the scheduling policy (§3.2, §3.5, Appendix A.2).
type Scheduler int

const (
	// Matching is NegotiaToR Matching: binary requests, round-robin rings,
	// no iteration, stateless (the paper's design).
	Matching Scheduler = iota
	// Iterative1, Iterative3, Iterative5 are the iterative variants with
	// 1, 3 and 5 rounds (Appendix A.2.1).
	Iterative1
	Iterative3
	Iterative5
	// DataSizePriority carries queue sizes in requests and favours large
	// backlogs (Appendix A.2.3, goodput-oriented).
	DataSizePriority
	// HoLDelayPriority carries weighted head-of-line delays and favours
	// long waits (Appendix A.2.3, tail-FCT-oriented).
	HoLDelayPriority
	// Stateful tracks a per-destination traffic matrix to suppress
	// over-scheduling (Appendix A.2.4).
	Stateful
	// ProjecToRStyle is the ProjecToR-inspired per-port delay-priority
	// scheduler (Appendix A.2.5).
	ProjecToRStyle
	// PIMStyle and ISLIPStyle transplant the classic crossbar schedulers
	// the paper contrasts with (§5) into the ToR-matching setting, with
	// three iterations each: PIM picks randomly, iSLIP desynchronises its
	// pointers via the accepted-grant rule. These are reproduction
	// extensions (the `ext-arbiters` experiment), not paper variants.
	PIMStyle
	ISLIPStyle
)

func (s Scheduler) String() string {
	switch s {
	case Iterative1:
		return "iterative-1"
	case Iterative3:
		return "iterative-3"
	case Iterative5:
		return "iterative-5"
	case DataSizePriority:
		return "data-size"
	case HoLDelayPriority:
		return "hol-delay"
	case Stateful:
		return "stateful"
	case ProjecToRStyle:
		return "projector"
	case PIMStyle:
		return "pim"
	case ISLIPStyle:
		return "islip"
	default:
		return "negotiator-matching"
	}
}

// ControlPlaneKind selects the scheduling control plane driving the
// shared fabric core (internal/fabric). All engines run over the same
// physical substrate — queues, workload pump, metrics, shard-parallel
// round loop — and differ only in how they decide which bytes move.
type ControlPlaneKind int

const (
	// NegotiaToRPlane is the paper's on-demand negotiation control plane
	// (the default).
	NegotiaToRPlane ControlPlaneKind = iota
	// ObliviousPlane is the traffic-oblivious Sirius-like round-robin/VLB
	// baseline.
	ObliviousPlane
	// HybridPlane piggybacks mice flows on the oblivious round-robin
	// schedule while elephants use on-demand negotiation (the §3.4.1
	// mice-bypass idea pushed to its limit).
	HybridPlane
)

func (k ControlPlaneKind) String() string {
	switch k {
	case ObliviousPlane:
		return "oblivious"
	case HybridPlane:
		return "hybrid"
	default:
		return "negotiator"
	}
}

// ControlPlanes lists every selectable control plane.
func ControlPlanes() []ControlPlaneKind {
	return []ControlPlaneKind{NegotiaToRPlane, ObliviousPlane, HybridPlane}
}

// ControlPlaneByName resolves a CLI name (see ControlPlaneKind.String).
func ControlPlaneByName(name string) (ControlPlaneKind, bool) {
	for _, k := range ControlPlanes() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Spec describes a fabric to build. The zero value is not useful; start
// from DefaultSpec (the paper's §4.1 setup) and adjust.
type Spec struct {
	// ToRs and Ports dimension the network (128 and 8 in the paper).
	ToRs, Ports int
	// AWGRPorts is the thin-clos AWGR port count W (16 in the paper);
	// ignored for the parallel network. Must satisfy ToRs == Ports*AWGRPorts.
	AWGRPorts int
	// Topology picks the fabric layout.
	Topology Topology
	// ControlPlane picks the scheduling engine (NegotiaToR by default).
	ControlPlane ControlPlaneKind
	// Oblivious builds the traffic-oblivious Sirius-like baseline instead
	// of NegotiaToR.
	//
	// Deprecated: set ControlPlane: ObliviousPlane. Kept for
	// compatibility; true overrides a NegotiaToRPlane ControlPlane.
	Oblivious bool
	// Scheduler picks the NegotiaToR scheduling policy (ignored for the
	// baseline).
	Scheduler Scheduler
	// LinkRate is the per-uplink-port rate (100 Gbps: the paper's 2x
	// speedup over 400 Gbps hosts on 8 ports).
	LinkRate sim.Rate
	// HostRate is the aggregate host bandwidth per ToR (400 Gbps).
	HostRate sim.Rate
	// ReconfigDelay is the guardband / end-to-end reconfiguration delay
	// (10 ns).
	ReconfigDelay Duration
	// PropDelay is the one-way inter-ToR propagation delay (2 µs).
	PropDelay Duration
	// ScheduledSlots is the scheduled-phase length in 90 ns timeslots (30).
	ScheduledSlots int
	// PredefinedSlotTime overrides the predefined-phase timeslot duration
	// (guardband included); zero keeps the default 60 ns. Sweeping it
	// changes how much data piggybacks per epoch (Figure 12a).
	PredefinedSlotTime Duration
	// Piggyback enables scheduling-delay bypass (§3.4.1). Both true in the
	// paper's default evaluation.
	Piggyback bool
	// RequestThresholdPkts is the request threshold in piggyback packets
	// (§3.4.1): with piggybacking on, a pair requests a scheduled
	// connection only when its queue exceeds this many piggyback
	// payloads. Zero means the paper's 3.
	RequestThresholdPkts int
	// PriorityQueues enables PIAS mice-flow prioritisation (§3.4.2).
	PriorityQueues bool
	// SelectiveRelay enables the traffic-aware relay extension on
	// thin-clos (Appendix A.2.2).
	SelectiveRelay bool
	// Failures optionally injects link failures.
	Failures *FailurePlan
	// Seed drives all randomness.
	Seed int64
	// CheckInvariants enables per-epoch conservation/conflict assertions.
	CheckInvariants bool
	// DisableEventSkip forces the run loop to tick every round even when
	// the fabric is provably idle, instead of jumping the clock to the
	// next event. Results are byte-identical either way (pinned by the
	// golden fingerprints); the knob exists for A/B benchmarks and the
	// skip-equivalence tests.
	DisableEventSkip bool
	// DisableIncremental forces a from-scratch REQUEST sweep every epoch
	// instead of replaying the cached emissions of sources whose demand
	// did not change. Byte-identical either way; for A/B benchmarks and
	// cache-equivalence tests. Ignored by the oblivious baseline, which
	// has no request step.
	DisableIncremental bool
	// OnDeliver and OnTransit observe deliveries (and, for the baseline,
	// first-hop transit arrivals).
	OnDeliver func(dst int, at Time, n int64)
	OnTransit func(intermediate int, at Time, n int64)
	// TrackReceiverBuffers models the receiver-side ToR-to-host buffers of
	// §3.6.5 (the optical fabric delivers at up to 2x the host drain rate)
	// and reports their peak occupancy in Summary (NegotiaToR fabric only).
	TrackReceiverBuffers bool
	// Workers is the intra-run shard parallelism: the fabric's ToRs split
	// into Workers contiguous shards that execute each epoch (or timeslot)
	// concurrently with barrier-synchronized phases. Results are identical
	// at any value — use it to put multiple cores behind one large
	// simulation, complementing the experiment runner's across-run cell
	// parallelism. 0 or 1 means sequential; the engines cap the count at
	// the ToR count and fall back to sequential for features that need
	// globally ordered mutation (selective relay, receiver-buffer
	// tracking, OnDeliver on the NegotiaToR fabric).
	Workers int
}

// DefaultSpec returns the paper's evaluation setup (§4.1): 128 8-port ToRs,
// 100 Gbps ports (2x speedup), 10 ns guardband, 30-slot scheduled phase,
// piggybacking and priority queues on, parallel network topology.
func DefaultSpec() Spec {
	return Spec{
		ToRs: 128, Ports: 8, AWGRPorts: 16,
		Topology:       ParallelNetwork,
		LinkRate:       sim.Gbps(100),
		HostRate:       sim.Gbps(400),
		ReconfigDelay:  10,
		PropDelay:      2 * sim.Microsecond,
		ScheduledSlots: 30,
		Piggyback:      true,
		PriorityQueues: true,
		Seed:           1,
	}
}

// SmallSpec returns a reduced 16-ToR setup for fast tests, examples and
// benchmarks (4 ports, thin-clos W=4, 200 Gbps hosts for the same 2x
// speedup).
func SmallSpec() Spec {
	s := DefaultSpec()
	s.ToRs, s.Ports, s.AWGRPorts = 16, 4, 4
	s.HostRate = sim.Gbps(200)
	return s
}

// buildTopology constructs the topo.Topology for the spec.
func (s Spec) buildTopology() (topo.Topology, error) {
	if s.Topology == ThinClos {
		return topo.NewThinClos(s.ToRs, s.Ports, s.AWGRPorts)
	}
	return topo.NewParallel(s.ToRs, s.Ports)
}

// timing derives the NegotiaToR Timing from the spec.
func (s Spec) timing() negotiator.Timing {
	t := negotiator.DefaultTiming()
	t.LinkRate = s.LinkRate
	t.PropDelay = s.PropDelay
	if s.ScheduledSlots > 0 {
		t.ScheduledSlots = s.ScheduledSlots
	}
	if s.PredefinedSlotTime > 0 {
		t.PredefinedSlot = s.PredefinedSlotTime
	}
	if s.ReconfigDelay > 0 && s.ReconfigDelay != t.Guardband {
		// Keep the message transmission time; the slot stretches.
		t.PredefinedSlot = t.PredefinedSlot - t.Guardband + s.ReconfigDelay
		t.Guardband = s.ReconfigDelay
	}
	return t
}

func (s Spec) matcherFactory() func(topo.Topology, negotiator.Timing, *sim.RNG) match.Matcher {
	switch s.Scheduler {
	case Iterative1:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewIterative(t, r, 1)
		}
	case Iterative3:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewIterative(t, r, 3)
		}
	case Iterative5:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewIterative(t, r, 5)
		}
	case DataSizePriority:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher { return match.NewDataSize(t, r) }
	case HoLDelayPriority:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher { return match.NewHoLDelay(t, r) }
	case Stateful:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewStateful(t, r, tm.EpochPortBytes())
		}
	case ProjecToRStyle:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher { return match.NewProjecToR(t, r) }
	case PIMStyle:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewClassic(t, r, 3, match.PIM)
		}
	case ISLIPStyle:
		return func(t topo.Topology, tm negotiator.Timing, r *sim.RNG) match.Matcher {
			return match.NewClassic(t, r, 3, match.ISLIP)
		}
	default:
		return nil // base NegotiaToR Matching
	}
}

// plane resolves the effective control plane (the deprecated Oblivious
// flag maps onto ObliviousPlane).
func (s Spec) plane() ControlPlaneKind {
	if s.Oblivious && s.ControlPlane == NegotiaToRPlane {
		return ObliviousPlane
	}
	return s.ControlPlane
}

// Build constructs the fabric described by the spec.
func (s Spec) Build() (Fabric, error) {
	if s.Workers > s.ToRs {
		// Shards are contiguous ToR ranges and every worker must own at
		// least one: reject the oversubscription here, where the caller
		// chose both numbers, instead of silently clamping or letting an
		// empty shard surface mid-run.
		return nil, fmt.Errorf("negotiator: Spec.Workers (%d) exceeds ToRs (%d): each worker shards a non-empty contiguous ToR range; lower Workers (or pass 0 for sequential)", s.Workers, s.ToRs)
	}
	top, err := s.buildTopology()
	if err != nil {
		return nil, err
	}
	var plan *failure.Plan
	if s.Failures != nil {
		plan, err = s.Failures.compile(s)
		if err != nil {
			return nil, err
		}
	}
	if s.plane() == HybridPlane {
		if s.Scheduler != Matching {
			return nil, fmt.Errorf("negotiator: the hybrid engine uses NegotiaToR Matching; scheduler variants apply to the NegotiaToR fabric")
		}
		if s.SelectiveRelay {
			return nil, fmt.Errorf("negotiator: selective relay is a NegotiaToR thin-clos extension")
		}
		e, err := hybrid.New(hybrid.Config{
			Topology:             top,
			Timing:               s.timing(),
			HostRate:             s.HostRate,
			PriorityQueues:       s.PriorityQueues,
			Seed:                 s.Seed,
			Failures:             plan,
			CheckInvariants:      s.CheckInvariants,
			OnDeliver:            s.OnDeliver,
			TrackReceiverBuffers: s.TrackReceiverBuffers,
			Workers:              s.Workers,
			DisableEventSkip:     s.DisableEventSkip,
			DisableIncremental:   s.DisableIncremental,
		})
		if err != nil {
			return nil, err
		}
		return &hybridFabric{e: e, spec: s}, nil
	}
	if s.plane() == ObliviousPlane {
		ot := oblivious.DefaultTiming()
		ot.LinkRate = s.LinkRate
		ot.PropDelay = s.PropDelay
		if s.ReconfigDelay > 0 {
			ot.Slot = ot.Slot - ot.Guardband + s.ReconfigDelay
			ot.Guardband = s.ReconfigDelay
		}
		e, err := oblivious.New(oblivious.Config{
			Topology:         top,
			Timing:           ot,
			HostRate:         s.HostRate,
			PriorityQueues:   s.PriorityQueues,
			Seed:             s.Seed,
			Failures:         plan,
			CheckInvariants:  s.CheckInvariants,
			OnDeliver:        s.OnDeliver,
			OnTransit:        s.OnTransit,
			Workers:          s.Workers,
			DisableEventSkip: s.DisableEventSkip,
		})
		if err != nil {
			return nil, err
		}
		return &obliviousFabric{e: e, spec: s}, nil
	}
	cfg := negotiator.Config{
		Topology:             top,
		Timing:               s.timing(),
		HostRate:             s.HostRate,
		Piggyback:            s.Piggyback,
		RequestThresholdPkts: s.RequestThresholdPkts,
		PriorityQueues:       s.PriorityQueues,
		NewMatcher:           s.matcherFactory(),
		Failures:             plan,
		Seed:                 s.Seed,
		CheckInvariants:      s.CheckInvariants,
		OnDeliver:            s.OnDeliver,
		TrackReceiverBuffers: s.TrackReceiverBuffers,
		Workers:              s.Workers,
		DisableEventSkip:     s.DisableEventSkip,
		DisableIncremental:   s.DisableIncremental,
	}
	if s.SelectiveRelay {
		cfg.Relay = &negotiator.RelayConfig{}
	}
	e, err := negotiator.New(cfg)
	if err != nil {
		return nil, err
	}
	return &negotiatorFabric{e: e, spec: s}, nil
}

// FailureScenario selects the shape of a failure plan. The vocabulary
// covers the paper's random simultaneous cuts (Figure 10) plus correlated
// patterns real deployments see: links that flap, one AWGR dying (the
// same port index across every ToR), and whole-ToR power events.
type FailureScenario int

const (
	// RandomLinks fails Fraction of all directed links (or the explicit
	// Links) over [FailAt, RecoverAt) — the default, and the paper's
	// Figure 10 scenario.
	RandomLinks FailureScenario = iota
	// FlappingLinks fails Fraction of links periodically: down for
	// DownFor at the start of each Period, for Cycles periods from
	// FailAt. Exercises recovery-detection lag in both directions.
	FlappingLinks
	// PortGroupFailure takes out one AWGR: port index Port on every ToR,
	// both directions, over [FailAt, RecoverAt).
	PortGroupFailure
	// ToRFailure powers ToR down over [FailAt, RecoverAt): every port,
	// both directions.
	ToRFailure
)

func (sc FailureScenario) String() string {
	switch sc {
	case FlappingLinks:
		return "flapping"
	case PortGroupFailure:
		return "port-group"
	case ToRFailure:
		return "tor-down"
	default:
		return "random"
	}
}

// FailureScenarios lists every selectable scenario.
func FailureScenarios() []FailureScenario {
	return []FailureScenario{RandomLinks, FlappingLinks, PortGroupFailure, ToRFailure}
}

// FailureScenarioByName resolves a CLI name (see FailureScenario.String).
func FailureScenarioByName(name string) (FailureScenario, bool) {
	for _, sc := range FailureScenarios() {
		if sc.String() == name {
			return sc, true
		}
	}
	return 0, false
}

// FailurePlan describes link failures for the fault-tolerance experiments
// (§4.3, Appendix A.4). Plans run on every control plane: the fabric core
// owns the failure state and requeue semantics.
type FailurePlan struct {
	// Scenario picks the plan shape; the zero value is RandomLinks.
	Scenario FailureScenario
	// Fraction of all directed port-links to fail (RandomLinks, Figure
	// 10) or flap (FlappingLinks). Mutually exclusive with Links.
	Fraction float64
	// Links lists explicit failures (Figure 19, RandomLinks only). Each
	// entry is (tor, port, ingress).
	Links []FailedLink
	// FailAt and RecoverAt bound the outage (RecoverAt <= FailAt means
	// never recovers). FlappingLinks uses FailAt as the first cycle start.
	FailAt, RecoverAt Time
	// DetectDelay is the fabric's detection lag; zero means three epochs
	// at default timing.
	DetectDelay Duration
	// Period, DownFor and Cycles shape FlappingLinks: each selected link
	// is down for DownFor at the start of each Period, Cycles times. Zero
	// DownFor means Period/2; zero Cycles means 8.
	Period, DownFor Duration
	Cycles          int
	// Port is the AWGR port index PortGroupFailure kills on every ToR.
	Port int
	// ToR is the ToR index ToRFailure powers down.
	ToR int
	// Seed selects which links fail for Fraction-based plans.
	Seed int64
}

// FailedLink names one direction of one uplink port.
type FailedLink struct {
	ToR, Port int
	Ingress   bool
}

func (p *FailurePlan) compile(s Spec) (*failure.Plan, error) {
	detect := p.DetectDelay
	if detect == 0 {
		detect = 3 * negotiator.DefaultTiming().EpochLen(16)
	}
	switch p.Scenario {
	case FlappingLinks:
		if p.Fraction <= 0 {
			return nil, fmt.Errorf("negotiator: FailurePlan: flapping needs Fraction > 0")
		}
		if p.Period <= 0 {
			return nil, fmt.Errorf("negotiator: FailurePlan: flapping needs Period > 0")
		}
		down := p.DownFor
		if down == 0 {
			down = p.Period / 2
		}
		cycles := p.Cycles
		if cycles == 0 {
			cycles = 8
		}
		return failure.Flapping(s.ToRs, s.Ports, p.Fraction, p.FailAt, p.Period, down, cycles, detect, p.Seed), nil
	case PortGroupFailure:
		if p.Port < 0 || p.Port >= s.Ports {
			return nil, fmt.Errorf("negotiator: FailurePlan: port %d out of range [0, %d)", p.Port, s.Ports)
		}
		return failure.PortGroup(s.ToRs, s.Ports, p.Port, p.FailAt, p.RecoverAt, detect), nil
	case ToRFailure:
		if p.ToR < 0 || p.ToR >= s.ToRs {
			return nil, fmt.Errorf("negotiator: FailurePlan: tor %d out of range [0, %d)", p.ToR, s.ToRs)
		}
		return failure.ToRDown(s.ToRs, s.Ports, p.ToR, p.FailAt, p.RecoverAt, detect), nil
	}
	if p.Fraction > 0 && len(p.Links) > 0 {
		return nil, fmt.Errorf("negotiator: FailurePlan: set Fraction or Links, not both")
	}
	if p.Fraction > 0 {
		return failure.Random(s.ToRs, s.Ports, p.Fraction, p.FailAt, p.RecoverAt, detect, p.Seed), nil
	}
	links := make([]failure.Link, len(p.Links))
	for i, l := range p.Links {
		links[i] = failure.Link{ToR: l.ToR, Port: l.Port, Ingress: l.Ingress}
	}
	return failure.Single(links, p.FailAt, p.RecoverAt, detect), nil
}

// Summary reports a run's headline measurements in the paper's units.
type Summary struct {
	// Flows and MiceFlows completed.
	Flows, MiceFlows int
	// Mice99p and MiceMean are mice-flow FCTs (flows < 10 KB).
	Mice99p, MiceMean Duration
	// All99p is the 99th-percentile FCT over all flows.
	All99p Duration
	// GoodputNormalized is delivered goodput over the host aggregate
	// bandwidth, averaged across ToRs (§4.1).
	GoodputNormalized float64
	// MatchRatio is the mean accept/grant ratio (Appendix A.1); zero for
	// the baseline.
	MatchRatio float64
	// EpochLen is the fabric's epoch (NegotiaToR) or round-robin cycle
	// (baseline) duration.
	EpochLen Duration
	// Epochs counts scheduling rounds executed: epochs for NegotiaToR,
	// full round-robin cycles for the baseline (the unit EpochLen spans).
	Epochs int64
	// Injected and Delivered are total bytes.
	Injected, Delivered int64
	// LostBytes are bytes destroyed by link failures before their source
	// requeue, cumulative over the run; zero without failure injection.
	// All three control planes report it.
	LostBytes int64
	// Duration is the simulated time covered.
	Duration Duration
	// PeakReceiverBuffer is the largest receiver-side ToR-to-host backlog
	// (§3.6.5); zero unless Spec.TrackReceiverBuffers was set.
	PeakReceiverBuffer int64
}

// EventStat describes one tagged application event (e.g. an incast).
type EventStat struct {
	Start, End  Time
	Flows, Done int
}

// FinishTime is the event's completion latency (zero until all flows
// finish).
func (e EventStat) FinishTime() Duration {
	if e.Done < e.Flows {
		return 0
	}
	return e.End.Sub(e.Start)
}

// Fabric is a runnable network simulation: NegotiaToR or the
// traffic-oblivious baseline.
type Fabric interface {
	// SetWorkload attaches the arrival stream; call before Run.
	SetWorkload(Workload)
	// Run advances the simulation to at least the given simulated time.
	Run(Duration)
	// RunEpochs advances exactly k scheduling rounds — epochs for
	// NegotiaToR, full round-robin cycles for the baseline — so callers
	// can step whole rounds without duration arithmetic.
	RunEpochs(k int)
	// Drain runs until all injected traffic is delivered (or the step
	// budget is exhausted) and reports whether it drained.
	Drain(budget int) bool
	// Summary reports headline metrics.
	Summary() Summary
	// MiceCDF returns the mice-flow FCT CDF (Figure 6).
	MiceCDF(points int) []metrics.CDFPoint
	// Events returns tagged application events (incasts) by tag.
	Events() map[int]EventStat
	// MatchRatioSeries returns the per-epoch accept/grant ratios
	// (NegotiaToR only; nil for the baseline).
	MatchRatioSeries() []float64
	// Spec returns the spec the fabric was built from.
	Spec() Spec
	// Snapshot serializes the fabric's complete simulation state at a
	// round boundary into a versioned, CRC-guarded checkpoint stream. A
	// checkpoint is a resume token, not an archive: it captures state, not
	// configuration, and is only valid for a fabric rebuilt from the same
	// Spec by the same binary.
	Snapshot(w io.Writer) error
	// Restore applies a checkpoint to a freshly built fabric of the same
	// Spec. SetWorkload (with the identically constructed generator) must
	// be called first; the run then continues byte-identically to the
	// uninterrupted one, at any worker count. A corrupt or mismatched
	// checkpoint returns an error leaving the fabric untouched.
	Restore(r io.Reader) error
}

// Workload is an arrival stream (re-exported).
type Workload = workload.Generator

type negotiatorFabric struct {
	e    *negotiator.Engine
	spec Spec
}

func (f *negotiatorFabric) SetWorkload(w Workload)     { f.e.SetWorkload(w) }
func (f *negotiatorFabric) Run(d Duration)             { f.e.Run(d) }
func (f *negotiatorFabric) RunEpochs(k int)            { f.e.RunEpochs(k) }
func (f *negotiatorFabric) Drain(budget int) bool      { return f.e.Drain(budget) }
func (f *negotiatorFabric) Spec() Spec                 { return f.spec }
func (f *negotiatorFabric) Snapshot(w io.Writer) error { return f.e.Snapshot(w) }
func (f *negotiatorFabric) Restore(r io.Reader) error  { return f.e.Restore(r) }

func (f *negotiatorFabric) Summary() Summary {
	r := f.e.Results()
	return Summary{
		Flows:              r.FCT.Count(),
		MiceFlows:          r.FCT.MiceCount(),
		Mice99p:            r.FCT.MiceP(99),
		MiceMean:           r.FCT.MiceMean(),
		All99p:             r.FCT.P(99),
		GoodputNormalized:  r.Goodput.Normalized(r.Duration, f.spec.HostRate),
		MatchRatio:         r.MatchRatio.Mean(),
		EpochLen:           r.EpochLen,
		Epochs:             r.Epochs,
		Injected:           r.Injected,
		Delivered:          r.Delivered,
		LostBytes:          r.LostBytes,
		Duration:           r.Duration,
		PeakReceiverBuffer: r.PeakReceiverBuffer,
	}
}

func (f *negotiatorFabric) MiceCDF(points int) []metrics.CDFPoint {
	return f.e.Results().FCT.MiceCDF(points)
}

func (f *negotiatorFabric) Events() map[int]EventStat {
	out := make(map[int]EventStat)
	for tag, ts := range f.e.Results().Tags {
		out[tag] = EventStat{Start: ts.Start, End: ts.End, Flows: ts.Flows, Done: ts.Done}
	}
	return out
}

func (f *negotiatorFabric) MatchRatioSeries() []float64 {
	return f.e.Results().MatchRatio.Series()
}

type obliviousFabric struct {
	e    *oblivious.Engine
	spec Spec
}

func (f *obliviousFabric) SetWorkload(w Workload)     { f.e.SetWorkload(w) }
func (f *obliviousFabric) Run(d Duration)             { f.e.Run(d) }
func (f *obliviousFabric) RunEpochs(k int)            { f.e.RunCycles(k) }
func (f *obliviousFabric) Drain(budget int) bool      { return f.e.Drain(budget) }
func (f *obliviousFabric) Spec() Spec                 { return f.spec }
func (f *obliviousFabric) Snapshot(w io.Writer) error { return f.e.Snapshot(w) }
func (f *obliviousFabric) Restore(r io.Reader) error  { return f.e.Restore(r) }

func (f *obliviousFabric) Summary() Summary {
	r := f.e.Results()
	return Summary{
		Flows:             r.FCT.Count(),
		MiceFlows:         r.FCT.MiceCount(),
		Mice99p:           r.FCT.MiceP(99),
		MiceMean:          r.FCT.MiceMean(),
		All99p:            r.FCT.P(99),
		GoodputNormalized: r.Goodput.Normalized(r.Duration, f.spec.HostRate),
		EpochLen:          f.e.CycleLen(),
		Epochs:            r.Slots / int64(f.e.SlotsPerCycle()),
		Injected:          r.Injected,
		Delivered:         r.Delivered,
		LostBytes:         r.LostBytes,
		Duration:          r.Duration,
	}
}

func (f *obliviousFabric) MiceCDF(points int) []metrics.CDFPoint {
	return f.e.Results().FCT.MiceCDF(points)
}

func (f *obliviousFabric) Events() map[int]EventStat {
	out := make(map[int]EventStat)
	for tag, ts := range f.e.Results().Tags {
		out[tag] = EventStat{Start: ts.Start, End: ts.End, Flows: ts.Flows, Done: ts.Done}
	}
	return out
}

func (f *obliviousFabric) MatchRatioSeries() []float64 { return nil }

type hybridFabric struct {
	e    *hybrid.Engine
	spec Spec
}

func (f *hybridFabric) SetWorkload(w Workload)     { f.e.SetWorkload(w) }
func (f *hybridFabric) Run(d Duration)             { f.e.Run(d) }
func (f *hybridFabric) RunEpochs(k int)            { f.e.RunEpochs(k) }
func (f *hybridFabric) Drain(budget int) bool      { return f.e.Drain(budget) }
func (f *hybridFabric) Spec() Spec                 { return f.spec }
func (f *hybridFabric) Snapshot(w io.Writer) error { return f.e.Snapshot(w) }
func (f *hybridFabric) Restore(r io.Reader) error  { return f.e.Restore(r) }

func (f *hybridFabric) Summary() Summary {
	r := f.e.Results()
	return Summary{
		Flows:              r.FCT.Count(),
		MiceFlows:          r.FCT.MiceCount(),
		Mice99p:            r.FCT.MiceP(99),
		MiceMean:           r.FCT.MiceMean(),
		All99p:             r.FCT.P(99),
		GoodputNormalized:  r.Goodput.Normalized(r.Duration, f.spec.HostRate),
		MatchRatio:         r.MatchRatio.Mean(),
		EpochLen:           r.EpochLen,
		Epochs:             r.Epochs,
		Injected:           r.Injected,
		Delivered:          r.Delivered,
		LostBytes:          r.LostBytes,
		Duration:           r.Duration,
		PeakReceiverBuffer: r.PeakReceiverBuffer,
	}
}

func (f *hybridFabric) MiceCDF(points int) []metrics.CDFPoint {
	return f.e.Results().FCT.MiceCDF(points)
}

func (f *hybridFabric) Events() map[int]EventStat {
	out := make(map[int]EventStat)
	for tag, ts := range f.e.Results().Tags {
		out[tag] = EventStat{Start: ts.Start, End: ts.End, Flows: ts.Flows, Done: ts.Done}
	}
	return out
}

func (f *hybridFabric) MatchRatioSeries() []float64 {
	return f.e.Results().MatchRatio.Series()
}
